// Package brokenimport type-checks against a dependency whose source does
// not parse: the loader must surface that as a hard error (driver exit 2),
// not silently proceed best-effort.
package brokenimport

import dep "repro/internal/lint/testdata/src/brokenimport/dep"

func Use() int {
	return dep.Value
}
