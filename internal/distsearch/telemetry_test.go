package distsearch

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/hermes"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// telemetryCluster is cluster() with an isolated registry on both sides so
// assertions see exactly this test's traffic.
func telemetryCluster(t testing.TB, chunks, shards int) (*Coordinator, *corpus.Corpus, *telemetry.Registry) {
	t.Helper()
	c, err := corpus.Generate(corpus.Spec{NumChunks: chunks, Dim: 16, NumTopics: shards, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	var nodes []*Node
	var addrs []string
	for i, shard := range st.Shards {
		node, err := NewNode(i, shard.Index, nil)
		if err != nil {
			t.Fatal(err)
		}
		node.SetTelemetry(reg)
		if err := node.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
		addrs = append(addrs, node.Addr())
	}
	co, err := DialOpts(addrs, DialOptions{Timeout: time.Second, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := co.Close(); err != nil {
			t.Errorf("close coordinator: %v", err)
		}
		for _, n := range nodes {
			if err := n.Close(); err != nil {
				t.Errorf("close node: %v", err)
			}
		}
	})
	return co, c, reg
}

// TestTracedQueryProducesOneSpanPerPhase is the end-to-end tracing test: a
// traced query records exactly one span per coordinator phase plus the full
// set of node-shipped spans from every contacted shard, and the trace ID
// demonstrably reaches every shard node over the wire.
func TestTracedQueryProducesOneSpanPerPhase(t *testing.T) {
	const shards = 4
	co, c, reg := telemetryCluster(t, 1200, shards)
	qs := c.Queries(1, 11)
	p := hermes.DefaultParams()

	tr := telemetry.NewTrace()
	res, err := co.SearchTraced(qs.Vectors.Row(0), p, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) == 0 {
		t.Fatal("traced query returned nothing")
	}

	counts := make(map[string]int)
	nodeSpansBy := make(map[int]int)
	for _, s := range tr.Spans() {
		counts[s.Name]++
		if s.Duration < 0 {
			t.Errorf("span %s has negative duration %v", s.Name, s.Duration)
		}
		if s.Node != telemetry.NodeLocal {
			nodeSpansBy[s.Node]++
		}
	}
	for _, phase := range []string{"sample_scatter", "rank", "deep_gather"} {
		if counts[phase] != 1 {
			t.Errorf("phase %s recorded %d spans, want exactly 1 (all: %v)", phase, counts[phase], counts)
		}
	}
	// Node span shipping: every contacted node (all shards sampled, the top
	// DeepClusters deep-searched) ships one span per node-side phase.
	contacts := shards + len(res.DeepNodes)
	for _, phase := range []string{"decode", "probe_select", "list_scan", "topk_merge", "encode"} {
		if counts[phase] != contacts {
			t.Errorf("node phase %s recorded %d spans, want %d (one per contacted node; all: %v)",
				phase, counts[phase], contacts, counts)
		}
	}
	if len(counts) != 8 {
		t.Errorf("unexpected extra span names: %v", counts)
	}
	for shard := 0; shard < shards; shard++ {
		if nodeSpansBy[shard] < 5 {
			t.Errorf("shard %d shipped %d spans, want >= 5 (sampled at minimum)", shard, nodeSpansBy[shard])
		}
	}
	durs := tr.Durations()
	if durs["sample_scatter"] <= 0 || durs["deep_gather"] <= 0 {
		t.Errorf("network phases must take measurable time: %v", durs)
	}

	// The trace ID traveled to the nodes: every sample request (one per
	// shard) and every deep request carried it.
	traced := int64(0)
	snap := reg.Snapshot()
	for s := 0; s < shards; s++ {
		traced += int64(snap[fmt.Sprintf(`hermes_node_traced_requests_total{shard="%d"}`, s)])
	}
	wantTraced := int64(shards + len(res.DeepNodes))
	if traced != wantTraced {
		t.Errorf("nodes saw %d traced requests, want %d (sample to %d shards + %d deep)",
			traced, wantTraced, shards, len(res.DeepNodes))
	}

	if !strings.Contains(tr.Breakdown(), "sample_scatter=") {
		t.Errorf("breakdown missing phase: %s", tr.Breakdown())
	}
}

// TestCoordinatorMetrics checks the request counters, per-node round-trip
// histograms, byte counters, and the settled in-flight gauge after real
// traffic.
func TestCoordinatorMetrics(t *testing.T) {
	const shards = 4
	const queries = 8
	co, c, reg := telemetryCluster(t, 1200, shards)
	qs := c.Queries(queries, 13)
	p := hermes.DefaultParams()
	for i := 0; i < queries; i++ {
		if _, err := co.Search(qs.Vectors.Row(i), p); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()

	if got := snap[`hermes_distsearch_requests_total{op="sample"}`]; got != queries*shards {
		t.Errorf("sample round-trips = %v, want %d", got, queries*shards)
	}
	wantDeep := float64(queries * p.DeepClusters)
	if got := snap[`hermes_distsearch_requests_total{op="deep"}`]; got != wantDeep {
		t.Errorf("deep round-trips = %v, want %v", got, wantDeep)
	}
	if got := snap["hermes_coordinator_queries_total"]; got != queries {
		t.Errorf("queries = %v, want %d", got, queries)
	}
	if got := snap["hermes_distsearch_inflight"]; got != 0 {
		t.Errorf("in-flight gauge = %v after all queries returned, want 0", got)
	}
	if got := snap[`hermes_coordinator_phase_seconds{phase="sample"}:count`]; got != queries {
		t.Errorf("sample phase observations = %v, want %d", got, queries)
	}
	for s := 0; s < shards; s++ {
		rt := snap[fmt.Sprintf(`hermes_distsearch_roundtrip_seconds{node="%d"}:count`, s)]
		if rt < queries { // every node gets at least the sample request per query
			t.Errorf("node %d round-trip count = %v, want >= %d", s, rt, queries)
		}
		if sent := snap[fmt.Sprintf(`hermes_distsearch_bytes_sent_total{node="%d"}`, s)]; sent <= 0 {
			t.Errorf("node %d bytes sent = %v, want > 0", s, sent)
		}
		if recv := snap[fmt.Sprintf(`hermes_distsearch_bytes_recv_total{node="%d"}`, s)]; recv <= 0 {
			t.Errorf("node %d bytes recv = %v, want > 0", s, recv)
		}
	}
	if got := snap["hermes_distsearch_errors_total"]; got != 0 {
		t.Errorf("errors = %v, want 0", got)
	}
}

// TestOpStatsReturnsTelemetrySnapshot is the satellite: Stats() now ships
// each node's full metric snapshot, not just the served-request counters.
func TestOpStatsReturnsTelemetrySnapshot(t *testing.T) {
	co, c, _ := telemetryCluster(t, 1200, 3)
	qs := c.Queries(4, 17)
	for i := 0; i < 4; i++ {
		if _, err := co.Search(qs.Vectors.Row(i), hermes.DefaultParams()); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := co.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, ns := range stats {
		if len(ns.Telemetry) == 0 {
			t.Fatalf("node %d returned no telemetry snapshot", ns.ShardID)
		}
		key := fmt.Sprintf(`hermes_node_requests_total{op="sample",shard="%d"}`, ns.ShardID)
		if got := ns.Telemetry[key]; got != 4 {
			t.Errorf("node %d %s = %v, want 4", ns.ShardID, key, got)
		}
		lat := fmt.Sprintf(`hermes_node_request_seconds{op="sample",shard="%d"}:count`, ns.ShardID)
		if got := ns.Telemetry[lat]; got != 4 {
			t.Errorf("node %d %s = %v, want 4", ns.ShardID, lat, got)
		}
		// The per-quantizer scan histogram covers at least the sample scans
		// (labels render sorted, quantizer before shard).
		scan := fmt.Sprintf(`hermes_node_scan_seconds{quantizer="SQ8",shard="%d"}:count`, ns.ShardID)
		if got := ns.Telemetry[scan]; got < 4 {
			t.Errorf("node %d %s = %v, want >= 4", ns.ShardID, scan, got)
		}
	}
}

// hangingNode answers the OpInfo handshake correctly, then swallows every
// subsequent request without replying — the failure mode the per-round-trip
// deadline exists for.
func hangingNode(t *testing.T, dim int) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer func() { _ = conn.Close() }()
		dec := gob.NewDecoder(conn)
		enc := gob.NewEncoder(conn)
		for {
			var req Request
			if err := dec.Decode(&req); err != nil {
				return
			}
			if req.Op == OpInfo {
				if err := enc.Encode(&Response{ShardID: 0, Size: 1, Dim: dim, Centroid: make([]float32, dim)}); err != nil {
					return
				}
				continue
			}
			// Hang: never respond, just wait for shutdown.
			<-done
			return
		}
	}()
	return ln.Addr().String(), func() {
		close(done)
		if err := ln.Close(); err != nil {
			t.Errorf("close hanging listener: %v", err)
		}
		wg.Wait()
	}
}

// TestRoundTripDeadlineUnsticksHungNode is the satellite fix: without
// per-round-trip deadlines this test would block forever on a node that
// accepted the connection and went silent.
func TestRoundTripDeadlineUnsticksHungNode(t *testing.T) {
	const dim = 16
	addr, stop := hangingNode(t, dim)
	defer stop()

	reg := telemetry.NewRegistry()
	co, err := DialOpts([]string{addr}, DialOptions{
		Timeout:          time.Second,
		RoundTripTimeout: 100 * time.Millisecond,
		Telemetry:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = co.Close() }()

	q := make([]float32, dim)
	start := time.Now()
	_, err = co.Search(q, hermes.DefaultParams())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("search against a hung node must fail")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline did not bound the stall: took %v", elapsed)
	}
	snap := reg.Snapshot()
	if got := snap["hermes_distsearch_deadline_hits_total"]; got < 1 {
		t.Errorf("deadline hits = %v, want >= 1", got)
	}
	if got := snap["hermes_distsearch_errors_total"]; got < 1 {
		t.Errorf("errors = %v, want >= 1", got)
	}
}

// staleReplyNode accepts connections in a loop. On the first connection it
// answers the OpInfo handshake, then delays the reply to the next request
// past the caller's deadline before writing it — the late response of a
// timed-out request. Later connections answer the handshake and serve
// samples immediately with a distinguishable document ID.
func staleReplyNode(t *testing.T, dim int, delay time.Duration) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for connIdx := 0; ; connIdx++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(conn net.Conn, connIdx int) {
				defer wg.Done()
				defer func() { _ = conn.Close() }()
				dec := gob.NewDecoder(conn)
				enc := gob.NewEncoder(conn)
				for {
					var req Request
					if err := dec.Decode(&req); err != nil {
						return
					}
					var resp Response
					switch req.Op {
					case OpInfo:
						resp = Response{ShardID: 0, Size: 1, Dim: dim, Centroid: make([]float32, dim)}
					case OpSample:
						if connIdx == 0 {
							time.Sleep(delay)
							resp = Response{Neighbors: []vec.Neighbor{{ID: 111}}}
						} else {
							resp = Response{Neighbors: []vec.Neighbor{{ID: 222}}}
						}
					default:
						resp = Response{Err: "unexpected op"}
					}
					if err := enc.Encode(&resp); err != nil {
						return
					}
				}
			}(conn, connIdx)
		}
	}()
	return ln.Addr().String(), func() {
		if err := ln.Close(); err != nil {
			t.Errorf("close stale-reply listener: %v", err)
		}
		wg.Wait()
	}
}

// TestTimeoutPoisonsConnection is the stale-response regression test: the
// wire protocol has no correlation ID, so after a deadline timeout the
// coordinator must abandon the connection — otherwise the node's late reply
// (ID 111 here) would be silently decoded as the answer to the NEXT request.
// The retry must instead redial and receive the fresh reply (ID 222).
func TestTimeoutPoisonsConnection(t *testing.T) {
	const dim = 8
	const delay = 400 * time.Millisecond
	addr, stop := staleReplyNode(t, dim, delay)
	defer stop()

	reg := telemetry.NewRegistry()
	co, err := DialOpts([]string{addr}, DialOptions{
		Timeout:          time.Second,
		RoundTripTimeout: 100 * time.Millisecond,
		Telemetry:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = co.Close() }()
	n := co.nodes[0]

	q := make([]float32, dim)
	if _, err := n.roundTrip(&Request{Op: OpSample, Query: q, NProbe: 1}); err == nil {
		t.Fatal("round-trip against the delayed node must time out")
	}
	// Let the node write its late reply (onto the now-closed socket) so it
	// would be sitting first in the stream if the connection were reused.
	time.Sleep(delay + 100*time.Millisecond)

	resp, err := n.roundTrip(&Request{Op: OpSample, Query: q, NProbe: 1})
	if err != nil {
		t.Fatalf("retry after timeout must redial and succeed: %v", err)
	}
	if len(resp.Neighbors) != 1 || resp.Neighbors[0].ID != 222 {
		t.Fatalf("retry served a stale response: %+v", resp.Neighbors)
	}
	snap := reg.Snapshot()
	if got := snap["hermes_distsearch_deadline_hits_total"]; got < 1 {
		t.Errorf("deadline hits = %v, want >= 1", got)
	}
}

// TestRequestWireCompat proves the TraceID/ServerNanos/Telemetry envelope
// extensions are gob-compatible with the v1 protocol in both directions.
func TestRequestWireCompat(t *testing.T) {
	// v1 shapes as they existed before this change.
	type RequestV1 struct {
		Op      Op
		Query   []float32
		K       int
		NProbe  int
		Queries [][]float32
		ID      int64
	}
	type ResponseV1 struct {
		Err                                       string
		ShardID, Size, Dim                        int
		SampleServed, DeepServed, MutationsServed int64
		Tombstones                                int
	}

	// New coordinator -> old node: TraceID is silently dropped.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&Request{Op: OpSample, K: 5, TraceID: 42}); err != nil {
		t.Fatal(err)
	}
	var v1req RequestV1
	if err := gob.NewDecoder(&buf).Decode(&v1req); err != nil {
		t.Fatalf("old node cannot decode new request: %v", err)
	}
	if v1req.Op != OpSample || v1req.K != 5 {
		t.Errorf("v1 decode mangled fields: %+v", v1req)
	}

	// Old node -> new coordinator: extensions decode to zero values.
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&ResponseV1{ShardID: 3, Size: 100}); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := gob.NewDecoder(&buf).Decode(&resp); err != nil {
		t.Fatalf("new coordinator cannot decode old response: %v", err)
	}
	if resp.ShardID != 3 || resp.Size != 100 {
		t.Errorf("decode mangled fields: %+v", resp)
	}
	if resp.ServerNanos != 0 || resp.Telemetry != nil {
		t.Errorf("extensions must decode to zero values: %+v", resp)
	}
}

// TestResponseWireCompatV2V3 proves the Scanned/Spans v3 response extensions
// are gob-compatible with span-less v2 peers in both directions: a v2 node's
// response decodes under the new coordinator with nil Spans (empty waterfall,
// not an error), and a v3 response with spans decodes cleanly under a v2-era
// struct, which simply drops the new fields.
func TestResponseWireCompatV2V3(t *testing.T) {
	// The v2 response shape as it existed before Scanned/Spans.
	type ResponseV2 struct {
		Err                                       string
		ShardID, Size, Dim                        int
		Neighbors                                 []vec.Neighbor
		Batch                                     [][]vec.Neighbor
		Centroid                                  []float32
		OK                                        bool
		SampleServed, DeepServed, MutationsServed int64
		Tombstones                                int
		ServerNanos                               int64
		Telemetry                                 map[string]float64
	}

	// v2 node -> new coordinator: Spans stays nil, Scanned stays zero.
	var buf bytes.Buffer
	v2 := ResponseV2{
		ShardID:     2,
		Size:        500,
		Neighbors:   []vec.Neighbor{{ID: 7, Score: 0.9}},
		ServerNanos: 1234,
	}
	if err := gob.NewEncoder(&buf).Encode(&v2); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := gob.NewDecoder(&buf).Decode(&resp); err != nil {
		t.Fatalf("new coordinator cannot decode v2 response: %v", err)
	}
	if resp.ShardID != 2 || resp.Size != 500 || resp.ServerNanos != 1234 || len(resp.Neighbors) != 1 {
		t.Errorf("decode mangled v2 fields: %+v", resp)
	}
	if resp.Spans != nil || resp.Scanned != 0 {
		t.Errorf("v3 extensions must decode to zero values from a v2 response: %+v", resp)
	}

	// v3 node -> v2 coordinator: spans and scanned counts are dropped, the
	// rest decodes untouched.
	buf.Reset()
	v3 := Response{
		ShardID: 4,
		Size:    900,
		Scanned: 64,
		Spans: []WireSpan{
			{Name: "decode", Node: 4, OffsetNanos: 0, DurNanos: 100},
			{Name: "list_scan", Node: 4, OffsetNanos: 100, DurNanos: 5000},
		},
	}
	if err := gob.NewEncoder(&buf).Encode(&v3); err != nil {
		t.Fatal(err)
	}
	var back ResponseV2
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatalf("v2 coordinator cannot decode v3 response with spans: %v", err)
	}
	if back.ShardID != 4 || back.Size != 900 {
		t.Errorf("v2 decode mangled fields: %+v", back)
	}
}
