#!/usr/bin/env sh
# Performance record for the serving-path distance kernels. Runs the
# hermes-kernelbench suite (scalar vs blocked kernels at dims 64/128/768,
# plus end-to-end searcher latency and allocation counts) and publishes the
# machine-readable result as BENCH_PR3.json at the repo root.
#
# Usage: scripts/bench.sh [extra hermes-kernelbench flags]
set -eux

cd "$(dirname "$0")/.."

go run ./cmd/hermes-kernelbench -out BENCH_PR3.json "$@"
