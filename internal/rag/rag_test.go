package rag

import (
	"testing"
	"time"

	"repro/internal/encoder"
	"repro/internal/hwmodel"
	"repro/internal/llm"
	"repro/internal/multinode"
)

func monoRetriever(t testing.TB, tokens int64, batch int) Retriever {
	t.Helper()
	cl, err := multinode.EvenCluster(hwmodel.XeonGold6448Y, tokens, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewMonolithicRetriever(cl, batch)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func hermesRetriever(t testing.TB, tokens int64, nodes, batch, deep int) Retriever {
	t.Helper()
	cl, err := multinode.EvenCluster(hwmodel.XeonGold6448Y, tokens, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return &HermesRetriever{
		Cluster: cl,
		Config: multinode.HermesConfig{
			Batch:          batch,
			DeepLoads:      multinode.SpreadLoads(nodes, batch, deep),
			SampleFraction: 8.0 / 128.0,
		},
	}
}

func gemmaEngine(t testing.TB) *llm.Engine {
	t.Helper()
	e, err := llm.NewEngine(llm.Gemma2_9B, llm.A6000Ada, 1)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func baseCfg(t testing.TB, r Retriever) PipelineConfig {
	return PipelineConfig{
		Batch:        32,
		InputTokens:  512,
		OutputTokens: 256,
		Stride:       16,
		Engine:       gemmaEngine(t),
		Encoder:      encoder.DefaultLatencyModel,
		Retriever:    r,
	}
}

func TestValidation(t *testing.T) {
	cfg := baseCfg(t, monoRetriever(t, 10e9, 32))
	cfg.Batch = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero batch should error")
	}
	cfg = baseCfg(t, monoRetriever(t, 10e9, 32))
	cfg.Stride = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero stride should error")
	}
	cfg = baseCfg(t, nil)
	if _, err := Run(cfg); err == nil {
		t.Fatal("nil retriever should error")
	}
}

func TestStrides(t *testing.T) {
	cfg := baseCfg(t, monoRetriever(t, 10e9, 32))
	if cfg.Strides() != 16 {
		t.Fatalf("256/16 = %d strides, want 16", cfg.Strides())
	}
	cfg.OutputTokens = 250
	if cfg.Strides() != 16 {
		t.Fatalf("250/16 rounds up to %d, want 16", cfg.Strides())
	}
}

func TestMonolithicRetrieverNeedsOneNode(t *testing.T) {
	cl, err := multinode.EvenCluster(hwmodel.XeonGold6448Y, 10e9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMonolithicRetriever(cl, 32); err == nil {
		t.Fatal("2-node monolithic retriever should error")
	}
}

func TestTTFTComposition(t *testing.T) {
	r := monoRetriever(t, 10e9, 32)
	cfg := baseCfg(t, r)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	retrieveLat, _ := r.RetrieveBatch()
	want := cfg.Encoder.BatchLatency(32) + retrieveLat + cfg.Engine.PrefillLatency(32, 512)
	if rep.TTFT != want {
		t.Fatalf("TTFT = %v, want %v", rep.TTFT, want)
	}
	// At 10B tokens retrieval dominates TTFT (paper: ~61% at 10B).
	if frac := retrieveLat.Seconds() / rep.TTFT.Seconds(); frac < 0.5 {
		t.Fatalf("retrieval fraction of TTFT = %v, want > 0.5", frac)
	}
}

func TestE2EGrowsWithDatastore(t *testing.T) {
	small, err := Run(baseCfg(t, monoRetriever(t, 1e9, 32)))
	if err != nil {
		t.Fatal(err)
	}
	large, err := Run(baseCfg(t, monoRetriever(t, 100e9, 32)))
	if err != nil {
		t.Fatal(err)
	}
	if large.E2E <= small.E2E*10 {
		t.Fatalf("100x datastore should dominate E2E: %v vs %v", large.E2E, small.E2E)
	}
}

func TestSmallerStrideCostsMore(t *testing.T) {
	// Fig. 5 right panel: stride 4 is far more expensive than stride 64.
	cfg4 := baseCfg(t, monoRetriever(t, 100e9, 32))
	cfg4.Stride = 4
	cfg64 := baseCfg(t, monoRetriever(t, 100e9, 32))
	cfg64.Stride = 64
	r4, err := Run(cfg4)
	if err != nil {
		t.Fatal(err)
	}
	r64, err := Run(cfg64)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r4.E2E.Seconds() / r64.E2E.Seconds()
	// Paper reports 12.12x for stride 4 vs 64 at 100B tokens.
	if ratio < 8 || ratio > 17 {
		t.Fatalf("stride 4 vs 64 E2E ratio = %v, want ~12", ratio)
	}
}

func TestRAGCacheRemovesRePrefill(t *testing.T) {
	base := baseCfg(t, monoRetriever(t, 10e9, 32))
	cached := base
	cached.PrefixCache = true
	rb, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Run(cached)
	if err != nil {
		t.Fatal(err)
	}
	if rc.E2E >= rb.E2E {
		t.Fatalf("RAGCache E2E %v should beat baseline %v", rc.E2E, rb.E2E)
	}
	// Exactly (strides-1) prefills are saved.
	saved := rb.E2E - rc.E2E
	want := time.Duration(rb.Strides-1) * base.Engine.PrefillLatency(32, 512)
	if diff := (saved - want).Seconds(); diff > 0.01 || diff < -0.01 {
		t.Fatalf("prefill savings %v, want %v", saved, want)
	}
	// Prefill energy shrinks accordingly.
	if rc.Energy.Stage("prefill") >= rb.Energy.Stage("prefill") {
		t.Fatal("cached prefill energy should shrink")
	}
}

func TestPipeRAGHidesRetrievalWhenInferenceDominates(t *testing.T) {
	// Small datastore: retrieval < inference, pipelining hides it fully.
	base := baseCfg(t, monoRetriever(t, 1e9, 32))
	piped := base
	piped.Pipelined = true
	rb, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(piped)
	if err != nil {
		t.Fatal(err)
	}
	if rp.E2E >= rb.E2E {
		t.Fatalf("PipeRAG %v should beat baseline %v", rp.E2E, rb.E2E)
	}
	// Fig. 8: pipelining saves up to ~1.62x on small datastores.
	speedup := rb.E2E.Seconds() / rp.E2E.Seconds()
	if speedup < 1.1 || speedup > 2.5 {
		t.Fatalf("small-datastore pipelining speedup %v, want ~1.6", speedup)
	}
}

// Fig. 8 right panel: prior-work speedups shrink as the datastore grows.
func TestPriorWorkBenefitShrinksAtScale(t *testing.T) {
	speedupAt := func(tokens int64, pipelined, cached bool) float64 {
		base := baseCfg(t, monoRetriever(t, tokens, 32))
		opt := base
		opt.Pipelined = pipelined
		opt.PrefixCache = cached
		rb, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		ro, err := Run(opt)
		if err != nil {
			t.Fatal(err)
		}
		return rb.E2E.Seconds() / ro.E2E.Seconds()
	}
	pipeSmall := speedupAt(1e9, true, false)
	pipeLarge := speedupAt(100e9, true, false)
	if pipeLarge >= pipeSmall {
		t.Fatalf("PipeRAG speedup should shrink with scale: %v -> %v", pipeSmall, pipeLarge)
	}
	cacheSmall := speedupAt(1e9, false, true)
	cacheLarge := speedupAt(100e9, false, true)
	if cacheLarge >= cacheSmall {
		t.Fatalf("RAGCache speedup should shrink with scale: %v -> %v", cacheSmall, cacheLarge)
	}
	// At 100B tokens retrieval dwarfs inference; both optimizations give
	// almost nothing (< 15% residual benefit).
	if pipeLarge > 1.15 || cacheLarge > 1.15 {
		t.Fatalf("at 100B tokens speedups should collapse: pipe=%v cache=%v", pipeLarge, cacheLarge)
	}
}

// The headline comparison: Hermes vs monolithic at scale, on its own and
// with prior optimizations stacked.
func TestHermesEndToEndSpeedup(t *testing.T) {
	tokens := int64(100e9)
	baseline, err := Run(baseCfg(t, monoRetriever(t, tokens, 32)))
	if err != nil {
		t.Fatal(err)
	}
	hermesCfg := baseCfg(t, hermesRetriever(t, tokens, 10, 32, 3))
	hermes, err := Run(hermesCfg)
	if err != nil {
		t.Fatal(err)
	}
	speedup := baseline.E2E.Seconds() / hermes.E2E.Seconds()
	if speedup < 3 {
		t.Fatalf("Hermes E2E speedup %v at 100B tokens, want > 3", speedup)
	}
	// TTFT speedup too (Takeaway 2).
	ttftSpeedup := baseline.TTFT.Seconds() / hermes.TTFT.Seconds()
	if ttftSpeedup < 3 {
		t.Fatalf("Hermes TTFT speedup %v, want > 3", ttftSpeedup)
	}
	// Energy should also improve (fewer node-seconds of deep search than
	// one giant scan, despite sampling overhead).
	if hermes.TotalJoules() >= baseline.TotalJoules() {
		t.Fatalf("Hermes energy %v should beat monolithic %v", hermes.TotalJoules(), baseline.TotalJoules())
	}

	// Stacking PipeRAG+RAGCache on Hermes improves it further.
	stacked := hermesCfg
	stacked.Pipelined = true
	stacked.PrefixCache = true
	rs, err := Run(stacked)
	if err != nil {
		t.Fatal(err)
	}
	if rs.E2E >= hermes.E2E {
		t.Fatalf("Hermes+prior %v should beat Hermes alone %v", rs.E2E, hermes.E2E)
	}
}

func TestEnergyLedgerStages(t *testing.T) {
	rep, err := Run(baseCfg(t, monoRetriever(t, 10e9, 32)))
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"encode", "retrieve", "prefill", "decode"} {
		if rep.Energy.Stage(stage) <= 0 {
			t.Fatalf("stage %s has no energy", stage)
		}
	}
	if rep.TotalJoules() <= 0 {
		t.Fatal("total energy must be positive")
	}
}

func TestStrategyName(t *testing.T) {
	if StrategyName(false, false) != "Baseline" ||
		StrategyName(true, false) != "PipeRAG" ||
		StrategyName(false, true) != "RAGCache" ||
		StrategyName(true, true) != "PipeRAG+RAGCache" {
		t.Fatal("strategy names wrong")
	}
}

func TestSplitAllRetriever(t *testing.T) {
	cl, err := multinode.EvenCluster(hwmodel.XeonGold6448Y, 100e9, 10)
	if err != nil {
		t.Fatal(err)
	}
	r := &SplitAllRetriever{Cluster: cl, Batch: 32}
	lat, j := r.RetrieveBatch()
	if lat <= 0 || j <= 0 {
		t.Fatalf("split-all cost degenerate: %v %v", lat, j)
	}
	if r.Name() != "split-all" {
		t.Fatal("name wrong")
	}
}
