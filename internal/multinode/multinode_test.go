package multinode

import (
	"testing"
	"time"

	"repro/internal/hwmodel"
)

func evenCluster(t testing.TB, tokens int64, n int) *Cluster {
	t.Helper()
	c, err := EvenCluster(hwmodel.XeonGold6448Y, tokens, n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(hwmodel.XeonGold6448Y, nil); err == nil {
		t.Fatal("empty cluster should error")
	}
	if _, err := NewCluster(hwmodel.XeonGold6448Y, []int64{0}); err == nil {
		t.Fatal("zero-token shard should error")
	}
	if _, err := EvenCluster(hwmodel.XeonGold6448Y, 100e9, 0); err == nil {
		t.Fatal("zero nodes should error")
	}
	bad := hwmodel.CPUSpec{Name: "bad"}
	if _, err := NewCluster(bad, []int64{1}); err == nil {
		t.Fatal("invalid CPU should error")
	}
}

func TestEvenClusterShape(t *testing.T) {
	c := evenCluster(t, 100e9, 10)
	if c.Nodes() != 10 {
		t.Fatalf("nodes = %d", c.Nodes())
	}
	if c.TotalTokens() != 100e9 {
		t.Fatalf("total = %d", c.TotalTokens())
	}
}

// Distribution's core benefit: splitting over 10 nodes cuts batch latency
// ~10x vs the monolithic node (Fig. 14's distributed-splitting gain).
func TestSplitAllLatencySpeedup(t *testing.T) {
	mono := Monolithic(hwmodel.XeonGold6448Y, 100e9, 32)
	c := evenCluster(t, 100e9, 10)
	split := c.SplitAll(32)
	speedup := mono.Latency.Seconds() / split.Latency.Seconds()
	if speedup < 9.9 || speedup > 10.1 {
		t.Fatalf("split speedup = %v, want ~10", speedup)
	}
}

// The paper's Section 4.1 warning: naive distribution costs MORE energy than
// the monolithic search (all nodes burn power for every query).
func TestSplitAllEnergyExceedsMonolithic(t *testing.T) {
	mono := Monolithic(hwmodel.XeonGold6448Y, 100e9, 32)
	c := evenCluster(t, 100e9, 10)
	split := c.SplitAll(32)
	if split.EnergyJ <= mono.EnergyJ {
		t.Fatalf("naive split energy %v should exceed monolithic %v", split.EnergyJ, mono.EnergyJ)
	}
	// Imbalanced shards (the realistic k-means outcome) widen the gap:
	// light nodes idle while the largest shard finishes.
	shards := []int64{14e9, 10e9, 8e9, 8e9, 6e9, 14e9, 10e9, 10e9, 12e9, 8e9}
	imb, err := NewCluster(hwmodel.XeonGold6448Y, shards)
	if err != nil {
		t.Fatal(err)
	}
	imbSplit := imb.SplitAll(32)
	if imbSplit.EnergyJ <= split.EnergyJ {
		t.Fatalf("imbalanced split energy %v should exceed balanced %v", imbSplit.EnergyJ, split.EnergyJ)
	}
}

func hermesCfg(batch, nodes, deep int) HermesConfig {
	return HermesConfig{
		Batch:          batch,
		DeepLoads:      SpreadLoads(nodes, batch, deep),
		SampleFraction: 8.0 / 128.0,
		Policy:         DVFSNone,
	}
}

func TestHermesValidation(t *testing.T) {
	c := evenCluster(t, 100e9, 10)
	if _, err := c.Hermes(HermesConfig{Batch: 0, DeepLoads: make([]int, 10), SampleFraction: 0.1}); err == nil {
		t.Fatal("zero batch should error")
	}
	if _, err := c.Hermes(HermesConfig{Batch: 32, DeepLoads: make([]int, 3), SampleFraction: 0.1}); err == nil {
		t.Fatal("mismatched DeepLoads should error")
	}
	if _, err := c.Hermes(HermesConfig{Batch: 32, DeepLoads: make([]int, 10), SampleFraction: 0}); err == nil {
		t.Fatal("zero SampleFraction should error")
	}
}

// Hermes at 3 deep clusters must beat the naive all-node search on both
// throughput and energy (Takeaway 4 / Fig. 18: 1.81x QPS, 1.77x energy at 3
// of 10 clusters).
func TestHermesBeatsSplitAll(t *testing.T) {
	c := evenCluster(t, 100e9, 10)
	split := c.SplitAll(128)
	hermes, err := c.Hermes(hermesCfg(128, 10, 3))
	if err != nil {
		t.Fatal(err)
	}
	qpsRatio := hermes.Throughput(128) / split.Throughput(128)
	energyRatio := split.EnergyJ / hermes.EnergyJ
	// Paper: 1.81x QPS and 1.77x energy; require the same ballpark.
	if qpsRatio < 1.4 || qpsRatio > 2.6 {
		t.Fatalf("Hermes QPS ratio %v, want ~1.8", qpsRatio)
	}
	if energyRatio < 1.4 || energyRatio > 2.6 {
		t.Fatalf("Hermes energy ratio %v, want ~1.77", energyRatio)
	}
	if hermes.NodesBusy != 10 {
		t.Fatalf("deep nodes busy = %d, want 10 (spread loads)", hermes.NodesBusy)
	}
}

// Fig. 18 shape: energy grows and throughput falls as more clusters are
// deep-searched.
func TestHermesClustersSearchedMonotone(t *testing.T) {
	c := evenCluster(t, 100e9, 10)
	var prevEnergy float64
	var prevQPS float64
	for deep := 1; deep <= 10; deep++ {
		cost, err := c.Hermes(hermesCfg(128, 10, deep))
		if err != nil {
			t.Fatal(err)
		}
		if deep > 1 {
			if cost.EnergyJ <= prevEnergy {
				t.Fatalf("energy should grow with deep clusters: %v <= %v at %d", cost.EnergyJ, prevEnergy, deep)
			}
			if cost.Throughput(128) > prevQPS {
				t.Fatalf("throughput should not grow with deep clusters at %d", deep)
			}
		}
		prevEnergy = cost.EnergyJ
		prevQPS = cost.Throughput(128)
	}
}

// Hermes searching ALL clusters costs more than SplitAll by the sampling
// overhead — sampling only pays off because it lets the deep phase shrink.
func TestHermesAllClustersCostsSamplingOverhead(t *testing.T) {
	c := evenCluster(t, 100e9, 10)
	split := c.SplitAll(128)
	all, err := c.Hermes(hermesCfg(128, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	if all.Latency <= split.Latency {
		t.Fatal("Hermes deep=10 should not be faster than SplitAll")
	}
}

func TestDVFSBaselineSavesEnergy(t *testing.T) {
	// Uneven shards: light nodes can slow down to the slowest node's
	// latency and save energy without hurting the batch window.
	shards := []int64{14e9, 10e9, 8e9, 8e9, 6e9, 14e9, 10e9, 10e9, 12e9, 8e9}
	c, err := NewCluster(hwmodel.XeonGold6448Y, shards)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hermesCfg(128, 10, 4)
	none, err := c.Hermes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = DVFSBaseline
	baseline, err := c.Hermes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.EnergyJ >= none.EnergyJ {
		t.Fatalf("baseline DVFS energy %v should be < none %v", baseline.EnergyJ, none.EnergyJ)
	}
	if baseline.Latency > none.Latency+time.Millisecond {
		t.Fatalf("baseline DVFS must not extend the batch window: %v vs %v", baseline.Latency, none.Latency)
	}
}

func TestDVFSEnhancedSavesMore(t *testing.T) {
	shards := []int64{14e9, 10e9, 8e9, 8e9, 6e9, 14e9, 10e9, 10e9, 12e9, 8e9}
	c, err := NewCluster(hwmodel.XeonGold6448Y, shards)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hermesCfg(128, 10, 4)
	// Retrieval is pipelined with an inference stage 3x slower; both
	// policies live inside (and are charged for) the same window.
	base, err := c.Hermes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PipelineWindow = base.Latency * 3
	cfg.Policy = DVFSBaseline
	baseline, err := c.Hermes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Policy = DVFSEnhanced
	enhanced, err := c.Hermes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if enhanced.EnergyJ >= baseline.EnergyJ {
		t.Fatalf("enhanced DVFS energy %v should be < baseline %v", enhanced.EnergyJ, baseline.EnergyJ)
	}
}

func TestSpreadLoads(t *testing.T) {
	loads := SpreadLoads(10, 128, 3)
	if len(loads) != 10 {
		t.Fatalf("loads len %d", len(loads))
	}
	total := 0
	for _, l := range loads {
		total += l
		// Even spread: every node within 1 of the mean 38.4.
		if l < 38 || l > 39 {
			t.Fatalf("load %d outside even spread", l)
		}
	}
	if total != 128*3 {
		t.Fatalf("total deep searches %d, want 384", total)
	}
	// Clamp when deepClusters > nodes.
	over := SpreadLoads(2, 10, 5)
	if len(over) != 2 {
		t.Fatal("clamped loads wrong length")
	}
	sum := over[0] + over[1]
	if sum != 10*2 {
		t.Fatalf("clamped total = %d, want 20", sum)
	}
}

func TestBatchCostThroughput(t *testing.T) {
	b := BatchCost{Latency: 2 * time.Second}
	if b.Throughput(128) != 64 {
		t.Fatalf("throughput = %v", b.Throughput(128))
	}
	if (BatchCost{}).Throughput(10) != 0 {
		t.Fatal("zero latency throughput should be 0")
	}
}

func TestPolicyString(t *testing.T) {
	if DVFSNone.String() != "none" || DVFSBaseline.String() != "baseline" || DVFSEnhanced.String() != "enhanced" {
		t.Fatal("policy names wrong")
	}
	if DVFSPolicy(9).String() == "" {
		t.Fatal("unknown policy should still render")
	}
}
