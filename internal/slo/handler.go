package slo

import (
	"encoding/json"
	"fmt"
	"net/http"
	"text/tabwriter"
)

// ServeSLO is the /debug/slo handler: one row per objective as a text table,
// or JSON with ?format=json. It ticks first so the response reflects the
// current windows. Safe to mount on a nil *Engine.
func (e *Engine) ServeSLO(w http.ResponseWriter, r *http.Request) {
	if e == nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "slo engine disabled")
		return
	}
	e.Tick()
	reports := e.Reports()
	if r.URL.Query().Get("format") == "json" {
		type jsonWindow struct {
			Window      string  `json:"window"`
			Good        int64   `json:"good"`
			Total       int64   `json:"total"`
			BadFraction float64 `json:"bad_fraction"`
			BurnRate    float64 `json:"burn_rate"`
		}
		type jsonReport struct {
			Name            string     `json:"name"`
			Kind            string     `json:"kind"`
			Target          float64    `json:"target"`
			Threshold       string     `json:"threshold,omitempty"`
			Fast            jsonWindow `json:"fast"`
			Slow            jsonWindow `json:"slow"`
			BudgetRemaining float64    `json:"budget_remaining"`
			Burning         bool       `json:"burning"`
		}
		out := make([]jsonReport, 0, len(reports))
		for _, rep := range reports {
			jr := jsonReport{
				Name:   rep.Objective.Name,
				Kind:   rep.Objective.Kind.String(),
				Target: rep.Objective.Target,
				Fast: jsonWindow{Window: rep.Fast.Window.String(), Good: rep.Fast.Good,
					Total: rep.Fast.Total, BadFraction: rep.Fast.BadFraction, BurnRate: rep.Fast.BurnRate},
				Slow: jsonWindow{Window: rep.Slow.Window.String(), Good: rep.Slow.Good,
					Total: rep.Slow.Total, BadFraction: rep.Slow.BadFraction, BurnRate: rep.Slow.BurnRate},
				BudgetRemaining: rep.BudgetRemaining,
				Burning:         rep.Burning,
			}
			if rep.Objective.Kind == KindLatency {
				jr.Threshold = rep.Objective.Threshold.String()
			}
			out = append(out, jr)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	WriteBurnTable(w, reports)
}

// WriteBurnTable renders reports as the burn-rate table shared by
// /debug/slo and the examples/CLI output.
func WriteBurnTable(w interface{ Write([]byte) (int, error) }, reports []Report) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "OBJECTIVE\tKIND\tTARGET\tFAST BURN\tSLOW BURN\tBUDGET LEFT\tSTATUS")
	for _, rep := range reports {
		kind := rep.Objective.Kind.String()
		if rep.Objective.Kind == KindLatency {
			kind = fmt.Sprintf("latency<=%s", rep.Objective.Threshold)
		}
		status := "healthy"
		if rep.Burning {
			status = "BURNING"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.4g\t%.3g\t%.3g\t%.1f%%\t%s\n",
			rep.Objective.Name, kind, rep.Objective.Target,
			rep.Fast.BurnRate, rep.Slow.BurnRate, rep.BudgetRemaining*100, status)
	}
	// A tabwriter flush error surfaces the underlying writer's error; the
	// HTTP response has no better channel for it.
	_ = tw.Flush()
}
