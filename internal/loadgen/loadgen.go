// Package loadgen is an open-loop load generator for the retrieval serving
// path: queries arrive on a Poisson process at a target rate regardless of
// how fast the system drains them (the standard methodology for measuring
// serving latency under load, matching the paper's "Load Generator → Query
// Trace" box in Figure 15). Reported latency is sojourn time — queueing
// plus service — so saturation shows up as exploding tails rather than
// flattering closed-loop numbers.
package loadgen

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
)

// SearchFunc executes one query by index; the load generator measures it.
type SearchFunc func(queryIdx int) error

// Config drives a run.
type Config struct {
	// TargetQPS is the offered arrival rate.
	TargetQPS float64
	// Queries is the number of arrivals to generate.
	Queries int
	// Concurrency bounds in-flight searches (service stations). Default 1
	// (a single node executing one batch wave at a time models one core
	// group; raise it for multi-node tiers).
	Concurrency int
	// Seed drives the Poisson arrival process.
	Seed int64
}

// Report summarizes a completed run.
type Report struct {
	// Offered is the number of generated arrivals; Completed those that
	// finished successfully; Failed those whose SearchFunc errored.
	Offered, Completed, Failed int
	// Wall is the time from first arrival to last completion.
	Wall time.Duration
	// AchievedQPS is Completed / Wall.
	AchievedQPS float64
	// Sojourn summarizes per-query queue+service latency.
	Sojourn metrics.LatencySummary
	// Service summarizes per-query service-only latency.
	Service metrics.LatencySummary
}

// Run generates cfg.Queries Poisson arrivals at cfg.TargetQPS and executes
// them through fn with bounded concurrency.
func Run(cfg Config, fn SearchFunc) (*Report, error) {
	if cfg.TargetQPS <= 0 {
		return nil, fmt.Errorf("loadgen: TargetQPS must be positive")
	}
	if cfg.Queries <= 0 {
		return nil, fmt.Errorf("loadgen: Queries must be positive")
	}
	if fn == nil {
		return nil, fmt.Errorf("loadgen: SearchFunc is required")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	type job struct {
		idx     int
		arrival time.Time
	}
	jobs := make(chan job, cfg.Queries)

	var mu sync.Mutex
	sojourns := make([]time.Duration, 0, cfg.Queries)
	services := make([]time.Duration, 0, cfg.Queries)
	failed := 0

	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				serviceStart := time.Now()
				err := fn(j.idx)
				done := time.Now()
				mu.Lock()
				if err != nil {
					failed++
				} else {
					sojourns = append(sojourns, done.Sub(j.arrival))
					services = append(services, done.Sub(serviceStart))
				}
				mu.Unlock()
			}
		}()
	}

	start := time.Now()
	next := start
	for i := 0; i < cfg.Queries; i++ {
		// Exponential inter-arrival times define the Poisson process.
		gap := time.Duration(rng.ExpFloat64() / cfg.TargetQPS * float64(time.Second))
		next = next.Add(gap)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		jobs <- job{idx: i, arrival: time.Now()}
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)

	rep := &Report{
		Offered:   cfg.Queries,
		Completed: len(sojourns),
		Failed:    failed,
		Wall:      wall,
		Sojourn:   metrics.Summarize(sojourns),
		Service:   metrics.Summarize(services),
	}
	if wall > 0 {
		rep.AchievedQPS = float64(rep.Completed) / wall.Seconds()
	}
	return rep, nil
}
