package hermes

import (
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestStoreRecorderRecordsQueries(t *testing.T) {
	c := testCorpus(t, 600, 4)
	st := buildStore(t, c.Vectors, 4)
	rec := telemetry.NewRecorder(32, 0)
	st.SetRecorder(rec)
	q := c.Queries(1, 3).Vectors.Row(0)
	p := DefaultParams()

	// Traced query: the record carries the trace's spans and breakdown.
	tr := telemetry.NewTrace()
	_, stats := st.SearchTraced(q, p, tr)
	qr, ok := rec.Find(tr.ID())
	if !ok {
		t.Fatalf("traced query %016x not recorded", tr.ID())
	}
	if qr.Total <= 0 || qr.Busy <= 0 {
		t.Errorf("record missing timing: %+v", qr)
	}
	names := make(map[string]int)
	for _, s := range qr.Spans {
		names[s.Name]++
	}
	for _, phase := range []string{"sample", "rank", "deep"} {
		if names[phase] != 1 {
			t.Errorf("recorded spans missing phase %s: %v", phase, names)
		}
	}
	if len(qr.DeepNodes) != len(stats.DeepShards) {
		t.Errorf("record DeepNodes = %v, stats %v", qr.DeepNodes, stats.DeepShards)
	}
	if qr.Scanned != int64(stats.SampleScanned+stats.DeepScanned) {
		t.Errorf("record Scanned = %d, stats say %d", qr.Scanned, stats.SampleScanned+stats.DeepScanned)
	}

	// Untraced query: still recorded, with a minted ID and no spans.
	st.Search(q, p)
	recent := rec.Recent(10)
	if len(recent) != 2 {
		t.Fatalf("recorder holds %d records, want 2", len(recent))
	}
	latest := recent[0]
	if latest.TraceID == 0 || latest.TraceID == tr.ID() {
		t.Errorf("untraced query must get its own minted trace ID: %016x", latest.TraceID)
	}
	if len(latest.Spans) != 0 {
		t.Errorf("untraced query must not carry spans: %+v", latest.Spans)
	}
	if latest.Busy != latest.Total {
		t.Errorf("span-less record must report busy == total: %+v", latest)
	}

	// Detaching stops recording.
	st.SetRecorder(nil)
	st.Search(q, p)
	if got := len(rec.Recent(10)); got != 2 {
		t.Errorf("detached store still recorded: %d records", got)
	}
}

// TestStoreRecorderConcurrent hammers one store+recorder from parallel
// searchers while readers page through Recent/Find/Slow — the in-process
// equivalent of live traffic with an operator on /debug/queries. Run under
// -race (scripts/verify.sh includes this package in the race list).
func TestStoreRecorderConcurrent(t *testing.T) {
	c := testCorpus(t, 600, 4)
	st := buildStore(t, c.Vectors, 4)
	rec := telemetry.NewRecorder(64, time.Nanosecond) // pin everything
	st.SetRecorder(rec)
	qs := c.Queries(8, 7)
	p := DefaultParams()

	var wg sync.WaitGroup
	const searchers = 4
	for w := 0; w < searchers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := qs.Vectors.Row((w + i) % qs.Vectors.Len())
				if i%2 == 0 {
					st.SearchTraced(q, p, telemetry.NewTrace())
				} else {
					st.Search(q, p)
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, qr := range rec.Recent(16) {
					rec.Find(qr.TraceID)
				}
				rec.Slow(8)
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	if got := len(rec.Recent(200)); got == 0 {
		t.Fatal("no queries recorded")
	}
	if got := len(rec.Slow(200)); got == 0 {
		t.Fatal("1ns threshold must pin queries")
	}
}
