package lint

import (
	"go/ast"
)

// HotPathAlloc extends the //hermes:hotpath contract from clock reads
// (hotpathclock) to heap allocations, module-wide and transitively: inside
// an annotated function, every syntactic allocation site (make/new, slice
// and map literals, &T{}, growth-capable append, capturing closures, string
// concatenation and copying conversions, go statements — see allocSites)
// and every call to a function that allocates on ITS straight-line path
// (the fact engine's alloc lattice, seeded by allocFuncs) must be gated
// behind a conditional. This locks in PR 3's zero-allocation scan-path
// guarantee mechanically: the benchmark that proved 0 allocs/op can only
// rot through a diff this analyzer flags.
//
// The exemptions mirror what that audit kept (documented at allocSites):
// append into caller-owned backing (the AppendResults(dst) / pooled-scratch
// pattern) and captureless function literals. Calls through function values
// and module interface methods resolve to no callee and are not judged —
// the engine under-approximates; the ivf kernel indirection stays exempt
// by design and is covered by the kernel benchmarks instead.
//
// Pool warm-up paths that must allocate take //lint:ignore hotpathalloc
// <reason> at the site — but note the gating rule usually makes that
// unnecessary: `if s.tk == nil { s.tk = vec.NewTopK(k) }` is already gated.
var HotPathAlloc = &Analyzer{
	Name:      "hotpathalloc",
	Doc:       "//hermes:hotpath functions must keep heap allocations (direct and transitive) gated behind a conditional",
	Run:       runHotPathAlloc,
	TestFiles: true,
}

func runHotPathAlloc(p *Pass) {
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(hotpathDirective, fd.Doc) {
				continue
			}
			for _, s := range allocSites(p.Info, fd) {
				p.Reportf(s.pos, "ungated %s in //hermes:hotpath function %s; the straight-line path must stay allocation-free (gate slow-path work behind a conditional), or suppress with //lint:ignore hotpathalloc <reason>", s.what, fd.Name.Name)
			}
			hotAllocCalls(p, fd)
		}
	}
}

// hotAllocCalls flags ungated calls (outside function literals) whose
// callee carries the alloc fact: the allocation is a helper away, but still
// lands on this function's straight-line path.
func hotAllocCalls(p *Pass, fd *ast.FuncDecl) {
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || gatedByConditional(stack, call.Pos()) {
			return true
		}
		callee := calleeFunc(p.Info, call)
		if callee == nil || !p.Facts.Allocates(callee) {
			return true
		}
		p.Reportf(call.Pos(), "ungated call to %s, which allocates on its straight-line path, in //hermes:hotpath function %s; gate it behind a conditional, make the callee allocation-free, or suppress with //lint:ignore hotpathalloc <reason>", calleeDisplay(callee), fd.Name.Name)
		return true
	})
}
