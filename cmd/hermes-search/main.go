// Command hermes-search queries an index directory built by hermes-build,
// running either the monolithic search or the Hermes hierarchical search
// depending on the index type, and prints retrieved chunk IDs, text
// snippets, and per-query statistics.
//
// Queries are regenerated deterministically from the corpus spec recorded in
// meta.json (the corpus is synthetic; query vectors must come from the same
// topic distribution to be meaningful).
//
// Usage:
//
//	hermes-search -index ./idx -queries 5
//	hermes-search -index ./idx -queries 5 -deep 5 -k 10
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/hermes"
	"repro/pkg/indexfile"
)

func main() {
	var (
		dir     = flag.String("index", "hermes-index", "index directory from hermes-build")
		queries = flag.Int("queries", 5, "number of queries to run")
		qseed   = flag.Int64("qseed", 7, "query generation seed")
		k       = flag.Int("k", 5, "documents to retrieve")
		deep    = flag.Int("deep", 3, "clusters to deep-search (hermes/split)")
		sampleN = flag.Int("sample-nprobe", 8, "sample-phase nProbe")
		deepN   = flag.Int("deep-nprobe", 128, "deep-phase nProbe")
		snippet = flag.Int("snippet", 12, "words of chunk text to print")
		text    = flag.String("text", "", "free-text query (requires an index built with -embed text)")
	)
	flag.Parse()

	meta, indexes, err := indexfile.ReadAll(*dir)
	if err != nil {
		fatal(err)
	}
	c, err := corpus.Generate(meta.Corpus)
	if err != nil {
		fatal(err)
	}
	store := corpus.NewChunkStore(c)
	var queryVecs [][]float32
	var queryTopics []int
	if *text != "" {
		if meta.Embedding != "text" {
			fatal(fmt.Errorf("-text requires an index built with hermes-build -embed text"))
		}
		enc := encoder.NewHashEncoder(meta.Dim)
		queryVecs = [][]float32{enc.Encode(*text)}
		queryTopics = []int{-1}
	} else if meta.Embedding == "text" {
		// Synthesize topical text queries and embed them the same way the
		// index was built.
		enc := encoder.NewHashEncoder(meta.Dim)
		for i := 0; i < *queries; i++ {
			topic := i % meta.Corpus.NumTopics
			queryVecs = append(queryVecs, enc.Encode(corpus.QueryText(topic, 8, *qseed+int64(i))))
			queryTopics = append(queryTopics, topic)
		}
	} else {
		qs := c.Queries(*queries, *qseed)
		for i := 0; i < qs.Vectors.Len(); i++ {
			queryVecs = append(queryVecs, qs.Vectors.Row(i))
			queryTopics = append(queryTopics, qs.Topics[i])
		}
	}
	params := hermes.Params{K: *k, SampleNProbe: *sampleN, DeepNProbe: *deepN, DeepClusters: *deep}

	fmt.Printf("index: %s (%s, %d shards, dim %d, %d chunks)\n\n",
		*dir, meta.Type, meta.Shards, meta.Dim, meta.Corpus.NumChunks)

	var st *hermes.Store
	if meta.Type != "monolithic" {
		st, err = hermes.FromIndexes(indexes)
		if err != nil {
			fatal(err)
		}
	}

	for i := 0; i < len(queryVecs); i++ {
		q := queryVecs[i]
		start := time.Now()
		var ids []int64
		var statsLine string
		if meta.Type == "monolithic" {
			res := indexes[0].Search(q, *k, *deepN)
			for _, n := range res {
				ids = append(ids, n.ID)
			}
			statsLine = fmt.Sprintf("nProbe=%d", *deepN)
		} else {
			res, stats := st.Search(q, params)
			for _, n := range res {
				ids = append(ids, n.ID)
			}
			statsLine = fmt.Sprintf("sampled=%d deep=%v scanned=%d+%d",
				stats.SampledShards, stats.DeepShards, stats.SampleScanned, stats.DeepScanned)
		}
		elapsed := time.Since(start)

		fmt.Printf("query %d (topic %d, %v, %s):\n", i, queryTopics[i], elapsed, statsLine)
		for rank, id := range ids {
			txt, err := store.Get(id)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %d. chunk %-6d %s\n", rank+1, id, truncateWords(txt, *snippet))
		}
		fmt.Println()
	}
}

func truncateWords(s string, n int) string {
	count := 0
	for i, r := range s {
		if r == ' ' {
			count++
			if count >= n {
				return s[:i] + " ..."
			}
		}
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hermes-search:", err)
	os.Exit(1)
}
