// Package rerank implements the re-ranking stage of the RAG pipeline
// (Section 2.2 / Section 5 of the paper): after the index returns candidate
// document IDs scored by compressed-domain distances, candidates are
// re-scored against full-precision vectors — the paper re-ranks its five
// retrieved chunks by inner-product distance with the query and prepends
// the best one to the prompt.
package rerank

import (
	"fmt"
	"sort"

	"repro/internal/vec"
)

// Metric selects the re-scoring function.
type Metric int

const (
	// InnerProduct ranks by descending query·doc (the paper's choice).
	InnerProduct Metric = iota
	// L2 ranks by ascending squared Euclidean distance.
	L2
	// Cosine ranks by descending cosine similarity.
	Cosine
)

func (m Metric) String() string {
	switch m {
	case InnerProduct:
		return "inner-product"
	case L2:
		return "l2"
	case Cosine:
		return "cosine"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Reranker re-scores candidates against a full-precision vector source.
type Reranker struct {
	metric Metric
	// lookup maps a document ID to its full-precision vector; returning
	// false drops the candidate (e.g. a stale ID).
	lookup func(id int64) ([]float32, bool)
}

// New builds a reranker over an arbitrary vector source.
func New(metric Metric, lookup func(id int64) ([]float32, bool)) *Reranker {
	if lookup == nil {
		panic("rerank: lookup must not be nil")
	}
	return &Reranker{metric: metric, lookup: lookup}
}

// NewFromMatrix builds a reranker whose IDs index rows of m (the usual case:
// chunk ID i is row i of the corpus matrix).
func NewFromMatrix(metric Metric, m *vec.Matrix) *Reranker {
	return New(metric, func(id int64) ([]float32, bool) {
		if id < 0 || id >= int64(m.Len()) {
			return nil, false
		}
		return m.Row(int(id)), true
	})
}

// Metric reports the configured metric.
func (r *Reranker) Metric() Metric { return r.metric }

// score returns a value where larger is better, regardless of metric.
func (r *Reranker) score(q, d []float32) float32 {
	switch r.metric {
	case InnerProduct:
		return vec.Dot(q, d)
	case L2:
		return -vec.L2Squared(q, d)
	case Cosine:
		return vec.Cosine(q, d)
	default:
		panic(fmt.Sprintf("rerank: unknown metric %d", r.metric))
	}
}

// Rerank re-scores the candidates against q and returns them best-first.
// Candidates whose vectors cannot be resolved are dropped. The returned
// Neighbor scores are the re-ranker's scores (larger = better), replacing
// the index's compressed-domain distances.
func (r *Reranker) Rerank(q []float32, candidates []vec.Neighbor) []vec.Neighbor {
	out := make([]vec.Neighbor, 0, len(candidates))
	for _, c := range candidates {
		d, ok := r.lookup(c.ID)
		if !ok {
			continue
		}
		out = append(out, vec.Neighbor{ID: c.ID, Score: r.score(q, d)})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// Best returns the single highest-scoring candidate (the chunk the paper
// prepends to the prompt) or false if none resolves.
func (r *Reranker) Best(q []float32, candidates []vec.Neighbor) (vec.Neighbor, bool) {
	ranked := r.Rerank(q, candidates)
	if len(ranked) == 0 {
		return vec.Neighbor{}, false
	}
	return ranked[0], true
}
