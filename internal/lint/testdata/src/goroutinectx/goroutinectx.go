// Package goroutinectx is a lint fixture: goroutine launch hygiene.
package goroutinectx

import (
	"context"
	"sync"
)

func fireAndForget() {
	go func() { // line 10: flagged (no completion mechanism)
		println("leak")
	}()
}

func loopCapture(items []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			println(i) // line 21: flagged (captures loop variable i)
		}()
	}
	wg.Wait()
}

func goodWaitGroupParam(items []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			println(i)
		}(i)
	}
	wg.Wait()
}

func goodChannel() <-chan int {
	out := make(chan int)
	go func() {
		out <- 1
		close(out)
	}()
	return out
}

func goodContext(ctx context.Context) {
	go func(ctx context.Context) {
		<-ctx.Done()
	}(ctx)
}

func suppressed() {
	//lint:ignore goroutinectx detached telemetry flusher lives for the whole process
	go func() { println("ok") }()
}
