package hermes

import (
	"fmt"

	"repro/internal/vec"
)

// Online datastore mutation. The motivation for RAG is a datastore that
// evolves faster than models can be retrained (paper Section 1), so the
// disaggregated store supports incremental ingest and removal without an
// offline rebuild: new documents are routed to the shard whose k-means
// centroid is nearest (the same rule that assigned the original corpus) and
// removal tombstones the entry inside the owning shard's IVF index.
//
// Clustering quality degrades slowly as the corpus drifts away from the
// centroids; Rebalance-style re-clustering remains an offline operation, as
// in the paper's index-construction workflow.

// Add ingests a new document vector under id, routing it to the most
// similar shard. It returns the shard index chosen.
func (st *Store) Add(id int64, v []float32) (int, error) {
	if len(st.Shards) == 0 {
		return 0, fmt.Errorf("hermes: Add on empty store")
	}
	if len(v) != st.Shards[0].Index.Dim() {
		return 0, fmt.Errorf("hermes: Add dim %d != %d", len(v), st.Shards[0].Index.Dim())
	}
	best, bestDist := 0, float32(0)
	for s, sh := range st.Shards {
		d := vec.L2Squared(v, sh.Centroid)
		if s == 0 || d < bestDist {
			best, bestDist = s, d
		}
	}
	if err := st.Shards[best].Index.Add(id, v); err != nil {
		return 0, err
	}
	st.Shards[best].Size++
	return best, nil
}

// Remove deletes the document stored under id from whichever shard holds
// it. It returns the shard index and false if no shard holds the id.
func (st *Store) Remove(id int64) (int, bool) {
	for s, sh := range st.Shards {
		if sh.Index.Remove(id) {
			sh.Size--
			return s, true
		}
	}
	return 0, false
}

// Compact reclaims tombstoned space in every shard.
func (st *Store) Compact() {
	for _, sh := range st.Shards {
		sh.Index.Compact()
	}
}

// Len returns the number of live documents across all shards.
func (st *Store) Len() int {
	total := 0
	for _, sh := range st.Shards {
		total += sh.Index.Len()
	}
	return total
}
