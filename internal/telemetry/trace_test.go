package telemetry

import (
	"strings"
	"testing"
	"time"
)

// fakeClock steps the package `now` seam a fixed amount per read.
func fakeClock(step time.Duration) func() time.Time {
	base := time.Unix(5000, 0)
	calls := 0
	return func() time.Time {
		t := base.Add(time.Duration(calls) * step)
		calls++
		return t
	}
}

func TestTraceSpansRecordSeamedTime(t *testing.T) {
	orig := now
	defer func() { now = orig }()
	now = fakeClock(time.Millisecond)

	tr := NewTrace()
	if tr.ID() == 0 {
		t.Fatal("trace ID must be non-zero")
	}
	// StartSpan and its closure each read the clock exactly once, so the
	// duration is one fake-clock step no matter what ran before.
	done := tr.StartSpan("sample_scatter")
	done()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	if spans[0].Name != "sample_scatter" {
		t.Errorf("span name = %q", spans[0].Name)
	}
	if spans[0].Duration != time.Millisecond {
		t.Errorf("span duration = %v, want 1ms (one clock step)", spans[0].Duration)
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := NewTrace().ID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %x", id)
		}
		seen[id] = true
	}
}

// TestTraceIDLayout pins the widened ID layout: 32 bits of per-process
// start-time entropy over a 32-bit sequence, so IDs only repeat after 2^32
// traces (not the 2^20 of the first implementation).
func TestTraceIDLayout(t *testing.T) {
	a, b := NewTrace().ID(), NewTrace().ID()
	if a>>32 != b>>32 {
		t.Errorf("high 32 bits must be the per-process base: %016x vs %016x", a, b)
	}
	if uint32(b) != uint32(a)+1 {
		t.Errorf("low 32 bits must be a sequence: %016x then %016x", a, b)
	}
}

func TestNilTraceNoOps(t *testing.T) {
	var tr *Trace
	if tr.ID() != 0 {
		t.Error("nil trace ID must be 0")
	}
	tr.StartSpan("x")() // must not panic
	if tr.Spans() != nil {
		t.Error("nil trace has no spans")
	}
	if got := tr.Breakdown(); !strings.Contains(got, "disabled") {
		t.Errorf("nil breakdown = %q", got)
	}
}

func TestBreakdownOrdersByStart(t *testing.T) {
	orig := now
	defer func() { now = orig }()
	now = fakeClock(time.Millisecond)

	tr := NewTrace()
	endA := tr.StartSpan("sample_scatter")
	endA()
	endB := tr.StartSpan("rank")
	endB()
	endC := tr.StartSpan("deep_gather")
	endC()
	got := tr.Breakdown()
	iA := strings.Index(got, "sample_scatter=")
	iB := strings.Index(got, "rank=")
	iC := strings.Index(got, "deep_gather=")
	if iA < 0 || iB < 0 || iC < 0 || !(iA < iB && iB < iC) {
		t.Errorf("breakdown phases out of order: %q", got)
	}
	if !strings.Contains(got, "total=") {
		t.Errorf("breakdown missing total: %q", got)
	}
	durs := tr.Durations()
	if durs["rank"] != time.Millisecond {
		t.Errorf("rank duration = %v, want 1ms", durs["rank"])
	}
}

// TestSpanTotalsOverlapping pins the Breakdown total semantics: wall time is
// max span end minus min span start, so concurrent spans (parallel scatter
// legs, shipped node spans) are not double-counted, while busy stays the
// plain sum and quantifies the overlap.
func TestSpanTotalsOverlapping(t *testing.T) {
	base := time.Unix(7000, 0)
	tr := NewTrace()
	// A [0, 10ms) and B [5ms, 9ms) overlap; C [12ms, 15ms) is disjoint.
	tr.AddSpan("list_scan", 0, base, 10*time.Millisecond)
	tr.AddSpan("list_scan", 1, base.Add(5*time.Millisecond), 4*time.Millisecond)
	tr.AddSpan("topk_merge", 0, base.Add(12*time.Millisecond), 3*time.Millisecond)

	wall, busy := SpanTotals(tr.Spans())
	if wall != 15*time.Millisecond {
		t.Errorf("wall = %v, want 15ms (max end - min start)", wall)
	}
	if busy != 17*time.Millisecond {
		t.Errorf("busy = %v, want 17ms (duration sum)", busy)
	}
	got := tr.Breakdown()
	if !strings.Contains(got, "total=15ms") || !strings.Contains(got, "busy=17ms") {
		t.Errorf("breakdown must report wall total and busy sum separately: %q", got)
	}
	// Node-shipped spans render with their origin qualifier.
	if !strings.Contains(got, "n1.list_scan=4ms") {
		t.Errorf("breakdown missing node-qualified span: %q", got)
	}
}

func TestSpanTotalsEmpty(t *testing.T) {
	if wall, busy := SpanTotals(nil); wall != 0 || busy != 0 {
		t.Errorf("empty span set: wall=%v busy=%v, want 0/0", wall, busy)
	}
}

// TestWaterfallLayout checks the multi-line cross-node chart: header with
// wall/busy/span count, one start-ordered line per span, node-qualified
// labels, and proportional bars on the wall-time axis.
func TestWaterfallLayout(t *testing.T) {
	base := time.Unix(7000, 0)
	tr := NewTrace()
	tr.AddSpan("list_scan", 2, base.Add(2*time.Millisecond), 6*time.Millisecond)
	tr.AddSpan("decode", 2, base, time.Millisecond)
	end := tr.StartSpan("deep_gather")
	end()

	got := tr.Waterfall()
	lines := strings.Split(got, "\n")
	if len(lines) != 4 {
		t.Fatalf("waterfall lines = %d, want header + 3 spans:\n%s", len(lines), got)
	}
	if !strings.Contains(lines[0], "spans=3") || !strings.Contains(lines[0], "wall=") || !strings.Contains(lines[0], "busy=") {
		t.Errorf("bad waterfall header: %q", lines[0])
	}
	// Start order: decode (offset 0) before list_scan (offset 2ms).
	if !strings.Contains(lines[1], "n2.decode") || !strings.Contains(lines[2], "n2.list_scan") {
		t.Errorf("waterfall rows out of start order:\n%s", got)
	}
	for _, line := range lines[1:] {
		if !strings.Contains(line, "=") || !strings.Contains(line, "|") {
			t.Errorf("span row missing bar: %q", line)
		}
	}
	if (&Trace{}).Waterfall() == "" || (*Trace)(nil).Waterfall() != "trace <disabled>" {
		t.Error("nil/empty waterfall must render placeholders")
	}
}
