package hermes

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/telemetry"
)

func TestStoreTelemetry(t *testing.T) {
	c, err := corpus.Generate(corpus.Spec{NumChunks: 600, Dim: 16, NumTopics: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build(c.Vectors, BuildOptions{NumShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	st.SetTelemetry(reg)

	qs := c.Queries(5, 7)
	for i := 0; i < 5; i++ {
		if res, _ := st.Search(qs.Vectors.Row(i), DefaultParams()); len(res) == 0 {
			t.Fatalf("query %d returned nothing", i)
		}
	}

	snap := reg.Snapshot()
	if got := snap["hermes_store_searches_total"]; got != 5 {
		t.Errorf("searches = %v, want 5", got)
	}
	if got := snap["hermes_store_search_seconds:count"]; got != 5 {
		t.Errorf("latency observations = %v, want 5", got)
	}
	if got := snap["hermes_store_sample_scanned_total"]; got <= 0 {
		t.Errorf("sample scanned = %v, want > 0", got)
	}
	if got := snap["hermes_store_deep_scanned_total"]; got <= 0 {
		t.Errorf("deep scanned = %v, want > 0", got)
	}
	// Per-quantizer scan histogram: 5 queries x (3 sample + up to 3 deep)
	// shard scans, all SQ8 in the default build, on one labeled series.
	scans := snap[`hermes_store_scan_seconds{quantizer="SQ8"}:count`]
	if scans < 5*4 {
		t.Errorf("scan observations = %v, want >= 20", scans)
	}

	// SearchBatch routes through Search, so the counters follow the batch.
	_ = st.SearchBatch(qs.Vectors, DefaultParams())
	if got := reg.Snapshot()["hermes_store_searches_total"]; got != 10 {
		t.Errorf("searches after batch = %v, want 10", got)
	}
}
