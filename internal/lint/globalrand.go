package lint

import (
	"go/ast"
)

// GlobalRand flags calls to math/rand package-level functions in library
// (non-main, non-test) code. Those draw from the shared global Source, so
// k-means seeding, HNSW level sampling, and corpus generation would differ
// run to run — invalidating any benchmark comparison between two builds.
// Library code must thread a seeded *rand.Rand from its config instead.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "package-level math/rand calls break run-to-run reproducibility of index builds; inject a seeded *rand.Rand",
	Run:  runGlobalRand,
}

// globalRandAllowed lists math/rand members that construct or feed an
// injected generator rather than drawing from the global source.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runGlobalRand(p *Pass) {
	if p.Pkg != nil && p.Pkg.Name() == "main" {
		// Entry points own the whole process; the reproducibility contract
		// applies to importable library code.
		return
	}
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn, ok := pkgNameOf(p.Info, sel.X)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if globalRandAllowed[sel.Sel.Name] {
				return true
			}
			p.Reportf(call.Pos(), "rand.%s draws from the package-global source and is not reproducible; inject a seeded *rand.Rand (e.g. via Config.Seed or Config.Rand)", sel.Sel.Name)
			return true
		})
	}
}
