package distsearch

import (
	"sync"
	"testing"
	"time"

	"repro/internal/hermes"
)

// TestConcurrentSearchDuringNodeDrain hammers one coordinator with
// concurrent Search calls while a shard node is closed mid-flight. In
// lenient mode every query must still complete without error (recall may
// drop — the drained shard's documents vanish — but the service stays up).
// Run under -race this also exercises the per-connection locking in
// nodeClient.roundTrip and the Node close path.
func TestConcurrentSearchDuringNodeDrain(t *testing.T) {
	_, lc, co, c := cluster(t, 1200, 6)
	co.SetLenient(true) // set before spawning workers; lenient has no lock
	p := hermes.DefaultParams()
	qs := c.Queries(64, 99)

	const workers = 8
	const perWorker = 30
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				q := qs.Vectors.Row((w*perWorker + i) % qs.Vectors.Len())
				if _, err := co.Search(q, p); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	close(start)

	// Drain one node while searches are in flight.
	time.Sleep(2 * time.Millisecond)
	if err := lc.nodes[len(lc.nodes)-1].Close(); err != nil {
		t.Fatalf("drain node: %v", err)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("lenient search failed during drain: %v", err)
	}
}

// TestConcurrentSearchAndBatch mixes single-query and batched searches from
// many goroutines against one coordinator, verifying the shared nodeClient
// connections serialize correctly (meaningful mainly under -race).
func TestConcurrentSearchAndBatch(t *testing.T) {
	_, _, co, c := cluster(t, 1000, 4)
	p := hermes.DefaultParams()
	qs := c.Queries(32, 17)

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := qs.Vectors.Row((w*20 + i) % qs.Vectors.Len())
				if w%2 == 0 {
					if _, err := co.Search(q, p); err != nil {
						t.Errorf("search: %v", err)
						return
					}
				} else {
					if _, err := co.SearchBatch([][]float32{q, q}, p); err != nil {
						t.Errorf("batch: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
