package inctests

import (
	"math/rand"
	"sync"
	"testing"
)

var pool = sync.Pool{New: func() any { return new(int) }}

// leak escapes a pooled value: poolescape opts into test files, so this is
// found under -include-tests.
func leak() *int {
	return pool.Get().(*int)
}

// jitter uses global math/rand: globalrand does NOT opt into test files, so
// this stays unflagged even under -include-tests.
func jitter() float32 {
	return rand.Float32()
}

func TestFixture(t *testing.T) {
	if leak() == nil || jitter() < -1 {
		t.Fatal("unreachable")
	}
}
