package distsearch

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/slo"
	"repro/internal/telemetry"
)

// ClusterView is the coordinator's federated metric snapshot: every
// reachable node's structured export merged into one family set, plus the
// per-node breakdowns the merge was built from.
type ClusterView struct {
	// Merged is the cluster-wide family set: node exports plus the
	// coordinator's own registry, merged per telemetry.MergeFamilies
	// (counters/gauges sum, histograms merge bucket-wise).
	Merged []telemetry.FamilySnapshot
	// Nodes holds each contributing node's unmerged export, shard-labeled.
	Nodes []NodeFamilies
	// Missing lists shard IDs that did not contribute: nodes predating
	// OpMetricsSnap (federation gracefully absent) or unreachable at
	// snapshot time. The merged view simply covers fewer shards.
	Missing []int
}

// NodeFamilies is one node's contribution to a ClusterView.
type NodeFamilies struct {
	ShardID  int
	Families []telemetry.FamilySnapshot
}

// ClusterMetrics pulls every node's metric export over OpMetricsSnap (in
// parallel), merges them with the coordinator's own registry, and returns
// the federated view. Federation is observability, not serving: a node that
// cannot contribute — too old for the op, or currently unreachable — lands
// in Missing instead of failing the snapshot, so a v(N-1) node behind a vN
// coordinator degrades to a narrower view with no error.
func (co *Coordinator) ClusterMetrics() *ClusterView {
	type pull struct {
		shardID  int
		families []telemetry.FamilySnapshot
		ok       bool
	}
	pulls := make([]pull, len(co.nodes))
	var wg sync.WaitGroup
	for i, n := range co.nodes {
		wg.Add(1)
		go func(i int, n *nodeClient) {
			defer wg.Done()
			pulls[i].shardID = n.shardID
			resp, err := n.roundTrip(&Request{Op: OpMetricsSnap})
			if err != nil {
				return
			}
			pulls[i].families = resp.Families
			pulls[i].ok = true
		}(i, n)
	}
	wg.Wait()

	view := &ClusterView{}
	exports := make([][]telemetry.FamilySnapshot, 0, len(pulls)+1)
	for _, p := range pulls {
		if !p.ok {
			view.Missing = append(view.Missing, p.shardID)
			continue
		}
		view.Nodes = append(view.Nodes, NodeFamilies{ShardID: p.shardID, Families: p.families})
		exports = append(exports, p.families)
	}
	// The coordinator's own registry joins the merge so the cluster view
	// spans both sides of the wire (scatter/gather phases and per-node
	// round-trips next to node-side scan times).
	exports = append(exports, co.m.reg.Export())
	view.Merged = telemetry.MergeFamilies(exports...)
	return view
}

// ClusterSnapshot flattens the merged cluster view into Snapshot-style
// keys — what hermes-coordinator -stats/-watch reads for its cluster table.
func (co *Coordinator) ClusterSnapshot() map[string]float64 {
	return telemetry.FlattenFamilies(co.ClusterMetrics().Merged)
}

// NewSLOEngine builds an slo.Engine whose objectives read this
// coordinator's serving metrics: a latency objective observes the sample
// (scatter) phase histogram — or the deep phase when the objective name
// contains "deep" — and an availability objective measures round-trips
// that did not fail out of all round-trips issued. This is the wiring
// behind `hermes-coordinator -slo`; callers with bespoke sources use the
// slo package directly.
func (co *Coordinator) NewSLOEngine(objs []slo.Objective) (*slo.Engine, error) {
	e := slo.NewEngine()
	for _, o := range objs {
		var src slo.SourceFunc
		switch o.Kind {
		case slo.KindLatency:
			h := co.m.phaseSample
			if strings.Contains(o.Name, "deep") {
				h = co.m.phaseDeep
			}
			src = slo.LatencySource(h, o.Threshold)
		case slo.KindAvailability:
			src = co.roundTripAvailability
		default:
			return nil, fmt.Errorf("distsearch: objective %q: unsupported kind", o.Name)
		}
		if err := e.AddObjective(o, src); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// roundTripAvailability counts round-trips that did not fail. Every error
// was an issued round-trip, so good never goes negative.
func (co *Coordinator) roundTripAvailability() (good, total int64) {
	for _, c := range co.m.byOp {
		total += c.Value()
	}
	return total - co.m.errors.Value(), total
}

// ServeClusterMetrics is the /metrics/cluster handler: the merged cluster
// families in Prometheus text exposition format, with shard coverage noted
// in leading comment lines. ?node=<shard> serves one node's unmerged
// export instead — the per-node breakdown behind the merge.
func (co *Coordinator) ServeClusterMetrics(w http.ResponseWriter, r *http.Request) {
	view := co.ClusterMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if nodeParam := r.URL.Query().Get("node"); nodeParam != "" {
		shard, err := strconv.Atoi(nodeParam)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad node %q", nodeParam), http.StatusBadRequest)
			return
		}
		for _, nf := range view.Nodes {
			if nf.ShardID == shard {
				fmt.Fprintf(w, "# node view: shard %d\n", shard)
				if err := telemetry.WriteFamiliesPrometheus(w, nf.Families); err != nil {
					fmt.Fprintf(w, "# render error: %v\n", err)
				}
				return
			}
		}
		http.Error(w, fmt.Sprintf("no metrics from shard %d", shard), http.StatusNotFound)
		return
	}
	shards := make([]string, 0, len(view.Nodes))
	for _, nf := range view.Nodes {
		shards = append(shards, strconv.Itoa(nf.ShardID))
	}
	fmt.Fprintf(w, "# cluster view: coordinator + %d node(s) [%s]\n",
		len(view.Nodes), strings.Join(shards, ","))
	if len(view.Missing) > 0 {
		missing := make([]string, 0, len(view.Missing))
		for _, s := range view.Missing {
			missing = append(missing, strconv.Itoa(s))
		}
		fmt.Fprintf(w, "# shards not contributing (no federation support or unreachable): [%s]\n",
			strings.Join(missing, ","))
	}
	if err := telemetry.WriteFamiliesPrometheus(w, view.Merged); err != nil {
		fmt.Fprintf(w, "# render error: %v\n", err)
	}
}
