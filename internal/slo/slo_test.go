package slo

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func freezeClock(t *testing.T) func(d time.Duration) {
	t.Helper()
	cur := time.Date(2026, 1, 2, 15, 0, 0, 0, time.UTC)
	old := now
	now = func() time.Time { return cur }
	t.Cleanup(func() { now = old })
	return func(d time.Duration) { cur = cur.Add(d) }
}

// testWindows keeps ring sizes tiny so tests step whole windows quickly:
// fast = 4 slots of 10s, slow = 6 slots of 1m.
var testWindows = WindowConfig{
	Fast: 40 * time.Second, FastSlot: 10 * time.Second,
	Slow: 6 * time.Minute, SlowSlot: time.Minute,
}

func TestParseObjectives(t *testing.T) {
	got, err := ParseObjectives(" search=latency:250ms@0.95, errors=availability@0.999 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []Objective{
		{Name: "search", Kind: KindLatency, Target: 0.95, Threshold: 250 * time.Millisecond},
		{Name: "errors", Kind: KindAvailability, Target: 0.999},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parsed %+v, want %+v", got, want)
	}
	if got, err := ParseObjectives(""); err != nil || got != nil {
		t.Errorf("empty = %v, %v", got, err)
	}
	for _, bad := range []string{
		"noequals", "x=latency:250ms", "x=latency:bogus@0.9", "x=availability@1.5",
		"x=availability@0", "x=throughput@0.9", "=latency:1ms@0.9",
	} {
		if _, err := ParseObjectives(bad); err == nil {
			t.Errorf("ParseObjectives(%q) accepted", bad)
		}
	}
}

// TestBurnRateFlips drives a latency objective from healthy to burning and
// back out as the fast window slides past the bad period.
func TestBurnRateFlips(t *testing.T) {
	step := freezeClock(t)
	reg := telemetry.NewRegistry()
	h := reg.Histogram("hermes_test_latency_seconds", "l", telemetry.DefLatencyBuckets)
	e := NewEngineWindows(testWindows)
	obj := Objective{Name: "search", Kind: KindLatency, Target: 0.9, Threshold: 100 * time.Millisecond}
	if err := e.AddObjective(obj, LatencySource(h, obj.Threshold)); err != nil {
		t.Fatal(err)
	}

	e.Tick() // prime the baseline
	// Healthy phase: 100 fast queries.
	for i := 0; i < 100; i++ {
		h.Observe(0.01)
	}
	step(10 * time.Second)
	e.Tick()
	rep := e.Reports()[0]
	if rep.Burning || rep.Fast.BurnRate != 0 {
		t.Fatalf("healthy phase: %+v", rep)
	}
	if rep.BudgetRemaining != 1 {
		t.Errorf("budget = %v, want 1", rep.BudgetRemaining)
	}

	// Slow phase: half the queries blow the threshold — bad fraction 0.5
	// against a 10% budget is a 5x burn.
	for i := 0; i < 50; i++ {
		h.Observe(0.01)
		h.Observe(5)
	}
	step(10 * time.Second)
	e.Tick()
	rep = e.Reports()[0]
	if !rep.Burning {
		t.Fatalf("slowed phase should burn: %+v", rep)
	}
	if rep.Fast.BurnRate < 1.5 || rep.Fast.BurnRate > 5.01 {
		t.Errorf("fast burn = %v, want ~(100 bad / 300 total)/0.1", rep.Fast.BurnRate)
	}
	if rep.BudgetRemaining >= 1 {
		t.Errorf("budget should be consumed: %v", rep.BudgetRemaining)
	}

	// Recovery: the fast window (40s) slides past the bad slot, the slow
	// window (6m) still remembers it.
	for i := 0; i < 100; i++ {
		h.Observe(0.01)
	}
	step(50 * time.Second)
	e.Tick()
	for i := 0; i < 100; i++ {
		h.Observe(0.01)
	}
	step(10 * time.Second)
	e.Tick()
	rep = e.Reports()[0]
	if rep.Burning || rep.Fast.BurnRate != 0 {
		t.Errorf("recovered fast window: %+v", rep)
	}
	if rep.Slow.BurnRate == 0 {
		t.Errorf("slow window should still see the bad period: %+v", rep)
	}
}

func TestAvailabilitySourceAndWindowExpiry(t *testing.T) {
	step := freezeClock(t)
	reg := telemetry.NewRegistry()
	attempts := reg.Counter("hermes_test_requests_total", "r")
	errs := reg.Counter("hermes_test_errors_total", "e")
	e := NewEngineWindows(testWindows)
	obj := Objective{Name: "avail", Kind: KindAvailability, Target: 0.99}
	if err := e.AddObjective(obj, AvailabilitySource(attempts, errs)); err != nil {
		t.Fatal(err)
	}
	e.Tick()
	attempts.Add(100)
	errs.Add(10)
	step(10 * time.Second)
	e.Tick()
	rep := e.Reports()[0]
	if !rep.Burning || rep.Fast.BurnRate < 9.99 || rep.Fast.BurnRate > 10.01 {
		t.Fatalf("10%% errors vs 1%% budget: %+v", rep)
	}
	// After the slow window fully rotates with clean traffic, the budget
	// refills.
	for i := 0; i < 8; i++ {
		attempts.Add(100)
		step(time.Minute)
		e.Tick()
	}
	rep = e.Reports()[0]
	if rep.Burning || rep.BudgetRemaining != 1 {
		t.Errorf("after slow-window expiry: %+v", rep)
	}
	if rep.CumTotal != 900 || rep.CumGood != 890 {
		t.Errorf("cumulative = %d/%d, want 890/900", rep.CumGood, rep.CumTotal)
	}
}

// TestFirstTickPrimes pins that pre-engine history never lands in windows.
func TestFirstTickPrimes(t *testing.T) {
	step := freezeClock(t)
	reg := telemetry.NewRegistry()
	h := reg.Histogram("hermes_test_latency_seconds", "l", telemetry.DefLatencyBuckets)
	for i := 0; i < 1000; i++ {
		h.Observe(10) // terrible history before the engine starts
	}
	e := NewEngineWindows(testWindows)
	obj := Objective{Name: "search", Kind: KindLatency, Target: 0.9, Threshold: 100 * time.Millisecond}
	if err := e.AddObjective(obj, LatencySource(h, obj.Threshold)); err != nil {
		t.Fatal(err)
	}
	e.Tick()
	step(10 * time.Second)
	e.Tick()
	rep := e.Reports()[0]
	if rep.Fast.Total != 0 || rep.Burning {
		t.Errorf("history leaked into windows: %+v", rep)
	}
}

func TestCollectExportsMetrics(t *testing.T) {
	step := freezeClock(t)
	reg := telemetry.NewRegistry()
	attempts := reg.Counter("hermes_test_requests_total", "r")
	errs := reg.Counter("hermes_test_errors_total", "e")
	e := NewEngineWindows(testWindows)
	if err := e.AddObjective(Objective{Name: "avail", Kind: KindAvailability, Target: 0.99},
		AvailabilitySource(attempts, errs)); err != nil {
		t.Fatal(err)
	}
	reg.RegisterCollector(e.CollectInto())
	e.Tick()
	attempts.Add(200)
	errs.Add(2)
	step(10 * time.Second)

	snap := reg.Snapshot() // collector ticks and publishes
	if got := snap[`hermes_slo_burn_rate_ratio{objective="avail",window="fast"}`]; got < 0.999 || got > 1.001 {
		t.Errorf("fast burn = %v, want ~1 (1%% errors on 1%% budget)", got)
	}
	if got := snap[`hermes_slo_events_total{objective="avail"}`]; got != 200 {
		t.Errorf("events_total = %v, want 200", got)
	}
	if got := snap[`hermes_slo_good_total{objective="avail"}`]; got != 198 {
		t.Errorf("good_total = %v, want 198", got)
	}
	// A second scrape must not double-count the cumulative counters.
	snap = reg.Snapshot()
	if got := snap[`hermes_slo_events_total{objective="avail"}`]; got != 200 {
		t.Errorf("events_total after rescrape = %v, want 200", got)
	}
}

func TestServeSLO(t *testing.T) {
	step := freezeClock(t)
	reg := telemetry.NewRegistry()
	attempts := reg.Counter("hermes_test_requests_total", "r")
	errs := reg.Counter("hermes_test_errors_total", "e")
	e := NewEngineWindows(testWindows)
	if err := e.AddObjective(Objective{Name: "avail", Kind: KindAvailability, Target: 0.99},
		AvailabilitySource(attempts, errs)); err != nil {
		t.Fatal(err)
	}
	e.Tick()
	attempts.Add(100)
	errs.Add(50)
	step(10 * time.Second)

	rec := httptest.NewRecorder()
	e.ServeSLO(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	if body := rec.Body.String(); !strings.Contains(body, "avail") || !strings.Contains(body, "BURNING") {
		t.Errorf("text body: %s", body)
	}

	rec = httptest.NewRecorder()
	e.ServeSLO(rec, httptest.NewRequest("GET", "/debug/slo?format=json", nil))
	var out []struct {
		Name    string `json:"name"`
		Burning bool   `json:"burning"`
		Fast    struct {
			BurnRate float64 `json:"burn_rate"`
		} `json:"fast"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("json: %v\n%s", err, rec.Body.String())
	}
	if len(out) != 1 || !out[0].Burning || out[0].Fast.BurnRate < 49 || out[0].Fast.BurnRate > 51 {
		t.Errorf("json = %+v", out)
	}

	rec = httptest.NewRecorder()
	(*Engine)(nil).ServeSLO(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	if !strings.Contains(rec.Body.String(), "disabled") {
		t.Errorf("nil engine body = %q", rec.Body.String())
	}
}

// TestConcurrentTickReports exercises the engine under -race.
func TestConcurrentTickReports(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("hermes_test_latency_seconds", "l", telemetry.DefLatencyBuckets)
	e := NewEngine()
	if err := e.AddObjective(Objective{Name: "search", Kind: KindLatency, Target: 0.9,
		Threshold: 100 * time.Millisecond}, LatencySource(h, 100*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				h.Observe(0.01)
				e.Tick()
				e.Reports()
				e.Collect(reg)
			}
		}()
	}
	wg.Wait()
}

func TestStartTickerStops(t *testing.T) {
	e := NewEngine()
	stop := e.StartTicker(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	stop() // must not hang or race
}
