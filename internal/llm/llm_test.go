package llm

import (
	"testing"
	"time"
)

func TestModelFootprints(t *testing.T) {
	// FP16 weights: Gemma2-9B ~18.4 GB, OPT-30B ~60 GB.
	if g := Gemma2_9B.WeightBytes() / 1e9; g < 17 || g > 20 {
		t.Fatalf("Gemma2 weights = %v GB", g)
	}
	if o := OPT30B.WeightBytes() / 1e9; o < 55 || o > 65 {
		t.Fatalf("OPT-30B weights = %v GB", o)
	}
}

func TestDeploymentConstraintsMatchPaper(t *testing.T) {
	// Paper Fig. 17 setup: OPT-30B needs two A6000 Adas; Gemma2-9B needs
	// two L4s; Gemma2-9B fits one A6000 Ada; Phi-1.5 fits everywhere.
	if MinTP(OPT30B, A6000Ada) != 2 {
		t.Fatalf("OPT-30B on A6000 MinTP = %d, want 2", MinTP(OPT30B, A6000Ada))
	}
	if MinTP(Gemma2_9B, L4) != 2 {
		t.Fatalf("Gemma2-9B on L4 MinTP = %d, want 2", MinTP(Gemma2_9B, L4))
	}
	if MinTP(Gemma2_9B, A6000Ada) != 1 {
		t.Fatalf("Gemma2-9B on A6000 MinTP = %d, want 1", MinTP(Gemma2_9B, A6000Ada))
	}
	if MinTP(Phi15, L4) != 1 {
		t.Fatalf("Phi-1.5 on L4 MinTP = %d, want 1", MinTP(Phi15, L4))
	}
}

func TestNewEngineRejectsOversize(t *testing.T) {
	if _, err := NewEngine(OPT30B, A6000Ada, 1); err == nil {
		t.Fatal("OPT-30B on one A6000 should not fit")
	}
	if _, err := NewEngine(OPT30B, A6000Ada, 2); err != nil {
		t.Fatalf("OPT-30B on two A6000s should fit: %v", err)
	}
}

func mustEngine(t testing.TB, m ModelSpec, g GPUSpec, tp int) *Engine {
	t.Helper()
	e, err := NewEngine(m, g, tp)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPrefillScalesWithBatchAndLength(t *testing.T) {
	e := mustEngine(t, Gemma2_9B, A6000Ada, 1)
	base := e.PrefillLatency(32, 512)
	if e.PrefillLatency(64, 512) != 2*base {
		t.Fatal("prefill should scale linearly with batch")
	}
	if e.PrefillLatency(32, 1024) != 2*base {
		t.Fatal("prefill should scale linearly with input length")
	}
	if e.PrefillLatency(0, 512) != 0 || e.PrefillLatency(32, 0) != 0 {
		t.Fatal("zero batch/length should cost nothing")
	}
}

func TestPrefillMagnitudePlausible(t *testing.T) {
	// Paper: A6000 Ada prefill ~132 QPS for Gemma2-9B with 512-token
	// inputs. A first-principles roofline lands lower (the paper's number
	// exceeds dense-FP16 peak for a 9.4 TFLOP/query prompt); require the
	// right order of magnitude.
	e := mustEngine(t, Gemma2_9B, A6000Ada, 1)
	lat := e.PrefillLatency(128, 512).Seconds()
	qps := 128 / lat
	if qps < 13 || qps > 500 {
		t.Fatalf("prefill QPS = %v, want order of magnitude of paper's 132", qps)
	}
}

func TestDecodeSlowerPerTokenThanPrefill(t *testing.T) {
	// Decode is memory-bound: per-token time must exceed prefill
	// per-token time at moderate batch.
	e := mustEngine(t, Gemma2_9B, A6000Ada, 1)
	prefillPerTok := e.PrefillLatency(1, 512).Seconds() / 512
	decodePerTok := e.DecodeLatency(1, 512, 16).Seconds() / 16
	if decodePerTok <= prefillPerTok {
		t.Fatalf("decode/token %v should exceed prefill/token %v", decodePerTok, prefillPerTok)
	}
}

func TestDecodeGrowsWithContext(t *testing.T) {
	e := mustEngine(t, Gemma2_9B, A6000Ada, 1)
	short := e.DecodeLatency(32, 128, 16)
	long := e.DecodeLatency(32, 2048, 16)
	if long <= short {
		t.Fatalf("longer context should slow decode: %v vs %v", long, short)
	}
}

func TestDecodeBatchAmortizesWeights(t *testing.T) {
	// Doubling the batch must NOT double decode latency (weights are
	// streamed once per step).
	e := mustEngine(t, Gemma2_9B, A6000Ada, 1)
	b1 := e.DecodeLatency(1, 512, 16).Seconds()
	b32 := e.DecodeLatency(32, 512, 16).Seconds()
	if b32 >= 32*b1 {
		t.Fatalf("batch-32 decode %v should be far less than 32x batch-1 %v", b32, 32*b1)
	}
}

func TestTensorParallelismTradeoffs(t *testing.T) {
	e1 := mustEngine(t, Gemma2_9B, A6000Ada, 1)
	e2 := mustEngine(t, Gemma2_9B, A6000Ada, 2)
	// TP=2 is faster per batch but less than 2x (comm overhead)...
	l1 := e1.PrefillLatency(32, 512).Seconds()
	l2 := e2.PrefillLatency(32, 512).Seconds()
	if l2 >= l1 {
		t.Fatalf("TP=2 prefill %v should beat TP=1 %v", l2, l1)
	}
	if l1/l2 >= 2 {
		t.Fatalf("TP=2 speedup %v should be sublinear", l1/l2)
	}
	// ...and costs more energy (paper: tensor parallelism with smaller
	// models raises energy with minimal performance gain).
	en1 := e1.PrefillEnergy(32, 512)
	en2 := e2.PrefillEnergy(32, 512)
	if en2 <= en1 {
		t.Fatalf("TP=2 energy %v should exceed TP=1 %v", en2, en1)
	}
}

func TestBiggerModelSlower(t *testing.T) {
	phi := mustEngine(t, Phi15, A6000Ada, 1)
	gemma := mustEngine(t, Gemma2_9B, A6000Ada, 1)
	opt := mustEngine(t, OPT30B, A6000Ada, 2)
	lp := phi.DecodeLatency(32, 512, 64)
	lg := gemma.DecodeLatency(32, 512, 64)
	lo := opt.DecodeLatency(32, 512, 64)
	if !(lp < lg && lg < lo) {
		t.Fatalf("decode latency ordering wrong: %v %v %v", lp, lg, lo)
	}
}

func TestL4SlowerThanA6000(t *testing.T) {
	a := mustEngine(t, Phi15, A6000Ada, 1)
	l := mustEngine(t, Phi15, L4, 1)
	if l.PrefillLatency(32, 512) <= a.PrefillLatency(32, 512) {
		t.Fatal("L4 prefill should be slower than A6000 Ada")
	}
	if l.Power() >= a.Power() {
		t.Fatal("L4 power should be lower than A6000 Ada")
	}
}

func TestEnginePowerScalesWithTP(t *testing.T) {
	e2 := mustEngine(t, OPT30B, A6000Ada, 2)
	e4 := mustEngine(t, OPT30B, A6000Ada, 4)
	if e4.Power() != 2*e2.Power() {
		t.Fatalf("power should scale with TP: %v vs %v", e4.Power(), e2.Power())
	}
	if e4.IdlePower() != 2*e2.IdlePower() {
		t.Fatal("idle power should scale with TP")
	}
}

func TestDecodeMagnitudePlausible(t *testing.T) {
	// Paper: decode ~67 QPS per 16-token retrieval stride for Gemma2-9B
	// at batch ~128 on an A6000 Ada. Accept within ~3x.
	e := mustEngine(t, Gemma2_9B, A6000Ada, 1)
	lat := e.DecodeLatency(128, 512, 16).Seconds()
	qps := 128 / lat
	if qps < 22 || qps > 220 {
		t.Fatalf("decode stride QPS = %v, want within ~3x of paper's 67", qps)
	}
}

func TestEngineString(t *testing.T) {
	e := mustEngine(t, Gemma2_9B, A6000Ada, 1)
	if e.String() != "Gemma2 (9B) on 1x NVIDIA A6000 Ada" {
		t.Fatalf("String = %q", e.String())
	}
}

func TestPrefillLatencyNonZeroDuration(t *testing.T) {
	e := mustEngine(t, Phi15, A6000Ada, 1)
	if e.PrefillLatency(1, 1) <= 0 {
		t.Fatal("tiny prefill should still take positive time")
	}
	if e.PrefillLatency(1, 1) > time.Second {
		t.Fatal("tiny prefill should be fast")
	}
}

// --- perplexity proxy (Fig. 5) ---

func TestPerplexityParameterScaling(t *testing.T) {
	m := DefaultPerplexityModel
	small := m.BasePerplexity(762e6)
	large := m.BasePerplexity(1.5e9)
	if large >= small {
		t.Fatalf("bigger model should have lower PPL: %v vs %v", large, small)
	}
	// Anchor: reference model returns BasePPL exactly.
	if m.BasePerplexity(m.RefParams) != m.BasePPL {
		t.Fatal("reference anchor broken")
	}
}

func TestPerplexityImprovesWithFrequentRetrieval(t *testing.T) {
	m := DefaultPerplexityModel
	prev := m.WithRetrieval(762e6, 0)
	for _, stride := range []int{64, 32, 16, 8, 4, 2} {
		cur := m.WithRetrieval(762e6, stride)
		if cur >= prev {
			t.Fatalf("PPL should fall as stride shrinks: stride=%d gives %v >= %v", stride, cur, prev)
		}
		prev = cur
	}
}

func TestSmallModelWithRetrievalMatchesBigModel(t *testing.T) {
	// Figure 5's headline: a model with ~half the parameters plus frequent
	// retrieval matches the larger model's no-retrieval perplexity.
	m := DefaultPerplexityModel
	big := m.WithRetrieval(1.5e9, 0)
	smallFreq := m.WithRetrieval(762e6, 4)
	if smallFreq > big {
		t.Fatalf("762M + stride-4 retrieval PPL %v should be <= 1.5B PPL %v", smallFreq, big)
	}
	// But without retrieval the small model must be clearly worse.
	if m.WithRetrieval(762e6, 0) <= big {
		t.Fatal("small model without retrieval should trail the big model")
	}
}
