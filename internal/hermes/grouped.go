package hermes

import (
	"time"

	"repro/internal/ivf"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// This file implements the grouped batch execution of the hierarchical
// search (ISSUE 8): instead of every query walking its shards alone, the
// batch runs each phase shard-major through ivf.GroupSearcher, so queries
// that probe the same IVF cells share one code stream per cell. The routing
// decisions — shard ranking from the sampled document, DeepClusters budget,
// PruneEps cut — are replicated per query exactly, so results match
// sequential Search (see DESIGN.md §13 for the tie-at-k caveat).

// segRef locates one query's deep results for one shard inside the scratch's
// flat result buffer, aligned with the query's ranked deep-shard list so the
// final fold replays the sequential push order.
type segRef struct {
	off int32
	n   int32
}

// groupScratch is the per-batch reusable state of SearchGrouped: one warmed
// GroupSearcher per shard plus the per-query routing and result-staging
// slices. Recycled through Store.groupPool; one scratch serves one batch at
// a time.
type groupScratch struct {
	groupers      []*ivf.GroupSearcher // per shard, lazily created
	qrows         [][]float32          // deep-phase per-shard query gather
	orders        [][]rankedShard      // per-query shard ranking
	deeps         [][]int32            // per-query chosen deep shards, ranked
	segs          [][]segRef           // per-query deep segments, aligned with deeps
	buckets       [][]int32            // per-shard deep-phase query indices
	sampleScanned []int
	deepScanned   []int
	buf           []vec.Neighbor // flat deep-result staging
	drain         []vec.Neighbor // sample top-1 drain buffer
	tk            *vec.TopK
}

func (st *Store) getGroupScratch() *groupScratch {
	if sc, ok := st.groupPool.Get().(*groupScratch); ok && len(sc.groupers) == len(st.Shards) {
		//lint:ignore poolescape typed pool accessor: every getGroupScratch is paired with a groupPool.Put by SearchGrouped, which keeps the Get/Put bracket one level up
		return sc
	}
	return &groupScratch{
		groupers: make([]*ivf.GroupSearcher, len(st.Shards)),
		buckets:  make([][]int32, len(st.Shards)),
	}
}

// sizeFor (re)shapes the per-query slices for a batch of n queries, keeping
// grown backing arrays across batches.
func (sc *groupScratch) sizeFor(n int) {
	if cap(sc.orders) < n {
		sc.orders = make([][]rankedShard, n)
		sc.deeps = make([][]int32, n)
		sc.segs = make([][]segRef, n)
		sc.sampleScanned = make([]int, n)
		sc.deepScanned = make([]int, n)
	}
	sc.orders = sc.orders[:n]
	sc.deeps = sc.deeps[:n]
	sc.segs = sc.segs[:n]
	sc.sampleScanned = sc.sampleScanned[:n]
	sc.deepScanned = sc.deepScanned[:n]
	for i := 0; i < n; i++ {
		sc.orders[i] = sc.orders[i][:0]
		sc.deeps[i] = sc.deeps[i][:0]
		sc.segs[i] = sc.segs[i][:0]
		sc.sampleScanned[i] = 0
		sc.deepScanned[i] = 0
	}
	for s := range sc.buckets {
		sc.buckets[s] = sc.buckets[s][:0]
	}
	sc.buf = sc.buf[:0]
}

func (sc *groupScratch) grouper(st *Store, s int) *ivf.GroupSearcher {
	if sc.groupers[s] == nil {
		sc.groupers[s] = st.Shards[s].Index.NewGroupSearcher()
	}
	return sc.groupers[s]
}

// BatchGroupStats aggregates the shared-scan accounting of one grouped
// batch, per phase. SharedCellScans is the number of per-cell code streams
// the grouping avoided versus per-query execution.
type BatchGroupStats struct {
	Sample ivf.GroupStats
	Deep   ivf.GroupStats
}

// SharedCellScans totals the cell streams saved across both phases.
func (s BatchGroupStats) SharedCellScans() int {
	return s.Sample.SharedCellScans + s.Deep.SharedCellScans
}

// SearchGrouped runs the hierarchical search for the whole batch with shared
// multi-query cell scans. Per query it is the same two-phase algorithm as
// Search — sample one document per shard at SampleNProbe, rank, deep-search
// the top DeepClusters shards (PruneEps cut included) at DeepNProbe, fold —
// and returns the same neighbors and stats; only the execution order is
// grouped, shard-major instead of query-major. The query slices must stay
// unmodified for the duration of the call.
//
// Every BatchResult carries the query's cost-ledger entry (cells probed,
// codes split exclusive/amortized); the counters ride the pooled scratch, so
// the untraced path stays allocation- and clock-free.
func (st *Store) SearchGrouped(qs [][]float32, p Params) ([]BatchResult, BatchGroupStats) {
	return st.searchGrouped(qs, p, nil)
}

// SearchGroupedTraced is SearchGrouped with batch-level tracing: the shared
// phases land on tr as one span each (sample, rank, deep — they are executed
// once for the whole batch, so they are traced once for the whole batch), the
// shard scans run phased so each query's Cost.ScanNanos carries its share of
// the measured scan time (distributed in proportion to attributed codes; the
// shares sum exactly to the measured total). Results are DeepEqual-identical
// to the untraced path — tracing only adds timestamps around the same code.
func (st *Store) SearchGroupedTraced(qs [][]float32, p Params, tr *telemetry.Trace) ([]BatchResult, BatchGroupStats) {
	return st.searchGrouped(qs, p, tr)
}

func (st *Store) searchGrouped(qs [][]float32, p Params, tr *telemetry.Trace) ([]BatchResult, BatchGroupStats) {
	p = p.withDefaults()
	n := len(qs)
	out := make([]BatchResult, n)
	var gstats BatchGroupStats
	if n == 0 {
		return out, gstats
	}
	st.met.searches.Add(int64(n))
	st.met.groupedQueries.Add(int64(n))
	sc := st.getGroupScratch()
	defer st.groupPool.Put(sc)
	sc.sizeFor(n)

	// scanNanos is the measured shard-scan wall time of the batch (ivf phase
	// timers, Scan component, both phases); attributed across queries after
	// the fold. Populated only when traced — the untraced path never reads a
	// clock, so its ledger entries carry zero scan time by contract.
	var scanNanos int64
	var mark time.Time
	if tr != nil {
		mark = now()
	}

	// Phase 1 — grouped document sampling: every shard streams its sampled
	// cells once for all n queries. Shard-major iteration appends to each
	// query's ranking in shard order, exactly like the sequential loop, so
	// sortRanked sees identical input.
	for s := range st.Shards {
		g := sc.grouper(st, s)
		var stats ivf.GroupStats
		if tr != nil {
			stats = g.SearchPhased(qs, 1, p.SampleNProbe)
		} else {
			stats = g.Search(qs, 1, p.SampleNProbe)
		}
		gstats.Sample.Queries += stats.Queries
		gstats.Sample.CellsScanned += stats.CellsScanned
		gstats.Sample.SharedCellScans += stats.SharedCellScans
		gstats.Sample.VectorsScanned += stats.VectorsScanned
		for qi := range qs {
			sc.sampleScanned[qi] += g.QueryStats(qi).VectorsScanned
			c := g.CostStats(qi)
			out[qi].Cost.Cells += int64(c.CellsProbed)
			out[qi].Cost.SharedCells += int64(c.SharedCells)
			out[qi].Cost.CodesExclusive += c.CodesExclusive
			out[qi].Cost.CodesAmortized += c.CodesAmortized
			sc.drain = g.AppendResults(qi, sc.drain[:0])
			if len(sc.drain) == 0 {
				continue
			}
			sc.orders[qi] = append(sc.orders[qi], rankedShard{sc.drain[0].Score, int32(s)})
		}
		if tr != nil {
			// Phases is complete only after the drains above (merge time
			// accumulates in AppendResults).
			scanNanos += g.Phases().Scan
		}
	}
	if tr != nil {
		t := now()
		tr.AddSpan("sample", telemetry.NodeLocal, mark, t.Sub(mark))
		mark = t
	}

	// Per-query routing: rank shards and choose the deep set under the
	// DeepClusters budget and the PruneEps cut — both depend only on the
	// ranking, so the choice is identical to the sequential interleaving.
	for qi := range qs {
		order := sc.orders[qi]
		sortRanked(order)
		deep := p.DeepClusters
		if deep > len(order) {
			deep = len(order)
		}
		for i, r := range order[:deep] {
			if p.PruneEps > 0 && i > 0 && float64(r.d) > (1+p.PruneEps)*float64(order[0].d) {
				break
			}
			sc.deeps[qi] = append(sc.deeps[qi], r.shard)
			sc.buckets[r.shard] = append(sc.buckets[r.shard], int32(qi))
		}
	}
	if tr != nil {
		t := now()
		tr.AddSpan("rank", telemetry.NodeLocal, mark, t.Sub(mark))
		mark = t
	}

	// Phase 2 — grouped deep search, shard-major over the buckets. Each
	// query's per-shard results are staged in ranked-list order so the final
	// fold replays the sequential push sequence.
	for s := range st.Shards {
		bucket := sc.buckets[s]
		if len(bucket) == 0 {
			continue
		}
		sc.qrows = sc.qrows[:0]
		for _, qi := range bucket {
			sc.qrows = append(sc.qrows, qs[qi])
		}
		g := sc.grouper(st, s)
		var stats ivf.GroupStats
		if tr != nil {
			stats = g.SearchPhased(sc.qrows, p.K, p.DeepNProbe)
		} else {
			stats = g.Search(sc.qrows, p.K, p.DeepNProbe)
		}
		gstats.Deep.Queries += stats.Queries
		gstats.Deep.CellsScanned += stats.CellsScanned
		gstats.Deep.SharedCellScans += stats.SharedCellScans
		gstats.Deep.VectorsScanned += stats.VectorsScanned
		for bi, qi := range bucket {
			sc.deepScanned[qi] += g.QueryStats(bi).VectorsScanned
			c := g.CostStats(bi)
			out[qi].Cost.Cells += int64(c.CellsProbed)
			out[qi].Cost.SharedCells += int64(c.SharedCells)
			out[qi].Cost.CodesExclusive += c.CodesExclusive
			out[qi].Cost.CodesAmortized += c.CodesAmortized
			off := int32(len(sc.buf))
			sc.buf = g.AppendResults(bi, sc.buf)
			seg := segRef{off: off, n: int32(len(sc.buf)) - off}
			// Place the segment at this shard's rank position in the
			// query's deep list.
			deeps := sc.deeps[qi]
			for len(sc.segs[qi]) < len(deeps) {
				sc.segs[qi] = append(sc.segs[qi], segRef{})
			}
			for j, ds := range deeps {
				if ds == int32(s) {
					sc.segs[qi][j] = seg
					break
				}
			}
		}
		if tr != nil {
			scanNanos += g.Phases().Scan
		}
	}
	if tr != nil {
		tr.AddSpan("deep", telemetry.NodeLocal, mark, now().Sub(mark))
	}

	// Fold: per query, push each deep shard's results in ranked order into a
	// fresh top-k — the same order sequential Search pushes them.
	for qi := range qs {
		tk := sc.topK(p.K)
		stats := SearchStats{
			SampledShards: len(st.Shards),
			SampleScanned: sc.sampleScanned[qi],
			DeepScanned:   sc.deepScanned[qi],
		}
		for j, s := range sc.deeps[qi] {
			stats.DeepShards = append(stats.DeepShards, int(s))
			seg := sc.segs[qi][j]
			for _, nb := range sc.buf[seg.off : seg.off+seg.n] {
				tk.Push(nb.ID, nb.Score)
			}
		}
		out[qi].Neighbors = tk.Results()
		out[qi].Stats = stats
	}

	// Attribute the measured scan time across the batch in proportion to
	// attributed codes, summing exactly to the measured total. Traced only:
	// untraced ledgers carry zero scan time (the hot path never reads a
	// clock), and their sum — zero — still matches the (unmeasured) total.
	if tr != nil && scanNanos > 0 {
		weights := make([]int64, n)
		for qi := range qs {
			weights[qi] = out[qi].Cost.Codes()
		}
		for qi, share := range telemetry.AttributeTotal(scanNanos, weights) {
			out[qi].Cost.ScanNanos = share
		}
	}

	totalSample, totalDeep := 0, 0
	for qi := range qs {
		totalSample += sc.sampleScanned[qi]
		totalDeep += sc.deepScanned[qi]
	}
	st.met.sampleScanned.Add(int64(totalSample))
	st.met.deepScanned.Add(int64(totalDeep))
	st.met.groupSharedScans.Add(int64(gstats.SharedCellScans()))
	return out, gstats
}

// topK returns the scratch's top-k selector reset for a fresh query.
func (sc *groupScratch) topK(k int) *vec.TopK {
	if sc.tk == nil {
		sc.tk = vec.NewTopK(k)
	} else {
		sc.tk.Reset(k)
	}
	return sc.tk
}

// SearchBatchGrouped is SearchGrouped over a matrix of queries, mirroring
// SearchBatch's signature for drop-in comparison.
func (st *Store) SearchBatchGrouped(queries *vec.Matrix, p Params) []BatchResult {
	qs := make([][]float32, queries.Len())
	for i := range qs {
		qs[i] = queries.Row(i)
	}
	out, _ := st.SearchGrouped(qs, p)
	return out
}

// PredictCells is the batcher's grouping signal (batcher.PredictFunc shape):
// it returns the (shard, cell) keys q is expected to deep-search, encoded as
// shard<<32 | cell. Shards are chosen by centroid routing — the cheap proxy
// for the sample phase that needs no index scan at admission time — and
// within each of the top DeepClusters shards the first SampleNProbe probe
// cells (the head of the DeepNProbe sequence, which every deep nProbe
// shares) form the key set. Two queries with overlapping keys will share
// cell streams when executed as a group.
func (st *Store) PredictCells(q []float32, p Params) []uint64 {
	p = p.withDefaults()
	if len(st.Shards) == 0 {
		return nil
	}
	order := make([]rankedShard, 0, len(st.Shards))
	for s, sh := range st.Shards {
		order = append(order, rankedShard{vec.L2Squared(q, sh.Centroid), int32(s)})
	}
	sortRanked(order)
	deep := p.DeepClusters
	if deep > len(order) {
		deep = len(order)
	}
	keys := make([]uint64, 0, deep*p.SampleNProbe)
	var cells []int32
	for _, r := range order[:deep] {
		cells = st.Shards[r.shard].Index.PredictCells(cells, q, p.SampleNProbe)
		for _, c := range cells {
			keys = append(keys, uint64(r.shard)<<32|uint64(uint32(c)))
		}
	}
	return keys
}
