package hwmodel

import (
	"fmt"
	"sync"
	"time"
)

// NodeEnergy is the modeled operating point of one serving node after its
// latest accounting window: the DVFS frequency the model would run the node
// at given its observed load, the average package power over that window,
// and the cumulative energy charged since accounting began.
type NodeEnergy struct {
	GHz     float64
	Watts   float64
	Joules  float64 // cumulative across all windows
	Queries int64   // cumulative queries accounted
}

// EnergyModel turns observed per-node serving load into the paper's live
// DVFS energy account (Section 4.2, Figure 21): each accounting window, a
// node that served q queries against a shard of shardTokens is modeled as
// running at the lowest frequency that still completes those queries within
// the window (FrequencyForLatency) and is charged EnergyInWindow at that
// frequency; an idle node coasts at MinGHz and is charged idle power for
// the window. Joules accumulate monotonically per node.
//
// The model deliberately never reads the clock — callers pass each window's
// duration — so it composes with the repo's wallclock rule and is exactly
// reproducible in tests. Safe for concurrent use.
type EnergyModel struct {
	spec  CPUSpec
	mu    sync.Mutex
	nodes map[int]*NodeEnergy
}

// NewEnergyModel validates the platform and returns an empty account.
func NewEnergyModel(spec CPUSpec) (*EnergyModel, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("hwmodel: energy model: %w", err)
	}
	return &EnergyModel{spec: spec, nodes: make(map[int]*NodeEnergy)}, nil
}

// Spec returns the platform the model charges energy at.
func (m *EnergyModel) Spec() CPUSpec { return m.spec }

// Advance accounts one observation window for a node: queries is the number
// of deep searches the node served during the window, shardTokens the token
// count of its shard. It returns the node's updated operating point.
// Windows of zero or negative length change nothing.
func (m *EnergyModel) Advance(node int, shardTokens, queries int64, window time.Duration) NodeEnergy {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.nodes[node]
	if st == nil {
		st = &NodeEnergy{GHz: m.spec.MinGHz, Watts: m.spec.IdleWatts}
		m.nodes[node] = st
	}
	if window <= 0 {
		return *st
	}
	if queries <= 0 || shardTokens <= 0 {
		st.GHz = m.spec.MinGHz
		st.Watts = m.spec.IdleWatts
		st.Joules += m.spec.IdleWatts * window.Seconds()
		return *st
	}
	f := m.spec.FrequencyForLatency(shardTokens, int(queries), window)
	e := m.spec.EnergyInWindow(shardTokens, int(queries), f, window)
	st.GHz = f
	st.Watts = e / window.Seconds()
	st.Joules += e
	st.Queries += queries
	return *st
}

// Node returns the current account of one node (zero value if never
// advanced).
func (m *EnergyModel) Node(node int) NodeEnergy {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st := m.nodes[node]; st != nil {
		return *st
	}
	return NodeEnergy{GHz: m.spec.MinGHz, Watts: m.spec.IdleWatts}
}
