package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestQuantileBracketsTrueQuantile is the histogram's accuracy contract:
// for any sample set and any q, the estimate and the true sample quantile
// lie in the same bucket, so the bucket bounds bracket both. Run over many
// seeded random distributions shaped like real latency data.
func TestQuantileBracketsTrueQuantile(t *testing.T) {
	bounds := DefLatencyBuckets
	maxBound := bounds[len(bounds)-1]
	quantiles := []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(2000)
		samples := make([]float64, n)
		h := newHistogram(bounds)
		for i := range samples {
			// Log-uniform across the bucket range: every decade of the
			// latency scale gets traffic.
			v := math.Exp(rng.Float64()*math.Log(maxBound/bounds[0])) * bounds[0]
			if v > maxBound {
				v = maxBound
			}
			samples[i] = v
			h.Observe(v)
		}
		sort.Float64s(samples)
		for _, q := range quantiles {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			trueQ := samples[rank-1]
			bi := sort.SearchFloat64s(bounds, trueQ)
			lo := 0.0
			if bi > 0 {
				lo = bounds[bi-1]
			}
			hi := bounds[bi]
			est := h.Quantile(q)
			if est < lo || est > hi {
				t.Errorf("seed %d n %d q %.2f: estimate %v outside bucket [%v,%v] of true quantile %v",
					seed, n, q, est, lo, hi, trueQ)
			}
		}
	}
}

func TestQuantileOverflowClampsToLargestBound(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("overflow-only quantile = %v, want largest finite bound 2", got)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(1.5)
	got := h.Quantile(0.5)
	if got <= 1 || got > 2 {
		t.Errorf("single-sample quantile = %v, want in (1,2]", got)
	}
}

// TestTimerUsesClockSeam freezes the package clock and steps it between the
// timer's start and stop reads, proving no real wall-clock dependency.
func TestTimerUsesClockSeam(t *testing.T) {
	orig := now
	defer func() { now = orig }()
	base := time.Unix(1000, 0)
	calls := 0
	now = func() time.Time {
		calls++
		return base.Add(time.Duration(calls-1) * 250 * time.Millisecond)
	}
	h := newHistogram(DefLatencyBuckets)
	stop := h.Timer()
	stop()
	if h.Count() != 1 {
		t.Fatalf("timer recorded %d observations, want 1", h.Count())
	}
	if got := h.Sum(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("timer observed %v s, want 0.25", got)
	}
	h.ObserveDuration(500 * time.Millisecond)
	if got := h.Sum(); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("sum after ObserveDuration = %v, want 0.75", got)
	}
}

// TestHistogramExemplars checks that ObserveExemplar pins a trace ID to the
// bucket the value lands in, that the exposition suffix appears only on
// buckets holding an exemplar (plain histograms render byte-identical to the
// pre-exemplar format — see TestExpositionGolden), and that trace ID 0
// degrades to a plain Observe.
func TestHistogramExemplars(t *testing.T) {
	reg := NewRegistry()
	bounds := []float64{0.01, 0.1, 1}
	h := reg.Histogram("exemplar_seconds", "latency with exemplars", bounds)

	h.Observe(0.005)                      // first bucket, no exemplar
	h.ObserveExemplar(0.05, 0)            // trace 0: plain observation
	h.ObserveExemplar(0.5, 0xbeef)        // third bucket
	h.ObserveExemplar(5, 0xfeed)          // +Inf overflow bucket

	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("exemplars = %+v, want 2 (trace 0 must not pin)", ex)
	}
	if ex[0].UpperBound != 1 || ex[0].TraceID != 0xbeef || ex[0].Value != 0.5 {
		t.Errorf("bucket exemplar = %+v", ex[0])
	}
	if !math.IsInf(ex[1].UpperBound, 1) || ex[1].TraceID != 0xfeed {
		t.Errorf("overflow exemplar = %+v", ex[1])
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4 (exemplar observations still count)", h.Count())
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	page := b.String()
	if !strings.Contains(page, `# {trace_id="000000000000beef"} 0.5`) {
		t.Errorf("exposition missing third-bucket exemplar:\n%s", page)
	}
	if !strings.Contains(page, `# {trace_id="000000000000feed"} 5`) {
		t.Errorf("exposition missing +Inf exemplar:\n%s", page)
	}
	// Buckets without exemplars keep the bare cumulative-count format.
	if !strings.Contains(page, `exemplar_seconds_bucket{le="0.01"} 1`+"\n") {
		t.Errorf("exemplar-free bucket line changed format:\n%s", page)
	}
	// A newer exemplar in the same bucket replaces the old one.
	h.ObserveExemplar(0.6, 0xcafe)
	for _, e := range h.Exemplars() {
		if e.UpperBound == 1 && e.TraceID != 0xcafe {
			t.Errorf("exemplar not replaced: %+v", e)
		}
	}
	// Nil handle stays inert.
	var nh *Histogram
	nh.ObserveExemplar(1, 2)
	if nh.Exemplars() != nil {
		t.Error("nil histogram must return no exemplars")
	}
}
