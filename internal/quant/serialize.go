package quant

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// sqWire is the serialized form of a trained SQ quantizer.
type sqWire struct {
	Bits  int
	Min   []float32
	Scale []float32
}

// MarshalParams serializes a trained SQ quantizer's learned parameters.
func (s *SQ) MarshalParams() ([]byte, error) {
	if !s.trained {
		return nil, fmt.Errorf("quant: cannot marshal untrained SQ")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sqWire{Bits: s.bits, Min: s.min, Scale: s.scale}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SQFromParams reconstructs a trained SQ quantizer from MarshalParams output.
func SQFromParams(dim int, blob []byte) (*SQ, error) {
	var w sqWire
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&w); err != nil {
		return nil, fmt.Errorf("quant: decode SQ params: %w", err)
	}
	if len(w.Min) != dim || len(w.Scale) != dim {
		return nil, fmt.Errorf("quant: SQ params dim %d != %d", len(w.Min), dim)
	}
	s := NewSQ(dim, w.Bits)
	s.min = w.Min
	s.scale = w.Scale
	s.trained = true
	return s, nil
}
