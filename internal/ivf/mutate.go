package ivf

import (
	"fmt"
	"sort"
)

// Mutation support. RAG's whole premise is a mutable, non-parametric
// datastore that evolves without retraining the LLM (paper Sections 1-2),
// so the index supports online removal alongside Add: Remove tombstones a
// list slot so scans skip it, and Compact reclaims the space once enough
// garbage accumulates. The coarse quantizer is intentionally left untouched
// — re-clustering is an offline rebuild, as in the paper's workflow.
//
// Tombstones are kept as per-list sorted position slices rather than a
// global hash set: the scan hot loop advances a cursor through the (almost
// always empty) positions instead of hashing every visited slot, so removal
// support costs the blocked scan path nothing when no tombstones exist.

// isDead reports whether list li's slot pos is tombstoned.
func (ix *Index) isDead(li, pos int) bool {
	if ix.deadCount == 0 || ix.deadPos == nil {
		return false
	}
	d := ix.deadPos[li]
	i := sort.Search(len(d), func(i int) bool { return d[i] >= uint32(pos) })
	return i < len(d) && d[i] == uint32(pos)
}

// markDead tombstones list li's slot pos, keeping positions sorted.
func (ix *Index) markDead(li, pos int) {
	if ix.deadPos == nil {
		ix.deadPos = make([][]uint32, len(ix.lists))
	}
	d := ix.deadPos[li]
	i := sort.Search(len(d), func(i int) bool { return d[i] >= uint32(pos) })
	d = append(d, 0)
	copy(d[i+1:], d[i:])
	d[i] = uint32(pos)
	ix.deadPos[li] = d
	ix.deadCount++
}

// Remove tombstones the first live entry stored under id. It returns false
// if the id is not present (or already removed). The slot is skipped during
// scans until Compact reclaims it; removing and re-adding the same id is
// safe because tombstones are per slot, not per id.
func (ix *Index) Remove(id int64) bool {
	if !ix.trained {
		return false
	}
	for li := range ix.lists {
		for pos, got := range ix.lists[li].ids {
			if got != id {
				continue
			}
			if ix.isDead(li, pos) {
				continue
			}
			ix.markDead(li, pos)
			ix.count--
			return true
		}
	}
	return false
}

// Tombstones reports how many removed entries still occupy list space.
func (ix *Index) Tombstones() int { return ix.deadCount }

// Compact rewrites every inverted list without tombstoned slots, reclaiming
// their memory. It must not run concurrently with searches.
func (ix *Index) Compact() {
	if ix.deadCount == 0 {
		return
	}
	cs := ix.cfg.Quantizer.CodeSize()
	for li := range ix.lists {
		dead := ix.deadPos[li]
		if len(dead) == 0 {
			continue
		}
		l := &ix.lists[li]
		keepIDs := l.ids[:0]
		keepCodes := l.codes[:0]
		di := 0
		for pos, id := range l.ids {
			if di < len(dead) && dead[di] == uint32(pos) {
				di++
				continue
			}
			keepIDs = append(keepIDs, id)
			keepCodes = append(keepCodes, l.codes[pos*cs:(pos+1)*cs]...)
		}
		l.ids = keepIDs
		l.codes = keepCodes
	}
	ix.deadPos = nil
	ix.deadCount = 0
}

// Update replaces the vector stored under id (remove + re-add under the
// current coarse quantizer). It errors if the id is absent.
func (ix *Index) Update(id int64, v []float32) error {
	if !ix.Remove(id) {
		return fmt.Errorf("ivf: Update of unknown id %d", id)
	}
	return ix.Add(id, v)
}
