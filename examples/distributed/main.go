// Distributed serving: disaggregate a datastore, launch one TCP shard node
// per cluster on localhost, and drive the two-phase scatter/gather protocol
// through a coordinator — the working version of the paper's Figure 9
// architecture. Compares hierarchical routing against the naive
// search-every-node baseline on the same cluster.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	hermes "repro"
	"repro/internal/hwmodel"
)

func main() {
	corpus, err := hermes.GenerateCorpus(hermes.CorpusSpec{
		NumChunks: 8000, Dim: 32, NumTopics: 8, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	store, err := hermes.Build(corpus.Vectors, hermes.BuildOptions{NumShards: 8})
	if err != nil {
		log.Fatal(err)
	}

	// One TCP node per shard (in-process here; cmd/hermes-node runs the
	// same node as a standalone daemon).
	cluster, err := hermes.LaunchLocalCluster(store, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("launched %d shard nodes:\n", len(cluster.Addrs()))
	for i, addr := range cluster.Addrs() {
		fmt.Printf("  shard %d (%d vectors) on %s\n", i, store.Shards[i].Size, addr)
	}

	co, err := hermes.DialCluster(cluster.Addrs(), 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer co.Close()

	// Flight recorder: every completed query lands in a fixed-capacity ring,
	// with queries slower than the threshold pinned separately. The cmd
	// binaries serve this at /debug/queries; here we read it directly.
	rec := hermes.NewQueryRecorder(64, 2*time.Millisecond)
	co.SetRecorder(rec)
	// DVFS energy account: each node's observed deep-search load feeds the
	// paper's frequency/power model at scrape time (Fig. 21's live view).
	if err := co.EnableEnergyModel(hwmodel.XeonGold6448Y, int64(corpus.Spec.TokensPerChunk)); err != nil {
		log.Fatal(err)
	}
	// Service-level objectives over the coordinator's own serving metrics:
	// a latency target on the scatter (sample) phase and an availability
	// target on shard round-trips. The first Tick sets the baseline; the
	// tick at the end of the run pulls everything served in between into
	// the burn windows.
	objs, err := hermes.ParseSLOObjectives("scatter=latency:5ms@0.95,rpc=availability@0.99")
	if err != nil {
		log.Fatal(err)
	}
	engine, err := co.NewSLOEngine(objs)
	if err != nil {
		log.Fatal(err)
	}
	engine.Tick()

	queries := corpus.Queries(12, 4)
	params := hermes.DefaultParams()
	exact := hermes.NewFlatIndex(corpus.Spec.Dim)
	exact.AddBatch(0, corpus.Vectors)
	truth := exact.GroundTruth(queries.Vectors, params.K)

	fmt.Println("\nhierarchical (sample all, deep-search top 3) vs search-all:")
	var hierNDCG, allNDCG float64
	var hierTime, allTime time.Duration
	for i := 0; i < queries.Vectors.Len(); i++ {
		q := queries.Vectors.Row(i)
		hier, err := co.Search(q, params)
		if err != nil {
			log.Fatal(err)
		}
		all, err := co.SearchAll(q, params)
		if err != nil {
			log.Fatal(err)
		}
		hierNDCG += hermes.NDCGAtK(ids(hier.Neighbors), truth[i], params.K)
		allNDCG += hermes.NDCGAtK(ids(all.Neighbors), truth[i], params.K)
		hierTime += hier.SampleLatency + hier.DeepLatency
		allTime += all.DeepLatency
		if i < 3 {
			fmt.Printf("  query %d: deep nodes %v, sample %v + deep %v\n",
				i, hier.DeepNodes, hier.SampleLatency, hier.DeepLatency)
		}
	}
	n := float64(queries.Vectors.Len())
	fmt.Printf("\nNDCG@%d:   hierarchical %.4f | search-all %.4f\n", params.K, hierNDCG/n, allNDCG/n)
	fmt.Printf("mean wire+search time: hierarchical %v | search-all %v\n",
		hierTime/time.Duration(n), allTime/time.Duration(n))

	// A traced query: its ID rides the wire to every shard node, each
	// coordinator phase lands in one span, and every node ships its own
	// decode/probe/scan/merge/encode spans back — the waterfall below is a
	// true cross-node timing chart with no clock synchronization needed.
	tr := hermes.NewTrace()
	if _, err := co.SearchTraced(queries.Vectors.Row(0), params, tr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraced query breakdown:\n  %s\n", tr.Breakdown())
	fmt.Printf("\ncross-node waterfall:\n%s\n", tr.Waterfall())

	// The flight recorder kept every query of the run; the slowest pinned
	// ones answer "what was that spike" after the fact (the cmd binaries
	// serve this ring at /debug/queries).
	if qr, ok := rec.Find(tr.ID()); ok {
		fmt.Printf("\nflight-recorder record for the traced query:\n  total=%v busy=%v deep=%v scanned=%d\n",
			qr.Total, qr.Busy, qr.DeepNodes, qr.Scanned)
	}
	fmt.Printf("recorder holds %d recent queries, %d pinned slow\n",
		len(rec.Recent(100)), len(rec.Slow(100)))

	// The same traffic is visible in the default metric registry, in
	// Prometheus exposition format (cmd binaries serve this on -admin) —
	// including the per-shard load counters and the modeled DVFS energy
	// series the collector derives from them.
	var exp strings.Builder
	if err := hermes.DefaultTelemetry().WritePrometheus(&exp); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nscrape excerpt (load + modeled energy):")
	for _, line := range strings.Split(exp.String(), "\n") {
		if strings.HasPrefix(line, "hermes_coordinator_queries_total") ||
			strings.HasPrefix(line, "hermes_coordinator_load_imbalance") ||
			strings.HasPrefix(line, `hermes_coordinator_shard_deep_total{shard="0"}`) ||
			strings.HasPrefix(line, `hermes_energy_model_joules{node="0"}`) ||
			strings.HasPrefix(line, `hermes_energy_model_ghz{node="0"}`) {
			fmt.Println("  " + line)
		}
	}

	// Pull the traffic into the SLO windows and print the burn-rate table
	// hermes-coordinator -stats shows: each objective's compliance in the
	// fast (5m) and slow (1h) windows, and how fast the error budget is
	// burning relative to the target.
	engine.Tick()
	fmt.Println("\nSLO burn rates (cmd binaries serve this at /debug/slo):")
	hermes.WriteSLOBurnTable(os.Stdout, engine.Reports())

	fmt.Println("\n(hierarchical touches 3 of 8 nodes deeply; on real multi-host nodes")
	fmt.Println(" that is the throughput and energy win of Figs. 18 and 21)")
}

func ids(ns []hermes.Neighbor) []int64 {
	out := make([]int64, len(ns))
	for i, n := range ns {
		out[i] = n.ID
	}
	return out
}
