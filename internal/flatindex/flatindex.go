// Package flatindex implements exact brute-force nearest-neighbor search.
// It is the ground-truth oracle for every accuracy experiment (the paper
// evaluates NDCG "with documents from an exhaustive brute-force search as our
// ground truth") and the baseline for recall measurements in Table 1.
package flatindex

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/vec"
)

// Index is an exact L2 nearest-neighbor index over float32 vectors.
type Index struct {
	dim  int
	data *vec.Matrix
	ids  []int64
	// pool recycles Searcher scratch across Search calls.
	pool sync.Pool
}

// New creates an empty index for dim-dimensional vectors.
func New(dim int) *Index {
	if dim <= 0 {
		panic(fmt.Sprintf("flatindex: dim must be positive, got %d", dim))
	}
	return &Index{dim: dim, data: vec.NewMatrix(0, dim)}
}

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Len returns the number of stored vectors.
func (ix *Index) Len() int { return ix.data.Len() }

// Add appends a vector with an explicit ID.
func (ix *Index) Add(id int64, v []float32) {
	if len(v) != ix.dim {
		panic(fmt.Sprintf("flatindex: Add dim %d != %d", len(v), ix.dim))
	}
	ix.data.AppendRow(v)
	ix.ids = append(ix.ids, id)
}

// AddBatch appends all rows of m, assigning IDs startID, startID+1, ...
func (ix *Index) AddBatch(startID int64, m *vec.Matrix) {
	for i := 0; i < m.Len(); i++ {
		ix.Add(startID+int64(i), m.Row(i))
	}
}

// Search returns the k exact nearest neighbors of q by squared L2 distance,
// best first. It draws a Searcher from the internal pool, so steady-state
// queries allocate only the returned result slice.
func (ix *Index) Search(q []float32, k int) []vec.Neighbor {
	if k <= 0 || ix.Len() == 0 {
		if len(q) != ix.dim {
			panic(fmt.Sprintf("flatindex: Search dim %d != %d", len(q), ix.dim))
		}
		return nil
	}
	s := ix.getSearcher()
	out := s.Search(nil, q, k)
	ix.pool.Put(s)
	return out
}

// SearchBatch runs Search for every query, parallelized across GOMAXPROCS
// workers with one goroutine per query slot (mirroring FAISS' one-thread-
// per-query batch scheduling described in the paper).
func (ix *Index) SearchBatch(queries *vec.Matrix, k int) [][]vec.Neighbor {
	n := queries.Len()
	out := make([][]vec.Neighbor, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = ix.Search(queries.Row(i), k)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = ix.Search(queries.Row(i), k)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// GroundTruth computes the exact top-k ID lists for a batch of queries; it
// is the canonical input to metrics.NDCGAtK / RecallAtK.
func (ix *Index) GroundTruth(queries *vec.Matrix, k int) [][]int64 {
	res := ix.SearchBatch(queries, k)
	out := make([][]int64, len(res))
	for i, r := range res {
		ids := make([]int64, len(r))
		for j, n := range r {
			ids[j] = n.ID
		}
		out[i] = ids
	}
	return out
}

// MemoryBytes reports the index's storage footprint (vectors + IDs).
func (ix *Index) MemoryBytes() int64 {
	return ix.data.Bytes() + int64(len(ix.ids))*8
}
