package batcher

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vec"
)

// echoProcess returns each query's first element as the neighbor ID.
func echoProcess(queries [][]float32) ([][]vec.Neighbor, error) {
	out := make([][]vec.Neighbor, len(queries))
	for i, q := range queries {
		out[i] = []vec.Neighbor{{ID: int64(q[0])}}
	}
	return out, nil
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{MaxBatch: 0, MaxWait: time.Millisecond, Process: echoProcess}); err == nil {
		t.Fatal("MaxBatch=0 should error")
	}
	if _, err := New(Config{MaxBatch: 4, MaxWait: 0, Process: echoProcess}); err == nil {
		t.Fatal("MaxWait=0 should error")
	}
	if _, err := New(Config{MaxBatch: 4, MaxWait: time.Millisecond}); err == nil {
		t.Fatal("nil Process should error")
	}
}

func TestResultsRoutedToCallers(t *testing.T) {
	b, err := New(Config{MaxBatch: 4, MaxWait: 5 * time.Millisecond, Process: echoProcess})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := b.Search([]float32{float32(i)})
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			if len(res) != 1 || res[0].ID != int64(i) {
				t.Errorf("query %d got %+v", i, res)
			}
		}(i)
	}
	wg.Wait()
	st := b.Stats()
	if st.QueriesServed != 16 {
		t.Fatalf("served %d", st.QueriesServed)
	}
	if st.MeanBatch < 2 {
		t.Fatalf("mean batch %v; batching ineffective", st.MeanBatch)
	}
}

func TestMaxBatchFlushesImmediately(t *testing.T) {
	var calls int64
	proc := func(qs [][]float32) ([][]vec.Neighbor, error) {
		atomic.AddInt64(&calls, 1)
		if len(qs) != 4 {
			t.Errorf("batch size %d, want 4", len(qs))
		}
		return echoProcess(qs)
	}
	b, err := New(Config{MaxBatch: 4, MaxWait: time.Hour, Process: proc})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Search([]float32{float32(i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait() // must complete despite the 1-hour MaxWait
	if atomic.LoadInt64(&calls) != 2 {
		t.Fatalf("flushes = %d, want 2", calls)
	}
}

func TestMaxWaitFlushesPartialBatch(t *testing.T) {
	b, err := New(Config{MaxBatch: 100, MaxWait: 10 * time.Millisecond, Process: echoProcess})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	start := time.Now()
	res, err := b.Search([]float32{7})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 7 {
		t.Fatalf("got %+v", res)
	}
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Fatalf("partial batch flushed too early: %v", elapsed)
	}
}

func TestProcessErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	b, err := New(Config{MaxBatch: 2, MaxWait: time.Millisecond,
		Process: func([][]float32) ([][]vec.Neighbor, error) { return nil, boom }})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Search([]float32{1}); !errors.Is(err, boom) {
		t.Fatalf("expected boom, got %v", err)
	}
}

func TestMismatchedResultsError(t *testing.T) {
	b, err := New(Config{MaxBatch: 2, MaxWait: time.Millisecond,
		Process: func(qs [][]float32) ([][]vec.Neighbor, error) { return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Search([]float32{1}); err == nil {
		t.Fatal("mismatched result count should error")
	}
}

func TestCloseFlushesAndRejects(t *testing.T) {
	released := make(chan struct{})
	b, err := New(Config{MaxBatch: 100, MaxWait: time.Hour,
		Process: func(qs [][]float32) ([][]vec.Neighbor, error) {
			close(released)
			return echoProcess(qs)
		}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := b.Search([]float32{1})
		done <- err
	}()
	// Give the search time to enqueue, then close: the pending query must
	// be flushed rather than stranded.
	time.Sleep(5 * time.Millisecond)
	b.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("pending query failed on close: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("pending query stranded by Close")
	}
	<-released
	if _, err := b.Search([]float32{2}); err == nil {
		t.Fatal("post-close Search should error")
	}
	b.Close() // double close is safe
}

// TestCloseWaitsForTimerFlush pins the Close drain contract: time.AfterFunc
// runs flushTimer on its own goroutine and Timer.Stop does not wait for a
// callback already in flight, so without the WaitGroup drain Close could
// return while cfg.Process was still executing — and callers tear down the
// processor right after Close.
func TestCloseWaitsForTimerFlush(t *testing.T) {
	var inFlight, finished atomic.Int32
	b, err := New(Config{MaxBatch: 100, MaxWait: time.Millisecond,
		Process: func(qs [][]float32) ([][]vec.Neighbor, error) {
			inFlight.Add(1)
			time.Sleep(30 * time.Millisecond) // Close must outwait this
			finished.Add(1)
			return echoProcess(qs)
		}})
	if err != nil {
		t.Fatal(err)
	}
	go b.Search([]float32{1})
	// Wait for the timer flush to enter Process, then race Close against it.
	for inFlight.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	b.Close()
	if got := finished.Load(); got != 1 {
		t.Fatalf("Close returned with %d Process calls finished, want 1 (flush still in flight)", got)
	}
}
