// Package b is the dependency half of the factdump fixture: a loads it by
// import path, so ComputeFacts over Loader.Cached() must propagate facts
// across the package boundary.
package b

import "os"

// Tee performs I/O directly; callers in package a inherit the fact.
func Tee(msg string) {
	os.Stderr.WriteString(msg)
}

// Invoke calls a function value. The engine resolves no callee, so no fact
// flows from the argument back to Invoke — the deliberate
// under-approximation the golden dump pins: a.hello is an io function,
// a.Indirect (which reaches it only through Invoke) is not.
func Invoke(f func()) {
	f()
}
