package ivf

import (
	"reflect"
	"testing"

	"repro/internal/vec"
)

// TestSearchGroupCostConservation pins the cost ledger's conservation law for
// every kernel and both encoding modes: summed over a batch, the per-query
// exclusive+amortized code attributions reproduce the batch's distinct code
// traffic exactly, and the per-query cell counters reproduce the probe
// accounting — nothing double-counted, nothing dropped.
func TestSearchGroupCostConservation(t *testing.T) {
	data := gaussianData(700, 16, 171)
	queries := gaussianData(12, 16, 172)
	for name, cfg := range searchConfigs(t, 16) {
		t.Run(name, func(t *testing.T) {
			ix := buildIndex(t, data, cfg)
			qs := make([][]float32, queries.Len())
			for i := range qs {
				qs[i] = queries.Row(i)
			}
			_, stats, _, costs := ix.SearchGroupCosted(qs, 7, 4, false)
			var codes int64
			var cells, sharedCells int
			for qi, c := range costs {
				if c.CellsProbed != 4 {
					t.Fatalf("query %d probed %d cells, want 4", qi, c.CellsProbed)
				}
				if c.SharedCells > c.CellsProbed {
					t.Fatalf("query %d: %d shared cells > %d probed", qi, c.SharedCells, c.CellsProbed)
				}
				if c.CodesExclusive < 0 || c.CodesAmortized < 0 {
					t.Fatalf("query %d: negative attribution %+v", qi, c)
				}
				codes += c.CodesExclusive + c.CodesAmortized
				cells += c.CellsProbed
				sharedCells += c.SharedCells
			}
			if codes != int64(stats.VectorsScanned) {
				t.Fatalf("attributed %d codes != %d distinct streamed", codes, stats.VectorsScanned)
			}
			if cells != stats.CellsScanned+stats.SharedCellScans {
				t.Fatalf("attributed %d cells != %d distinct + %d shared",
					cells, stats.CellsScanned, stats.SharedCellScans)
			}
			// Every saved cell scan means >= 2 queries marked that stream
			// shared; the shared-cell counters must cover all of them.
			if stats.SharedCellScans > 0 && sharedCells <= stats.SharedCellScans {
				t.Fatalf("%d shared-cell marks cannot account for %d saved scans",
					sharedCells, stats.SharedCellScans)
			}
		})
	}
}

// TestSearchGroupCostedPhasedEquivalence pins phased grouped execution to the
// untraced path: identical neighbors and identical ledger entries — phasing
// only adds timestamps around the same code — with the phase breakdown
// populated only when asked for.
func TestSearchGroupCostedPhasedEquivalence(t *testing.T) {
	data := gaussianData(600, 8, 181)
	queries := gaussianData(9, 8, 182)
	ix := buildIndex(t, data, Config{Dim: 8, NList: 6, Seed: 3})
	qs := make([][]float32, queries.Len())
	for i := range qs {
		qs[i] = queries.Row(i)
	}
	plain, pStats, pPh, pCosts := ix.SearchGroupCosted(qs, 5, 3, false)
	phased, tStats, tPh, tCosts := ix.SearchGroupCosted(qs, 5, 3, true)
	if !reflect.DeepEqual(plain, phased) {
		t.Fatalf("phased results diverge:\n%v\n%v", plain, phased)
	}
	if pStats != tStats {
		t.Fatalf("stats diverge: %+v != %+v", pStats, tStats)
	}
	if !reflect.DeepEqual(pCosts, tCosts) {
		t.Fatalf("ledgers diverge:\n%+v\n%+v", pCosts, tCosts)
	}
	if pPh != (PhaseNanos{}) {
		t.Fatalf("untraced run read the clock: %+v", pPh)
	}
	if tPh.Select <= 0 || tPh.Scan <= 0 || tPh.Merge <= 0 {
		t.Fatalf("phased run missing phase time: %+v", tPh)
	}
}

// TestSearchGroupCostedEarlyReturn pins the degenerate inputs: the ledger is
// index-aligned and zero when the search returns before scanning.
func TestSearchGroupCostedEarlyReturn(t *testing.T) {
	data := gaussianData(200, 8, 191)
	ix := buildIndex(t, data, Config{Dim: 8, NList: 4, Seed: 7})
	qs := [][]float32{data.Row(0), data.Row(1)}
	_, _, ph, costs := ix.SearchGroupCosted(qs, 0, 3, true)
	if len(costs) != len(qs) {
		t.Fatalf("got %d ledger entries, want %d", len(costs), len(qs))
	}
	for qi, c := range costs {
		if c != (CostStats{}) {
			t.Fatalf("query %d: early return left ledger %+v", qi, c)
		}
	}
	if ph != (PhaseNanos{}) {
		t.Fatalf("early return reported phases %+v", ph)
	}
}

// TestSearchGroupCostLedgerZeroAlloc extends the grouped steady-state
// allocation contract over the ledger reads: accumulating CostStats per query
// alongside the drains must stay allocation-free on the untraced path.
func TestSearchGroupCostLedgerZeroAlloc(t *testing.T) {
	data := gaussianData(600, 16, 195)
	queries := gaussianData(8, 16, 196)
	ix := buildIndex(t, data, Config{Dim: 16, NList: 8, Seed: 5})
	g := ix.NewGroupSearcher()
	qs := make([][]float32, queries.Len())
	for i := range qs {
		qs[i] = queries.Row(i)
	}
	buf := make([]CostStats, len(qs))
	out := make([]vec.Neighbor, 0, 16)
	for warm := 0; warm < 3; warm++ {
		g.Search(qs, 8, 6)
		for i := range qs {
			out = g.AppendResults(i, out[:0])
			buf[i] = g.CostStats(i)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		g.Search(qs, 8, 6)
		for i := range qs {
			out = g.AppendResults(i, out[:0])
			buf[i] = g.CostStats(i)
		}
	})
	if allocs != 0 {
		t.Fatalf("%v allocations per grouped batch with ledger reads", allocs)
	}
}
