// Package deferinloop is the fixture for the deferinloop analyzer.
package deferinloop

import "os"

func leaky(paths []string) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close() // want "defer inside a loop body"
	}
	return nil
}

func hoisted(paths []string) error {
	for _, p := range paths {
		if err := func() error {
			f, err := os.Open(p)
			if err != nil {
				return err
			}
			defer f.Close() // function literal resets the loop depth: fine
			return f.Sync()
		}(); err != nil {
			return err
		}
	}
	return nil
}

func nested(f *os.File) {
	defer f.Close() // not in a loop: fine
	for i := 0; i < 3; i++ {
		for range []int{1, 2} {
			defer println(i) // want "defer inside a loop body"
		}
	}
}

func suppressed(mu interface {
	Lock()
	Unlock()
}, n int) {
	for i := 0; i < n; i++ {
		mu.Lock()
		//lint:ignore deferinloop fixture: loop runs a bounded, tiny number of iterations
		defer mu.Unlock()
	}
}
