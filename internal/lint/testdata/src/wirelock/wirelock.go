// Package wirelock is the fixture for the wirelock analyzer's happy path:
// the committed wire.lock matches this schema exactly.
package wirelock

// Op is a named non-struct type: the lock records its underlying width, so
// widening it is caught as a type change even though the Go name is stable.
type Op uint8

// Request is a root wire struct.
//
//hermes:wire
type Request struct {
	ID     uint64
	Op     Op
	Query  []float32
	Filter map[string]bool
	note   string // unexported: gob never sees it, neither does the lock
}

// Response is a root wire struct; Hit is locked transitively through it.
//
//hermes:wire
type Response struct {
	ID   uint64
	Hits []Hit
}

// Hit rides inside Response and is locked without its own annotation.
type Hit struct {
	Key  uint64
	Dist float32
}

// scratch is unexported and unreferenced by wire structs: not locked.
type scratch struct {
	buf []byte
}

var _ = scratch{}
