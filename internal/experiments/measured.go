package experiments

import (
	"fmt"
	"time"

	"repro/internal/corpus"
	"repro/internal/flatindex"
	"repro/internal/hermes"
	"repro/internal/hnsw"
	"repro/internal/ivf"
	"repro/internal/metrics"
	"repro/internal/quant"
	"repro/internal/trace"
	"repro/internal/vec"
)

// now is the wall-clock seam for measured-mode experiments. Modeled tables
// must never read it (the wallclock lint check enforces that only this seam
// touches the wall), and tests stub it to make timing deterministic.
var now = time.Now

func init() {
	register("table1", Table1Quantization)
	register("fig4", Fig4HNSWvsIVF)
	register("fig11", Fig11Accuracy)
	register("fig12", Fig12DSE)
	register("fig13", Fig13Imbalance)
}

// fixture bundles the shared measured-experiment inputs.
type fixture struct {
	corpus  *corpus.Corpus
	queries *corpus.QuerySet
	truth   [][]int64
	k       int
}

func buildFixture(sc Scale, k int) (*fixture, error) {
	c, err := corpus.Generate(corpus.Spec{
		NumChunks: sc.Chunks, Dim: sc.Dim, NumTopics: sc.Shards, Seed: sc.Seed,
	})
	if err != nil {
		return nil, err
	}
	qs := c.Queries(sc.Queries, sc.Seed+1)
	ref := flatindex.New(sc.Dim)
	ref.AddBatch(0, c.Vectors)
	return &fixture{corpus: c, queries: qs, truth: ref.GroundTruth(qs.Vectors, k), k: k}, nil
}

func neighborIDs(ns []vec.Neighbor) []int64 {
	out := make([]int64, len(ns))
	for i, n := range ns {
		out[i] = n.ID
	}
	return out
}

// Table1Quantization reproduces Table 1: recall and per-vector size for
// Flat, SQ8, SQ4, and product quantization at two code rates. Recall is
// measured on real IVF indexes against exhaustive ground truth; the byte
// column reports both the experiment's dimensionality and the equivalent at
// the paper's 768 dimensions.
func Table1Quantization(sc Scale) ([]*Table, error) {
	// Dim must divide by 2 and 3 for the PQ points; use a fixed 48 so the
	// schemes are directly comparable regardless of scale.
	dim := 48
	local := sc
	local.Dim = dim
	f, err := buildFixture(local, 10)
	if err != nil {
		return nil, err
	}
	pqD3, err := quant.NewPQ(dim, dim/3, 8, sc.Seed) // 3 dims/byte, like PQ256@768
	if err != nil {
		return nil, err
	}
	pqD2, err := quant.NewPQ(dim, dim/2, 8, sc.Seed) // 2 dims/byte, like PQ384@768
	if err != nil {
		return nil, err
	}
	opqD3, err := quant.NewOPQ(dim, dim/3, 8, sc.Seed)
	if err != nil {
		return nil, err
	}
	opqD2, err := quant.NewOPQ(dim, dim/2, 8, sc.Seed)
	if err != nil {
		return nil, err
	}
	schemes := []struct {
		label string
		q     quant.Quantizer
		eq768 int
		paper float64 // paper's reported recall, for side-by-side
	}{
		{"Flat", quant.NewFlat(dim), 3072, 0.958},
		{"SQ8", quant.NewSQ(dim, 8), 768, 0.942},
		{"SQ4", quant.NewSQ(dim, 4), 384, 0.748},
		{"PQ (3 dims/byte)", pqD3, 256, 0.585},
		{"OPQ (3 dims/byte)", opqD3, 256, 0.596},
		{"PQ (2 dims/byte)", pqD2, 384, 0.748},
		{"OPQ (2 dims/byte)", opqD2, 384, 0.742},
	}

	tab := &Table{
		ID:     "table1",
		Title:  "Quantization schemes: recall vs vector size (paper Table 1)",
		Header: []string{"scheme", "recall@10", "paper recall", "bytes/vec", "bytes/vec @768d"},
		Notes: []string{
			"measured: real IVF indexes over the synthetic corpus; nProbe fixed per scheme",
			fmt.Sprintf("experiment dim %d; PQ labels give dims encoded per code byte", dim),
		},
	}
	for _, s := range schemes {
		ix, err := ivf.New(ivf.Config{Dim: dim, Quantizer: s.q, Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		if err := ix.Train(f.corpus.Vectors); err != nil {
			return nil, err
		}
		if err := ix.AddBatch(0, f.corpus.Vectors); err != nil {
			return nil, err
		}
		nProbe := ix.NList() / 6
		if nProbe < 1 {
			nProbe = 1
		}
		got := make([][]int64, f.queries.Vectors.Len())
		for i := 0; i < f.queries.Vectors.Len(); i++ {
			got[i] = neighborIDs(ix.Search(f.queries.Vectors.Row(i), f.k, nProbe))
		}
		recall := metrics.MeanRecall(got, f.truth, f.k)
		tab.AddRow(s.label, recall, s.paper, s.q.CodeSize(), s.eq768)
	}
	return []*Table{tab}, nil
}

// Fig4HNSWvsIVF reproduces Figure 4: HNSW vs IVF latency, throughput, and
// memory at batch sizes 32 and 128.
func Fig4HNSWvsIVF(sc Scale) ([]*Table, error) {
	f, err := buildFixture(sc, 10)
	if err != nil {
		return nil, err
	}
	// IVF-SQ8 (the paper's deployment choice).
	ivfIx, err := ivf.New(ivf.Config{Dim: sc.Dim, Quantizer: quant.NewSQ(sc.Dim, 8), Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	if err := ivfIx.Train(f.corpus.Vectors); err != nil {
		return nil, err
	}
	if err := ivfIx.AddBatch(0, f.corpus.Vectors); err != nil {
		return nil, err
	}
	// HNSW.
	hn, err := hnsw.New(hnsw.Config{Dim: sc.Dim, M: 16, EfConstruction: 100, EfSearch: 64, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	for i := 0; i < f.corpus.Vectors.Len(); i++ {
		if err := hn.Add(int64(i), f.corpus.Vectors.Row(i)); err != nil {
			return nil, err
		}
	}

	tab := &Table{
		ID:     "fig4",
		Title:  "HNSW vs IVF: latency, QPS, memory, recall (paper Fig. 4)",
		Header: []string{"index", "batch", "latency_ms", "qps", "memory_bytes", "recall@10"},
		Notes: []string{
			"measured in-process; paper shape: HNSW faster at equal recall but >2x memory",
		},
	}
	nProbe := ivfIx.NList() / 6
	if nProbe < 1 {
		nProbe = 1
	}
	for _, batch := range []int{32, 128} {
		// IVF batch.
		start := now()
		got := make([][]int64, batch)
		for i := 0; i < batch; i++ {
			qi := i % f.queries.Vectors.Len()
			got[i] = neighborIDs(ivfIx.Search(f.queries.Vectors.Row(qi), f.k, nProbe))
		}
		ivfLat := now().Sub(start)
		ivfRecall := batchRecall(got, f, batch)
		tab.AddRow("IVF-SQ8", batch, float64(ivfLat.Milliseconds()),
			metrics.QPS(batch, ivfLat), ivfIx.MemoryBytes(), ivfRecall)

		// HNSW batch.
		start = now()
		for i := 0; i < batch; i++ {
			qi := i % f.queries.Vectors.Len()
			got[i] = neighborIDs(hn.Search(f.queries.Vectors.Row(qi), f.k))
		}
		hnswLat := now().Sub(start)
		hnswRecall := batchRecall(got, f, batch)
		tab.AddRow("HNSW", batch, float64(hnswLat.Milliseconds()),
			metrics.QPS(batch, hnswLat), hn.MemoryBytes(), hnswRecall)
	}
	return []*Table{tab}, nil
}

func batchRecall(got [][]int64, f *fixture, batch int) float64 {
	truth := make([][]int64, batch)
	for i := 0; i < batch; i++ {
		truth[i] = f.truth[i%len(f.truth)]
	}
	return metrics.MeanRecall(got, truth, f.k)
}

// Fig11Accuracy reproduces Figure 11: NDCG as a function of clusters
// searched for the monolithic index, naive split, centroid routing, and
// Hermes document sampling.
func Fig11Accuracy(sc Scale) ([]*Table, error) {
	f, err := buildFixture(sc, 5)
	if err != nil {
		return nil, err
	}
	clustered, err := hermes.Build(f.corpus.Vectors, hermes.BuildOptions{NumShards: sc.Shards})
	if err != nil {
		return nil, err
	}
	naive, err := hermes.BuildNaiveSplit(f.corpus.Vectors, sc.Shards, 8)
	if err != nil {
		return nil, err
	}
	mono, err := hermes.BuildMonolithic(f.corpus.Vectors, 8, 0, sc.Seed)
	if err != nil {
		return nil, err
	}
	monoNDCG := 0.0
	for i := 0; i < f.queries.Vectors.Len(); i++ {
		res := mono.Search(f.queries.Vectors.Row(i), f.k, 128)
		monoNDCG += metrics.NDCGAtK(neighborIDs(res), f.truth[i], f.k)
	}
	monoNDCG /= float64(f.queries.Vectors.Len())

	tab := &Table{
		ID:     "fig11",
		Title:  "NDCG vs clusters searched: monolithic / split / centroid / Hermes (paper Fig. 11)",
		Header: []string{"clusters_searched", "monolithic", "naive_split", "centroid", "hermes"},
		Notes: []string{
			"measured on real indexes; Hermes should reach monolithic NDCG within ~3 clusters",
		},
	}
	for deep := 1; deep <= sc.Shards; deep++ {
		p := hermes.DefaultParams()
		p.K = f.k
		p.DeepClusters = deep
		var splitSum, centroidSum, hermesSum float64
		for i := 0; i < f.queries.Vectors.Len(); i++ {
			q := f.queries.Vectors.Row(i)
			sres, _ := naive.SearchFirstN(q, p, deep)
			splitSum += metrics.NDCGAtK(neighborIDs(sres), f.truth[i], f.k)
			cres, _ := clustered.SearchCentroid(q, p)
			centroidSum += metrics.NDCGAtK(neighborIDs(cres), f.truth[i], f.k)
			hres, _ := clustered.Search(q, p)
			hermesSum += metrics.NDCGAtK(neighborIDs(hres), f.truth[i], f.k)
		}
		n := float64(f.queries.Vectors.Len())
		tab.AddRow(deep, monoNDCG, splitSum/n, centroidSum/n, hermesSum/n)
	}
	return []*Table{tab}, nil
}

// Fig12DSE reproduces Figure 12: the nProbe design-space exploration. The
// first table sweeps the sample nProbe (deep fixed at 128); the second
// sweeps the deep nProbe (sample fixed at 8). Both report NDCG and measured
// per-query latency.
func Fig12DSE(sc Scale) ([]*Table, error) {
	f, err := buildFixture(sc, 5)
	if err != nil {
		return nil, err
	}
	st, err := hermes.Build(f.corpus.Vectors, hermes.BuildOptions{NumShards: sc.Shards})
	if err != nil {
		return nil, err
	}
	run := func(p hermes.Params) (ndcg float64, latency time.Duration) {
		start := now()
		var sum float64
		for i := 0; i < f.queries.Vectors.Len(); i++ {
			res, _ := st.Search(f.queries.Vectors.Row(i), p)
			sum += metrics.NDCGAtK(neighborIDs(res), f.truth[i], f.k)
		}
		elapsed := now().Sub(start)
		return sum / float64(f.queries.Vectors.Len()), elapsed / time.Duration(f.queries.Vectors.Len())
	}

	small := &Table{
		ID:     "fig12",
		Title:  "DSE: sample nProbe sweep, deep nProbe fixed at 128 (paper Fig. 12 left)",
		Header: []string{"sample_nprobe", "clusters_searched", "ndcg", "latency_us"},
		Notes:  []string{"measured per-query latency on real indexes"},
	}
	for _, sp := range []int{1, 2, 4, 8} {
		for deep := 1; deep <= sc.Shards; deep++ {
			p := hermes.Params{K: f.k, SampleNProbe: sp, DeepNProbe: 128, DeepClusters: deep}
			ndcg, lat := run(p)
			small.AddRow(sp, deep, ndcg, lat.Microseconds())
		}
	}
	large := &Table{
		ID:     "fig12",
		Title:  "DSE: deep nProbe sweep, sample nProbe fixed at 8 (paper Fig. 12 right)",
		Header: []string{"deep_nprobe", "clusters_searched", "ndcg", "latency_us"},
		Notes:  []string{"measured per-query latency on real indexes"},
	}
	for _, dp := range []int{16, 32, 64, 128} {
		for deep := 1; deep <= sc.Shards; deep++ {
			p := hermes.Params{K: f.k, SampleNProbe: 8, DeepNProbe: dp, DeepClusters: deep}
			ndcg, lat := run(p)
			large.AddRow(dp, deep, ndcg, lat.Microseconds())
		}
	}
	return []*Table{small, large}, nil
}

// Fig13Imbalance reproduces Figure 13: per-cluster document counts and
// deep-search access frequencies under a skewed query trace.
func Fig13Imbalance(sc Scale) ([]*Table, error) {
	c, err := corpus.Generate(corpus.Spec{
		NumChunks: sc.Chunks, Dim: sc.Dim, NumTopics: sc.Shards, Seed: sc.Seed, ZipfS: 1.5,
	})
	if err != nil {
		return nil, err
	}
	st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: sc.Shards})
	if err != nil {
		return nil, err
	}
	qs := c.Queries(sc.Queries*4, sc.Seed+2)
	tr := trace.Collect(st, qs, hermes.DefaultParams())
	counts := tr.AccessCounts()
	sizes := st.Sizes()

	tab := &Table{
		ID:     "fig13",
		Title:  "Cluster size and access-frequency imbalance (paper Fig. 13)",
		Header: []string{"cluster", "size_docs", "deep_accesses"},
	}
	for s := 0; s < sc.Shards; s++ {
		tab.AddRow(s, sizes[s], counts[s])
	}
	ratio, unvisited := tr.AccessImbalance()
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("size imbalance (max/min) = %.2f; access imbalance = %.2f; unvisited clusters = %d",
			st.Imbalance, ratio, unvisited),
		"paper: sizes vary ~2x, accesses vary >2x under Natural Questions",
	)
	return []*Table{tab}, nil
}
