package striding

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/hermes"
)

func textStore(t testing.TB, chunks, topics int) (*TextStore, *corpus.Corpus) {
	t.Helper()
	c, err := corpus.Generate(corpus.Spec{
		NumChunks: chunks, Dim: 16, NumTopics: topics, Seed: 21, TokensPerChunk: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := BuildTextStore(c, 32, topics)
	if err != nil {
		t.Fatal(err)
	}
	return ts, c
}

func TestBuildTextStoreShapes(t *testing.T) {
	ts, _ := textStore(t, 600, 4)
	if ts.Store.NumShards() != 4 {
		t.Fatalf("shards = %d", ts.Store.NumShards())
	}
	if ts.Chunks.Len() != 600 {
		t.Fatalf("chunks = %d", ts.Chunks.Len())
	}
}

// The core end-to-end property: a text query about topic T retrieves chunks
// of topic T through the full text → embedding → hierarchical-search path.
func TestTextQueriesRetrieveTopically(t *testing.T) {
	ts, _ := textStore(t, 1000, 5)
	hits, total := 0, 0
	for topic := 0; topic < 5; topic++ {
		for trial := 0; trial < 4; trial++ {
			q := corpus.QueryText(topic, 8, int64(trial))
			qv := ts.Encoder.Encode(q)
			res, _ := ts.Store.Search(qv, hermes.DefaultParams())
			if len(res) == 0 {
				t.Fatalf("no results for topic %d", topic)
			}
			for _, n := range res {
				got, err := ts.Chunks.Topic(n.ID)
				if err != nil {
					t.Fatal(err)
				}
				total++
				if got == topic {
					hits++
				}
			}
		}
	}
	if frac := float64(hits) / float64(total); frac < 0.8 {
		t.Fatalf("topical retrieval precision %v, want >= 0.8", frac)
	}
}

func TestSessionValidation(t *testing.T) {
	ts, _ := textStore(t, 200, 2)
	if _, err := NewSession(Config{Text: nil, Stride: 4}); err == nil {
		t.Fatal("nil TextStore should error")
	}
	if _, err := NewSession(Config{Text: ts, Stride: 0}); err == nil {
		t.Fatal("zero stride should error")
	}
	s, err := NewSession(Config{Text: ts, Stride: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Generate("q", 0); err == nil {
		t.Fatal("zero outTokens should error")
	}
}

func TestGenerateStrideStructure(t *testing.T) {
	ts, _ := textStore(t, 600, 3)
	s, err := NewSession(Config{Text: ts, Stride: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Generate(corpus.QueryText(1, 6, 3), 30)
	if err != nil {
		t.Fatal(err)
	}
	// 30 tokens at stride 8 -> 4 rounds (8+8+8+6).
	if len(res.Strides) != 4 {
		t.Fatalf("strides = %d, want 4", len(res.Strides))
	}
	tokens := strings.Fields(res.Output)
	if len(tokens) != 30 {
		t.Fatalf("output tokens = %d, want 30", len(tokens))
	}
	for i, rec := range res.Strides {
		want := 8
		if i == 3 {
			want = 6
		}
		if len(rec.Generated) != want {
			t.Fatalf("stride %d generated %d tokens, want %d", i, len(rec.Generated), want)
		}
		if len(rec.Retrieved) == 0 {
			t.Fatalf("stride %d retrieved nothing", i)
		}
		if rec.Stats.SampledShards != 3 {
			t.Fatalf("stride %d sampled %d shards", i, rec.Stats.SampledShards)
		}
	}
}

func TestGenerationGroundedInTopic(t *testing.T) {
	ts, _ := textStore(t, 800, 4)
	s, err := NewSession(Config{Text: ts, Stride: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	topic := 2
	res, err := s.Generate(corpus.QueryText(topic, 8, 5), 24)
	if err != nil {
		t.Fatal(err)
	}
	// Retrieved context chunks should predominantly be the query's topic,
	// and generated tokens should include the topic's vocabulary.
	topical := 0
	for _, rec := range res.Strides {
		got, err := ts.Chunks.Topic(rec.ContextChunk)
		if err != nil {
			t.Fatal(err)
		}
		if got == topic {
			topical++
		}
	}
	if topical < 2 {
		t.Fatalf("only %d/%d strides used topic-%d context", topical, len(res.Strides), topic)
	}
	prefix := "t2w"
	if !strings.Contains(res.Output, prefix) {
		t.Fatalf("output carries no topic-%d vocabulary: %q", topic, res.Output)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	ts, _ := textStore(t, 400, 2)
	mk := func() string {
		s, err := NewSession(Config{Text: ts, Stride: 4, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Generate("t0w01 t0w02 index", 12)
		if err != nil {
			t.Fatal(err)
		}
		return res.Output
	}
	if mk() != mk() {
		t.Fatal("same seed produced different output")
	}
}

// The defining behaviour of striding: as output accumulates, the prompt
// embedding drifts and retrieval refreshes — across a multi-stride run the
// retrieved set must not be frozen to the first stride's.
func TestContextRefreshAcrossStrides(t *testing.T) {
	ts, _ := textStore(t, 1000, 5)
	s, err := NewSession(Config{Text: ts, Stride: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Generate(corpus.QueryText(0, 6, 13), 36)
	if err != nil {
		t.Fatal(err)
	}
	first := fmt.Sprint(res.Strides[0].Retrieved)
	changed := false
	for _, rec := range res.Strides[1:] {
		if fmt.Sprint(rec.Retrieved) != first {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("retrieved set never refreshed across strides")
	}
}
