package llm

import "math"

// Perplexity modeling for Figure 5. The paper cites prior work (RETRO,
// in-context RALM) showing that retrieving fresh context more often lets a
// model with half the parameters match a larger model's perplexity: quality
// improves as stride shrinks, saturating at very small strides.
//
// The proxy model combines two standard empirical laws:
//   - parameter scaling: base perplexity falls as a power law in parameters
//     (Kaplan et al.),
//   - retrieval benefit: fresher context multiplies perplexity by a factor
//     that decays with retrieval frequency 1/stride and with datastore
//     coverage.
//
// The constants are fit to Figure 5's anchor points: GPT-2 762M ≈ 30 PPL
// without frequent retrieval, GPT-2 1.5B ≈ 25, and RETRO 578M crossing below
// the 1.5B line at stride ≈ 4-16.

// PerplexityModel parameterizes the proxy.
type PerplexityModel struct {
	// BasePPL is the no-retrieval perplexity of a reference model with
	// RefParams parameters.
	BasePPL   float64
	RefParams float64
	// ScalingAlpha is the parameter power-law exponent (~0.095).
	ScalingAlpha float64
	// RetrievalGain is the maximum fractional perplexity reduction
	// retrieval can deliver (at stride -> 1).
	RetrievalGain float64
	// StrideDecay shapes how quickly benefit degrades as stride grows.
	StrideDecay float64
}

// DefaultPerplexityModel is fit to Figure 5's anchors.
var DefaultPerplexityModel = PerplexityModel{
	BasePPL:       30.0,
	RefParams:     762e6,
	ScalingAlpha:  0.28,
	RetrievalGain: 0.40,
	StrideDecay:   0.35,
}

// BasePerplexity returns the no-retrieval perplexity of a model with the
// given parameter count under the power law.
func (m PerplexityModel) BasePerplexity(params float64) float64 {
	return m.BasePPL * math.Pow(m.RefParams/params, m.ScalingAlpha)
}

// WithRetrieval returns the perplexity of a model of the given size when it
// retrieves fresh context every stride tokens. stride <= 0 means no
// retrieval.
func (m PerplexityModel) WithRetrieval(params float64, stride int) float64 {
	base := m.BasePerplexity(params)
	if stride <= 0 {
		return base
	}
	// Benefit decays with stride: full RetrievalGain at stride 1,
	// approaching zero as stride grows.
	benefit := m.RetrievalGain * math.Pow(1/float64(stride), m.StrideDecay)
	return base * (1 - benefit)
}
