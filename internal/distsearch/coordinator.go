package distsearch

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/evlog"
	"repro/internal/hermes"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// nodeClient is one persistent connection to a shard node. Requests on a
// single connection are serialized by a mutex; the coordinator issues
// cross-node requests in parallel.
type nodeClient struct {
	addr string
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	mu   sync.Mutex

	// broken marks the connection poisoned after a transport failure. The
	// wire protocol has no correlation ID, so once an exchange fails the
	// gob stream is unusable: a node that finishes a timed-out request
	// late still writes its response, and the next decode on the same
	// connection would silently take that stale response as the reply to
	// a NEW request. The failing exchange therefore closes the socket (so
	// the late reply has nowhere to land) and the next round-trip redials.
	broken bool

	// dialTimeout bounds the TCP dial and the OpInfo handshake, for both
	// the initial connect and lazy redials. rtTimeout, when positive,
	// bounds each round-trip: read/write deadlines are set on the
	// connection per request so a hung node surfaces as a timeout error
	// instead of stalling the coordinator forever.
	dialTimeout time.Duration
	rtTimeout   time.Duration
	cm          *coordMetrics
	met         clientMetrics
	// ev receives lifecycle events (poisoning, deadline hits, redials); a
	// nil log swallows them at zero cost.
	ev *evlog.Log

	shardID  int
	size     int
	dim      int
	centroid []float32

	// deepLoad counts deep searches sent to this node over the client's
	// lifetime — the coordinator-side view of per-shard load, feeding the
	// imbalance gauge and the DVFS energy collector.
	deepLoad atomic.Int64

	// wireBytes accumulates every byte sent to or received from this node
	// (fed by the counting codec wrappers). Because the per-connection mutex
	// serializes exchanges, the counter's delta across one round-trip is that
	// request's exact wire cost — the WireBytes source of the query ledger.
	wireBytes atomic.Int64
}

func dialNode(addr string, timeout, rtTimeout time.Duration, cm *coordMetrics, ev *evlog.Log) (*nodeClient, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		ev.Warn("node.dial", evlog.Str("addr", addr), evlog.Err(err))
		return nil, fmt.Errorf("distsearch: dial %s: %w", addr, err)
	}
	c := &nodeClient{addr: addr, conn: conn, dialTimeout: timeout, rtTimeout: rtTimeout, cm: cm, ev: ev}
	// The handshake runs before the shard ID is known, so wire byte counts
	// attach to the codec only afterwards; the gob codec itself must be
	// constructed exactly once per connection (it streams type state).
	c.met = clientMetrics{}
	sent := &countingWriter{w: conn, n: &c.wireBytes}
	recv := &countingReader{r: conn, n: &c.wireBytes}
	c.enc = gob.NewEncoder(sent)
	c.dec = gob.NewDecoder(recv)
	info, err := c.roundTrip(&Request{Op: OpInfo})
	if err != nil {
		//lint:ignore errdrop the handshake already failed; Close is best-effort cleanup
		conn.Close()
		return nil, err
	}
	c.shardID = info.ShardID
	c.size = info.Size
	c.dim = info.Dim
	c.centroid = info.Centroid
	c.met = newClientMetrics(cm.reg, c.shardID)
	sent.c = c.met.sent
	recv.c = c.met.recv
	ev.Info("node.dial", evlog.Str("addr", addr), evlog.Int("shard", int64(c.shardID)))
	return c, nil
}

// roundTrip issues one request/response exchange. Each exchange counts into
// the per-op request counter and in-flight gauge, runs under the per-round-
// trip I/O deadline, and lands in the per-node round-trip histogram. A
// connection broken by an earlier transport failure is redialed first.
func (c *nodeClient) roundTrip(req *Request) (*Response, error) {
	resp, _, err := c.roundTripBytes(req)
	return resp, err
}

// roundTripBytes is roundTrip plus the exchange's exact wire cost in bytes
// (request sent + response received, measured under the gob codec). The
// delta is read inside the per-connection mutex, so concurrent queries on
// the same connection cannot bleed into each other's accounting.
func (c *nodeClient) roundTripBytes(req *Request) (resp *Response, wire int64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	before := c.wireBytes.Load()
	defer func() { wire = c.wireBytes.Load() - before }()
	c.cm.opCounter(req.Op).Inc()
	switch req.Op {
	case OpDeep:
		c.deepLoad.Add(1)
		c.met.deepTotal.Inc()
	case OpDeepBatch:
		n := int64(len(req.Queries))
		c.deepLoad.Add(n)
		c.met.deepTotal.Add(n)
	}
	c.cm.inflight.Inc()
	defer c.cm.inflight.Dec()
	rtStart := now()
	// Timed by hand rather than via Timer() so a traced request pins its
	// trace ID as the round-trip bucket's exemplar.
	defer func() {
		c.met.roundTrip.ObserveExemplar(now().Sub(rtStart).Seconds(), req.TraceID)
	}()
	if c.broken {
		//lint:ignore lockheldio serializing the redial under the per-connection mutex is the design: one repair at a time, and queued requests must not race a half-built conn
		if rerr := c.redialLocked(); rerr != nil {
			return nil, 0, fmt.Errorf("distsearch: reconnect %s: %w", c.addr, rerr)
		}
	}
	timeout := c.rtTimeout
	if req.Op == OpInfo && timeout <= 0 {
		// DialOptions.Timeout bounds the OpInfo handshake even when
		// round-trips are otherwise deadline-free.
		timeout = c.dialTimeout
	}
	//lint:ignore lockheldio the per-connection mutex exists to serialize gob exchanges on one stateful stream; concurrency comes from many nodeClients, not many requests per conn
	resp, err = c.exchangeLocked(req, timeout)
	if err != nil {
		return nil, 0, err
	}
	if resp.ServerNanos > 0 {
		c.met.compute.ObserveDuration(time.Duration(resp.ServerNanos))
	}
	if resp.Err != "" {
		c.cm.errors.Inc()
		return nil, 0, fmt.Errorf("distsearch: node %s: %s", c.addr, resp.Err)
	}
	return resp, 0, nil
}

// exchangeLocked runs one encode/decode under an optional I/O deadline. Any
// transport failure abandons the connection via breakLocked — the gob stream
// is out of sync, so reusing it would pair stale responses with future
// requests.
func (c *nodeClient) exchangeLocked(req *Request, timeout time.Duration) (*Response, error) {
	if timeout > 0 {
		if err := c.conn.SetDeadline(now().Add(timeout)); err != nil {
			c.breakLocked(err)
			return nil, fmt.Errorf("distsearch: deadline on %s: %w", c.addr, err)
		}
		// Clear the deadline on every exit path so no later write on the
		// connection can inherit an expired deadline (harmless no-op on
		// the error paths, which close the socket anyway).
		defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	}
	if err := c.enc.Encode(req); err != nil {
		c.breakLocked(err)
		return nil, fmt.Errorf("distsearch: send to %s: %w", c.addr, err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		c.breakLocked(err)
		return nil, fmt.Errorf("distsearch: recv from %s: %w", c.addr, err)
	}
	return &resp, nil
}

// breakLocked records a transport failure and abandons the connection: every
// failure increments the error counter, I/O timeouts additionally count as
// deadline hits, and the socket is closed so a stale late reply cannot be
// mistaken for the answer to a future request.
func (c *nodeClient) breakLocked(err error) {
	c.cm.errors.Inc()
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		c.cm.deadlineHits.Inc()
		//lint:ignore lockheldio the event must be recorded before a queued request can observe (and redial) the broken conn, and Emit only touches the log's in-memory ring
		c.ev.Warn("deadline.hit", evlog.Int("shard", int64(c.shardID)),
			evlog.Str("addr", c.addr), evlog.Dur("timeout", c.rtTimeout))
	}
	//lint:ignore lockheldio same as above: poisoning and its event are one atomic state change under the per-connection mutex
	c.ev.Warn("conn.poisoned", evlog.Int("shard", int64(c.shardID)),
		evlog.Str("addr", c.addr), evlog.Err(err))
	c.abandonLocked()
}

// abandonLocked closes the connection and marks it broken so the next
// round-trip redials.
func (c *nodeClient) abandonLocked() {
	c.broken = true
	//lint:ignore errdrop the connection is being abandoned; Close is best-effort
	c.conn.Close()
}

// redialLocked replaces a broken connection with a fresh dial and handshake.
// Fresh gob codecs are built on the new socket (the old stream state is
// unusable) and wired through the existing byte counters. The node must
// still present the same shard: a different shard ID or dimensionality at
// the address means the cluster changed underneath the coordinator, whose
// routing state (centroids, per-shard metric labels) would silently lie.
func (c *nodeClient) redialLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		c.cm.errors.Inc()
		//lint:ignore lockheldio redial runs serialized under the per-connection mutex by design (see the roundTrip suppression); the event rides the same critical section
		c.ev.Warn("node.redial", evlog.Int("shard", int64(c.shardID)),
			evlog.Str("addr", c.addr), evlog.Err(err))
		return err
	}
	c.conn = conn
	c.enc = gob.NewEncoder(&countingWriter{w: conn, c: c.met.sent, n: &c.wireBytes})
	c.dec = gob.NewDecoder(&countingReader{r: conn, c: c.met.recv, n: &c.wireBytes})
	c.broken = false
	info, err := c.exchangeLocked(&Request{Op: OpInfo}, c.dialTimeout)
	if err != nil {
		return err // exchangeLocked already re-abandoned the connection
	}
	if info.Err != "" {
		c.cm.errors.Inc()
		c.abandonLocked()
		return fmt.Errorf("handshake rejected: %s", info.Err)
	}
	if info.ShardID != c.shardID || info.Dim != c.dim {
		c.cm.errors.Inc()
		c.abandonLocked()
		return fmt.Errorf("node changed identity: shard %d dim %d, was shard %d dim %d",
			info.ShardID, info.Dim, c.shardID, c.dim)
	}
	c.size = info.Size
	c.centroid = info.Centroid
	//lint:ignore lockheldio see the redial suppression above: the success event belongs to the serialized repair critical section
	c.ev.Info("node.redial", evlog.Int("shard", int64(c.shardID)), evlog.Str("addr", c.addr))
	return nil
}

// close shuts down the client's connection; a connection already abandoned
// after a transport failure reports success.
func (c *nodeClient) close() error {
	c.mu.Lock()
	if c.conn == nil || c.broken {
		c.mu.Unlock()
		return nil
	}
	c.broken = true
	conn := c.conn
	c.mu.Unlock()
	// Close outside the lock: a peer mid-teardown can stall Close, and
	// nothing else touches the conn once broken is set.
	return conn.Close()
}

// Coordinator fans queries out to shard nodes following Hermes' two-phase
// protocol and aggregates the results.
type Coordinator struct {
	nodes []*nodeClient
	dim   int
	m     *coordMetrics
	// rec, when non-nil, receives one QueryRecord per completed
	// SearchTraced/Search call — the flight-recorder hook.
	rec *telemetry.Recorder
	// ev receives serving-path lifecycle events; nil swallows them.
	ev *evlog.Log
	// lenient degrades gracefully on node failure instead of failing the
	// query (see SetLenient).
	lenient bool
	// grouped asks nodes to serve SearchBatch phases through the shared
	// multi-query cell scan (see SetGrouped).
	grouped bool
}

// SetLenient toggles degraded-mode serving: when enabled, a node that fails
// mid-query is skipped — the sample phase ranks the surviving shards and the
// deep phase aggregates whatever returns — instead of failing the whole
// query. Results may miss the dead shard's documents (lower recall) but the
// service stays up, which is how a production tier rides out node loss. A
// query still errors if every node fails.
func (co *Coordinator) SetLenient(lenient bool) { co.lenient = lenient }

// SetGrouped toggles grouped batch execution: when enabled, SearchBatch
// requests carry Request.Grouped, asking each node to run the sub-batch
// through the multi-query grouped cell scan (queries probing the same IVF
// cell share one code stream). The result sets are identical either way —
// the flag only changes node-side execution — so it is safe against old
// nodes, which drop the unknown field and serve the batch per-query.
// Call before issuing searches; not synchronized with in-flight batches.
func (co *Coordinator) SetGrouped(grouped bool) { co.grouped = grouped }

// DialOptions configures a coordinator connection.
type DialOptions struct {
	// Timeout bounds the TCP dial and the OpInfo handshake (default 5s).
	Timeout time.Duration
	// RoundTripTimeout, when positive, is the per-request I/O deadline
	// applied to every round-trip after connect, so a hung node fails the
	// request instead of stalling the coordinator forever. Zero (the
	// default, and the plain Dial() behavior) leaves round-trips
	// deadline-free: long-running operations — OpCompact on a large
	// index, big batch payloads on slow links — are never cut short
	// unless the caller opts in. Only the OpInfo handshake is always
	// bounded (by Timeout).
	RoundTripTimeout time.Duration
	// Telemetry receives the coordinator's metrics (nil = telemetry.Default).
	Telemetry *telemetry.Registry
	// Recorder, when non-nil, is the flight recorder completed queries are
	// written to (see SetRecorder).
	Recorder *telemetry.Recorder
	// Lenient starts the coordinator in degraded-mode serving (SetLenient).
	Lenient bool
	// Grouped starts the coordinator with grouped batch execution enabled
	// (SetGrouped): SearchBatch asks nodes for shared multi-query cell
	// scans.
	Grouped bool
	// Events, when non-nil, receives structured lifecycle events —
	// connection poisoning, deadline hits, dials/redials, load-imbalance
	// threshold crossings — for the /debug/events ring. Nil disables event
	// logging at zero cost.
	Events *evlog.Log
}

// Dial connects to every node address with default options. All nodes must
// expose the same vector dimensionality.
func Dial(addrs []string, timeout time.Duration) (*Coordinator, error) {
	return DialOpts(addrs, DialOptions{Timeout: timeout})
}

// DialOpts connects to every node address with explicit options.
func DialOpts(addrs []string, opts DialOptions) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("distsearch: no node addresses")
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	rtTimeout := opts.RoundTripTimeout
	if rtTimeout < 0 {
		rtTimeout = 0
	}
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.Default
	}
	co := &Coordinator{m: newCoordMetrics(reg), rec: opts.Recorder, lenient: opts.Lenient, grouped: opts.Grouped, ev: opts.Events}
	for _, addr := range addrs {
		c, err := dialNode(addr, timeout, rtTimeout, co.m, opts.Events)
		if err != nil {
			_ = co.Close()
			return nil, err
		}
		if co.dim == 0 {
			co.dim = c.dim
		} else if co.dim != c.dim {
			_ = co.Close()
			//lint:ignore errdrop dial is failing on a dim mismatch; Close is best-effort cleanup
			c.conn.Close()
			return nil, fmt.Errorf("distsearch: node %s dim %d != %d", addr, c.dim, co.dim)
		}
		co.nodes = append(co.nodes, c)
	}
	// Imbalance is computed at scrape time from the per-node deep counters:
	// max/mean load, the figure Hermes' DVFS story keys off (Fig. 13/21).
	// Crossing the event threshold (in either direction) is a lifecycle
	// edge worth a timestamped event: metrics show the ratio, the event log
	// shows when the cluster went lopsided.
	imbalance := reg.Gauge("hermes_coordinator_load_imbalance_ratio",
		"per-shard deep-search load imbalance seen by this coordinator (max/mean; 1 = perfectly balanced, 0 = no load yet)")
	var above atomic.Bool
	reg.RegisterCollector(func(*telemetry.Registry) {
		v := co.loadImbalance()
		imbalance.Set(v)
		// CompareAndSwap both races-proofs the crossing state (concurrent
		// scrapes run collectors concurrently) and dedupes the event.
		if v >= imbalanceEventThreshold && above.CompareAndSwap(false, true) {
			co.ev.Warn("load.imbalance", evlog.Float("ratio", v),
				evlog.Float("threshold", imbalanceEventThreshold))
		} else if v < imbalanceEventThreshold && above.CompareAndSwap(true, false) {
			co.ev.Info("load.balanced", evlog.Float("ratio", v))
		}
	})
	return co, nil
}

// imbalanceEventThreshold is the max/mean deep-load ratio past which the
// coordinator logs a load.imbalance event.
const imbalanceEventThreshold = 1.5

// SetRecorder points the coordinator's flight-recorder hook at rec: every
// completed Search/SearchTraced appends one QueryRecord (trace ID, total,
// per-phase/per-node spans when traced, shards deep-searched, vectors
// scanned, error). A nil rec disables recording.
func (co *Coordinator) SetRecorder(rec *telemetry.Recorder) { co.rec = rec }

// DeepLoad returns the number of deep searches sent to each connected node
// over this coordinator's lifetime, index-aligned with its node list.
func (co *Coordinator) DeepLoad() []int64 {
	out := make([]int64, len(co.nodes))
	for i, n := range co.nodes {
		out[i] = n.deepLoad.Load()
	}
	return out
}

// loadImbalance is max/mean of per-node deep-search load (0 before any
// deep search).
func (co *Coordinator) loadImbalance() float64 {
	if len(co.nodes) == 0 {
		return 0
	}
	var max, sum int64
	for _, n := range co.nodes {
		v := n.deepLoad.Load()
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(len(co.nodes)) / float64(sum)
}

// Nodes returns the number of connected shard nodes.
func (co *Coordinator) Nodes() int { return len(co.nodes) }

// Dim returns the index dimensionality.
func (co *Coordinator) Dim() int { return co.dim }

// TotalSize sums the shard sizes reported at connect time.
func (co *Coordinator) TotalSize() int {
	total := 0
	for _, n := range co.nodes {
		total += n.size
	}
	return total
}

// Result is a distributed query outcome.
type Result struct {
	Neighbors []vec.Neighbor
	// DeepNodes lists the shard IDs deep-searched, ranked most relevant
	// first.
	DeepNodes []int
	// SampleLatency and DeepLatency are the wall times of the two phases.
	SampleLatency, DeepLatency time.Duration
	// Cost is the query's assembled resource-attribution ledger: node-side
	// cells/codes/scan-time from the wire responses (zeroes when every node
	// predates the v6 ledger) plus the coordinator-measured wire bytes of
	// the round-trips that served this query.
	Cost telemetry.QueryCost
}

// Search executes the hierarchical search across the cluster: scatter the
// sample request to all nodes, rank by sampled-document distance, deep-search
// the top p.DeepClusters nodes, and merge.
func (co *Coordinator) Search(q []float32, p hermes.Params) (*Result, error) {
	return co.SearchTraced(q, p, nil)
}

// SearchTraced is Search with request-scoped tracing: the trace's ID rides
// every wire request to the shard nodes, one span is recorded per
// coordinator phase (sample_scatter, rank, deep_gather), and every node
// ships its own per-phase spans (decode/probe_select/list_scan/topk_merge/
// encode) back in the response, which the coordinator stitches into the
// trace anchored at its own send time — a cross-node waterfall immune to
// clock skew. A nil trace disables tracing at zero cost. When a flight
// recorder is attached (SetRecorder), every call — traced or not — appends
// one QueryRecord.
func (co *Coordinator) SearchTraced(q []float32, p hermes.Params, tr *telemetry.Trace) (*Result, error) {
	if co.rec == nil {
		res, _, err := co.searchTraced(q, p, tr)
		return res, err
	}
	start := time.Now()
	res, scanned, err := co.searchTraced(q, p, tr)
	qr := telemetry.QueryRecord{
		TraceID: tr.ID(),
		Start:   start,
		Total:   time.Since(start),
		Scanned: scanned,
	}
	qr.Busy = qr.Total
	if qr.TraceID == 0 {
		// Untraced queries still get a unique record ID so /debug/queries
		// can address them.
		qr.TraceID = telemetry.NewTraceID()
	}
	if tr != nil {
		qr.Spans = tr.Spans()
		_, qr.Busy = telemetry.SpanTotals(qr.Spans)
	}
	if err != nil {
		qr.Err = err.Error()
	} else {
		qr.DeepNodes = res.DeepNodes
		qr.Cost = res.Cost
	}
	co.rec.Record(qr)
	return res, err
}

// stitchSpans merges node-shipped wire spans into the trace. Node offsets
// are relative to the request's arrival at the node; anchoring them at the
// coordinator's send time places them on the coordinator's clock without
// ever comparing the two machines' wall clocks (they drift into the
// outbound wire time, which shifts a node's block slightly left — never
// scrambles it).
func stitchSpans(tr *telemetry.Trace, anchor time.Time, spans []WireSpan) {
	for _, ws := range spans {
		tr.AddSpan(ws.Name, ws.Node, anchor.Add(time.Duration(ws.OffsetNanos)), time.Duration(ws.DurNanos))
	}
}

func (co *Coordinator) searchTraced(q []float32, p hermes.Params, tr *telemetry.Trace) (*Result, int64, error) {
	if len(q) != co.dim {
		return nil, 0, fmt.Errorf("distsearch: query dim %d != %d", len(q), co.dim)
	}
	if p.K <= 0 {
		p = hermes.DefaultParams()
	}
	co.m.queries.Inc()

	// Phase 1 — scatter sampling.
	type sample struct {
		node    int
		score   float32
		scanned int64
		cost    telemetry.QueryCost
		ok      bool
		err     error
	}
	endScatter := tr.StartSpan("sample_scatter")
	start := time.Now()
	samples := make([]sample, len(co.nodes))
	var wg sync.WaitGroup
	for i, n := range co.nodes {
		wg.Add(1)
		go func(i int, n *nodeClient) {
			defer wg.Done()
			sendAt := time.Now()
			resp, wire, err := n.roundTripBytes(&Request{Op: OpSample, Query: q, NProbe: p.SampleNProbe, TraceID: tr.ID()})
			if err != nil {
				samples[i] = sample{node: i, err: err}
				return
			}
			stitchSpans(tr, sendAt, resp.Spans)
			cost := telemetry.QueryCost{WireBytes: wire}
			if len(resp.Costs) > 0 {
				cost.Add(resp.Costs[0])
			}
			if len(resp.Neighbors) == 0 {
				samples[i] = sample{node: i, scanned: resp.Scanned, cost: cost}
				return
			}
			samples[i] = sample{node: i, score: resp.Neighbors[0].Score, scanned: resp.Scanned, cost: cost, ok: true}
		}(i, n)
	}
	wg.Wait()
	sampleLat := time.Since(start)
	endScatter()
	co.m.phaseSample.ObserveExemplar(sampleLat.Seconds(), tr.ID())

	var scanned int64
	var cost telemetry.QueryCost
	endRank := tr.StartSpan("rank")
	ranked := samples[:0:0]
	var firstErr error
	for _, s := range samples {
		scanned += s.scanned
		cost.Add(s.cost)
		if s.err != nil {
			if !co.lenient {
				endRank()
				return nil, scanned, s.err
			}
			if firstErr == nil {
				firstErr = s.err
			}
			continue
		}
		if s.ok {
			ranked = append(ranked, s)
		}
	}
	if len(ranked) == 0 {
		endRank()
		if firstErr != nil {
			return nil, scanned, fmt.Errorf("distsearch: all nodes failed: %w", firstErr)
		}
		co.m.observeCost(cost)
		return &Result{SampleLatency: sampleLat, Cost: cost}, scanned, nil
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].score < ranked[j].score })
	endRank()

	// Phase 2 — deep search the top clusters.
	deep := p.DeepClusters
	if deep > len(ranked) {
		deep = len(ranked)
	}
	endDeep := tr.StartSpan("deep_gather")
	deepStart := time.Now()
	type deepResult struct {
		neighbors []vec.Neighbor
		scanned   int64
		cost      telemetry.QueryCost
		err       error
	}
	deepResults := make([]deepResult, deep)
	deepNodes := make([]int, deep)
	for i := 0; i < deep; i++ {
		wg.Add(1)
		deepNodes[i] = co.nodes[ranked[i].node].shardID
		go func(slot, nodeIdx int) {
			defer wg.Done()
			sendAt := time.Now()
			resp, wire, err := co.nodes[nodeIdx].roundTripBytes(&Request{Op: OpDeep, Query: q, K: p.K, NProbe: p.DeepNProbe, TraceID: tr.ID()})
			if err != nil {
				deepResults[slot] = deepResult{err: err}
				return
			}
			stitchSpans(tr, sendAt, resp.Spans)
			dc := telemetry.QueryCost{WireBytes: wire}
			if len(resp.Costs) > 0 {
				dc.Add(resp.Costs[0])
			}
			deepResults[slot] = deepResult{neighbors: resp.Neighbors, scanned: resp.Scanned, cost: dc}
		}(i, ranked[i].node)
	}
	wg.Wait()
	deepLat := time.Since(deepStart)
	endDeep()
	co.m.phaseDeep.ObserveExemplar(deepLat.Seconds(), tr.ID())

	tk := vec.NewTopK(p.K)
	gotAny := false
	for _, dr := range deepResults {
		scanned += dr.scanned
		cost.Add(dr.cost)
		if dr.err != nil {
			if !co.lenient {
				return nil, scanned, dr.err
			}
			continue
		}
		gotAny = true
		for _, n := range dr.neighbors {
			tk.Push(n.ID, n.Score)
		}
	}
	if !gotAny && deep > 0 {
		return nil, scanned, fmt.Errorf("distsearch: every deep-search node failed")
	}
	co.m.observeCost(cost)
	return &Result{
		Neighbors:     tk.Results(),
		DeepNodes:     deepNodes,
		SampleLatency: sampleLat,
		DeepLatency:   deepLat,
		Cost:          cost,
	}, scanned, nil
}

// SearchAll deep-searches every node (the naive distributed baseline) and
// merges.
func (co *Coordinator) SearchAll(q []float32, p hermes.Params) (*Result, error) {
	if len(q) != co.dim {
		return nil, fmt.Errorf("distsearch: query dim %d != %d", len(q), co.dim)
	}
	if p.K <= 0 {
		p = hermes.DefaultParams()
	}
	start := time.Now()
	results := make([][]vec.Neighbor, len(co.nodes))
	errs := make([]error, len(co.nodes))
	var wg sync.WaitGroup
	for i, n := range co.nodes {
		wg.Add(1)
		go func(i int, n *nodeClient) {
			defer wg.Done()
			resp, err := n.roundTrip(&Request{Op: OpDeep, Query: q, K: p.K, NProbe: p.DeepNProbe})
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = resp.Neighbors
		}(i, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	tk := vec.NewTopK(p.K)
	deepNodes := make([]int, len(co.nodes))
	for i, rs := range results {
		deepNodes[i] = co.nodes[i].shardID
		for _, n := range rs {
			tk.Push(n.ID, n.Score)
		}
	}
	return &Result{Neighbors: tk.Results(), DeepNodes: deepNodes, DeepLatency: time.Since(start)}, nil
}

// Add ingests a document into the cluster, routing it to the node whose
// shard centroid is most similar — the same rule that assigned the original
// corpus. It returns the chosen node's shard ID.
func (co *Coordinator) Add(id int64, v []float32) (int, error) {
	if len(v) != co.dim {
		return 0, fmt.Errorf("distsearch: Add dim %d != %d", len(v), co.dim)
	}
	best, bestDist := -1, float32(0)
	for i, n := range co.nodes {
		if len(n.centroid) != co.dim {
			continue
		}
		d := vec.L2Squared(v, n.centroid)
		if best < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("distsearch: no node exposes a centroid for routing")
	}
	resp, err := co.nodes[best].roundTrip(&Request{Op: OpAdd, ID: id, Query: v})
	if err != nil {
		return 0, err
	}
	return resp.ShardID, nil
}

// Remove deletes a document from whichever node holds it. It returns the
// shard ID and false if no node had the id.
func (co *Coordinator) Remove(id int64) (int, bool, error) {
	for _, n := range co.nodes {
		resp, err := n.roundTrip(&Request{Op: OpRemove, ID: id})
		if err != nil {
			if co.lenient {
				continue
			}
			return 0, false, err
		}
		if resp.OK {
			return resp.ShardID, true, nil
		}
	}
	return 0, false, nil
}

// NodeStats is one node's live serving counters plus its full telemetry
// snapshot.
type NodeStats struct {
	ShardID         int
	Size            int
	SampleServed    int64
	DeepServed      int64
	MutationsServed int64
	Tombstones      int
	// Telemetry is the node's complete metric snapshot (per-op request
	// counts, handling-time histogram quantiles, ...), keyed as
	// telemetry.Registry.Snapshot renders it. Empty when talking to a
	// pre-telemetry node.
	Telemetry map[string]float64
}

// Stats gathers serving counters from every node — the live view of the
// deep-search load imbalance (Fig. 13) on a running cluster.
func (co *Coordinator) Stats() ([]NodeStats, error) {
	out := make([]NodeStats, len(co.nodes))
	for i, n := range co.nodes {
		resp, err := n.roundTrip(&Request{Op: OpStats})
		if err != nil {
			return nil, err
		}
		out[i] = NodeStats{
			ShardID:         resp.ShardID,
			Size:            resp.Size,
			SampleServed:    resp.SampleServed,
			DeepServed:      resp.DeepServed,
			MutationsServed: resp.MutationsServed,
			Tombstones:      resp.Tombstones,
			Telemetry:       resp.Telemetry,
		}
	}
	return out, nil
}

// Compact reclaims tombstoned space on every node.
func (co *Coordinator) Compact() error {
	for _, n := range co.nodes {
		if _, err := n.roundTrip(&Request{Op: OpCompact}); err != nil {
			return err
		}
	}
	return nil
}

// Shutdown asks every node to stop serving, then closes the connections.
func (co *Coordinator) Shutdown() error {
	var firstErr error
	for _, n := range co.nodes {
		if _, err := n.roundTrip(&Request{Op: OpShutdown}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := co.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Close drops all connections without stopping the nodes. Every connection
// is closed regardless; the first close error is returned.
func (co *Coordinator) Close() error {
	var firstErr error
	for _, n := range co.nodes {
		if n == nil {
			continue
		}
		if err := n.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
