// Command hermes-loadtest drives a running hermes-node cluster (or an
// in-process one it spins up itself) with an open-loop Poisson query load
// and reports achieved throughput and sojourn-latency percentiles — the
// serving-side measurement methodology of the paper's Figure 15.
//
// Against a running cluster:
//
//	hermes-loadtest -nodes 127.0.0.1:7001,127.0.0.1:7002 -index ./idx -qps 200 -queries 1000
//
// Self-contained (builds a store and local TCP nodes itself):
//
//	hermes-loadtest -selfcontained -chunks 10000 -shards 10 -qps 500 -queries 2000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/batcher"
	"repro/internal/corpus"
	"repro/internal/distsearch"
	"repro/internal/hermes"
	"repro/internal/kvcache"
	"repro/internal/llm"
	"repro/internal/loadgen"
	"repro/internal/telemetry"
	"repro/internal/vec"
	"repro/pkg/indexfile"
)

func main() {
	var (
		nodesFlag  = flag.String("nodes", "", "comma-separated shard node addresses")
		dir        = flag.String("index", "hermes-index", "index directory (for the corpus spec)")
		self       = flag.Bool("selfcontained", false, "build a store and local nodes in-process")
		chunks     = flag.Int("chunks", 10000, "corpus size for -selfcontained")
		dim        = flag.Int("dim", 32, "embedding dim for -selfcontained")
		shards     = flag.Int("shards", 10, "shard count for -selfcontained")
		qps        = flag.Float64("qps", 200, "offered arrival rate")
		queries    = flag.Int("queries", 1000, "number of arrivals")
		conc       = flag.Int("concurrency", 8, "max in-flight queries")
		deep       = flag.Int("deep", 3, "clusters to deep-search")
		seed       = flag.Int64("seed", 23, "generation seed")
		allFlag    = flag.Bool("all", false, "use the naive search-all baseline")
		admin      = flag.String("admin", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :8080)")
		rtTimeout  = flag.Duration("rt-timeout", 0, "per-round-trip I/O deadline; 0 leaves round-trips unbounded")
		group      = flag.Bool("group", false, "batch queries through the grouping scheduler and execute them as grouped (shared-scan) batch requests")
		groupSlack = flag.Duration("group-slack", 2*time.Millisecond, "grouping scheduler slack window: a query with no predicted cell overlap may sit out flushes this long (bounded by the batch wait)")
		kvMiB      = flag.Int64("kvcache", 0, "document KV-cache capacity in MiB (0 disables); retrieved docs feed an LRU so the achievable RAGCache hit rate shows up in /metrics")
		linger     = flag.Duration("linger", 0, "keep the process (and -admin endpoints) up this long after the report")
		slowMS     = flag.Int("slow-ms", 0, "trace every query into a flight recorder, pin those slower than this many milliseconds, and print the slowest at run end (0 disables tracing)")
		traceFlag  = flag.Bool("trace", false, "trace every query; with -group, traces every grouped batch and prints the slowest batch's waterfall and per-query attribution table at run end")
		costFlag   = flag.Bool("cost", false, "accumulate the per-query cost ledger and print a totals table at run end")
	)
	flag.Parse()

	var rec *telemetry.Recorder
	if *slowMS > 0 || *traceFlag {
		pin := time.Duration(*slowMS) * time.Millisecond
		if *slowMS <= 0 {
			// -trace without -slow-ms: record everything, pin nothing.
			pin = time.Hour
		}
		rec = telemetry.NewRecorder(1024, pin)
	}

	params := hermes.DefaultParams()
	params.DeepClusters = *deep

	tokensPerChunk := corpus.DefaultTokensPerChunk
	var co *distsearch.Coordinator
	var qset *corpus.QuerySet
	// predict is the grouping signal for -group: available in -selfcontained
	// mode, where the store is in-process (over the wire, grouped node
	// execution still applies but flushes pack FIFO).
	var predict batcher.PredictFunc
	switch {
	case *self:
		spec := corpus.Spec{NumChunks: *chunks, Dim: *dim, NumTopics: *shards, Seed: *seed}
		c, err := corpus.Generate(spec)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "building %d-shard store over %d chunks...\n", *shards, *chunks)
		st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: *shards})
		if err != nil {
			fatal(err)
		}
		lc, err := distsearch.LaunchLocal(st, nil)
		if err != nil {
			fatal(err)
		}
		defer lc.Close()
		co, err = distsearch.DialOpts(lc.Addrs(), distsearch.DialOptions{
			Timeout:          5 * time.Second,
			RoundTripTimeout: *rtTimeout,
			Recorder:         rec,
		})
		if err != nil {
			fatal(err)
		}
		predict = func(q []float32) []uint64 { return st.PredictCells(q, params) }
		qset = c.Queries(*queries, *seed+1)
	case *nodesFlag != "":
		meta, err := indexfile.ReadMeta(*dir)
		if err != nil {
			fatal(err)
		}
		if meta.Corpus.TokensPerChunk > 0 {
			tokensPerChunk = meta.Corpus.TokensPerChunk
		}
		c, err := corpus.Generate(meta.Corpus)
		if err != nil {
			fatal(err)
		}
		co, err = distsearch.DialOpts(strings.Split(*nodesFlag, ","), distsearch.DialOptions{
			Timeout:          5 * time.Second,
			RoundTripTimeout: *rtTimeout,
			Recorder:         rec,
		})
		if err != nil {
			fatal(err)
		}
		qset = c.Queries(*queries, *seed+1)
	default:
		fatal(fmt.Errorf("pass -nodes or -selfcontained"))
	}
	defer co.Close()

	if *admin != "" {
		srv, err := telemetry.ServeAdminOpts(*admin, telemetry.Default, rec)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "admin endpoints on http://%s/metrics\n", srv.Addr())
		if rec != nil {
			fmt.Fprintf(os.Stderr, "flight recorder on http://%s/debug/queries\n", srv.Addr())
		}
	}

	// The optional KV cache replays RAGCache's premise over the real
	// retrieval stream: each retrieved document's prefill state is one
	// entry, sized by the chunk's tokens under the Phi-1.5 spec. The cache
	// is not concurrency-safe, so the load workers share a mutex.
	var (
		cache    *kvcache.Cache
		cacheMu  sync.Mutex
		docBytes int64
	)
	if *kvMiB > 0 {
		var err error
		cache, err = kvcache.New(*kvMiB << 20)
		if err != nil {
			fatal(err)
		}
		docBytes = kvcache.KVBytes(tokensPerChunk, llm.Phi15.KVBytesPerToken())
		telemetry.Default.RegisterCollector(func(r *telemetry.Registry) {
			cacheMu.Lock()
			s := cache.Stats()
			cacheMu.Unlock()
			s.Collect(r)
		})
		fmt.Fprintf(os.Stderr, "kv cache: %d MiB capacity, %.1f KiB per document\n",
			*kvMiB, float64(docBytes)/1024)
	}

	fmt.Fprintf(os.Stderr, "offered load: %.0f QPS x %d queries, concurrency %d, deep=%d, search-all=%v, grouped=%v\n",
		*qps, *queries, *conc, *deep, *allFlag, *group)

	// The cost ledger and slowest-batch tracking are shared by the load
	// workers and the batcher's flush goroutine.
	var (
		costMu    sync.Mutex
		costTotal telemetry.QueryCost
		costN     int

		slowBatchMu    sync.Mutex
		slowBatchID    uint64
		slowBatchWall  time.Duration
		slowBatchCosts []telemetry.QueryCost
	)

	// -group puts the grouping scheduler in front of the cluster: arrivals
	// form batches (packed by predicted cell overlap when the predictor is
	// available), and every batch travels as one grouped wire request per
	// node per phase, asking nodes for shared multi-query cell scans.
	var bat *batcher.Batcher
	if *group {
		if *allFlag {
			fatal(fmt.Errorf("-group and -all are mutually exclusive"))
		}
		co.SetGrouped(true)
		var err error
		bat, err = batcher.New(batcher.Config{
			MaxBatch: *conc,
			// The wait window trades queueing delay for batch size; twice
			// the slack keeps held-back queries inside one extra flush.
			MaxWait:    2 * *groupSlack,
			GroupSlack: *groupSlack,
			Predict:    predict,
			Telemetry:  telemetry.Default,
			// Each flush travels as one traced grouped batch under the
			// batcher-minted identity; nodes execute it grouped (shared
			// cell scans) and ship per-query attribution back.
			ProcessBatch: func(batchID uint64, batch [][]float32) ([][]vec.Neighbor, error) {
				var tr *telemetry.Trace
				if *traceFlag {
					tr = telemetry.NewTraceWithID(batchID)
				}
				flushStart := time.Now()
				res, err := co.SearchBatchTraced(batch, params, tr)
				if err != nil {
					return nil, err
				}
				if *costFlag {
					costMu.Lock()
					for _, c := range res.Costs {
						costTotal.Add(c)
					}
					costN += len(batch)
					costMu.Unlock()
				}
				if tr != nil {
					wall := time.Since(flushStart)
					slowBatchMu.Lock()
					if wall > slowBatchWall {
						slowBatchWall = wall
						slowBatchID = res.BatchID
						slowBatchCosts = res.Costs
					}
					slowBatchMu.Unlock()
				}
				return res.Results, nil
			},
		})
		if err != nil {
			fatal(err)
		}
	}

	rep, err := loadgen.Run(loadgen.Config{
		TargetQPS:   *qps,
		Queries:     *queries,
		Concurrency: *conc,
		Seed:        *seed,
	}, func(i int) error {
		q := qset.Vectors.Row(i % qset.Vectors.Len())
		var neighbors []vec.Neighbor
		var err error
		switch {
		case bat != nil:
			// Batch tracing and cost accounting happen in the ProcessBatch
			// closure — one trace per flush, not per query.
			neighbors, err = bat.Search(q)
		case *allFlag:
			var res *distsearch.Result
			res, err = co.SearchAll(q, params)
			if res != nil {
				neighbors = res.Neighbors
			}
		case rec != nil:
			// Trace every query so slow outliers land in the recorder with
			// their full cross-node breakdown attached.
			var res *distsearch.Result
			res, err = co.SearchTraced(q, params, telemetry.NewTrace())
			if res != nil {
				neighbors = res.Neighbors
				if *costFlag {
					costMu.Lock()
					costTotal.Add(res.Cost)
					costN++
					costMu.Unlock()
				}
			}
		default:
			var res *distsearch.Result
			res, err = co.Search(q, params)
			if res != nil {
				neighbors = res.Neighbors
				if *costFlag {
					costMu.Lock()
					costTotal.Add(res.Cost)
					costN++
					costMu.Unlock()
				}
			}
		}
		if err != nil {
			return err
		}
		if cache != nil {
			cacheMu.Lock()
			for _, n := range neighbors {
				cache.Lookup(n.ID, docBytes)
			}
			cacheMu.Unlock()
		}
		return nil
	})
	if bat != nil {
		bat.Close()
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("completed %d/%d (failed %d) in %v\n", rep.Completed, rep.Offered, rep.Failed, rep.Wall)
	fmt.Printf("achieved throughput: %.1f QPS (offered %.1f)\n", rep.AchievedQPS, *qps)
	fmt.Printf("sojourn latency: mean %v  p50 %v  p95 %v  p99 %v  max %v\n",
		rep.Sojourn.Mean, rep.Sojourn.P50, rep.Sojourn.P95, rep.Sojourn.P99, rep.Sojourn.Max)
	fmt.Printf("service latency: mean %v  p50 %v  p95 %v\n",
		rep.Service.Mean, rep.Service.P50, rep.Service.P95)
	if bat != nil {
		s := bat.Stats()
		fmt.Printf("grouping: %d flushes, %.1f queries/batch, %d slack holdbacks\n",
			s.Flushes, s.MeanBatch, s.Holdbacks)
	}
	if cache != nil {
		cacheMu.Lock()
		s := cache.Stats()
		cacheMu.Unlock()
		fmt.Printf("kv cache: %.1f%% hit rate (%d hits / %d lookups, %d evictions)\n",
			100*s.HitRate(), s.Hits, s.Hits+s.Misses, s.Evictions)
	}
	if *costFlag {
		printCost(costTotal, costN)
	}
	if rec != nil && *slowMS > 0 {
		printSlowest(rec, *slowMS)
	}
	if bat != nil && *traceFlag {
		printSlowestBatch(rec, slowBatchID, slowBatchWall, slowBatchCosts)
	}
	if *linger > 0 {
		fmt.Fprintf(os.Stderr, "lingering %v for admin scrapes...\n", *linger)
		time.Sleep(*linger)
	}
}

// printSlowest renders the flight recorder's pinned outliers — trace ID and
// per-phase breakdown — so the slowest queries of the run are explainable
// without re-running it. With -linger and -admin the same records stay
// queryable at /debug/queries?trace=<id>.
func printSlowest(rec *telemetry.Recorder, slowMS int) {
	slow := rec.Slow(10)
	if len(slow) == 0 {
		fmt.Printf("slowest queries: none above the %dms pin threshold\n", slowMS)
		return
	}
	fmt.Printf("slowest queries (>= %dms, slowest first):\n", slowMS)
	for _, qr := range slow {
		fmt.Printf("  %016x total=%-12v busy=%-12v deep=%v scanned=%d",
			qr.TraceID, qr.Total, qr.Busy, qr.DeepNodes, qr.Scanned)
		if qr.Err != "" {
			fmt.Printf(" err=%q", qr.Err)
		}
		if s := qr.PhaseSummary(); s != "" {
			fmt.Printf("\n      %s", s)
		}
		fmt.Println()
	}
}

// printCost renders the run's accumulated cost ledger: totals across all
// completed queries plus the per-query mean — the -cost table.
func printCost(total telemetry.QueryCost, n int) {
	fmt.Printf("cost ledger (%d queries):\n", n)
	if n == 0 {
		return
	}
	row := func(name string, v int64, unit string) {
		fmt.Printf("  %-16s %14d%-3s  mean %.1f%s/query\n", name, v, unit, float64(v)/float64(n), unit)
	}
	row("cells probed", total.Cells, "")
	row("shared cells", total.SharedCells, "")
	row("codes exclusive", total.CodesExclusive, "")
	row("codes amortized", total.CodesAmortized, "")
	row("codes total", total.Codes(), "")
	row("wire bytes", total.WireBytes, "B")
	if total.ScanNanos > 0 {
		fmt.Printf("  %-16s %14v     mean %v/query\n", "scan time",
			time.Duration(total.ScanNanos), time.Duration(total.ScanNanos/int64(n)))
	}
	fmt.Printf("  shared fraction  %13.1f%%\n", 100*total.SharedFrac())
}

// printSlowestBatch renders the slowest grouped batch of a -group -trace run:
// the stitched cross-node waterfall (shared phase spans appear once per node,
// not once per query) followed by the per-query amortization table. The
// records come from the flight recorder under the batch's identity; if they
// were evicted by later traffic, the attribution table is rebuilt from the
// batch result kept aside at flush time.
func printSlowestBatch(rec *telemetry.Recorder, batchID uint64, wall time.Duration, costs []telemetry.QueryCost) {
	if batchID == 0 {
		fmt.Println("slowest grouped batch: none (no batches flushed)")
		return
	}
	fmt.Printf("slowest grouped batch: %016x wall=%v queries=%d\n", batchID, wall, len(costs))
	batch, members, ok := rec.Batch(batchID)
	if ok && len(batch.Spans) > 0 {
		fmt.Println(telemetry.FormatWaterfall(batch.TraceID, batch.Spans))
	}
	if !ok || len(members) == 0 {
		members = make([]telemetry.QueryRecord, len(costs))
		for i, c := range costs {
			members[i] = telemetry.QueryRecord{Cost: c}
		}
	}
	fmt.Println("per-query attribution (amortization breakdown):")
	telemetry.WriteBatchAttribution(os.Stdout, members)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hermes-loadtest:", err)
	os.Exit(1)
}
