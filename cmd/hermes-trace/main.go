// Command hermes-trace generates cluster-access traces from an index
// directory (step 10 of the paper artifact's workflow): it replays a query
// stream through the hierarchical search, records which shards each query's
// deep phase touched, and reports per-cluster access counts and imbalance —
// the raw material of Figure 13 and the input to the multi-node energy
// model.
//
// Usage:
//
//	hermes-trace -index ./idx -queries 500
//	hermes-trace -index ./idx -queries 500 -csv      # per-query trace rows
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/corpus"
	"repro/internal/hermes"
	"repro/internal/trace"
	"repro/pkg/indexfile"
)

func main() {
	var (
		dir     = flag.String("index", "hermes-index", "index directory from hermes-build")
		queries = flag.Int("queries", 500, "queries to trace")
		qseed   = flag.Int64("qseed", 29, "query generation seed")
		deep    = flag.Int("deep", 3, "clusters deep-searched per query")
		csvOut  = flag.Bool("csv", false, "emit per-query trace rows as CSV")
	)
	flag.Parse()

	meta, indexes, err := indexfile.ReadAll(*dir)
	if err != nil {
		fatal(err)
	}
	if meta.Type == "monolithic" {
		fatal(fmt.Errorf("traces require a sharded index (got monolithic)"))
	}
	st, err := hermes.FromIndexes(indexes)
	if err != nil {
		fatal(err)
	}
	c, err := corpus.Generate(meta.Corpus)
	if err != nil {
		fatal(err)
	}
	params := hermes.DefaultParams()
	params.DeepClusters = *deep
	qs := c.Queries(*queries, *qseed)
	tr := trace.Collect(st, qs, params)

	if *csvOut {
		fmt.Println("query_id,deep_shards")
		for _, e := range tr.Entries {
			parts := make([]string, len(e.DeepShards))
			for i, s := range e.DeepShards {
				parts[i] = fmt.Sprint(s)
			}
			fmt.Printf("%d,%s\n", e.QueryID, strings.Join(parts, " "))
		}
		return
	}

	counts := tr.AccessCounts()
	sizes := st.Sizes()
	fmt.Printf("trace: %d queries x %d deep clusters over %d shards\n\n", *queries, *deep, st.NumShards())
	fmt.Printf("%-8s %-12s %-14s\n", "cluster", "size_docs", "deep_accesses")
	for s := 0; s < st.NumShards(); s++ {
		fmt.Printf("%-8d %-12d %-14d\n", s, sizes[s], counts[s])
	}
	ratio, unvisited := tr.AccessImbalance()
	fmt.Printf("\nsize imbalance (max/min): %.2f\n", st.Imbalance)
	fmt.Printf("access imbalance (max/min): %.2f (%d clusters never deep-searched)\n", ratio, unvisited)
	fmt.Printf("hottest clusters: %v\n", tr.TopShards()[:min(3, st.NumShards())])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hermes-trace:", err)
	os.Exit(1)
}
