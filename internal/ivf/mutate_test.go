package ivf

import (
	"testing"

	"repro/internal/vec"
)

func hasID(res []vec.Neighbor, id int64) bool {
	for _, n := range res {
		if n.ID == id {
			return true
		}
	}
	return false
}

func TestRemoveHidesVector(t *testing.T) {
	data := gaussianData(300, 8, 30)
	ix := buildIndex(t, data, Config{Dim: 8, NList: 8, Seed: 1})
	q := data.Row(7)
	res := ix.Search(q, 3, 8)
	if !hasID(res, 7) {
		t.Fatal("self-query should retrieve the vector before removal")
	}
	if !ix.Remove(7) {
		t.Fatal("Remove returned false for a live id")
	}
	if ix.Len() != 299 {
		t.Fatalf("Len after remove = %d", ix.Len())
	}
	if hasID(ix.Search(q, 3, 8), 7) {
		t.Fatal("removed vector still retrievable")
	}
}

func TestRemoveIdempotent(t *testing.T) {
	data := gaussianData(100, 4, 31)
	ix := buildIndex(t, data, Config{Dim: 4, NList: 4, Seed: 1})
	if !ix.Remove(5) {
		t.Fatal("first remove should succeed")
	}
	if ix.Remove(5) {
		t.Fatal("second remove should fail")
	}
	if ix.Remove(9999) {
		t.Fatal("removing an unknown id should fail")
	}
	if ix.Len() != 99 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestRemoveUntrained(t *testing.T) {
	ix, _ := New(Config{Dim: 4})
	if ix.Remove(1) {
		t.Fatal("untrained Remove should fail")
	}
}

func TestCompactReclaimsMemory(t *testing.T) {
	data := gaussianData(400, 8, 32)
	ix := buildIndex(t, data, Config{Dim: 8, NList: 8, Seed: 2})
	before := ix.MemoryBytes()
	for id := int64(0); id < 200; id++ {
		if !ix.Remove(id) {
			t.Fatalf("remove %d failed", id)
		}
	}
	if ix.Tombstones() != 200 {
		t.Fatalf("tombstones = %d", ix.Tombstones())
	}
	// Tombstoned entries still occupy list space until Compact.
	if ix.MemoryBytes() != before {
		t.Fatal("memory should be unchanged before Compact")
	}
	ix.Compact()
	if ix.Tombstones() != 0 {
		t.Fatal("tombstones should be cleared by Compact")
	}
	if ix.MemoryBytes() >= before {
		t.Fatalf("memory after Compact %d should be < %d", ix.MemoryBytes(), before)
	}
	// Remaining vectors still searchable; removed ones still gone.
	if hasID(ix.Search(data.Row(100), 5, 8), 100) {
		t.Fatal("compacted-away vector resurfaced")
	}
	res := ix.Search(data.Row(300), 1, ix.NList())
	if len(res) == 0 || res[0].ID != 300 {
		t.Fatal("surviving vector lost by Compact")
	}
}

func TestCompactNoop(t *testing.T) {
	data := gaussianData(50, 4, 33)
	ix := buildIndex(t, data, Config{Dim: 4, NList: 4, Seed: 1})
	ix.Compact() // no tombstones: must be a no-op
	if ix.Len() != 50 {
		t.Fatalf("Len after no-op Compact = %d", ix.Len())
	}
}

func TestUpdateMovesVector(t *testing.T) {
	data := gaussianData(200, 4, 34)
	ix := buildIndex(t, data, Config{Dim: 4, NList: 6, Seed: 3})
	// Move vector 10 to a far-away location.
	newPos := []float32{50, 50, 50, 50}
	if err := ix.Update(10, newPos); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 200 {
		t.Fatalf("Len after update = %d", ix.Len())
	}
	// The old location must no longer return id 10; the new one must.
	if hasID(ix.Search(data.Row(10), 3, ix.NList()), 10) {
		t.Fatal("old location still returns the updated id")
	}
	res := ix.Search(newPos, 1, ix.NList())
	if len(res) == 0 || res[0].ID != 10 {
		t.Fatalf("new location does not return the updated id: %+v", res)
	}
}

func TestUpdateUnknownID(t *testing.T) {
	data := gaussianData(50, 4, 35)
	ix := buildIndex(t, data, Config{Dim: 4, NList: 4, Seed: 1})
	if err := ix.Update(999, []float32{0, 0, 0, 0}); err == nil {
		t.Fatal("updating an unknown id should error")
	}
}

// Remove + re-Add of the same id must not resurrect the old vector.
func TestRemoveReaddSameID(t *testing.T) {
	data := gaussianData(150, 4, 36)
	ix := buildIndex(t, data, Config{Dim: 4, NList: 5, Seed: 4})
	old := vec.Copy(data.Row(20))
	if !ix.Remove(20) {
		t.Fatal("remove failed")
	}
	fresh := []float32{30, 30, 30, 30}
	if err := ix.Add(20, fresh); err != nil {
		t.Fatal(err)
	}
	// Old location: id 20 must not appear.
	if hasID(ix.Search(old, 3, ix.NList()), 20) {
		t.Fatal("old vector resurrected after re-add")
	}
	// New location: id 20 must be the best hit.
	res := ix.Search(fresh, 1, ix.NList())
	if len(res) == 0 || res[0].ID != 20 {
		t.Fatal("re-added vector not found")
	}
	// And survives Compact.
	ix.Compact()
	res = ix.Search(fresh, 1, ix.NList())
	if len(res) == 0 || res[0].ID != 20 {
		t.Fatal("re-added vector lost by Compact")
	}
}

func TestScanStatsExcludeTombstones(t *testing.T) {
	data := gaussianData(100, 4, 37)
	ix := buildIndex(t, data, Config{Dim: 4, NList: 1, Seed: 5})
	_, before := ix.SearchWithStats(data.Row(0), 5, 1)
	for id := int64(0); id < 40; id++ {
		ix.Remove(id)
	}
	_, after := ix.SearchWithStats(data.Row(0), 5, 1)
	if after.VectorsScanned != before.VectorsScanned-40 {
		t.Fatalf("scanned %d after removals, want %d", after.VectorsScanned, before.VectorsScanned-40)
	}
}
