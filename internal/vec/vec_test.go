package vec

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDotBasic(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	b := []float32{5, 4, 3, 2, 1}
	if got := Dot(a, b); got != 35 {
		t.Fatalf("Dot = %v, want 35", got)
	}
}

func TestDotEmpty(t *testing.T) {
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestL2SquaredBasic(t *testing.T) {
	a := []float32{0, 0, 0}
	b := []float32{1, 2, 2}
	if got := L2Squared(a, b); got != 9 {
		t.Fatalf("L2Squared = %v, want 9", got)
	}
}

func TestL2SquaredSymmetric(t *testing.T) {
	f := func(n uint8) bool {
		rng := rand.New(rand.NewSource(int64(n)))
		dim := int(n%17) + 1
		a := make([]float32, dim)
		b := make([]float32, dim)
		for i := range a {
			a[i] = rng.Float32()*2 - 1
			b[i] = rng.Float32()*2 - 1
		}
		return almostEqual(float64(L2Squared(a, b)), float64(L2Squared(b, a)), 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestL2SquaredSelfIsZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float32, 33)
		for i := range a {
			a[i] = rng.Float32()
		}
		return L2Squared(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The polarization identity ties Dot and L2Squared together:
// ||a-b||^2 = ||a||^2 + ||b||^2 - 2<a,b>.
func TestPolarizationIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := rng.Intn(64) + 1
		a := make([]float32, dim)
		b := make([]float32, dim)
		for i := range a {
			a[i] = rng.Float32()*2 - 1
			b[i] = rng.Float32()*2 - 1
		}
		lhs := float64(L2Squared(a, b))
		rhs := float64(Dot(a, a)) + float64(Dot(b, b)) - 2*float64(Dot(a, b))
		return almostEqual(lhs, rhs, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	a := []float32{3, 4}
	n := Normalize(a)
	if n != 5 {
		t.Fatalf("Normalize returned %v, want 5", n)
	}
	if !almostEqual(float64(Norm(a)), 1, 1e-6) {
		t.Fatalf("norm after Normalize = %v, want 1", Norm(a))
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	a := []float32{0, 0, 0}
	if n := Normalize(a); n != 0 {
		t.Fatalf("Normalize(zero) = %v, want 0", n)
	}
	for _, v := range a {
		if v != 0 {
			t.Fatal("zero vector was modified")
		}
	}
}

func TestCosineBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float32, 16)
		b := make([]float32, 16)
		for i := range a {
			a[i] = rng.Float32()*2 - 1
			b[i] = rng.Float32()*2 - 1
		}
		c := float64(Cosine(a, b))
		return c >= -1-1e-5 && c <= 1+1e-5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCosineZero(t *testing.T) {
	if got := Cosine([]float32{0, 0}, []float32{1, 1}); got != 0 {
		t.Fatalf("Cosine with zero vector = %v, want 0", got)
	}
}

func TestAddScaleAxpy(t *testing.T) {
	a := []float32{1, 2}
	Add(a, []float32{3, 4})
	if a[0] != 4 || a[1] != 6 {
		t.Fatalf("Add result %v", a)
	}
	Scale(a, 0.5)
	if a[0] != 2 || a[1] != 3 {
		t.Fatalf("Scale result %v", a)
	}
	Axpy(a, 2, []float32{1, 1})
	if a[0] != 4 || a[1] != 5 {
		t.Fatalf("Axpy result %v", a)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Len() != 3 || m.Dim != 4 {
		t.Fatalf("shape %dx%d", m.Len(), m.Dim)
	}
	copy(m.Row(1), []float32{1, 2, 3, 4})
	if m.Row(1)[2] != 3 {
		t.Fatal("Row write/read failed")
	}
	if m.Row(0)[0] != 0 || m.Row(2)[3] != 0 {
		t.Fatal("neighboring rows disturbed")
	}
	if m.Bytes() != 3*4*4 {
		t.Fatalf("Bytes = %d", m.Bytes())
	}
}

func TestMatrixAppendRow(t *testing.T) {
	m := NewMatrix(0, 2)
	m.AppendRow([]float32{1, 2})
	m.AppendRow([]float32{3, 4})
	if m.Len() != 2 || m.Row(1)[1] != 4 {
		t.Fatalf("AppendRow failed: len=%d", m.Len())
	}
}

func TestMatrixFromRows(t *testing.T) {
	m := MatrixFromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if m.Len() != 3 || m.Row(2)[0] != 5 {
		t.Fatal("MatrixFromRows mismatch")
	}
}

func TestArgMinL2(t *testing.T) {
	m := MatrixFromRows([][]float32{{0, 0}, {5, 5}, {1, 1}})
	idx, d := m.ArgMinL2([]float32{1.1, 1.1})
	if idx != 2 {
		t.Fatalf("ArgMinL2 idx = %d, want 2 (dist %v)", idx, d)
	}
}

func TestTopKOrdering(t *testing.T) {
	tk := NewTopK(3)
	for i, s := range []float32{5, 1, 4, 2, 3} {
		tk.Push(int64(i), s)
	}
	res := tk.Results()
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	want := []float32{1, 2, 3}
	for i, n := range res {
		if n.Score != want[i] {
			t.Fatalf("result[%d].Score = %v, want %v", i, n.Score, want[i])
		}
	}
}

func TestTopKFewerThanK(t *testing.T) {
	tk := NewTopK(10)
	tk.Push(1, 2.0)
	tk.Push(2, 1.0)
	res := tk.Results()
	if len(res) != 2 || res[0].ID != 2 {
		t.Fatalf("partial results wrong: %+v", res)
	}
}

func TestTopKWorstScore(t *testing.T) {
	tk := NewTopK(2)
	if _, ok := tk.WorstScore(); ok {
		t.Fatal("WorstScore should report not-full")
	}
	tk.Push(1, 1)
	tk.Push(2, 9)
	if w, ok := tk.WorstScore(); !ok || w != 9 {
		t.Fatalf("WorstScore = %v,%v", w, ok)
	}
	tk.Push(3, 5)
	if w, _ := tk.WorstScore(); w != 5 {
		t.Fatalf("WorstScore after replace = %v", w)
	}
}

// Property: TopK selects exactly the k smallest scores of any input stream.
func TestTopKMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		k := rng.Intn(20) + 1
		scores := make([]float32, n)
		tk := NewTopK(k)
		for i := range scores {
			scores[i] = rng.Float32()
			tk.Push(int64(i), scores[i])
		}
		sorted := append([]float32(nil), scores...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		res := tk.Results()
		want := k
		if n < k {
			want = n
		}
		if len(res) != want {
			return false
		}
		for i, r := range res {
			if r.Score != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDot768(b *testing.B) {
	x := make([]float32, 768)
	y := make([]float32, 768)
	for i := range x {
		x[i] = float32(i)
		y[i] = float32(768 - i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkL2Squared768(b *testing.B) {
	x := make([]float32, 768)
	y := make([]float32, 768)
	for i := range x {
		x[i] = float32(i)
		y[i] = float32(768 - i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = L2Squared(x, y)
	}
}
