package lint

import (
	"go/ast"
)

// WallClock flags wall-clock reads inside the analytical-model packages.
// Those packages compute the paper's modeled latency/energy numbers, where
// every duration must come from the model's own simulated timeline; a stray
// time.Now() silently couples a "modeled" result to host machine speed.
// Measured-mode code in these packages that genuinely wants wall time must
// go through an injectable clock seam (e.g. `var now = time.Now`), which
// also makes it stubbable in tests.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "wall-clock reads in analytical-model packages couple modeled results to host speed; inject a clock",
	Run:  runWallClock,
}

// wallClockScope names the analytical-model packages (by package name).
var wallClockScope = map[string]bool{
	"hwmodel":     true,
	"scaling":     true,
	"multinode":   true,
	"experiments": true,
}

// wallClockFuncs are the time package members that read the wall clock.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runWallClock(p *Pass) {
	if p.Pkg == nil || !wallClockScope[p.Pkg.Name()] {
		return
	}
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn, ok := pkgNameOf(p.Info, sel.X)
			if !ok || pn.Imported().Path() != "time" {
				return true
			}
			if !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			p.Reportf(call.Pos(), "time.%s in analytical-model package %q; simulated time must come from the model — route wall-clock reads through an injectable clock (var now = time.Now)", sel.Sel.Name, p.Pkg.Name())
			return true
		})
	}
}
