package telemetry

import (
	"fmt"
	"io"
	"time"
)

// QueryCost is one query's resource-attribution ledger entry (ISSUE 9): the
// concrete work the serving plane did on its behalf, in units that survive
// aggregation. Codes scanned are split into the exclusive part (streamed
// solely for this query) and the shared-amortized part (the query's exact
// share of cell streams it co-probed with other queries of its batch), so
// summing the entries of a batch reproduces the batch's distinct code traffic
// with nothing double-counted. ScanNanos carries the query's share of the
// measured scan wall time when the execution was traced, and stays zero on
// the untraced path, which never reads a clock. WireBytes is the query's
// share of the coordinator<->node wire traffic that served it.
type QueryCost struct {
	Cells          int64 `json:"cells"`
	SharedCells    int64 `json:"shared_cells"`
	CodesExclusive int64 `json:"codes_exclusive"`
	CodesAmortized int64 `json:"codes_amortized"`
	ScanNanos      int64 `json:"scan_nanos"`
	WireBytes      int64 `json:"wire_bytes"`
}

// Add accumulates o into c (per-shard and per-phase contributions fold into
// one query-level entry).
func (c *QueryCost) Add(o QueryCost) {
	c.Cells += o.Cells
	c.SharedCells += o.SharedCells
	c.CodesExclusive += o.CodesExclusive
	c.CodesAmortized += o.CodesAmortized
	c.ScanNanos += o.ScanNanos
	c.WireBytes += o.WireBytes
}

// Codes is the total codes attributed to the query, exclusive plus amortized.
func (c QueryCost) Codes() int64 { return c.CodesExclusive + c.CodesAmortized }

// SharedFrac is the fraction of the query's attributed codes that came out of
// shared (amortized) streams — 0 for a query that shared nothing, and 0 when
// no codes were scanned at all.
func (c QueryCost) SharedFrac() float64 {
	t := c.Codes()
	if t == 0 {
		return 0
	}
	return float64(c.CodesAmortized) / float64(t)
}

// IsZero reports whether no cost was recorded (the ledger was not populated —
// e.g. a record predating cost accounting, or a degraded old-node response).
func (c QueryCost) IsZero() bool { return c == QueryCost{} }

// String renders the ledger entry compactly for tables and record listings.
func (c QueryCost) String() string {
	return fmt.Sprintf("cells=%d(shared %d) codes=%d(excl %d, amort %d) scan=%v wire=%dB",
		c.Cells, c.SharedCells, c.Codes(), c.CodesExclusive, c.CodesAmortized,
		time.Duration(c.ScanNanos), c.WireBytes)
}

// AttributeTotal splits total across len(weights) parts in proportion to the
// weights, guaranteeing the parts sum to total exactly (no rounding loss):
// each part is the difference of consecutive rounded-down cumulative targets,
// so remainders land deterministically on the earliest heavy parts. When all
// weights are zero the split is even. Used to attribute batch-level measured
// totals — scan nanoseconds, wire bytes — back to member queries.
func AttributeTotal(total int64, weights []int64) []int64 {
	n := len(weights)
	if n == 0 {
		return nil
	}
	parts := make([]int64, n)
	var totalW int64
	for _, w := range weights {
		totalW += w
	}
	if totalW == 0 {
		for i := range parts {
			// Even split with the same exact-sum construction.
			parts[i] = total*int64(i+1)/int64(n) - total*int64(i)/int64(n)
		}
		return parts
	}
	var acc, given int64
	for i, w := range weights {
		acc += w
		target := total * acc / totalW
		parts[i] = target - given
		given = target
	}
	return parts
}

// WriteBatchAttribution renders a grouped batch's per-query amortization
// breakdown as an aligned table: one row per member query plus a totals row,
// in the order given. The totals row is the exact column sums, which by the
// ledger's construction equal the batch's measured totals. Shared by the
// /debug/queries?batch= view and hermes-loadtest's -trace report.
func WriteBatchAttribution(w io.Writer, members []QueryRecord) {
	fmt.Fprintf(w, "  %-18s %8s %8s %12s %12s %12s %10s %10s\n",
		"query", "cells", "shared", "codes_excl", "codes_amort", "codes", "scan", "wire")
	var total QueryCost
	for _, qr := range members {
		c := qr.Cost
		total.Add(c)
		fmt.Fprintf(w, "  %016x   %8d %8d %12d %12d %12d %10v %9dB\n",
			qr.TraceID, c.Cells, c.SharedCells, c.CodesExclusive, c.CodesAmortized,
			c.Codes(), time.Duration(c.ScanNanos), c.WireBytes)
	}
	fmt.Fprintf(w, "  %-18s %8d %8d %12d %12d %12d %10v %9dB\n",
		"total", total.Cells, total.SharedCells, total.CodesExclusive, total.CodesAmortized,
		total.Codes(), time.Duration(total.ScanNanos), total.WireBytes)
}
