// Package indexfile defines the on-disk layout shared by the hermes-build,
// hermes-search, and hermes-node commands: an index directory containing
// meta.json plus one gob-encoded IVF index per shard.
package indexfile

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/corpus"
	"repro/internal/ivf"
)

// Meta is the index directory manifest.
type Meta struct {
	// Type is "hermes", "split", or "monolithic".
	Type string
	// Dim is the embedding dimensionality.
	Dim int
	// Shards is the shard-file count.
	Shards int
	// Embedding records how chunk vectors were produced: "topic" (the
	// corpus' latent Gaussian embeddings, default) or "text" (hash
	// embeddings of the chunk text, searchable with free-text queries).
	Embedding string
	// EmbedDim is the embedding dimensionality for "text" indexes (may
	// differ from the corpus' latent Dim).
	EmbedDim int
	// Corpus is the generation spec, kept so queries and chunk text can be
	// regenerated deterministically at serving time.
	Corpus corpus.Spec
}

// ShardFile names shard i's index file.
func ShardFile(i int) string { return fmt.Sprintf("shard-%03d.ivf", i) }

// WriteIndex serializes one IVF index to path.
func WriteIndex(path string, ix *ivf.Index) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Save(f); err != nil {
		//lint:ignore errdrop Save already failed; Close is best-effort cleanup
		f.Close()
		return err
	}
	return f.Close()
}

// ReadIndex loads one IVF index from path.
func ReadIndex(path string) (*ivf.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ivf.ReadFrom(f)
}

// ReadMeta loads the manifest of an index directory.
func ReadMeta(dir string) (*Meta, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, err
	}
	var m Meta
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("indexfile: parse meta.json: %w", err)
	}
	if m.Shards <= 0 || m.Dim <= 0 {
		return nil, fmt.Errorf("indexfile: meta.json has invalid shape (%d shards, dim %d)", m.Shards, m.Dim)
	}
	return &m, nil
}

// ReadAll loads the manifest and every shard index of a directory.
func ReadAll(dir string) (*Meta, []*ivf.Index, error) {
	meta, err := ReadMeta(dir)
	if err != nil {
		return nil, nil, err
	}
	indexes := make([]*ivf.Index, meta.Shards)
	for i := range indexes {
		ix, err := ReadIndex(filepath.Join(dir, ShardFile(i)))
		if err != nil {
			return nil, nil, err
		}
		if ix.Dim() != meta.Dim {
			return nil, nil, fmt.Errorf("indexfile: shard %d dim %d != meta dim %d", i, ix.Dim(), meta.Dim)
		}
		indexes[i] = ix
	}
	return meta, indexes, nil
}
