// Package batcher is the fixture for the chanbound analyzer. The package
// name impersonates a request-path package — chanbound scopes by package
// name (requestPathPkgs), exactly so fixtures can do this.
package batcher

// Q is a request-path queue whose pending slice accumulates across calls.
type Q struct {
	pending []int
	limit   int
}

// Enqueue grows receiver state with no visible bound: the OOM-instead-of-
// shedding failure mode.
func (q *Q) Enqueue(v int) {
	q.pending = append(q.pending, v) // want "no len/cap bound check"
}

// EnqueueBounded checks len against the limit before growing — the
// canonical batcher flush shape, clean.
func (q *Q) EnqueueBounded(v int) bool {
	if len(q.pending) >= q.limit {
		return false
	}
	q.pending = append(q.pending, v)
	return true
}

// EnqueueCap credits cap comparisons too.
func (q *Q) EnqueueCap(v int) {
	if len(q.pending) < cap(q.pending) {
		q.pending = append(q.pending, v)
	}
}

// Build appends only to a local: the value dies with the frame, bounded by
// the call. Clean, including the field of a local struct.
func Build(vs []int) []int {
	var out []int
	scratch := &Q{}
	for _, v := range vs {
		out = append(out, v)
		scratch.pending = append(scratch.pending, v)
	}
	return out
}

// backlog is package-level state: appends to it accumulate for the process
// lifetime.
var backlog []int

// Publish grows the global with no bound.
func Publish(v int) {
	backlog = append(backlog, v) // want "no len/cap bound check"
}

// PublishBounded is the same global behind a visible bound — clean.
func PublishBounded(v int, max int) {
	if len(backlog) >= max {
		return
	}
	backlog = append(backlog, v)
}

// Pipe buffers a channel past the limit: a queue sized to never block is
// the queue that hides overload until memory runs out.
func Pipe() chan int {
	return make(chan int, 1<<16) // want "effectively unbounded"
}

// PipeSized keeps the capacity at the protocol's real in-flight bound.
func PipeSized() chan int {
	return make(chan int, 64)
}

// EnqueueJustified carries the line-above suppression: the invariant that
// bounds the append lives in the directive's reason.
func (q *Q) EnqueueJustified(v int) {
	//lint:ignore chanbound fixture: the caller drains synchronously after every call
	q.pending = append(q.pending, v)
}
