package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestQuantileBracketsTrueQuantile is the histogram's accuracy contract:
// for any sample set and any q, the estimate and the true sample quantile
// lie in the same bucket, so the bucket bounds bracket both. Run over many
// seeded random distributions shaped like real latency data.
func TestQuantileBracketsTrueQuantile(t *testing.T) {
	bounds := DefLatencyBuckets
	maxBound := bounds[len(bounds)-1]
	quantiles := []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(2000)
		samples := make([]float64, n)
		h := newHistogram(bounds)
		for i := range samples {
			// Log-uniform across the bucket range: every decade of the
			// latency scale gets traffic.
			v := math.Exp(rng.Float64()*math.Log(maxBound/bounds[0])) * bounds[0]
			if v > maxBound {
				v = maxBound
			}
			samples[i] = v
			h.Observe(v)
		}
		sort.Float64s(samples)
		for _, q := range quantiles {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			trueQ := samples[rank-1]
			bi := sort.SearchFloat64s(bounds, trueQ)
			lo := 0.0
			if bi > 0 {
				lo = bounds[bi-1]
			}
			hi := bounds[bi]
			est := h.Quantile(q)
			if est < lo || est > hi {
				t.Errorf("seed %d n %d q %.2f: estimate %v outside bucket [%v,%v] of true quantile %v",
					seed, n, q, est, lo, hi, trueQ)
			}
		}
	}
}

func TestQuantileOverflowClampsToLargestBound(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("overflow-only quantile = %v, want largest finite bound 2", got)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(1.5)
	got := h.Quantile(0.5)
	if got <= 1 || got > 2 {
		t.Errorf("single-sample quantile = %v, want in (1,2]", got)
	}
}

// TestTimerUsesClockSeam freezes the package clock and steps it between the
// timer's start and stop reads, proving no real wall-clock dependency.
func TestTimerUsesClockSeam(t *testing.T) {
	orig := now
	defer func() { now = orig }()
	base := time.Unix(1000, 0)
	calls := 0
	now = func() time.Time {
		calls++
		return base.Add(time.Duration(calls-1) * 250 * time.Millisecond)
	}
	h := newHistogram(DefLatencyBuckets)
	stop := h.Timer()
	stop()
	if h.Count() != 1 {
		t.Fatalf("timer recorded %d observations, want 1", h.Count())
	}
	if got := h.Sum(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("timer observed %v s, want 0.25", got)
	}
	h.ObserveDuration(500 * time.Millisecond)
	if got := h.Sum(); math.Abs(got-0.75) > 1e-9 {
		t.Errorf("sum after ObserveDuration = %v, want 0.75", got)
	}
}
