package evlog

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"
)

// ServeEvents is the /debug/events handler: retained events newest-first as
// text, or as JSON with ?format=json. Safe to mount on a nil *Log (reports
// the log as disabled) so CLIs can register it unconditionally.
func (l *Log) ServeEvents(w http.ResponseWriter, r *http.Request) {
	if l == nil {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "event log disabled")
		return
	}
	events := l.Events()
	stats := l.Stats()
	if r.URL.Query().Get("format") == "json" {
		type jsonEvent struct {
			Seq    uint64         `json:"seq"`
			Time   string         `json:"time"`
			Level  string         `json:"level"`
			Name   string         `json:"name"`
			Fields map[string]any `json:"fields,omitempty"`
		}
		out := struct {
			Emitted uint64      `json:"emitted"`
			Dropped uint64      `json:"dropped"`
			Events  []jsonEvent `json:"events"`
		}{Emitted: stats.Emitted, Dropped: stats.Dropped, Events: make([]jsonEvent, 0, len(events))}
		for _, e := range events {
			je := jsonEvent{
				Seq:   e.Seq,
				Time:  e.Time.UTC().Format(time.RFC3339Nano),
				Level: e.Level.String(),
				Name:  e.Name,
			}
			if e.N > 0 {
				je.Fields = make(map[string]any, e.N)
				for i := 0; i < e.N; i++ {
					f := e.Fields[i]
					switch f.Kind {
					case kindInt:
						je.Fields[f.Key] = f.Num
					case kindDur:
						je.Fields[f.Key] = time.Duration(f.Num).String()
					case kindFloat:
						je.Fields[f.Key] = math.Float64frombits(uint64(f.Num))
					default:
						je.Fields[f.Key] = f.Str
					}
				}
			}
			out.Events = append(out.Events, je)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// The connection is the only sink for an encode error here.
		_ = enc.Encode(out)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "events: %d emitted, %d rate-limited (newest first)\n\n", stats.Emitted, stats.Dropped)
	for _, e := range events {
		fmt.Fprintln(w, e.String())
	}
}
