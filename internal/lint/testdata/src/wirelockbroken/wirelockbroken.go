// Package wirelockbroken is the fixture for the wirelock analyzer's failure
// modes: its wire.lock records the pre-refactor schema, so every diff class
// fires — moved fields, a removed field, a rename, a type change, an
// unrecorded append, a vanished struct, and a new unrecorded struct.
package wirelockbroken // want "wire struct repro/internal/lint/testdata/src/wirelockbroken.Vanished is recorded in wire.lock but no longer part of the wire schema"

// Request swapped its first two fields and dropped Gone.
//
//hermes:wire
type Request struct { // want "field Gone (locked position 3) was removed"
	B uint64 // want "field B moved from locked position 2 to 1"
	A uint64 // want "field A moved from locked position 1 to 2"
}

// Ack widened Code from uint16.
//
//hermes:wire
type Ack struct {
	Code uint32 // want "changed type from uint16 to uint32"
}

// Extra appended New without regenerating the lock.
//
//hermes:wire
type Extra struct {
	Old uint8
	New uint8 // want "appended field(s) not yet recorded"
}

// Span renamed Name to Label.
//
//hermes:wire
type Span struct {
	Label string // want "locked field Name (position 1) was renamed or removed"
}

// Fresh is newly annotated and absent from the lock.
//
//hermes:wire
type Fresh struct { // want "is not recorded in wire.lock; run hermes-lint -update-wirelock"
	X uint8
}
