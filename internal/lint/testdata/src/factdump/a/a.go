// Package a is the entry half of the factdump fixture: one function per
// lattice, plus a lock-order edge, all pinned byte-for-byte by
// testdata/factdump.golden.json.
package a

import (
	"context"
	"net"
	"sync"

	b "repro/internal/lint/testdata/src/factdump/b"
)

// mu is a package-level mutex: identity "pkgpath.mu".
var mu sync.Mutex

// S carries a field mutex: identity "pkgpath.S.mu".
type S struct {
	mu sync.Mutex
	n  int
}

// Log reaches I/O through the cross-package call to b.Tee.
func Log(msg string) {
	b.Tee(msg)
}

// hello performs I/O; it is only ever invoked through a function value.
func hello() {
	b.Tee("hi\n")
}

// Indirect passes hello to b.Invoke. The call edge Invoke -> hello exists
// only at runtime, so Indirect carries no io fact in the dump.
func Indirect() {
	b.Invoke(hello)
}

// Grow allocates on its straight-line path.
func Grow(n int) []int {
	return make([]int, n)
}

// WaitDone blocks on a channel receive.
func WaitDone(ch chan struct{}) {
	<-ch
}

// Ping blocks on the network: a netio seed (net.Dial matches the
// netBlockingPrefixes filter) that propagates to synchronous callers.
func Ping(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return c.Close()
}

// Relay inherits netio from Ping through the synchronous call, and cancel
// from consuming its context parameter.
func Relay(ctx context.Context, addr string) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return Ping(addr)
}

// Bump acquires S.mu then mu: one acquires set with both identities and
// one lock-order edge S.mu -> mu.
func (s *S) Bump() {
	s.mu.Lock()
	mu.Lock()
	s.n++
	mu.Unlock()
	s.mu.Unlock()
}
