package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// MetricName enforces the module's metric naming convention at every
// registry constructor call: Counter/Gauge/Histogram names must read
//
//	hermes_<subsystem>_<name>_{total,seconds,bytes,ratio}
//
// i.e. a hermes_ prefix, at least one subsystem token, at least one name
// token, and a trailing unit/kind suffix, all lowercase [a-z0-9] tokens.
// The convention is what makes the federated /metrics/cluster page and the
// SLO exports greppable: a dashboard query can rely on _total meaning a
// monotone counter and _seconds meaning a latency histogram without a
// per-metric lookup table. Deliberate exceptions (e.g. unitless level
// gauges) take a //lint:ignore metricname line with the justification.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "telemetry registry metric names must follow hermes_<subsystem>_<name>_{total,seconds,bytes,ratio}",
	Run:  runMetricName,
}

// metricUnitSuffixes are the admitted trailing tokens and what each claims.
var metricUnitSuffixes = map[string]bool{
	"total":   true, // monotone counter
	"seconds": true, // duration histogram/gauge in base seconds
	"bytes":   true, // size counter/histogram in bytes
	"ratio":   true, // dimensionless 0..1 (or load factor) gauge
}

// registryCtors are the telemetry.Registry constructor methods whose first
// argument is a metric name.
var registryCtors = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

func runMetricName(p *Pass) {
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !registryCtors[sel.Sel.Name] {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || recvTypeName(fn) != "Registry" {
				return true
			}
			// Only constant names are checkable; a name built at runtime
			// (none exist in the module today) is the caller's problem.
			tv, ok := p.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			name := constant.StringVal(tv.Value)
			if problem := metricNameProblem(name); problem != "" {
				p.Reportf(call.Args[0].Pos(), "metric name %q %s; want hermes_<subsystem>_<name>_{total,seconds,bytes,ratio}", name, problem)
			}
			return true
		})
	}
}

// metricNameProblem returns "" for a conforming name, else a short clause
// describing the first violated rule.
func metricNameProblem(name string) string {
	tokens := strings.Split(name, "_")
	for _, tok := range tokens {
		if tok == "" {
			return "has an empty token (leading, trailing, or doubled underscore)"
		}
		for _, r := range tok {
			if (r < 'a' || r > 'z') && (r < '0' || r > '9') {
				return "has a token with characters outside [a-z0-9]"
			}
		}
	}
	if tokens[0] != "hermes" {
		return "does not start with hermes_"
	}
	if len(tokens) < 4 {
		return "is too short: need subsystem, name, and unit tokens after hermes_"
	}
	if !metricUnitSuffixes[tokens[len(tokens)-1]] {
		return "does not end in a unit/kind suffix"
	}
	return ""
}
