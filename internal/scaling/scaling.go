// Package scaling calibrates the relationship between datastore size and
// retrieval cost by measuring real in-process IVF indexes across a size
// sweep and fitting a linear model, then extrapolating to sizes that cannot
// be instantiated (the paper does exactly this for its trillion-token
// points: Figure 6 marks 1T latencies as extrapolated, and Figure 7's claim
// that latency/energy/memory scale linearly with datastore size is what the
// fit verifies).
package scaling

import (
	"fmt"
	"time"

	"repro/internal/ivf"
	"repro/internal/quant"
	"repro/internal/vec"
)

// now is the wall-clock seam for the measured sweep. The analytical model
// itself never reads the wall (the wallclock lint check enforces it), and
// tests stub this to make timing deterministic.
var now = time.Now

// Point is one measured or extrapolated observation.
type Point struct {
	Tokens int64
	// LatencyPerQuery is mean single-query search latency.
	LatencyPerQuery time.Duration
	// MemoryBytes is the index footprint.
	MemoryBytes int64
	// VectorsScanned is the mean per-query scan count.
	VectorsScanned float64
	// Measured is true for real runs, false for extrapolations.
	Measured bool
}

// LinearFit is y = Slope*x + Intercept obtained by least squares.
type LinearFit struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// Fit performs ordinary least squares on (x, y). It panics on mismatched or
// empty input since callers control the sweep.
func Fit(x, y []float64) LinearFit {
	if len(x) != len(y) || len(x) == 0 {
		panic(fmt.Sprintf("scaling: Fit needs matched non-empty series, got %d/%d", len(x), len(y)))
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	denom := n*sxx - sx*sx
	var slope float64
	if denom != 0 {
		slope = (n*sxy - sx*sy) / denom
	}
	intercept := (sy - slope*sx) / n
	// R^2.
	meanY := sy / n
	var ssTot, ssRes float64
	for i := range x {
		pred := slope*x[i] + intercept
		ssTot += (y[i] - meanY) * (y[i] - meanY)
		ssRes += (y[i] - pred) * (y[i] - pred)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}
}

// At evaluates the fit.
func (f LinearFit) At(x float64) float64 { return f.Slope*x + f.Intercept }

// SweepConfig controls a calibration sweep.
type SweepConfig struct {
	// Dim is the embedding dimensionality.
	Dim int
	// Sizes are vector counts to measure.
	Sizes []int
	// TokensPerChunk converts vector counts to tokens.
	TokensPerChunk int
	// NProbe is the search depth used for the latency measurements.
	NProbe int
	// NList fixes the coarse cell count across the sweep (default 64).
	// Holding nlist constant makes per-query scan work exactly
	// proportional to the datastore size, which is the linear regime the
	// paper measures; letting nlist follow the 4*sqrt(n) build heuristic
	// would make the sweep sublinear by construction.
	NList int
	// Queries is the number of measured queries per size (default 16).
	Queries int
	// Repeats re-measures each size this many times and keeps the fastest
	// run, suppressing scheduler noise (default 3).
	Repeats int
	// Seed drives data generation.
	Seed int64
}

// Model is a calibrated size-to-cost model.
type Model struct {
	// Points are the measured observations.
	Points []Point
	// LatencyFit maps tokens to seconds per query.
	LatencyFit LinearFit
	// MemoryFit maps tokens to bytes.
	MemoryFit LinearFit
}

// Calibrate measures IVF-SQ8 indexes over the sweep and fits linear
// latency/memory models in datastore tokens.
func Calibrate(cfg SweepConfig, gen func(n, dim int, seed int64) *vec.Matrix) (*Model, error) {
	if len(cfg.Sizes) < 2 {
		return nil, fmt.Errorf("scaling: need at least 2 sweep sizes")
	}
	if cfg.TokensPerChunk <= 0 {
		cfg.TokensPerChunk = 64
	}
	if cfg.Queries <= 0 {
		cfg.Queries = 16
	}
	if cfg.NProbe <= 0 {
		cfg.NProbe = 32
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 3
	}
	if cfg.NList <= 0 {
		cfg.NList = 64
	}
	m := &Model{}
	for _, n := range cfg.Sizes {
		data := gen(n, cfg.Dim, cfg.Seed)
		ix, err := ivf.New(ivf.Config{Dim: cfg.Dim, NList: cfg.NList, Quantizer: quant.NewSQ(cfg.Dim, 8), Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		if err := ix.Train(data); err != nil {
			return nil, err
		}
		if err := ix.AddBatch(0, data); err != nil {
			return nil, err
		}
		queries := gen(cfg.Queries, cfg.Dim, cfg.Seed+1)
		var scanned int
		var best time.Duration
		for rep := 0; rep < cfg.Repeats; rep++ {
			scanned = 0
			start := now()
			for i := 0; i < queries.Len(); i++ {
				_, st := ix.SearchWithStats(queries.Row(i), 10, cfg.NProbe)
				scanned += st.VectorsScanned
			}
			if elapsed := now().Sub(start); rep == 0 || elapsed < best {
				best = elapsed
			}
		}
		m.Points = append(m.Points, Point{
			Tokens:          int64(n) * int64(cfg.TokensPerChunk),
			LatencyPerQuery: best / time.Duration(queries.Len()),
			MemoryBytes:     ix.MemoryBytes(),
			VectorsScanned:  float64(scanned) / float64(queries.Len()),
			Measured:        true,
		})
	}
	xs := make([]float64, len(m.Points))
	latencies := make([]float64, len(m.Points))
	mems := make([]float64, len(m.Points))
	for i, p := range m.Points {
		xs[i] = float64(p.Tokens)
		latencies[i] = p.LatencyPerQuery.Seconds()
		mems[i] = float64(p.MemoryBytes)
	}
	m.LatencyFit = Fit(xs, latencies)
	m.MemoryFit = Fit(xs, mems)
	return m, nil
}

// Extrapolate predicts a Point at an arbitrary token count; Measured is
// false and VectorsScanned is left zero.
func (m *Model) Extrapolate(tokens int64) Point {
	latSec := m.LatencyFit.At(float64(tokens))
	if latSec < 0 {
		latSec = 0
	}
	mem := m.MemoryFit.At(float64(tokens))
	if mem < 0 {
		mem = 0
	}
	return Point{
		Tokens:          tokens,
		LatencyPerQuery: time.Duration(latSec * float64(time.Second)),
		MemoryBytes:     int64(mem),
		Measured:        false,
	}
}

// IsLinear reports whether both fits explain the sweep well (R^2 above the
// threshold), i.e. whether the paper's linear-scaling claim holds for the
// measured implementation.
func (m *Model) IsLinear(r2Threshold float64) bool {
	return m.LatencyFit.R2 >= r2Threshold && m.MemoryFit.R2 >= r2Threshold
}

// BytesPerToken returns the marginal index bytes per datastore token, the
// slope behind Figure 7's memory panel (~10 TB per trillion tokens for
// IVF-SQ8 at dim 768).
func (m *Model) BytesPerToken() float64 { return m.MemoryFit.Slope }
