package hermes

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/flatindex"
	"repro/internal/metrics"
	"repro/internal/vec"
)

// testCorpus builds a topical corpus shared by the accuracy tests.
func testCorpus(t testing.TB, chunks, topics int) *corpus.Corpus {
	t.Helper()
	c, err := corpus.Generate(corpus.Spec{
		NumChunks: chunks, Dim: 24, NumTopics: topics, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func buildStore(t testing.TB, data *vec.Matrix, shards int) *Store {
	t.Helper()
	st, err := Build(data, BuildOptions{NumShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func idsOf(ns []vec.Neighbor) []int64 {
	out := make([]int64, len(ns))
	for i, n := range ns {
		out[i] = n.ID
	}
	return out
}

func TestBuildValidation(t *testing.T) {
	data := vec.NewMatrix(10, 4)
	if _, err := Build(data, BuildOptions{NumShards: 0}); err == nil {
		t.Fatal("NumShards=0 should error")
	}
	if _, err := Build(data, BuildOptions{NumShards: 11}); err == nil {
		t.Fatal("NumShards>n should error")
	}
	if _, err := Build(data, BuildOptions{NumShards: 2, QuantBits: 3}); err == nil {
		t.Fatal("QuantBits=3 should error")
	}
}

func TestBuildShardInvariants(t *testing.T) {
	c := testCorpus(t, 2000, 8)
	st := buildStore(t, c.Vectors, 8)
	if st.NumShards() != 8 {
		t.Fatalf("NumShards = %d", st.NumShards())
	}
	total := 0
	for _, s := range st.Sizes() {
		if s == 0 {
			t.Fatal("empty shard")
		}
		total += s
	}
	if total != 2000 {
		t.Fatalf("shard sizes sum to %d", total)
	}
	if len(st.Assign) != 2000 {
		t.Fatalf("Assign len %d", len(st.Assign))
	}
	// Every vector must be findable in its assigned shard's index.
	for i := 0; i < 50; i++ {
		shard := st.Shards[st.Assign[i]]
		res := shard.Index.Search(c.Vectors.Row(i), 1, shard.Index.NList())
		if len(res) == 0 || res[0].ID != int64(i) {
			t.Fatalf("vector %d not its own nearest neighbor in shard %d", i, st.Assign[i])
		}
	}
	if st.Imbalance < 1 {
		t.Fatalf("imbalance %v < 1", st.Imbalance)
	}
}

func TestClusteringGroupsTopics(t *testing.T) {
	// With NumShards == NumTopics on a well-separated corpus, shards
	// should align with topics: chunks of one topic land in one shard.
	c := testCorpus(t, 1500, 6)
	st := buildStore(t, c.Vectors, 6)
	// Purity: the fraction of each topic's chunks living in that topic's
	// majority shard. k-means may occasionally split one topic and merge
	// two others (it optimizes inertia, not topic labels), so require
	// high average purity rather than perfection.
	counts := map[int]map[int]int{}
	topicTotal := map[int]int{}
	for i, tp := range c.Topics {
		if counts[tp] == nil {
			counts[tp] = map[int]int{}
		}
		counts[tp][st.Assign[i]]++
		topicTotal[tp]++
	}
	var puritySum float64
	for tp, shardCounts := range counts {
		best := 0
		for _, n := range shardCounts {
			if n > best {
				best = n
			}
		}
		puritySum += float64(best) / float64(topicTotal[tp])
	}
	if purity := puritySum / float64(len(counts)); purity < 0.85 {
		t.Fatalf("mean topic purity %v, want >= 0.85", purity)
	}
}

func TestHermesSearchMatchesGroundTruthTopic(t *testing.T) {
	c := testCorpus(t, 2000, 10)
	st := buildStore(t, c.Vectors, 10)
	qs := c.Queries(30, 7)
	ref := flatindex.New(24)
	ref.AddBatch(0, c.Vectors)
	truth := ref.GroundTruth(qs.Vectors, 5)

	var ndcgSum float64
	for i := 0; i < qs.Vectors.Len(); i++ {
		res, stats := st.Search(qs.Vectors.Row(i), DefaultParams())
		if len(res) != 5 {
			t.Fatalf("query %d returned %d results", i, len(res))
		}
		if stats.SampledShards != 10 {
			t.Fatalf("sample phase touched %d shards, want 10", stats.SampledShards)
		}
		if len(stats.DeepShards) != 3 {
			t.Fatalf("deep phase used %d shards, want 3", len(stats.DeepShards))
		}
		ndcgSum += metrics.NDCGAtK(idsOf(res), truth[i], 5)
	}
	if ndcg := ndcgSum / 30; ndcg < 0.95 {
		t.Fatalf("Hermes NDCG = %v, want >= 0.95 (iso-accuracy claim)", ndcg)
	}
}

// The Figure 11 ordering: Hermes (document sampling) >= centroid routing >=
// naive split at a small number of deep clusters; searching all shards is an
// upper bound.
func TestFig11StrategyOrdering(t *testing.T) {
	c := testCorpus(t, 3000, 10)
	clustered := buildStore(t, c.Vectors, 10)
	naive, err := BuildNaiveSplit(c.Vectors, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	qs := c.Queries(40, 11)
	ref := flatindex.New(24)
	ref.AddBatch(0, c.Vectors)
	truth := ref.GroundTruth(qs.Vectors, 5)

	p := DefaultParams()
	p.DeepClusters = 2

	meanNDCG := func(search func(q []float32) []vec.Neighbor) float64 {
		var sum float64
		for i := 0; i < qs.Vectors.Len(); i++ {
			sum += metrics.NDCGAtK(idsOf(search(qs.Vectors.Row(i))), truth[i], 5)
		}
		return sum / float64(qs.Vectors.Len())
	}

	hermesNDCG := meanNDCG(func(q []float32) []vec.Neighbor {
		r, _ := clustered.Search(q, p)
		return r
	})
	centroidNDCG := meanNDCG(func(q []float32) []vec.Neighbor {
		r, _ := clustered.SearchCentroid(q, p)
		return r
	})
	splitNDCG := meanNDCG(func(q []float32) []vec.Neighbor {
		r, _ := naive.SearchFirstN(q, p, p.DeepClusters)
		return r
	})
	allNDCG := meanNDCG(func(q []float32) []vec.Neighbor {
		r, _ := clustered.SearchAll(q, p)
		return r
	})

	if hermesNDCG < centroidNDCG-0.02 {
		t.Fatalf("Hermes %v should be >= centroid routing %v", hermesNDCG, centroidNDCG)
	}
	if hermesNDCG <= splitNDCG {
		t.Fatalf("Hermes %v should beat naive split %v at 2 deep clusters", hermesNDCG, splitNDCG)
	}
	if allNDCG < hermesNDCG-0.02 {
		t.Fatalf("search-all %v should upper-bound Hermes %v", allNDCG, hermesNDCG)
	}
	// Naive split at few deep clusters must clearly lose accuracy (its
	// neighbors are scattered uniformly over shards).
	if splitNDCG > 0.9 {
		t.Fatalf("naive split NDCG %v implausibly high at 2/10 shards", splitNDCG)
	}
}

func TestDeepClustersMonotoneNDCG(t *testing.T) {
	c := testCorpus(t, 2000, 10)
	st := buildStore(t, c.Vectors, 10)
	qs := c.Queries(25, 13)
	ref := flatindex.New(24)
	ref.AddBatch(0, c.Vectors)
	truth := ref.GroundTruth(qs.Vectors, 5)

	prev := -1.0
	for _, deep := range []int{1, 3, 10} {
		p := DefaultParams()
		p.DeepClusters = deep
		var sum float64
		for i := 0; i < qs.Vectors.Len(); i++ {
			res, _ := st.Search(qs.Vectors.Row(i), p)
			sum += metrics.NDCGAtK(idsOf(res), truth[i], 5)
		}
		ndcg := sum / float64(qs.Vectors.Len())
		if ndcg < prev-0.03 {
			t.Fatalf("NDCG fell from %v to %v as deep clusters grew to %d", prev, ndcg, deep)
		}
		prev = ndcg
	}
}

func TestHermesScansFewerVectorsThanSearchAll(t *testing.T) {
	c := testCorpus(t, 2000, 10)
	st := buildStore(t, c.Vectors, 10)
	q := c.Queries(1, 17).Vectors.Row(0)
	_, hermesStats := st.Search(q, DefaultParams())
	_, allStats := st.SearchAll(q, DefaultParams())
	hermesWork := hermesStats.SampleScanned + hermesStats.DeepScanned
	if hermesWork >= allStats.DeepScanned {
		t.Fatalf("Hermes scanned %d, search-all %d; Hermes should do less work", hermesWork, allStats.DeepScanned)
	}
}

func TestDeepShardsRankedAndDistinct(t *testing.T) {
	c := testCorpus(t, 1000, 5)
	st := buildStore(t, c.Vectors, 5)
	q := c.Queries(1, 19).Vectors.Row(0)
	p := DefaultParams()
	p.DeepClusters = 3
	_, stats := st.Search(q, p)
	seen := map[int]bool{}
	for _, s := range stats.DeepShards {
		if seen[s] {
			t.Fatalf("shard %d deep-searched twice", s)
		}
		seen[s] = true
		if s < 0 || s >= 5 {
			t.Fatalf("shard index %d out of range", s)
		}
	}
}

func TestDeepClustersClampedToShardCount(t *testing.T) {
	c := testCorpus(t, 500, 4)
	st := buildStore(t, c.Vectors, 4)
	p := DefaultParams()
	p.DeepClusters = 100
	res, stats := st.Search(c.Queries(1, 23).Vectors.Row(0), p)
	if len(stats.DeepShards) != 4 {
		t.Fatalf("deep shards = %d, want clamp to 4", len(stats.DeepShards))
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
}

func TestNaiveSplitInvariants(t *testing.T) {
	c := testCorpus(t, 1000, 5)
	st, err := BuildNaiveSplit(c.Vectors, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	sizes := st.Sizes()
	for _, s := range sizes {
		if s != 100 {
			t.Fatalf("naive split shard size %d, want 100", s)
		}
	}
	if st.Imbalance != 1 {
		t.Fatalf("naive split imbalance %v, want 1", st.Imbalance)
	}
	if _, err := BuildNaiveSplit(c.Vectors, 0, 8); err == nil {
		t.Fatal("0 shards should error")
	}
}

func TestMonolithicBaseline(t *testing.T) {
	c := testCorpus(t, 1500, 6)
	mono, err := BuildMonolithic(c.Vectors, 8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mono.Len() != 1500 {
		t.Fatalf("monolithic len %d", mono.Len())
	}
	qs := c.Queries(20, 29)
	ref := flatindex.New(24)
	ref.AddBatch(0, c.Vectors)
	truth := ref.GroundTruth(qs.Vectors, 5)
	var sum float64
	for i := 0; i < qs.Vectors.Len(); i++ {
		res := mono.Search(qs.Vectors.Row(i), 5, 128)
		sum += metrics.NDCGAtK(idsOf(res), truth[i], 5)
	}
	if ndcg := sum / 20; ndcg < 0.95 {
		t.Fatalf("monolithic NDCG = %v", ndcg)
	}
}

// Iso-accuracy: Hermes at 3 deep clusters must match the monolithic index's
// NDCG (the paper's central accuracy claim).
func TestHermesIsoAccuracyWithMonolithic(t *testing.T) {
	c := testCorpus(t, 2500, 10)
	st := buildStore(t, c.Vectors, 10)
	mono, err := BuildMonolithic(c.Vectors, 8, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	qs := c.Queries(40, 31)
	ref := flatindex.New(24)
	ref.AddBatch(0, c.Vectors)
	truth := ref.GroundTruth(qs.Vectors, 5)

	var hermesSum, monoSum float64
	for i := 0; i < qs.Vectors.Len(); i++ {
		hres, _ := st.Search(qs.Vectors.Row(i), DefaultParams())
		hermesSum += metrics.NDCGAtK(idsOf(hres), truth[i], 5)
		mres := mono.Search(qs.Vectors.Row(i), 5, 128)
		monoSum += metrics.NDCGAtK(idsOf(mres), truth[i], 5)
	}
	hermesNDCG, monoNDCG := hermesSum/40, monoSum/40
	if hermesNDCG < monoNDCG-0.03 {
		t.Fatalf("Hermes NDCG %v below monolithic %v; iso-accuracy violated", hermesNDCG, monoNDCG)
	}
}

func TestAdaptivePruningReducesWork(t *testing.T) {
	c := testCorpus(t, 2000, 10)
	st := buildStore(t, c.Vectors, 10)
	qs := c.Queries(40, 37)
	ref := flatindex.New(24)
	ref.AddBatch(0, c.Vectors)
	truth := ref.GroundTruth(qs.Vectors, 5)

	base := DefaultParams()
	pruned := DefaultParams()
	pruned.PruneEps = 0.25

	var baseDeep, prunedDeep int
	var baseNDCG, prunedNDCG float64
	for i := 0; i < qs.Vectors.Len(); i++ {
		q := qs.Vectors.Row(i)
		bres, bstats := st.Search(q, base)
		baseDeep += len(bstats.DeepShards)
		baseNDCG += metrics.NDCGAtK(idsOf(bres), truth[i], 5)
		pres, pstats := st.Search(q, pruned)
		prunedDeep += len(pstats.DeepShards)
		prunedNDCG += metrics.NDCGAtK(idsOf(pres), truth[i], 5)
		if len(pstats.DeepShards) > len(bstats.DeepShards) {
			t.Fatal("pruning must never deep-search more shards than the budget")
		}
		if len(pstats.DeepShards) < 1 {
			t.Fatal("pruning must keep at least the best shard")
		}
	}
	if prunedDeep >= baseDeep {
		t.Fatalf("pruning did not reduce deep searches: %d vs %d", prunedDeep, baseDeep)
	}
	// Topical queries have one clearly-best shard, so accuracy should stay
	// within a small margin.
	n := float64(qs.Vectors.Len())
	if prunedNDCG/n < baseNDCG/n-0.05 {
		t.Fatalf("pruned NDCG %v fell too far below base %v", prunedNDCG/n, baseNDCG/n)
	}
}

func TestPruneEpsZeroIsNoOp(t *testing.T) {
	c := testCorpus(t, 800, 5)
	st := buildStore(t, c.Vectors, 5)
	q := c.Queries(1, 41).Vectors.Row(0)
	p := DefaultParams()
	a, aStats := st.Search(q, p)
	p.PruneEps = 0
	b, bStats := st.Search(q, p)
	if len(aStats.DeepShards) != len(bStats.DeepShards) {
		t.Fatal("PruneEps=0 must not change deep shard count")
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("PruneEps=0 must not change results")
		}
	}
}

func TestStoreMemoryAccounting(t *testing.T) {
	c := testCorpus(t, 800, 4)
	st := buildStore(t, c.Vectors, 4)
	var manual int64
	for _, s := range st.Shards {
		manual += s.Index.MemoryBytes()
	}
	if st.MemoryBytes() != manual {
		t.Fatalf("MemoryBytes %d != sum %d", st.MemoryBytes(), manual)
	}
}

func TestSearchBatchMatchesSingle(t *testing.T) {
	c := testCorpus(t, 1000, 5)
	st := buildStore(t, c.Vectors, 5)
	qs := c.Queries(16, 97)
	batch := st.SearchBatch(qs.Vectors, DefaultParams())
	if len(batch) != 16 {
		t.Fatalf("batch len %d", len(batch))
	}
	for i := 0; i < qs.Vectors.Len(); i++ {
		single, stats := st.Search(qs.Vectors.Row(i), DefaultParams())
		if len(single) != len(batch[i].Neighbors) {
			t.Fatalf("query %d lengths differ", i)
		}
		for j := range single {
			if single[j].ID != batch[i].Neighbors[j].ID {
				t.Fatalf("query %d pos %d differs", i, j)
			}
		}
		if stats.SampledShards != batch[i].Stats.SampledShards {
			t.Fatalf("query %d stats differ", i)
		}
	}
}
