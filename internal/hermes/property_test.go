package hermes

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
)

// Property suite for the hierarchical search: invariants that must hold for
// any corpus, shard count, and parameter setting.

func TestHierarchicalSearchInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shards := rng.Intn(6) + 2
		chunks := rng.Intn(600) + 50*shards
		c, err := corpus.Generate(corpus.Spec{
			NumChunks: chunks, Dim: rng.Intn(12) + 4, NumTopics: shards, Seed: seed,
		})
		if err != nil {
			return false
		}
		st, err := Build(c.Vectors, BuildOptions{NumShards: shards, Seeds: []int64{seed, seed + 1}})
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		p := Params{
			K:            rng.Intn(8) + 1,
			SampleNProbe: rng.Intn(8) + 1,
			DeepNProbe:   rng.Intn(64) + 1,
			DeepClusters: rng.Intn(shards+2) + 1, // may exceed shard count
		}
		q := c.Queries(1, seed+7).Vectors.Row(0)
		res, stats := st.Search(q, p)

		// 1. Result count bounded by K.
		if len(res) > p.K {
			return false
		}
		// 2. Scores ascending, IDs unique and in range.
		seen := map[int64]bool{}
		for i, r := range res {
			if i > 0 && r.Score < res[i-1].Score {
				return false
			}
			if r.ID < 0 || r.ID >= int64(chunks) || seen[r.ID] {
				return false
			}
			seen[r.ID] = true
		}
		// 3. The sample phase touches every shard; the deep phase at most
		// min(DeepClusters, shards) distinct shards.
		if stats.SampledShards != shards {
			return false
		}
		maxDeep := p.DeepClusters
		if maxDeep > shards {
			maxDeep = shards
		}
		if len(stats.DeepShards) > maxDeep {
			return false
		}
		deepSeen := map[int]bool{}
		for _, s := range stats.DeepShards {
			if s < 0 || s >= shards || deepSeen[s] {
				return false
			}
			deepSeen[s] = true
		}
		// 4. Every result must live in a deep-searched shard.
		for _, r := range res {
			if !deepSeen[st.Assign[r.ID]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: SearchAll dominates the hierarchical search — its best result is
// never worse, since it scans a superset of shards at the same nProbe.
func TestSearchAllDominates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shards := rng.Intn(5) + 2
		c, err := corpus.Generate(corpus.Spec{
			NumChunks: 80 * shards, Dim: 8, NumTopics: shards, Seed: seed,
		})
		if err != nil {
			return false
		}
		st, err := Build(c.Vectors, BuildOptions{NumShards: shards, Seeds: []int64{seed}})
		if err != nil {
			return false
		}
		p := DefaultParams()
		p.DeepClusters = rng.Intn(shards) + 1
		q := c.Queries(1, seed+11).Vectors.Row(0)
		hier, _ := st.Search(q, p)
		all, _ := st.SearchAll(q, p)
		if len(hier) == 0 || len(all) == 0 {
			return len(hier) == 0 && len(all) == 0
		}
		return all[0].Score <= hier[0].Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
