package quant

import (
	"fmt"
	"math/rand"

	"repro/internal/kmeans"
	"repro/internal/vec"
)

// PQ is product quantization (Jégou et al.): the vector is split into M
// contiguous subspaces and each subspace is vector-quantized independently
// against a learned codebook of 2^nbits centroids. Codes are M bytes when
// nbits=8. Distances use asymmetric distance computation: a per-query lookup
// table of M x ksub partial distances turns each code evaluation into M table
// lookups.
type PQ struct {
	dim   int
	m     int // number of subquantizers
	nbits int // bits per subquantizer index (8 supported)
	dsub  int // dim / m
	// codebooks[m] is a ksub x dsub matrix of centroids for subspace m.
	codebooks []*vec.Matrix
	seed      int64
	trained   bool
}

// NewPQ creates a product quantizer with m subquantizers of nbits each.
// dim must be divisible by m; nbits must be 8.
func NewPQ(dim, m, nbits int, seed int64) (*PQ, error) {
	if dim <= 0 || m <= 0 {
		return nil, fmt.Errorf("quant: PQ invalid shape dim=%d m=%d", dim, m)
	}
	if dim%m != 0 {
		return nil, fmt.Errorf("quant: PQ dim %d not divisible by m %d", dim, m)
	}
	if nbits != 8 {
		return nil, fmt.Errorf("quant: PQ supports nbits=8, got %d", nbits)
	}
	return &PQ{dim: dim, m: m, nbits: nbits, dsub: dim / m, seed: seed}, nil
}

func (p *PQ) Name() string  { return fmt.Sprintf("PQ%dx%d", p.m, p.nbits) }
func (p *PQ) Dim() int      { return p.dim }
func (p *PQ) CodeSize() int { return p.m }

func (p *PQ) ksub() int { return 1 << p.nbits }

// Train learns the per-subspace codebooks with k-means. If the training set
// has fewer points than ksub, the codebook size is clamped to the number of
// distinct points available.
func (p *PQ) Train(data *vec.Matrix) error {
	if data == nil || data.Len() == 0 {
		return fmt.Errorf("quant: PQ training requires data")
	}
	if data.Dim != p.dim {
		return fmt.Errorf("quant: PQ dim %d != data dim %d", p.dim, data.Dim)
	}
	k := p.ksub()
	if data.Len() < k {
		k = data.Len()
	}
	p.codebooks = make([]*vec.Matrix, p.m)
	for m := 0; m < p.m; m++ {
		sub := vec.NewMatrix(data.Len(), p.dsub)
		for i := 0; i < data.Len(); i++ {
			copy(sub.Row(i), data.Row(i)[m*p.dsub:(m+1)*p.dsub])
		}
		res, err := kmeans.Train(sub, kmeans.Config{
			K:        k,
			Seed:     p.seed + int64(m),
			PlusPlus: true,
			MaxIters: 20,
		})
		if err != nil {
			return fmt.Errorf("quant: PQ subspace %d: %w", m, err)
		}
		p.codebooks[m] = res.Centroids
	}
	p.trained = true
	return nil
}

func (p *PQ) Encode(v []float32, code []byte) {
	p.mustTrained()
	checkLens(len(v), p.dim, len(code), p.CodeSize())
	for m := 0; m < p.m; m++ {
		sub := v[m*p.dsub : (m+1)*p.dsub]
		idx, _ := p.codebooks[m].ArgMinL2(sub)
		code[m] = byte(idx)
	}
}

func (p *PQ) Decode(code []byte, out []float32) {
	p.mustTrained()
	checkLens(len(out), p.dim, len(code), p.CodeSize())
	for m := 0; m < p.m; m++ {
		copy(out[m*p.dsub:(m+1)*p.dsub], p.codebooks[m].Row(int(code[m])))
	}
}

func (p *PQ) NewDistancer(q []float32) Distancer {
	p.mustTrained()
	// ADC lookup table: table[m*ksubActual + c] = ||q_m - codebook[m][c]||^2.
	ksubActual := p.codebooks[0].Len()
	table := make([]float32, p.m*ksubActual)
	for m := 0; m < p.m; m++ {
		sub := q[m*p.dsub : (m+1)*p.dsub]
		base := m * ksubActual
		for c := 0; c < ksubActual; c++ {
			table[base+c] = vec.L2Squared(sub, p.codebooks[m].Row(c))
		}
	}
	return func(code []byte) float32 {
		var sum float32
		for m, c := range code {
			sum += table[m*ksubActual+int(c)]
		}
		return sum
	}
}

func (p *PQ) mustTrained() {
	if !p.trained {
		panic("quant: PQ used before Train")
	}
}

// ---------------------------------------------------------------------------
// OPQ: rotation + PQ.

// OPQ applies a learned orthonormal rotation before product quantization so
// that variance is spread more evenly across subspaces. Full OPQ alternates
// between codebook training and a Procrustes SVD solve; this implementation
// uses a seeded random orthonormal rotation (Gram-Schmidt on a Gaussian
// matrix), the standard cheap approximation whose recall closely tracks OPQ
// for embedding workloads — consistent with Table 1, where OPQ and PQ recalls
// are within noise of each other.
type OPQ struct {
	pq  *PQ
	rot *vec.Matrix // dim x dim orthonormal rotation
}

// NewOPQ creates an OPQ quantizer (rotation + PQ(m, nbits)).
func NewOPQ(dim, m, nbits int, seed int64) (*OPQ, error) {
	pq, err := NewPQ(dim, m, nbits, seed)
	if err != nil {
		return nil, err
	}
	return &OPQ{pq: pq, rot: randomRotation(dim, seed)}, nil
}

func (o *OPQ) Name() string  { return fmt.Sprintf("OPQ%dx%d", o.pq.m, o.pq.nbits) }
func (o *OPQ) Dim() int      { return o.pq.dim }
func (o *OPQ) CodeSize() int { return o.pq.CodeSize() }

func (o *OPQ) rotate(v, out []float32) {
	for i := 0; i < o.rot.Len(); i++ {
		out[i] = vec.Dot(o.rot.Row(i), v)
	}
}

func (o *OPQ) unrotate(v, out []float32) {
	// Rotation is orthonormal, so the inverse is the transpose.
	for i := range out {
		out[i] = 0
	}
	for i := 0; i < o.rot.Len(); i++ {
		vec.Axpy(out, v[i], o.rot.Row(i))
	}
}

func (o *OPQ) Train(data *vec.Matrix) error {
	if data == nil || data.Len() == 0 {
		return fmt.Errorf("quant: OPQ training requires data")
	}
	rotated := vec.NewMatrix(data.Len(), o.pq.dim)
	for i := 0; i < data.Len(); i++ {
		o.rotate(data.Row(i), rotated.Row(i))
	}
	return o.pq.Train(rotated)
}

func (o *OPQ) Encode(v []float32, code []byte) {
	tmp := make([]float32, o.pq.dim)
	o.rotate(v, tmp)
	o.pq.Encode(tmp, code)
}

func (o *OPQ) Decode(code []byte, out []float32) {
	tmp := make([]float32, o.pq.dim)
	o.pq.Decode(code, tmp)
	o.unrotate(tmp, out)
}

func (o *OPQ) NewDistancer(q []float32) Distancer {
	// Rotation is an isometry: distances in rotated space equal distances
	// in the original space, so rotate the query once and reuse PQ's ADC.
	rq := make([]float32, o.pq.dim)
	o.rotate(q, rq)
	return o.pq.NewDistancer(rq)
}

// randomRotation builds a seeded orthonormal dim x dim matrix by Gram-Schmidt
// on Gaussian rows.
func randomRotation(dim int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(dim, dim)
	for i := 0; i < dim; i++ {
		row := m.Row(i)
		for {
			for d := range row {
				row[d] = float32(rng.NormFloat64())
			}
			// Orthogonalize against previous rows.
			for j := 0; j < i; j++ {
				proj := vec.Dot(row, m.Row(j))
				vec.Axpy(row, -proj, m.Row(j))
			}
			if vec.Normalize(row) > 1e-6 {
				break // linearly independent; accept
			}
		}
	}
	return m
}
