// Package inctests is the fixture for -include-tests: the package's only
// findings live in its in-package _test.go file, so they appear exactly when
// the loader parses test files AND the analyzer opts into them.
package inctests

// Value exists so the package has a non-test file.
func Value() int { return 1 }
