package loadgen

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestValidation(t *testing.T) {
	ok := func(int) error { return nil }
	if _, err := Run(Config{TargetQPS: 0, Queries: 1}, ok); err == nil {
		t.Fatal("zero QPS should error")
	}
	if _, err := Run(Config{TargetQPS: 10, Queries: 0}, ok); err == nil {
		t.Fatal("zero queries should error")
	}
	if _, err := Run(Config{TargetQPS: 10, Queries: 1}, nil); err == nil {
		t.Fatal("nil fn should error")
	}
}

func TestAllQueriesExecuted(t *testing.T) {
	var count int64
	rep, err := Run(Config{TargetQPS: 2000, Queries: 50, Concurrency: 4, Seed: 1},
		func(i int) error {
			atomic.AddInt64(&count, 1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if count != 50 || rep.Completed != 50 || rep.Offered != 50 {
		t.Fatalf("executed %d, report %+v", count, rep)
	}
	if rep.Failed != 0 {
		t.Fatalf("failed = %d", rep.Failed)
	}
	if rep.Sojourn.Count != 50 || rep.Service.Count != 50 {
		t.Fatal("latency summaries incomplete")
	}
}

func TestFailuresCounted(t *testing.T) {
	rep, err := Run(Config{TargetQPS: 5000, Queries: 20, Seed: 2},
		func(i int) error {
			if i%2 == 0 {
				return errors.New("boom")
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 10 || rep.Completed != 10 {
		t.Fatalf("failed=%d completed=%d", rep.Failed, rep.Completed)
	}
}

func TestAchievedQPSTracksTarget(t *testing.T) {
	// Fast service, moderate rate: achieved ~ offered.
	rep, err := Run(Config{TargetQPS: 500, Queries: 100, Concurrency: 8, Seed: 3},
		func(int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rep.AchievedQPS < 200 || rep.AchievedQPS > 1500 {
		t.Fatalf("achieved QPS %v far from target 500", rep.AchievedQPS)
	}
}

func TestSaturationInflatesSojourn(t *testing.T) {
	// Service takes 5 ms but arrivals come every 1 ms with concurrency 1:
	// the queue builds and sojourn must exceed service substantially.
	service := 5 * time.Millisecond
	rep, err := Run(Config{TargetQPS: 1000, Queries: 30, Concurrency: 1, Seed: 4},
		func(int) error {
			time.Sleep(service)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sojourn.Mean < 2*rep.Service.Mean {
		t.Fatalf("saturated sojourn %v should dwarf service %v", rep.Sojourn.Mean, rep.Service.Mean)
	}
	// Achieved throughput is capped by the service rate (~200 QPS), far
	// below the offered 1000.
	if rep.AchievedQPS > 400 {
		t.Fatalf("achieved QPS %v exceeds service capacity", rep.AchievedQPS)
	}
}

func TestConcurrencyRelievesSaturation(t *testing.T) {
	service := 4 * time.Millisecond
	slow, err := Run(Config{TargetQPS: 800, Queries: 40, Concurrency: 1, Seed: 5},
		func(int) error { time.Sleep(service); return nil })
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(Config{TargetQPS: 800, Queries: 40, Concurrency: 8, Seed: 5},
		func(int) error { time.Sleep(service); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if fast.Sojourn.Mean >= slow.Sojourn.Mean {
		t.Fatalf("concurrency 8 sojourn %v should beat concurrency 1 %v",
			fast.Sojourn.Mean, slow.Sojourn.Mean)
	}
}
