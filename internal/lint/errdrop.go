package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags statements that call a Close/Flush/Sync/Write/Encode-style
// method and silently discard its error. A dropped Close on the index
// writer means a truncated shard file that only fails at load time; a
// dropped Encode on the gob wire means a node and coordinator silently
// disagree. Deferred calls are exempt (idiomatic best-effort cleanup on
// read paths), as is an explicit `_ =` assignment, which documents intent.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "silently discarded errors from Close/Flush/Sync/Write/Encode calls hide truncated files and broken wires",
	Run:  runErrDrop,
}

// errDropMethods are the method names whose dropped error we care about.
var errDropMethods = map[string]bool{
	"Close":       true,
	"Flush":       true,
	"Sync":        true,
	"Write":       true,
	"WriteString": true,
	"WriteTo":     true,
	"Encode":      true,
}

func runErrDrop(p *Pass) {
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || !errDropMethods[fn.Name()] {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !returnsError(sig) {
				return true
			}
			// Judge the exemption on the call site's static receiver type:
			// a hash.Hash64 stays exempt even though its Write method is
			// declared on the embedded io.Writer.
			recv := sig.Recv().Type()
			if selInfo := p.Info.Selections[sel]; selInfo != nil {
				recv = selInfo.Recv()
			}
			if exemptErrDropReceiver(recv) {
				return true
			}
			p.Reportf(stmt.Pos(), "error from %s.%s is silently dropped; handle it, assign to _ explicitly, or suppress with //lint:ignore errdrop <reason>", receiverName(recv), fn.Name())
			return true
		})
	}
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := types.Unalias(res.At(i).Type()).(*types.Named); ok {
			if named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
				return true
			}
		}
	}
	return false
}

// exemptErrDropReceiver excludes receivers whose listed methods are
// documented never to fail: bytes.Buffer, strings.Builder, and the
// hash-package digests (their Write always returns nil).
func exemptErrDropReceiver(t types.Type) bool {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	switch {
	case path == "bytes" && name == "Buffer":
		return true
	case path == "strings" && name == "Builder":
		return true
	case path == "hash" || strings.HasPrefix(path, "hash/"):
		return true
	}
	return false
}

func receiverName(t types.Type) string {
	s := types.TypeString(t, func(p *types.Package) string { return p.Name() })
	return strings.TrimPrefix(s, "*")
}
