// Package dep deliberately does not parse (fixture for hard-error
// surfacing; the trailing brace is missing).
package dep

var Value = 42

func broken() {
