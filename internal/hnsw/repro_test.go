package hnsw

import (
	"math/rand"
	"testing"

	"repro/internal/vec"
)

// TestInjectedRandMatchesSeedPath pins the Config.Rand contract: an
// injected rand.New(rand.NewSource(s)) produces the same graph (observed
// through search results) as Seed: s.
func TestInjectedRandMatchesSeedPath(t *testing.T) {
	const dim, n = 8, 400
	rng := rand.New(rand.NewSource(2))
	data := vec.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		for d := 0; d < dim; d++ {
			data.Row(i)[d] = float32(rng.NormFloat64())
		}
	}

	build := func(cfg Config) *Index {
		t.Helper()
		ix, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := ix.Add(int64(i), data.Row(i)); err != nil {
				t.Fatal(err)
			}
		}
		return ix
	}
	bySeed := build(Config{Dim: dim, Seed: 5})
	byRand := build(Config{Dim: dim, Seed: 123 /* ignored */, Rand: rand.New(rand.NewSource(5))})

	for q := 0; q < 20; q++ {
		a := bySeed.Search(data.Row(q*17%n), 10)
		b := byRand.Search(data.Row(q*17%n), 10)
		if len(a) != len(b) {
			t.Fatalf("query %d: %d vs %d results", q, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
				t.Fatalf("query %d result %d: %+v != %+v", q, i, a[i], b[i])
			}
		}
	}
}
