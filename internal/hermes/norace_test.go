//go:build !race

package hermes

const raceEnabled = false
