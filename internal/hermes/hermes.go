// Package hermes implements the paper's primary contribution: similarity-
// clustered datastore disaggregation plus two-phase hierarchical search.
//
// Offline (Section 4.1), the datastore is split with k-means — trained on a
// small document subset, sweeping several seeds to minimize shard-size
// imbalance — and one IVF index is built per resulting cluster. Online
// (Section 4.2), each query first performs a cheap low-nProbe *sample
// search* retrieving a single document from every shard, ranks shards by
// that document's distance to the query, then runs a high-nProbe *deep
// search* on only the top few shards, finally reranking the union.
//
// The package also implements the baselines the paper compares against:
// a monolithic index, a naive equal split searched in full, and
// centroid-only routing (ranking shards by centroid distance instead of a
// sampled document).
package hermes

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/evlog"
	"repro/internal/ivf"
	"repro/internal/kmeans"
	"repro/internal/quant"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// Params are the Table 2 runtime knobs of the hierarchical search.
type Params struct {
	// K is the number of documents finally retrieved (paper: 5).
	K int
	// SampleNProbe is the nProbe of the sample phase (paper: 8).
	SampleNProbe int
	// DeepNProbe is the nProbe of the deep phase (paper: 128).
	DeepNProbe int
	// DeepClusters is how many shards receive a deep search (paper: 3).
	DeepClusters int
	// PruneEps, when > 0, enables SPANN-style query-time pruning on top of
	// the fixed DeepClusters budget: a ranked shard is deep-searched only
	// while its sampled-document distance is within (1+PruneEps) of the
	// best shard's. Easy queries (one clearly-relevant shard) then use
	// fewer deep searches than the budget, trading a little accuracy for
	// throughput — the extension the paper's related-work section points
	// at (SPANN prunes clusters by centroid distance; here the sampled
	// document plays that role).
	PruneEps float64
}

// DefaultParams returns the paper's evaluation configuration.
func DefaultParams() Params {
	return Params{K: 5, SampleNProbe: 8, DeepNProbe: 128, DeepClusters: 3}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.K <= 0 {
		p.K = d.K
	}
	if p.SampleNProbe <= 0 {
		p.SampleNProbe = d.SampleNProbe
	}
	if p.DeepNProbe <= 0 {
		p.DeepNProbe = d.DeepNProbe
	}
	if p.DeepClusters <= 0 {
		p.DeepClusters = d.DeepClusters
	}
	return p
}

// Shard is one disaggregated index cluster, deployable on its own node.
type Shard struct {
	// Index is the shard's IVF index (IDs are global chunk IDs).
	Index *ivf.Index
	// Centroid is the k-means center that defined the shard.
	Centroid []float32
	// Size is the number of vectors in the shard.
	Size int
}

// Store is a disaggregated datastore: the set of shards plus the assignment
// that produced them.
type Store struct {
	Shards []*Shard
	// Assign maps every corpus row to its shard.
	Assign []int
	// SeedUsed is the k-means seed chosen by imbalance minimization.
	SeedUsed int64
	// Imbalance is the max/min shard-size ratio.
	Imbalance float64

	// met holds resolved telemetry handles (see SetTelemetry); the zero
	// value is a no-op.
	met storeMetrics
	// rec, when non-nil, receives one QueryRecord per Search (see
	// SetRecorder in telemetry.go).
	rec *telemetry.Recorder
	// ev/slowScan arm the slow-scan detector (see SetEvents in
	// telemetry.go); nil ev or zero slowScan disables it.
	ev       *evlog.Log
	slowScan time.Duration
	// pool recycles searchScratch across queries (see scratch.go).
	pool sync.Pool
	// groupPool recycles groupScratch across grouped batches (see grouped.go).
	groupPool sync.Pool
}

// BuildOptions configures disaggregation and per-shard index construction.
type BuildOptions struct {
	// NumShards is the number of clusters to split into.
	NumShards int
	// Seeds are the k-means seeds swept for minimum imbalance; empty
	// defaults to 8 deterministic seeds.
	Seeds []int64
	// SampleFrac is the fraction of documents used for k-means training
	// (the paper finds 1-2% sufficient); values <= 0 default to 0.02,
	// clamped to at least 20 points per shard.
	SampleFrac float64
	// QuantBits selects per-shard compression: 0 = Flat, 8 = SQ8, 4 = SQ4.
	QuantBits int
	// NList overrides the per-shard IVF nlist (0 = 4*sqrt(shard size)).
	NList int
	// KMeansIters bounds clustering iterations (default 25).
	KMeansIters int
}

func (o BuildOptions) withDefaults(n int) (BuildOptions, error) {
	if o.NumShards <= 0 {
		return o, fmt.Errorf("hermes: NumShards must be positive")
	}
	if o.NumShards > n {
		return o, fmt.Errorf("hermes: NumShards %d > corpus size %d", o.NumShards, n)
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3, 4, 5, 6, 7, 8}
	}
	if o.SampleFrac <= 0 {
		o.SampleFrac = 0.02
	}
	switch o.QuantBits {
	case 0, 4, 8:
	default:
		return o, fmt.Errorf("hermes: QuantBits must be 0, 4, or 8, got %d", o.QuantBits)
	}
	return o, nil
}

func newQuantizer(dim, bits int) quant.Quantizer {
	switch bits {
	case 8:
		return quant.NewSQ(dim, 8)
	case 4:
		return quant.NewSQ(dim, 4)
	default:
		return quant.NewFlat(dim)
	}
}

// Build disaggregates the corpus into similarity clusters (Step 1 of
// Figure 10) and builds one IVF index per cluster. Row i of data is chunk ID
// i.
func Build(data *vec.Matrix, opts BuildOptions) (*Store, error) {
	n := data.Len()
	opts, err := opts.withDefaults(n)
	if err != nil {
		return nil, err
	}
	sample := int(float64(n) * opts.SampleFrac)
	if minPts := 20 * opts.NumShards; sample < minPts {
		sample = minPts
	}
	if sample > n {
		sample = 0 // train on everything
	}
	cfg := kmeans.Config{
		K:          opts.NumShards,
		PlusPlus:   true,
		MaxIters:   opts.KMeansIters,
		SampleSize: sample,
	}
	res, seed, err := kmeans.BestSeed(data, cfg, opts.Seeds)
	if err != nil {
		return nil, fmt.Errorf("hermes: clustering: %w", err)
	}
	assign := kmeans.AssignAll(data, res.Centroids)
	return buildFromAssignment(data, assign, res.Centroids, seed)
}

// BuildNaiveSplit splits the corpus into equal round-robin shards with no
// similarity structure — the "Split" baseline of Figure 11 that must search
// nearly every shard to recover accuracy.
func BuildNaiveSplit(data *vec.Matrix, numShards, quantBits int) (*Store, error) {
	n := data.Len()
	if numShards <= 0 || numShards > n {
		return nil, fmt.Errorf("hermes: invalid shard count %d for %d rows", numShards, n)
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = i % numShards
	}
	// Centroids: per-shard means (used only by centroid routing).
	centroids := vec.NewMatrix(numShards, data.Dim)
	counts := make([]int, numShards)
	for i := 0; i < n; i++ {
		vec.Add(centroids.Row(assign[i]), data.Row(i))
		counts[assign[i]]++
	}
	for s := 0; s < numShards; s++ {
		if counts[s] > 0 {
			vec.Scale(centroids.Row(s), 1/float32(counts[s]))
		}
	}
	st, err := buildFromAssignmentQuant(data, assign, centroids, 0, quantBits, 0)
	if err != nil {
		return nil, err
	}
	return st, nil
}

func buildFromAssignment(data *vec.Matrix, assign []int, centroids *vec.Matrix, seed int64) (*Store, error) {
	return buildFromAssignmentQuant(data, assign, centroids, seed, 8, 0)
}

func buildFromAssignmentQuant(data *vec.Matrix, assign []int, centroids *vec.Matrix, seed int64, quantBits, nlist int) (*Store, error) {
	numShards := centroids.Len()
	// Partition rows by shard.
	rows := make([][]int, numShards)
	for i, s := range assign {
		rows[s] = append(rows[s], i)
	}
	sizes := make([]int, numShards)
	shards := make([]*Shard, numShards)
	for s := 0; s < numShards; s++ {
		sizes[s] = len(rows[s])
		if len(rows[s]) == 0 {
			return nil, fmt.Errorf("hermes: shard %d is empty; reduce NumShards or change seeds", s)
		}
		sub := vec.NewMatrix(len(rows[s]), data.Dim)
		for j, r := range rows[s] {
			copy(sub.Row(j), data.Row(r))
		}
		ix, err := ivf.New(ivf.Config{
			Dim:       data.Dim,
			NList:     nlist,
			Quantizer: newQuantizer(data.Dim, quantBits),
			Seed:      seed + int64(s),
		})
		if err != nil {
			return nil, err
		}
		if err := ix.Train(sub); err != nil {
			return nil, fmt.Errorf("hermes: shard %d index: %w", s, err)
		}
		for j, r := range rows[s] {
			if err := ix.Add(int64(r), sub.Row(j)); err != nil {
				return nil, err
			}
		}
		shards[s] = &Shard{Index: ix, Centroid: vec.Copy(centroids.Row(s)), Size: len(rows[s])}
	}
	return &Store{
		Shards:    shards,
		Assign:    assign,
		SeedUsed:  seed,
		Imbalance: kmeans.ImbalanceRatio(sizes),
	}, nil
}

// FromIndexes reassembles a Store from per-shard indexes loaded from disk.
// Shard centroids are reconstructed as the mean of each index's coarse
// centroids (close enough for centroid-routing comparisons; the primary
// document-sampling search does not use them at all).
func FromIndexes(indexes []*ivf.Index) (*Store, error) {
	if len(indexes) == 0 {
		return nil, fmt.Errorf("hermes: FromIndexes requires at least one index")
	}
	dim := indexes[0].Dim()
	shards := make([]*Shard, len(indexes))
	sizes := make([]int, len(indexes))
	for i, ix := range indexes {
		if ix == nil || !ix.Trained() {
			return nil, fmt.Errorf("hermes: index %d is not trained", i)
		}
		if ix.Dim() != dim {
			return nil, fmt.Errorf("hermes: index %d dim %d != %d", i, ix.Dim(), dim)
		}
		centroid := make([]float32, dim)
		for c := 0; c < ix.NList(); c++ {
			vec.Add(centroid, ix.Centroid(c))
		}
		vec.Scale(centroid, 1/float32(ix.NList()))
		shards[i] = &Shard{Index: ix, Centroid: centroid, Size: ix.Len()}
		sizes[i] = ix.Len()
	}
	return &Store{Shards: shards, Imbalance: kmeans.ImbalanceRatio(sizes)}, nil
}

// NumShards returns the shard count.
func (st *Store) NumShards() int { return len(st.Shards) }

// Sizes returns per-shard vector counts.
func (st *Store) Sizes() []int {
	out := make([]int, len(st.Shards))
	for i, s := range st.Shards {
		out[i] = s.Size
	}
	return out
}

// MemoryBytes totals the per-shard index footprints.
func (st *Store) MemoryBytes() int64 {
	var total int64
	for _, s := range st.Shards {
		total += s.Index.MemoryBytes()
	}
	return total
}

// SearchStats aggregates the work a query performed across shards; the
// multi-node model consumes these to attribute latency and energy per node.
type SearchStats struct {
	// SampledShards is the number of shards touched by the sample phase.
	SampledShards int
	// DeepShards lists the shard indices chosen for the deep phase, in
	// ranked order (most relevant first).
	DeepShards []int
	// SampleScanned and DeepScanned count vectors scanned in each phase.
	SampleScanned int
	DeepScanned   int
}

// Search runs the full Hermes hierarchical search for one query. Per-query
// scratch (shard ranking, top-k selector, per-shard searchers) is recycled
// through an internal pool, so steady-state queries allocate only the
// returned result slice and the stats' DeepShards list.
func (st *Store) Search(q []float32, p Params) ([]vec.Neighbor, SearchStats) {
	return st.SearchTraced(q, p, nil)
}

// SearchTraced is Search with request-scoped tracing: one span per phase
// (sample, rank, deep) lands on tr, and when a flight recorder is attached
// (SetRecorder) the completed query is appended to it — traced or not. A
// nil trace keeps the hot path clock-free.
func (st *Store) SearchTraced(q []float32, p Params, tr *telemetry.Trace) ([]vec.Neighbor, SearchStats) {
	p = p.withDefaults()
	st.met.searches.Inc()
	stop := st.met.searchSeconds.Timer()
	defer stop()
	rec := st.rec
	var start time.Time
	if rec != nil {
		start = now()
	}
	var stats SearchStats
	sc := st.getScratch()
	defer st.pool.Put(sc)

	// Phase 1 — document sampling: retrieve 1 document from every shard
	// with a low nProbe and score shards by that document's distance.
	endSample := tr.StartSpan("sample")
	order := sc.order[:0]
	for s := range st.Shards {
		res, sampleStats := st.searchShard(sc, s, q, 1, p.SampleNProbe)
		stats.SampledShards++
		stats.SampleScanned += sampleStats.VectorsScanned
		if len(res) == 0 {
			continue
		}
		order = append(order, rankedShard{res[0].Score, int32(s)})
	}
	sc.order = order
	st.met.sampleScanned.Add(int64(stats.SampleScanned))
	endSample()
	endRank := tr.StartSpan("rank")
	sortRanked(order)
	endRank()

	// Phase 2 — deep search into the top DeepClusters shards, optionally
	// pruned by sampled-document distance.
	deep := p.DeepClusters
	if deep > len(order) {
		deep = len(order)
	}
	endDeep := tr.StartSpan("deep")
	tk := sc.topK(p.K)
	for i, r := range order[:deep] {
		if p.PruneEps > 0 && i > 0 && float64(r.d) > (1+p.PruneEps)*float64(order[0].d) {
			break
		}
		res, deepStats := st.searchShard(sc, int(r.shard), q, p.K, p.DeepNProbe)
		stats.DeepShards = append(stats.DeepShards, int(r.shard))
		stats.DeepScanned += deepStats.VectorsScanned
		for _, n := range res {
			tk.Push(n.ID, n.Score)
		}
	}
	endDeep()
	st.met.deepScanned.Add(int64(stats.DeepScanned))
	out := tk.Results()
	if rec != nil {
		qr := telemetry.QueryRecord{
			TraceID:   tr.ID(),
			Start:     start,
			Total:     now().Sub(start),
			DeepNodes: append([]int(nil), stats.DeepShards...),
			Scanned:   int64(stats.SampleScanned + stats.DeepScanned),
		}
		qr.Busy = qr.Total
		if qr.TraceID == 0 {
			qr.TraceID = telemetry.NewTraceID()
		}
		if tr != nil {
			qr.Spans = tr.Spans()
			_, qr.Busy = telemetry.SpanTotals(qr.Spans)
		}
		rec.Record(qr)
	}
	return out, stats
}

// SearchCentroid is the centroid-routing ablation: shards are ranked by the
// distance of their k-means centroid to the query instead of by a sampled
// document (the weaker strategy in Figure 11).
func (st *Store) SearchCentroid(q []float32, p Params) ([]vec.Neighbor, SearchStats) {
	p = p.withDefaults()
	var stats SearchStats
	sc := st.getScratch()
	defer st.pool.Put(sc)
	order := sc.order[:0]
	for s, sh := range st.Shards {
		order = append(order, rankedShard{vec.L2Squared(q, sh.Centroid), int32(s)})
	}
	sc.order = order
	sortRanked(order)
	deep := p.DeepClusters
	if deep > len(order) {
		deep = len(order)
	}
	tk := sc.topK(p.K)
	for _, r := range order[:deep] {
		res, deepStats := st.searchShard(sc, int(r.shard), q, p.K, p.DeepNProbe)
		stats.DeepShards = append(stats.DeepShards, int(r.shard))
		stats.DeepScanned += deepStats.VectorsScanned
		for _, n := range res {
			tk.Push(n.ID, n.Score)
		}
	}
	return tk.Results(), stats
}

// SearchAll is the naive distributed baseline: every shard receives the deep
// search and the results are aggregated. Accuracy is maximal but so are
// energy and occupancy.
func (st *Store) SearchAll(q []float32, p Params) ([]vec.Neighbor, SearchStats) {
	p = p.withDefaults()
	var stats SearchStats
	sc := st.getScratch()
	defer st.pool.Put(sc)
	tk := sc.topK(p.K)
	for s := range st.Shards {
		res, deepStats := st.searchShard(sc, s, q, p.K, p.DeepNProbe)
		stats.DeepShards = append(stats.DeepShards, s)
		stats.DeepScanned += deepStats.VectorsScanned
		for _, n := range res {
			tk.Push(n.ID, n.Score)
		}
	}
	return tk.Results(), stats
}

// SearchFirstN is the naive-split baseline of Figure 11: deep-search the
// first n shards in fixed order (no routing intelligence) and aggregate.
// On a round-robin split every shard holds the same slice of every topic,
// so accuracy climbs roughly linearly with n and reaches iso-accuracy only
// when nearly all shards are searched — the curve Hermes is compared to.
func (st *Store) SearchFirstN(q []float32, p Params, n int) ([]vec.Neighbor, SearchStats) {
	p = p.withDefaults()
	if n <= 0 {
		n = p.DeepClusters
	}
	if n > len(st.Shards) {
		n = len(st.Shards)
	}
	var stats SearchStats
	sc := st.getScratch()
	defer st.pool.Put(sc)
	tk := sc.topK(p.K)
	for s := 0; s < n; s++ {
		res, deepStats := st.searchShard(sc, s, q, p.K, p.DeepNProbe)
		stats.DeepShards = append(stats.DeepShards, s)
		stats.DeepScanned += deepStats.VectorsScanned
		for _, nb := range res {
			tk.Push(nb.ID, nb.Score)
		}
	}
	return tk.Results(), stats
}

// BuildMonolithic constructs the single-index baseline over the whole
// corpus with the same quantization.
func BuildMonolithic(data *vec.Matrix, quantBits, nlist int, seed int64) (*ivf.Index, error) {
	ix, err := ivf.New(ivf.Config{
		Dim:       data.Dim,
		NList:     nlist,
		Quantizer: newQuantizer(data.Dim, quantBits),
		Seed:      seed,
	})
	if err != nil {
		return nil, err
	}
	if err := ix.Train(data); err != nil {
		return nil, err
	}
	if err := ix.AddBatch(0, data); err != nil {
		return nil, err
	}
	return ix, nil
}

// BatchResult couples one query's hierarchical-search output with its stats
// and — on the grouped path — its cost-ledger entry (ISSUE 9): the work
// attributed to this query, with shared cell streams amortized exactly
// across their co-probers.
type BatchResult struct {
	Neighbors []vec.Neighbor
	Stats     SearchStats
	Cost      telemetry.QueryCost
}

// SearchBatch runs the hierarchical search for every query with a pool of
// GOMAXPROCS workers pulling from a shared queue — the in-process analog of
// the batch serving path (shards are searched concurrently-safe; only
// mutation must not race with searches).
func (st *Store) SearchBatch(queries *vec.Matrix, p Params) []BatchResult {
	n := queries.Len()
	out := make([]BatchResult, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i].Neighbors, out[i].Stats = st.Search(queries.Row(i), p)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i].Neighbors, out[i].Stats = st.Search(queries.Row(i), p)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
