package hnsw

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/flatindex"
	"repro/internal/metrics"
	"repro/internal/vec"
)

func gaussianData(n, dim int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		for d := 0; d < dim; d++ {
			m.Row(i)[d] = float32(rng.NormFloat64())
		}
	}
	return m
}

func build(t testing.TB, data *vec.Matrix, cfg Config) *Index {
	t.Helper()
	ix, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < data.Len(); i++ {
		if err := ix.Add(int64(i), data.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{Dim: 0}); err == nil {
		t.Fatal("Dim=0 should error")
	}
}

func TestEmptySearch(t *testing.T) {
	ix, err := New(Config{Dim: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res := ix.Search([]float32{1, 2, 3, 4}, 3); res != nil {
		t.Fatalf("empty search returned %v", res)
	}
}

func TestSingleElement(t *testing.T) {
	ix, _ := New(Config{Dim: 2, Seed: 1})
	if err := ix.Add(42, []float32{1, 1}); err != nil {
		t.Fatal(err)
	}
	res := ix.Search([]float32{0, 0}, 5)
	if len(res) != 1 || res[0].ID != 42 {
		t.Fatalf("single element search = %+v", res)
	}
}

func TestAddDimMismatch(t *testing.T) {
	ix, _ := New(Config{Dim: 3})
	if err := ix.Add(1, []float32{1}); err == nil {
		t.Fatal("dim mismatch should error")
	}
}

func TestRecallAgainstBruteForce(t *testing.T) {
	data := gaussianData(2000, 16, 1)
	ix := build(t, data, Config{Dim: 16, M: 16, EfConstruction: 100, EfSearch: 64, Seed: 1})
	ref := flatindex.New(16)
	ref.AddBatch(0, data)

	queries := gaussianData(50, 16, 2)
	truth := ref.GroundTruth(queries, 10)
	got := make([][]int64, queries.Len())
	for i := 0; i < queries.Len(); i++ {
		for _, n := range ix.Search(queries.Row(i), 10) {
			got[i] = append(got[i], n.ID)
		}
	}
	recall := metrics.MeanRecall(got, truth, 10)
	if recall < 0.9 {
		t.Fatalf("HNSW recall = %v, want >= 0.9", recall)
	}
}

func TestRecallImprovesWithEf(t *testing.T) {
	data := gaussianData(1500, 12, 3)
	ix := build(t, data, Config{Dim: 12, M: 12, EfConstruction: 120, Seed: 2})
	ref := flatindex.New(12)
	ref.AddBatch(0, data)
	queries := gaussianData(40, 12, 4)
	truth := ref.GroundTruth(queries, 10)

	recallAt := func(ef int) float64 {
		got := make([][]int64, queries.Len())
		for i := 0; i < queries.Len(); i++ {
			for _, n := range ix.SearchEf(queries.Row(i), 10, ef) {
				got[i] = append(got[i], n.ID)
			}
		}
		return metrics.MeanRecall(got, truth, 10)
	}
	rLow, rHigh := recallAt(10), recallAt(200)
	if rHigh < rLow {
		t.Fatalf("recall decreased with ef: %v -> %v", rLow, rHigh)
	}
	if rHigh < 0.95 {
		t.Fatalf("ef=200 recall = %v, want >= 0.95", rHigh)
	}
}

func TestResultsSortedByDistance(t *testing.T) {
	data := gaussianData(500, 8, 5)
	ix := build(t, data, Config{Dim: 8, Seed: 3})
	res := ix.Search(data.Row(0), 10)
	for i := 1; i < len(res); i++ {
		if res[i].Score < res[i-1].Score {
			t.Fatalf("results not sorted: %v then %v", res[i-1].Score, res[i].Score)
		}
	}
	// The query vector itself is in the index, so the best hit must be
	// exact.
	if res[0].ID != 0 || res[0].Score != 0 {
		t.Fatalf("self-query best hit = %+v", res[0])
	}
}

func TestMemoryLargerThanRawVectors(t *testing.T) {
	data := gaussianData(800, 16, 6)
	ix := build(t, data, Config{Dim: 16, M: 16, Seed: 4})
	raw := data.Bytes()
	if ix.MemoryBytes() <= raw {
		t.Fatalf("HNSW memory %d should exceed raw vectors %d (graph links)", ix.MemoryBytes(), raw)
	}
}

func TestGraphStats(t *testing.T) {
	data := gaussianData(300, 8, 7)
	ix := build(t, data, Config{Dim: 8, M: 8, Seed: 5})
	st := ix.Stats()
	if st.Nodes != 300 {
		t.Fatalf("Nodes = %d", st.Nodes)
	}
	if st.AvgDegree <= 0 || st.AvgDegree > 16 {
		t.Fatalf("AvgDegree = %v out of range (0,16]", st.AvgDegree)
	}
}

func TestDeterministicBuild(t *testing.T) {
	data := gaussianData(400, 8, 8)
	a := build(t, data, Config{Dim: 8, Seed: 9})
	b := build(t, data, Config{Dim: 8, Seed: 9})
	q := gaussianData(1, 8, 10).Row(0)
	ra, rb := a.Search(q, 5), b.Search(q, 5)
	for i := range ra {
		if ra[i].ID != rb[i].ID {
			t.Fatalf("same seed produced different graphs at position %d", i)
		}
	}
}

func BenchmarkHNSWSearch(b *testing.B) {
	data := gaussianData(20000, 64, 1)
	ix, err := New(Config{Dim: 64, M: 16, EfConstruction: 100, EfSearch: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < data.Len(); i++ {
		if err := ix.Add(int64(i), data.Row(i)); err != nil {
			b.Fatal(err)
		}
	}
	q := data.Row(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Search(q, 10)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	data := gaussianData(600, 12, 50)
	orig := build(t, data, Config{Dim: 12, M: 12, EfConstruction: 80, Seed: 6})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != orig.Len() || restored.Dim() != orig.Dim() {
		t.Fatalf("restored shape %d/%d", restored.Len(), restored.Dim())
	}
	// Identical graph must answer identically.
	queries := gaussianData(15, 12, 51)
	for i := 0; i < queries.Len(); i++ {
		a := orig.Search(queries.Row(i), 8)
		b := restored.Search(queries.Row(i), 8)
		if len(a) != len(b) {
			t.Fatalf("query %d result counts differ", i)
		}
		for j := range a {
			if a[j].ID != b[j].ID || a[j].Score != b[j].Score {
				t.Fatalf("query %d pos %d differs: %+v vs %+v", i, j, a[j], b[j])
			}
		}
	}
	// The restored graph accepts further insertions.
	if err := restored.Add(9999, queries.Row(0)); err != nil {
		t.Fatal(err)
	}
	res := restored.Search(queries.Row(0), 1)
	if len(res) == 0 || res[0].ID != 9999 {
		t.Fatal("insertion after Load not retrievable")
	}
}

func TestLoadCorruptData(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage input should error")
	}
}
