// Package telemetry is the runtime observability layer of the serving path:
// a concurrency-safe metric registry (counters, gauges, and fixed-bucket
// latency histograms with quantile estimation) rendered in the Prometheus
// text exposition format, request-scoped span tracing (trace.go), and an
// admin HTTP server exposing /metrics, /healthz, and /debug/pprof (admin.go),
// plus a flight recorder of completed queries at /debug/queries (recorder.go).
//
// Naming note: this package is about *runtime* metrics — counters, latency
// histograms, traces of the live serving process. Retrieval-*quality*
// metrics (NDCG, recall@k, latency summaries of offline experiments, the
// energy ledger) live in internal/metrics. If the number describes how well
// retrieval worked, import internal/metrics; if it describes what the
// running system is doing, import this package.
//
// The package is stdlib-only and dependency-free within the repo, so every
// layer (distsearch, batcher, kvcache, the hermes store) can hang metrics on
// it without import cycles. All wall-clock reads go through the injectable
// `now` seam, keeping the repo's wallclock convention: tests freeze time,
// and nothing couples a modeled result to host speed by accident.
//
// Nil-safety is part of the API contract: a nil *Registry hands out nil
// metric handles, and every method on a nil handle is a no-op. Instrumented
// code can therefore record unconditionally and let the caller decide
// whether telemetry is on.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// now is the injectable clock seam; tests swap it to freeze or step time.
var now = time.Now

// Kind discriminates the metric families a registry holds.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// series is one labeled instance within a family.
type series interface {
	// write renders the instance in exposition format. name is the family
	// name, labels the rendered {k="v"} block ("" when unlabeled).
	write(w io.Writer, name, labels string) error
	// snapshot flattens the instance into key->value pairs under base
	// (family name + label block).
	snapshot(base string, out map[string]float64)
}

// family is one named metric family: a kind, help text, and its labeled
// series.
type family struct {
	name    string
	help    string
	kind    Kind
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]series
}

// Registry is a concurrency-safe collection of metric families. The zero
// value is not usable; call NewRegistry. Default is the process-wide
// registry the commands serve on their admin endpoint.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family

	collMu     sync.Mutex
	collectors []func(*Registry)
}

// Default is the process-wide registry used when instrumented layers are not
// handed an explicit one.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey renders alternating key/value pairs into a canonical, sorted
// label block (`k1="v1",k2="v2"`). It panics on an odd-length list — that is
// a compile-time-shaped programming error, not a runtime condition.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	return b.String()
}

// getFamily returns the named family, creating it on first use, and panics
// if the name was previously registered under a different kind — silently
// aliasing a counter as a gauge corrupts every later read.
func (r *Registry) getFamily(name, help string, kind Kind, buckets []float64) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{name: name, help: help, kind: kind, buckets: buckets, series: make(map[string]series)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// Counter returns the counter for name with the given alternating
// label key/value pairs, creating it on first use. Safe for concurrent use;
// nil receivers return a nil (no-op) handle.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, KindCounter, nil)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s.(*Counter)
	}
	c := &Counter{}
	f.series[key] = c
	return c
}

// Gauge returns the gauge for name/labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, KindGauge, nil)
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s.(*Gauge)
	}
	g := &Gauge{}
	f.series[key] = g
	return g
}

// Histogram returns the histogram for name/labels, creating it on first use
// with the given bucket upper bounds (strictly increasing; an implicit +Inf
// overflow bucket is appended). Buckets are fixed per family: the first
// registration wins and later calls reuse them.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, KindHistogram, validateBuckets(buckets))
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s.(*Histogram)
	}
	h := newHistogram(f.buckets)
	f.series[key] = h
	return h
}

// RegisterCollector adds a hook run at the start of every WritePrometheus
// and Snapshot call — the seam through which snapshot-style stats
// (kvcache.Stats, batcher.Stats) publish live values at scrape time.
func (r *Registry) RegisterCollector(f func(*Registry)) {
	if r == nil || f == nil {
		return
	}
	r.collMu.Lock()
	//lint:ignore chanbound registration-time wiring: one append per collector hooked at startup, never per-request growth
	r.collectors = append(r.collectors, f)
	r.collMu.Unlock()
}

// runCollectors invokes registered collectors outside the registry lock so
// they are free to create and set metrics.
func (r *Registry) runCollectors() {
	r.collMu.Lock()
	colls := make([]func(*Registry), len(r.collectors))
	copy(colls, r.collectors)
	r.collMu.Unlock()
	for _, f := range colls {
		f(r)
	}
}

// sortedFamilies snapshots the family set in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (families and series in deterministic sorted order).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.runCollectors()
	for _, f := range r.sortedFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sers := make([]series, len(keys))
		for i, k := range keys {
			sers[i] = f.series[k]
		}
		f.mu.Unlock()
		for i, s := range sers {
			if err := s.write(w, f.name, keys[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot flattens the registry into metric-key -> value pairs. Counters
// and gauges map to `name{labels}`; histograms additionally expose
// `:count`, `:sum`, `:p50`, `:p95`, and `:p99` suffixes. The map is
// gob-friendly, which is how a node ships its full telemetry over OpStats.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	r.runCollectors()
	for _, f := range r.sortedFamilies() {
		f.mu.Lock()
		for key, s := range f.series {
			base := f.name
			if key != "" {
				base += "{" + key + "}"
			}
			s.snapshot(base, out)
		}
		f.mu.Unlock()
	}
	return out
}
