package lint

import (
	"go/ast"
	"go/types"
)

// LockCopy flags functions whose receiver, parameters, or results pass a
// struct by value when that struct (transitively, through embedded structs
// and arrays) contains a sync or sync/atomic primitive. Copying a Mutex
// forks the lock state: the copy guards nothing, and under -race the bug
// often stays invisible until a slow production deadlock. go vet's
// copylocks catches assignments; this check covers the signature surface
// where the copy is part of the API contract.
var LockCopy = &Analyzer{
	Name:      "lockcopy",
	Doc:       "passing or returning structs that carry sync primitives by value copies the lock; use a pointer",
	Run:       runLockCopy,
	TestFiles: true,
}

func runLockCopy(p *Pass) {
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				obj, ok := p.Info.Defs[x.Name].(*types.Func)
				if !ok {
					return true
				}
				checkLockSig(p, obj.Type().(*types.Signature), x.Name.Name)
			case *ast.FuncLit:
				if t := p.TypeOf(x); t != nil {
					if sig, ok := t.(*types.Signature); ok {
						checkLockSig(p, sig, "func literal")
					}
				}
			}
			return true
		})
	}
}

func checkLockSig(p *Pass, sig *types.Signature, fname string) {
	report := func(v *types.Var, role string) {
		lock := lockTypeIn(v.Type(), make(map[types.Type]bool))
		if lock == "" {
			return
		}
		name := v.Name()
		if name == "" {
			name = "_"
		}
		p.Reportf(v.Pos(), "%s %q of %s is passed by value but carries %s; copying it copies the lock state — use a pointer", role, name, fname, lock)
	}
	if v := sig.Recv(); v != nil {
		report(v, "receiver")
	}
	for i := 0; i < sig.Params().Len(); i++ {
		report(sig.Params().At(i), "parameter")
	}
	for i := 0; i < sig.Results().Len(); i++ {
		report(sig.Results().At(i), "result")
	}
}

// lockTypeIn returns the qualified name of the first sync/sync-atomic
// primitive reachable from t by value (not through pointers, slices, maps,
// channels, interfaces, or function types), or "" if none.
func lockTypeIn(t types.Type, seen map[types.Type]bool) string {
	t = types.Unalias(t)
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch x := t.(type) {
	case *types.Named:
		if obj := x.Obj(); obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
					return "sync." + obj.Name()
				}
			case "sync/atomic":
				// Every named sync/atomic type embeds noCopy.
				return "sync/atomic." + obj.Name()
			}
		}
		return lockTypeIn(x.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < x.NumFields(); i++ {
			if s := lockTypeIn(x.Field(i).Type(), seen); s != "" {
				return s
			}
		}
	case *types.Array:
		return lockTypeIn(x.Elem(), seen)
	}
	return ""
}
