package experiments

import (
	"repro/internal/corpus"
	"repro/internal/hermes"
	"repro/internal/hwmodel"
	"repro/internal/multinode"
	"repro/internal/trace"
)

func init() {
	register("validate-model", ValidateModel)
}

// ValidateModel cross-checks the analytical multi-node model against real
// measurements of the in-process implementation — the sanity check behind
// trusting the modeled experiments (the paper validates its Fig. 15 tool the
// same way: per-node measurements in, aggregate behaviour out). For each
// deep-cluster count it compares the *measured* work ratio of hierarchical
// search vs search-all (vectors scanned, the quantity the model's latency is
// proportional to) with the model's predicted latency ratio on a matching
// cluster, plus the real wall-clock ratio as a noisy third column.
func ValidateModel(sc Scale) ([]*Table, error) {
	c, err := corpus.Generate(corpus.Spec{
		NumChunks: sc.Chunks, Dim: sc.Dim, NumTopics: sc.Shards, Seed: sc.Seed,
	})
	if err != nil {
		return nil, err
	}
	st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: sc.Shards})
	if err != nil {
		return nil, err
	}
	qs := c.Queries(sc.Queries, sc.Seed+3)

	// Model side: a cluster with the same relative shard sizes (scaled to
	// tokens) and trace-derived loads.
	shardTokens := make([]int64, sc.Shards)
	for i, size := range st.Sizes() {
		shardTokens[i] = int64(size) * 1e6 // arbitrary scale; ratios are scale-free
	}
	cluster, err := multinode.NewCluster(hwmodel.XeonGold6448Y, shardTokens)
	if err != nil {
		return nil, err
	}

	tab := &Table{
		ID:    "validate-model",
		Title: "Analytical model vs measured implementation (methodology validation)",
		Header: []string{"deep_clusters", "measured_scan_ratio", "modeled_energy_ratio",
			"modeled_latency_ratio", "measured_wall_ratio"},
		Notes: []string{
			"ratios are search-all cost / hierarchical cost (higher = more Hermes advantage)",
			"the model's energy is proportional to work, so modeled_energy_ratio should track",
			"measured_scan_ratio; latency is wave-quantized and wall time is noisy single-core data",
		},
	}
	for _, deep := range []int{1, 3, 5} {
		p := hermes.DefaultParams()
		p.DeepClusters = deep

		// Measured: scanned vectors and wall time for both strategies.
		var hermesScan, allScan int
		startH := now()
		for i := 0; i < qs.Vectors.Len(); i++ {
			_, stats := st.Search(qs.Vectors.Row(i), p)
			hermesScan += stats.SampleScanned + stats.DeepScanned
		}
		hermesWall := now().Sub(startH)
		startA := now()
		for i := 0; i < qs.Vectors.Len(); i++ {
			_, stats := st.SearchAll(qs.Vectors.Row(i), p)
			allScan += stats.DeepScanned
		}
		allWall := now().Sub(startA)

		// Modeled: per-batch latency under trace loads vs search-all.
		tr := trace.Collect(st, qs, p)
		loads := tr.BatchLoads(qs.Vectors.Len())[0]
		hermesCost, err := cluster.Hermes(multinode.HermesConfig{
			Batch:          qs.Vectors.Len(),
			DeepLoads:      loads.ShardBatch,
			SampleFraction: float64(p.SampleNProbe) / float64(p.DeepNProbe),
		})
		if err != nil {
			return nil, err
		}
		allCost := cluster.SplitAll(qs.Vectors.Len())

		tab.AddRow(deep,
			float64(allScan)/float64(hermesScan),
			allCost.EnergyJ/hermesCost.EnergyJ,
			allCost.Latency.Seconds()/hermesCost.Latency.Seconds(),
			allWall.Seconds()/hermesWall.Seconds(),
		)
	}
	return []*Table{tab}, nil
}
