package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// NewAdminMux builds the admin endpoint set over a registry:
//
//	/metrics       — Prometheus text exposition of reg
//	/healthz       — liveness ("ok")
//	/debug/pprof/* — the standard runtime profiles
//
// The mux is returned so callers embedding the admin surface into an
// existing server can mount it under their own routing.
func NewAdminMux(reg *Registry) *http.ServeMux {
	return NewAdminMuxOpts(reg, nil)
}

// NewAdminMuxOpts is NewAdminMux plus the flight recorder's query
// inspection endpoint when rec is non-nil:
//
//	/debug/queries             — recent + pinned slow queries (text or ?format=json)
//	/debug/queries?trace=<id>  — one query's full cross-node waterfall
func NewAdminMuxOpts(reg *Registry, rec *Recorder) *http.ServeMux {
	mux := http.NewServeMux()
	if rec != nil {
		mux.HandleFunc("/debug/queries", rec.ServeQueries)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are already gone; all we can do is note it inline.
			fmt.Fprintf(w, "# render error: %v\n", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// AdminServer is a background HTTP server exposing the admin endpoints.
type AdminServer struct {
	ln  net.Listener
	srv *http.Server
	wg  sync.WaitGroup
}

// ServeAdmin binds addr (":8080", "127.0.0.1:0", ...) and serves the admin
// endpoints for reg in a background goroutine until Close.
func ServeAdmin(addr string, reg *Registry) (*AdminServer, error) {
	return ServeAdminOpts(addr, reg, nil)
}

// ServeAdminOpts is ServeAdmin plus /debug/queries over rec when non-nil.
func ServeAdminOpts(addr string, reg *Registry, rec *Recorder) (*AdminServer, error) {
	return ServeAdminMux(addr, NewAdminMuxOpts(reg, rec))
}

// ServeAdminMux serves a caller-composed mux — typically NewAdminMuxOpts
// plus extra handlers such as the coordinator's /metrics/cluster,
// /debug/slo, and /debug/events — on addr in a background goroutine until
// Close.
func ServeAdminMux(addr string, mux *http.ServeMux) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: admin listen %s: %w", addr, err)
	}
	a := &AdminServer{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		// http.Server.Serve always returns a non-nil error on Close; that
		// shutdown error carries no signal.
		_ = a.srv.Serve(ln)
	}()
	return a, nil
}

// Addr returns the bound listen address (useful with ":0").
func (a *AdminServer) Addr() string { return a.ln.Addr().String() }

// Close stops the server and waits for the serve goroutine to drain.
func (a *AdminServer) Close() error {
	err := a.srv.Close()
	a.wg.Wait()
	return err
}
