package hermes

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestSearchGroupedTracedEquivalence pins traced grouped execution to the
// untraced path: identical neighbors, stats, and ledger counters — tracing
// only adds timestamps around the same code — with scan-time attribution
// present only on the traced side.
func TestSearchGroupedTracedEquivalence(t *testing.T) {
	c := testCorpus(t, 1500, 4)
	st := buildStore(t, c.Vectors, 4)
	qs := c.Queries(16, 143)
	rows := make([][]float32, qs.Vectors.Len())
	for i := range rows {
		rows[i] = qs.Vectors.Row(i)
	}
	p := DefaultParams()
	plain, pStats := st.SearchGrouped(rows, p)
	tr := telemetry.NewTrace()
	traced, tStats := st.SearchGroupedTraced(rows, p, tr)
	if pStats != tStats {
		t.Fatalf("group stats diverge: %+v != %+v", pStats, tStats)
	}
	var attributed, scanSum int64
	for i := range rows {
		if !reflect.DeepEqual(plain[i].Neighbors, traced[i].Neighbors) {
			t.Fatalf("query %d: traced neighbors diverge", i)
		}
		if !reflect.DeepEqual(plain[i].Stats, traced[i].Stats) {
			t.Fatalf("query %d: traced stats diverge", i)
		}
		if plain[i].Cost.ScanNanos != 0 {
			t.Fatalf("query %d: untraced ledger read the clock: %+v", i, plain[i].Cost)
		}
		// Zeroing the traced entry's scan time must reproduce the untraced
		// entry exactly: the counters are the same measurement.
		got := traced[i].Cost
		scanSum += got.ScanNanos
		got.ScanNanos = 0
		if got != plain[i].Cost {
			t.Fatalf("query %d: ledger counters diverge: traced %+v, untraced %+v", i, got, plain[i].Cost)
		}
		attributed += traced[i].Cost.Codes()
	}
	// The ledger conserves the batch's distinct code traffic across shards
	// and phases.
	if want := int64(tStats.Sample.VectorsScanned + tStats.Deep.VectorsScanned); attributed != want {
		t.Fatalf("attributed %d codes != %d distinct streamed", attributed, want)
	}
	if scanSum <= 0 {
		t.Fatal("traced batch attributed no scan time")
	}
	// The shared phases land once each for the whole batch, and the
	// attributed scan time fits inside the phases that measured it.
	spans := tr.Spans()
	byName := map[string]telemetry.Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	for _, name := range []string{"sample", "rank", "deep"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("trace missing shared %q span (got %v)", name, spans)
		}
	}
	if len(spans) != 3 {
		t.Fatalf("grouped trace has %d spans, want exactly one per shared phase: %v", len(spans), spans)
	}
	if wall := byName["sample"].Duration + byName["deep"].Duration; time.Duration(scanSum) > wall {
		t.Fatalf("attributed scan %v exceeds measured phase wall %v", time.Duration(scanSum), wall)
	}
}

// TestSearchGroupedTracedNilTrace pins the nil-trace contract: a nil trace is
// exactly SearchGrouped, scan time stays unattributed.
func TestSearchGroupedTracedNilTrace(t *testing.T) {
	c := testCorpus(t, 600, 3)
	st := buildStore(t, c.Vectors, 3)
	qs := c.Queries(6, 151)
	rows := make([][]float32, qs.Vectors.Len())
	for i := range rows {
		rows[i] = qs.Vectors.Row(i)
	}
	out, _ := st.SearchGroupedTraced(rows, DefaultParams(), nil)
	for i := range rows {
		if out[i].Cost.ScanNanos != 0 {
			t.Fatalf("query %d: nil trace attributed scan time %+v", i, out[i].Cost)
		}
		if out[i].Cost.Codes() == 0 {
			t.Fatalf("query %d: ledger empty on the untraced path", i)
		}
	}
}
