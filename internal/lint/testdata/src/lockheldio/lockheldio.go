// Package lockheldio is the fixture for the lockheldio analyzer.
package lockheldio

import (
	"os"
	"sync"
	"time"
)

type server struct {
	mu sync.Mutex
	ch chan int
	f  *os.File
}

// flush exists so the cross-package/cross-function I/O fact is exercised:
// it has no I/O of its own on its signature, but its body reaches os.File.
func flush(f *os.File) error {
	return f.Sync()
}

func (s *server) blockingUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "call to time.Sleep, which performs I/O"
	s.ch <- 1                    // want "channel send"
	<-s.ch                       // want "channel receive"
	s.mu.Unlock()
	time.Sleep(time.Millisecond) // released: fine
}

func (s *server) factPropagation() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = flush(s.f) // want "call to lockheldio.flush, which performs I/O"
}

func (s *server) earlyExitBranch(closed bool) {
	s.mu.Lock()
	if closed {
		s.mu.Unlock()
		_ = s.f.Close() // released on this path: fine
		return
	}
	s.ch <- 1 // want "channel send"
	s.mu.Unlock()
}

func (s *server) allBranchesRelease(n int) {
	s.mu.Lock()
	switch {
	case n > 0:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
	}
	<-s.ch // every branch released the lock: fine
}

func (s *server) selectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select statement"
	case v := <-s.ch:
		_ = v
	default:
	}
}

func (s *server) rangeOverChannel() {
	s.mu.Lock()
	for v := range s.ch { // want "range over channel"
		_ = v
	}
	s.mu.Unlock()
}

func (s *server) otherGoroutines() {
	s.mu.Lock()
	go func() { time.Sleep(time.Millisecond) }() // other goroutine: fine
	cb := func() { s.ch <- 1 }                   // not called here: fine
	_ = cb
	s.mu.Unlock()
}

func (s *server) suppressed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockheldio fixture: serialized exchange is the point of this lock
	_ = flush(s.f)
}
