// Package corpus generates the synthetic retrieval datastore used by every
// experiment. The paper's corpus (SPHERE, an encoded Common Crawl subset)
// has two properties all Hermes results depend on: document embeddings have
// topical cluster structure (so similarity-aware disaggregation concentrates
// a query's neighbors in few shards), and query popularity over topics is
// skewed (so shard access frequency is imbalanced, Fig. 13). A seeded
// Gaussian topic-mixture reproduces both at laptop scale.
//
// Token accounting follows DESIGN.md: one chunk = TokensPerChunk tokens =
// one embedding vector, so "datastore size in tokens" converts directly to a
// vector count.
package corpus

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/vec"
)

// DefaultTokensPerChunk is the chunk granularity used when Spec leaves it 0.
const DefaultTokensPerChunk = 64

// Spec configures synthetic corpus generation.
type Spec struct {
	// NumChunks is the number of document chunks (= vectors).
	NumChunks int
	// Dim is the embedding dimensionality.
	Dim int
	// NumTopics is the number of latent topics (cluster structure).
	NumTopics int
	// TopicSpread is the intra-topic standard deviation relative to the
	// unit-scale topic centers. Default 0.25.
	TopicSpread float64
	// ZipfS controls topic popularity skew for queries (s parameter of a
	// Zipf distribution); <= 1 disables skew (uniform topics). Default 1.3.
	ZipfS float64
	// TokensPerChunk sets the chunk granularity (default 64).
	TokensPerChunk int
	// Seed makes generation deterministic; default 0. Two Generate calls
	// with equal specs yield bit-identical corpora.
	Seed int64
	// Rand, when non-nil, supplies the generator directly and Seed is
	// ignored. Excluded from JSON: index manifests persist only Seed, so a
	// corpus regenerated from meta.json always comes from the seed path.
	Rand *rand.Rand `json:"-"`
}

func (s Spec) withDefaults() Spec {
	if s.TopicSpread <= 0 {
		s.TopicSpread = 0.25
	}
	if s.ZipfS == 0 {
		s.ZipfS = 1.3
	}
	if s.TokensPerChunk <= 0 {
		s.TokensPerChunk = DefaultTokensPerChunk
	}
	return s
}

// Corpus is a generated datastore: embeddings plus the chunk text store.
type Corpus struct {
	Spec Spec
	// Vectors holds one embedding per chunk, row i for chunk ID i.
	Vectors *vec.Matrix
	// Topics records the latent topic of each chunk.
	Topics []int
	// Centers holds the topic center vectors (NumTopics x Dim).
	Centers *vec.Matrix
	// topicWeights is the (normalized) query popularity per topic.
	topicWeights []float64
}

// Generate builds a corpus from spec.
func Generate(spec Spec) (*Corpus, error) {
	spec = spec.withDefaults()
	if spec.NumChunks <= 0 || spec.Dim <= 0 || spec.NumTopics <= 0 {
		return nil, fmt.Errorf("corpus: invalid spec %+v", spec)
	}
	if spec.NumTopics > spec.NumChunks {
		return nil, fmt.Errorf("corpus: NumTopics %d > NumChunks %d", spec.NumTopics, spec.NumChunks)
	}
	rng := spec.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(spec.Seed))
	}

	// Topic centers: random unit-ish directions scaled for separation.
	centers := vec.NewMatrix(spec.NumTopics, spec.Dim)
	for tIdx := 0; tIdx < spec.NumTopics; tIdx++ {
		row := centers.Row(tIdx)
		for d := range row {
			row[d] = float32(rng.NormFloat64())
		}
		vec.Normalize(row)
		vec.Scale(row, 2) // separation scale vs TopicSpread noise
	}

	// Topic popularity: Zipf over a random permutation of topics so topic
	// ID does not correlate with popularity.
	weights := make([]float64, spec.NumTopics)
	perm := rng.Perm(spec.NumTopics)
	for rank, tIdx := range perm {
		if spec.ZipfS > 1 {
			weights[tIdx] = 1 / math.Pow(float64(rank+1), spec.ZipfS)
		} else {
			weights[tIdx] = 1
		}
	}
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	for i := range weights {
		weights[i] /= wsum
	}

	// Chunks: documents are drawn per-topic with mild size imbalance —
	// each topic's share of the datastore is uniform in [0.5, 1.5]/T,
	// mirroring the ~2x size spread the paper reports for k-means shards.
	shares := make([]float64, spec.NumTopics)
	var ssum float64
	for i := range shares {
		shares[i] = 0.5 + rng.Float64()
		ssum += shares[i]
	}
	counts := make([]int, spec.NumTopics)
	assigned := 0
	for i := range shares {
		counts[i] = int(float64(spec.NumChunks) * shares[i] / ssum)
		assigned += counts[i]
	}
	for i := 0; assigned < spec.NumChunks; i, assigned = (i+1)%spec.NumTopics, assigned+1 {
		counts[i]++
	}

	vectors := vec.NewMatrix(spec.NumChunks, spec.Dim)
	topics := make([]int, spec.NumChunks)
	idx := 0
	for tIdx := 0; tIdx < spec.NumTopics; tIdx++ {
		for c := 0; c < counts[tIdx]; c++ {
			row := vectors.Row(idx)
			center := centers.Row(tIdx)
			for d := range row {
				row[d] = center[d] + float32(rng.NormFloat64()*spec.TopicSpread)
			}
			topics[idx] = tIdx
			idx++
		}
	}
	// Shuffle chunk order so IDs are not sorted by topic.
	permC := rng.Perm(spec.NumChunks)
	shuffled := vec.NewMatrix(spec.NumChunks, spec.Dim)
	shuffledTopics := make([]int, spec.NumChunks)
	for dst, src := range permC {
		copy(shuffled.Row(dst), vectors.Row(src))
		shuffledTopics[dst] = topics[src]
	}

	return &Corpus{
		Spec:         spec,
		Vectors:      shuffled,
		Topics:       shuffledTopics,
		Centers:      centers,
		topicWeights: weights,
	}, nil
}

// Tokens returns the datastore size in tokens.
func (c *Corpus) Tokens() int64 {
	return int64(c.Vectors.Len()) * int64(c.Spec.TokensPerChunk)
}

// QuerySet is a batch of generated queries with their latent topics.
type QuerySet struct {
	Vectors *vec.Matrix
	Topics  []int
}

// Queries draws n queries: a topic is sampled from the skewed popularity
// distribution, then the query embedding is the topic center plus noise
// (slightly wider than document noise, as real queries are noisier than
// documents).
func (c *Corpus) Queries(n int, seed int64) *QuerySet {
	rng := rand.New(rand.NewSource(seed))
	qs := &QuerySet{Vectors: vec.NewMatrix(n, c.Spec.Dim), Topics: make([]int, n)}
	spread := c.Spec.TopicSpread * 1.2
	for i := 0; i < n; i++ {
		tIdx := c.sampleTopic(rng)
		qs.Topics[i] = tIdx
		row := qs.Vectors.Row(i)
		center := c.Centers.Row(tIdx)
		for d := range row {
			row[d] = center[d] + float32(rng.NormFloat64()*spread)
		}
	}
	return qs
}

func (c *Corpus) sampleTopic(rng *rand.Rand) int {
	x := rng.Float64()
	var cum float64
	for tIdx, w := range c.topicWeights {
		cum += w
		if x <= cum {
			return tIdx
		}
	}
	return len(c.topicWeights) - 1
}

// TopicWeights exposes the query popularity distribution (for trace
// analysis tests).
func (c *Corpus) TopicWeights() []float64 {
	return append([]float64(nil), c.topicWeights...)
}
