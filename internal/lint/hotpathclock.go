package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotpathDirective marks a function as serving-hot-path: zero clock reads
// (hotpathclock) and zero heap allocations (hotpathalloc) unless lexically
// gated by a conditional.
const hotpathDirective = "hermes:hotpath"

// HotPathClock enforces the clock-gating contract on functions annotated
// //hermes:hotpath: every clock read (time.Now/Since/Until, or a call
// through a package clock seam like `var now = time.Now`) must sit inside
// an if body, case clause, or select clause — gated so the common path
// never executes it. The IVF scan loop reads the clock only under
// `if ph != nil` (per-phase tracing armed) and the flight recorder samples
// under an explicit trigger; hoisting such a call out of its gate silently
// puts two vDSO clock reads back on every query, the regression PR 3 and
// PR 4 measured and removed. The analyzer makes that contract mechanical.
// (The allocation half of the hot-path contract is hotpathalloc's job,
// backed by the transitive alloc fact.)
//
// The gate's *condition* is deliberately not inspected for truthiness —
// any enclosing conditional counts. The contract is "the straight-line
// path is clock-free", not "tracing is off".
var HotPathClock = &Analyzer{
	Name:      "hotpathclock",
	Doc:       "//hermes:hotpath functions must gate clock reads behind a conditional",
	Run:       runHotPathClock,
	TestFiles: true,
}

func runHotPathClock(p *Pass) {
	seams := clockSeamVars(p)
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(hotpathDirective, fd.Doc) {
				continue
			}
			hotPathCheck(p, fd, seams)
		}
	}
}

// clockSeamVars collects the package-level `var now = time.Now` style seams:
// package variables initialized to (a reference to) time.Now. Calls through
// them are clock reads even though the callee is a function value.
func clockSeamVars(p *Pass) map[*types.Var]bool {
	seams := make(map[*types.Var]bool)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, val := range vs.Values {
					sel, ok := ast.Unparen(val).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
					if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || fn.Name() != "Now" {
						continue
					}
					if i < len(vs.Names) {
						if v, ok := p.Info.Defs[vs.Names[i]].(*types.Var); ok && isPackageLevel(v, p.Pkg) {
							seams[v] = true
						}
					}
				}
			}
		}
	}
	return seams
}

// hotPathCheck walks one annotated function keeping an ancestor stack; a
// hot call is gated when some ancestor conditional's *body* (not its
// condition) contains it. Function literals are skipped — a closure runs on
// its own schedule (often the gated slow path handed to a sampler).
func hotPathCheck(p *Pass, fd *ast.FuncDecl, seams map[*types.Var]bool) {
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		what := hotCallKind(p, call, seams)
		if what == "" || gatedByConditional(stack, call.Pos()) {
			return true
		}
		p.Reportf(call.Pos(), "ungated %s in //hermes:hotpath function %s; hot-path clock reads must sit behind a conditional (e.g. if ph != nil) so the common path stays zero-overhead — gate it, or suppress with //lint:ignore hotpathclock <reason>", what, fd.Name.Name)
		return true
	})
}

// gatedByConditional reports whether pos sits inside the body (not the
// condition/tag) of any enclosing if, case clause, or select clause.
func gatedByConditional(stack []ast.Node, pos token.Pos) bool {
	for _, anc := range stack {
		switch a := anc.(type) {
		case *ast.IfStmt:
			// Body and Else both start at/after Body.Pos(); Init and Cond
			// come before.
			if pos >= a.Body.Pos() {
				return true
			}
		case *ast.CaseClause:
			if pos > a.Colon {
				return true
			}
		case *ast.CommClause:
			if pos > a.Colon {
				return true
			}
		}
	}
	return false
}

// hotCallKind classifies a call as a clock read, returning a display
// string, or "" for calls the clock contract permits. (Allocating calls —
// fmt.Sprintf and friends — were part of this classification until the
// fact engine grew the transitive alloc lattice; hotpathalloc now owns
// them, seeded by allocFuncs.)
func hotCallKind(p *Pass, call *ast.CallExpr, seams map[*types.Var]bool) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if v, ok := p.Info.Uses[fun].(*types.Var); ok && seams[v] {
			return "clock read " + fun.Name + "()"
		}
	case *ast.SelectorExpr:
		fn, ok := p.Info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return ""
		}
		path, name := fn.Pkg().Path(), fn.Name()
		if path == "time" && (name == "Now" || name == "Since" || name == "Until") {
			return "clock read time." + name + "()"
		}
	}
	return ""
}
