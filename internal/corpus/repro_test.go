package corpus

import (
	"math/rand"
	"testing"
)

// TestInjectedRandMatchesSeedPath pins the Spec.Rand contract: injecting
// rand.New(rand.NewSource(s)) generates the same corpus as Seed: s.
func TestInjectedRandMatchesSeedPath(t *testing.T) {
	base := Spec{NumChunks: 500, Dim: 8, NumTopics: 5, Seed: 11}
	bySeed, err := Generate(base)
	if err != nil {
		t.Fatal(err)
	}
	injected := base
	injected.Seed = 999 // ignored when Rand is set
	injected.Rand = rand.New(rand.NewSource(11))
	byRand, err := Generate(injected)
	if err != nil {
		t.Fatal(err)
	}
	if bySeed.Vectors.Len() != byRand.Vectors.Len() {
		t.Fatalf("sizes diverge: %d vs %d", bySeed.Vectors.Len(), byRand.Vectors.Len())
	}
	for i := 0; i < bySeed.Vectors.Len(); i++ {
		if bySeed.Topics[i] != byRand.Topics[i] {
			t.Fatalf("topic %d diverges", i)
		}
		a, b := bySeed.Vectors.Row(i), byRand.Vectors.Row(i)
		for d := range a {
			if a[d] != b[d] {
				t.Fatalf("chunk %d dim %d: %v != %v", i, d, a[d], b[d])
			}
		}
	}
}
