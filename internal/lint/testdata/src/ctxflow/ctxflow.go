// Package distsearch is the fixture for the ctxflow analyzer. The package
// name impersonates a request-path package — ctxflow scopes by package name
// (requestPathPkgs), exactly so fixtures can do this.
package distsearch

import (
	"context"
	"net"
	"time"
)

// Fetch blocks on the network (netio seeds from net.Dial) with no
// cancellation escape hatch anywhere on its call path.
func Fetch(addr string) error { // want "no cancellation escape hatch"
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return c.Close()
}

// FetchCtx threads a context parameter: the cancel fact seeds locally and
// the function is clean.
func FetchCtx(ctx context.Context, addr string) error {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	return c.Close()
}

// FetchDeadline has no context but sets a deadline — the other accepted
// escape hatch.
func FetchDeadline(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	if err := c.SetDeadline(time.Time{}); err != nil {
		return err
	}
	return c.Close()
}

// Relay is exported and blocks only transitively, through the unexported
// helper — the netio fact propagates up the call graph.
func Relay(addr string) error { // want "blocks on the network"
	return dial(addr)
}

// RelayCtx wraps the same helper but carries a context, which counts as a
// cancellation escape hatch wherever on the path it is consumed.
func RelayCtx(ctx context.Context, addr string) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return dial(addr)
}

// dial is unexported: not an API boundary, so ctxflow leaves it to its
// exported callers.
func dial(addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return c.Close()
}

// Sum never touches the network: no netio fact, no finding.
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Push is deliberately suppressed via the doc-comment placement: the
// directive is the last line of the doc comment, directly above the decl.
//
//lint:ignore ctxflow fixture: the owning server enforces a global write deadline
func Push(addr string) error {
	return dial(addr)
}

//lint:ignore ctxflow fixture: line-above placement, same contract as Push
func Pull(addr string) error {
	return dial(addr)
}
