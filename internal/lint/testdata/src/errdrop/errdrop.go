// Package errdrop is a lint fixture: silently discarded errors from
// Close/Flush/Write/Encode-style calls.
package errdrop

import (
	"bytes"
	"encoding/gob"
	"os"
	"strings"
)

type closer struct{}

func (closer) Close() error { return nil }

func bad(f *os.File, c closer) {
	f.Close()    // line 17: flagged
	f.Sync()     // line 18: flagged
	c.Close()    // line 19: flagged
	f.Write(nil) // line 20: flagged
}

func badEncode(enc *gob.Encoder) {
	enc.Encode(42) // line 24: flagged
}

func good(f *os.File) error {
	defer f.Close() // deferred best-effort cleanup is exempt
	if err := f.Sync(); err != nil {
		return err
	}
	_ = f.Close() // explicit discard is exempt
	var b bytes.Buffer
	b.WriteString("x") // bytes.Buffer never fails: exempt
	var sb strings.Builder
	sb.WriteString("y") // strings.Builder never fails: exempt
	return nil
}

func suppressed(f *os.File) {
	//lint:ignore errdrop best-effort cleanup on an already-failing path
	f.Close()
}
