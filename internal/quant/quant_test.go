package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func randomData(n, dim int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		for d := 0; d < dim; d++ {
			m.Row(i)[d] = float32(rng.NormFloat64())
		}
	}
	return m
}

func reconstructionMSE(q Quantizer, data *vec.Matrix) float64 {
	code := make([]byte, q.CodeSize())
	out := make([]float32, q.Dim())
	var sum float64
	for i := 0; i < data.Len(); i++ {
		q.Encode(data.Row(i), code)
		q.Decode(code, out)
		sum += float64(vec.L2Squared(data.Row(i), out))
	}
	return sum / float64(data.Len())
}

func TestFlatRoundTrip(t *testing.T) {
	f := NewFlat(8)
	if err := f.Train(nil); err != nil {
		t.Fatal(err)
	}
	v := []float32{1, -2, 3.5, 0, 1e-7, 1e7, -0.5, 42}
	code := make([]byte, f.CodeSize())
	out := make([]float32, 8)
	f.Encode(v, code)
	f.Decode(code, out)
	for i := range v {
		if v[i] != out[i] {
			t.Fatalf("Flat round trip changed element %d: %v -> %v", i, v[i], out[i])
		}
	}
}

func TestFlatDistancerExact(t *testing.T) {
	f := NewFlat(4)
	v := []float32{1, 2, 3, 4}
	q := []float32{0, 0, 0, 0}
	code := make([]byte, f.CodeSize())
	f.Encode(v, code)
	d := f.NewDistancer(q)
	if got, want := d(code), vec.L2Squared(q, v); got != want {
		t.Fatalf("Flat distance = %v, want %v", got, want)
	}
}

func TestFlatCodeSize(t *testing.T) {
	if NewFlat(768).CodeSize() != 3072 {
		t.Fatal("Flat dim=768 should be 3072 bytes (Table 1)")
	}
}

func TestSQ8CodeSize(t *testing.T) {
	if NewSQ(768, 8).CodeSize() != 768 {
		t.Fatal("SQ8 dim=768 should be 768 bytes (Table 1)")
	}
}

func TestSQ4CodeSize(t *testing.T) {
	if NewSQ(768, 4).CodeSize() != 384 {
		t.Fatal("SQ4 dim=768 should be 384 bytes (Table 1)")
	}
	if NewSQ(7, 4).CodeSize() != 4 {
		t.Fatal("SQ4 odd dim should round up")
	}
}

func TestSQUntrainedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for untrained SQ")
		}
	}()
	s := NewSQ(4, 8)
	s.Encode([]float32{1, 2, 3, 4}, make([]byte, 4))
}

func TestSQ8ReconstructionError(t *testing.T) {
	data := randomData(500, 16, 1)
	s := NewSQ(16, 8)
	if err := s.Train(data); err != nil {
		t.Fatal(err)
	}
	mse := reconstructionMSE(s, data)
	// 8-bit quantization of ~N(0,1) over an observed range of roughly
	// [-4,4]: step ~ 8/255, MSE per dim ~ step^2/12 ~ 8e-5. Whole-vector
	// budget with slack:
	if mse > 0.01 {
		t.Fatalf("SQ8 MSE too high: %v", mse)
	}
}

func TestSQ4WorseThanSQ8(t *testing.T) {
	data := randomData(500, 16, 2)
	s8 := NewSQ(16, 8)
	s4 := NewSQ(16, 4)
	if err := s8.Train(data); err != nil {
		t.Fatal(err)
	}
	if err := s4.Train(data); err != nil {
		t.Fatal(err)
	}
	if reconstructionMSE(s4, data) <= reconstructionMSE(s8, data) {
		t.Fatal("SQ4 should reconstruct worse than SQ8")
	}
}

func TestSQTrainingErrors(t *testing.T) {
	s := NewSQ(4, 8)
	if err := s.Train(nil); err == nil {
		t.Fatal("nil data should error")
	}
	if err := s.Train(vec.NewMatrix(0, 4)); err == nil {
		t.Fatal("empty data should error")
	}
	if err := s.Train(randomData(10, 5, 1)); err == nil {
		t.Fatal("dim mismatch should error")
	}
}

func TestSQConstantDimension(t *testing.T) {
	// A dimension with zero range must encode/decode without NaN.
	data := vec.MatrixFromRows([][]float32{{1, 5}, {2, 5}, {3, 5}})
	s := NewSQ(2, 8)
	if err := s.Train(data); err != nil {
		t.Fatal(err)
	}
	code := make([]byte, s.CodeSize())
	out := make([]float32, 2)
	s.Encode([]float32{2, 5}, code)
	s.Decode(code, out)
	if math.IsNaN(float64(out[0])) || out[1] != 5 {
		t.Fatalf("constant dim decode = %v", out)
	}
}

// Property: SQ distancer agrees with decode-then-L2 exactly.
func TestSQDistancerMatchesDecode(t *testing.T) {
	for _, bits := range []int{4, 8} {
		data := randomData(200, 12, 3)
		s := NewSQ(12, bits)
		if err := s.Train(data); err != nil {
			t.Fatal(err)
		}
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			v := make([]float32, 12)
			q := make([]float32, 12)
			for i := range v {
				v[i] = float32(rng.NormFloat64())
				q[i] = float32(rng.NormFloat64())
			}
			code := make([]byte, s.CodeSize())
			s.Encode(v, code)
			out := make([]float32, 12)
			s.Decode(code, out)
			want := float64(vec.L2Squared(q, out))
			got := float64(s.NewDistancer(q)(code))
			return math.Abs(want-got) <= 1e-3*math.Max(1, want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
	}
}

func TestPQInvalidConfigs(t *testing.T) {
	if _, err := NewPQ(10, 3, 8, 0); err == nil {
		t.Fatal("dim not divisible by m should error")
	}
	if _, err := NewPQ(8, 4, 7, 0); err == nil {
		t.Fatal("nbits != 8 should error")
	}
	if _, err := NewPQ(0, 1, 8, 0); err == nil {
		t.Fatal("zero dim should error")
	}
}

func TestPQRoundTripApproximate(t *testing.T) {
	data := randomData(600, 16, 4)
	p, err := NewPQ(16, 4, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(data); err != nil {
		t.Fatal(err)
	}
	mse := reconstructionMSE(p, data)
	// PQ is lossy but should capture most of the variance (16 dims, 4
	// codebooks of up to 256 entries over 600 points).
	if mse > 8 {
		t.Fatalf("PQ MSE unreasonably high: %v", mse)
	}
	if p.CodeSize() != 4 {
		t.Fatalf("PQ code size = %d", p.CodeSize())
	}
}

func TestPQDistancerMatchesDecode(t *testing.T) {
	data := randomData(400, 8, 5)
	p, err := NewPQ(8, 2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(data); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		v := make([]float32, 8)
		q := make([]float32, 8)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
			q[i] = float32(rng.NormFloat64())
		}
		code := make([]byte, p.CodeSize())
		p.Encode(v, code)
		out := make([]float32, 8)
		p.Decode(code, out)
		want := float64(vec.L2Squared(q, out))
		got := float64(p.NewDistancer(q)(code))
		if math.Abs(want-got) > 1e-3*math.Max(1, want) {
			t.Fatalf("PQ ADC %v != decode distance %v", got, want)
		}
	}
}

func TestOPQRotationIsIsometry(t *testing.T) {
	o, err := NewOPQ(12, 3, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	a := make([]float32, 12)
	b := make([]float32, 12)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
		b[i] = float32(rng.NormFloat64())
	}
	ra := make([]float32, 12)
	rb := make([]float32, 12)
	o.rotate(a, ra)
	o.rotate(b, rb)
	d0 := float64(vec.L2Squared(a, b))
	d1 := float64(vec.L2Squared(ra, rb))
	if math.Abs(d0-d1) > 1e-3*math.Max(1, d0) {
		t.Fatalf("rotation not isometric: %v vs %v", d0, d1)
	}
}

func TestOPQUnrotateInverts(t *testing.T) {
	o, err := NewOPQ(10, 2, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float32, 10)
	for i := range v {
		v[i] = float32(i) - 4.5
	}
	r := make([]float32, 10)
	back := make([]float32, 10)
	o.rotate(v, r)
	o.unrotate(r, back)
	for i := range v {
		if math.Abs(float64(v[i]-back[i])) > 1e-4 {
			t.Fatalf("unrotate(rotate(v))[%d] = %v, want %v", i, back[i], v[i])
		}
	}
}

func TestOPQTrainEncodeDecode(t *testing.T) {
	data := randomData(500, 8, 6)
	o, err := NewOPQ(8, 2, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Train(data); err != nil {
		t.Fatal(err)
	}
	if mse := reconstructionMSE(o, data); mse > 8 {
		t.Fatalf("OPQ MSE unreasonably high: %v", mse)
	}
}

// Property shared by all quantizers: encoding a decoded vector is a fixed
// point (quantization is idempotent).
func TestQuantizationIdempotent(t *testing.T) {
	data := randomData(300, 8, 8)
	pq, _ := NewPQ(8, 2, 8, 11)
	opq, _ := NewOPQ(8, 2, 8, 11)
	quantizers := []Quantizer{NewFlat(8), NewSQ(8, 8), NewSQ(8, 4), pq, opq}
	for _, q := range quantizers {
		if err := q.Train(data); err != nil {
			t.Fatalf("%s: %v", q.Name(), err)
		}
		code := make([]byte, q.CodeSize())
		code2 := make([]byte, q.CodeSize())
		out := make([]float32, 8)
		for i := 0; i < 25; i++ {
			q.Encode(data.Row(i), code)
			q.Decode(code, out)
			q.Encode(out, code2)
			for b := range code {
				if code[b] != code2[b] {
					t.Fatalf("%s: re-encoding decoded vector changed code byte %d", q.Name(), b)
				}
			}
		}
	}
}

// Table 1 ordering property: more aggressive compression reconstructs worse.
func TestCompressionFidelityOrdering(t *testing.T) {
	data := randomData(800, 16, 10)
	flat := NewFlat(16)
	sq8 := NewSQ(16, 8)
	sq4 := NewSQ(16, 4)
	for _, q := range []Quantizer{flat, sq8, sq4} {
		if err := q.Train(data); err != nil {
			t.Fatal(err)
		}
	}
	mFlat := reconstructionMSE(flat, data)
	mSQ8 := reconstructionMSE(sq8, data)
	mSQ4 := reconstructionMSE(sq4, data)
	if !(mFlat <= mSQ8 && mSQ8 < mSQ4) {
		t.Fatalf("fidelity ordering violated: flat=%v sq8=%v sq4=%v", mFlat, mSQ8, mSQ4)
	}
}

func BenchmarkSQ8Distancer(b *testing.B) {
	data := randomData(1000, 128, 1)
	s := NewSQ(128, 8)
	if err := s.Train(data); err != nil {
		b.Fatal(err)
	}
	codes := make([][]byte, data.Len())
	for i := range codes {
		codes[i] = make([]byte, s.CodeSize())
		s.Encode(data.Row(i), codes[i])
	}
	d := s.NewDistancer(data.Row(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d(codes[i%len(codes)])
	}
}

func BenchmarkPQDistancer(b *testing.B) {
	data := randomData(1000, 128, 1)
	p, err := NewPQ(128, 16, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := p.Train(data); err != nil {
		b.Fatal(err)
	}
	codes := make([][]byte, data.Len())
	for i := range codes {
		codes[i] = make([]byte, p.CodeSize())
		p.Encode(data.Row(i), codes[i])
	}
	d := p.NewDistancer(data.Row(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d(codes[i%len(codes)])
	}
}
