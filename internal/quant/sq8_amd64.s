//go:build amd64

#include "textflag.h"

// func sq8DotAsm(code []byte, qm []float32, scale []float32) float32
//
// SSE2-only (amd64 baseline) dequantize-and-accumulate:
//   sum_d (qm[d] - float32(code[d])*scale[d])^2
// Caller guarantees len(qm) % 4 == 0 and len(code), len(scale) >= len(qm).
//
// Main loop handles eight dimensions per iteration: eight code bytes are
// zero-extended to int32 via PUNPCKLBW/PUNPCK{L,H}WD against a zero register,
// converted with CVTPL2PS (cvtdq2ps), then two 4-wide mul/sub/mul/add chains
// feed two independent accumulator registers. All float vector loads go
// through MOVUPS: Go slice data is only guaranteed 8-byte aligned, and
// SSE2 arithmetic with memory operands would fault on unaligned addresses.
TEXT ·sq8DotAsm(SB), NOSPLIT, $0-76
	MOVQ code_base+0(FP), SI
	MOVQ qm_base+24(FP), DI
	MOVQ qm_len+32(FP), CX
	MOVQ scale_base+48(FP), DX

	PXOR  X6, X6 // zero, for byte->dword unpacking
	XORPS X5, X5 // accumulator, dims 8k+0..3
	XORPS X4, X4 // accumulator, dims 8k+4..7
	XORQ  AX, AX // element index d

	MOVQ CX, BX
	ANDQ $-8, BX // BX = len rounded down to a multiple of 8
	CMPQ AX, BX
	JGE  tail4

loop8:
	MOVQ      (SI)(AX*1), X0 // eight code bytes
	PUNPCKLBW X6, X0         // -> eight uint16
	MOVOU     X0, X1
	PUNPCKLWL X6, X0 // low four -> uint32 (punpcklwd)
	PUNPCKHWL X6, X1 // high four -> uint32 (punpckhwd)
	CVTPL2PS  X0, X0 // -> float32
	CVTPL2PS  X1, X1

	MOVUPS (DX)(AX*4), X2   // scale[d..d+3]
	MOVUPS 16(DX)(AX*4), X3 // scale[d+4..d+7]
	MULPS  X2, X0
	MULPS  X3, X1

	MOVUPS (DI)(AX*4), X2   // qm[d..d+3]
	MOVUPS 16(DI)(AX*4), X3 // qm[d+4..d+7]
	SUBPS  X0, X2           // qm - code*scale
	SUBPS  X1, X3
	MULPS  X2, X2
	MULPS  X3, X3
	ADDPS  X2, X5
	ADDPS  X3, X4

	ADDQ $8, AX
	CMPQ AX, BX
	JLT  loop8

tail4:
	CMPQ AX, CX
	JGE  reduce

	// One 4-wide step for len % 8 == 4.
	MOVL      (SI)(AX*1), R8
	MOVQ      R8, X0
	PUNPCKLBW X6, X0
	PUNPCKLWL X6, X0
	CVTPL2PS  X0, X0
	MOVUPS    (DX)(AX*4), X2
	MULPS     X2, X0
	MOVUPS    (DI)(AX*4), X2
	SUBPS     X0, X2
	MULPS     X2, X2
	ADDPS     X2, X5

reduce:
	ADDPS  X4, X5
	MOVAPS X5, X0
	SHUFPS $0xEE, X5, X0 // X0 = {lane2, lane3, lane2, lane3}
	ADDPS  X5, X0        // lanes 0+2, 1+3 in the low two slots
	MOVAPS X0, X1
	SHUFPS $0x55, X0, X1 // X1 low = lane 1+3
	ADDSS  X1, X0
	MOVSS  X0, ret+72(FP)
	RET
