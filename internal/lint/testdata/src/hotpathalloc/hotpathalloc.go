// Package hotpathalloc is the fixture for the transitive allocation check
// on //hermes:hotpath functions: every recognized ungated allocation site
// fires, the caller-owned-append and captureless-literal exemptions stay
// silent, gated slow paths are fine, and a call to a module helper that
// allocates on its straight-line path is flagged through the alloc fact.
package hotpathalloc

import "fmt"

type point struct{ x, y int }

var sink any

// suffix is a package-level var so concatenating with it cannot be folded.
var suffix = "0"

// done backs drainSink without allocating: channel ops are not sites.
var done = make(chan struct{}, 1)

// newScratch allocates unconditionally: the alloc lattice marks it, and
// hot callers inherit the finding at their call site.
func newScratch() []float32 {
	return make([]float32, 64)
}

// growGated allocates only behind its nil check — the pool-warm-up shape —
// so it carries no alloc fact and hot callers may call it freely.
func growGated(buf []float32) []float32 {
	if buf == nil {
		buf = make([]float32, 64)
	}
	return buf
}

//hermes:hotpath
func scanSites(dst []float32, x float32, n int) []float32 {
	buf := make([]float32, n)  // want "ungated make call"
	ids := []int{1, 2, 3}      // want "ungated slice literal"
	seen := map[int]bool{}     // want "ungated map literal"
	p := &point{x: 1}          // want "composite literal whose address is taken"
	q := new(point)            // want "ungated new call"
	label := "shard-" + suffix // want "ungated string concatenation"
	boxed := any(x)            // want "interface conversion boxing its operand"
	raw := []byte(label)       // want "slice conversion copying a string"
	var grown []float32
	grown = append(grown, x)  // want "append that may grow its backing array"
	go drainSink()            // want "go statement"
	closure := func() { n++ } // want "function literal capturing variables"
	dst = append(dst, x)      // exempt: caller-owned destination
	static := func() {}       // exempt: captureless literal is a static singleton
	sink = buf
	sink = ids
	sink = seen
	sink = p
	sink = q
	sink = boxed
	sink = raw
	sink = grown
	closure()
	static()
	return dst
}

//hermes:hotpath
func scanCalls(dst []float32, x float32) []float32 {
	s := newScratch()           // want "ungated call to hotpathalloc.newScratch, which allocates"
	msg := fmt.Sprintf("%f", x) // want "ungated call to fmt.Sprintf, which allocates"
	dst = growGated(dst)        // gated callee carries no alloc fact: fine
	if len(dst) == 0 {
		dst = newScratch()                // gated at the call site: fine
		panic(fmt.Sprintf("empty %f", x)) // gated: fine
	}
	sink = s
	sink = msg
	return append(dst, x)
}

//hermes:hotpath
func scanSuppressed(k int) []float32 {
	//lint:ignore hotpathalloc fixture: cold-start table build, runs once per shard
	table := make([]float32, k)
	return table
}

// cold is unannotated and allocates freely.
func cold(k int) []float32 {
	out := make([]float32, k)
	return append(out, float32(k))
}

func drainSink() {
	done <- struct{}{}
	<-done
}
