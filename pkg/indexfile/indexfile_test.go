package indexfile

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/hermes"
)

func buildDir(t *testing.T) (string, *corpus.Corpus, *hermes.Store) {
	t.Helper()
	dir := t.TempDir()
	spec := corpus.Spec{NumChunks: 600, Dim: 8, NumTopics: 3, Seed: 9}
	c, err := corpus.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range st.Shards {
		if err := WriteIndex(filepath.Join(dir, ShardFile(i)), sh.Index); err != nil {
			t.Fatal(err)
		}
	}
	meta := Meta{Type: "hermes", Dim: 8, Shards: 3, Corpus: spec}
	raw := []byte(`{"Type":"hermes","Dim":8,"Shards":3,"Corpus":{"NumChunks":600,"Dim":8,"NumTopics":3,"TopicSpread":0.25,"ZipfS":1.3,"TokensPerChunk":64,"Seed":9}}`)
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_ = meta
	return dir, c, st
}

func TestShardFileNaming(t *testing.T) {
	if ShardFile(0) != "shard-000.ivf" || ShardFile(42) != "shard-042.ivf" {
		t.Fatalf("shard names: %s %s", ShardFile(0), ShardFile(42))
	}
}

func TestReadAllRoundTrip(t *testing.T) {
	dir, c, st := buildDir(t)
	meta, indexes, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Type != "hermes" || meta.Shards != 3 || meta.Dim != 8 {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.Corpus.NumChunks != 600 || meta.Corpus.Seed != 9 {
		t.Fatalf("corpus spec = %+v", meta.Corpus)
	}
	// Loaded indexes answer identically to the originals.
	q := c.Vectors.Row(5)
	for i, ix := range indexes {
		want := st.Shards[i].Index.Search(q, 3, 8)
		got := ix.Search(q, 3, 8)
		if len(want) != len(got) {
			t.Fatalf("shard %d result count differs", i)
		}
		for j := range want {
			if want[j].ID != got[j].ID {
				t.Fatalf("shard %d pos %d differs", i, j)
			}
		}
	}
	// The loaded indexes reassemble into a searchable store.
	restored, err := hermes.FromIndexes(indexes)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := restored.Search(q, hermes.DefaultParams())
	if len(res) == 0 {
		t.Fatal("restored store returned nothing")
	}
}

func TestReadMetaErrors(t *testing.T) {
	if _, err := ReadMeta(t.TempDir()); err == nil {
		t.Fatal("missing meta.json should error")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "meta.json"), []byte("not json"), 0o644)
	if _, err := ReadMeta(dir); err == nil {
		t.Fatal("invalid json should error")
	}
	os.WriteFile(filepath.Join(dir, "meta.json"), []byte(`{"Type":"x","Dim":0,"Shards":0}`), 0o644)
	if _, err := ReadMeta(dir); err == nil {
		t.Fatal("invalid shape should error")
	}
}

func TestReadAllMissingShard(t *testing.T) {
	dir, _, _ := buildDir(t)
	os.Remove(filepath.Join(dir, ShardFile(1)))
	if _, _, err := ReadAll(dir); err == nil {
		t.Fatal("missing shard file should error")
	}
}

func TestReadAllDimMismatch(t *testing.T) {
	dir, _, _ := buildDir(t)
	raw := []byte(`{"Type":"hermes","Dim":16,"Shards":3,"Corpus":{"NumChunks":600,"Dim":16,"NumTopics":3,"Seed":9}}`)
	os.WriteFile(filepath.Join(dir, "meta.json"), raw, 0o644)
	if _, _, err := ReadAll(dir); err == nil {
		t.Fatal("shard/meta dim mismatch should error")
	}
}

func TestReadIndexMissingFile(t *testing.T) {
	if _, err := ReadIndex("/nonexistent/file.ivf"); err == nil {
		t.Fatal("missing file should error")
	}
}
