package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// DefLatencyBuckets covers the serving path's latency range: 50µs TCP
// round-trips on localhost up to multi-second stalls, in seconds.
var DefLatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefSizeBuckets covers batch sizes and fan-out counts.
var DefSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// DefByteBuckets covers wire payload sizes, in bytes.
var DefByteBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// validateBuckets checks bounds are strictly increasing and finite, and
// panics otherwise — bucket layout is static configuration, not input.
func validateBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i, b := range buckets {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("telemetry: bucket bound %v is not finite", b))
		}
		if i > 0 && b <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: bucket bounds must be strictly increasing, got %v after %v", b, buckets[i-1]))
		}
	}
	return buckets
}

// Histogram counts observations into fixed buckets with upper bounds
// `bounds` plus an implicit +Inf overflow bucket, and tracks the running sum
// and count. Observations are assumed non-negative (latencies, sizes,
// bytes): quantile interpolation treats 0 as the first bucket's lower edge.
// Safe for concurrent use; no-op on a nil receiver.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated

	// Per-bucket exemplars: the last trace-linked observation to land in
	// each bucket (trace ID + float64 bits of the value). The two words are
	// stored without mutual atomicity — an exemplar is a debugging pointer
	// from a latency bucket to a trace ID, not an invariant-bearing pair.
	exTrace []atomic.Uint64
	exValue []atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:  bounds,
		counts:  make([]atomic.Int64, len(bounds)+1),
		exTrace: make([]atomic.Uint64, len(bounds)+1),
		exValue: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.observe(v)
}

// ObserveExemplar records one value and, when traceID is non-zero, pins it
// as the bucket's exemplar so a scrape can answer "which query put an
// observation in this latency bucket". traceID 0 degrades to Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	if h == nil {
		return
	}
	i := h.observe(v)
	if traceID != 0 {
		h.exValue[i].Store(math.Float64bits(v))
		h.exTrace[i].Store(traceID)
	}
}

// observe counts v and returns the bucket index it landed in.
func (h *Histogram) observe(v float64) int {
	// sort.SearchFloat64s finds the first bound >= v, i.e. the bucket whose
	// upper bound covers v; values above every bound land in the overflow.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return i
		}
	}
}

// BucketExemplar is one bucket's pinned trace-linked observation.
type BucketExemplar struct {
	UpperBound float64 // math.Inf(1) for the overflow bucket
	TraceID    uint64
	Value      float64
}

// Exemplars returns the buckets that currently hold an exemplar.
func (h *Histogram) Exemplars() []BucketExemplar {
	if h == nil {
		return nil
	}
	var out []BucketExemplar
	for i := range h.exTrace {
		id := h.exTrace[i].Load()
		if id == 0 {
			continue
		}
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		out = append(out, BucketExemplar{UpperBound: ub, TraceID: id, Value: math.Float64frombits(h.exValue[i].Load())})
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) by locating the bucket
// containing the ceil(q*count)-th smallest observation and interpolating
// linearly inside it. The estimate is therefore always bracketed by the
// bounds of the bucket that holds the true sample quantile. Observations in
// the +Inf overflow bucket clamp to the largest finite bound. Returns 0
// before any observation.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if cum+c >= rank {
			if i == len(h.bounds) {
				// Overflow bucket: no finite upper edge to interpolate to.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			return lo + (hi-lo)*float64(rank-cum)/float64(c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// CountAtOrBelow returns the number of observations that landed in buckets
// whose upper bound is <= the smallest bound >= v — i.e. the cumulative
// count after rounding v up to a bucket boundary. SLO latency objectives
// read "good events" through this, so thresholds should sit on (or near) a
// bucket bound; a threshold between bounds is effectively rounded up.
func (h *Histogram) CountAtOrBelow(v float64) int64 {
	if h == nil {
		return 0
	}
	i := sort.SearchFloat64s(h.bounds, v)
	var cum int64
	for j := 0; j <= i && j < len(h.counts); j++ {
		cum += h.counts[j].Load()
	}
	return cum
}

// bucketValue renders one _bucket line's value: the cumulative count, with
// an OpenMetrics-style exemplar suffix (` # {trace_id="..."} <value>`) only
// when the bucket holds one — histograms that never saw ObserveExemplar
// render byte-identical to the pre-exemplar format.
func (h *Histogram) bucketValue(i int, cum int64) string {
	v := strconv.FormatInt(cum, 10)
	if id := h.exTrace[i].Load(); id != 0 {
		v += fmt.Sprintf(" # {trace_id=\"%016x\"} %s", id, formatFloat(math.Float64frombits(h.exValue[i].Load())))
	}
	return v
}

func (h *Histogram) write(w io.Writer, name, labels string) error {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		le := fmt.Sprintf("le=%q", formatFloat(bound))
		if labels != "" {
			le = labels + "," + le
		}
		if err := seriesLine(w, name+"_bucket", le, h.bucketValue(i, cum)); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	le := `le="+Inf"`
	if labels != "" {
		le = labels + "," + le
	}
	if err := seriesLine(w, name+"_bucket", le, h.bucketValue(len(h.bounds), cum)); err != nil {
		return err
	}
	if err := seriesLine(w, name+"_sum", labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	// _count reuses the cumulative bucket total so the rendered family is
	// internally consistent even if observations land mid-scrape.
	return seriesLine(w, name+"_count", labels, strconv.FormatInt(cum, 10))
}

func (h *Histogram) snapshot(base string, out map[string]float64) {
	out[base+":count"] = float64(h.Count())
	out[base+":sum"] = h.Sum()
	out[base+":p50"] = h.Quantile(0.50)
	out[base+":p95"] = h.Quantile(0.95)
	out[base+":p99"] = h.Quantile(0.99)
}
