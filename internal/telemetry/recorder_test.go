package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func recAt(i int) time.Time { return time.Unix(9000, 0).Add(time.Duration(i) * time.Second) }

func TestRecorderRecentOrderAndEviction(t *testing.T) {
	rec := NewRecorder(16, 0)
	for i := 0; i < 40; i++ {
		rec.Record(QueryRecord{TraceID: uint64(i + 1), Start: recAt(i), Total: time.Millisecond})
	}
	recent := rec.Recent(100)
	if len(recent) != 16 {
		t.Fatalf("recent = %d records, want capacity 16", len(recent))
	}
	for i := 1; i < len(recent); i++ {
		if recent[i].Start.After(recent[i-1].Start) {
			t.Fatalf("recent not newest-first at %d: %v after %v", i, recent[i].Start, recent[i-1].Start)
		}
	}
	// The newest record survives eviction; the oldest is gone.
	if _, ok := rec.Find(40); !ok {
		t.Error("newest record evicted")
	}
	if _, ok := rec.Find(1); ok {
		t.Error("oldest record must have been evicted from a 16-slot ring after 40 inserts")
	}
	if got := rec.Recent(3); len(got) != 3 {
		t.Errorf("Recent(3) = %d records", len(got))
	}
}

func TestRecorderSlowPinning(t *testing.T) {
	rec := NewRecorder(8, 10*time.Millisecond)
	slowID := uint64(7777)
	rec.Record(QueryRecord{TraceID: slowID, Start: recAt(0), Total: 50 * time.Millisecond})
	// A burst of fast queries evicts the slow one from the recent ring...
	for i := 0; i < 100; i++ {
		rec.Record(QueryRecord{TraceID: uint64(i + 1), Start: recAt(i + 1), Total: time.Millisecond})
	}
	slow := rec.Slow(10)
	if len(slow) != 1 || slow[0].TraceID != slowID {
		t.Fatalf("slow ring = %+v, want just the pinned outlier", slow)
	}
	// ...but Find still resolves it through the pin ring.
	if qr, ok := rec.Find(slowID); !ok || qr.Total != 50*time.Millisecond {
		t.Errorf("Find(slow) = %+v, %v; want the pinned record", qr, ok)
	}
	// Slow sorts slowest-first.
	rec.Record(QueryRecord{TraceID: 8888, Start: recAt(200), Total: 80 * time.Millisecond})
	slow = rec.Slow(10)
	if len(slow) != 2 || slow[0].TraceID != 8888 || slow[1].TraceID != slowID {
		t.Errorf("slow not slowest-first: %+v", slow)
	}
	// Threshold 0 disables pinning.
	rec.SetSlowThreshold(0)
	rec.Record(QueryRecord{TraceID: 9999, Start: recAt(201), Total: time.Hour})
	if len(rec.Slow(10)) != 2 {
		t.Error("pinning must be disabled at threshold 0")
	}
	if rec.SlowThreshold() != 0 {
		t.Errorf("SlowThreshold = %v", rec.SlowThreshold())
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var rec *Recorder
	rec.Record(QueryRecord{TraceID: 1})
	rec.SetSlowThreshold(time.Second)
	if rec.Recent(5) != nil || rec.Slow(5) != nil || rec.SlowThreshold() != 0 {
		t.Error("nil recorder must no-op")
	}
	if _, ok := rec.Find(1); ok {
		t.Error("nil recorder Find must miss")
	}
	w := httptest.NewRecorder()
	rec.ServeQueries(w, httptest.NewRequest("GET", "/debug/queries", nil))
	if w.Code != 404 {
		t.Errorf("nil recorder handler status = %d, want 404", w.Code)
	}
}

func TestServeQueries(t *testing.T) {
	rec := NewRecorder(32, 20*time.Millisecond)
	base := recAt(0)
	rec.Record(QueryRecord{
		TraceID: 0xabc, Start: base, Total: 30 * time.Millisecond, Busy: 35 * time.Millisecond,
		Spans: []Span{
			{Name: "sample_scatter", Node: NodeLocal, Start: base, Duration: 5 * time.Millisecond},
			{Name: "list_scan", Node: 2, Start: base.Add(time.Millisecond), Duration: 20 * time.Millisecond},
		},
		DeepNodes: []int{2, 0}, Scanned: 640,
	})
	rec.Record(QueryRecord{TraceID: 0xdef, Start: base.Add(time.Second), Total: time.Millisecond, Err: "node down"})

	get := func(url string) (int, string) {
		t.Helper()
		w := httptest.NewRecorder()
		rec.ServeQueries(w, httptest.NewRequest("GET", url, nil))
		return w.Code, w.Body.String()
	}

	// Listing (text): both rings, breakdowns, error annotations.
	code, body := get("/debug/queries")
	if code != 200 {
		t.Fatalf("listing status %d", code)
	}
	for _, want := range []string{"0000000000000abc", "0000000000000def", "pinned slow", "n2.list_scan=20ms", `err="node down"`, "scanned=640"} {
		if !strings.Contains(body, want) {
			t.Errorf("listing missing %q:\n%s", want, body)
		}
	}

	// Single trace (text): header plus waterfall rows.
	code, body = get("/debug/queries?trace=abc")
	if code != 200 || !strings.Contains(body, "deep=[2 0]") || !strings.Contains(body, "n2.list_scan") {
		t.Errorf("trace view (status %d) wrong:\n%s", code, body)
	}
	if code, _ := get("/debug/queries?trace=0xabc"); code != 200 {
		t.Errorf("0x-prefixed trace ID rejected: %d", code)
	}

	// JSON forms round-trip.
	code, body = get("/debug/queries?format=json&n=1")
	if code != 200 {
		t.Fatalf("json listing status %d", code)
	}
	var listing struct {
		SlowThresholdNanos int64         `json:"slow_threshold_nanos"`
		Recent             []QueryRecord `json:"recent"`
		Slow               []QueryRecord `json:"slow"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatalf("json listing unparseable: %v\n%s", err, body)
	}
	if listing.SlowThresholdNanos != int64(20*time.Millisecond) || len(listing.Recent) != 1 || len(listing.Slow) != 1 {
		t.Errorf("json listing = %+v", listing)
	}
	code, body = get("/debug/queries?trace=abc&format=json")
	var qr QueryRecord
	if code != 200 || json.Unmarshal([]byte(body), &qr) != nil || qr.TraceID != 0xabc || qr.Scanned != 640 {
		t.Errorf("json trace view (status %d) = %+v\n%s", code, qr, body)
	}

	// Error paths.
	if code, _ := get("/debug/queries?trace=zzz"); code != 400 {
		t.Errorf("garbage trace ID status %d, want 400", code)
	}
	if code, _ := get("/debug/queries?trace=123456"); code != 404 {
		t.Errorf("unknown trace status %d, want 404", code)
	}
}

func TestQueryRecordPhaseSummary(t *testing.T) {
	base := recAt(0)
	qr := QueryRecord{Spans: []Span{
		{Name: "list_scan", Node: 1, Start: base.Add(time.Millisecond), Duration: 2 * time.Millisecond},
		{Name: "decode", Node: 1, Start: base, Duration: time.Millisecond},
	}}
	if got := qr.PhaseSummary(); got != "n1.decode=1ms n1.list_scan=2ms" {
		t.Errorf("PhaseSummary = %q", got)
	}
	if got := (QueryRecord{}).PhaseSummary(); got != "" {
		t.Errorf("empty PhaseSummary = %q", got)
	}
}

// TestRecordAllocationFree pins the hot-path contract: Record copies the
// record by value into a preallocated ring slot and allocates nothing, so
// the flight recorder is safe on the serving path.
func TestRecordAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	rec := NewRecorder(64, 10*time.Millisecond)
	spans := []Span{{Name: "list_scan", Node: 1, Duration: time.Millisecond}}
	deep := []int{1, 2}
	var id uint64
	avg := testing.AllocsPerRun(200, func() {
		id++
		rec.Record(QueryRecord{
			TraceID: id, Total: 20 * time.Millisecond, Busy: 21 * time.Millisecond,
			Spans: spans, DeepNodes: deep, Scanned: 100,
		})
	})
	if avg != 0 {
		t.Errorf("Record allocates %.1f per call, want 0", avg)
	}
}

func TestRecorderDefaultsAndSmallCapacity(t *testing.T) {
	// Tiny capacity collapses to one stripe but still works.
	rec := NewRecorder(3, 0)
	for i := 1; i <= 5; i++ {
		rec.Record(QueryRecord{TraceID: uint64(i), Start: recAt(i)})
	}
	if got := len(rec.Recent(10)); got > 3+recorderStripes {
		t.Errorf("tiny recorder kept %d records", got)
	}
	if _, ok := rec.Find(5); !ok {
		t.Error("tiny recorder lost the newest record")
	}
	// Default capacity engages for <= 0.
	if got := NewRecorder(0, 0); len(got.stripes) != recorderStripes {
		t.Errorf("default recorder has %d stripes", len(got.stripes))
	}
}
