package multinode

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// ReplaySummary aggregates a trace-driven replay: the paper's multi-node
// analysis pairs per-node measurements "with a trace of the top clusters
// accessed during the deep search" — ReplayTrace is that pairing.
type ReplaySummary struct {
	// Batches is the number of batch windows replayed.
	Batches int
	// TotalLatency sums the batch windows; TotalEnergyJ the Joules.
	TotalLatency time.Duration
	TotalEnergyJ float64
	// MeanQPS is total queries / total latency.
	MeanQPS float64
	// PerBatch holds the individual window costs.
	PerBatch []BatchCost
}

// ReplayTrace evaluates the cluster cost model over a real shard-access
// trace collected from the hierarchical search (trace.Collect), splitting it
// into windows of batchSize queries. The base config supplies
// SampleFraction, Policy, and PipelineWindow; Batch and DeepLoads are filled
// per window from the trace.
func (c *Cluster) ReplayTrace(tr *trace.Trace, batchSize int, base HermesConfig) (*ReplaySummary, error) {
	if tr == nil || len(tr.Entries) == 0 {
		return nil, fmt.Errorf("multinode: ReplayTrace requires a non-empty trace")
	}
	if tr.NumShards != c.Nodes() {
		return nil, fmt.Errorf("multinode: trace has %d shards, cluster %d nodes", tr.NumShards, c.Nodes())
	}
	if batchSize <= 0 {
		return nil, fmt.Errorf("multinode: batchSize must be positive")
	}
	loads := tr.BatchLoads(batchSize)
	sum := &ReplaySummary{}
	queries := 0
	for i, load := range loads {
		cfg := base
		// The trailing window may be partial.
		remaining := len(tr.Entries) - i*batchSize
		if remaining > batchSize {
			remaining = batchSize
		}
		cfg.Batch = remaining
		cfg.DeepLoads = load.ShardBatch
		cost, err := c.Hermes(cfg)
		if err != nil {
			return nil, err
		}
		sum.PerBatch = append(sum.PerBatch, cost)
		sum.TotalLatency += cost.Latency
		sum.TotalEnergyJ += cost.EnergyJ
		queries += remaining
	}
	sum.Batches = len(loads)
	if sum.TotalLatency > 0 {
		sum.MeanQPS = float64(queries) / sum.TotalLatency.Seconds()
	}
	return sum, nil
}
