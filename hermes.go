// Package hermes is the public API of the Hermes reproduction: algorithm-
// system co-design for efficient retrieval-augmented generation at scale
// (Shen et al., ISCA 2025).
//
// The package re-exports the stable surface of the internal packages as one
// coherent API:
//
//   - datastore construction: GenerateCorpus, Build (clustered shards),
//     BuildMonolithic, BuildNaiveSplit;
//   - the hierarchical search and its baselines on Store;
//   - query encoding: NewEncoder;
//   - evaluation: NDCGAtK, RecallAtK, exact ground truth via NewFlatIndex;
//   - distributed serving: LaunchLocalCluster, DialCluster;
//   - cluster observability: federated metrics (ClusterView), SLO burn
//     tracking (NewSLOEngine), and the structured event log (NewEventLog);
//   - end-to-end pipeline modeling: RunPipeline with the Baseline /
//     PipeRAG / RAGCache / Hermes strategies;
//   - experiment regeneration: RunExperiment, ExperimentIDs.
//
// See examples/quickstart for a five-minute tour and DESIGN.md for the
// architecture and per-experiment index.
package hermes

import (
	"log"
	"time"

	"repro/internal/corpus"
	"repro/internal/distsearch"
	"repro/internal/encoder"
	"repro/internal/evlog"
	"repro/internal/experiments"
	"repro/internal/flatindex"
	"repro/internal/hermes"
	"repro/internal/ivf"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/rag"
	"repro/internal/rerank"
	"repro/internal/slo"
	"repro/internal/striding"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// ---------------------------------------------------------------------------
// Vectors and corpora.

// Matrix is a dense row-major collection of fixed-dimension float32 vectors.
type Matrix = vec.Matrix

// Neighbor is a scored retrieval candidate (smaller score = closer).
type Neighbor = vec.Neighbor

// NewMatrix allocates an n x dim matrix of zeros.
func NewMatrix(n, dim int) *Matrix { return vec.NewMatrix(n, dim) }

// CorpusSpec configures synthetic corpus generation.
type CorpusSpec = corpus.Spec

// Corpus is a generated datastore: embeddings plus topic structure.
type Corpus = corpus.Corpus

// QuerySet is a batch of generated queries.
type QuerySet = corpus.QuerySet

// ChunkStore maps retrieved chunk IDs to document text.
type ChunkStore = corpus.ChunkStore

// GenerateCorpus builds a synthetic topical corpus (the SPHERE/Common Crawl
// stand-in; see DESIGN.md for why the substitution preserves behaviour).
func GenerateCorpus(spec CorpusSpec) (*Corpus, error) { return corpus.Generate(spec) }

// NewChunkStore creates the ID-to-text store over a corpus.
func NewChunkStore(c *Corpus) *ChunkStore { return corpus.NewChunkStore(c) }

// ---------------------------------------------------------------------------
// Indexes and search.

// Params are the hierarchical-search runtime knobs (paper Table 2).
type Params = hermes.Params

// Store is a disaggregated datastore: similarity-clustered shards, each with
// its own IVF index.
type Store = hermes.Store

// Shard is one disaggregated index cluster.
type Shard = hermes.Shard

// BuildOptions configures disaggregation.
type BuildOptions = hermes.BuildOptions

// SearchStats reports per-query work (shards sampled/deep-searched).
type SearchStats = hermes.SearchStats

// IVFIndex is a single inverted-file index (the monolithic baseline type).
type IVFIndex = ivf.Index

// DefaultParams returns the paper's evaluation configuration: k=5, sample
// nProbe 8, deep nProbe 128, 3 deep clusters.
func DefaultParams() Params { return hermes.DefaultParams() }

// Build disaggregates a corpus into similarity-clustered shards and builds
// one IVF index per shard (Section 4.1 of the paper).
func Build(data *Matrix, opts BuildOptions) (*Store, error) { return hermes.Build(data, opts) }

// BuildNaiveSplit builds the round-robin split baseline.
func BuildNaiveSplit(data *Matrix, numShards, quantBits int) (*Store, error) {
	return hermes.BuildNaiveSplit(data, numShards, quantBits)
}

// BuildMonolithic builds the single-index baseline (quantBits: 0=Flat,
// 8=SQ8, 4=SQ4; nlist 0 uses the paper's 4*sqrt(n) heuristic).
func BuildMonolithic(data *Matrix, quantBits, nlist int, seed int64) (*IVFIndex, error) {
	return hermes.BuildMonolithic(data, quantBits, nlist, seed)
}

// FlatIndex is the exact brute-force index used for ground truth.
type FlatIndex = flatindex.Index

// NewFlatIndex creates an empty exact index.
func NewFlatIndex(dim int) *FlatIndex { return flatindex.New(dim) }

// ---------------------------------------------------------------------------
// Encoding and metrics.

// Encoder deterministically embeds text into vectors (the BGE-large
// stand-in on the serving path).
type Encoder = encoder.HashEncoder

// NewEncoder returns a text encoder producing dim-dimensional embeddings.
func NewEncoder(dim int) *Encoder { return encoder.NewHashEncoder(dim) }

// NDCGAtK scores a ranked retrieval against ranked ground truth in [0,1].
func NDCGAtK(retrieved, truth []int64, k int) float64 { return metrics.NDCGAtK(retrieved, truth, k) }

// RecallAtK is the fraction of true nearest neighbors recovered.
func RecallAtK(retrieved, truth []int64, k int) float64 {
	return metrics.RecallAtK(retrieved, truth, k)
}

// ---------------------------------------------------------------------------
// Distributed serving.

// Cluster is a set of in-process shard nodes serving over localhost TCP.
type Cluster = distsearch.LocalCluster

// Coordinator scatters hierarchical searches across shard nodes.
type Coordinator = distsearch.Coordinator

// DistResult is a distributed query outcome.
type DistResult = distsearch.Result

// LaunchLocalCluster starts one TCP node per shard of the store.
func LaunchLocalCluster(store *Store, logger *log.Logger) (*Cluster, error) {
	return distsearch.LaunchLocal(store, logger)
}

// DialCluster connects a coordinator to shard-node addresses.
func DialCluster(addrs []string, timeout time.Duration) (*Coordinator, error) {
	return distsearch.Dial(addrs, timeout)
}

// ---------------------------------------------------------------------------
// Telemetry.

// TelemetryRegistry is a concurrency-safe metric registry rendering in
// Prometheus text exposition format.
type TelemetryRegistry = telemetry.Registry

// Trace is a request-scoped span recorder; pass it to
// Coordinator.SearchTraced for a per-phase breakdown.
type Trace = telemetry.Trace

// DefaultTelemetry returns the process-wide registry every component
// publishes into unless pointed elsewhere.
func DefaultTelemetry() *TelemetryRegistry { return telemetry.Default }

// NewTrace mints a trace whose ID rides the wire protocol to shard nodes.
func NewTrace() *Trace { return telemetry.NewTrace() }

// QueryRecorder is the fixed-capacity flight recorder of completed queries:
// attach it with distsearch.DialOptions.Recorder or Store.SetRecorder and
// serve it at /debug/queries via ServeTelemetryOpts.
type QueryRecorder = telemetry.Recorder

// QueryRecord is one completed query as kept by a QueryRecorder.
type QueryRecord = telemetry.QueryRecord

// NewQueryRecorder builds a flight recorder holding the last capacity
// queries (256 when <= 0) and pinning those slower than slowThreshold.
func NewQueryRecorder(capacity int, slowThreshold time.Duration) *QueryRecorder {
	return telemetry.NewRecorder(capacity, slowThreshold)
}

// ServeTelemetry starts the admin HTTP server (/metrics, /healthz,
// /debug/pprof) for reg on addr; pass nil to serve the default registry.
func ServeTelemetry(addr string, reg *TelemetryRegistry) (*telemetry.AdminServer, error) {
	return ServeTelemetryOpts(addr, reg, nil)
}

// ServeTelemetryOpts is ServeTelemetry plus an optional flight recorder
// mounted at /debug/queries.
func ServeTelemetryOpts(addr string, reg *TelemetryRegistry, rec *QueryRecorder) (*telemetry.AdminServer, error) {
	if reg == nil {
		reg = telemetry.Default
	}
	return telemetry.ServeAdminOpts(addr, reg, rec)
}

// ---------------------------------------------------------------------------
// Cluster observability: metrics federation, SLOs, and the event log.

// ClusterView is the coordinator's federated metric snapshot: every
// reachable node's export merged with the coordinator's own registry, plus
// per-node breakdowns and the shards that could not contribute.
type ClusterView = distsearch.ClusterView

// NodeFamilies is one node's contribution to a ClusterView.
type NodeFamilies = distsearch.NodeFamilies

// SLOObjective declares one service-level objective (latency@target or
// availability@target) evaluated over multi-window sliding counters.
type SLOObjective = slo.Objective

// SLOEngine tracks objectives and their fast/slow burn rates; serve it at
// /debug/slo via its ServeSLO method or publish hermes_slo_* metrics with
// CollectInto.
type SLOEngine = slo.Engine

// SLOReport is one objective's current compliance and burn rates.
type SLOReport = slo.Report

// NewSLOEngine returns an engine with the default fast (5m) and slow (1h)
// burn windows; wire objectives with AddObjective or build one straight
// from a Coordinator via Coordinator.NewSLOEngine.
func NewSLOEngine() *SLOEngine { return slo.NewEngine() }

// ParseSLOObjectives parses the -slo flag syntax:
// "<name>=latency:<dur>@<target>,<name>=availability@<target>".
func ParseSLOObjectives(s string) ([]SLOObjective, error) { return slo.ParseObjectives(s) }

// WriteSLOBurnTable renders reports as the fixed-width burn-rate table
// printed by hermes-coordinator -stats.
func WriteSLOBurnTable(w interface{ Write([]byte) (int, error) }, reports []SLOReport) {
	slo.WriteBurnTable(w, reports)
}

// EventLog is the fixed-capacity structured event ring (leveled key-value
// events with per-name rate limiting); serve it at /debug/events via its
// ServeEvents method. A nil *EventLog is safe to emit into and costs
// nothing.
type EventLog = evlog.Log

// EventLogConfig sizes an EventLog.
type EventLogConfig = evlog.Config

// Event is one recorded entry in an EventLog.
type Event = evlog.Event

// NewEventLog builds an event ring (capacity 256 when cfg is zero).
func NewEventLog(cfg EventLogConfig) *EventLog { return evlog.New(cfg) }

// ---------------------------------------------------------------------------
// Reranking and strided generation.

// Reranker re-scores retrieved candidates against full-precision vectors.
type Reranker = rerank.Reranker

// RerankMetric selects the re-scoring function.
type RerankMetric = rerank.Metric

// Rerank metrics.
const (
	RerankInnerProduct = rerank.InnerProduct
	RerankL2           = rerank.L2
	RerankCosine       = rerank.Cosine
)

// NewReranker builds a reranker whose IDs index rows of m.
func NewReranker(metric RerankMetric, m *Matrix) *Reranker {
	return rerank.NewFromMatrix(metric, m)
}

// TextStore bundles a text-embedded disaggregated store with its chunk
// text, encoder, and reranker — the serving path for free-text queries.
type TextStore = striding.TextStore

// BuildTextStore hash-embeds every chunk's text and disaggregates the result.
func BuildTextStore(c *Corpus, dim, shards int) (*TextStore, error) {
	return striding.BuildTextStore(c, dim, shards)
}

// StridingConfig assembles a retrieval-strided generation session.
type StridingConfig = striding.Config

// StridingSession runs the Figure 3 online loop: retrieve, augment,
// generate a stride, refresh the query, repeat.
type StridingSession = striding.Session

// StridingResult is a completed strided generation.
type StridingResult = striding.Result

// NewStridingSession validates and builds a session.
func NewStridingSession(cfg StridingConfig) (*StridingSession, error) {
	return striding.NewSession(cfg)
}

// TopicQueryText synthesizes a text query about a corpus topic.
func TopicQueryText(topic, words int, seed int64) string {
	return corpus.QueryText(topic, words, seed)
}

// ---------------------------------------------------------------------------
// Load generation.

// LoadConfig drives an open-loop Poisson load test.
type LoadConfig = loadgen.Config

// LoadReport summarizes a load test (achieved QPS, sojourn percentiles).
type LoadReport = loadgen.Report

// RunLoad generates Poisson arrivals at the target rate through fn.
func RunLoad(cfg LoadConfig, fn func(queryIdx int) error) (*LoadReport, error) {
	return loadgen.Run(cfg, fn)
}

// ---------------------------------------------------------------------------
// End-to-end pipeline modeling.

// PipelineConfig describes one RAG serving scenario.
type PipelineConfig = rag.PipelineConfig

// PipelineReport is the modeled outcome (TTFT, E2E, energy ledger).
type PipelineReport = rag.Report

// RunPipeline evaluates a serving scenario analytically.
func RunPipeline(cfg PipelineConfig) (*PipelineReport, error) { return rag.Run(cfg) }

// ---------------------------------------------------------------------------
// Experiments.

// ExperimentTable is one regenerated table/figure series.
type ExperimentTable = experiments.Table

// ExperimentScale sizes the measured experiments.
type ExperimentScale = experiments.Scale

// ExperimentIDs lists every reproducible table and figure.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one of the paper's tables or figures.
func RunExperiment(id string, sc ExperimentScale) ([]*ExperimentTable, error) {
	return experiments.Run(id, sc)
}

// SmallExperimentScale finishes measured experiments in seconds.
func SmallExperimentScale() ExperimentScale { return experiments.SmallScale() }

// FullExperimentScale is the larger configuration used by cmd/hermes-bench.
func FullExperimentScale() ExperimentScale { return experiments.FullScale() }
