package lint

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file is the cross-package fact engine: a monotone-fixpoint framework
// over the module's statically resolved call graph. Each fact is a lattice
// registered like an analyzer (see Lattices) and computed once per driver
// run, before any analyzer sees a package:
//
//   - io:       the function transitively performs I/O or blocks on the
//     outside world (network, file system, sleeps, stream codecs)
//   - alloc:    the function heap-allocates on its straight-line path —
//     allocation sites or allocating calls NOT gated behind a conditional
//   - acquires: the set of mutex class identities (see mutexID) the
//     function may take, directly or through callees
//   - blocks:   the function contains a channel/select/sync rendezvous —
//     the termination signals goroutineleak looks for
//   - netio:    the function transitively blocks on the network (sockets,
//     TLS, stream codecs driving a connection) — a strict subset of io,
//     the "RPC/exchange path" ctxflow audits
//   - cancel:   the function has a cancellation escape hatch: a
//     context.Context parameter, a ctx.Done/Err check, or a deadline set
//     on a connection (directly or through a callee)
//
// All lattices are monotone (facts only turn on / sets only grow), so the
// fixpoint is order-independent and the result deterministic. Calls that
// cannot be resolved statically (function values, module-defined interface
// methods) contribute no fact — the engine under-approximates rather than
// guess. Propagation is lattice-specific in one dimension: the io, blocks,
// and acquires facts flow through every resolved call, while alloc flows
// only through ungated calls outside function literals, because the fact it
// encodes is "the common path allocates", and a call inside an `if traced`
// body is exactly the gated slow path the hot-path contract permits.
//
// On top of the acquires fixpoint the engine extracts the module-wide
// lock-acquisition-order graph (LockEdges): an edge A -> B is witnessed
// wherever a function acquires B — directly or by calling something whose
// acquires set contains B — while holding A. The lockorder analyzer reports
// cycles in this graph.

// LatticeInfo describes one registered fact lattice for -list.
type LatticeInfo struct {
	Name string
	Doc  string
}

// Lattices returns the registered fact lattices in stable order.
func Lattices() []LatticeInfo {
	return []LatticeInfo{
		{"io", "function transitively performs I/O or blocks on the outside world (network, files, sleeps, stream codecs, //hermes:io declarations)"},
		{"alloc", "function heap-allocates on its straight-line path (sites and calls not gated behind a conditional)"},
		{"acquires", "set of mutex class identities (type.field or package var) the function may acquire, transitively"},
		{"blocks", "function contains a channel, select, or sync rendezvous (WaitGroup/Cond/ctx.Done) — a termination signal"},
		{"netio", "function transitively blocks on the network (sockets, TLS, stream codecs driving a connection)"},
		{"cancel", "function has a cancellation escape hatch: a context.Context parameter, ctx.Done/Err, or a connection deadline, transitively"},
	}
}

// Facts holds the cross-package fact maps computed once per driver run over
// every loaded module package, before any analyzer runs.
type Facts struct {
	fset     *token.FileSet
	io       map[*types.Func]bool
	alloc    map[*types.Func]bool
	blocks   map[*types.Func]bool
	netio    map[*types.Func]bool
	cancel   map[*types.Func]bool
	acquires map[*types.Func][]string
	edges    []LockEdge
	edgeSeen map[[2]string]bool
}

// LockEdge is one witnessed lock-order edge: while From was held, To was
// acquired — directly, or transitively through the call named by Via.
type LockEdge struct {
	From string // mutex identity held
	To   string // mutex identity acquired under it
	Pos  token.Pos
	Func string // "pkgpath.Func" containing the witness
	Via  string // callee display name when the acquisition is transitive, else ""
}

// PerformsIO reports whether fn is known to (transitively) perform I/O or
// block: either a standard-library I/O primitive or a module function whose
// body reaches one. A nil Facts answers using the stdlib model alone.
func (fc *Facts) PerformsIO(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if stdlibIO(fn) {
		return true
	}
	return fc != nil && fc.io[fn]
}

// Allocates reports whether fn is known to heap-allocate on its
// straight-line (ungated) path: an allocating stdlib helper, or a module
// function whose ungated body reaches an allocation site.
func (fc *Facts) Allocates(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if stdlibAlloc(fn) {
		return true
	}
	return fc != nil && fc.alloc[fn]
}

// Blocks reports whether fn is known to (transitively) reach a channel,
// select, or sync rendezvous — the reachable-termination-signal test
// goroutineleak applies to spawned functions.
func (fc *Facts) Blocks(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if stdlibBlocks(fn) {
		return true
	}
	return fc != nil && fc.blocks[fn]
}

// NetIO reports whether fn is known to (transitively) block on the network:
// a socket/TLS primitive or stream codec, or a module function whose body
// reaches one. A nil Facts answers using the stdlib model alone.
func (fc *Facts) NetIO(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if stdlibNetIO(fn) {
		return true
	}
	return fc != nil && fc.netio[fn]
}

// Cancelable reports whether fn is known to have a cancellation escape
// hatch on some path: a context.Context parameter, a ctx.Done/Err check, or
// a connection deadline set directly or through a callee.
func (fc *Facts) Cancelable(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if stdlibCancel(fn) {
		return true
	}
	return fc != nil && fc.cancel[fn]
}

// Acquires returns the sorted mutex class identities fn may acquire,
// directly or through callees. Nil Facts (or an unknown fn) answers nil.
func (fc *Facts) Acquires(fn *types.Func) []string {
	if fc == nil || fn == nil {
		return nil
	}
	return fc.acquires[fn]
}

// LockEdges returns the module-wide lock-acquisition-order graph, one edge
// per distinct (From, To) pair, first witness wins, in deterministic order.
func (fc *Facts) LockEdges() []LockEdge {
	if fc == nil {
		return nil
	}
	return fc.edges
}

// IOFuncs returns the exported module functions carrying the performs-I/O
// fact, as "pkgpath.FuncName" strings in sorted order — a stable surface
// for tests and the original -facts view.
func (fc *Facts) IOFuncs() []string {
	if fc == nil {
		return nil
	}
	var out []string
	for fn := range fc.io {
		if !fn.Exported() || fn.Pkg() == nil {
			continue
		}
		out = append(out, fn.Pkg().Path()+"."+funcDisplayName(fn))
	}
	sort.Strings(out)
	return out
}

func funcDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		// The caller prefixes the package path, so render the receiver
		// unqualified: pkg/path.Recv.Method, not pkg/path.pkg.Recv.Method.
		s := types.TypeString(sig.Recv().Type(), func(*types.Package) string { return "" })
		return strings.TrimPrefix(strings.TrimPrefix(s, "*"), ".") + "." + fn.Name()
	}
	return fn.Name()
}

// qualifiedName is "pkgpath.Func" / "pkgpath.Recv.Method".
func qualifiedName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + funcDisplayName(fn)
}

// callSite is one statically resolved call out of a function body, with the
// lexical context the per-lattice propagation rules consult.
type callSite struct {
	fn     *types.Func
	gated  bool // inside the body of an enclosing if/case/select clause
	inLit  bool // inside a function literal (runs on its own schedule)
	goCall bool // the direct call of a go statement (runs elsewhere)
}

// declInfo pairs a module function with its body and resolved call sites.
type declInfo struct {
	fn    *types.Func
	fd    *ast.FuncDecl
	pkg   *Package
	calls []callSite
}

// ComputeFacts builds the cross-package fact set over pkgs (typically
// Loader.Cached(): every module package reached while loading). It walks
// each function body once to record static call edges and per-lattice local
// facts, runs every lattice to fixpoint, then extracts the lock-order graph
// under the final acquires sets.
func ComputeFacts(pkgs []*Package) *Facts {
	fc := &Facts{
		io:       make(map[*types.Func]bool),
		alloc:    make(map[*types.Func]bool),
		blocks:   make(map[*types.Func]bool),
		netio:    make(map[*types.Func]bool),
		cancel:   make(map[*types.Func]bool),
		acquires: make(map[*types.Func][]string),
		edgeSeen: make(map[[2]string]bool),
	}
	var decls []*declInfo
	for _, pkg := range pkgs {
		if pkg == nil || pkg.Info == nil {
			continue
		}
		if fc.fset == nil {
			fc.fset = pkg.Fset
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				decls = append(decls, &declInfo{
					fn:    fn,
					fd:    fd,
					pkg:   pkg,
					calls: collectCalls(pkg.Info, fd),
				})
			}
		}
	}

	// Bool lattices. io and blocks flow through every resolved call; alloc
	// only through ungated, non-literal, non-go calls (see file comment).
	anyCall := func(callSite) bool { return true }
	straightLine := func(c callSite) bool { return !c.gated && !c.inLit && !c.goCall }
	// The io lattice's only local (non-callee) seed is the //hermes:io
	// directive: a function whose doc comment carries it is declared to be
	// an I/O edge even when the analysis cannot see one — the structured
	// event log's Emit, whose writes happen on a later scrape, is the
	// canonical case. log.Printf and friends need no directive; the log
	// package is already in the stdlib io seed.
	fixBool(decls, fc.io, stdlibIO,
		func(di *declInfo) bool { return hasDirective("hermes:io", di.fd.Doc) }, anyCall)
	fixBool(decls, fc.blocks, stdlibBlocks,
		func(di *declInfo) bool { return blocksLocally(di.pkg.Info, di.fd.Body) }, anyCall)
	fixBool(decls, fc.alloc, stdlibAlloc,
		func(di *declInfo) bool { return len(allocSites(di.pkg.Info, di.fd)) > 0 }, straightLine)
	// netio has no local seed beyond its stdlib model, and does not flow
	// through go statements or function literals: a function that LAUNCHES
	// a blocking loop returns immediately — the spawned goroutine blocks,
	// not the caller ctxflow would flag. cancel's local seed is a
	// context.Context parameter — the function RECEIVED the means to be
	// cancelled, whatever it does with it — and it flows through every
	// call: one deadline anywhere on the path (even armed in a spawned
	// worker) is an escape hatch (the engine does not track argument flow,
	// so both choices over-approximate toward fewer findings).
	synchronous := func(c callSite) bool { return !c.inLit && !c.goCall }
	fixBool(decls, fc.netio, stdlibNetIO,
		func(*declInfo) bool { return false }, synchronous)
	fixBool(decls, fc.cancel, stdlibCancel,
		func(di *declInfo) bool { return hasContextParam(di.fn) }, anyCall)

	// Acquires: set-union fixpoint over mutex identities. Calls inside
	// function literals and go statements run on another goroutine's stack
	// and do not make THIS function an acquirer.
	acq := make(map[*types.Func]map[string]bool)
	for _, di := range decls {
		ids := make(map[string]bool)
		for _, id := range acquiredMutexIDs(di.pkg.Info, di.fd) {
			ids[id] = true
		}
		acq[di.fn] = ids
	}
	for changed := true; changed; {
		changed = false
		for _, di := range decls {
			have := acq[di.fn]
			for _, c := range di.calls {
				if c.inLit || c.goCall {
					continue
				}
				for id := range acq[c.fn] {
					if !have[id] {
						have[id] = true
						changed = true
					}
				}
			}
		}
	}
	for fn, ids := range acq {
		if len(ids) == 0 {
			continue
		}
		sorted := make([]string, 0, len(ids))
		for id := range ids {
			sorted = append(sorted, id)
		}
		sort.Strings(sorted)
		fc.acquires[fn] = sorted
	}

	// Lock-order graph, under the final acquires sets. Decl order is
	// deterministic (sorted packages, file order, source order), so the
	// first-witness-wins dedup is too.
	for _, di := range decls {
		fc.collectLockEdges(di)
	}
	return fc
}

// fixBool runs one bool lattice to fixpoint: val(fn) = local(fn) OR any
// use-eligible callee with seed or val.
func fixBool(decls []*declInfo, val map[*types.Func]bool, seed func(*types.Func) bool, local func(*declInfo) bool, use func(callSite) bool) {
	for _, di := range decls {
		if local(di) {
			val[di.fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, di := range decls {
			if val[di.fn] {
				continue
			}
			for _, c := range di.calls {
				if !use(c) {
					continue
				}
				if seed(c.fn) || val[c.fn] {
					val[di.fn] = true
					changed = true
					break
				}
			}
		}
	}
}

// collectCalls records the statically resolved calls out of fd with their
// lexical context (gated / in a function literal / a go statement's call).
func collectCalls(info *types.Info, fd *ast.FuncDecl) []callSite {
	var out []callSite
	var stack []ast.Node
	litDepth := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			if _, ok := stack[len(stack)-1].(*ast.FuncLit); ok {
				litDepth--
			}
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if _, ok := n.(*ast.FuncLit); ok {
			litDepth++
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil {
			return true
		}
		goCall := false
		if len(stack) >= 2 {
			if g, ok := stack[len(stack)-2].(*ast.GoStmt); ok && g.Call == call {
				goCall = true
			}
		}
		out = append(out, callSite{
			fn:     callee,
			gated:  gatedByConditional(stack, call.Pos()),
			inLit:  litDepth > 0,
			goCall: goCall,
		})
		return true
	})
	return out
}

// collectLockEdges walks one function with the held-set walker, adding a
// lock-order edge for every acquisition (direct or via a callee's acquires
// set) made while another identified mutex is held.
func (fc *Facts) collectLockEdges(di *declInfo) {
	info := di.pkg.Info
	ids := make(map[string]string) // receiver source text -> mutex identity
	lw := &lockWalker{
		info: info,
		onAcquire: func(l heldLock, held []heldLock) {
			id := mutexID(info, l.sel)
			ids[l.expr] = id
			for _, h := range held {
				fc.addEdge(ids[h.expr], id, l.pos, di.fn, "")
			}
		},
		onNode: func(n ast.Node, held []heldLock) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := calleeFunc(info, call)
			if callee == nil {
				return
			}
			for _, to := range fc.acquires[callee] {
				for _, h := range held {
					fc.addEdge(ids[h.expr], to, call.Pos(), di.fn, calleeDisplay(callee))
				}
			}
		},
	}
	lw.stmts(di.fd.Body.List, nil)
}

func (fc *Facts) addEdge(from, to string, pos token.Pos, in *types.Func, via string) {
	if from == "" || to == "" || from == to {
		// Unidentified mutexes (locals, anonymous types) carry no class
		// identity; same-class self-edges are instance conflation
		// (shard[i].mu then shard[j].mu), not an ordering fact.
		return
	}
	key := [2]string{from, to}
	if fc.edgeSeen[key] {
		return
	}
	fc.edgeSeen[key] = true
	fc.edges = append(fc.edges, LockEdge{From: from, To: to, Pos: pos, Func: qualifiedName(in), Via: via})
}

// --- stdlib seed models ---

// ioPackages are standard-library packages whose every function and method
// is treated as performing (or potentially blocking on) I/O. The set is
// deliberately coarse: holding a mutex across *any* call into these packages
// is at best suspicious, and a false positive costs one reviewed
// //lint:ignore line.
var ioPackages = map[string]bool{
	"net":          true,
	"os":           true,
	"os/exec":      true,
	"os/signal":    true,
	"io":           true,
	"io/fs":        true,
	"io/ioutil":    true,
	"bufio":        true,
	"syscall":      true,
	"database/sql": true,
	"crypto/tls":   true,
	"crypto/rand":  true,
	"log":          true,
	"log/slog":     true,
}

// ioFuncs lists (package, name) pairs treated as I/O in packages that are
// otherwise pure: blocking sleeps, the stream codecs (whose Encode/Decode
// drive an underlying reader/writer), and fmt's writer-directed helpers.
// fmt.Sprintf and friends stay exempt — they allocate but never block
// (they seed the alloc lattice instead; see allocFuncs).
var ioFuncs = map[[2]string]bool{
	{"time", "Sleep"}:   true,
	{"fmt", "Print"}:    true,
	{"fmt", "Printf"}:   true,
	{"fmt", "Println"}:  true,
	{"fmt", "Fprint"}:   true,
	{"fmt", "Fprintf"}:  true,
	{"fmt", "Fprintln"}: true,
	{"fmt", "Scan"}:     true,
	{"fmt", "Scanf"}:    true,
	{"fmt", "Scanln"}:   true,
	{"fmt", "Fscan"}:    true,
	{"fmt", "Fscanf"}:   true,
	{"fmt", "Fscanln"}:  true,
}

// ioCodecPackages are packages whose Encoder/Decoder methods stream to an
// underlying writer/reader (network or file in every serving-path use).
// Their pure value<->bytes functions (json.Marshal, ...) carry no fact.
var ioCodecPackages = map[string]bool{
	"encoding/gob":  true,
	"encoding/json": true,
	"encoding/xml":  true,
}

// stdlibIO is the io lattice's seed predicate: does this standard-library
// (or otherwise AST-less) function perform I/O by the curated model above?
func stdlibIO(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	if ioPackages[path] || strings.HasPrefix(path, "net/") {
		return true
	}
	if ioFuncs[[2]string{path, fn.Name()}] {
		return true
	}
	if ioCodecPackages[path] {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := receiverName(sig.Recv().Type())
			if strings.HasSuffix(recv, "Encoder") || strings.HasSuffix(recv, "Decoder") {
				return true
			}
		}
	}
	return false
}

// stdlibBlocks is the blocks lattice's seed: standard-library rendezvous
// and termination-signal primitives. time.Sleep is deliberately absent — a
// sleep loop has no exit rendezvous, which is exactly what goroutineleak
// should flag.
func stdlibBlocks(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	name := fn.Name()
	switch pkg.Path() {
	case "sync":
		switch recvTypeName(fn) {
		case "WaitGroup":
			return name == "Wait" || name == "Done"
		case "Cond":
			return name == "Wait" || name == "Signal" || name == "Broadcast"
		}
	case "context":
		// ctx.Done()/ctx.Err() in a spawned function are cancellation
		// checks — the termination signals the leak check looks for.
		return name == "Done" || name == "Err"
	}
	return false
}

// netBlockingPrefixes identify the net/crypto-tls functions and methods
// that can block on a peer indefinitely: connects, accepts, reads, writes,
// serve loops, resolver queries, HTTP client calls. Everything else in
// those packages — Close, Addr, mux construction, option setters, bind-only
// Listen — returns without waiting on the network and carries no netio
// fact. (SetDeadline and friends start with "Set" and fall outside the
// list; they seed the cancel lattice instead.)
var netBlockingPrefixes = []string{
	"Dial", "Accept", "Read", "Write", "Serve", "ListenAndServe",
	"Lookup", "Resolve", "Do", "Get", "Post", "Head", "RoundTrip",
	"Handshake", "Exchange", "Shutdown",
}

// stdlibNetIO is the netio lattice's seed: standard-library functions that
// block on a socket until a peer acts. Deliberately narrower than the io
// seed twice over — file I/O, logging, and printing are irrelevant to the
// RPC-cancellation contract ctxflow enforces, and within the net packages
// only the peer-blocking operations count (netBlockingPrefixes). Stream
// codec Encoder/Decoder methods are included because every serving-path
// use drives a net.Conn.
func stdlibNetIO(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	if path == "net" || strings.HasPrefix(path, "net/") || path == "crypto/tls" {
		name := fn.Name()
		for _, prefix := range netBlockingPrefixes {
			if strings.HasPrefix(name, prefix) {
				return true
			}
		}
		return false
	}
	if ioCodecPackages[path] {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := receiverName(sig.Recv().Type())
			if strings.HasSuffix(recv, "Encoder") || strings.HasSuffix(recv, "Decoder") {
				return true
			}
		}
	}
	return false
}

// stdlibCancel is the cancel lattice's seed: the standard-library
// primitives that give a blocking path an exit — connection deadlines,
// bounded dials, and context plumbing. A gated SetDeadline counts (the
// contract is "an opt-in deadline exists", not "it is always armed").
func stdlibCancel(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	name := fn.Name()
	switch pkg.Path() {
	case "net", "crypto/tls":
		switch name {
		case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
			return true // conn/listener deadline methods, concrete and interface alike
		case "DialTimeout", "DialContext":
			return true
		}
	case "context":
		switch name {
		case "Done", "Err", "WithCancel", "WithTimeout", "WithDeadline":
			return true
		}
	}
	return false
}

// hasContextParam reports whether fn's signature takes a context.Context
// (conventionally first, but any position counts).
func hasContextParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if n := namedOf(sig.Params().At(i).Type()); n != nil {
			obj := n.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
				return true
			}
		}
	}
	return false
}

// recvTypeName is the bare named-type name of fn's receiver ("WaitGroup"
// for (*sync.WaitGroup).Wait), or "" for plain functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if n := namedOf(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// blocksLocally reports whether the body contains a channel operation:
// send, receive, select, range over a channel, or close.
func blocksLocally(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// --- -facts dump ---

// FactsDump is the machine-readable -facts view: every module function
// carrying each fact (exported or not), the acquires sets, and the
// lock-order graph, all in sorted order so two runs are byte-identical.
type FactsDump struct {
	IO        []string       `json:"io"`
	Alloc     []string       `json:"alloc"`
	Blocks    []string       `json:"blocks"`
	NetIO     []string       `json:"netio"`
	Cancel    []string       `json:"cancel"`
	Acquires  []AcquireJSON  `json:"acquires"`
	LockEdges []LockEdgeJSON `json:"lock_edges"`
}

// AcquireJSON is one function's transitive mutex acquisition set.
type AcquireJSON struct {
	Func    string   `json:"func"`
	Mutexes []string `json:"mutexes"`
}

// LockEdgeJSON is one lock-order edge with its witness position rendered
// module-relative.
type LockEdgeJSON struct {
	From string `json:"from"`
	To   string `json:"to"`
	Func string `json:"func"`
	Via  string `json:"via,omitempty"`
	Pos  string `json:"pos"`
}

// Dump renders the fact set for -facts. moduleRoot anchors witness
// positions the way Report anchors finding paths.
func (fc *Facts) Dump(moduleRoot string) *FactsDump {
	d := &FactsDump{
		IO:        []string{},
		Alloc:     []string{},
		Blocks:    []string{},
		NetIO:     []string{},
		Cancel:    []string{},
		Acquires:  []AcquireJSON{},
		LockEdges: []LockEdgeJSON{},
	}
	if fc == nil {
		return d
	}
	names := func(m map[*types.Func]bool) []string {
		out := make([]string, 0, len(m))
		for fn := range m {
			out = append(out, qualifiedName(fn))
		}
		sort.Strings(out)
		return out
	}
	d.IO = names(fc.io)
	d.Alloc = names(fc.alloc)
	d.Blocks = names(fc.blocks)
	d.NetIO = names(fc.netio)
	d.Cancel = names(fc.cancel)
	for fn, ids := range fc.acquires {
		d.Acquires = append(d.Acquires, AcquireJSON{Func: qualifiedName(fn), Mutexes: ids})
	}
	sort.Slice(d.Acquires, func(i, j int) bool { return d.Acquires[i].Func < d.Acquires[j].Func })
	for _, e := range fc.edges {
		pos := ""
		if fc.fset != nil {
			p := fc.fset.Position(e.Pos)
			pos = moduleRel(moduleRoot, p.Filename) + ":" + strconv.Itoa(p.Line)
		}
		d.LockEdges = append(d.LockEdges, LockEdgeJSON{From: e.From, To: e.To, Func: e.Func, Via: e.Via, Pos: pos})
	}
	sort.Slice(d.LockEdges, func(i, j int) bool {
		a, b := d.LockEdges[i], d.LockEdges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return d
}

// MarshalIndent renders the dump as stable, human-diffable JSON with a
// trailing newline (golden files and CI artifacts want byte-exactness).
func (d *FactsDump) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// calleeFunc statically resolves a call expression to the *types.Func it
// invokes, or nil for function values, type conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
