package corpus

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
)

// ChunkStore maps chunk IDs to document text, the "Chunk Datastore" box of
// the paper's Figure 3: after the index returns document IDs, the store is
// consulted to fetch the text prepended to the LLM prompt.
//
// Text is materialized lazily and deterministically from the chunk's topic
// and ID so that a trillion-token store never needs the full text resident —
// matching how the experiments only touch the chunks they retrieve. Each
// topic draws most of its words from a topic-specific vocabulary, so chunk
// text carries the same topical signal as the chunk's embedding; this is
// what lets the text → hash-embedding → index pipeline (internal/striding,
// cmd/hermes-search) retrieve topically.
type ChunkStore struct {
	tokensPerChunk int
	topics         []int
	mu             sync.Mutex
	cache          map[int64]string
	cacheCap       int
}

// NewChunkStore creates a store over the corpus' chunks.
func NewChunkStore(c *Corpus) *ChunkStore {
	return &ChunkStore{
		tokensPerChunk: c.Spec.TokensPerChunk,
		topics:         c.Topics,
		cache:          make(map[int64]string),
		cacheCap:       4096,
	}
}

// Len returns the number of chunks addressable in the store.
func (s *ChunkStore) Len() int { return len(s.topics) }

// TokensPerChunk returns the chunk granularity in tokens.
func (s *ChunkStore) TokensPerChunk() int { return s.tokensPerChunk }

// Topic returns the latent topic of chunk id.
func (s *ChunkStore) Topic(id int64) (int, error) {
	if id < 0 || id >= int64(len(s.topics)) {
		return 0, fmt.Errorf("corpus: chunk %d out of range [0,%d)", id, len(s.topics))
	}
	return s.topics[id], nil
}

// Get returns the text of chunk id. It errors on out-of-range IDs.
func (s *ChunkStore) Get(id int64) (string, error) {
	if id < 0 || id >= int64(len(s.topics)) {
		return "", fmt.Errorf("corpus: chunk %d out of range [0,%d)", id, len(s.topics))
	}
	s.mu.Lock()
	if txt, ok := s.cache[id]; ok {
		s.mu.Unlock()
		return txt, nil
	}
	s.mu.Unlock()
	// Synthesis is CPU-heavy and deterministic, so it runs outside the
	// lock: two goroutines missing on the same id redundantly build the
	// same text, which is cheaper than serializing every miss behind one
	// mutex.
	txt := synthesizeChunk(id, s.topics[id], s.tokensPerChunk)
	s.mu.Lock()
	if len(s.cache) < s.cacheCap {
		s.cache[id] = txt
	}
	s.mu.Unlock()
	return txt, nil
}

// GetMany fetches several chunks, preserving order.
func (s *ChunkStore) GetMany(ids []int64) ([]string, error) {
	out := make([]string, len(ids))
	for i, id := range ids {
		txt, err := s.Get(id)
		if err != nil {
			return nil, err
		}
		out[i] = txt
	}
	return out, nil
}

// sharedVocabulary is the domain-general word stock every topic mixes in.
var sharedVocabulary = strings.Fields(`
retrieval augmented generation datastore index cluster search vector
embedding query document token chunk model inference batch stride cache
pipeline memory scale system design network node shard probe rank
`)

// topicVocabularySize is the number of topic-specific terms per topic.
const topicVocabularySize = 24

// topicFraction is the share of chunk tokens drawn from the topic's own
// vocabulary (the rest come from the shared stock).
const topicFraction = 0.7

// TopicVocabulary returns topic t's specific terms. Terms are synthetic but
// deterministic ("t3w07"-style), giving every topic a disjoint lexical
// signature for hash-embedding retrieval.
func TopicVocabulary(topic int) []string {
	out := make([]string, topicVocabularySize)
	for w := range out {
		out[w] = fmt.Sprintf("t%dw%02d", topic, w)
	}
	return out
}

// QueryText synthesizes a plausible text query about a topic: a handful of
// the topic's terms plus shared words, the way a user query shares
// vocabulary with the documents that answer it.
func QueryText(topic, words int, seed int64) string {
	rng := rand.New(rand.NewSource(seed*7919 + int64(topic)))
	tv := TopicVocabulary(topic)
	parts := make([]string, words)
	for i := range parts {
		if rng.Float64() < topicFraction {
			parts[i] = tv[rng.Intn(len(tv))]
		} else {
			parts[i] = sharedVocabulary[rng.Intn(len(sharedVocabulary))]
		}
	}
	return strings.Join(parts, " ")
}

func synthesizeChunk(id int64, topic, tokens int) string {
	rng := rand.New(rand.NewSource(id*1000003 + int64(topic)))
	tv := TopicVocabulary(topic)
	var b strings.Builder
	fmt.Fprintf(&b, "[chunk %d topic %d]", id, topic)
	for i := 0; i < tokens-3; i++ {
		b.WriteByte(' ')
		if rng.Float64() < topicFraction {
			b.WriteString(tv[rng.Intn(len(tv))])
		} else {
			b.WriteString(sharedVocabulary[rng.Intn(len(sharedVocabulary))])
		}
	}
	return b.String()
}
