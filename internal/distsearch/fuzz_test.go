package distsearch

// Fuzz targets for the two wire envelopes. Both ends of the protocol feed a
// gob decoder straight from a TCP peer (Node.serveConn, Coordinator), so the
// decode path must tolerate arbitrary bytes: a malformed or truncated stream
// may only yield an error, never a panic or a runaway allocation. The seeds
// are valid encodes of fully-populated envelopes plus deliberately corrupted
// variants of them — truncation, bit flips, and an inflated gob length
// prefix — so even `go test` (which runs only the seed corpus) exercises the
// interesting classes.

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/vec"
)

// fuzzInputCap bounds the byte stream handed to the decoder. gob length
// prefixes are attacker-controlled, but the decoder's own allocation is
// bounded by input length for the sizes we feed; the cap keeps the fuzz
// engine from chasing multi-megabyte inputs that only slow exploration.
const fuzzInputCap = 1 << 20

// seedRequest is a fully-populated Request: every field non-zero so the gob
// stream carries every field delta and the corrupted variants can land in
// any of them.
func seedRequest() *Request {
	return &Request{
		Op:      OpDeepBatch,
		Query:   []float32{0.25, -1, 3.5},
		K:       10,
		NProbe:  32,
		Queries: [][]float32{{1, 2}, {3, 4}},
		ID:      -77,
		TraceID: 0xfeedbeef,
		Grouped: true,
	}
}

func seedResponse() *Response {
	return &Response{
		Err:          "boom",
		ShardID:      3,
		Size:         1024,
		Dim:          8,
		Neighbors:    []vec.Neighbor{{ID: 5, Score: 0.5}},
		Batch:        [][]vec.Neighbor{{{ID: 1, Score: 1}}, nil},
		Centroid:     []float32{0.1, 0.2},
		OK:           true,
		SampleServed: 9, DeepServed: 8, MutationsServed: 7,
		Tombstones:  2,
		ServerNanos: 12345,
		Telemetry:   map[string]float64{"up": 1},
		Scanned:     4096,
		Spans:       []WireSpan{{Name: "list_scan", Node: 3, OffsetNanos: 10, DurNanos: 20}},
		Families: []telemetry.FamilySnapshot{{
			Name: "hermes_test_total", Kind: telemetry.KindCounter,
			Series: []telemetry.SeriesSnapshot{{Value: 42}},
		}},
		Costs:       []telemetry.QueryCost{{Cells: 2, CodesExclusive: 100, CodesAmortized: 50}},
		GroupedExec: true,
	}
}

// mustEncode renders v as one gob stream (descriptors + value), the exact
// bytes a fresh per-connection encoder would emit.
func mustEncode(f *testing.F, v any) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		f.Fatalf("encoding seed: %v", err)
	}
	return buf.Bytes()
}

// addSeeds registers the valid stream plus corrupted variants: a truncated
// prefix, a flipped byte in the middle (type descriptor region) and near the
// end (value region), and a rewritten first byte — gob's message length —
// claiming a far larger payload than follows.
func addSeeds(f *testing.F, valid []byte) {
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	for _, at := range []int{len(valid) / 2, len(valid) - 2} {
		mut := bytes.Clone(valid)
		mut[at] ^= 0x40
		f.Add(mut)
	}
	huge := bytes.Clone(valid)
	huge[0] = 0x7f
	f.Add(huge)
	f.Add([]byte{})
}

func FuzzRequestDecode(f *testing.F) {
	addSeeds(f, mustEncode(f, seedRequest()))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzInputCap {
			t.Skip("beyond decode input cap")
		}
		var req Request
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&req); err != nil {
			return
		}
		// Anything that decoded must re-encode: the node echoes request
		// fields (Queries alignment, TraceID) into its handling path and a
		// decoded envelope that cannot round-trip would wedge serveConn.
		if err := gob.NewEncoder(bytes.NewBuffer(nil)).Encode(&req); err != nil {
			t.Fatalf("decoded Request does not re-encode: %v", err)
		}
	})
}

func FuzzResponseDecode(f *testing.F) {
	addSeeds(f, mustEncode(f, seedResponse()))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzInputCap {
			t.Skip("beyond decode input cap")
		}
		var resp Response
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&resp); err != nil {
			return
		}
		if err := gob.NewEncoder(bytes.NewBuffer(nil)).Encode(&resp); err != nil {
			t.Fatalf("decoded Response does not re-encode: %v", err)
		}
	})
}
