// Package metrics implements the evaluation metrics used throughout the
// paper: NDCG (normalized discounted cumulative gain) against exhaustive
// ground truth, recall@k, latency percentile summaries, throughput, and an
// energy ledger that converts modeled power and time into Joules.
//
// Naming note: these are retrieval-*quality* and experiment-evaluation
// metrics. Runtime observability of the live serving process — Prometheus
// counters/histograms, request traces, the admin HTTP server — lives in
// internal/telemetry; new serving-path instrumentation belongs there, not
// here.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// RecallAtK returns |retrieved ∩ truth| / min(k, |truth|) considering only
// the first k entries of each list. It is the fraction of true nearest
// neighbors recovered by the approximate search.
func RecallAtK(retrieved, truth []int64, k int) float64 {
	if k <= 0 {
		return 0
	}
	if len(retrieved) > k {
		retrieved = retrieved[:k]
	}
	if len(truth) > k {
		truth = truth[:k]
	}
	if len(truth) == 0 {
		return 0
	}
	set := make(map[int64]struct{}, len(truth))
	for _, id := range truth {
		set[id] = struct{}{}
	}
	hit := 0
	for _, id := range retrieved {
		if _, ok := set[id]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// NDCGAtK scores a ranked retrieval list against a ranked ground-truth list
// (both best-first). Relevance of the i-th ground-truth document is graded
// len(truth)-i, the standard graded-relevance assignment when ground truth is
// an exhaustive nearest-neighbor ordering, as in the paper (brute-force
// search provides the ideal ranking). Documents outside the truth list have
// zero gain. The result is DCG/IDCG in [0,1].
func NDCGAtK(retrieved, truth []int64, k int) float64 {
	if k <= 0 || len(truth) == 0 {
		return 0
	}
	if len(retrieved) > k {
		retrieved = retrieved[:k]
	}
	if len(truth) > k {
		truth = truth[:k]
	}
	rel := make(map[int64]float64, len(truth))
	for i, id := range truth {
		rel[id] = float64(len(truth) - i)
	}
	var dcg float64
	for i, id := range retrieved {
		if g, ok := rel[id]; ok {
			dcg += (math.Pow(2, g) - 1) / math.Log2(float64(i)+2)
		}
	}
	var idcg float64
	for i := range truth {
		g := float64(len(truth) - i)
		idcg += (math.Pow(2, g) - 1) / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// MeanNDCG averages NDCGAtK over query result/truth pairs. The two slices
// must be the same length.
func MeanNDCG(retrieved, truth [][]int64, k int) float64 {
	if len(retrieved) != len(truth) {
		panic(fmt.Sprintf("metrics: MeanNDCG length mismatch %d != %d", len(retrieved), len(truth)))
	}
	if len(retrieved) == 0 {
		return 0
	}
	var sum float64
	for i := range retrieved {
		sum += NDCGAtK(retrieved[i], truth[i], k)
	}
	return sum / float64(len(retrieved))
}

// MeanRecall averages RecallAtK over query result/truth pairs.
func MeanRecall(retrieved, truth [][]int64, k int) float64 {
	if len(retrieved) != len(truth) {
		panic(fmt.Sprintf("metrics: MeanRecall length mismatch %d != %d", len(retrieved), len(truth)))
	}
	if len(retrieved) == 0 {
		return 0
	}
	var sum float64
	for i := range retrieved {
		sum += RecallAtK(retrieved[i], truth[i], k)
	}
	return sum / float64(len(retrieved))
}

// LatencySummary condenses a set of per-query or per-batch latencies.
type LatencySummary struct {
	Count int
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Summarize computes a LatencySummary. An empty input yields a zero summary.
func Summarize(lat []time.Duration) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	pct := func(p float64) time.Duration {
		idx := int(math.Ceil(p*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return sorted[idx]
	}
	return LatencySummary{
		Count: len(sorted),
		Mean:  sum / time.Duration(len(sorted)),
		P50:   pct(0.50),
		P95:   pct(0.95),
		P99:   pct(0.99),
		Max:   sorted[len(sorted)-1],
	}
}

// QPS converts a query count and elapsed wall time into queries per second.
func QPS(queries int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(queries) / elapsed.Seconds()
}

// Energy accumulates Joules attributed to named stages (encode, retrieve,
// prefill, decode, ...). The zero value is ready to use.
type Energy struct {
	stages map[string]float64
}

// AddJoules credits j Joules to stage.
func (e *Energy) AddJoules(stage string, j float64) {
	if e.stages == nil {
		e.stages = make(map[string]float64)
	}
	e.stages[stage] += j
}

// AddPower credits power (Watts) sustained for d to stage.
func (e *Energy) AddPower(stage string, watts float64, d time.Duration) {
	e.AddJoules(stage, watts*d.Seconds())
}

// Stage returns the Joules attributed to stage.
func (e *Energy) Stage(stage string) float64 { return e.stages[stage] }

// Total returns the total Joules across all stages.
func (e *Energy) Total() float64 {
	var t float64
	for _, j := range e.stages {
		t += j
	}
	return t
}

// Stages returns the stage names in sorted order.
func (e *Energy) Stages() []string {
	out := make([]string, 0, len(e.stages))
	for s := range e.stages {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Merge adds every stage of other into e.
func (e *Energy) Merge(other *Energy) {
	for s, j := range other.stages {
		e.AddJoules(s, j)
	}
}

// String renders the ledger as "stage=XJ ... total=YJ".
func (e *Energy) String() string {
	s := ""
	for _, name := range e.Stages() {
		s += fmt.Sprintf("%s=%.2fJ ", name, e.stages[name])
	}
	return s + fmt.Sprintf("total=%.2fJ", e.Total())
}

// MRRAtK returns the reciprocal rank of the first relevant document within
// the top k retrieved (1 for a hit at rank 1, 1/2 at rank 2, ...), treating
// membership in the truth list as relevance.
func MRRAtK(retrieved, truth []int64, k int) float64 {
	if k <= 0 || len(truth) == 0 {
		return 0
	}
	if len(retrieved) > k {
		retrieved = retrieved[:k]
	}
	rel := make(map[int64]struct{}, len(truth))
	for _, id := range truth {
		rel[id] = struct{}{}
	}
	for i, id := range retrieved {
		if _, ok := rel[id]; ok {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// PrecisionAtK is |retrieved[:k] ∩ truth| / k — unlike recall it penalizes
// padding the result list with irrelevant documents.
func PrecisionAtK(retrieved, truth []int64, k int) float64 {
	if k <= 0 {
		return 0
	}
	if len(retrieved) > k {
		retrieved = retrieved[:k]
	}
	rel := make(map[int64]struct{}, len(truth))
	for _, id := range truth {
		rel[id] = struct{}{}
	}
	hit := 0
	for _, id := range retrieved {
		if _, ok := rel[id]; ok {
			hit++
		}
	}
	return float64(hit) / float64(k)
}
