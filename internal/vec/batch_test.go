package vec

import (
	"math/rand"
	"testing"
)

func randomMatrix(rng *rand.Rand, n, dim int) *Matrix {
	m := NewMatrix(n, dim)
	for i := range m.Data() {
		m.Data()[i] = float32(rng.NormFloat64())
	}
	return m
}

func TestL2SquaredBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Cover dims not divisible by 4 and row counts not on block boundaries.
	for _, dim := range []int{1, 3, 4, 7, 16, 33, 128} {
		for _, n := range []int{1, 2, 5, 17, 64} {
			m := randomMatrix(rng, n, dim)
			q := make([]float32, dim)
			for d := range q {
				q[d] = float32(rng.NormFloat64())
			}
			out := make([]float32, n)
			L2SquaredBatch(q, m.Data(), n, out)
			for i := 0; i < n; i++ {
				want := L2Squared(q, m.Row(i))
				if out[i] != want {
					t.Fatalf("dim=%d n=%d row %d: batch %v != scalar %v", dim, n, i, out[i], want)
				}
			}
		}
	}
}

func TestL2SquaredBatchPartialPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomMatrix(rng, 10, 6)
	q := make([]float32, 6)
	out := make([]float32, 10)
	// n smaller than the available rows only fills out[:n].
	L2SquaredBatch(q, m.Data(), 4, out)
	for i := 0; i < 4; i++ {
		if out[i] != L2Squared(q, m.Row(i)) {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestTopKResetReusesBuffer(t *testing.T) {
	tk := NewTopK(3)
	for i := 0; i < 10; i++ {
		tk.Push(int64(i), float32(10-i))
	}
	first := tk.Results()
	if len(first) != 3 || first[0].ID != 9 {
		t.Fatalf("first round = %v", first)
	}
	tk.Reset(2)
	for i := 0; i < 5; i++ {
		tk.Push(int64(100+i), float32(i))
	}
	second := tk.Results()
	if len(second) != 2 || second[0].ID != 100 || second[1].ID != 101 {
		t.Fatalf("second round = %v", second)
	}
	// Reset to a larger k than capacity still works.
	tk.Reset(8)
	for i := 0; i < 4; i++ {
		tk.Push(int64(i), float32(i))
	}
	if got := tk.Results(); len(got) != 4 {
		t.Fatalf("third round = %v", got)
	}
}

func TestTopKAppendResults(t *testing.T) {
	tk := NewTopK(4)
	for i := 0; i < 8; i++ {
		tk.Push(int64(i), float32(8-i))
	}
	dst := make([]Neighbor, 0, 16)
	dst = append(dst, Neighbor{ID: -1, Score: -1})
	dst = tk.AppendResults(dst)
	if len(dst) != 5 {
		t.Fatalf("len = %d, want 5 (sentinel + 4)", len(dst))
	}
	if dst[0].ID != -1 {
		t.Fatalf("prefix overwritten: %v", dst[0])
	}
	for i := 2; i < len(dst); i++ {
		if dst[i].Score < dst[i-1].Score {
			t.Fatalf("results not ascending: %v", dst[1:])
		}
	}
	// Zero-allocation contract with sufficient capacity.
	allocs := testing.AllocsPerRun(100, func() {
		tk.Reset(4)
		for i := 0; i < 8; i++ {
			tk.Push(int64(i), float32(i))
		}
		dst = tk.AppendResults(dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendResults allocated %v times per run", allocs)
	}
}

func BenchmarkL2SquaredScalarLoop(b *testing.B) {
	for _, dim := range []int{64, 128, 768} {
		b.Run(benchName(dim), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			const n = 1024
			m := randomMatrix(rng, n, dim)
			q := m.Row(0)
			b.SetBytes(int64(n * dim * 4))
			b.ResetTimer()
			var sink float32
			for i := 0; i < b.N; i++ {
				for j := 0; j < n; j++ {
					sink += L2Squared(q, m.Row(j))
				}
			}
			_ = sink
		})
	}
}

func BenchmarkL2SquaredBatch(b *testing.B) {
	for _, dim := range []int{64, 128, 768} {
		b.Run(benchName(dim), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			const n = 1024
			m := randomMatrix(rng, n, dim)
			q := m.Row(0)
			out := make([]float32, n)
			b.SetBytes(int64(n * dim * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				L2SquaredBatch(q, m.Data(), n, out)
			}
		})
	}
}

func benchName(dim int) string {
	switch dim {
	case 64:
		return "dim64"
	case 128:
		return "dim128"
	default:
		return "dim768"
	}
}
