// Command hermes-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	hermes-bench -exp all                 # every experiment, text output
//	hermes-bench -exp fig14,fig16         # a subset
//	hermes-bench -exp fig11 -format csv   # CSV for plotting
//	hermes-bench -scale full              # larger measured runs
//	hermes-bench -list                    # list experiment IDs
//
// Experiments map one-to-one onto the paper's evaluation artifacts; see
// DESIGN.md for the per-experiment index and EXPERIMENTS.md for the
// paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		expFlag    = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		formatFlag = flag.String("format", "text", "output format: text or csv")
		scaleFlag  = flag.String("scale", "small", "measured-experiment scale: small or full")
		listFlag   = flag.Bool("list", false, "list experiment IDs and exit")
		seedFlag   = flag.Int64("seed", 42, "generation seed")
		outFlag    = flag.String("out", "", "also write one CSV file per table into this directory")
	)
	flag.Parse()

	if *listFlag {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var sc experiments.Scale
	switch *scaleFlag {
	case "small":
		sc = experiments.SmallScale()
	case "full":
		sc = experiments.FullScale()
	default:
		fatalf("unknown scale %q (want small or full)", *scaleFlag)
	}
	sc.Seed = *seedFlag

	ids := experiments.IDs()
	if *expFlag != "all" {
		ids = strings.Split(*expFlag, ",")
	}
	if *outFlag != "" {
		if err := os.MkdirAll(*outFlag, 0o755); err != nil {
			fatalf("create -out dir: %v", err)
		}
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		tabs, err := experiments.Run(id, sc)
		if err != nil {
			fatalf("%s: %v", id, err)
		}
		for part, t := range tabs {
			if *outFlag != "" {
				name := t.ID
				if len(tabs) > 1 {
					name = fmt.Sprintf("%s-%d", t.ID, part)
				}
				path := filepath.Join(*outFlag, name+".csv")
				f, err := os.Create(path)
				if err != nil {
					fatalf("%s: %v", id, err)
				}
				if err := t.WriteCSV(f); err != nil {
					//lint:ignore errdrop the CSV write already failed; Close is best-effort cleanup
					f.Close()
					fatalf("%s: write csv: %v", id, err)
				}
				// A dropped Close here could truncate the CSV silently.
				if err := f.Close(); err != nil {
					fatalf("%s: close csv: %v", id, err)
				}
			}
		}
		for _, t := range tabs {
			var werr error
			switch *formatFlag {
			case "text":
				werr = t.WriteText(os.Stdout)
			case "csv":
				fmt.Printf("# %s: %s\n", t.ID, t.Title)
				werr = t.WriteCSV(os.Stdout)
				fmt.Println()
			default:
				fatalf("unknown format %q (want text or csv)", *formatFlag)
			}
			if werr != nil {
				fatalf("%s: write: %v", id, werr)
			}
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hermes-bench: "+format+"\n", args...)
	os.Exit(1)
}
