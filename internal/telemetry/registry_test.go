package telemetry

import (
	"strings"
	"testing"
)

// TestExpositionGolden pins the exact Prometheus text rendering: family
// ordering, HELP/TYPE lines, label sorting, cumulative histogram buckets,
// and value formatting. Observations are powers of two so the sum is exact.
func TestExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hermes_requests_total", "total requests by op", "op", "sample").Add(3)
	reg.Counter("hermes_requests_total", "total requests by op", "op", "deep").Inc()
	reg.Gauge("hermes_inflight", "in-flight requests").Set(2.5)
	h := reg.Histogram("hermes_latency_seconds", "request latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.0078125, 0.0625, 0.25, 2} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP hermes_inflight in-flight requests
# TYPE hermes_inflight gauge
hermes_inflight 2.5
# HELP hermes_latency_seconds request latency
# TYPE hermes_latency_seconds histogram
hermes_latency_seconds_bucket{le="0.01"} 1
hermes_latency_seconds_bucket{le="0.1"} 2
hermes_latency_seconds_bucket{le="1"} 3
hermes_latency_seconds_bucket{le="+Inf"} 4
hermes_latency_seconds_sum 2.3203125
hermes_latency_seconds_count 4
# HELP hermes_requests_total total requests by op
# TYPE hermes_requests_total counter
hermes_requests_total{op="deep"} 1
hermes_requests_total{op="sample"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestHandleIdentity(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("c_total", "c", "k", "v")
	b := reg.Counter("c_total", "c", "k", "v")
	if a != b {
		t.Error("same name+labels must return the same counter handle")
	}
	other := reg.Counter("c_total", "c", "k", "w")
	if a == other {
		t.Error("different labels must return distinct handles")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Errorf("shared handle value = %d, want 2", b.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "m")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	reg.Gauge("m", "m")
}

func TestLabelCanonicalization(t *testing.T) {
	reg := NewRegistry()
	a := reg.Gauge("g", "g", "b", "2", "a", "1")
	b := reg.Gauge("g", "g", "a", "1", "b", "2")
	if a != b {
		t.Error("label order must not distinguish series")
	}
	a.Set(7)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `g{a="1",b="2"} 7`) {
		t.Errorf("labels not rendered sorted:\n%s", sb.String())
	}
}

func TestNilRegistryAndHandles(t *testing.T) {
	var reg *Registry
	reg.Counter("c", "c").Inc()
	reg.Gauge("g", "g").Set(1)
	h := reg.Histogram("h", "h", DefLatencyBuckets)
	h.Observe(1)
	h.Timer()()
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Error("nil histogram must read as zero")
	}
	reg.RegisterCollector(func(*Registry) { t.Error("collector must not run on nil registry") })
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if snap := reg.Snapshot(); len(snap) != 0 {
		t.Errorf("nil registry snapshot = %v, want empty", snap)
	}
}

func TestCollectorRunsAtScrape(t *testing.T) {
	reg := NewRegistry()
	calls := 0
	reg.RegisterCollector(func(r *Registry) {
		calls++
		r.Gauge("live_value", "set by collector").Set(float64(calls))
	})
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "live_value 1") {
		t.Errorf("collector value missing:\n%s", b.String())
	}
	snap := reg.Snapshot()
	if snap["live_value"] != 2 {
		t.Errorf("snapshot after second collect = %v, want live_value=2", snap["live_value"])
	}
}

func TestSnapshotKeys(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "c", "op", "x").Add(4)
	h := reg.Histogram("lat", "l", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	snap := reg.Snapshot()
	if snap[`c_total{op="x"}`] != 4 {
		t.Errorf("counter key missing from snapshot: %v", snap)
	}
	if snap["lat:count"] != 2 {
		t.Errorf("histogram count = %v, want 2", snap["lat:count"])
	}
	if snap["lat:sum"] != 2 {
		t.Errorf("histogram sum = %v, want 2", snap["lat:sum"])
	}
	if p95 := snap["lat:p95"]; p95 <= 1 || p95 > 2 {
		t.Errorf("p95 = %v, want in (1,2]", p95)
	}
}
