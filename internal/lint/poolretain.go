package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolRetain flags uses of a sync.Pool object — or anything derived from it
// — after the matching Put has returned it to the pool. poolescape guards
// the spatial boundary (a pooled reference must not leave the borrowing
// frame); this check guards the temporal one inside the frame: once Put
// runs, another goroutine's Get may own the object, and a retained alias
// (the object itself, a field read off it, a sub-slice of its backing
// array) reads memory that is concurrently being rewritten. That is the
// stale-alias bug class the pooled scratch paths invite: scan results
// sliced out of a pooled buffer, returned AFTER the buffer went back.
//
// Tracking is intraprocedural and source-ordered: variables bound to a
// pool source are the roots, aliases are variables assigned from a root
// (or another alias) through selector/index/slice/star chains, and a use
// textually after a non-deferred Put of the root is flagged unless the
// root was rebound in between (x = pool.Get() again starts a new bracket).
// A pool source is a literal (*sync.Pool).Get call OR a call to a
// same-package accessor that wraps one — a single-result function whose
// body draws from a sync.Pool (the getSearcher/getGroupSearcher facade
// pattern, which carries a poolescape suppression on its return). Without
// accessor recognition every real bracket in this module would be
// invisible: serving code never calls pool.Get directly.
// `defer pool.Put(x)` is the recommended pattern and never flags — the Put
// runs at return, after every use. Loops can execute a textually-earlier
// use after a Put; like the rest of the engine this under-approximates
// rather than guess.
//
// A use that is provably safe (e.g. reading a value copied by Put's own
// argument evaluation) takes //lint:ignore poolretain <reason> at the use.
var PoolRetain = &Analyzer{
	Name:      "poolretain",
	Doc:       "values derived from a sync.Pool Get must not be used after the matching Put",
	Run:       runPoolRetain,
	TestFiles: true,
}

func runPoolRetain(p *Pass) {
	accessors := poolAccessors(p)
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				poolRetainFunc(p, fd, accessors)
			}
		}
	}
}

// poolAccessors collects the package's typed pool facades: single-result
// functions whose body calls (*sync.Pool).Get. A call to one hands the
// caller a pooled object exactly like a literal Get, so it seeds a root.
// Same-package only — cross-package accessors would need exported facts.
func poolAccessors(p *Pass) map[*types.Func]bool {
	out := make(map[*types.Func]bool)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, isCall := n.(*ast.CallExpr); isCall && isPoolGet(p, call) {
					out[fn] = true
					return false
				}
				return true
			})
		}
	}
	return out
}

// isPoolSource reports whether e yields a pooled object: a literal
// (*sync.Pool).Get call, or a call to a recognized pool accessor (either
// possibly through a type assertion).
func isPoolSource(p *Pass, e ast.Expr, accessors map[*types.Func]bool) bool {
	if isPoolGet(p, e) {
		return true
	}
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(p.Info, call)
	return fn != nil && accessors[fn]
}

func poolRetainFunc(p *Pass, fd *ast.FuncDecl, accessors map[*types.Func]bool) {
	// Roots: variables bound to a pool.Get result (possibly type-asserted).
	// Aliases: variables assigned from a root/alias through a derivation
	// chain. One source-ordered pre-pass suffices — an alias created before
	// its root's Get is meaningless and Go's declaration order makes the
	// forward case the only real one; the map is iterated to fixpoint so
	// alias-of-alias chains resolve regardless of assignment order.
	rootOf := make(map[*types.Var]*types.Var) // var -> its pool.Get root
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) {
					break
				}
				v := assignedVar(p, s.Lhs[i])
				if v == nil {
					continue
				}
				if isPoolSource(p, rhs, accessors) {
					rootOf[v] = v
				} else if base := derivationBase(p, rhs); base != nil && base != v {
					// Recorded even before base is known pooled (resolved in
					// the fixpoint below); a variable ever bound to a Get
					// result stays a root.
					if rootOf[v] != v {
						rootOf[v] = base
					}
				}
			}
		case *ast.ValueSpec:
			for i, val := range s.Values {
				if i >= len(s.Names) {
					break
				}
				v, ok := p.Info.Defs[s.Names[i]].(*types.Var)
				if !ok {
					continue
				}
				if isPoolSource(p, val, accessors) {
					rootOf[v] = v
				} else if base := derivationBase(p, val); base != nil {
					rootOf[v] = base
				}
			}
		}
		return true
	})
	// Resolve alias chains to their ultimate root; drop variables whose
	// chain never reaches a pool.Get root.
	for changed := true; changed; {
		changed = false
		for v, base := range rootOf {
			if base == v {
				continue
			}
			if r, ok := rootOf[base]; ok && r != base {
				rootOf[v] = r
				changed = true
			}
		}
	}
	tracked := make(map[*types.Var]*types.Var)
	for v, base := range rootOf {
		if r, ok := rootOf[base]; ok && r == base {
			tracked[v] = base
		}
	}
	if len(tracked) == 0 {
		return
	}

	// Events per root, in source order: non-deferred Puts end the bracket,
	// rebinding the root starts a new one.
	puts := make(map[*types.Var][]token.Pos)
	rebinds := make(map[*types.Var][]token.Pos)
	// writeIdent marks assignment-target idents of tracked variables: the
	// lhs of `v = pool.Get()` is the rebind itself, not a read of the old
	// object, so the use walk must not flag it.
	writeIdent := make(map[token.Pos]bool)
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch s := n.(type) {
		case *ast.CallExpr:
			if root := poolPutOf(p, s, tracked); root != nil && !underDeferOrLit(stack) {
				puts[root] = append(puts[root], s.Pos())
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if v := assignedVar(p, lhs); v != nil {
					if _, ok := tracked[v]; ok {
						writeIdent[lhs.Pos()] = true
					}
					if root, ok := tracked[v]; ok && v == root {
						rebinds[root] = append(rebinds[root], s.Pos())
					}
				}
			}
		}
		return true
	})
	if len(puts) == 0 {
		return
	}

	// Uses: any identifier resolving to a tracked variable, textually after
	// a Put of its root with no rebind of the root in between. The Put
	// call's own argument does not count (it IS the handback).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && poolPutOf(p, call, tracked) != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || writeIdent[id.Pos()] {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		root, ok := tracked[v]
		if !ok {
			return true
		}
		put := lastBefore(puts[root], id.Pos())
		if put == token.NoPos || lastBefore(rebinds[root], id.Pos()) > put {
			return true
		}
		what := "pooled value " + id.Name
		if v != root {
			what = id.Name + " (derived from pooled " + root.Name() + ")"
		}
		p.Reportf(id.Pos(), "use of %s after %s was returned to the pool at line %d; another goroutine's Get may already own the object, so this reads recycled memory — move the use before the Put, copy the data out first, or suppress with //lint:ignore poolretain <reason>", what, root.Name(), p.Fset.Position(put).Line)
		return true
	})
}

// derivationBase resolves an expression that derives a view of a variable —
// selector, index, slice, deref, address-of chains — to that variable, or
// nil. `y := x.buf[4:]` derives from x.
func derivationBase(p *Pass, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			// Only field reads derive the object; pkg.Var and method values
			// do not.
			if sel, ok := p.Info.Selections[x]; !ok || sel.Kind() != types.FieldVal {
				return nil
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.Ident:
			v, _ := p.Info.Uses[x].(*types.Var)
			return v
		default:
			return nil
		}
	}
}

// poolPutOf returns the tracked ROOT handed back by a (*sync.Pool).Put
// call — the root of whichever tracked variable (or derivation of one) is
// the argument — or nil.
func poolPutOf(p *Pass, call *ast.CallExpr, tracked map[*types.Var]*types.Var) *types.Var {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 {
		return nil
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || recvTypeName(fn) != "Pool" {
		return nil
	}
	v := derivationBase(p, call.Args[0])
	if v == nil {
		return nil
	}
	return tracked[v]
}

// underDeferOrLit reports whether the innermost enclosing context of the
// node at the top of the stack defers execution: a defer statement or a
// function literal (which runs on its own schedule; a Put inside one is
// some callback's bracket, not this walk's).
func underDeferOrLit(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return true
		}
	}
	return false
}

// lastBefore returns the greatest position in sorted-insertion-order ps
// that is strictly before pos, or NoPos.
func lastBefore(ps []token.Pos, pos token.Pos) token.Pos {
	best := token.NoPos
	for _, p := range ps {
		if p < pos && p > best {
			best = p
		}
	}
	return best
}
