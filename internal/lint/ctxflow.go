package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the cancellation contract on the serving path: every
// exported function in a request-path package that (transitively) blocks on
// the network must also have a cancellation escape hatch — a
// context.Context parameter, a ctx.Done/Err check, or a connection deadline
// (net.Conn.SetDeadline, DialTimeout/DialContext) somewhere on the path.
// The judgment is interprocedural, built on the fact engine's netio and
// cancel lattices: netio is the "this call can hang on a peer" fact, cancel
// is the "someone can make it stop" fact, and a function carrying the first
// without the second is a request that survives its caller — the exact
// invariant an HTTP front door (ROADMAP item 1) needs from every handler it
// fans out to.
//
// Scope is the exported API of the request-path packages only
// (requestPathPkgs): unexported helpers inherit their bound from whichever
// exported entry point reaches them, and flagging them separately would
// just demand context plumbing through frames that cannot time out on
// their own. Both lattices under-approximate through unresolvable calls
// (function values, module interface methods), and the cancel lattice
// over-approximates toward fewer findings — a context parameter counts even
// if the function ignores it, and one deadline anywhere on the path
// satisfies the whole path. What survives those biases is a path that
// provably has NO exit.
//
// A deliberately synchronous-forever API (a blocking accept loop owned by
// the process lifetime) takes //lint:ignore ctxflow <reason> on the
// declaration.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "exported request-path functions reaching network I/O must accept a cancellable context or set a deadline",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	if p.Pkg == nil || !requestPathPkgs[p.Pkg.Name()] {
		return
	}
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if !p.Facts.NetIO(fn) || p.Facts.Cancelable(fn) {
				continue
			}
			p.Reportf(fd.Pos(), "exported function %s blocks on the network (netio fact) with no cancellation escape hatch anywhere on the path (no context.Context parameter, ctx.Done check, or connection deadline) — a peer that stalls pins this call and its caller forever; thread a context or set a deadline, or suppress with //lint:ignore ctxflow <reason>", funcLockName(fd))
		}
	}
}
