//go:build race

package telemetry

// raceEnabled lets allocation-count tests skip under the race detector,
// whose instrumentation allocates on paths that are allocation-free in
// normal builds.
const raceEnabled = true
