package lint

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from the current report output")

// TestFactsEngine pins the cross-package fact engine on the facts fixture:
// direct I/O, one- and two-level transitive I/O (including through a method),
// purity, and the deliberate under-approximation for function values.
func TestFactsEngine(t *testing.T) {
	pkg := loadFixture(t, "facts")
	fc := ComputeFacts([]*Package{pkg})

	fnByName := func(name string) *types.Func {
		t.Helper()
		obj := pkg.Types.Scope().Lookup(name)
		fn, ok := obj.(*types.Func)
		if !ok {
			t.Fatalf("fixture func %s not found (got %v)", name, obj)
		}
		return fn
	}
	probe := pkg.Types.Scope().Lookup("Probe").(*types.TypeName)
	var flush *types.Func
	named := probe.Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "Flush" {
			flush = named.Method(i)
		}
	}
	if flush == nil {
		t.Fatal("Probe.Flush not found")
	}

	for _, tc := range []struct {
		fn   *types.Func
		want bool
	}{
		{fnByName("WriteState"), true},
		{fnByName("Chain"), true},
		{flush, true},
		{fnByName("Pure"), false},
		{fnByName("viaValue"), false},
		// //hermes:io declares an edge the analysis cannot see, and the
		// declared fact propagates to callers like any other.
		{fnByName("Emit"), true},
		{fnByName("Record"), true},
	} {
		if got := fc.PerformsIO(tc.fn); got != tc.want {
			t.Errorf("PerformsIO(%s) = %v, want %v", tc.fn.Name(), got, tc.want)
		}
	}

	want := []string{
		pkg.Path + ".Chain",
		pkg.Path + ".Emit",
		pkg.Path + ".Probe.Flush",
		pkg.Path + ".Record",
		pkg.Path + ".WriteState",
	}
	if got := fc.IOFuncs(); strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("IOFuncs() = %v, want %v", got, want)
	}

	// A nil Facts still answers from the stdlib seed model.
	var nilFacts *Facts
	if nilFacts.PerformsIO(fnByName("Chain")) {
		t.Error("nil Facts claimed module-propagated fact")
	}
}

// TestIncludeTests pins the -include-tests contract end to end: the loader
// parses in-package _test.go files only when asked, and findings in them
// surface only for analyzers that opt in via TestFiles.
func TestIncludeTests(t *testing.T) {
	dir := filepath.Join("testdata", "src", "inctests")

	load := func(withTests bool) *Package {
		t.Helper()
		l, err := NewLoader(".")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		l.IncludeTests = withTests
		pkgs, err := l.Load(dir)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		if len(pkgs) != 1 {
			t.Fatalf("got %d packages, want 1", len(pkgs))
		}
		for _, terr := range pkgs[0].TypeErrors {
			t.Errorf("type error: %v", terr)
		}
		return pkgs[0]
	}

	// Without test files: no findings anywhere (the leak lives in _test.go).
	plain := load(false)
	if got := RunPackage(plain, []*Analyzer{PoolEscape, GlobalRand}); len(got) != 0 {
		t.Errorf("without tests: unexpected findings %v", got)
	}

	// With test files: poolescape (TestFiles: true) fires on the leaked
	// pool value; globalrand (TestFiles: false) still skips test files.
	withTests := load(true)
	got := RunPackageOpts(withTests, []*Analyzer{PoolEscape, GlobalRand}, RunOptions{IncludeTests: true})
	if len(got) != 1 || got[0].Check != "poolescape" {
		t.Fatalf("with tests: got %v, want exactly one poolescape finding", got)
	}
	if !strings.HasSuffix(got[0].Pos.Filename, "code_test.go") {
		t.Errorf("finding in %s, want code_test.go", got[0].Pos.Filename)
	}
}

// TestReportGolden pins the -json report byte-for-byte: deterministic
// finding order, module-relative slash paths, and the exact field layout
// external tooling parses. Regenerate with: go test ./internal/lint/ -run
// TestReportGolden -update-golden
func TestReportGolden(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(filepath.Join("testdata", "src", "directives"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	findings := RunPackages(pkgs, []*Analyzer{GlobalRand}, RunOptions{})
	report := NewReport(l.ModulePath, l.ModuleRoot, pkgs, []*Analyzer{GlobalRand}, findings)
	data, err := report.MarshalIndent()
	if err != nil {
		t.Fatalf("MarshalIndent: %v", err)
	}
	goldenPath := filepath.Join("testdata", "golden.json")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if string(data) != string(golden) {
		t.Errorf("report drifted from golden:\n--- got ---\n%s--- want ---\n%s", data, golden)
	}
}

// loadFactdump loads the factdump fixture through a fresh loader and
// returns the loader with both fixture packages (a and its dependency b)
// in its cache.
func loadFactdump(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(filepath.Join("testdata", "src", "factdump", "a"))
	if err != nil {
		t.Fatalf("Load factdump/a: %v", err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("factdump type error: %v", terr)
		}
	}
	if got := len(l.Cached()); got != 2 {
		t.Fatalf("Cached() has %d packages, want 2 (a and its dependency b)", got)
	}
	return l
}

// TestFactsDumpGolden pins the -facts -json dump byte-for-byte over the
// factdump fixture: all six lattices populate (io crosses the a -> b
// package boundary; alloc, blocks, and acquires are per-function; netio
// seeds at a.Ping's net.Dial and propagates synchronously to a.Relay,
// which also consumes its context and so lands in cancel; the S.mu -> mu
// lock edge carries its witness), and the function-value
// under-approximation is visible as data — a.hello is in the io list,
// a.Indirect is not. Regenerate with -update-golden.
func TestFactsDumpGolden(t *testing.T) {
	l := loadFactdump(t)
	fc := ComputeFacts(l.Cached())
	data, err := fc.Dump(l.ModuleRoot).MarshalIndent()
	if err != nil {
		t.Fatalf("MarshalIndent: %v", err)
	}
	goldenPath := filepath.Join("testdata", "factdump.golden.json")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if string(data) != string(golden) {
		t.Errorf("facts dump drifted from golden:\n--- got ---\n%s--- want ---\n%s", data, golden)
	}
}

// TestFactsDumpDeterministic runs the whole load -> fixpoint -> dump
// pipeline twice from scratch: the JSON must come out byte-identical, or
// the -diff gate and the archived facts artifact churn on every CI run.
func TestFactsDumpDeterministic(t *testing.T) {
	dump := func() string {
		l := loadFactdump(t)
		data, err := ComputeFacts(l.Cached()).Dump(l.ModuleRoot).MarshalIndent()
		if err != nil {
			t.Fatalf("MarshalIndent: %v", err)
		}
		return string(data)
	}
	first, second := dump(), dump()
	if first != second {
		t.Errorf("facts dump is not deterministic:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

// TestLoaderHardErrors pins the exit-2 contract's loader half: a
// dependency package that fails to parse surfaces through HardErrors even
// though Load itself succeeds best-effort (go/types files the failure as a
// type error of the importer and moves on).
func TestLoaderHardErrors(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(filepath.Join("testdata", "src", "brokenimport"))
	if err != nil {
		t.Fatalf("Load brokenimport: %v (want best-effort success)", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	hard := l.HardErrors()
	if len(hard) != 1 {
		t.Fatalf("HardErrors() = %v, want exactly one (the dep parse failure)", hard)
	}
	if !strings.Contains(hard[0].Error(), "dep.go") {
		t.Errorf("hard error %v does not name dep.go", hard[0])
	}
	// The broken dependency also shows up as a type error of the importer;
	// both channels exist, but only HardErrors drives the exit code.
	if len(pkgs[0].TypeErrors) == 0 {
		t.Error("importer package has no type errors; expected the failed import to surface there too")
	}
}

// TestBaselineRoundTrip pins baseline semantics: (check, file, msg) matching
// that survives line drift, multiset budgets, and stale-entry reporting,
// through a write/load round trip.
func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	mk := func(file string, line int, check, msg string) Finding {
		return Finding{
			Check: check,
			Pos:   token.Position{Filename: filepath.Join(root, file), Line: line, Column: 1},
			Msg:   msg,
		}
	}
	recorded := []Finding{
		mk("a.go", 10, "poolescape", "leak one"),
		mk("a.go", 20, "poolescape", "leak two"),
		mk("b.go", 5, "errdrop", "dropped"),
	}
	path := filepath.Join(root, "baseline.json")
	if err := WriteBaseline(path, root, recorded); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}

	// Current run: "leak one" moved lines (still absorbed), "leak two" was
	// fixed (stale entry), "dropped" recurs twice (budget absorbs one), and
	// a brand-new finding is kept.
	current := []Finding{
		mk("a.go", 99, "poolescape", "leak one"),
		mk("b.go", 5, "errdrop", "dropped"),
		mk("b.go", 6, "errdrop", "dropped"),
		mk("c.go", 1, "deferinloop", "new finding"),
	}
	kept, absorbed, stale := base.Filter(current, root)
	if absorbed != 2 {
		t.Errorf("absorbed = %d, want 2", absorbed)
	}
	var keptMsgs []string
	for _, f := range kept {
		keptMsgs = append(keptMsgs, f.Msg)
	}
	sort.Strings(keptMsgs)
	if strings.Join(keptMsgs, "|") != "dropped|new finding" {
		t.Errorf("kept = %v, want [dropped, new finding]", keptMsgs)
	}
	if len(stale) != 1 || stale[0].Msg != "leak two" {
		t.Errorf("stale = %v, want the fixed 'leak two' entry", stale)
	}
}

// TestAnalyzerRegistryComplete parses this package's sources for *Analyzer
// declarations and cross-checks them against All(): an analyzer written but
// never registered silently runs on nothing.
func TestAnalyzerRegistryComplete(t *testing.T) {
	fset := token.NewFileSet()
	declared := make(map[string]bool)
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, e.Name(), nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", e.Name(), err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ue, ok := n.(*ast.UnaryExpr)
			if !ok || ue.Op != token.AND {
				return true
			}
			cl, ok := ue.X.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if id, ok := cl.Type.(*ast.Ident); !ok || id.Name != "Analyzer" {
				return true
			}
			for _, elt := range cl.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Name" {
					if lit, ok := kv.Value.(*ast.BasicLit); ok {
						declared[strings.Trim(lit.Value, `"`)] = true
					}
				}
			}
			return true
		})
	}
	registered := make(map[string]bool)
	for _, a := range All() {
		registered[a.Name] = true
	}
	for name := range declared {
		if !registered[name] {
			t.Errorf("analyzer %q is declared but missing from All()", name)
		}
	}
	for name := range registered {
		if !declared[name] {
			t.Errorf("analyzer %q is in All() but no declaration was found", name)
		}
	}
	if len(registered) < 13 {
		t.Errorf("All() has %d analyzers, want at least 13", len(registered))
	}
}

// raceCriticalPackages is the canonical list of concurrency-heavy packages
// that must run under the race detector in tier-1. Changing the verify.sh
// race line without updating this list (or vice versa) fails the build.
var raceCriticalPackages = []string{
	"./internal/distsearch/",
	"./internal/batcher/",
	"./internal/telemetry/",
	"./internal/ivf/",
	"./internal/hermes/",
	"./internal/slo/",
	"./internal/evlog/",
}

// TestVerifyScriptCoverage cross-checks scripts/verify.sh and its lint
// gate scripts/lint-diff.sh against this package: verify.sh must delegate
// to lint-diff.sh; lint-diff.sh must refresh the committed report through
// the -diff gate, re-gate test files, archive the facts dump, and run the
// artifact identity gate (byte-compare of every committed artifact against
// a fresh regeneration, alloc.lock gated on the recorded toolchain); the
// committed lint-report.json and lint-facts.json must exist; and
// verify.sh's -race package list must match raceCriticalPackages exactly.
func TestVerifyScriptCoverage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(l.ModuleRoot, "scripts", "verify.sh"))
	if err != nil {
		t.Fatalf("reading verify.sh: %v", err)
	}
	script := string(data)

	if !regexp.MustCompile(`(?m)^\./scripts/lint-diff\.sh$`).MatchString(script) {
		t.Error("verify.sh does not invoke ./scripts/lint-diff.sh")
	}

	diffData, err := os.ReadFile(filepath.Join(l.ModuleRoot, "scripts", "lint-diff.sh"))
	if err != nil {
		t.Fatalf("reading lint-diff.sh: %v", err)
	}
	diffScript := string(diffData)
	for _, line := range []string{
		`^go run \./cmd/hermes-lint -json -diff lint-report\.json \./\.\.\. > lint-report\.json\.tmp$`,
		`^cmp -s lint-report\.json\.tmp lint-report\.json \|\| stale="\$stale lint-report\.json"$`,
		`^mv lint-report\.json\.tmp lint-report\.json$`,
		`^go run \./cmd/hermes-lint -diff lint-report\.json -include-tests \./\.\.\.$`,
		`^go run \./cmd/hermes-lint -facts -json \./\.\.\. > lint-facts\.json\.tmp$`,
		`^cmp -s lint-facts\.json\.tmp lint-facts\.json \|\| stale="\$stale lint-facts\.json"$`,
		`^go run \./cmd/hermes-lint -update-wirelock \./\.\.\.$`,
		`^\s*go run \./cmd/hermes-lint -update-alloclock \./\.\.\.$`,
		`^recorded=\$\(sed -n 's/\^# go //p' .* \| sort -u\)$`,
		`^\s*exit 1$`,
	} {
		if !regexp.MustCompile(`(?m)` + line).MatchString(diffScript) {
			t.Errorf("lint-diff.sh is missing a line matching %s", line)
		}
	}

	for _, artifact := range []string{"lint-report.json", "lint-facts.json"} {
		if _, err := os.Stat(filepath.Join(l.ModuleRoot, artifact)); err != nil {
			t.Errorf("committed lint artifact %s: %v", artifact, err)
		}
	}

	raceLine := regexp.MustCompile(`(?m)^go test -race (.+)$`).FindStringSubmatch(script)
	if raceLine == nil {
		t.Fatal("verify.sh has no `go test -race` line")
	}
	got := strings.Fields(raceLine[1])
	sort.Strings(got)
	want := append([]string(nil), raceCriticalPackages...)
	sort.Strings(want)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("verify.sh -race packages = %v, want %v", got, want)
	}
	for _, pkg := range raceCriticalPackages {
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pkg, "./")))
		if _, err := os.Stat(dir); err != nil {
			t.Errorf("race-critical package %s: %v", pkg, err)
		}
	}
}

// TestDistsearchWireLockCurrent locks the real serving protocol: the
// committed internal/distsearch/wire.lock must match the schema derived
// from the live source, and the wirelock analyzer must be clean on it. If
// this fails after an intentional append, run hermes-lint -update-wirelock.
func TestDistsearchWireLockCurrent(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(filepath.Join(l.ModuleRoot, "internal", "distsearch"))
	if err != nil {
		t.Fatalf("Load distsearch: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	committed, err := os.ReadFile(filepath.Join(pkg.Dir, WireLockFile))
	if err != nil {
		t.Fatalf("reading committed %s: %v", WireLockFile, err)
	}
	if got := GenerateWireLock(pkg); string(got) != string(committed) {
		t.Errorf("committed %s is stale; run `go run ./cmd/hermes-lint -update-wirelock ./internal/distsearch`\n--- generated ---\n%s", WireLockFile, got)
	}
	for _, f := range RunPackage(pkg, []*Analyzer{WireLock}) {
		t.Errorf("unexpected wirelock finding: %s", f)
	}
}
