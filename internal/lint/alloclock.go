package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// EscapeAudit pins the compiler's escape-analysis and inlining verdicts for
// every //hermes:hotpath function to a committed per-package alloc.lock
// file — the compiler-verified counterpart of hotpathalloc. Where
// hotpathalloc reasons about the AST (syntactic allocation sites, the
// transitive alloc fact), escapeaudit diffs what `go build -gcflags=-m=2`
// actually decided (escape.go) against the recorded budget, so a refactor
// that makes a kernel argument escape or un-inlines a distance kernel fails
// scripts/verify.sh with a file:line diff instead of waiting for a
// benchmark to notice the allocs/op change.
//
// Evolution mirrors wire.lock: the lock is regenerated only by an explicit
// `hermes-lint -update-alloclock`, so every budget change is a reviewed
// commit. Any drift in either direction is a finding — new escapes and lost
// inlines are regressions to fix; vanished escapes and new inlines are
// improvements that still require re-recording, keeping the committed
// artifact byte-identical to a fresh regeneration (the verify.sh
// staleness gate depends on that).
//
// Diagnostics move between toolchains (inlining budgets, the escape
// analysis itself), so the lock header records the recording `go` version
// and the driver skips this pass with a warning when the running toolchain
// differs — see AllocLockGoVersions and cmd/hermes-lint.
var EscapeAudit = &Analyzer{
	Name: "escapeaudit",
	Doc:  "compiler escape/inline diagnostics of //hermes:hotpath functions must match the committed alloc.lock",
	Run:  runEscapeAudit,
}

// AllocLockFile is the per-package artifact filename.
const AllocLockFile = "alloc.lock"

// allocEntry is one locked diagnostic: Kind plus the normalized text from
// classifyDiag. Line numbers are deliberately NOT part of the lock — an
// unrelated edit above a hot function must not invalidate the budget — so
// entries form a multiset per function.
type allocEntry struct {
	Kind EscapeKind
	Text string
}

func (e allocEntry) key() string { return string(e.Kind) + "\x00" + e.Text }

// allocLock is a parsed alloc.lock.
type allocLock struct {
	GoVersion string
	// Funcs maps lock display name -> entry multiset; Order preserves the
	// file's function order for deterministic messages.
	Funcs map[string][]allocEntry
	Order []string
}

// hotFunc is one //hermes:hotpath function with its attributed diagnostics.
type hotFunc struct {
	Name  string
	Decl  *ast.FuncDecl
	Diags []EscapeDiag
}

func runEscapeAudit(p *Pass) {
	if p.Escape == nil {
		// The driver did not run the compiler (analyzer deselected, or the
		// toolchain differs from the recorded lock version and the pass was
		// version-gated off). Nothing to audit.
		return
	}
	hot := hotPathFuncs(p.Fset, p.Files, p.Escape)
	lockPath := filepath.Join(p.Dir, AllocLockFile)
	data, err := os.ReadFile(lockPath)
	if os.IsNotExist(err) {
		if len(hot) > 0 {
			p.Reportf(hot[0].Decl.Pos(), "%d //hermes:hotpath function(s) but no %s; run hermes-lint -update-alloclock to record the compiler escape/inline budget", len(hot), AllocLockFile)
		}
		return
	}
	if err != nil {
		p.Reportf(firstPos(p.Files), "reading %s: %v", AllocLockFile, err)
		return
	}
	if len(hot) == 0 {
		p.Reportf(firstPos(p.Files), "%s exists but the package declares no //hermes:hotpath functions; delete the stale lock or restore the annotations", AllocLockFile)
		return
	}
	lock, err := parseAllocLock(data)
	if err != nil {
		p.Reportf(firstPos(p.Files), "parsing %s: %v", AllocLockFile, err)
		return
	}
	if lock.GoVersion != p.Escape.GoVersion {
		p.Reportf(firstPos(p.Files), "%s was recorded with %s but the toolchain is %s; run hermes-lint -update-alloclock to re-record the budget", AllocLockFile, lock.GoVersion, p.Escape.GoVersion)
		return
	}
	diffAllocLock(p, lock, hot)
}

// hotPathFuncs collects the non-test //hermes:hotpath functions with their
// attributed compiler diagnostics, in declaration order. Attribution is
// lexical: a diagnostic belongs to the annotated function whose source range
// contains its line (leaking-param diagnostics land on the declaration line
// itself, body diagnostics inside it).
func hotPathFuncs(fset *token.FileSet, files []*ast.File, escape *EscapeDiags) []hotFunc {
	var out []hotFunc
	for _, f := range files {
		if isTestFile(fset, f) {
			continue
		}
		diags := escape.File(fset.Position(f.Pos()).Filename)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(hotpathDirective, fd.Doc) {
				continue
			}
			start := fset.Position(fd.Pos()).Line
			end := fset.Position(fd.End()).Line
			hf := hotFunc{Name: funcLockName(fd), Decl: fd}
			for _, dg := range diags {
				if dg.Line >= start && dg.Line <= end {
					hf.Diags = append(hf.Diags, dg)
				}
			}
			out = append(out, hf)
		}
	}
	return out
}

// funcLockName is the function's display name inside alloc.lock:
// "Search" for a plain function, "(*Searcher).Search" for a method.
func funcLockName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + types.ExprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

// diffAllocLock reports every way the current diagnostics diverge from the
// lock. Direction decides the wording — a new escape or a lost inline is a
// performance regression, the reverse directions are stale-lock drift — but
// every divergence is a finding: the committed artifact must stay
// byte-identical to a regeneration.
func diffAllocLock(p *Pass, lock *allocLock, hot []hotFunc) {
	hotByName := make(map[string]*hotFunc, len(hot))
	for i := range hot {
		hotByName[hot[i].Name] = &hot[i]
	}
	for _, name := range lock.Order {
		if hotByName[name] == nil {
			p.Reportf(firstPos(p.Files), "%s records function %s but the package has no such //hermes:hotpath function; run hermes-lint -update-alloclock", AllocLockFile, name)
		}
	}
	for _, hf := range hot {
		locked, ok := lock.Funcs[hf.Name]
		if !ok {
			p.Reportf(hf.Decl.Pos(), "//hermes:hotpath function %s is not recorded in %s; run hermes-lint -update-alloclock", hf.Name, AllocLockFile)
			continue
		}
		diffAllocFunc(p, hf, locked)
	}
}

func diffAllocFunc(p *Pass, hf hotFunc, locked []allocEntry) {
	lockedCount := make(map[string]int)
	for _, e := range locked {
		lockedCount[e.key()]++
	}
	curCount := make(map[string]int)
	for _, d := range hf.Diags {
		curCount[allocEntry{d.Kind, d.Text}.key()]++
	}

	// Current diagnostics above the locked count: report at the exact
	// compiler position (the file:line diff the issue asks for).
	seen := make(map[string]int)
	for _, d := range hf.Diags {
		k := allocEntry{d.Kind, d.Text}.key()
		seen[k]++
		if seen[k] <= lockedCount[k] {
			continue
		}
		pos := diagPos(p.Fset, hf.Decl, d)
		switch d.Kind {
		case KindInline:
			p.Reportf(pos, "newly inlined call to %s in //hermes:hotpath function %s is not recorded in %s; run hermes-lint -update-alloclock to record the improvement", d.Text, hf.Name, AllocLockFile)
		case KindLeak:
			p.Reportf(pos, "escape regression in //hermes:hotpath function %s: %q is not in %s — a leaking param forces the caller's value to heap-allocate; plug the leak or record it with hermes-lint -update-alloclock", hf.Name, d.Text, AllocLockFile)
		default:
			p.Reportf(pos, "escape regression in //hermes:hotpath function %s: %q is not in %s — the hot path gained a heap allocation; eliminate the escape or record it with hermes-lint -update-alloclock", hf.Name, d.Text, AllocLockFile)
		}
	}

	// Locked entries the compiler no longer emits: anchored at the function
	// declaration (there is no current source position to point at).
	var missing []allocEntry
	missingSeen := make(map[string]int)
	for _, e := range locked {
		missingSeen[e.key()]++
		if missingSeen[e.key()] > curCount[e.key()] {
			missing = append(missing, e)
		}
	}
	sort.Slice(missing, func(i, j int) bool {
		if missing[i].Kind != missing[j].Kind {
			return missing[i].Kind < missing[j].Kind
		}
		return missing[i].Text < missing[j].Text
	})
	for _, e := range missing {
		switch e.Kind {
		case KindInline:
			p.Reportf(hf.Decl.Pos(), "call to %s in //hermes:hotpath function %s is no longer inlined (%s records it) — call overhead is back on the hot path; restore inlining or re-record with hermes-lint -update-alloclock", e.Text, hf.Name, AllocLockFile)
		default:
			p.Reportf(hf.Decl.Pos(), "%s records %q for //hermes:hotpath function %s but the compiler no longer emits it; run hermes-lint -update-alloclock to tighten the budget", AllocLockFile, e.Text, hf.Name)
		}
	}
}

// diagPos converts a compiler diagnostic's file:line:col back into a
// token.Pos inside the declaring file, so Reportf carries the compiler's
// exact position. Falls back to the function declaration if the line is
// somehow unmapped.
func diagPos(fset *token.FileSet, fd *ast.FuncDecl, d EscapeDiag) token.Pos {
	tf := fset.File(fd.Pos())
	if tf == nil || d.Line < 1 || d.Line > tf.LineCount() {
		return fd.Pos()
	}
	p := tf.LineStart(d.Line) + token.Pos(d.Col-1)
	if p < tf.Pos(0) || p > tf.Pos(tf.Size()) {
		return tf.LineStart(d.Line)
	}
	return p
}

// GenerateAllocLock renders the package's escape/inline budget as the lock
// artifact, or nil when the package has no //hermes:hotpath functions (or
// the compiler was not run). A hot function with zero diagnostics still
// gets a `func` block — the empty budget is the contract worth keeping.
func GenerateAllocLock(pkg *Package, escape *EscapeDiags) []byte {
	if escape == nil {
		return nil
	}
	hot := hotPathFuncs(pkg.Fset, pkg.Files, escape)
	if len(hot) == 0 {
		return nil
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].Name < hot[j].Name })
	var b strings.Builder
	b.WriteString("# Code generated by hermes-lint -update-alloclock; DO NOT EDIT BY HAND.\n")
	b.WriteString("# Compiler escape/inline budget for //hermes:hotpath functions in package " + pkg.Path + ".\n")
	b.WriteString("# Entries are `go build -gcflags=-m=2` diagnostics attributed to each function,\n")
	b.WriteString("# recorded without line numbers so unrelated edits do not churn the lock.\n")
	b.WriteString("# Diagnostics depend on the toolchain below; escapeaudit is skipped on others.\n")
	b.WriteString("# go " + escape.GoVersion + "\n")
	for _, hf := range hot {
		b.WriteString("\nfunc " + hf.Name + "\n")
		entries := make([]allocEntry, 0, len(hf.Diags))
		for _, d := range hf.Diags {
			entries = append(entries, allocEntry{d.Kind, d.Text})
		}
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].Kind != entries[j].Kind {
				return entries[i].Kind < entries[j].Kind
			}
			return entries[i].Text < entries[j].Text
		})
		for _, e := range entries {
			b.WriteString("\t" + string(e.Kind) + " " + e.Text + "\n")
		}
	}
	return []byte(b.String())
}

// parseAllocLock reads a lock file back. Like wire.lock, the file is
// generated, so malformed lines are errors rather than silently skipped.
func parseAllocLock(data []byte) (*allocLock, error) {
	lock := &allocLock{Funcs: make(map[string][]allocEntry)}
	var cur string
	for i, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.TrimSpace(line) == "":
		case strings.HasPrefix(line, "# go "):
			lock.GoVersion = strings.TrimSpace(strings.TrimPrefix(line, "# go "))
		case strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "func "):
			cur = strings.TrimSpace(strings.TrimPrefix(line, "func "))
			if cur == "" {
				return nil, fmt.Errorf("line %d: func with no name", i+1)
			}
			if _, dup := lock.Funcs[cur]; dup {
				return nil, fmt.Errorf("line %d: duplicate func %s", i+1, cur)
			}
			lock.Funcs[cur] = nil
			lock.Order = append(lock.Order, cur)
		case strings.HasPrefix(line, "\t"):
			if cur == "" {
				return nil, fmt.Errorf("line %d: entry line before any func", i+1)
			}
			kind, text, ok := strings.Cut(strings.TrimPrefix(line, "\t"), " ")
			if !ok || text == "" {
				return nil, fmt.Errorf("line %d: want \"<kind> <diagnostic>\"", i+1)
			}
			switch EscapeKind(kind) {
			case KindEscape, KindLeak, KindInline:
			default:
				return nil, fmt.Errorf("line %d: unknown diagnostic kind %q", i+1, kind)
			}
			lock.Funcs[cur] = append(lock.Funcs[cur], allocEntry{EscapeKind(kind), text})
		default:
			return nil, fmt.Errorf("line %d: unrecognized line %q", i+1, line)
		}
	}
	if lock.GoVersion == "" {
		return nil, fmt.Errorf("no \"# go <version>\" header; regenerate with hermes-lint -update-alloclock")
	}
	return lock, nil
}

// HotPathDirs returns the directories of packages that declare at least one
// //hermes:hotpath function in a non-test file — the build targets the
// escape runner needs.
func HotPathDirs(pkgs []*Package) []string {
	var dirs []string
	for _, pkg := range pkgs {
		if packageHasHotPath(pkg) {
			dirs = append(dirs, pkg.Dir)
		}
	}
	sort.Strings(dirs)
	return dirs
}

func packageHasHotPath(pkg *Package) bool {
	for _, f := range pkg.Files {
		if isTestFile(pkg.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && hasDirective(hotpathDirective, fd.Doc) {
				return true
			}
		}
	}
	return false
}

// AllocLockGoVersions collects the distinct `# go <version>` headers of the
// committed alloc.lock files under the given package dirs. The driver
// compares them with the running toolchain before invoking the compiler:
// on mismatch it skips escapeaudit with a warning instead of hard-failing
// contributors on a different toolchain.
func AllocLockGoVersions(dirs []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, dir := range dirs {
		data, err := os.ReadFile(filepath.Join(dir, AllocLockFile))
		if err != nil {
			continue
		}
		lock, err := parseAllocLock(data)
		if err != nil || seen[lock.GoVersion] {
			continue
		}
		seen[lock.GoVersion] = true
		out = append(out, lock.GoVersion)
	}
	sort.Strings(out)
	return out
}

// AllocLockArtifact regenerates alloc.lock for packages with
// //hermes:hotpath functions (see the escapeaudit analyzer).
var AllocLockArtifact = &Artifact{
	Name:     "escapeaudit",
	Filename: AllocLockFile,
	Doc:      "compiler escape/inline budget of //hermes:hotpath functions",
	Generate: GenerateAllocLock,
}
