package distsearch

import (
	"bytes"
	"encoding/gob"
	"net"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/evlog"
	"repro/internal/hermes"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// v5Response is the Response schema as of PR 8 — everything up to Families,
// without the v6 Costs/GroupedExec appends — i.e. what a node running the
// previous release encodes and decodes.
type v5Response struct {
	Err      string
	Size     int
	Dim      int
	Centroid []float32
	Results  []vec.Neighbor
	Batch    [][]vec.Neighbor
	ShardID  int
	Applied  int64
	Compacts int64
	Scanned  int64
	Spans    []WireSpan
	Families []telemetry.FamilySnapshot
}

// TestResponseWireCompatV5V6 proves the Costs/GroupedExec append is
// gob-compatible in both directions: a v6 response decodes on a v5
// coordinator (new fields dropped), and a v5 response decodes on a v6
// coordinator (no ledger, GroupedExec false — the degrade signal).
func TestResponseWireCompatV5V6(t *testing.T) {
	v6 := Response{
		ShardID: 3,
		Batch:   [][]vec.Neighbor{{{ID: 1, Score: 0.5}}},
		Costs: []telemetry.QueryCost{
			{Cells: 4, SharedCells: 1, CodesExclusive: 10, CodesAmortized: 6, ScanNanos: 99},
		},
		GroupedExec: true,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v6); err != nil {
		t.Fatal(err)
	}
	var oldSide v5Response
	if err := gob.NewDecoder(&buf).Decode(&oldSide); err != nil {
		t.Fatalf("v5 peer failed to decode a v6 response: %v", err)
	}
	if oldSide.ShardID != 3 || len(oldSide.Batch) != 1 {
		t.Errorf("v5 decode mangled fields: %+v", oldSide)
	}

	buf.Reset()
	old := v5Response{ShardID: 1, Batch: [][]vec.Neighbor{{{ID: 7}}}, Scanned: 42}
	if err := gob.NewEncoder(&buf).Encode(&old); err != nil {
		t.Fatal(err)
	}
	var newSide Response
	if err := gob.NewDecoder(&buf).Decode(&newSide); err != nil {
		t.Fatalf("v6 peer failed to decode a v5 response: %v", err)
	}
	if newSide.ShardID != 1 || newSide.Scanned != 42 {
		t.Errorf("v6 decode of v5 response: %+v", newSide)
	}
	if newSide.GroupedExec || newSide.Costs != nil {
		t.Errorf("v5 response must decode with no ledger and GroupedExec false: %+v", newSide)
	}
}

// TestSearchBatchTracedGroupedNoFallback is the tentpole acceptance: a traced
// grouped batch executes the grouped path on every node (no per-query
// fallback), returns results DeepEqual-identical to the untraced grouped
// batch, and its per-query ledger entries sum exactly to the batch's measured
// totals.
func TestSearchBatchTracedGroupedNoFallback(t *testing.T) {
	const shards = 3
	c, co, regs := groupedCluster(t, shards, DialOptions{Grouped: true})
	qs := c.Queries(16, 31)
	queries := make([][]float32, qs.Vectors.Len())
	for i := range queries {
		queries[i] = qs.Vectors.Row(i)
	}
	p := hermes.DefaultParams()

	plain, err := co.SearchBatch(queries, p)
	if err != nil {
		t.Fatal(err)
	}
	groupedBefore := groupscanTotal(regs)

	tr := telemetry.NewTrace()
	traced, err := co.SearchBatchTraced(queries, p, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(traced.Results, plain.Results) {
		t.Fatal("traced grouped batch drifted from the untraced grouped answer")
	}
	if traced.Degraded != 0 || plain.Degraded != 0 {
		t.Fatalf("current nodes reported degrades: traced=%d plain=%d", traced.Degraded, plain.Degraded)
	}
	// The traced batch moved the nodes' groupscan counters: grouped
	// execution, not the old per-query fallback.
	if after := groupscanTotal(regs); after < groupedBefore+float64(len(queries)*shards) {
		t.Fatalf("groupscan counters %v -> %v: traced batch did not run grouped", groupedBefore, after)
	}
	if traced.BatchID != tr.ID() {
		t.Fatalf("BatchID %x != trace ID %x", traced.BatchID, tr.ID())
	}

	// Conservation: per-query ledger entries sum exactly to the batch total,
	// component-wise.
	var sum telemetry.QueryCost
	for i, cst := range traced.Costs {
		if cst.Codes() == 0 || cst.Cells == 0 {
			t.Fatalf("query %d ledger empty: %+v", i, cst)
		}
		if cst.WireBytes <= 0 {
			t.Fatalf("query %d has no wire attribution: %+v", i, cst)
		}
		sum.Add(cst)
	}
	if sum != traced.Total {
		t.Fatalf("ledger does not conserve the measurement:\n  sum   %+v\n  total %+v", sum, traced.Total)
	}
	if traced.Total.ScanNanos <= 0 {
		t.Fatal("traced batch measured no scan time")
	}

	// Untraced ledger: same counters, no scan time (no clock on that path),
	// wire bytes still attributed.
	var untracedSum telemetry.QueryCost
	for i, cst := range plain.Costs {
		if cst.ScanNanos != 0 {
			t.Fatalf("untraced query %d carries scan time: %+v", i, cst)
		}
		if cst.Codes() == 0 || cst.WireBytes <= 0 {
			t.Fatalf("untraced query %d ledger empty: %+v", i, cst)
		}
		untracedSum.Add(cst)
	}
	if untracedSum != plain.Total {
		t.Fatalf("untraced ledger does not conserve: sum %+v != total %+v", untracedSum, plain.Total)
	}
	if sum.Cells != untracedSum.Cells || sum.Codes() != untracedSum.Codes() {
		t.Fatalf("traced and untraced batches did different work: %+v vs %+v", sum, untracedSum)
	}

	// The grouped waterfall: coordinator phases once, plus node spans from
	// every shard — each shared phase span appears once per node, not once
	// per query.
	spans := tr.Spans()
	nodesSeen := map[int]bool{}
	scans := 0
	for _, s := range spans {
		if s.Name == "list_scan" {
			nodesSeen[s.Node] = true
			scans++
		}
	}
	if len(nodesSeen) != shards {
		t.Fatalf("list_scan spans from %d nodes, want all %d: %v", len(nodesSeen), shards, spans)
	}
	// Sample phase ships one list_scan per node; deep adds at most one more
	// per loaded node. Far fewer than one per query proves sharing.
	if scans > 2*shards {
		t.Fatalf("%d list_scan spans for %d queries x %d shards: per-query execution leaked in", scans, len(queries), shards)
	}
}

func groupscanTotal(regs []*telemetry.Registry) float64 {
	total := 0.0
	for i, reg := range regs {
		total += reg.Snapshot()[`hermes_node_groupscan_queries_total{shard="`+strconv.Itoa(i)+`"}`]
	}
	return total
}

// TestGroupedDegradeObservable runs a grouped coordinator over a mixed
// cluster and requires the silent degrade to become visible: the batch
// reports it, the hermes_coordinator_group_degrade_total counter moves, and a
// group.degrade event lands in the log — while results stay correct.
func TestGroupedDegradeObservable(t *testing.T) {
	const shards = 2
	c, err := corpus.Generate(corpus.Spec{NumChunks: 700, Dim: 16, NumTopics: shards, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(0, st.Shards[0].Index, nil)
	if err != nil {
		t.Fatal(err)
	}
	node.SetTelemetry(telemetry.NewRegistry())
	if err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	serveV4Node(t, ln, 1, st.Shards[1].Index)

	reg := telemetry.NewRegistry()
	ev := evlog.New(evlog.Config{Capacity: 64})
	co, err := DialOpts([]string{node.Addr(), ln.Addr().String()}, DialOptions{
		Timeout: time.Second, Telemetry: reg, Grouped: true, Events: ev,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	qs := c.Queries(10, 29)
	queries := make([][]float32, qs.Vectors.Len())
	for i := range queries {
		queries[i] = qs.Vectors.Row(i)
	}
	res, err := co.SearchBatch(queries, hermes.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// The old node answers the sample round (and possibly a deep round)
	// without GroupedExec; the current node must not be counted.
	if res.Degraded < 1 {
		t.Fatalf("Degraded = %d, want >= 1 for a mixed cluster", res.Degraded)
	}
	if got := reg.Snapshot()["hermes_coordinator_group_degrade_total"]; got != float64(res.Degraded) {
		t.Fatalf("group_degrade_total = %v, want %d", got, res.Degraded)
	}
	found := false
	for _, e := range ev.Events() {
		if e.Name == "group.degrade" {
			found = true
		}
	}
	if !found {
		t.Fatal("no group.degrade event emitted")
	}
	// The degraded queries keep a wire-byte floor in the ledger even though
	// the old node shipped no cost entries.
	for i, cst := range res.Costs {
		if cst.WireBytes <= 0 {
			t.Fatalf("degraded query %d lost its wire-byte floor: %+v", i, cst)
		}
	}

	// An all-current cluster run in the same process keeps the counter
	// untouched (no false degrades).
	before := reg.Snapshot()["hermes_coordinator_group_degrade_total"]
	node2, err := NewNode(1, st.Shards[1].Index, nil)
	if err != nil {
		t.Fatal(err)
	}
	node2.SetTelemetry(telemetry.NewRegistry())
	if err := node2.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer node2.Close()
	co2, err := DialOpts([]string{node.Addr(), node2.Addr()}, DialOptions{
		Timeout: time.Second, Telemetry: reg, Grouped: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()
	if res2, err := co2.SearchBatch(queries, hermes.DefaultParams()); err != nil {
		t.Fatal(err)
	} else if res2.Degraded != 0 {
		t.Fatalf("all-current cluster reported %d degrades", res2.Degraded)
	}
	if after := reg.Snapshot()["hermes_coordinator_group_degrade_total"]; after != before {
		t.Fatalf("degrade counter moved on an all-current cluster: %v -> %v", before, after)
	}
}

// TestGroupedBatchE2EDebugQueries is the real-TCP end-to-end: a traced
// grouped batch over live nodes lands in the flight recorder as one batch
// summary (grouped waterfall with shared node spans from every shard) plus
// member records, and /debug/queries?batch= renders the waterfall and the
// attribution table whose totals row matches the batch.
func TestGroupedBatchE2EDebugQueries(t *testing.T) {
	const shards = 3
	rec := telemetry.NewRecorder(128, time.Hour)
	c, co, _ := groupedCluster(t, shards, DialOptions{Grouped: true, Recorder: rec})
	qs := c.Queries(12, 37)
	queries := make([][]float32, qs.Vectors.Len())
	for i := range queries {
		queries[i] = qs.Vectors.Row(i)
	}
	tr := telemetry.NewTrace()
	res, err := co.SearchBatchTraced(queries, hermes.DefaultParams(), tr)
	if err != nil {
		t.Fatal(err)
	}

	batch, members, ok := rec.Batch(res.BatchID)
	if !ok {
		t.Fatalf("batch %016x not in recorder", res.BatchID)
	}
	if !batch.IsBatch() || batch.Cost != res.Total {
		t.Fatalf("batch summary %+v does not carry the batch totals %+v", batch.Cost, res.Total)
	}
	if len(members) != len(queries) {
		t.Fatalf("%d member records, want %d", len(members), len(queries))
	}
	var sum telemetry.QueryCost
	for _, m := range members {
		sum.Add(m.Cost)
	}
	if sum != batch.Cost {
		t.Fatalf("member records sum %+v != batch record %+v", sum, batch.Cost)
	}
	nodesSeen := map[int]bool{}
	for _, s := range batch.Spans {
		if s.Node != telemetry.NodeLocal {
			nodesSeen[s.Node] = true
		}
	}
	if len(nodesSeen) != shards {
		t.Fatalf("batch waterfall has node spans from %d shards, want %d", len(nodesSeen), shards)
	}

	id := strconv.FormatUint(res.BatchID, 16)
	w := httptest.NewRecorder()
	rec.ServeQueries(w, httptest.NewRequest("GET", "/debug/queries?batch="+id, nil))
	body := w.Body.String()
	for _, want := range []string{
		"grouped batch",
		"per-query attribution (amortization breakdown):",
		"codes_amort",
		// Shared node spans render with their shard qualifier in the
		// waterfall (stitched from every node's shipped spans).
		"n0.list_scan", "n1.list_scan", "n2.list_scan",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("?batch= view missing %q:\n%s", want, body)
		}
	}

	// The plain listing marks the batch summary and its members.
	w = httptest.NewRecorder()
	rec.ServeQueries(w, httptest.NewRequest("GET", "/debug/queries?n=64", nil))
	list := w.Body.String()
	if !strings.Contains(list, "[batch]") || !strings.Contains(list, "batch="+strings.Repeat("0", 16-len(id))+id) {
		t.Fatalf("listing does not mark the batch records:\n%s", list)
	}
}
