//go:build amd64

#include "textflag.h"

// func pqScanAsm(codes []byte, tables [][256]float32, n int, out []float32)
//
// ADC table-gather scan. tables is M rows of [256]float32 (4 KiB stride
// between the same lane of consecutive rows is 1 KiB = 256*4), codes is n
// packed M-byte codes. Caller guarantees M > 0, M % 4 == 0,
// len(codes) >= n*M, len(out) >= n.
//
// Codes are processed in pairs: eight scalar accumulators (four per code,
// one per subquantizer lane) give eight independent ADDSS dependency chains,
// enough to hide the 3-4 cycle add latency behind the L1-resident gathers.
// ADDSS with a memory operand has no alignment requirement, so gathers fold
// directly into the adds.
TEXT ·pqScanAsm(SB), NOSPLIT, $0-80
	MOVQ codes_base+0(FP), SI
	MOVQ tables_base+24(FP), DX
	MOVQ tables_len+32(FP), CX // M, multiple of 4
	MOVQ n+48(FP), BX
	MOVQ out_base+56(FP), DI

	XORQ R14, R14 // i: index of the next code to evaluate

pair:
	MOVQ BX, AX
	SUBQ R14, AX
	CMPQ AX, $2
	JLT  single

	XORPS X0, X0 // code A lanes 4k+0..3
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORPS X4, X4 // code B lanes 4k+0..3
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7

	MOVQ SI, R8          // cursor into code A
	LEAQ (SI)(CX*1), R9  // cursor into code B
	MOVQ DX, R10         // table row cursor
	MOVQ CX, R11         // remaining subquantizers

pairInner:
	MOVBLZX (R8), R12
	ADDSS   (R10)(R12*4), X0
	MOVBLZX (R9), R13
	ADDSS   (R10)(R13*4), X4
	MOVBLZX 1(R8), R12
	ADDSS   1024(R10)(R12*4), X1
	MOVBLZX 1(R9), R13
	ADDSS   1024(R10)(R13*4), X5
	MOVBLZX 2(R8), R12
	ADDSS   2048(R10)(R12*4), X2
	MOVBLZX 2(R9), R13
	ADDSS   2048(R10)(R13*4), X6
	MOVBLZX 3(R8), R12
	ADDSS   3072(R10)(R12*4), X3
	MOVBLZX 3(R9), R13
	ADDSS   3072(R10)(R13*4), X7

	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4096, R10
	SUBQ $4, R11
	JNZ  pairInner

	ADDSS X1, X0 // reduce as (0+1)+(2+3), matching the Go lanes
	ADDSS X3, X2
	ADDSS X2, X0
	MOVSS X0, (DI)(R14*4)
	ADDSS X5, X4
	ADDSS X7, X6
	ADDSS X6, X4
	MOVSS X4, 4(DI)(R14*4)

	LEAQ (SI)(CX*2), SI
	ADDQ $2, R14
	JMP  pair

single:
	CMPQ AX, $1
	JLT  done

	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3

	MOVQ SI, R8
	MOVQ DX, R10
	MOVQ CX, R11

singleInner:
	MOVBLZX (R8), R12
	ADDSS   (R10)(R12*4), X0
	MOVBLZX 1(R8), R12
	ADDSS   1024(R10)(R12*4), X1
	MOVBLZX 2(R8), R12
	ADDSS   2048(R10)(R12*4), X2
	MOVBLZX 3(R8), R12
	ADDSS   3072(R10)(R12*4), X3

	ADDQ $4, R8
	ADDQ $4096, R10
	SUBQ $4, R11
	JNZ  singleInner

	ADDSS X1, X0
	ADDSS X3, X2
	ADDSS X2, X0
	MOVSS X0, (DI)(R14*4)

done:
	RET
