package telemetry

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestConcurrentWritersAndScrape hammers one registry from many goroutines —
// incrementing shared handles, minting new labeled series, observing
// histograms — while other goroutines continuously render /metrics and take
// snapshots. Run under -race (scripts/verify.sh includes this package in the
// race list); the assertions double as a consistency check of the totals.
func TestConcurrentWritersAndScrape(t *testing.T) {
	reg := NewRegistry()
	const writers = 8
	const iters = 500

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				reg.Counter("race_requests_total", "shared counter").Inc()
				reg.Counter("race_by_worker_total", "per-worker series", "worker", fmt.Sprint(w)).Inc()
				reg.Gauge("race_gauge", "shared gauge").Add(1)
				reg.Histogram("race_lat_seconds", "latency", DefLatencyBuckets).Observe(float64(i%100) / 1000)
				reg.Histogram("race_lat_seconds", "latency", DefLatencyBuckets, "worker", fmt.Sprint(w)).Observe(0.001)
			}
		}(w)
	}
	// Concurrent scrapers: exposition rendering and snapshots while series
	// are appearing and moving.
	scrapeDone := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-scrapeDone:
					return
				default:
					if err := reg.WritePrometheus(io.Discard); err != nil {
						t.Errorf("WritePrometheus: %v", err)
						return
					}
					_ = reg.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	close(scrapeDone)
	scrapeWG.Wait()

	if got := reg.Counter("race_requests_total", "shared counter").Value(); got != writers*iters {
		t.Errorf("shared counter = %d, want %d", got, writers*iters)
	}
	if got := reg.Gauge("race_gauge", "shared gauge").Value(); got != writers*iters {
		t.Errorf("gauge = %v, want %d", got, writers*iters)
	}
	if got := reg.Histogram("race_lat_seconds", "latency", DefLatencyBuckets).Count(); got != writers*iters {
		t.Errorf("histogram count = %d, want %d", got, writers*iters)
	}
	for w := 0; w < writers; w++ {
		if got := reg.Counter("race_by_worker_total", "per-worker series", "worker", fmt.Sprint(w)).Value(); got != iters {
			t.Errorf("worker %d counter = %d, want %d", w, got, iters)
		}
	}
}

// TestConcurrentTraceSpans exercises one trace from parallel goroutines.
func TestConcurrentTraceSpans(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			done := tr.StartSpan(fmt.Sprintf("phase%d", i%4))
			done()
		}(i)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 16 {
		t.Errorf("spans = %d, want 16", got)
	}
}
