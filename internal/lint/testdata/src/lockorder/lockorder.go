// Package lockorder is the fixture for the lock-order-cycle analyzer. Three
// lock pairs: A/B cycle via direct acquisitions, C/D cycle where one
// direction runs through a helper (the witness names the call), and E/F
// cycle suppressed at its canonical witness. G/H acquire in one global
// order everywhere and stay silent.
package lockorder

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

// ab holds A.mu while taking B.mu: the A.mu -> B.mu edge. Source order puts
// this witness first, so the cycle's single finding lands here.
func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle"
	b.n++
	a.n++
	b.mu.Unlock()
	a.mu.Unlock()
}

// ba inverts the order: the B.mu -> A.mu edge closing the cycle.
func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.n++
	b.n++
	a.mu.Unlock()
	b.mu.Unlock()
}

type C struct{ mu sync.Mutex }

type D struct {
	mu sync.Mutex
	n  int
}

// bumpD's acquires fact is {D.mu}; callers holding another lock inherit the
// edge from the call site.
func bumpD(d *D) {
	d.mu.Lock()
	d.n++
	d.mu.Unlock()
}

// cThenD witnesses C.mu -> D.mu through the helper call, not a literal
// Lock() — the interprocedural half of the cycle.
func cThenD(c *C, d *D) {
	c.mu.Lock()
	bumpD(d) // want "via call to lockorder.bumpD"
	c.mu.Unlock()
}

func dThenC(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock()
	d.n++
	c.mu.Unlock()
	d.mu.Unlock()
}

type E struct{ mu sync.Mutex }

type F struct {
	mu sync.Mutex
	n  int
}

// efTeardown inverts fThenE's order, but only ever runs single-threaded
// after serving stops — the justified-survivor shape.
func efTeardown(e *E, f *F) {
	e.mu.Lock()
	//lint:ignore lockorder fixture: teardown runs alone after all workers join
	f.mu.Lock()
	f.n++
	f.mu.Unlock()
	e.mu.Unlock()
}

func fThenE(e *E, f *F) {
	f.mu.Lock()
	e.mu.Lock()
	f.n++
	e.mu.Unlock()
	f.mu.Unlock()
}

type G struct{ mu sync.Mutex }

type H struct {
	mu sync.Mutex
	n  int
}

// gh and ghAgain agree on G.mu before H.mu: a consistent global order is
// exactly what the analyzer asks for, so no finding.
func gh(g *G, h *H) {
	g.mu.Lock()
	h.mu.Lock()
	h.n++
	h.mu.Unlock()
	g.mu.Unlock()
}

func ghAgain(g *G, h *H) {
	g.mu.Lock()
	h.mu.Lock()
	h.n += 2
	h.mu.Unlock()
	g.mu.Unlock()
}
