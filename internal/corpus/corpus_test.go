package corpus

import (
	"math"
	"strings"
	"testing"

	"repro/internal/vec"
)

func mustGenerate(t testing.TB, spec Spec) *Corpus {
	t.Helper()
	c, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateShapes(t *testing.T) {
	c := mustGenerate(t, Spec{NumChunks: 500, Dim: 16, NumTopics: 5, Seed: 1})
	if c.Vectors.Len() != 500 || c.Vectors.Dim != 16 {
		t.Fatalf("vectors shape %dx%d", c.Vectors.Len(), c.Vectors.Dim)
	}
	if len(c.Topics) != 500 {
		t.Fatalf("topics len %d", len(c.Topics))
	}
	if c.Centers.Len() != 5 {
		t.Fatalf("centers len %d", c.Centers.Len())
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{NumChunks: 0, Dim: 4, NumTopics: 1}); err == nil {
		t.Fatal("NumChunks=0 should error")
	}
	if _, err := Generate(Spec{NumChunks: 2, Dim: 4, NumTopics: 5}); err == nil {
		t.Fatal("NumTopics > NumChunks should error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{NumChunks: 200, Dim: 8, NumTopics: 4, Seed: 42}
	a := mustGenerate(t, spec)
	b := mustGenerate(t, spec)
	for i := 0; i < 200; i++ {
		if a.Topics[i] != b.Topics[i] {
			t.Fatalf("topic %d differs", i)
		}
		for d := 0; d < 8; d++ {
			if a.Vectors.Row(i)[d] != b.Vectors.Row(i)[d] {
				t.Fatalf("vector %d dim %d differs", i, d)
			}
		}
	}
}

func TestChunksNearTheirTopicCenter(t *testing.T) {
	c := mustGenerate(t, Spec{NumChunks: 1000, Dim: 12, NumTopics: 6, Seed: 2})
	misassigned := 0
	for i := 0; i < c.Vectors.Len(); i++ {
		nearest, _ := c.Centers.ArgMinL2(c.Vectors.Row(i))
		if nearest != c.Topics[i] {
			misassigned++
		}
	}
	// Topic separation (centers at radius 2, spread 0.25) should make
	// misassignment essentially zero.
	if frac := float64(misassigned) / 1000; frac > 0.02 {
		t.Fatalf("%.1f%% of chunks closer to a foreign topic center", frac*100)
	}
}

func TestAllTopicsPopulated(t *testing.T) {
	c := mustGenerate(t, Spec{NumChunks: 300, Dim: 8, NumTopics: 10, Seed: 3})
	seen := make(map[int]int)
	for _, tp := range c.Topics {
		seen[tp]++
	}
	if len(seen) != 10 {
		t.Fatalf("only %d topics populated", len(seen))
	}
}

func TestTopicSizeImbalanceBounded(t *testing.T) {
	c := mustGenerate(t, Spec{NumChunks: 10000, Dim: 4, NumTopics: 10, Seed: 4})
	counts := make([]int, 10)
	for _, tp := range c.Topics {
		counts[tp]++
	}
	minC, maxC := counts[0], counts[0]
	for _, n := range counts[1:] {
		if n < minC {
			minC = n
		}
		if n > maxC {
			maxC = n
		}
	}
	ratio := float64(maxC) / float64(minC)
	// The generator targets the paper's ~2x spread; allow (1, 3.5].
	if ratio <= 1.0 || ratio > 3.5 {
		t.Fatalf("topic size imbalance %v outside expected range", ratio)
	}
}

func TestTokens(t *testing.T) {
	c := mustGenerate(t, Spec{NumChunks: 100, Dim: 4, NumTopics: 2, Seed: 5, TokensPerChunk: 32})
	if c.Tokens() != 3200 {
		t.Fatalf("Tokens = %d", c.Tokens())
	}
}

func TestQueriesFollowTopicSkew(t *testing.T) {
	c := mustGenerate(t, Spec{NumChunks: 1000, Dim: 8, NumTopics: 8, Seed: 6, ZipfS: 1.5})
	qs := c.Queries(4000, 7)
	counts := make([]float64, 8)
	for _, tp := range qs.Topics {
		counts[tp]++
	}
	weights := c.TopicWeights()
	// Empirical frequencies should correlate with the weights: the most
	// popular topic must receive more queries than the least popular.
	maxW, minW := 0, 0
	for i := range weights {
		if weights[i] > weights[maxW] {
			maxW = i
		}
		if weights[i] < weights[minW] {
			minW = i
		}
	}
	if counts[maxW] <= counts[minW] {
		t.Fatalf("popular topic got %v queries, unpopular %v", counts[maxW], counts[minW])
	}
	// Chi-square-lite: each empirical frequency within 3x of expectation.
	for i := range weights {
		expected := weights[i] * 4000
		if expected > 20 && (counts[i] > 3*expected || counts[i] < expected/3) {
			t.Fatalf("topic %d frequency %v far from expectation %v", i, counts[i], expected)
		}
	}
}

func TestQueriesNearTopicCenters(t *testing.T) {
	c := mustGenerate(t, Spec{NumChunks: 500, Dim: 8, NumTopics: 4, Seed: 8})
	qs := c.Queries(100, 9)
	for i := 0; i < qs.Vectors.Len(); i++ {
		d := vec.L2Squared(qs.Vectors.Row(i), c.Centers.Row(qs.Topics[i]))
		// Spread is 0.3 (=0.25*1.2) per dim over 8 dims → E[d] ≈ 0.72.
		if float64(d) > 8 {
			t.Fatalf("query %d distance %v to its topic center too large", i, d)
		}
	}
}

func TestUniformTopicsWhenZipfDisabled(t *testing.T) {
	c := mustGenerate(t, Spec{NumChunks: 400, Dim: 4, NumTopics: 4, Seed: 10, ZipfS: -1})
	w := c.TopicWeights()
	for _, x := range w {
		if math.Abs(x-0.25) > 1e-9 {
			t.Fatalf("weights not uniform: %v", w)
		}
	}
}

func TestChunkStoreGet(t *testing.T) {
	c := mustGenerate(t, Spec{NumChunks: 50, Dim: 4, NumTopics: 2, Seed: 11, TokensPerChunk: 16})
	s := NewChunkStore(c)
	txt, err := s.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(txt, "[chunk 7 topic ") {
		t.Fatalf("chunk text = %q", txt)
	}
	// Roughly TokensPerChunk words.
	words := len(strings.Fields(txt))
	if words < 10 || words > 20 {
		t.Fatalf("chunk has %d words, want ~16", words)
	}
}

func TestChunkStoreDeterministic(t *testing.T) {
	c := mustGenerate(t, Spec{NumChunks: 20, Dim: 4, NumTopics: 2, Seed: 12})
	s1 := NewChunkStore(c)
	s2 := NewChunkStore(c)
	a, _ := s1.Get(5)
	b, _ := s2.Get(5)
	if a != b {
		t.Fatal("chunk text not deterministic")
	}
	// Cached second read identical.
	a2, _ := s1.Get(5)
	if a2 != a {
		t.Fatal("cached read differs")
	}
}

func TestChunkStoreOutOfRange(t *testing.T) {
	c := mustGenerate(t, Spec{NumChunks: 10, Dim: 4, NumTopics: 2, Seed: 13})
	s := NewChunkStore(c)
	if _, err := s.Get(-1); err == nil {
		t.Fatal("negative ID should error")
	}
	if _, err := s.Get(10); err == nil {
		t.Fatal("ID >= len should error")
	}
}

func TestChunkStoreGetMany(t *testing.T) {
	c := mustGenerate(t, Spec{NumChunks: 10, Dim: 4, NumTopics: 2, Seed: 14})
	s := NewChunkStore(c)
	texts, err := s.GetMany([]int64{0, 3, 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(texts) != 3 {
		t.Fatalf("got %d texts", len(texts))
	}
	if _, err := s.GetMany([]int64{0, 99}); err == nil {
		t.Fatal("GetMany with bad ID should error")
	}
}
