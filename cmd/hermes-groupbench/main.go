// Command hermes-groupbench measures what PR 8's context-aware query
// grouping buys the serving path and writes the machine-readable record
// scripts/bench.sh publishes as BENCH_PR8.json.
//
// Three suites run, all over a topic-skewed (cell-skewed) query mix — the
// workload grouping exists for:
//
//   - scan: the ivf-level grouped multi-query cell scan in steady state,
//     through a reused GroupSearcher and result buffer. This is the
//     acceptance gate: the grouped scan path must not allocate per batch
//     once warm, or the shared-scan win leaks back out as GC pressure.
//   - store: one batch executed grouped (Store.SearchGrouped, shared cell
//     streams) versus sequentially (per-query Store.Search), with the
//     shared-scan hit rate — the fraction of logical per-cell code streams
//     the grouping avoided.
//   - serving: an open-loop Poisson load driven through the batcher twice —
//     blind FIFO flushes feeding per-query execution versus the grouping
//     scheduler (PredictCells + GroupSlack holdback) feeding SearchGrouped —
//     reporting achieved throughput and sojourn p50/p99 at the same offered
//     rate.
//
// The process exits non-zero when the grouped scan path allocates in steady
// state, so bench.sh doubles as the acceptance gate.
//
// Usage:
//
//	hermes-groupbench                   # text summary + BENCH_PR8.json
//	hermes-groupbench -out bench.json   # alternate output path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"text/tabwriter"
	"time"

	"repro/internal/batcher"
	"repro/internal/corpus"
	"repro/internal/hermes"
	"repro/internal/loadgen"
	"repro/internal/vec"
)

// scanScenario is one measured grouped-scan path.
type scanScenario struct {
	Name        string  `json:"name"`
	Queries     int     `json:"queries"`
	NsPerBatch  float64 `json:"ns_per_batch"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// MustZeroAllocs marks the acceptance-gated paths.
	MustZeroAllocs bool `json:"must_zero_allocs"`
}

// storeScenario is one whole-batch execution strategy.
type storeScenario struct {
	Name          string  `json:"name"`
	Queries       int     `json:"queries"`
	NsPerBatch    float64 `json:"ns_per_batch"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	// SharedScanRate is shared / (scanned + shared) cell streams; zero for
	// the sequential strategy by construction.
	SharedScanRate float64 `json:"shared_scan_rate"`
}

// servingScenario is one batcher policy under the open-loop load.
type servingScenario struct {
	Name           string  `json:"name"`
	OfferedQPS     float64 `json:"offered_qps"`
	AchievedQPS    float64 `json:"achieved_qps"`
	SojournP50Ms   float64 `json:"sojourn_p50_ms"`
	SojournP99Ms   float64 `json:"sojourn_p99_ms"`
	MeanBatch      float64 `json:"mean_batch"`
	Holdbacks      int64   `json:"holdbacks"`
	SharedScanRate float64 `json:"shared_scan_rate"`
}

type report struct {
	GOOS    string            `json:"goos"`
	GOARCH  string            `json:"goarch"`
	CPUs    int               `json:"cpus"`
	Scan    []scanScenario    `json:"scan"`
	Store   []storeScenario   `json:"store"`
	Serving []servingScenario `json:"serving"`
}

func main() {
	var (
		outFlag = flag.String("out", "BENCH_PR8.json", "JSON output path")
		chunks  = flag.Int("chunks", 20000, "corpus size")
		dim     = flag.Int("dim", 64, "embedding dim")
		shards  = flag.Int("shards", 4, "shard count")
		topics  = flag.Int("topics", 4, "corpus topics (fewer = heavier cell skew)")
		batch   = flag.Int("batch", 64, "batcher MaxBatch")
		wait    = flag.Duration("wait", 8*time.Millisecond, "batcher MaxWait")
		slack   = flag.Duration("slack", 4*time.Millisecond, "grouping scheduler GroupSlack")
		qps     = flag.Float64("qps", 600, "offered serving load")
		queries = flag.Int("queries", 3000, "serving arrivals per policy")
		seed    = flag.Int64("seed", 17, "generation seed")
	)
	flag.Parse()

	c, err := corpus.Generate(corpus.Spec{NumChunks: *chunks, Dim: *dim, NumTopics: *topics, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "building %d-shard store over %d chunks (dim %d, %d topics)...\n",
		*shards, *chunks, *dim, *topics)
	st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: *shards})
	if err != nil {
		fatal(err)
	}
	p := hermes.DefaultParams()
	qs := c.Queries(*batch, *seed+1)
	rows := make([][]float32, qs.Vectors.Len())
	for i := range rows {
		rows[i] = qs.Vectors.Row(i)
	}

	rep := report{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU()}
	rep.Scan = benchScan(st, rows, p)
	rep.Store = benchStore(st, rows, p)
	rep.Serving = []servingScenario{
		runServing("fifo_sequential", st, c, p, false, *qps, *queries, *batch, *wait, *slack, *seed),
		runServing("grouped_shared_scan", st, c, p, true, *qps, *queries, *batch, *wait, *slack, *seed),
	}

	printReport(rep)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*outFlag, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n", *outFlag)

	if msg := checkAcceptance(rep); msg != "" {
		fatal(fmt.Errorf("%s", msg))
	}
	fmt.Println("acceptance: grouped scan path allocation-free in steady state")
}

// benchScan times the ivf-level grouped scan through a reused GroupSearcher
// on the first shard — the steady-state serving configuration — and gates it
// at zero allocations per batch.
func benchScan(st *hermes.Store, rows [][]float32, p hermes.Params) []scanScenario {
	ix := st.Shards[0].Index
	gs := ix.NewGroupSearcher()
	dst := make([]vec.Neighbor, 0, p.K*len(rows))
	fn := func() {
		gs.Search(rows, p.K, p.DeepNProbe)
		for i := range rows {
			dst = gs.AppendResults(i, dst[:0])
		}
	}
	fn() // warm the slots, kernels, and pair buffers
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	return []scanScenario{{
		Name:           "groupscan_steady_state",
		Queries:        len(rows),
		NsPerBatch:     float64(res.NsPerOp()),
		AllocsPerOp:    testing.AllocsPerRun(100, fn),
		MustZeroAllocs: true,
	}}
}

// benchStore pits whole-batch grouped execution against the per-query loop
// on the same skewed batch.
func benchStore(st *hermes.Store, rows [][]float32, p hermes.Params) []storeScenario {
	_, gstats := st.SearchGrouped(rows, p) // warm + shared-scan accounting
	logical := gstats.Sample.CellsScanned + gstats.Deep.CellsScanned + gstats.SharedCellScans()
	rate := 0.0
	if logical > 0 {
		rate = float64(gstats.SharedCellScans()) / float64(logical)
	}
	seq := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range rows {
				st.Search(q, p)
			}
		}
	})
	grp := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st.SearchGrouped(rows, p)
		}
	})
	toScenario := func(name string, ns float64, rate float64) storeScenario {
		return storeScenario{
			Name:           name,
			Queries:        len(rows),
			NsPerBatch:     ns,
			QueriesPerSec:  float64(len(rows)) / (ns / 1e9),
			SharedScanRate: rate,
		}
	}
	return []storeScenario{
		toScenario("sequential_batch", float64(seq.NsPerOp()), 0),
		toScenario("grouped_batch", float64(grp.NsPerOp()), rate),
	}
}

// runServing drives one batcher policy with the open-loop Poisson load and
// reports throughput, sojourn tails, and grouping effectiveness.
func runServing(name string, st *hermes.Store, c *corpus.Corpus, p hermes.Params,
	grouped bool, qps float64, queries, maxBatch int, maxWait, slack time.Duration, seed int64) servingScenario {
	qset := c.Queries(queries, seed+2)
	var mu sync.Mutex
	shared, logical := 0, 0
	proc := func(batch [][]float32) ([][]vec.Neighbor, error) {
		if grouped {
			out, gs := st.SearchGrouped(batch, p)
			res := make([][]vec.Neighbor, len(out))
			for i := range out {
				res[i] = out[i].Neighbors
			}
			mu.Lock()
			shared += gs.SharedCellScans()
			logical += gs.Sample.CellsScanned + gs.Deep.CellsScanned + gs.SharedCellScans()
			mu.Unlock()
			return res, nil
		}
		res := make([][]vec.Neighbor, len(batch))
		for i, q := range batch {
			res[i], _ = st.Search(q, p)
		}
		return res, nil
	}
	cfg := batcher.Config{MaxBatch: maxBatch, MaxWait: maxWait, Process: proc}
	if grouped {
		cfg.Predict = func(q []float32) []uint64 { return st.PredictCells(q, p) }
		cfg.GroupSlack = slack
	}
	bat, err := batcher.New(cfg)
	if err != nil {
		fatal(err)
	}
	rep, err := loadgen.Run(loadgen.Config{
		TargetQPS: qps,
		Queries:   queries,
		// Workers block inside Batcher.Search until their batch flushes, so
		// the station count must comfortably exceed MaxBatch for batches to
		// fill under load.
		Concurrency: 2 * maxBatch,
		Seed:        seed,
	}, func(i int) error {
		_, err := bat.Search(qset.Vectors.Row(i % qset.Vectors.Len()))
		return err
	})
	bat.Close()
	if err != nil {
		fatal(err)
	}
	if rep.Failed > 0 {
		fatal(fmt.Errorf("serving policy %s: %d queries failed", name, rep.Failed))
	}
	stats := bat.Stats()
	rate := 0.0
	if logical > 0 {
		rate = float64(shared) / float64(logical)
	}
	return servingScenario{
		Name:           name,
		OfferedQPS:     qps,
		AchievedQPS:    rep.AchievedQPS,
		SojournP50Ms:   float64(rep.Sojourn.P50) / 1e6,
		SojournP99Ms:   float64(rep.Sojourn.P99) / 1e6,
		MeanBatch:      stats.MeanBatch,
		Holdbacks:      stats.Holdbacks,
		SharedScanRate: rate,
	}
}

// checkAcceptance returns a failure message, or "" when the record meets
// the PR 8 bar: the grouped scan path must be allocation-free in steady
// state.
func checkAcceptance(rep report) string {
	for _, s := range rep.Scan {
		if s.MustZeroAllocs && s.AllocsPerOp != 0 {
			return fmt.Sprintf("scenario %s allocates %.2f/op; must be 0", s.Name, s.AllocsPerOp)
		}
	}
	return ""
}

func printReport(rep report) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "scan scenario\tqueries\tns/batch\tallocs/op\tmust-zero\n")
	for _, s := range rep.Scan {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.2f\t%v\n", s.Name, s.Queries, s.NsPerBatch, s.AllocsPerOp, s.MustZeroAllocs)
	}
	fmt.Fprintf(tw, "\nstore scenario\tqueries\tns/batch\tqueries/sec\tshared-scan rate\n")
	for _, s := range rep.Store {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.0f\t%.3f\n", s.Name, s.Queries, s.NsPerBatch, s.QueriesPerSec, s.SharedScanRate)
	}
	fmt.Fprintf(tw, "\nserving policy\toffered\tachieved\tp50 ms\tp99 ms\tmean batch\tholdbacks\tshared-scan rate\n")
	for _, s := range rep.Serving {
		fmt.Fprintf(tw, "%s\t%.0f\t%.1f\t%.2f\t%.2f\t%.1f\t%d\t%.3f\n",
			s.Name, s.OfferedQPS, s.AchievedQPS, s.SojournP50Ms, s.SojournP99Ms, s.MeanBatch, s.Holdbacks, s.SharedScanRate)
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hermes-groupbench:", err)
	os.Exit(1)
}
