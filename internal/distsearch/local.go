package distsearch

import (
	"fmt"
	"log"

	"repro/internal/hermes"
)

// LocalCluster runs every shard node of a disaggregated store in-process on
// localhost TCP — the harness used by tests, examples/distributed, and
// quick experiments. The protocol and sockets are identical to a real
// multi-host deployment; only process placement differs.
type LocalCluster struct {
	nodes []*Node
	addrs []string
}

// LaunchLocal starts one node per shard on ephemeral localhost ports.
func LaunchLocal(store *hermes.Store, logger *log.Logger) (*LocalCluster, error) {
	lc := &LocalCluster{}
	for i, shard := range store.Shards {
		node, err := NewNode(i, shard.Index, logger)
		if err != nil {
			_ = lc.Close()
			return nil, err
		}
		if err := node.Listen("127.0.0.1:0"); err != nil {
			_ = lc.Close()
			return nil, fmt.Errorf("distsearch: launch shard %d: %w", i, err)
		}
		lc.nodes = append(lc.nodes, node)
		lc.addrs = append(lc.addrs, node.Addr())
	}
	return lc, nil
}

// Addrs returns the listen addresses of all shard nodes.
func (lc *LocalCluster) Addrs() []string {
	return append([]string(nil), lc.addrs...)
}

// Close stops every node. All nodes are closed regardless; the first close
// error is returned.
func (lc *LocalCluster) Close() error {
	var firstErr error
	for _, n := range lc.nodes {
		if n != nil {
			if err := n.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
