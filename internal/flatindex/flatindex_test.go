package flatindex

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func TestSearchExact(t *testing.T) {
	ix := New(2)
	ix.Add(10, []float32{0, 0})
	ix.Add(20, []float32{1, 0})
	ix.Add(30, []float32{5, 5})
	res := ix.Search([]float32{0.9, 0}, 2)
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].ID != 20 || res[1].ID != 10 {
		t.Fatalf("results = %+v", res)
	}
}

func TestSearchEmpty(t *testing.T) {
	ix := New(3)
	if res := ix.Search([]float32{1, 2, 3}, 5); res != nil {
		t.Fatalf("empty index returned %v", res)
	}
}

func TestSearchKZero(t *testing.T) {
	ix := New(1)
	ix.Add(1, []float32{0})
	if res := ix.Search([]float32{0}, 0); res != nil {
		t.Fatalf("k=0 returned %v", res)
	}
}

func TestSearchKLargerThanN(t *testing.T) {
	ix := New(1)
	ix.Add(1, []float32{0})
	ix.Add(2, []float32{1})
	res := ix.Search([]float32{0}, 10)
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
}

func TestAddDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).Add(1, []float32{1, 2, 3})
}

// Property: Search matches a naive sort for random inputs.
func TestSearchMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 5
		dim := rng.Intn(8) + 2
		k := rng.Intn(10) + 1
		ix := New(dim)
		data := vec.NewMatrix(n, dim)
		for i := 0; i < n; i++ {
			for d := 0; d < dim; d++ {
				data.Row(i)[d] = float32(rng.NormFloat64())
			}
		}
		ix.AddBatch(0, data)
		q := make([]float32, dim)
		for d := range q {
			q[d] = float32(rng.NormFloat64())
		}
		res := ix.Search(q, k)

		type pair struct {
			id int64
			d  float32
		}
		all := make([]pair, n)
		for i := 0; i < n; i++ {
			all[i] = pair{int64(i), vec.L2Squared(q, data.Row(i))}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
		want := k
		if n < k {
			want = n
		}
		if len(res) != want {
			return false
		}
		for i := range res {
			if res[i].Score != all[i].d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ix := New(4)
	for i := 0; i < 200; i++ {
		v := make([]float32, 4)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		ix.Add(int64(i), v)
	}
	queries := vec.NewMatrix(16, 4)
	for i := 0; i < 16; i++ {
		for d := 0; d < 4; d++ {
			queries.Row(i)[d] = float32(rng.NormFloat64())
		}
	}
	batch := ix.SearchBatch(queries, 5)
	for i := 0; i < 16; i++ {
		single := ix.Search(queries.Row(i), 5)
		if len(single) != len(batch[i]) {
			t.Fatalf("query %d: batch len %d != single len %d", i, len(batch[i]), len(single))
		}
		for j := range single {
			if single[j].ID != batch[i][j].ID {
				t.Fatalf("query %d pos %d: batch %d != single %d", i, j, batch[i][j].ID, single[j].ID)
			}
		}
	}
}

func TestGroundTruth(t *testing.T) {
	ix := New(1)
	ix.Add(100, []float32{0})
	ix.Add(200, []float32{1})
	queries := vec.MatrixFromRows([][]float32{{0.1}, {0.9}})
	gt := ix.GroundTruth(queries, 1)
	if gt[0][0] != 100 || gt[1][0] != 200 {
		t.Fatalf("ground truth = %v", gt)
	}
}

func TestMemoryBytes(t *testing.T) {
	ix := New(4)
	ix.Add(1, []float32{1, 2, 3, 4})
	if got := ix.MemoryBytes(); got != 4*4+8 {
		t.Fatalf("MemoryBytes = %d", got)
	}
}

func BenchmarkFlatSearch10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ix := New(64)
	for i := 0; i < 10000; i++ {
		v := make([]float32, 64)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		ix.Add(int64(i), v)
	}
	q := make([]float32, 64)
	for d := range q {
		q[d] = float32(rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Search(q, 10)
	}
}
