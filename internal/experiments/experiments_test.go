package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tinyScale keeps the measured experiments fast in CI.
func tinyScale() Scale {
	return Scale{Chunks: 1500, Dim: 16, Queries: 20, Shards: 10, Seed: 42}
}

func runOne(t *testing.T, id string) []*Table {
	t.Helper()
	tabs, err := Run(id, tinyScale())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tabs) == 0 {
		t.Fatalf("%s returned no tables", id)
	}
	for _, tab := range tabs {
		if tab.ID == "" || tab.Title == "" || len(tab.Header) == 0 || len(tab.Rows) == 0 {
			t.Fatalf("%s produced an empty table: %+v", id, tab)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("%s row width %d != header %d", id, len(row), len(tab.Header))
			}
		}
	}
	return tabs
}

func cell(t *testing.T, tab *Table, row int, col string) float64 {
	t.Helper()
	for i, h := range tab.Header {
		if h == col {
			v, err := strconv.ParseFloat(tab.Rows[row][i], 64)
			if err != nil {
				t.Fatalf("cell %s[%d] = %q not numeric: %v", col, row, tab.Rows[row][i], err)
			}
			return v
		}
	}
	t.Fatalf("no column %q in %v", col, tab.Header)
	return 0
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", tinyScale()); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestIDsComplete(t *testing.T) {
	want := []string{"ablation-cachehit", "ablation-prune", "ablation-rerank", "ablation-residual", "ablation-seeds",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig16", "fig17",
		"fig18", "fig19", "fig20", "fig21", "fig4", "fig5", "fig6", "fig7", "fig8", "table1", "validate-model"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %d experiments", got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Header: []string{"a", "b"}, Notes: []string{"n"}}
	tab.AddRow("v", 1.5)
	var txt bytes.Buffer
	if err := tab.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	for _, want := range []string{"== x: T ==", "a", "1.5", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	var csvBuf bytes.Buffer
	if err := tab.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvBuf.String(), "a,b\n") {
		t.Fatalf("csv output wrong: %q", csvBuf.String())
	}
}

func TestTable1Shape(t *testing.T) {
	tabs := runOne(t, "table1")
	tab := tabs[0]
	if len(tab.Rows) != 7 {
		t.Fatalf("Table 1 should have 7 schemes, got %d", len(tab.Rows))
	}
	flat := cell(t, tab, 0, "recall@10")
	sq8 := cell(t, tab, 1, "recall@10")
	sq4 := cell(t, tab, 2, "recall@10")
	// Table 1's ordering: Flat >= SQ8 > SQ4, with SQ8 close to Flat.
	if !(flat >= sq8 && sq8 > sq4) {
		t.Fatalf("recall ordering violated: flat=%v sq8=%v sq4=%v", flat, sq8, sq4)
	}
	if flat-sq8 > 0.05 {
		t.Fatalf("SQ8 recall %v too far below Flat %v", sq8, flat)
	}
	// Byte sizes at 768 dims must match the paper exactly.
	if tab.Rows[0][4] != "3072" || tab.Rows[1][4] != "768" || tab.Rows[2][4] != "384" {
		t.Fatalf("768-dim byte sizes wrong: %v", tab.Rows)
	}
}

func TestFig4Shape(t *testing.T) {
	tab := runOne(t, "fig4")[0]
	// Rows: IVF b32, HNSW b32, IVF b128, HNSW b128.
	ivfMem := cell(t, tab, 0, "memory_bytes")
	hnswMem := cell(t, tab, 1, "memory_bytes")
	if hnswMem < 2*ivfMem {
		t.Fatalf("HNSW memory %v should be >= 2x IVF-SQ8 %v (paper: 2.3x)", hnswMem, ivfMem)
	}
	for row := 0; row < 4; row++ {
		if r := cell(t, tab, row, "recall@10"); r < 0.85 {
			t.Fatalf("row %d recall %v too low for a fair comparison", row, r)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	tab := runOne(t, "fig11")[0]
	last := len(tab.Rows) - 1
	// Hermes reaches (near) monolithic accuracy by 3 clusters.
	mono := cell(t, tab, 2, "monolithic")
	hermes3 := cell(t, tab, 2, "hermes")
	if hermes3 < mono-0.05 {
		t.Fatalf("Hermes@3 NDCG %v below monolithic %v", hermes3, mono)
	}
	// Naive split climbs roughly linearly and only converges at the end.
	split1 := cell(t, tab, 0, "naive_split")
	split10 := cell(t, tab, last, "naive_split")
	if split1 > 0.5 {
		t.Fatalf("naive split@1 NDCG %v implausibly high", split1)
	}
	if split10 < 0.9 {
		t.Fatalf("naive split@all NDCG %v should approach 1", split10)
	}
	// Hermes beats naive split at 3 clusters by a wide margin.
	if hermes3 < cell(t, tab, 2, "naive_split")+0.2 {
		t.Fatal("Hermes should dominate naive split at 3 clusters")
	}
}

func TestFig12Shape(t *testing.T) {
	tabs := runOne(t, "fig12")
	if len(tabs) != 2 {
		t.Fatalf("fig12 should emit 2 tables, got %d", len(tabs))
	}
	small := tabs[0]
	// Within the sample sweep, NDCG at a given clusters-searched should not
	// decrease as sample nProbe grows from 1 to 8 (rows are grouped by
	// sample nProbe, 10 rows each; compare clusters_searched = 3).
	n := 10
	ndcgSp1 := cell(t, small, 2, "ndcg")
	ndcgSp8 := cell(t, small, 3*n+2, "ndcg")
	if ndcgSp8 < ndcgSp1-0.05 {
		t.Fatalf("sample nProbe 8 NDCG %v should be >= nProbe 1 %v", ndcgSp8, ndcgSp1)
	}
}

func TestFig13Shape(t *testing.T) {
	tab := runOne(t, "fig13")[0]
	if len(tab.Rows) != 10 {
		t.Fatalf("fig13 should list 10 clusters, got %d", len(tab.Rows))
	}
	var minAcc, maxAcc float64
	for row := range tab.Rows {
		acc := cell(t, tab, row, "deep_accesses")
		if row == 0 || acc < minAcc {
			minAcc = acc
		}
		if acc > maxAcc {
			maxAcc = acc
		}
	}
	if minAcc > 0 && maxAcc/minAcc < 2 {
		t.Fatalf("access imbalance %v, paper reports > 2x", maxAcc/minAcc)
	}
}

func TestFig5Shape(t *testing.T) {
	tabs := runOne(t, "fig5")
	ppl := tabs[0]
	// RETRO with retrieval at the smallest stride beats the 2x model.
	lastRow := len(ppl.Rows) - 1
	retro := cell(t, ppl, lastRow, "retro_578m_with_retrieval")
	big := cell(t, ppl, lastRow, "gpt2_1.5b")
	if retro > big {
		t.Fatalf("RETRO at stride 2 PPL %v should be <= 1.5B %v", retro, big)
	}
	lat := tabs[1]
	// Retrieval latency grows as stride shrinks.
	first := cell(t, lat, 0, "latency_100B_s")
	last := cell(t, lat, len(lat.Rows)-1, "latency_100B_s")
	if last <= first {
		t.Fatal("latency should grow as stride shrinks")
	}
}

func TestFig6Shape(t *testing.T) {
	tab := runOne(t, "fig6")[0]
	// Retrieval fraction of TTFT grows with datastore size, passing the
	// paper's anchors (~61% at 10B, ~94% at 100B).
	frac10B := cell(t, tab, 2, "retrieval_frac_ttft")
	frac100B := cell(t, tab, 3, "retrieval_frac_ttft")
	if frac10B < 0.5 || frac10B > 0.9 {
		t.Fatalf("10B retrieval TTFT fraction %v, paper ~0.61", frac10B)
	}
	if frac100B < 0.9 {
		t.Fatalf("100B retrieval TTFT fraction %v, paper ~0.94", frac100B)
	}
	// E2E grows monotonically.
	prev := 0.0
	for row := range tab.Rows {
		e2e := cell(t, tab, row, "e2e_s")
		if e2e <= prev {
			t.Fatalf("E2E not monotone at row %d", row)
		}
		prev = e2e
	}
}

func TestFig7Shape(t *testing.T) {
	tab := runOne(t, "fig7")[0]
	// QPS falls ~10x per 10x datastore; energy/query rises ~10x.
	qps1B := cell(t, tab, 1, "qps")
	qps10B := cell(t, tab, 2, "qps")
	ratio := qps1B / qps10B
	if ratio < 5 || ratio > 15 {
		t.Fatalf("QPS scaling ratio %v, want ~10", ratio)
	}
	j10 := cell(t, tab, 2, "joules_per_query")
	j100 := cell(t, tab, 3, "joules_per_query")
	if j100/j10 < 5 {
		t.Fatalf("energy scaling ratio %v, want ~10", j100/j10)
	}
}

func TestFig8Shape(t *testing.T) {
	tab := runOne(t, "fig8")[0]
	// Both optimizations collapse to ~1x at 1T tokens.
	lastRow := len(tab.Rows) - 1
	pipe1T := cell(t, tab, lastRow, "piperag_speedup")
	cache1T := cell(t, tab, lastRow, "ragcache_speedup")
	if pipe1T > 1.1 || cache1T > 1.1 {
		t.Fatalf("prior-work speedups should collapse at 1T: pipe=%v cache=%v", pipe1T, cache1T)
	}
	// And both help somewhere below 10B.
	helped := false
	for row := 0; row < 3; row++ {
		if cell(t, tab, row, "piperag_speedup") > 1.2 || cell(t, tab, row, "ragcache_speedup") > 1.2 {
			helped = true
		}
	}
	if !helped {
		t.Fatal("prior work should help at small scale")
	}
}

func TestFig10Shape(t *testing.T) {
	tab := runOne(t, "fig10")[0]
	// Small shards fit the pipeline gap; very large ones do not.
	if tab.Rows[0][3] != "true" {
		t.Fatal("10M shard should fit the pipeline gap")
	}
	if tab.Rows[len(tab.Rows)-1][3] != "false" {
		t.Fatal("100B shard should not fit the pipeline gap")
	}
}

func TestFig14Shape(t *testing.T) {
	tabs := runOne(t, "fig14")
	lat, energy := tabs[0], tabs[1]
	for row := range lat.Rows {
		base := cell(t, lat, row, "Baseline")
		hermes := cell(t, lat, row, "Hermes")
		stacked := cell(t, lat, row, "Hermes+PipeRAG+RAGCache")
		if base != 1 {
			t.Fatalf("row %d baseline not normalized: %v", row, base)
		}
		if hermes >= 1 {
			t.Fatalf("row %d (%s): Hermes %v should beat baseline", row, lat.Rows[row][0], hermes)
		}
		if stacked > hermes+1e-9 {
			t.Fatalf("row %d: stacked %v should be <= Hermes alone %v", row, stacked, hermes)
		}
		if en := cell(t, energy, row, "Hermes"); en >= 1 {
			t.Fatalf("row %d: Hermes energy %v should beat baseline", row, en)
		}
	}
	// The 1T scenario shows the largest latency gain (paper: up to 10.25x).
	var best float64 = 1
	var bestLabel string
	for row := range lat.Rows {
		if h := cell(t, lat, row, "Hermes"); 1/h > best {
			best = 1 / h
			bestLabel = lat.Rows[row][0]
		}
	}
	if best < 5 {
		t.Fatalf("max Hermes speedup %v, paper reaches ~9-10x", best)
	}
	if !strings.Contains(bestLabel, "1T") && !strings.Contains(bestLabel, "stride=4") {
		t.Logf("largest speedup at %s (%vx)", bestLabel, best)
	}
}

func TestFig16Shape(t *testing.T) {
	tab := runOne(t, "fig16")[0]
	// TTFT speedup grows with datastore size, reaching ~9x at 1T.
	s1B := cell(t, tab, 0, "hermes_speedup")
	s1T := cell(t, tab, 2, "hermes_speedup")
	if s1T <= s1B {
		t.Fatal("TTFT speedup should grow with datastore size")
	}
	if s1T < 6 || s1T > 12 {
		t.Fatalf("1T TTFT speedup %v, paper ~9.1x", s1T)
	}
	// Prior work cannot improve TTFT beyond Hermes alone.
	for row := range tab.Rows {
		h := cell(t, tab, row, "hermes")
		p := cell(t, tab, row, "hermes+prior")
		if p < h-1e-9 {
			t.Fatalf("row %d: prior work should not beat Hermes on TTFT", row)
		}
	}
}

func TestFig17Shape(t *testing.T) {
	tab := runOne(t, "fig17")[0]
	// Speedup ordering: Phi-1.5 > Gemma2 > OPT-30B (gains shrink as
	// inference grows).
	phi := cell(t, tab, 0, "latency_speedup")
	gemma := cell(t, tab, 1, "latency_speedup")
	opt := cell(t, tab, 2, "latency_speedup")
	if !(phi > gemma && gemma > opt) {
		t.Fatalf("speedup ordering wrong: phi=%v gemma=%v opt=%v", phi, gemma, opt)
	}
	// OPT-30B requires TP=2 on A6000; Gemma2 requires TP=2 on L4.
	if tab.Rows[2][1] != "2" || tab.Rows[3][1] != "2" {
		t.Fatalf("TP constraints wrong: %v", tab.Rows)
	}
}

func TestFig18Shape(t *testing.T) {
	tab := runOne(t, "fig18")[0]
	// 3 clusters vs all 10: both ratios > 1 (paper: 1.81x / 1.77x).
	qpsRatio := cell(t, tab, 2, "vs_all_qps")
	energyRatio := cell(t, tab, 2, "vs_all_energy")
	if qpsRatio < 1.3 || energyRatio < 1.3 {
		t.Fatalf("3-cluster ratios too small: qps=%v energy=%v", qpsRatio, energyRatio)
	}
	// Energy grows monotonically with clusters searched.
	prev := 0.0
	for row := range tab.Rows {
		e := cell(t, tab, row, "energy_per_batch_J")
		if e < prev {
			t.Fatalf("energy fell at row %d", row)
		}
		prev = e
	}
}

func TestFig19Shape(t *testing.T) {
	tab := runOne(t, "fig19")[0]
	// Max shard size grows with input length at fixed output.
	var prevShard float64
	for row := range tab.Rows {
		if tab.Rows[row][1] != "32" {
			continue
		}
		shard := cell(t, tab, row, "max_shard_tokens_B")
		if shard <= prevShard {
			t.Fatalf("shard size should grow with input length (row %d)", row)
		}
		prevShard = shard
	}
}

func TestFig20Shape(t *testing.T) {
	tab := runOne(t, "fig20")[0]
	// Find each platform's best batch-128 QPS at 3 clusters searched.
	qpsAt := func(platform string) float64 {
		for row := range tab.Rows {
			if tab.Rows[row][0] == platform && tab.Rows[row][1] == "128" && tab.Rows[row][2] == "3" {
				return cell(t, tab, row, "qps")
			}
		}
		t.Fatalf("missing row for %s", platform)
		return 0
	}
	plat := qpsAt("Intel Xeon Platinum 8380")
	gold := qpsAt("Intel Xeon Gold 6448Y")
	silver := qpsAt("Intel Xeon Silver 4316")
	if !(plat > gold && gold > silver) {
		t.Fatalf("Intel ordering wrong: plat=%v gold=%v silver=%v", plat, gold, silver)
	}
}

func TestFig21Shape(t *testing.T) {
	tab := runOne(t, "fig21")[0]
	for row := range tab.Rows {
		dvfs := cell(t, tab, row, "norm_energy_dvfs")
		enh := cell(t, tab, row, "norm_energy_dvfs_enhanced")
		if dvfs >= 1 {
			t.Fatalf("row %d: baseline DVFS %v should save energy", row, dvfs)
		}
		if enh > dvfs+1e-9 {
			t.Fatalf("row %d: enhanced DVFS %v should be <= baseline %v", row, enh, dvfs)
		}
	}
	// At the paper's operating point (3 clusters) enhanced saves clearly
	// more than baseline.
	if d, e := cell(t, tab, 2, "norm_energy_dvfs"), cell(t, tab, 2, "norm_energy_dvfs_enhanced"); d-e < 0.01 {
		t.Fatalf("enhanced DVFS gain too small at 3 clusters: %v vs %v", e, d)
	}
}

func TestAblationPruneShape(t *testing.T) {
	tab := runOne(t, "ablation-prune")[0]
	baseNDCG := cell(t, tab, 0, "ndcg")
	baseDeep := cell(t, tab, 0, "mean_deep_searches")
	for row := 1; row < len(tab.Rows); row++ {
		deep := cell(t, tab, row, "mean_deep_searches")
		if deep > baseDeep {
			t.Fatalf("row %d: pruning increased deep searches", row)
		}
		if cell(t, tab, row, "ndcg") < baseNDCG-0.1 {
			t.Fatalf("row %d: pruning destroyed accuracy", row)
		}
	}
	// Some setting must actually save work.
	if cell(t, tab, 3, "deep_search_savings") <= 0 {
		t.Fatal("pruning saved nothing")
	}
}

func TestAblationRerankShape(t *testing.T) {
	tab := runOne(t, "ablation-rerank")[0]
	for row := range tab.Rows {
		raw := cell(t, tab, row, "ndcg_raw")
		rr := cell(t, tab, row, "ndcg_reranked")
		if rr < raw-1e-9 {
			t.Fatalf("row %d (%s): reranking reduced NDCG %v -> %v", row, tab.Rows[row][0], raw, rr)
		}
		if t1, t1r := cell(t, tab, row, "top1_raw"), cell(t, tab, row, "top1_reranked"); t1r < t1-1e-9 {
			t.Fatalf("row %d: reranking reduced top-1", row)
		}
	}
	// Reranking must visibly help the most aggressive quantizer (last row).
	last := len(tab.Rows) - 1
	if cell(t, tab, last, "top1_reranked")-cell(t, tab, last, "top1_raw") < 0.05 {
		t.Fatal("reranking should recover PQ top-1 accuracy")
	}
}

func TestAblationSeedsShape(t *testing.T) {
	tab := runOne(t, "ablation-seeds")[0]
	chosenIdx := -1
	minImb := -1.0
	for row := range tab.Rows {
		imb := cell(t, tab, row, "imbalance_max_over_min")
		if minImb < 0 || imb < minImb {
			minImb = imb
		}
		if tab.Rows[row][3] == "true" {
			if chosenIdx >= 0 {
				t.Fatal("multiple seeds marked chosen")
			}
			chosenIdx = row
		}
	}
	if chosenIdx < 0 {
		t.Fatal("no seed marked chosen")
	}
	if got := cell(t, tab, chosenIdx, "imbalance_max_over_min"); got != minImb {
		t.Fatalf("chosen seed imbalance %v is not the minimum %v", got, minImb)
	}
}

func TestAblationResidualShape(t *testing.T) {
	tab := runOne(t, "ablation-residual")[0]
	for row := range tab.Rows {
		plain := cell(t, tab, row, "recall_plain")
		residual := cell(t, tab, row, "recall_residual")
		if residual < plain-0.03 {
			t.Fatalf("row %d (%s): residual recall %v clearly below plain %v",
				row, tab.Rows[row][0], residual, plain)
		}
	}
}

func TestValidateModelShape(t *testing.T) {
	tab := runOne(t, "validate-model")[0]
	for row := range tab.Rows {
		scan := cell(t, tab, row, "measured_scan_ratio")
		energy := cell(t, tab, row, "modeled_energy_ratio")
		if scan <= 1 {
			t.Fatalf("row %d: hierarchical search should scan less than search-all (ratio %v)", row, scan)
		}
		// The model's work-proportional energy must agree with the
		// measured scan advantage in direction and within 3x (idle power
		// and the sample phase are fixed costs the scan count omits).
		if energy <= 1 {
			t.Fatalf("row %d: model shows no hierarchical energy advantage (%v)", row, energy)
		}
		if energy < scan/3 || energy > scan*3 {
			t.Fatalf("row %d: modeled energy ratio %v disagrees with measured scan ratio %v", row, energy, scan)
		}
	}
	// Advantage shrinks as more clusters are deep-searched — in both the
	// measured and the modeled series.
	if cell(t, tab, 0, "measured_scan_ratio") <= cell(t, tab, 2, "measured_scan_ratio") {
		t.Fatal("measured scan advantage should shrink with deep clusters")
	}
	if cell(t, tab, 0, "modeled_energy_ratio") <= cell(t, tab, 2, "modeled_energy_ratio") {
		t.Fatal("modeled energy advantage should shrink with deep clusters")
	}
}

func TestAblationCacheHitShape(t *testing.T) {
	tab := runOne(t, "ablation-cachehit")[0]
	prevHit := -1.0
	for row := range tab.Rows {
		hit := cell(t, tab, row, "hit_rate")
		if hit < prevHit-1e-9 {
			t.Fatalf("hit rate should not fall as capacity grows (row %d)", row)
		}
		prevHit = hit
		speedup := cell(t, tab, row, "ragcache_speedup_at_rate")
		ideal := cell(t, tab, row, "speedup_at_ideal_1.0")
		if speedup > ideal+1e-9 {
			t.Fatalf("row %d: measured-rate speedup %v exceeds ideal %v", row, speedup, ideal)
		}
		if speedup < 1 {
			t.Fatalf("row %d: caching should never slow the pipeline (%v)", row, speedup)
		}
	}
	// Even the unbounded cache must fall short of the ideal assumption
	// (compulsory misses exist in any real stream).
	last := len(tab.Rows) - 1
	if cell(t, tab, last, "hit_rate") >= 0.999 {
		t.Fatal("a real stream cannot reach a 100% hit rate (first accesses miss)")
	}
}

// Modeled experiments are pure functions of their configuration: the same
// scale and seed must regenerate byte-identical tables.
func TestModeledExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"fig5", "fig6", "fig7", "fig8", "fig14", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21"} {
		a, err := Run(id, tinyScale())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		b, err := Run(id, tinyScale())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: table counts differ", id)
		}
		for ti := range a {
			if len(a[ti].Rows) != len(b[ti].Rows) {
				t.Fatalf("%s table %d: row counts differ", id, ti)
			}
			for ri := range a[ti].Rows {
				for ci := range a[ti].Rows[ri] {
					// fig7 includes wall-clock-measured memory
					// calibration; its latency-derived cells are
					// still deterministic, but skip the whole
					// experiment's timing-sensitive columns.
					if id == "fig7" {
						continue
					}
					// fig12-style measured latencies are excluded
					// from this list entirely.
					if a[ti].Rows[ri][ci] != b[ti].Rows[ri][ci] {
						t.Fatalf("%s table %d row %d col %d: %q != %q",
							id, ti, ri, ci, a[ti].Rows[ri][ci], b[ti].Rows[ri][ci])
					}
				}
			}
		}
	}
}
