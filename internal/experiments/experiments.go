// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment function returns one or more Tables whose rows
// correspond to the series the paper plots; cmd/hermes-bench renders them as
// text or CSV and bench_test.go wraps each in a testing.B benchmark.
//
// Experiments come in two kinds, mirroring the paper's methodology:
// *measured* experiments run real indexes built in-process (Table 1, Figs 4,
// 11, 12, 13), while *modeled* experiments drive the calibrated hardware and
// LLM models through the multi-node analysis tool (Figs 5-10, 14, 16-21),
// exactly as the paper models its at-scale numbers from single-node
// measurements.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier ("table1", "fig14", ...).
	ID string
	// Title describes the artifact reproduced.
	Title string
	// Header names the columns.
	Header []string
	// Rows hold the data, already formatted.
	Rows [][]string
	// Notes document provenance (measured vs modeled) and caveats.
	Notes []string
}

// AddRow appends a formatted row built from arbitrary values.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = formatFloat(x)
		case float32:
			row[i] = formatFloat(float64(x))
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1000 || x <= -1000:
		return fmt.Sprintf("%.0f", x)
	case x >= 10 || x <= -10:
		return fmt.Sprintf("%.2f", x)
	default:
		return fmt.Sprintf("%.4f", x)
	}
}

// WriteText renders an aligned, human-readable table.
func (t *Table) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, "  "))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV renders the table as CSV (header first; notes as comment rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Scale sizes the measured experiments. Tests and benchmarks use SmallScale;
// cmd/hermes-bench defaults to FullScale.
type Scale struct {
	// Chunks is the corpus size (vectors) for measured experiments.
	Chunks int
	// Dim is the embedding dimensionality for measured experiments.
	Dim int
	// Queries is the evaluation query count.
	Queries int
	// Shards is the disaggregation factor.
	Shards int
	// Seed drives all generation.
	Seed int64
}

// SmallScale finishes each measured experiment in seconds.
func SmallScale() Scale {
	return Scale{Chunks: 3000, Dim: 24, Queries: 40, Shards: 10, Seed: 42}
}

// FullScale is the cmd/hermes-bench default (minutes on one core).
func FullScale() Scale {
	return Scale{Chunks: 20000, Dim: 64, Queries: 128, Shards: 10, Seed: 42}
}

// Func generates the tables for one experiment at a given scale.
type Func func(Scale) ([]*Table, error)

var registry = map[string]Func{}

func register(id string, f Func) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = f
}

// IDs lists registered experiment identifiers in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, sc Scale) ([]*Table, error) {
	f, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return f(sc)
}
