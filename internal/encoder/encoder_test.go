package encoder

import (
	"math"
	"testing"
	"time"

	"repro/internal/vec"
)

func TestEncodeDeterministic(t *testing.T) {
	e := NewHashEncoder(32)
	a := e.Encode("retrieval augmented generation")
	b := e.Encode("retrieval augmented generation")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("encoding not deterministic")
		}
	}
}

func TestEncodeUnitNorm(t *testing.T) {
	e := NewHashEncoder(64)
	v := e.Encode("some query text here")
	if math.Abs(float64(vec.Norm(v))-1) > 1e-5 {
		t.Fatalf("norm = %v, want 1", vec.Norm(v))
	}
}

func TestEncodeEmptyText(t *testing.T) {
	e := NewHashEncoder(8)
	v := e.Encode("   ")
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty text should embed to zero vector")
		}
	}
}

func TestSimilarTextsCloserThanDissimilar(t *testing.T) {
	e := NewHashEncoder(64)
	a := e.Encode("vector search index cluster")
	b := e.Encode("vector search index shard")
	c := e.Encode("completely unrelated words entirely")
	simAB := vec.Cosine(a, b)
	simAC := vec.Cosine(a, c)
	if simAB <= simAC {
		t.Fatalf("overlapping texts cos=%v should exceed disjoint cos=%v", simAB, simAC)
	}
}

func TestCaseInsensitive(t *testing.T) {
	e := NewHashEncoder(16)
	a := e.Encode("Hello World")
	b := e.Encode("hello world")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("encoding should be case-insensitive")
		}
	}
}

func TestEncodeBatch(t *testing.T) {
	e := NewHashEncoder(16)
	m := e.EncodeBatch([]string{"one", "two"})
	if m.Len() != 2 || m.Dim != 16 {
		t.Fatalf("batch shape %dx%d", m.Len(), m.Dim)
	}
	single := e.Encode("two")
	for d := 0; d < 16; d++ {
		if m.Row(1)[d] != single[d] {
			t.Fatal("batch row differs from single encode")
		}
	}
}

func TestLatencyModel(t *testing.T) {
	m := DefaultLatencyModel
	if m.BatchLatency(0) != 0 {
		t.Fatal("zero batch should cost nothing")
	}
	l32 := m.BatchLatency(32)
	l256 := m.BatchLatency(256)
	l512 := m.BatchLatency(512)
	if l32 <= 0 {
		t.Fatal("batch latency should be positive")
	}
	if l256 <= l32 {
		t.Fatal("larger batch should take longer")
	}
	if l512 != 2*l256 {
		t.Fatalf("two waves should double latency: %v vs %v", l512, l256)
	}
	// Encoding a batch of 128 stays in tens of milliseconds (thin Fig. 6
	// slice).
	if l := m.BatchLatency(128); l > 500*time.Millisecond {
		t.Fatalf("batch-128 encode %v implausibly slow", l)
	}
}

func TestLatencyModelEnergy(t *testing.T) {
	m := DefaultLatencyModel
	e := m.BatchEnergy(128)
	want := m.Watts * m.BatchLatency(128).Seconds()
	if math.Abs(e-want) > 1e-12 {
		t.Fatalf("energy = %v, want %v", e, want)
	}
}
