package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

// blobs generates n points around k well-separated centers in dim dims.
func blobs(n, k, dim int, seed int64) (*vec.Matrix, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := vec.NewMatrix(k, dim)
	for c := 0; c < k; c++ {
		for d := 0; d < dim; d++ {
			centers.Row(c)[d] = float32(c*10) + rng.Float32()
		}
	}
	data := vec.NewMatrix(n, dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		labels[i] = c
		for d := 0; d < dim; d++ {
			data.Row(i)[d] = centers.Row(c)[d] + float32(rng.NormFloat64())*0.1
		}
	}
	return data, labels
}

func TestTrainRecoversBlobs(t *testing.T) {
	data, labels := blobs(300, 3, 4, 1)
	res, err := Train(data, Config{K: 3, Seed: 7, PlusPlus: true})
	if err != nil {
		t.Fatal(err)
	}
	// All points with the same true label must share an assigned cluster.
	clusterOf := map[int]int{}
	for i, a := range res.Assign {
		want, seen := clusterOf[labels[i]]
		if !seen {
			clusterOf[labels[i]] = a
		} else if want != a {
			t.Fatalf("point %d (label %d) assigned %d, cluster label maps to %d", i, labels[i], a, want)
		}
	}
	if len(clusterOf) != 3 {
		t.Fatalf("found %d clusters, want 3", len(clusterOf))
	}
}

func TestTrainErrors(t *testing.T) {
	data, _ := blobs(10, 2, 3, 1)
	if _, err := Train(data, Config{K: 0}); err == nil {
		t.Fatal("K=0 should error")
	}
	if _, err := Train(data, Config{K: 11}); err == nil {
		t.Fatal("K>n should error")
	}
	if _, err := Train(data, Config{K: 5, SampleSize: 3}); err == nil {
		t.Fatal("SampleSize<K should error")
	}
}

func TestTrainDeterministic(t *testing.T) {
	data, _ := blobs(200, 4, 6, 2)
	a, err := Train(data, Config{K: 4, Seed: 42, PlusPlus: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(data, Config{K: 4, Seed: 42, PlusPlus: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Inertia != b.Inertia {
		t.Fatalf("same seed, different inertia: %v vs %v", a.Inertia, b.Inertia)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("same seed, different assignment at %d", i)
		}
	}
}

func TestSizesSumToN(t *testing.T) {
	f := func(seed int64) bool {
		data, _ := blobs(120, 4, 3, seed)
		res, err := Train(data, Config{K: 4, Seed: seed})
		if err != nil {
			return false
		}
		total := 0
		for _, s := range res.Sizes {
			total += s
		}
		return total == 120 && len(res.Assign) == 120
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: every assignment really is the nearest centroid.
func TestAssignmentsAreNearest(t *testing.T) {
	data, _ := blobs(150, 3, 5, 3)
	res, err := Train(data, Config{K: 3, Seed: 1, PlusPlus: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < data.Len(); i++ {
		nearest, _ := res.Centroids.ArgMinL2(data.Row(i))
		if res.Assign[i] != nearest {
			t.Fatalf("row %d assigned %d but nearest is %d", i, res.Assign[i], nearest)
		}
	}
}

func TestSubsetTrainingTracksFull(t *testing.T) {
	// The paper's claim: clustering on 1-2% of documents tracks the full
	// clustering. With clean blobs, subset centroids must classify the
	// full data identically to full-data centroids.
	data, labels := blobs(2000, 4, 8, 5)
	sub, err := Train(data, Config{K: 4, Seed: 9, PlusPlus: true, SampleSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	assign := AssignAll(data, sub.Centroids)
	clusterOf := map[int]int{}
	for i, a := range assign {
		want, seen := clusterOf[labels[i]]
		if !seen {
			clusterOf[labels[i]] = a
		} else if want != a {
			t.Fatalf("subset-trained centroids split true cluster %d", labels[i])
		}
	}
}

func TestImbalanceRatio(t *testing.T) {
	if r := ImbalanceRatio([]int{10, 20, 5}); r != 4 {
		t.Fatalf("imbalance = %v, want 4", r)
	}
	if r := ImbalanceRatio([]int{3, 3, 3}); r != 1 {
		t.Fatalf("balanced imbalance = %v, want 1", r)
	}
	if !math.IsInf(ImbalanceRatio([]int{0, 5}), 1) {
		t.Fatal("zero-size cluster should be +Inf")
	}
	if !math.IsInf(ImbalanceRatio(nil), 1) {
		t.Fatal("empty sizes should be +Inf")
	}
}

func TestBestSeedPicksLowestImbalance(t *testing.T) {
	data, _ := blobs(400, 4, 6, 11)
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	best, seed, err := BestSeed(data, Config{K: 4, PlusPlus: true}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	// Verify no other seed does better.
	for _, s := range seeds {
		r, err := Train(data, Config{K: 4, PlusPlus: true, Seed: s})
		if err != nil {
			t.Fatal(err)
		}
		if r.Imbalance() < best.Imbalance() {
			t.Fatalf("seed %d imbalance %v beats chosen seed %d (%v)", s, r.Imbalance(), seed, best.Imbalance())
		}
	}
}

func TestBestSeedNoSeeds(t *testing.T) {
	data, _ := blobs(40, 2, 3, 1)
	if _, _, err := BestSeed(data, Config{K: 2}, nil); err == nil {
		t.Fatal("BestSeed with no seeds should error")
	}
}

func TestAssignAll(t *testing.T) {
	centroids := vec.MatrixFromRows([][]float32{{0, 0}, {10, 10}})
	data := vec.MatrixFromRows([][]float32{{1, 1}, {9, 9}, {0.5, 0}})
	assign := AssignAll(data, centroids)
	want := []int{0, 1, 0}
	for i := range want {
		if assign[i] != want[i] {
			t.Fatalf("assign[%d] = %d, want %d", i, assign[i], want[i])
		}
	}
}

func TestInertiaDecreasesWithMoreClusters(t *testing.T) {
	data, _ := blobs(500, 5, 4, 21)
	r2, err := Train(data, Config{K: 2, Seed: 1, PlusPlus: true})
	if err != nil {
		t.Fatal(err)
	}
	r5, err := Train(data, Config{K: 5, Seed: 1, PlusPlus: true})
	if err != nil {
		t.Fatal(err)
	}
	if r5.Inertia >= r2.Inertia {
		t.Fatalf("K=5 inertia %v should be < K=2 inertia %v", r5.Inertia, r2.Inertia)
	}
}

func TestK1(t *testing.T) {
	data, _ := blobs(50, 2, 3, 4)
	res, err := Train(data, Config{K: 1, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sizes[0] != 50 {
		t.Fatalf("K=1 size = %d", res.Sizes[0])
	}
	// Centroid must be the mean.
	mean := make([]float32, 3)
	for i := 0; i < 50; i++ {
		vec.Add(mean, data.Row(i))
	}
	vec.Scale(mean, 1.0/50)
	for d := 0; d < 3; d++ {
		if math.Abs(float64(res.Centroids.Row(0)[d]-mean[d])) > 1e-4 {
			t.Fatalf("K=1 centroid[%d] = %v, want mean %v", d, res.Centroids.Row(0)[d], mean[d])
		}
	}
}
