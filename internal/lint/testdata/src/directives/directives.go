// Package directives is a lint fixture for //lint:ignore handling.
package directives

import "math/rand"

func malformed() int {
	//lint:ignore globalrand
	return rand.Int() // line 8: still flagged — the directive above has no reason
}

func wrongCheck() float32 {
	//lint:ignore wallclock a directive for another check does not suppress this one
	return rand.Float32() // line 13: still flagged
}

func multi() int {
	//lint:ignore globalrand,errdrop one directive may cover several checks
	return rand.Intn(3)
}
