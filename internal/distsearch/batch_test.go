package distsearch

import (
	"testing"

	"repro/internal/hermes"
)

func TestSearchBatchMatchesSequential(t *testing.T) {
	_, _, co, c := cluster(t, 1200, 6)
	qs := c.Queries(24, 51)
	queries := make([][]float32, qs.Vectors.Len())
	for i := range queries {
		queries[i] = qs.Vectors.Row(i)
	}
	p := hermes.DefaultParams()
	batch, err := co.SearchBatch(queries, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(queries) {
		t.Fatalf("batch returned %d results", len(batch.Results))
	}
	for i, q := range queries {
		single, err := co.Search(q, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(single.Neighbors) != len(batch.Results[i]) {
			t.Fatalf("query %d: batch %d results vs single %d", i, len(batch.Results[i]), len(single.Neighbors))
		}
		for j := range single.Neighbors {
			if single.Neighbors[j].ID != batch.Results[i][j].ID {
				t.Fatalf("query %d pos %d: batch %d != single %d", i, j,
					batch.Results[i][j].ID, single.Neighbors[j].ID)
			}
		}
	}
}

func TestSearchBatchDeepLoads(t *testing.T) {
	_, _, co, c := cluster(t, 1000, 5)
	qs := c.Queries(20, 53)
	queries := make([][]float32, qs.Vectors.Len())
	for i := range queries {
		queries[i] = qs.Vectors.Row(i)
	}
	p := hermes.DefaultParams()
	batch, err := co.SearchBatch(queries, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.DeepLoads) != 5 {
		t.Fatalf("DeepLoads len %d", len(batch.DeepLoads))
	}
	total := 0
	for _, l := range batch.DeepLoads {
		total += l
	}
	if total != 20*p.DeepClusters {
		t.Fatalf("total deep searches %d, want %d", total, 20*p.DeepClusters)
	}
	if batch.SampleLatency <= 0 || batch.DeepLatency <= 0 {
		t.Fatal("phase latencies not populated")
	}
}

func TestSearchBatchEmpty(t *testing.T) {
	_, _, co, _ := cluster(t, 400, 2)
	res, err := co.SearchBatch(nil, hermes.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 0 || len(res.DeepLoads) != 2 {
		t.Fatalf("empty batch result wrong: %+v", res)
	}
}

func TestSearchBatchDimValidation(t *testing.T) {
	_, _, co, _ := cluster(t, 400, 2)
	if _, err := co.SearchBatch([][]float32{{1, 2}}, hermes.DefaultParams()); err == nil {
		t.Fatal("wrong-dim batch query should error")
	}
}

func TestSearchBatchWithPruning(t *testing.T) {
	_, _, co, c := cluster(t, 1500, 6)
	qs := c.Queries(30, 57)
	queries := make([][]float32, qs.Vectors.Len())
	for i := range queries {
		queries[i] = qs.Vectors.Row(i)
	}
	base := hermes.DefaultParams()
	pruned := base
	pruned.PruneEps = 0.25
	rb, err := co.SearchBatch(queries, base)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := co.SearchBatch(queries, pruned)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(loads []int) int {
		t := 0
		for _, l := range loads {
			t += l
		}
		return t
	}
	if sum(rp.DeepLoads) >= sum(rb.DeepLoads) {
		t.Fatalf("pruned batch deep searches %d should be < unpruned %d",
			sum(rp.DeepLoads), sum(rb.DeepLoads))
	}
}
