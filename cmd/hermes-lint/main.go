// Command hermes-lint runs the project's custom static-analysis checks
// (see internal/lint) over package patterns and exits non-zero on any
// finding. It is part of the tier-1 verify path (scripts/verify.sh): the
// paper's latency/imbalance/energy claims depend on deterministic,
// race-free code, and these checks machine-enforce the project rules that
// keep it that way.
//
// Usage:
//
//	hermes-lint [-only checks] [-skip checks] [packages...]
//	hermes-lint ./...                      # whole module (default)
//	hermes-lint -only globalrand,errdrop ./internal/...
//	hermes-lint -list                      # describe available checks
//
// Patterns ending in /... walk recursively (testdata, vendor, and hidden
// directories are skipped); any other argument names one package
// directory, which is how the lint fixtures under
// internal/lint/testdata/src/ can be linted directly.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	var (
		only     = flag.String("only", "", "comma-separated check IDs to run exclusively")
		skip     = flag.String("skip", "", "comma-separated check IDs to disable")
		list     = flag.Bool("list", false, "list available checks and exit")
		typeWarn = flag.Bool("typewarnings", false, "print type-check problems encountered while loading")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.Select(*only, *skip)
	if err != nil {
		fatal(err)
	}
	if len(analyzers) == 0 {
		fatal(fmt.Errorf("hermes-lint: -only/-skip selected no checks"))
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		fatal(fmt.Errorf("hermes-lint: no packages matched %v", patterns))
	}

	cwd, _ := os.Getwd()
	total := 0
	for _, pkg := range pkgs {
		if *typeWarn {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "hermes-lint: typecheck %s: %v\n", pkg.Path, terr)
			}
		}
		for _, f := range lint.RunPackage(pkg, analyzers) {
			pos := f.Pos
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !filepath.IsAbs(rel) {
					pos.Filename = rel
				}
			}
			fmt.Printf("%s: %s (%s)\n", pos, f.Msg, f.Check)
			total++
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "hermes-lint: %d finding(s) in %d package(s)\n", total, len(pkgs))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
