// Quickstart: build a disaggregated Hermes datastore, run the hierarchical
// search, and compare its accuracy and work against the monolithic baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	hermes "repro"
)

func main() {
	// 1. A datastore: 5,000 chunks (= 320k tokens at 64 tokens/chunk) with
	// latent topic structure, the property Hermes' clustering exploits.
	corpus, err := hermes.GenerateCorpus(hermes.CorpusSpec{
		NumChunks: 5000,
		Dim:       32,
		NumTopics: 10,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d chunks (%d tokens), dim %d\n",
		corpus.Vectors.Len(), corpus.Tokens(), corpus.Spec.Dim)

	// 2. Offline: disaggregate into 10 similarity-clustered shards, each
	// with its own IVF-SQ8 index (paper Section 4.1). The builder sweeps
	// k-means seeds to minimize shard-size imbalance.
	store, err := hermes.Build(corpus.Vectors, hermes.BuildOptions{NumShards: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store: %d shards, sizes %v, imbalance %.2f\n",
		store.NumShards(), store.Sizes(), store.Imbalance)

	// Baselines for comparison.
	mono, err := hermes.BuildMonolithic(corpus.Vectors, 8, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	exact := hermes.NewFlatIndex(corpus.Spec.Dim)
	exact.AddBatch(0, corpus.Vectors)

	// 3. Online: hierarchical search (sample all shards cheaply, deep-search
	// the top 3) vs the monolithic search, scored against exhaustive ground
	// truth.
	queries := corpus.Queries(50, 2)
	truth := exact.GroundTruth(queries.Vectors, 5)
	params := hermes.DefaultParams()

	var hermesNDCG, monoNDCG float64
	var sampleScanned, deepScanned, monoScanned int
	for i := 0; i < queries.Vectors.Len(); i++ {
		q := queries.Vectors.Row(i)

		res, stats := store.Search(q, params)
		hermesNDCG += hermes.NDCGAtK(ids(res), truth[i], 5)
		sampleScanned += stats.SampleScanned
		deepScanned += stats.DeepScanned

		mres, mstats := mono.SearchWithStats(q, 5, 128)
		monoNDCG += hermes.NDCGAtK(ids(mres), truth[i], 5)
		monoScanned += mstats.VectorsScanned
	}
	n := float64(queries.Vectors.Len())
	fmt.Printf("\naccuracy over %d queries (NDCG@5 vs exhaustive ground truth):\n", int(n))
	fmt.Printf("  hermes (3/10 shards deep): %.4f\n", hermesNDCG/n)
	fmt.Printf("  monolithic (nProbe 128):   %.4f\n", monoNDCG/n)
	fmt.Printf("\nwork per query (vectors scanned):\n")
	fmt.Printf("  hermes: %d sample + %d deep = %d\n",
		sampleScanned/int(n), deepScanned/int(n), (sampleScanned+deepScanned)/int(n))
	fmt.Printf("  monolithic: %d\n", monoScanned/int(n))

	// 4. Map retrieved IDs back to document text — the augmentation input.
	chunks := hermes.NewChunkStore(corpus)
	res, _ := store.Search(queries.Vectors.Row(0), params)
	fmt.Printf("\ntop chunks for query 0 (topic %d):\n", queries.Topics[0])
	for rank, nb := range res {
		txt, err := chunks.Get(nb.ID)
		if err != nil {
			log.Fatal(err)
		}
		if len(txt) > 64 {
			txt = txt[:64] + "..."
		}
		fmt.Printf("  %d. %s\n", rank+1, txt)
	}
}

func ids(ns []hermes.Neighbor) []int64 {
	out := make([]int64, len(ns))
	for i, n := range ns {
		out[i] = n.ID
	}
	return out
}
