package distsearch

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/evlog"
	"repro/internal/ivf"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// arrivalReader timestamps the first byte read after each reset, giving the
// serving loop the request's wire-arrival time so the decode span starts
// when bytes hit the node, not when gob returns. The protocol strictly
// serializes request/response per connection (the coordinator holds the
// connection mutex across a round-trip), so gob's internal read-ahead can
// never have consumed the next request's first byte before reset is called.
type arrivalReader struct {
	r       io.Reader
	armed   bool
	arrival time.Time
}

func (a *arrivalReader) Read(p []byte) (int, error) {
	n, err := a.r.Read(p)
	if a.armed && n > 0 {
		a.arrival = now()
		a.armed = false
	}
	return n, err
}

func (a *arrivalReader) reset() { a.armed = true }

// Node serves one shard's IVF index over TCP.
type Node struct {
	shardID int
	index   *ivf.Index
	ln      net.Listener
	logger  *log.Logger
	met     *nodeMetrics
	ev      *evlog.Log

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// idxMu guards the shard index: searches share a read lock, OpAdd and
	// OpRemove take the write lock (ivf.Index permits concurrent reads but
	// not read/write races).
	idxMu sync.RWMutex

	// Served-request counters (atomic).
	sampleServed, deepServed, mutationsServed int64
}

// NewNode wraps a trained shard index. The logger may be nil to discard
// diagnostics.
func NewNode(shardID int, index *ivf.Index, logger *log.Logger) (*Node, error) {
	if index == nil || !index.Trained() {
		return nil, fmt.Errorf("distsearch: node %d requires a trained index", shardID)
	}
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	return &Node{
		shardID: shardID,
		index:   index,
		logger:  logger,
		met:     newNodeMetrics(telemetry.Default, shardID, index.QuantizerName()),
		conns:   make(map[net.Conn]struct{}),
	}, nil
}

// SetTelemetry points the node's metrics at reg instead of the process
// default registry. Call before Listen; a nil reg disables node telemetry.
func (n *Node) SetTelemetry(reg *telemetry.Registry) {
	n.met = newNodeMetrics(reg, n.shardID, n.index.QuantizerName())
}

// SetEvents attaches a structured event log recording connection lifecycle
// edges (accept, close, decode/encode failures). Call before Listen; a nil
// log (the default) disables event recording at zero cost.
func (n *Node) SetEvents(ev *evlog.Log) { n.ev = ev }

// Listen binds the node to addr ("127.0.0.1:0" for an ephemeral port) and
// starts the accept loop in a background goroutine.
func (n *Node) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("distsearch: node %d listen: %w", n.shardID, err)
	}
	n.ln = ln
	n.wg.Add(1)
	go n.acceptLoop()
	return nil
}

// Addr returns the bound address; Listen must have succeeded.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// ShardID returns the node's shard identifier.
func (n *Node) ShardID() int { return n.shardID }

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			if !n.isClosed() {
				n.logger.Printf("node %d accept: %v", n.shardID, err)
			}
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.conns[conn] = struct{}{}
		n.mu.Unlock()
		n.ev.Info("conn.accept", evlog.Int("shard", int64(n.shardID)), evlog.Str("remote", conn.RemoteAddr().String()))
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

func (n *Node) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
		_ = conn.Close()
		n.ev.Info("conn.close", evlog.Int("shard", int64(n.shardID)), evlog.Str("remote", conn.RemoteAddr().String()))
	}()
	ar := &arrivalReader{r: conn}
	dec := gob.NewDecoder(ar)
	enc := gob.NewEncoder(conn)
	for {
		ar.reset()
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !n.isClosed() {
				n.logger.Printf("node %d decode: %v", n.shardID, err)
				n.ev.Warn("conn.decode_error", evlog.Int("shard", int64(n.shardID)), evlog.Err(err))
			}
			return
		}
		start := now()
		arrival := start
		if !ar.armed && ar.arrival.Before(start) {
			arrival = ar.arrival
		}
		resp := n.handle(&req, arrival, start)
		served := now().Sub(start)
		resp.ServerNanos = served.Nanoseconds()
		n.met.observe(req.Op, served, req.TraceID)
		if req.TraceID != 0 && len(resp.Spans) > 0 {
			// The encode span cannot be measured around the real Encode
			// below — it must already be inside the response it times — so
			// it is approximated by a discard-encode pre-pass of the final
			// payload. A fresh encoder re-transmits gob type descriptors,
			// making this a slight upper bound on the steady-state cost.
			encStart := now()
			if err := gob.NewEncoder(io.Discard).Encode(resp); err == nil {
				resp.Spans = append(resp.Spans, WireSpan{
					Name:        "encode",
					Node:        n.shardID,
					OffsetNanos: encStart.Sub(arrival).Nanoseconds(),
					DurNanos:    now().Sub(encStart).Nanoseconds(),
				})
			}
		}
		if err := enc.Encode(resp); err != nil {
			if !n.isClosed() {
				n.logger.Printf("node %d encode: %v", n.shardID, err)
				n.ev.Warn("conn.encode_error", evlog.Int("shard", int64(n.shardID)), evlog.Err(err))
			}
			return
		}
		if req.Op == OpShutdown {
			go n.Close()
			return
		}
	}
}

func (n *Node) handle(req *Request, arrival, decodeDone time.Time) *Response {
	switch req.Op {
	case OpAdd, OpRemove, OpCompact:
		n.idxMu.Lock()
		defer n.idxMu.Unlock()
	default:
		n.idxMu.RLock()
		defer n.idxMu.RUnlock()
	}
	switch req.Op {
	case OpInfo:
		return &Response{ShardID: n.shardID, Size: n.index.Len(), Dim: n.index.Dim(), Centroid: n.meanCentroid()}
	case OpSample:
		if len(req.Query) != n.index.Dim() {
			return &Response{Err: fmt.Sprintf("node %d: query dim %d != %d", n.shardID, len(req.Query), n.index.Dim())}
		}
		atomic.AddInt64(&n.sampleServed, 1)
		return n.searchResp(req, 1, req.NProbe, arrival, decodeDone)
	case OpDeep:
		if len(req.Query) != n.index.Dim() {
			return &Response{Err: fmt.Sprintf("node %d: query dim %d != %d", n.shardID, len(req.Query), n.index.Dim())}
		}
		if req.K <= 0 {
			return &Response{Err: fmt.Sprintf("node %d: k must be positive", n.shardID)}
		}
		atomic.AddInt64(&n.deepServed, 1)
		return n.searchResp(req, req.K, req.NProbe, arrival, decodeDone)
	case OpSampleBatch:
		atomic.AddInt64(&n.sampleServed, int64(len(req.Queries)))
		return n.handleBatch(req, 1, req.NProbe, arrival, decodeDone)
	case OpDeepBatch:
		if req.K <= 0 {
			return &Response{Err: fmt.Sprintf("node %d: k must be positive", n.shardID)}
		}
		atomic.AddInt64(&n.deepServed, int64(len(req.Queries)))
		return n.handleBatch(req, req.K, req.NProbe, arrival, decodeDone)
	case OpAdd:
		if len(req.Query) != n.index.Dim() {
			return &Response{Err: fmt.Sprintf("node %d: add dim %d != %d", n.shardID, len(req.Query), n.index.Dim())}
		}
		if err := n.index.Add(req.ID, req.Query); err != nil {
			return &Response{Err: err.Error()}
		}
		atomic.AddInt64(&n.mutationsServed, 1)
		return &Response{ShardID: n.shardID, OK: true}
	case OpRemove:
		atomic.AddInt64(&n.mutationsServed, 1)
		return &Response{ShardID: n.shardID, OK: n.index.Remove(req.ID)}
	case OpStats:
		return &Response{
			ShardID:         n.shardID,
			Size:            n.index.Len(),
			SampleServed:    atomic.LoadInt64(&n.sampleServed),
			DeepServed:      atomic.LoadInt64(&n.deepServed),
			MutationsServed: atomic.LoadInt64(&n.mutationsServed),
			Tombstones:      n.index.Tombstones(),
			Telemetry:       n.met.reg.Snapshot(),
		}
	case OpMetricsSnap:
		return &Response{ShardID: n.shardID, Families: n.met.reg.Export()}
	case OpCompact:
		n.index.Compact()
		return &Response{ShardID: n.shardID, OK: true}
	case OpShutdown:
		return &Response{ShardID: n.shardID}
	default:
		return &Response{Err: fmt.Sprintf("node %d: unknown op %d", n.shardID, req.Op)}
	}
}

// meanCentroid averages the shard's coarse centroids — the routing key the
// coordinator uses for ingest.
func (n *Node) meanCentroid() []float32 {
	out := make([]float32, n.index.Dim())
	for c := 0; c < n.index.NList(); c++ {
		vec.Add(out, n.index.Centroid(c))
	}
	vec.Scale(out, 1/float32(n.index.NList()))
	return out
}

// searchResp serves one single-query search. Untraced requests take the
// clock-free path; a traced request (TraceID != 0) runs the phased search
// and ships the per-phase spans in the response. Either way the response
// carries the query's cost-ledger entry: a solo query's codes are all
// exclusive, and its scan time (traced only) is the measured list-scan phase.
func (n *Node) searchResp(req *Request, k, nProbe int, arrival, decodeDone time.Time) *Response {
	if req.TraceID == 0 {
		res, st := n.scan(req.Query, k, nProbe)
		return &Response{
			ShardID:   n.shardID,
			Neighbors: res,
			Scanned:   int64(st.VectorsScanned),
			Costs:     []telemetry.QueryCost{soloCost(st, 0)},
		}
	}
	scanStart := now()
	res, st, ph := n.scanPhased(req.Query, k, nProbe)
	return &Response{
		ShardID:   n.shardID,
		Neighbors: res,
		Scanned:   int64(st.VectorsScanned),
		Costs:     []telemetry.QueryCost{soloCost(st, ph.Scan)},
		Spans:     n.tracedSpans(arrival, decodeDone, scanStart, ph),
	}
}

// soloCost is the ledger entry of a query that shared nothing: every scanned
// code is exclusive, no cells were co-probed.
func soloCost(st ivf.SearchStats, scanNanos int64) telemetry.QueryCost {
	return telemetry.QueryCost{
		Cells:          int64(st.CellsProbed),
		CodesExclusive: int64(st.VectorsScanned),
		ScanNanos:      scanNanos,
	}
}

func (n *Node) handleBatch(req *Request, k, nProbe int, arrival, decodeDone time.Time) *Response {
	if req.Grouped {
		// Grouped execution is first-class traced or not (ISSUE 9): a traced
		// batch runs the same grouped scan phased, shipping one span per
		// shared phase plus the per-query attribution ledger — no per-query
		// fallback, so tracing no longer changes what gets measured.
		return n.groupedBatch(req, k, nProbe, arrival, decodeDone)
	}
	batch := make([][]vec.Neighbor, len(req.Queries))
	costs := make([]telemetry.QueryCost, len(req.Queries))
	traced := req.TraceID != 0
	var scanned int64
	var agg ivf.PhaseNanos
	scanStart := decodeDone
	if traced {
		scanStart = now()
	}
	for i, q := range req.Queries {
		if len(q) != n.index.Dim() {
			return &Response{Err: fmt.Sprintf("node %d: batch query %d dim %d != %d", n.shardID, i, len(q), n.index.Dim())}
		}
		if traced {
			res, st, ph := n.scanPhased(q, k, nProbe)
			batch[i] = res
			costs[i] = soloCost(st, ph.Scan)
			scanned += int64(st.VectorsScanned)
			agg.Add(ph)
		} else {
			res, st := n.scan(q, k, nProbe)
			batch[i] = res
			costs[i] = soloCost(st, 0)
			scanned += int64(st.VectorsScanned)
		}
	}
	resp := &Response{ShardID: n.shardID, Batch: batch, Scanned: scanned, Costs: costs}
	if traced {
		// A batch interleaves the three phases query by query; the shipped
		// spans consolidate them into one select/scan/merge sequence whose
		// durations are the per-phase sums — busy time is exact, the
		// offsets within the batch are a presentation choice.
		resp.Spans = n.tracedSpans(arrival, decodeDone, scanStart, agg)
	}
	return resp
}

// groupedBatch serves a batch op through the multi-query grouped cell scan:
// queries probing the same IVF cell share one code stream. The result set is
// identical to per-query execution; Scanned reports the vectors actually
// streamed (distinct), so on an overlapping batch it is smaller than the
// per-query path would report — that gap is the work the grouping saved.
// Costs attributes that distinct traffic back to the member queries
// (exclusive vs amortized, summing exactly to Scanned), and a traced request
// additionally runs the scan phased: the shared phases ship as one
// probe_select/list_scan/topk_merge span sequence for the whole batch, and
// each query's ScanNanos carries its codes-proportional share of the
// measured list-scan time.
func (n *Node) groupedBatch(req *Request, k, nProbe int, arrival, decodeDone time.Time) *Response {
	for i, q := range req.Queries {
		if len(q) != n.index.Dim() {
			return &Response{Err: fmt.Sprintf("node %d: batch query %d dim %d != %d", n.shardID, i, len(q), n.index.Dim())}
		}
	}
	traced := req.TraceID != 0
	scanStart := decodeDone
	if traced {
		scanStart = now()
	}
	// scanSeconds is deliberately not observed here: it is a per-query
	// histogram and the grouped scan has no per-query wall time — one
	// observation per batch would skew its quantiles.
	batch, stats, ph, gcosts := n.index.SearchGroupCosted(req.Queries, k, nProbe, traced)
	n.met.groupscanQueries.Add(int64(len(req.Queries)))
	n.met.groupscanShared.Add(int64(stats.SharedCellScans))
	costs := make([]telemetry.QueryCost, len(gcosts))
	for i, c := range gcosts {
		costs[i] = telemetry.QueryCost{
			Cells:          int64(c.CellsProbed),
			SharedCells:    int64(c.SharedCells),
			CodesExclusive: c.CodesExclusive,
			CodesAmortized: c.CodesAmortized,
		}
	}
	if traced && ph.Scan > 0 {
		weights := make([]int64, len(costs))
		for i := range costs {
			weights[i] = costs[i].Codes()
		}
		for i, share := range telemetry.AttributeTotal(ph.Scan, weights) {
			costs[i].ScanNanos = share
		}
	}
	resp := &Response{
		ShardID:     n.shardID,
		Batch:       batch,
		Scanned:     int64(stats.VectorsScanned),
		Costs:       costs,
		GroupedExec: true,
	}
	if traced {
		resp.Spans = n.tracedSpans(arrival, decodeDone, scanStart, ph)
	}
	return resp
}

// tracedSpans lays the node-side phases out as wire spans with offsets
// relative to the request's wire arrival: decode, then (from scanStart,
// which also covers any index-lock wait) probe_select, list_scan, and
// topk_merge back to back. The encode span is appended by serveConn once
// the response payload is final.
func (n *Node) tracedSpans(arrival, decodeDone, scanStart time.Time, ph ivf.PhaseNanos) []WireSpan {
	sel := scanStart.Sub(arrival).Nanoseconds()
	scan := sel + ph.Select
	merge := scan + ph.Scan
	return []WireSpan{
		{Name: "decode", Node: n.shardID, OffsetNanos: 0, DurNanos: decodeDone.Sub(arrival).Nanoseconds()},
		{Name: "probe_select", Node: n.shardID, OffsetNanos: sel, DurNanos: ph.Select},
		{Name: "list_scan", Node: n.shardID, OffsetNanos: scan, DurNanos: ph.Scan},
		{Name: "topk_merge", Node: n.shardID, OffsetNanos: merge, DurNanos: ph.Merge},
	}
}

// scan runs one index search, timing it against the shard's per-quantizer
// scan histogram (protocol decode/encode excluded). It returns the
// neighbors and the search stats (cells probed, vectors scanned).
func (n *Node) scan(q []float32, k, nProbe int) ([]vec.Neighbor, ivf.SearchStats) {
	stop := n.met.scanSeconds.Timer()
	res, st := n.index.SearchWithStats(q, k, nProbe)
	stop()
	return res, st
}

// scanPhased is scan with the per-phase breakdown, for traced requests.
func (n *Node) scanPhased(q []float32, k, nProbe int) ([]vec.Neighbor, ivf.SearchStats, ivf.PhaseNanos) {
	stop := n.met.scanSeconds.Timer()
	res, st, ph := n.index.SearchPhased(q, k, nProbe)
	stop()
	return res, st, ph
}

func (n *Node) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// Close stops the listener, closes live connections, and waits for handler
// goroutines to drain. Safe to call multiple times.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	var err error
	if n.ln != nil {
		err = n.ln.Close()
	}
	for _, c := range conns {
		// Force-closing a live connection races benignly with the peer
		// hanging up first; that error carries no signal.
		_ = c.Close()
	}
	n.wg.Wait()
	return err
}
