package kvcache

import "repro/internal/telemetry"

// Collect publishes the snapshot into reg as hermes_kvcache_* gauges. The
// values are point-in-time snapshots (set, not incremented), so the natural
// wiring is a scrape-time collector:
//
//	reg.RegisterCollector(func(r *telemetry.Registry) { cache.Stats().Collect(r) })
//
// A nil registry is a no-op, matching the rest of the telemetry API.
func (s Stats) Collect(reg *telemetry.Registry) {
	reg.Gauge("hermes_kvcache_hits_total", "Cumulative KV-cache lookup hits.").Set(float64(s.Hits))
	reg.Gauge("hermes_kvcache_misses_total", "Cumulative KV-cache lookup misses.").Set(float64(s.Misses))
	reg.Gauge("hermes_kvcache_evictions_total", "Cumulative LRU evictions.").Set(float64(s.Evictions))
	reg.Gauge("hermes_kvcache_used_bytes", "KV state bytes currently cached.").Set(float64(s.UsedBytes))
	reg.Gauge("hermes_kvcache_capacity_bytes", "Configured KV-cache capacity in bytes.").Set(float64(s.CapacityBytes))
	//lint:ignore metricname entries is a resident count, not a flow or a unit-bearing quantity
	reg.Gauge("hermes_kvcache_entries", "Documents currently cached.").Set(float64(s.Entries))
	reg.Gauge("hermes_kvcache_hit_ratio", "Hits over total lookups (0 before any access).").Set(s.HitRate())
}
