// Strided generation: the paper's Figure 3 online loop running for real —
// text query → hash embedding → hierarchical search over a disaggregated
// text index → rerank → prepend best chunk → generate a stride of tokens →
// refresh the query with the output → retrieve again. Prints the context
// turnover across strides, the behaviour retrieval striding exists to
// produce.
//
//	go run ./examples/stridedgen
package main

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/hermes"
	"repro/internal/striding"
)

func main() {
	c, err := corpus.Generate(corpus.Spec{
		NumChunks: 4000, Dim: 16, NumTopics: 8, Seed: 7, TokensPerChunk: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("building text index: hash-embedding 4000 chunks, clustering into 8 shards...")
	ts, err := striding.BuildTextStore(c, 48, 8)
	if err != nil {
		log.Fatal(err)
	}

	session, err := striding.NewSession(striding.Config{
		Text:   ts,
		Params: hermes.DefaultParams(),
		Stride: 8,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}

	query := corpus.QueryText(3, 8, 42) // a user query about topic 3
	fmt.Printf("\nquery: %q\n\n", query)
	res, err := session.Generate(query, 40)
	if err != nil {
		log.Fatal(err)
	}

	for i, rec := range res.Strides {
		topic, _ := ts.Chunks.Topic(rec.ContextChunk)
		fmt.Printf("stride %d: retrieved %v (context chunk %d, topic %d; sampled %d shards, deep %v)\n",
			i, rec.Retrieved, rec.ContextChunk, topic, rec.Stats.SampledShards, rec.Stats.DeepShards)
		fmt.Printf("          +%q\n", joinWords(rec.Generated))
	}
	fmt.Printf("\noutput (%d tokens): %s\n", len(res.Strides)*8, res.Output)
	fmt.Println("\nnote how later strides can rotate to different chunks as the prompt")
	fmt.Println("embedding drifts with the generated output — that refresh is why the")
	fmt.Println("paper re-retrieves every s tokens, and why its cost multiplies E2E latency")
}

func joinWords(ws []string) string {
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}
