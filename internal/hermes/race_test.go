//go:build race

package hermes

// raceEnabled lets allocation-count tests skip under the race detector,
// which deliberately drops sync.Pool puts and so re-allocates pooled scratch.
const raceEnabled = true
