package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file recognizes syntactic heap-allocation sites. It feeds two
// consumers: the alloc fact lattice (a function with an ungated site on its
// straight-line path "allocates"), and the hotpathalloc analyzer, which
// reports each site inside a //hermes:hotpath function.
//
// The scan is a contract checker, not an escape analysis: it flags the
// allocation idioms PR 3's zero-allocation audit actually evicted from the
// scan loop, and deliberately exempts the two idioms that audit kept:
//
//   - append whose destination derives from a function parameter or the
//     receiver: growth is amortized against caller-owned (usually pooled)
//     backing, the AppendResults(dst) / scratch-buffer pattern;
//   - captureless function literals: the compiler backs them with a static
//     singleton, so `return func() {}` costs nothing.
//
// Sites lexically gated behind a conditional (if body, case clause, select
// clause — see gatedByConditional) are excluded everywhere: the gated slow
// path (pool warm-up, armed tracing, error formatting) is allowed to
// allocate. Taking the address of a plain local (&x escaping) and implicit
// interface boxing at call boundaries are out of scope; the latter is
// covered where it matters by the allocFuncs seed on fmt-style calls.

// allocSite is one recognized heap-allocation site.
type allocSite struct {
	pos  token.Pos
	what string
}

// allocSites returns the ungated heap-allocation sites on fd's
// straight-line path, in source order. Function literal bodies are not
// descended into (they run on their own schedule); a literal that captures
// variables is itself a site.
func allocSites(info *types.Info, fd *ast.FuncDecl) []allocSite {
	owned := ownedVars(info, fd)
	var sites []allocSite
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			if !gatedByConditional(stack, lit.Pos()) && capturesVariables(info, lit) {
				sites = append(sites, allocSite{lit.Pos(), "function literal capturing variables (closure allocation)"})
			}
			return false
		}
		stack = append(stack, n)
		gated := func(pos token.Pos) bool { return gatedByConditional(stack, pos) }
		switch x := n.(type) {
		case *ast.GoStmt:
			if !gated(x.Pos()) {
				sites = append(sites, allocSite{x.Pos(), "go statement (allocates a goroutine)"})
			}
		case *ast.CallExpr:
			if gated(x.Pos()) {
				return true
			}
			if what := allocCallKind(info, x, owned); what != "" {
				sites = append(sites, allocSite{x.Pos(), what})
			}
		case *ast.CompositeLit:
			if gated(x.Pos()) {
				return true
			}
			if what := compositeLitKind(info, x, stack); what != "" {
				sites = append(sites, allocSite{x.Pos(), what})
			}
		case *ast.BinaryExpr:
			if x.Op != token.ADD || gated(x.Pos()) {
				return true
			}
			if tv, ok := info.Types[x]; ok && tv.Value == nil && isString(tv.Type) {
				// Constant-folded concatenation has tv.Value set; only the
				// runtime concatenations building a fresh string count.
				sites = append(sites, allocSite{x.Pos(), "string concatenation"})
			}
		}
		return true
	})
	return sites
}

// allocCallKind classifies a call expression as an allocation site:
// make/new builtins, growth-capable append, and allocating conversions.
// Calls to allocating functions are the fact engine's job, not a site.
func allocCallKind(info *types.Info, call *ast.CallExpr, owned map[*types.Var]bool) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, builtin := info.Uses[fun].(*types.Builtin); builtin {
			switch fun.Name {
			case "make":
				return "make call"
			case "new":
				return "new call"
			case "append":
				if len(call.Args) > 0 && derivesFrom(info, call.Args[0], owned) {
					return "" // caller-amortized growth: dst/scratch pattern
				}
				return "append that may grow its backing array"
			}
			return ""
		}
	}
	// Allocating conversions: string <-> byte/rune slice copies, and
	// explicit interface conversions boxing a concrete operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		if src == nil {
			return ""
		}
		switch {
		case isString(dst) && isByteOrRuneSlice(src):
			return "string conversion copying a byte/rune slice"
		case isByteOrRuneSlice(dst) && isString(src):
			return "slice conversion copying a string"
		case types.IsInterface(dst.Underlying()) && !types.IsInterface(src.Underlying()):
			return "interface conversion boxing its operand"
		}
	}
	return ""
}

// compositeLitKind classifies a composite literal: slice and map literals
// always allocate backing storage; a struct or array literal allocates only
// when its address is taken (&T{...}).
func compositeLitKind(info *types.Info, lit *ast.CompositeLit, stack []ast.Node) string {
	t := info.TypeOf(lit)
	if t == nil {
		return ""
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice literal"
	case *types.Map:
		return "map literal"
	}
	if len(stack) >= 2 {
		if u, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && u.Op == token.AND && u.X == lit {
			return "composite literal whose address is taken"
		}
	}
	return ""
}

// ownedVars is the set of variables whose backing the caller owns: the
// receiver and every parameter (including results, which the caller also
// observes). append through them is the amortized-growth pattern.
func ownedVars(info *types.Info, fd *ast.FuncDecl) map[*types.Var]bool {
	owned := make(map[*types.Var]bool)
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					owned[v] = true
				}
			}
		}
	}
	if fd.Recv != nil {
		add(fd.Recv)
	}
	if fd.Type != nil {
		add(fd.Type.Params)
		add(fd.Type.Results)
	}
	return owned
}

// derivesFrom reports whether the expression's base identifier resolves to
// one of the owned variables: dst, t.heap, sc.buf[i], (*p).out, ...
func derivesFrom(info *types.Info, e ast.Expr, owned map[*types.Var]bool) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			v, ok := info.Uses[x].(*types.Var)
			return ok && owned[v]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return false
		}
	}
}

// capturesVariables reports whether the function literal references any
// variable declared outside itself (receiver/params/locals of the enclosing
// function). Package-level variables and struct fields do not force a
// closure allocation by themselves.
func capturesVariables(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true // package-level: no capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// allocFuncs are standard-library helpers that heap-allocate on every
// invocation — the alloc lattice's seed. The core is the fmt family plus
// errors.New (the calls PR 3's zero-allocation audit evicted from the scan
// loop), extended with the common string/slice builders and timer
// constructors; it is a curated contract list, not an escape analysis.
var allocFuncs = map[[2]string]bool{
	{"fmt", "Sprint"}:          true,
	{"fmt", "Sprintf"}:         true,
	{"fmt", "Sprintln"}:        true,
	{"fmt", "Errorf"}:          true,
	{"fmt", "Appendf"}:         true,
	{"errors", "New"}:          true,
	{"errors", "Join"}:         true,
	{"strconv", "Itoa"}:        true,
	{"strconv", "Quote"}:       true,
	{"strconv", "FormatInt"}:   true,
	{"strconv", "FormatFloat"}: true,
	{"strings", "Join"}:        true,
	{"strings", "Repeat"}:      true,
	{"strings", "Replace"}:     true,
	{"strings", "ReplaceAll"}:  true,
	{"strings", "Split"}:       true,
	{"strings", "Fields"}:      true,
	{"strings", "ToUpper"}:     true,
	{"strings", "ToLower"}:     true,
	{"strings", "Clone"}:       true,
	{"bytes", "Join"}:          true,
	{"bytes", "Repeat"}:        true,
	{"bytes", "Clone"}:         true,
	{"time", "NewTimer"}:       true,
	{"time", "NewTicker"}:      true,
	{"time", "After"}:          true,
	{"time", "Tick"}:           true,
	{"time", "AfterFunc"}:      true,
	{"context", "WithCancel"}:  true,
	{"context", "WithTimeout"}: true,
	{"sync", "NewCond"}:        true,
}

// allocMethods are (package, receiver, method) triples that allocate:
// snapshotting builders into fresh strings.
var allocMethods = map[[3]string]bool{
	{"strings", "Builder", "String"}: true,
	{"bytes", "Buffer", "String"}:    true,
}

// stdlibAlloc is the alloc lattice's seed predicate.
func stdlibAlloc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	if allocFuncs[[2]string{path, fn.Name()}] {
		return true
	}
	if recv := recvTypeName(fn); recv != "" {
		return allocMethods[[3]string{path, recv, fn.Name()}]
	}
	return false
}
