package hermes

import (
	"time"

	"repro/internal/evlog"
	"repro/internal/ivf"
	"repro/internal/vec"
)

// rankedShard pairs a shard with its routing score (sampled-document or
// centroid distance) for the deep phase.
type rankedShard struct {
	d     float32
	shard int32
}

// sortRanked orders shards ascending by score with a stable insertion sort.
// Shard counts are small (the paper deploys 10-40), where insertion sort wins
// and — unlike sort.Slice — costs no closure allocation in the hot path.
//
//hermes:hotpath
func sortRanked(order []rankedShard) {
	for i := 1; i < len(order); i++ {
		x := order[i]
		j := i - 1
		for j >= 0 && order[j].d > x.d {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = x
	}
}

// searchScratch is the per-query reusable state of the store search paths:
// the shard ranking slice, the final top-k selector, a per-shard result
// buffer, and one warmed ivf.Searcher per shard so both phases hit the
// zero-allocation scan path. Recycled through Store.pool; one scratch is
// used by one query at a time.
type searchScratch struct {
	order    []rankedShard
	tk       *vec.TopK
	buf      []vec.Neighbor
	samplers []*ivf.Searcher
}

func (st *Store) getScratch() *searchScratch {
	if sc, ok := st.pool.Get().(*searchScratch); ok && len(sc.samplers) == len(st.Shards) {
		//lint:ignore poolescape typed pool accessor: every getScratch is paired with putScratch by the search paths, which keeps the Get/Put bracket one level up
		return sc
	}
	return &searchScratch{
		order:    make([]rankedShard, 0, len(st.Shards)),
		samplers: make([]*ivf.Searcher, len(st.Shards)),
	}
}

// topK returns the scratch's top-k selector reset for a fresh query.
//
//hermes:hotpath
func (sc *searchScratch) topK(k int) *vec.TopK {
	if sc.tk == nil {
		sc.tk = vec.NewTopK(k)
	} else {
		sc.tk.Reset(k)
	}
	return sc.tk
}

// searchShard runs one shard query through the scratch's warmed Searcher,
// reusing the shared result buffer and timing the scan against the shard's
// per-quantizer histogram (a no-op without SetTelemetry).
//
//hermes:hotpath
func (st *Store) searchShard(sc *searchScratch, s int, q []float32, k, nProbe int) ([]vec.Neighbor, ivf.SearchStats) {
	if sc.samplers[s] == nil {
		sc.samplers[s] = st.Shards[s].Index.NewSearcher()
	}
	h := st.met.scanHist(s)
	slow := st.ev != nil && st.slowScan > 0
	var t0 time.Time
	if h != nil || slow {
		t0 = now()
	}
	res, stats := sc.samplers[s].Search(sc.buf[:0], q, k, nProbe)
	if h != nil || slow {
		d := now().Sub(t0)
		if h != nil {
			h.ObserveDuration(d)
		}
		if slow && d > st.slowScan {
			// Gated on the threshold crossing: the variadic field slice
			// only materializes for scans already past slowScan.
			st.ev.Warn("store.slow_scan",
				evlog.Int("shard", int64(s)), evlog.Dur("dur", d))
		}
	}
	sc.buf = res
	return res, stats
}
