// Command hermes-obsbench measures what the PR 7 observability plane costs
// the serving path and writes the machine-readable record scripts/bench.sh
// publishes as BENCH_PR7.json.
//
// Three suites run:
//
//   - evlog: Emit cost on a nil log, below the level floor, recorded into
//     the ring, and under per-name rate limiting. The first three must be
//     zero allocations per op — the disabled paths because instrumentation
//     a deployment turned off must be free, the enabled path because Emit's
//     contract is that fields are copied by value into a preallocated ring
//     slot.
//   - slo: Engine.Tick and Reports cost with several objectives attached.
//     These run on a 10s ticker off the serving path, so they carry no
//     zero-alloc requirement; the record documents their absolute cost.
//   - store: Store.Search allocations with observability fully disabled
//     versus with an armed-but-quiet slow-scan detector (threshold no scan
//     crosses). The two must match exactly: arming events may not add a
//     single allocation to the scan path.
//
// The process exits non-zero when any must-zero scenario allocates or the
// store pair diverges, so bench.sh doubles as the acceptance gate.
//
// Usage:
//
//	hermes-obsbench                   # text summary + BENCH_PR7.json
//	hermes-obsbench -out bench.json   # alternate output path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"text/tabwriter"
	"time"

	"repro/internal/evlog"
	"repro/internal/hermes"
	"repro/internal/slo"
	"repro/internal/vec"
)

// scenario is one measured code path.
type scenario struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// MustZeroAllocs marks the acceptance-gated paths.
	MustZeroAllocs bool `json:"must_zero_allocs"`
}

type report struct {
	GOOS   string     `json:"goos"`
	GOARCH string     `json:"goarch"`
	CPUs   int        `json:"cpus"`
	Evlog  []scenario `json:"evlog"`
	SLO    []scenario `json:"slo"`
	Store  []scenario `json:"store"`
}

func main() {
	outFlag := flag.String("out", "BENCH_PR7.json", "JSON output path")
	flag.Parse()

	rep := report{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU()}
	rep.Evlog = benchEvlog()
	rep.SLO = benchSLO()
	rep.Store = benchStore()

	printReport(rep)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*outFlag, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n", *outFlag)

	if msg := checkAcceptance(rep); msg != "" {
		fatal(fmt.Errorf("%s", msg))
	}
	fmt.Println("acceptance: all must-zero paths allocation-free; armed events add nothing to the scan path")
}

// measure runs fn under both the benchmark timer and the allocation counter.
func measure(name string, mustZero bool, fn func()) scenario {
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	return scenario{
		Name:           name,
		NsPerOp:        float64(res.NsPerOp()),
		AllocsPerOp:    testing.AllocsPerRun(1000, fn),
		MustZeroAllocs: mustZero,
	}
}

func benchEvlog() []scenario {
	var nilLog *evlog.Log
	leveled := evlog.New(evlog.Config{Capacity: 64, MinLevel: evlog.LevelError})
	enabled := evlog.New(evlog.Config{Capacity: 64})
	limited := evlog.New(evlog.Config{Capacity: 64, RatePerSec: 1})
	// Prime the limiter's per-name bucket so the steady state (token
	// exhausted, event counted as dropped) is what gets measured.
	limited.Warn("edge", evlog.Int("shard", 1))

	return []scenario{
		measure("emit_nil_log", true, func() {
			nilLog.Warn("edge", evlog.Int("shard", 1), evlog.Dur("dur", time.Millisecond))
		}),
		measure("emit_below_min_level", true, func() {
			leveled.Info("edge", evlog.Int("shard", 1), evlog.Dur("dur", time.Millisecond))
		}),
		measure("emit_enabled", true, func() {
			enabled.Warn("edge", evlog.Int("shard", 1), evlog.Dur("dur", time.Millisecond))
		}),
		measure("emit_rate_limited", false, func() {
			limited.Warn("edge", evlog.Int("shard", 1), evlog.Dur("dur", time.Millisecond))
		}),
	}
}

func benchSLO() []scenario {
	e := slo.NewEngine()
	var good, total int64
	src := func() (int64, int64) {
		good += 99
		total += 100
		return good, total
	}
	for i := 0; i < 4; i++ {
		o := slo.Objective{
			Name:   fmt.Sprintf("obj%d", i),
			Kind:   slo.KindAvailability,
			Target: 0.99,
		}
		if err := e.AddObjective(o, src); err != nil {
			fatal(err)
		}
	}
	e.Tick()
	return []scenario{
		measure("tick_4_objectives", false, func() { e.Tick() }),
		measure("reports_4_objectives", false, func() { _ = e.Reports() }),
	}
}

func benchStore() []scenario {
	const (
		dim     = 32
		vectors = 4000
		shards  = 4
	)
	rng := rand.New(rand.NewSource(7))
	data := vec.NewMatrix(vectors, dim)
	for i := range data.Data() {
		data.Data()[i] = float32(rng.NormFloat64())
	}
	st, err := hermes.Build(data, hermes.BuildOptions{NumShards: shards})
	if err != nil {
		fatal(err)
	}
	p := hermes.DefaultParams()
	q := make([]float32, dim)
	for d := range q {
		q[d] = float32(rng.NormFloat64())
	}
	// Warm the scratch pool so steady state is measured.
	st.Search(q, p)

	baseline := measure("search_no_observability", false, func() { st.Search(q, p) })

	// Armed but quiet: the detector reads the clock around each scan yet no
	// scan crosses an hour, so the emit (the only allocating branch) never
	// runs. Cost must equal the baseline allocation-for-allocation.
	ev := evlog.New(evlog.Config{Capacity: 64})
	st.SetEvents(ev, time.Hour)
	armed := measure("search_events_armed_quiet", false, func() { st.Search(q, p) })
	st.SetEvents(nil, 0)

	return []scenario{baseline, armed}
}

// checkAcceptance returns a failure message, or "" when the record meets
// the PR 7 bar.
func checkAcceptance(rep report) string {
	for _, suite := range [][]scenario{rep.Evlog, rep.SLO, rep.Store} {
		for _, s := range suite {
			if s.MustZeroAllocs && s.AllocsPerOp != 0 {
				return fmt.Sprintf("scenario %s allocates %.2f/op; must be 0", s.Name, s.AllocsPerOp)
			}
		}
	}
	var base, armed *scenario
	for i := range rep.Store {
		switch rep.Store[i].Name {
		case "search_no_observability":
			base = &rep.Store[i]
		case "search_events_armed_quiet":
			armed = &rep.Store[i]
		}
	}
	if base == nil || armed == nil {
		return "store suite incomplete"
	}
	if armed.AllocsPerOp != base.AllocsPerOp {
		return fmt.Sprintf("armed-quiet events changed scan allocations: %.2f/op vs baseline %.2f/op",
			armed.AllocsPerOp, base.AllocsPerOp)
	}
	return ""
}

func printReport(rep report) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "scenario\tns/op\tallocs/op\tmust-zero\n")
	for _, suite := range [][]scenario{rep.Evlog, rep.SLO, rep.Store} {
		for _, s := range suite {
			fmt.Fprintf(tw, "%s\t%.1f\t%.2f\t%v\n", s.Name, s.NsPerOp, s.AllocsPerOp, s.MustZeroAllocs)
		}
	}
	if err := tw.Flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hermes-obsbench:", err)
	os.Exit(1)
}
