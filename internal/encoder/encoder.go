// Package encoder models the query encoder of the RAG pipeline (the paper
// uses BGE-large-en on a GPU). It has two halves:
//
//   - a deterministic text-to-vector hash embedding used on the serving path
//     (cmd/hermes-search, examples) so text queries can be embedded without a
//     neural network, and
//   - a latency/energy model of a BGE-large-class encoder, used by the
//     end-to-end pipeline accounting, where encoding is a small fixed
//     per-batch cost (the "Encoding" slice of Figure 6).
package encoder

import (
	"hash/fnv"
	"math/rand"
	"strings"
	"time"

	"repro/internal/vec"
)

// HashEncoder maps text deterministically into a dim-dimensional unit
// vector: each whitespace token seeds a PRNG that emits a Gaussian direction
// and the token vectors are averaged. Similar texts (sharing tokens) map to
// nearby vectors, which is all the serving path needs.
type HashEncoder struct {
	dim int
}

// NewHashEncoder returns an encoder producing dim-dimensional embeddings.
func NewHashEncoder(dim int) *HashEncoder {
	if dim <= 0 {
		panic("encoder: dim must be positive")
	}
	return &HashEncoder{dim: dim}
}

// Dim returns the embedding dimensionality.
func (e *HashEncoder) Dim() int { return e.dim }

// Encode embeds the text.
func (e *HashEncoder) Encode(text string) []float32 {
	out := make([]float32, e.dim)
	tokens := strings.Fields(strings.ToLower(text))
	if len(tokens) == 0 {
		return out
	}
	for _, tok := range tokens {
		h := fnv.New64a()
		h.Write([]byte(tok))
		rng := rand.New(rand.NewSource(int64(h.Sum64())))
		for d := range out {
			out[d] += float32(rng.NormFloat64())
		}
	}
	vec.Normalize(out)
	return out
}

// EncodeBatch embeds several texts into a matrix.
func (e *HashEncoder) EncodeBatch(texts []string) *vec.Matrix {
	m := vec.NewMatrix(len(texts), e.dim)
	for i, t := range texts {
		copy(m.Row(i), e.Encode(t))
	}
	return m
}

// LatencyModel is the analytic cost of a BGE-large-class encoder (~335M
// parameters) on the inference GPU: a small per-batch cost that scales with
// batch waves.
type LatencyModel struct {
	// PerQuery is the encoding time for one query at full batch
	// utilization.
	PerQuery time.Duration
	// MaxBatch is the largest batch processed in one wave.
	MaxBatch int
	// Watts is the encoder's power draw while active.
	Watts float64
}

// DefaultLatencyModel approximates BGE-large on a datacenter GPU; the
// resulting per-batch encode cost is a few tens of milliseconds, matching
// the thin "Encoding" slice in Figure 6.
var DefaultLatencyModel = LatencyModel{PerQuery: 800 * time.Microsecond, MaxBatch: 256, Watts: 180}

// BatchLatency returns the modeled wall time to encode a batch.
func (m LatencyModel) BatchLatency(batch int) time.Duration {
	if batch <= 0 {
		return 0
	}
	waves := (batch + m.MaxBatch - 1) / m.MaxBatch
	perWave := time.Duration(float64(m.PerQuery) * float64(min(batch, m.MaxBatch)))
	return time.Duration(waves) * perWave
}

// BatchEnergy returns the modeled Joules to encode a batch.
func (m LatencyModel) BatchEnergy(batch int) float64 {
	return m.Watts * m.BatchLatency(batch).Seconds()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
