package experiments

import (
	"fmt"

	"repro/internal/encoder"
	"repro/internal/hwmodel"
	"repro/internal/llm"
	"repro/internal/multinode"
	"repro/internal/rag"
)

func init() {
	register("fig14", Fig14EndToEnd)
	register("fig16", Fig16TTFT)
	register("fig17", Fig17Models)
	register("fig18", Fig18Throughput)
	register("fig20", Fig20Platforms)
	register("fig21", Fig21DVFS)
}

// strategy describes one bar of Figure 14/16/17: a retrieval organization
// plus serving optimizations.
type strategy struct {
	name        string
	hermes      bool
	pipelined   bool
	prefixCache bool
}

var fig14Strategies = []strategy{
	{name: "Baseline"},
	{name: "RAGCache", prefixCache: true},
	{name: "PipeRAG", pipelined: true},
	{name: "Hermes", hermes: true},
	{name: "Hermes+PipeRAG+RAGCache", hermes: true, pipelined: true, prefixCache: true},
}

const hermesNodes = 10

// runStrategy evaluates one (strategy, scenario) cell.
func runStrategy(s strategy, tokens int64, batch, stride int, eng *llm.Engine) (*rag.Report, error) {
	var ret rag.Retriever
	var err error
	if s.hermes {
		ret, err = hermesRetriever(tokens, hermesNodes, batch, 3, multinode.DVFSEnhanced)
	} else {
		ret, err = monoRetriever(tokens, batch)
	}
	if err != nil {
		return nil, err
	}
	return rag.Run(rag.PipelineConfig{
		Batch: batch, InputTokens: 512, OutputTokens: 256, Stride: stride,
		Engine: eng, Encoder: encoder.DefaultLatencyModel, Retriever: ret,
		Pipelined: s.pipelined, PrefixCache: s.prefixCache,
	})
}

// Fig14EndToEnd reproduces Figure 14: normalized end-to-end latency and
// energy for each strategy across batch size, datastore size, and stride
// sweeps (defaults: batch 128, 10B tokens, stride 16).
func Fig14EndToEnd(sc Scale) ([]*Table, error) {
	eng, err := gemmaA6000()
	if err != nil {
		return nil, err
	}
	type scenario struct {
		label  string
		tokens int64
		batch  int
		stride int
	}
	var scenarios []scenario
	for _, b := range []int{32, 64, 128, 256} {
		scenarios = append(scenarios, scenario{fmt.Sprintf("batch=%d", b), 10e9, b, 16})
	}
	for _, ds := range []struct {
		label  string
		tokens int64
	}{{"1B", 1e9}, {"100B", 100e9}, {"1T", 1e12}} {
		scenarios = append(scenarios, scenario{"tokens=" + ds.label, ds.tokens, 128, 16})
	}
	for _, st := range []int{4, 16, 64} {
		scenarios = append(scenarios, scenario{fmt.Sprintf("stride=%d", st), 10e9, 128, st})
	}

	lat := &Table{
		ID:     "fig14",
		Title:  "Normalized E2E latency by strategy (paper Fig. 14 top)",
		Header: append([]string{"scenario"}, strategyNames()...),
		Notes: []string{
			"modeled; values normalized to the Baseline column (lower is better)",
			"paper headline: Hermes 2.45-10.25x latency and 1.08-3.37x energy gains",
		},
	}
	energy := &Table{
		ID:     "fig14",
		Title:  "Normalized E2E energy by strategy (paper Fig. 14 bottom)",
		Header: append([]string{"scenario"}, strategyNames()...),
		Notes:  []string{"modeled; values normalized to the Baseline column (lower is better)"},
	}
	for _, sn := range scenarios {
		latRow := []any{sn.label}
		enRow := []any{sn.label}
		var baseLat, baseEn float64
		for i, s := range fig14Strategies {
			rep, err := runStrategy(s, sn.tokens, sn.batch, sn.stride, eng)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				baseLat = rep.E2E.Seconds()
				baseEn = rep.TotalJoules()
			}
			latRow = append(latRow, rep.E2E.Seconds()/baseLat)
			enRow = append(enRow, rep.TotalJoules()/baseEn)
		}
		lat.AddRow(latRow...)
		energy.AddRow(enRow...)
	}
	return []*Table{lat, energy}, nil
}

func strategyNames() []string {
	out := make([]string, len(fig14Strategies))
	for i, s := range fig14Strategies {
		out[i] = s.name
	}
	return out
}

// Fig16TTFT reproduces Figure 16: normalized TTFT vs datastore size for
// Baseline, Hermes, and Hermes with prior optimizations (which cannot help
// TTFT).
func Fig16TTFT(sc Scale) ([]*Table, error) {
	eng, err := gemmaA6000()
	if err != nil {
		return nil, err
	}
	tab := &Table{
		ID:     "fig16",
		Title:  "Normalized TTFT vs datastore size (paper Fig. 16)",
		Header: []string{"datastore", "baseline", "hermes", "hermes+prior", "hermes_speedup"},
		Notes: []string{
			"modeled; paper headline: ~9.1x TTFT improvement at 1T tokens",
			"prior-work optimizations cannot reduce TTFT (they rely on earlier strides)",
		},
	}
	for _, ds := range []struct {
		label  string
		tokens int64
	}{{"1B", 1e9}, {"10B", 10e9}, {"1T", 1e12}} {
		base, err := runStrategy(fig14Strategies[0], ds.tokens, 32, 16, eng)
		if err != nil {
			return nil, err
		}
		hermes, err := runStrategy(fig14Strategies[3], ds.tokens, 32, 16, eng)
		if err != nil {
			return nil, err
		}
		stacked, err := runStrategy(fig14Strategies[4], ds.tokens, 32, 16, eng)
		if err != nil {
			return nil, err
		}
		b := base.TTFT.Seconds()
		tab.AddRow(ds.label, 1.0, hermes.TTFT.Seconds()/b, stacked.TTFT.Seconds()/b,
			b/hermes.TTFT.Seconds())
	}
	return []*Table{tab}, nil
}

// Fig17Models reproduces Figure 17: Hermes' gains across inference model
// architectures (Phi-1.5, Gemma2-9B, OPT-30B) and GPU platforms (A6000 Ada,
// L4), with the paper's tensor-parallel deployment constraints.
func Fig17Models(sc Scale) ([]*Table, error) {
	deployments := []struct {
		label string
		model llm.ModelSpec
		gpu   llm.GPUSpec
	}{
		{"Phi-1.5 (1.3B) / A6000", llm.Phi15, llm.A6000Ada},
		{"Gemma2 (9B) / A6000", llm.Gemma2_9B, llm.A6000Ada},
		{"OPT (30B) / A6000", llm.OPT30B, llm.A6000Ada},
		{"Gemma2 (9B) / L4", llm.Gemma2_9B, llm.L4},
	}
	tab := &Table{
		ID:     "fig17",
		Title:  "Hermes across model architectures and GPU platforms (paper Fig. 17)",
		Header: []string{"deployment", "tp", "norm_latency_hermes", "norm_energy_hermes", "latency_speedup"},
		Notes: []string{
			"modeled at 100B tokens, batch 128, stride 16; normalized to each deployment's baseline",
			"paper shape: speedup shrinks as inference grows (9.38x Phi-1.5 -> 3.92x OPT-30B)",
		},
	}
	for _, d := range deployments {
		tp := llm.MinTP(d.model, d.gpu)
		eng, err := llm.NewEngine(d.model, d.gpu, tp)
		if err != nil {
			return nil, err
		}
		base, err := runStrategy(fig14Strategies[0], 100e9, 128, 16, eng)
		if err != nil {
			return nil, err
		}
		hermes, err := runStrategy(fig14Strategies[3], 100e9, 128, 16, eng)
		if err != nil {
			return nil, err
		}
		tab.AddRow(d.label, tp,
			hermes.E2E.Seconds()/base.E2E.Seconds(),
			hermes.TotalJoules()/base.TotalJoules(),
			base.E2E.Seconds()/hermes.E2E.Seconds())
	}
	return []*Table{tab}, nil
}

// Fig18Throughput reproduces Figure 18: retrieval throughput and energy per
// batch as a function of clusters deep-searched on a 10-node tier.
func Fig18Throughput(sc Scale) ([]*Table, error) {
	cl, err := multinode.EvenCluster(hwmodel.XeonGold6448Y, 100e9, hermesNodes)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		ID:     "fig18",
		Title:  "Throughput and energy vs clusters searched (paper Fig. 18)",
		Header: []string{"clusters_searched", "qps", "energy_per_batch_J", "vs_all_qps", "vs_all_energy"},
		Notes: []string{
			"modeled: 100B tokens over 10 Gold 6448Y nodes, batch 128",
			"paper headline: 3 clusters -> 1.81x QPS and 1.77x energy vs searching all 10",
		},
	}
	all, err := cl.Hermes(multinode.HermesConfig{
		Batch:          128,
		DeepLoads:      multinode.SpreadLoads(hermesNodes, 128, hermesNodes),
		SampleFraction: 8.0 / 128.0,
	})
	if err != nil {
		return nil, err
	}
	for deep := 1; deep <= hermesNodes; deep++ {
		cost, err := cl.Hermes(multinode.HermesConfig{
			Batch:          128,
			DeepLoads:      multinode.SpreadLoads(hermesNodes, 128, deep),
			SampleFraction: 8.0 / 128.0,
		})
		if err != nil {
			return nil, err
		}
		tab.AddRow(deep, cost.Throughput(128), cost.EnergyJ,
			cost.Throughput(128)/all.Throughput(128), all.EnergyJ/cost.EnergyJ)
	}
	return []*Table{tab}, nil
}

// Fig20Platforms reproduces Figure 20: per-batch retrieval latency and
// throughput vs clusters searched on each CPU platform (Neoverse-N1 at batch
// 32 and 128, the Intel parts at batch 128).
func Fig20Platforms(sc Scale) ([]*Table, error) {
	tab := &Table{
		ID:     "fig20",
		Title:  "CPU platform comparison vs clusters searched (paper Fig. 20)",
		Header: []string{"platform", "batch", "clusters_searched", "time_per_batch_s", "qps"},
		Notes: []string{
			"modeled: 10B tokens over 10 nodes per platform (1B-token shards)",
			"paper shape: Platinum 8380 fastest; ARM competitive only at large batch",
		},
	}
	type run struct {
		cpu   hwmodel.CPUSpec
		batch int
	}
	runs := []run{
		{hwmodel.NeoverseN1, 32},
		{hwmodel.NeoverseN1, 128},
		{hwmodel.XeonGold6448Y, 128},
		{hwmodel.XeonPlatinum8380, 128},
		{hwmodel.XeonSilver4316, 128},
	}
	for _, r := range runs {
		cl, err := multinode.EvenCluster(r.cpu, 10e9, hermesNodes)
		if err != nil {
			return nil, err
		}
		for deep := 1; deep <= hermesNodes; deep++ {
			cost, err := cl.Hermes(multinode.HermesConfig{
				Batch:          r.batch,
				DeepLoads:      multinode.SpreadLoads(hermesNodes, r.batch, deep),
				SampleFraction: 8.0 / 128.0,
			})
			if err != nil {
				return nil, err
			}
			tab.AddRow(r.cpu.Name, r.batch, deep, cost.Latency.Seconds(), cost.Throughput(r.batch))
		}
	}
	return []*Table{tab}, nil
}

// Fig21DVFS reproduces Figure 21: normalized retrieval energy under no DVFS,
// baseline DVFS (slow to the slowest cluster), and enhanced DVFS (slow to
// the inference latency) as clusters searched varies.
func Fig21DVFS(sc Scale) ([]*Table, error) {
	// Imbalanced ~1B-token shards (10B total over 10 nodes), as k-means
	// produces (~2x spread). At this shard size retrieval is faster than
	// inference, the regime where the paper applies DVFS.
	shards := []int64{1.4e9, 1.0e9, 0.8e9, 0.8e9, 0.7e9, 1.3e9, 1.0e9, 0.9e9, 1.2e9, 0.9e9}
	cl, err := multinode.NewCluster(hwmodel.XeonGold6448Y, shards)
	if err != nil {
		return nil, err
	}
	eng, err := gemmaA6000()
	if err != nil {
		return nil, err
	}
	// The pipeline window: inference work per stride at batch 128.
	window := eng.PrefillLatency(128, 512) + eng.DecodeLatency(128, 512, 16)

	tab := &Table{
		ID:     "fig21",
		Title:  "DVFS energy savings vs clusters searched (paper Fig. 21)",
		Header: []string{"clusters_searched", "norm_energy_no_dvfs", "norm_energy_dvfs", "norm_energy_dvfs_enhanced"},
		Notes: []string{
			"modeled: imbalanced 10B-token tier (1B-scale shards); energy normalized to no-DVFS per row",
			"paper: baseline DVFS saves 10.1-14.5%, enhanced 18.8-22.1% (avg 12.24%/20.44%)",
		},
	}
	for deep := 1; deep <= len(shards); deep++ {
		base := multinode.HermesConfig{
			Batch:          128,
			DeepLoads:      multinode.SkewedLoads(len(shards), 128, deep, 1.2, sc.Seed),
			SampleFraction: 8.0 / 128.0,
			PipelineWindow: window,
		}
		none := base
		none.Policy = multinode.DVFSNone
		cNone, err := cl.Hermes(none)
		if err != nil {
			return nil, err
		}
		dvfs := base
		dvfs.Policy = multinode.DVFSBaseline
		cDVFS, err := cl.Hermes(dvfs)
		if err != nil {
			return nil, err
		}
		enh := base
		enh.Policy = multinode.DVFSEnhanced
		cEnh, err := cl.Hermes(enh)
		if err != nil {
			return nil, err
		}
		tab.AddRow(deep, 1.0, cDVFS.EnergyJ/cNone.EnergyJ, cEnh.EnergyJ/cNone.EnergyJ)
	}
	return []*Table{tab}, nil
}
