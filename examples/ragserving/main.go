// RAG serving: model the full encode → retrieve → prefill → decode pipeline
// with retrieval striding under four serving strategies (Baseline, PipeRAG,
// RAGCache, Hermes, and everything combined), at two datastore scales.
// Reproduces the reasoning behind the paper's Figures 8 and 14: prior-work
// optimizations carry small datastores, Hermes carries large ones.
//
//	go run ./examples/ragserving
package main

import (
	"fmt"
	"log"

	"repro/internal/encoder"
	"repro/internal/hwmodel"
	"repro/internal/llm"
	"repro/internal/multinode"
	"repro/internal/rag"
)

func main() {
	engine, err := llm.NewEngine(llm.Gemma2_9B, llm.A6000Ada, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inference engine: %s\n", engine)
	fmt.Println("pipeline: batch 32, 512 input tokens, 256 output tokens, stride 16")

	for _, scale := range []struct {
		label  string
		tokens int64
	}{
		{"small datastore (1B tokens)", 1e9},
		{"at-scale datastore (100B tokens)", 100e9},
	} {
		fmt.Printf("\n--- %s ---\n", scale.label)
		mono, err := monoRetriever(scale.tokens, 32)
		if err != nil {
			log.Fatal(err)
		}
		hermesTier, err := hermesRetriever(scale.tokens, 10, 32, 3)
		if err != nil {
			log.Fatal(err)
		}

		type runSpec struct {
			name        string
			ret         rag.Retriever
			pipe, cache bool
		}
		runs := []runSpec{
			{"Baseline (monolithic)", mono, false, false},
			{"PipeRAG", mono, true, false},
			{"RAGCache", mono, false, true},
			{"Hermes", hermesTier, false, false},
			{"Hermes+PipeRAG+RAGCache", hermesTier, true, true},
		}
		var baseE2E, baseJ float64
		for i, r := range runs {
			rep, err := rag.Run(rag.PipelineConfig{
				Batch: 32, InputTokens: 512, OutputTokens: 256, Stride: 16,
				Engine: engine, Encoder: encoder.DefaultLatencyModel,
				Retriever: r.ret, Pipelined: r.pipe, PrefixCache: r.cache,
			})
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				baseE2E = rep.E2E.Seconds()
				baseJ = rep.TotalJoules()
			}
			fmt.Printf("%-26s TTFT %7.2fs  E2E %8.2fs (%5.2fx)  energy %9.0fJ (%4.2fx)\n",
				r.name, rep.TTFT.Seconds(), rep.E2E.Seconds(), baseE2E/rep.E2E.Seconds(),
				rep.TotalJoules(), baseJ/rep.TotalJoules())
		}
	}
	fmt.Println("\nenergy ledger of the at-scale Hermes run:")
	hermesTier, err := hermesRetriever(100e9, 10, 32, 3)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := rag.Run(rag.PipelineConfig{
		Batch: 32, InputTokens: 512, OutputTokens: 256, Stride: 16,
		Engine: engine, Encoder: encoder.DefaultLatencyModel, Retriever: hermesTier,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, stage := range rep.Energy.Stages() {
		fmt.Printf("  %-9s %10.0f J\n", stage, rep.Energy.Stage(stage))
	}
}

func monoRetriever(tokens int64, batch int) (rag.Retriever, error) {
	cl, err := multinode.EvenCluster(hwmodel.XeonGold6448Y, tokens, 1)
	if err != nil {
		return nil, err
	}
	return rag.NewMonolithicRetriever(cl, batch)
}

func hermesRetriever(tokens int64, nodes, batch, deep int) (rag.Retriever, error) {
	cl, err := multinode.EvenCluster(hwmodel.XeonGold6448Y, tokens, nodes)
	if err != nil {
		return nil, err
	}
	return &rag.HermesRetriever{
		Cluster: cl,
		Config: multinode.HermesConfig{
			Batch:          batch,
			DeepLoads:      multinode.SpreadLoads(nodes, batch, deep),
			SampleFraction: 8.0 / 128.0,
			Policy:         multinode.DVFSEnhanced,
		},
	}, nil
}
