package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// ChanBound guards the serving path's queues against unbounded growth. A
// RAG-serving node lives or dies on backpressure: every buffer between
// arrival and completion must either have a hard capacity or a visible
// bound check, or a slow downstream turns into unbounded memory growth and
// an OOM kill instead of load shedding (the failure mode the batcher's
// MaxBatch/MaxWait contract exists to prevent). Two rules, request-path
// packages only (requestPathPkgs):
//
//  1. Queue appends: `x.field = append(x.field, ...)` onto a field rooted
//     at the method receiver, or onto a package-level slice, is flagged
//     unless the enclosing function also inspects len/cap of that same
//     field in a comparison — the batcher's `len(b.pending) >= MaxBatch`
//     flush check is the canonical bound. Only receiver/global state can
//     accumulate across requests; appends building a local value (a
//     response struct, a per-call result slice) are bounded by the call
//     and not flagged. The check is per-function by design: a bound
//     enforced by some caller is invisible here (the engine does not track
//     interprocedural data flow for this), so a genuinely-bounded append
//     takes a //lint:ignore chanbound <reason> naming the invariant that
//     bounds it.
//
//  2. Channel capacities: `make(chan T, N)` with a constant N >= 65536 is
//     an unbounded queue in practice — a buffer sized "big enough to never
//     block" is exactly the queue that hides overload until memory runs
//     out. Size channels to the protocol's real in-flight bound, or
//     suppress with the invariant that justifies the capacity.
//
// Appends building a bounded-by-construction local (scatter results sized
// by node count) bind to locals and are not flagged; only state that
// outlives the call (fields, globals) can grow without bound.
var ChanBound = &Analyzer{
	Name: "chanbound",
	Doc:  "request-path queues must stay bounded: field/global slice appends need a visible len/cap bound, channel buffers a sane constant capacity",
	Run:  runChanBound,
}

// chanCapLimit is the smallest constant channel capacity treated as
// effectively unbounded.
const chanCapLimit = 65536

func runChanBound(p *Pass) {
	if p.Pkg == nil || !requestPathPkgs[p.Pkg.Name()] {
		return
	}
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				chanBoundFunc(p, fd)
			}
		}
	}
}

func chanBoundFunc(p *Pass, fd *ast.FuncDecl) {
	bounded := boundCheckedObjects(p, fd)
	var recv *types.Var
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recv, _ = p.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch builtinName(p, call) {
		case "append":
			if len(call.Args) == 0 {
				return true
			}
			obj, display := growableTarget(p, call.Args[0])
			if obj == nil || bounded[obj] {
				return true
			}
			if !outlivesCall(p, call.Args[0], recv) {
				return true
			}
			p.Reportf(call.Pos(), "append grows %s with no len/cap bound check in %s; on the request path a queue nothing bounds grows until the process is OOM-killed instead of shedding load — add a capacity check, or suppress with //lint:ignore chanbound <invariant that bounds it>", display, fd.Name.Name)
		case "make":
			if len(call.Args) < 2 {
				return true
			}
			t := p.TypeOf(call.Args[0])
			if t == nil {
				return true
			}
			if _, isChan := t.Underlying().(*types.Chan); !isChan {
				return true
			}
			tv, ok := p.Info.Types[call.Args[1]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
				return true
			}
			if v, exact := constant.Int64Val(tv.Value); exact && v >= chanCapLimit {
				p.Reportf(call.Pos(), "channel buffered to %d is effectively unbounded; a buffer sized to never block hides overload until memory runs out — size it to the protocol's real in-flight bound, or suppress with //lint:ignore chanbound <reason>", v)
			}
		}
		return true
	})
}

// builtinName returns the builtin a call invokes ("append", "make", ...) or
// "".
func builtinName(p *Pass, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return ""
	}
	return id.Name
}

// growableTarget resolves an append destination to the object it grows:
// the field object of a selector (b.pending), or a package-level variable.
// Plain locals return nil — they cannot grow across requests. Whether a
// FIELD's state actually outlives the call depends on what the selector is
// rooted at (outlivesCall); the object itself is also how a bound check on
// the same field is matched, so this resolution stays root-agnostic.
func growableTarget(p *Pass, e ast.Expr) (types.Object, string) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj(), "field " + types.ExprString(x)
		}
	case *ast.Ident:
		if v, ok := p.Info.Uses[x].(*types.Var); ok && isPackageLevel(v, p.Pkg) {
			return v, "package-level slice " + x.Name
		}
	}
	return nil, ""
}

// outlivesCall reports whether the append destination is state that
// survives the enclosing call: a selector chain rooted at the method
// receiver, or anything rooted at a package-level variable. A chain rooted
// at a local (a response struct under construction, a scratch value) dies
// with the frame and is bounded by it.
func outlivesCall(p *Pass, e ast.Expr, recv *types.Var) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := p.Info.Uses[x].(*types.Var); ok {
				return v == recv || isPackageLevel(v, p.Pkg)
			}
			return false
		default:
			return false
		}
	}
}

// boundCheckedObjects collects the field/global objects whose len or cap
// the function compares against something — the visible bound checks rule 1
// credits.
func boundCheckedObjects(p *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			call, ok := ast.Unparen(side).(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue
			}
			name := builtinName(p, call)
			if name != "len" && name != "cap" {
				continue
			}
			if obj, _ := growableTarget(p, call.Args[0]); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}
