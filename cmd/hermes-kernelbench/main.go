// Command hermes-kernelbench measures the serving-path distance kernels and
// writes the machine-readable record scripts/bench.sh publishes as
// BENCH_PR3.json.
//
// Two suites run:
//
//   - kernels: per-quantizer list-scan throughput, scalar Distancer vs the
//     blocked BatchDistancer, at dims 64/128/768 over a contiguous block of
//     1024 codes (the shape of one inverted-list scan).
//   - e2e: end-to-end IVF queries through a warmed Searcher (20k vectors,
//     nlist 100, nProbe 8), reporting ns/query and steady-state heap
//     allocations per query.
//
// Usage:
//
//	hermes-kernelbench                     # text summary + BENCH_PR3.json
//	hermes-kernelbench -out bench.json     # alternate output path
//	hermes-kernelbench -dims 64,128        # subset of kernel dims
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"text/tabwriter"

	"repro/internal/ivf"
	"repro/internal/quant"
	"repro/internal/vec"
)

// kernelResult is one quantizer x dim scalar-vs-batch comparison.
type kernelResult struct {
	Quantizer        string  `json:"quantizer"`
	Dim              int     `json:"dim"`
	CodesPerOp       int     `json:"codes_per_op"`
	ScalarNsPerOp    float64 `json:"scalar_ns_per_op"`
	BatchNsPerOp     float64 `json:"batch_ns_per_op"`
	ScalarVecsPerSec float64 `json:"scalar_vectors_per_sec"`
	BatchVecsPerSec  float64 `json:"batch_vectors_per_sec"`
	Speedup          float64 `json:"speedup"`
}

// e2eResult is one end-to-end searcher measurement.
type e2eResult struct {
	Quantizer     string  `json:"quantizer"`
	Dim           int     `json:"dim"`
	Vectors       int     `json:"vectors"`
	NProbe        int     `json:"nprobe"`
	K             int     `json:"k"`
	NsPerQuery    float64 `json:"ns_per_query"`
	AllocsPerQry  float64 `json:"allocs_per_query"`
	QueriesPerSec float64 `json:"queries_per_sec"`
}

type report struct {
	GOOS    string         `json:"goos"`
	GOARCH  string         `json:"goarch"`
	CPUs    int            `json:"cpus"`
	Kernels []kernelResult `json:"kernels"`
	E2E     []e2eResult    `json:"e2e"`
}

func main() {
	var (
		outFlag  = flag.String("out", "BENCH_PR3.json", "JSON output path")
		dimsFlag = flag.String("dims", "64,128,768", "comma-separated kernel dims")
		codesN   = flag.Int("codes", 1024, "codes per kernel op (list-scan length)")
	)
	flag.Parse()

	var dims []int
	for _, s := range strings.Split(*dimsFlag, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || d <= 0 || d%8 != 0 {
			fatal(fmt.Errorf("invalid dim %q (must be positive multiples of 8)", s))
		}
		dims = append(dims, d)
	}

	rep := report{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, CPUs: runtime.NumCPU()}
	for _, dim := range dims {
		for _, qz := range kernelQuantizers(dim) {
			rep.Kernels = append(rep.Kernels, benchKernel(qz, dim, *codesN))
		}
	}
	rep.E2E = benchE2E()

	printReport(rep)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*outFlag, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("\nwrote %s\n", *outFlag)
}

// kernelQuantizers mirrors the shapes of internal/quant's benchmarks: Flat,
// SQ8, SQ4, and PQ/OPQ with dsub=8 (the paper's Table 1 configuration).
// Training iterations are kept small — the kernels under test are
// training-independent.
func kernelQuantizers(dim int) []quant.Quantizer {
	pq, err := quant.NewPQ(dim, dim/8, 8, 3)
	if err != nil {
		fatal(err)
	}
	opq, err := quant.NewOPQ(dim, dim/8, 8, 2)
	if err != nil {
		fatal(err)
	}
	return []quant.Quantizer{
		quant.NewFlat(dim), quant.NewSQ(dim, 8), quant.NewSQ(dim, 4), pq, opq,
	}
}

// trainAndEncode fits qz on Gaussian data and returns n contiguous codes
// plus a query, the shape of one inverted-list scan.
func trainAndEncode(qz quant.Quantizer, dim, n int) (codes []byte, q []float32) {
	rng := rand.New(rand.NewSource(17))
	train := vec.NewMatrix(512, dim)
	for i := range train.Data() {
		train.Data()[i] = float32(rng.NormFloat64())
	}
	if err := qz.Train(train); err != nil {
		fatal(err)
	}
	cs := qz.CodeSize()
	codes = make([]byte, n*cs)
	v := make([]float32, dim)
	for i := 0; i < n; i++ {
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		qz.Encode(v, codes[i*cs:(i+1)*cs])
	}
	q = make([]float32, dim)
	for d := range q {
		q[d] = float32(rng.NormFloat64())
	}
	return codes, q
}

// benchKernel times the list-scan throughput of one quantizer: the query is
// bound once outside the timed region (as in a real query, where one bind
// amortizes over nProbe lists of codes) and each op scans the n-code block.
func benchKernel(qz quant.Quantizer, dim, n int) kernelResult {
	codes, q := trainAndEncode(qz, dim, n)
	cs := qz.CodeSize()

	dz := qz.NewDistancer(q)
	scalar := testing.Benchmark(func(b *testing.B) {
		var sink float32
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				sink += dz(codes[j*cs : (j+1)*cs])
			}
		}
		_ = sink
	})

	bd := quant.NewBatchDistancer(qz)
	bd.BindQuery(q)
	out := make([]float32, n)
	batch := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bd.DistanceBatch(codes, n, out)
		}
	})

	sns := float64(scalar.NsPerOp())
	bns := float64(batch.NsPerOp())
	return kernelResult{
		Quantizer:        qz.Name(),
		Dim:              dim,
		CodesPerOp:       n,
		ScalarNsPerOp:    sns,
		BatchNsPerOp:     bns,
		ScalarVecsPerSec: float64(n) / sns * 1e9,
		BatchVecsPerSec:  float64(n) / bns * 1e9,
		Speedup:          sns / bns,
	}
}

func benchE2E() []e2eResult {
	const (
		dim     = 64
		vectors = 20000
		nlist   = 100
		nProbe  = 8
		k       = 10
	)
	rng := rand.New(rand.NewSource(1))
	data := vec.NewMatrix(vectors, dim)
	for i := range data.Data() {
		data.Data()[i] = float32(rng.NormFloat64())
	}
	pq, err := quant.NewPQ(dim, dim/8, 8, 3)
	if err != nil {
		fatal(err)
	}
	cases := []struct {
		name string
		qz   quant.Quantizer
	}{
		{"Flat", nil},
		{"SQ8", quant.NewSQ(dim, 8)},
		{"SQ4", quant.NewSQ(dim, 4)},
		{"PQ8x8", pq},
	}
	var out []e2eResult
	for _, c := range cases {
		ix, err := ivf.New(ivf.Config{Dim: dim, NList: nlist, Seed: 1, Quantizer: c.qz})
		if err != nil {
			fatal(err)
		}
		if err := ix.Train(data); err != nil {
			fatal(err)
		}
		if err := ix.AddBatch(0, data); err != nil {
			fatal(err)
		}
		s := ix.NewSearcher()
		q := data.Row(0)
		dst := make([]vec.Neighbor, 0, 2*k)
		dst, _ = s.Search(dst[:0], q, k, nProbe)

		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dst, _ = s.Search(dst[:0], q, k, nProbe)
			}
		})
		allocs := testing.AllocsPerRun(100, func() {
			dst, _ = s.Search(dst[:0], q, k, nProbe)
		})
		ns := float64(res.NsPerOp())
		out = append(out, e2eResult{
			Quantizer:     c.name,
			Dim:           dim,
			Vectors:       vectors,
			NProbe:        nProbe,
			K:             k,
			NsPerQuery:    ns,
			AllocsPerQry:  allocs,
			QueriesPerSec: 1e9 / ns,
		})
	}
	return out
}

func printReport(rep report) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "quantizer\tdim\tscalar Mvec/s\tbatch Mvec/s\tspeedup")
	for _, k := range rep.Kernels {
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%.2fx\n",
			k.Quantizer, k.Dim, k.ScalarVecsPerSec/1e6, k.BatchVecsPerSec/1e6, k.Speedup)
	}
	fmt.Fprintln(w, "\te2e\tns/query\tallocs/query\tqueries/s")
	for _, e := range rep.E2E {
		fmt.Fprintf(w, "%s\tdim%d\t%.0f\t%.0f\t%.0f\n",
			e.Quantizer, e.Dim, e.NsPerQuery, e.AllocsPerQry, e.QueriesPerSec)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hermes-kernelbench:", err)
	os.Exit(1)
}
