package ivf

import (
	"fmt"
	"time"

	"repro/internal/quant"
	"repro/internal/vec"
)

// now is the injectable clock seam used by the phased-search accounting;
// tests swap it to step time deterministically.
var now = time.Now

// PhaseNanos is the per-phase wall time of one (or an accumulation of)
// phased searches, in nanoseconds: coarse probe-cell selection, inverted-
// list scanning, and top-k result extraction. It exists so the serving node
// can ship a true per-phase breakdown to the coordinator without the
// untraced hot path ever reading the clock.
type PhaseNanos struct {
	Select int64
	Scan   int64
	Merge  int64
}

// Add accumulates o into p (batch queries sum their phases).
func (p *PhaseNanos) Add(o PhaseNanos) {
	p.Select += o.Select
	p.Scan += o.Scan
	p.Merge += o.Merge
}

// scanBlock is the number of codes evaluated per DistanceBatch call during a
// list scan. 256 codes keeps the distance scratch (1 KiB) and the code block
// (<= 32 KiB even for Flat dim-128) inside L1/L2 while amortizing the
// per-call kernel dispatch over enough vectors that it disappears from
// profiles; larger blocks showed no further gain (DESIGN.md §8).
const scanBlock = 256

// cellDist pairs a coarse cell with its centroid distance for partial
// selection.
type cellDist struct {
	d    float32
	cell int32
}

// Searcher is a reusable handle for running queries against one Index. It
// owns all per-query scratch — the batch distance kernel and its tables, the
// block distance buffer, the residual query buffer, the top-k selector, and
// the probe-cell heap — so a warmed Searcher serves an unbounded stream of
// queries with zero heap allocations beyond the caller-visible result slice.
//
// A Searcher is not safe for concurrent use; create one per goroutine (or
// let Index.Search draw from the index's internal pool). It must not be used
// across Train calls.
type Searcher struct {
	ix     *Index
	kernel quant.BatchDistancer
	dist   []float32 // per-block distances, scanBlock long
	qres   []float32 // query residual vs. the probed centroid
	tk     *vec.TopK
	cells  []int32    // selected probe cells, ascending centroid distance
	heap   []cellDist // bounded max-heap scratch for selectCells
}

// NewSearcher returns a fresh search handle. The handle embeds a batch
// kernel for the index's quantizer; all buffers grow on first use and are
// reused afterwards.
func (ix *Index) NewSearcher() *Searcher {
	return &Searcher{
		ix:     ix,
		kernel: quant.NewBatchDistancer(ix.cfg.Quantizer),
		dist:   make([]float32, scanBlock),
		qres:   make([]float32, ix.cfg.Dim),
	}
}

// getSearcher draws a warmed Searcher from the index pool.
func (ix *Index) getSearcher() *Searcher {
	if s, ok := ix.pool.Get().(*Searcher); ok {
		//lint:ignore poolescape typed pool accessor: every getSearcher is paired with putSearcher by Index.Search/SearchPhased, which keeps the Get/Put bracket one level up
		return s
	}
	return ix.NewSearcher()
}

// Search is the allocation-free-scratch variant of Index.Search: results are
// appended to dst (best first), so a caller that recycles dst pays only for
// neighbors it has not preallocated room for.
func (s *Searcher) Search(dst []vec.Neighbor, q []float32, k, nProbe int) ([]vec.Neighbor, SearchStats) {
	return s.search(dst, q, k, nProbe, nil)
}

// SearchPhased is Search plus a per-phase wall-time breakdown. Unlike the
// plain path it reads the clock (four times), so it is reserved for traced
// queries; the untraced hot path stays clock-free.
func (s *Searcher) SearchPhased(dst []vec.Neighbor, q []float32, k, nProbe int) ([]vec.Neighbor, SearchStats, PhaseNanos) {
	var ph PhaseNanos
	out, stats := s.search(dst, q, k, nProbe, &ph)
	return out, stats, ph
}

// search is the shared body; ph non-nil turns on phase timing. The
// //hermes:hotpath contract (enforced by hermes-lint) keeps every clock
// read gated behind `if ph != nil`: the untraced serving path must stay
// clock- and allocation-free, which is where PR 3's zero-allocation scan
// numbers come from.
//
//hermes:hotpath
func (s *Searcher) search(dst []vec.Neighbor, q []float32, k, nProbe int, ph *PhaseNanos) ([]vec.Neighbor, SearchStats) {
	ix := s.ix
	var stats SearchStats
	if !ix.trained || k <= 0 || ix.count == 0 {
		return dst, stats
	}
	if len(q) != ix.cfg.Dim {
		panic(fmt.Sprintf("ivf: Search dim %d != %d", len(q), ix.cfg.Dim))
	}
	// Clamp nProbe on both sides: a non-positive request probes one cell, a
	// request beyond NList probes everything (previously an out-of-range
	// panic waiting in the cell selection).
	if nProbe <= 0 {
		nProbe = 1
	}
	if nProbe > ix.cfg.NList {
		nProbe = ix.cfg.NList
	}
	var mark time.Time
	if ph != nil {
		mark = now()
	}
	s.selectCells(q, nProbe)
	if ph != nil {
		t := now()
		ph.Select += t.Sub(mark).Nanoseconds()
		mark = t
	}
	if s.tk == nil {
		s.tk = vec.NewTopK(k)
	} else {
		s.tk.Reset(k)
	}
	if !ix.cfg.ByResidual {
		s.kernel.BindQuery(q)
	}
	cs := ix.cfg.Quantizer.CodeSize()
	for _, c := range s.cells {
		l := &ix.lists[c]
		stats.CellsProbed++
		if len(l.ids) == 0 {
			continue
		}
		if ix.cfg.ByResidual {
			// Distances to residual codes are computed against the query's
			// residual from the same centroid: ||q - (c + r)|| = ||(q-c) - r||.
			centroid := ix.centroids.Row(int(c))
			for d := range q {
				s.qres[d] = q[d] - centroid[d]
			}
			s.kernel.BindQuery(s.qres)
		}
		var dead []uint32
		if ix.deadCount > 0 && ix.deadPos != nil {
			dead = ix.deadPos[c]
		}
		stats.VectorsScanned += s.scanList(l, cs, dead)
	}
	if ph != nil {
		t := now()
		ph.Scan += t.Sub(mark).Nanoseconds()
		mark = t
	}
	out := s.tk.AppendResults(dst)
	if ph != nil {
		ph.Merge += now().Sub(mark).Nanoseconds()
	}
	return out, stats
}

// scanList runs the blocked kernel over one inverted list and folds the
// distances into the top-k selector, skipping tombstoned slots via a cursor
// over the sorted dead positions. It returns the number of live vectors
// scanned. Distances for dead slots are computed and discarded — with block
// kernels that is cheaper than splitting blocks around them.
//
//hermes:hotpath
func (s *Searcher) scanList(l *invList, cs int, dead []uint32) int {
	n := len(l.ids)
	tk := s.tk
	live := 0
	di := 0
	for b0 := 0; b0 < n; b0 += scanBlock {
		bn := n - b0
		if bn > scanBlock {
			bn = scanBlock
		}
		s.kernel.DistanceBatch(l.codes[b0*cs:], bn, s.dist)
		dist := s.dist[:bn]
		ids := l.ids[b0 : b0+bn]
		worst, full := tk.WorstScore()
		if len(dead) == 0 {
			for i, id := range ids {
				d := dist[i]
				if full && d >= worst {
					continue
				}
				tk.Push(id, d)
				worst, full = tk.WorstScore()
			}
			live += bn
			continue
		}
		for i, id := range ids {
			pos := uint32(b0 + i)
			for di < len(dead) && dead[di] < pos {
				di++
			}
			if di < len(dead) && dead[di] == pos {
				di++
				continue
			}
			live++
			d := dist[i]
			if full && d >= worst {
				continue
			}
			tk.Push(id, d)
			worst, full = tk.WorstScore()
		}
	}
	return live
}

// selectCells fills s.cells with the nProbe cells whose centroids are closest
// to q, ascending by distance, reusing the searcher's heap scratch.
//
//hermes:hotpath
func (s *Searcher) selectCells(q []float32, nProbe int) {
	s.heap, s.cells = selectProbeCells(s.ix, q, nProbe, s.heap, s.cells)
}

// selectProbeCells is the shared probe-cell selection of the single-query
// and grouped scan paths: it fills cells with the nProbe cells whose
// centroids are closest to q, ascending by distance. It is a bounded
// max-heap partial selection — O(nlist log nProbe) instead of the full
// O(nlist log nlist) sort — and both scratch slices are returned (grown only
// on first use) so callers can pool them across queries.
//
//hermes:hotpath
func selectProbeCells(ix *Index, q []float32, nProbe int, heap []cellDist, cells []int32) ([]cellDist, []int32) {
	if cap(heap) < nProbe {
		heap = make([]cellDist, 0, nProbe)
	}
	h := heap[:0]
	for c := 0; c < ix.cfg.NList; c++ {
		d := vec.L2Squared(q, ix.centroids.Row(c))
		if len(h) < nProbe {
			h = append(h, cellDist{d, int32(c)})
			siftUpCell(h, len(h)-1)
			continue
		}
		if d >= h[0].d {
			continue
		}
		h[0] = cellDist{d, int32(c)}
		siftDownCell(h, 0)
	}
	// Heapsort extraction: repeatedly move the current max to the end, so the
	// slice ends up ascending by distance.
	for end := len(h) - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		siftDownCell(h[:end], 0)
	}
	if cap(cells) < len(h) {
		cells = make([]int32, len(h))
	}
	cells = cells[:len(h)]
	for i := range h {
		cells[i] = h[i].cell
	}
	return h, cells
}

func siftUpCell(h []cellDist, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h[p].d >= h[i].d {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func siftDownCell(h []cellDist, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h[l].d > h[largest].d {
			largest = l
		}
		if r < n && h[r].d > h[largest].d {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}
