// Command hermes-build constructs retrieval indexes from a (synthetic)
// corpus and writes them to an index directory, mirroring the paper
// artifact's offline index-construction step.
//
// Usage:
//
//	hermes-build -out ./idx -type hermes -chunks 20000 -dim 64 -shards 10
//	hermes-build -out ./idx -type monolithic -chunks 20000 -dim 64
//	hermes-build -out ./idx -type split -chunks 20000 -dim 64 -shards 10
//
// The directory receives meta.json (index type, shape, and the corpus spec
// so queries and chunk text can be regenerated deterministically) plus one
// shard-NNN.ivf file per shard (a single shard-000.ivf for monolithic).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/corpus"
	"repro/internal/hermes"
	"repro/internal/ivf"
	"repro/internal/striding"
	"repro/pkg/indexfile"
)

func main() {
	var (
		out    = flag.String("out", "hermes-index", "output directory")
		typ    = flag.String("type", "hermes", "index type: hermes, split, or monolithic")
		chunks = flag.Int("chunks", 20000, "corpus size in chunks (1 chunk = 64 tokens)")
		dim    = flag.Int("dim", 64, "embedding dimensionality")
		topics = flag.Int("topics", 10, "latent topics in the synthetic corpus")
		shards = flag.Int("shards", 10, "shard count for hermes/split indexes")
		seed   = flag.Int64("seed", 42, "generation seed")
		quant  = flag.Int("quant", 8, "quantization bits: 0 (flat), 4, or 8")
		embed  = flag.String("embed", "topic", "embedding source: topic (latent vectors) or text (hash-embedded chunk text; enables free-text search)")
		edim   = flag.Int("embed-dim", 48, "embedding dim for -embed text")
	)
	flag.Parse()

	spec := corpus.Spec{NumChunks: *chunks, Dim: *dim, NumTopics: *topics, Seed: *seed}
	fmt.Fprintf(os.Stderr, "generating corpus: %d chunks, dim %d, %d topics...\n", *chunks, *dim, *topics)
	c, err := corpus.Generate(spec)
	if err != nil {
		fatal(err)
	}

	meta := indexfile.Meta{Type: *typ, Dim: *dim, Embedding: *embed, Corpus: spec}
	var indexes []*ivf.Index
	if *embed == "text" {
		if *typ != "hermes" {
			fatal(fmt.Errorf("-embed text requires -type hermes"))
		}
		fmt.Fprintf(os.Stderr, "hash-embedding %d chunk texts at dim %d...\n", *chunks, *edim)
		ts, err := striding.BuildTextStore(c, *edim, *shards)
		if err != nil {
			fatal(err)
		}
		meta.Dim = *edim
		meta.EmbedDim = *edim
		for _, sh := range ts.Store.Shards {
			indexes = append(indexes, sh.Index)
		}
		meta.Shards = len(indexes)
		writeOut(*out, meta, indexes)
		return
	} else if *embed != "topic" {
		fatal(fmt.Errorf("unknown -embed %q", *embed))
	}
	switch *typ {
	case "hermes":
		fmt.Fprintf(os.Stderr, "clustering into %d shards (multi-seed imbalance minimization)...\n", *shards)
		st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: *shards, QuantBits: *quant})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "chosen seed %d, shard imbalance %.2f\n", st.SeedUsed, st.Imbalance)
		for _, sh := range st.Shards {
			indexes = append(indexes, sh.Index)
		}
		meta.Shards = len(indexes)
	case "split":
		st, err := hermes.BuildNaiveSplit(c.Vectors, *shards, *quant)
		if err != nil {
			fatal(err)
		}
		for _, sh := range st.Shards {
			indexes = append(indexes, sh.Index)
		}
		meta.Shards = len(indexes)
	case "monolithic":
		ix, err := hermes.BuildMonolithic(c.Vectors, *quant, 0, *seed)
		if err != nil {
			fatal(err)
		}
		indexes = append(indexes, ix)
		meta.Shards = 1
	default:
		fatal(fmt.Errorf("unknown index type %q", *typ))
	}

	writeOut(*out, meta, indexes)
}

func writeOut(out string, meta indexfile.Meta, indexes []*ivf.Index) {
	if err := os.MkdirAll(out, 0o755); err != nil {
		fatal(err)
	}
	for i, ix := range indexes {
		path := filepath.Join(out, indexfile.ShardFile(i))
		if err := indexfile.WriteIndex(path, ix); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d vectors, %s)\n", path, ix.Len(), ix.QuantizerName())
	}
	metaBytes, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(out, "meta.json"), metaBytes, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", filepath.Join(out, "meta.json"))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hermes-build:", err)
	os.Exit(1)
}
