// Package hnsw implements the Hierarchical Navigable Small World graph index
// (Malkov & Yashunin). The paper uses HNSW as the comparison point in
// Figure 4: it reaches higher throughput than IVF at similar recall but its
// bidirectional graph links make the memory footprint ~2.3x larger, which is
// why Hermes builds on IVF instead.
package hnsw

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/vec"
)

// Config controls index construction.
type Config struct {
	Dim int
	// M is the maximum number of bidirectional links per node per layer
	// (level 0 allows 2M). Default 16.
	M int
	// EfConstruction is the candidate-list width during insertion.
	// Default 200.
	EfConstruction int
	// EfSearch is the default search-time candidate width. Default 64.
	EfSearch int
	// Seed drives level sampling; default 0, so builds from equal configs
	// are bit-identical.
	Seed int64
	// Rand, when non-nil, supplies the level-sampling generator directly
	// and Seed is ignored.
	Rand *rand.Rand `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 64
	}
	return c
}

type node struct {
	id int64
	// neighbors[l] lists adjacent node indices at layer l.
	neighbors [][]int32
}

// Index is an HNSW graph. Insertion is single-writer; Search is safe for
// concurrent use once building is done.
type Index struct {
	cfg       Config
	data      *vec.Matrix
	nodes     []node
	entry     int32
	maxLevel  int
	levelMult float64
	rng       *rand.Rand
	mu        sync.Mutex
}

// New creates an empty HNSW index.
func New(cfg Config) (*Index, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("hnsw: Dim must be positive, got %d", cfg.Dim)
	}
	cfg = cfg.withDefaults()
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return &Index{
		cfg:       cfg,
		data:      vec.NewMatrix(0, cfg.Dim),
		entry:     -1,
		levelMult: 1 / math.Log(float64(cfg.M)),
		rng:       rng,
	}, nil
}

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.cfg.Dim }

// Len returns the number of stored vectors.
func (ix *Index) Len() int { return len(ix.nodes) }

func (ix *Index) randomLevel() int {
	return int(-math.Log(1-ix.rng.Float64()) * ix.levelMult)
}

func (ix *Index) dist(a int32, q []float32) float32 {
	return vec.L2Squared(ix.data.Row(int(a)), q)
}

// Add inserts a vector under id.
func (ix *Index) Add(id int64, v []float32) error {
	if len(v) != ix.cfg.Dim {
		return fmt.Errorf("hnsw: Add dim %d != %d", len(v), ix.cfg.Dim)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()

	level := ix.randomLevel()
	idx := int32(len(ix.nodes))
	ix.data.AppendRow(v)
	n := node{id: id, neighbors: make([][]int32, level+1)}
	ix.nodes = append(ix.nodes, n)

	if ix.entry < 0 {
		ix.entry = idx
		ix.maxLevel = level
		return nil
	}

	cur := ix.entry
	// Greedy descent through the layers above the new node's level.
	for l := ix.maxLevel; l > level; l-- {
		cur = ix.greedyClosest(cur, v, l)
	}
	// Insert with neighbor selection on each shared layer.
	for l := min(level, ix.maxLevel); l >= 0; l-- {
		candidates := ix.searchLayer(cur, v, ix.cfg.EfConstruction, l)
		m := ix.cfg.M
		if l == 0 {
			m = 2 * ix.cfg.M
		}
		selected := ix.selectNeighbors(candidates, m, v)
		ix.nodes[idx].neighbors[l] = selected
		for _, nb := range selected {
			ix.link(nb, idx, l, m)
		}
		if len(candidates) > 0 {
			cur = candidates[0].idx
		}
	}
	if level > ix.maxLevel {
		ix.maxLevel = level
		ix.entry = idx
	}
	return nil
}

// link adds src as a neighbor of dst at layer l, pruning to the m closest if
// the list overflows.
func (ix *Index) link(dst, src int32, l, m int) {
	nbrs := append(ix.nodes[dst].neighbors[l], src)
	if len(nbrs) > m {
		// Keep the m closest to dst.
		base := ix.data.Row(int(dst))
		cands := make([]scored, len(nbrs))
		for i, nb := range nbrs {
			cands[i] = scored{nb, ix.dist(nb, base)}
		}
		nbrs = ix.selectNeighbors(cands, m, base)
	}
	ix.nodes[dst].neighbors[l] = nbrs
}

type scored struct {
	idx int32
	d   float32
}

// greedyClosest walks layer l greedily from start toward q.
func (ix *Index) greedyClosest(start int32, q []float32, l int) int32 {
	cur := start
	curDist := ix.dist(cur, q)
	for {
		improved := false
		for _, nb := range ix.nodes[cur].neighbors[l] {
			if d := ix.dist(nb, q); d < curDist {
				cur, curDist = nb, d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer is the beam search over one layer returning up to ef
// candidates sorted ascending by distance.
func (ix *Index) searchLayer(entry int32, q []float32, ef, l int) []scored {
	visited := map[int32]struct{}{entry: {}}
	entryDist := ix.dist(entry, q)
	// candidates: min-heap by distance; results: bounded max-heap.
	cands := &minHeap{{entry, entryDist}}
	results := &maxHeap{{entry, entryDist}}

	for cands.Len() > 0 {
		c := cands.popMin()
		if worst := results.peekMax(); results.Len() >= ef && c.d > worst.d {
			break
		}
		for _, nb := range ix.nodes[c.idx].neighbors[l] {
			if _, seen := visited[nb]; seen {
				continue
			}
			visited[nb] = struct{}{}
			d := ix.dist(nb, q)
			if results.Len() < ef || d < results.peekMax().d {
				cands.pushMin(scored{nb, d})
				results.pushMax(scored{nb, d})
				if results.Len() > ef {
					results.popMax()
				}
			}
		}
	}
	out := make([]scored, results.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = results.popMax()
	}
	return out
}

// selectNeighbors applies the heuristic neighbor selection from the HNSW
// paper: prefer candidates that are closer to q than to any already-selected
// neighbor, which keeps the graph navigable in clustered data.
func (ix *Index) selectNeighbors(cands []scored, m int, q []float32) []int32 {
	if len(cands) <= m {
		out := make([]int32, len(cands))
		for i, c := range cands {
			out[i] = c.idx
		}
		return out
	}
	selected := make([]scored, 0, m)
	for _, c := range cands {
		if len(selected) >= m {
			break
		}
		ok := true
		for _, s := range selected {
			if ix.dist(s.idx, ix.data.Row(int(c.idx))) < c.d {
				ok = false
				break
			}
		}
		if ok {
			selected = append(selected, c)
		}
	}
	// Backfill with closest remaining if the heuristic was too strict.
	for _, c := range cands {
		if len(selected) >= m {
			break
		}
		dup := false
		for _, s := range selected {
			if s.idx == c.idx {
				dup = true
				break
			}
		}
		if !dup {
			selected = append(selected, c)
		}
	}
	out := make([]int32, len(selected))
	for i, s := range selected {
		out[i] = s.idx
	}
	return out
}

// Search returns the approximate k nearest neighbors of q using the default
// EfSearch width.
func (ix *Index) Search(q []float32, k int) []vec.Neighbor {
	return ix.SearchEf(q, k, ix.cfg.EfSearch)
}

// SearchEf searches with an explicit ef width (must be >= k for full
// result sets).
func (ix *Index) SearchEf(q []float32, k, ef int) []vec.Neighbor {
	if len(q) != ix.cfg.Dim {
		panic(fmt.Sprintf("hnsw: Search dim %d != %d", len(q), ix.cfg.Dim))
	}
	if k <= 0 || ix.entry < 0 {
		return nil
	}
	if ef < k {
		ef = k
	}
	cur := ix.entry
	for l := ix.maxLevel; l > 0; l-- {
		cur = ix.greedyClosest(cur, q, l)
	}
	cands := ix.searchLayer(cur, q, ef, 0)
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]vec.Neighbor, len(cands))
	for i, c := range cands {
		out[i] = vec.Neighbor{ID: ix.nodes[c.idx].id, Score: c.d}
	}
	return out
}

// MemoryBytes reports vectors plus graph links plus IDs. The link overhead
// is what makes HNSW ~2.3x larger than IVF-SQ8 in Figure 4.
func (ix *Index) MemoryBytes() int64 {
	total := ix.data.Bytes()
	for i := range ix.nodes {
		total += 8 // id
		for _, nbrs := range ix.nodes[i].neighbors {
			total += int64(len(nbrs)) * 4
		}
	}
	return total
}

// GraphStats summarizes graph shape for diagnostics.
type GraphStats struct {
	Nodes     int
	MaxLevel  int
	AvgDegree float64 // layer 0
}

// Stats returns current graph statistics.
func (ix *Index) Stats() GraphStats {
	var deg int
	for i := range ix.nodes {
		if len(ix.nodes[i].neighbors) > 0 {
			deg += len(ix.nodes[i].neighbors[0])
		}
	}
	avg := 0.0
	if len(ix.nodes) > 0 {
		avg = float64(deg) / float64(len(ix.nodes))
	}
	return GraphStats{Nodes: len(ix.nodes), MaxLevel: ix.maxLevel, AvgDegree: avg}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
