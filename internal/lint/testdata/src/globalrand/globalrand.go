// Package globalrand is a lint fixture: library code drawing from the
// shared math/rand global source.
package globalrand

import "math/rand"

func bad() float32 {
	return rand.Float32() // line 8: flagged
}

func badSeveral() []int {
	n := rand.Intn(10)                 // line 12: flagged
	rand.Shuffle(n, func(i, j int) {}) // line 13: flagged
	return rand.Perm(4)                // line 14: flagged
}

func good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // constructors are allowed
	return rng.Float64()
}

func goodZipf(seed int64) uint64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.3, 1, 100)
	return z.Uint64()
}

func suppressed() int {
	//lint:ignore globalrand fixture demonstrates an audited exception
	return rand.Int()
}
