package quant

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

// batchTolerance is the documented FP-reassociation bound between the scalar
// Distancer and the multi-lane batch kernels (DESIGN.md §8).
const batchTolerance = 1e-4

func relDiff(a, b float32) float64 {
	d := math.Abs(float64(a) - float64(b))
	scale := math.Max(math.Abs(float64(a)), math.Abs(float64(b)))
	if scale < 1 {
		scale = 1
	}
	return d / scale
}

// trainedQuantizers builds one trained instance of every scheme at dim.
// PQ/OPQ are skipped when dim is not divisible by their m.
func trainedQuantizers(t testing.TB, dim int, rng *rand.Rand) []Quantizer {
	t.Helper()
	data := vec.NewMatrix(600, dim)
	for i := range data.Data() {
		data.Data()[i] = float32(rng.NormFloat64())
	}
	qs := []Quantizer{NewFlat(dim), NewSQ(dim, 8), NewSQ(dim, 4)}
	if dim%4 == 0 {
		pq, err := NewPQ(dim, dim/4, 8, 11)
		if err != nil {
			t.Fatal(err)
		}
		opq, err := NewOPQ(dim, dim/4, 8, 13)
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, pq, opq)
	}
	for _, qz := range qs {
		if err := qz.Train(data); err != nil {
			t.Fatalf("%s train: %v", qz.Name(), err)
		}
	}
	return qs
}

// TestBatchMatchesScalar is the batch/scalar equivalence property: for every
// quantizer, DistanceBatch output matches the scalar Distancer within the
// documented tolerance on random inputs, including batch lengths that are not
// multiples of any block size and dims not divisible by 4.
func TestBatchMatchesScalar(t *testing.T) {
	// 13: odd dim exercises the SQ4 nibble tail; 12: dim%8==4 exercises the
	// SQ8 assembly kernel's four-wide tail step.
	for _, dim := range []int{6, 12, 13, 16, 64} {
		rng := rand.New(rand.NewSource(int64(dim)))
		for _, qz := range trainedQuantizers(t, dim, rng) {
			t.Run(fmt.Sprintf("%s/dim%d", qz.Name(), dim), func(t *testing.T) {
				cs := qz.CodeSize()
				for _, n := range []int{1, 3, 17, 257} { // off-block lengths
					codes := make([]byte, n*cs)
					v := make([]float32, dim)
					for i := 0; i < n; i++ {
						for d := range v {
							v[d] = float32(rng.NormFloat64())
						}
						qz.Encode(v, codes[i*cs:(i+1)*cs])
					}
					q := make([]float32, dim)
					for d := range q {
						q[d] = float32(rng.NormFloat64())
					}

					scalar := qz.NewDistancer(q)
					kernel := NewBatchDistancer(qz)
					kernel.BindQuery(q)
					out := make([]float32, n)
					kernel.DistanceBatch(codes, n, out)
					for i := 0; i < n; i++ {
						want := scalar(codes[i*cs : (i+1)*cs])
						if rd := relDiff(out[i], want); rd > batchTolerance {
							t.Fatalf("n=%d code %d: batch %v vs scalar %v (rel %v)", n, i, out[i], want, rd)
						}
						if got := kernel.Distance(codes[i*cs : (i+1)*cs]); relDiff(got, want) > batchTolerance {
							t.Fatalf("n=%d code %d: Distance %v vs scalar %v", n, i, got, want)
						}
					}
				}
			})
		}
	}
}

// TestBatchRebind checks that a kernel re-bound to a new query forgets the
// old one — the property the pooled searchers rely on.
func TestBatchRebind(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, qz := range trainedQuantizers(t, 16, rng) {
		cs := qz.CodeSize()
		v := make([]float32, 16)
		for d := range v {
			v[d] = float32(rng.NormFloat64())
		}
		code := make([]byte, cs)
		qz.Encode(v, code)

		q1 := make([]float32, 16)
		q2 := make([]float32, 16)
		for d := range q1 {
			q1[d] = float32(rng.NormFloat64())
			q2[d] = float32(rng.NormFloat64())
		}
		kernel := NewBatchDistancer(qz)
		kernel.BindQuery(q1)
		_ = kernel.Distance(code)
		kernel.BindQuery(q2)
		got := kernel.Distance(code)
		want := qz.NewDistancer(q2)(code)
		if relDiff(got, want) > batchTolerance {
			t.Fatalf("%s: rebound kernel %v vs scalar %v", qz.Name(), got, want)
		}
	}
}

// TestFlatBatchBitIdentical pins the stronger Flat contract: same lane
// structure as the scalar path means bit-identical results.
func TestFlatBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, dim := range []int{5, 8, 127} {
		f := NewFlat(dim)
		cs := f.CodeSize()
		const n = 33
		codes := make([]byte, n*cs)
		v := make([]float32, dim)
		for i := 0; i < n; i++ {
			for d := range v {
				v[d] = float32(rng.NormFloat64())
			}
			f.Encode(v, codes[i*cs:(i+1)*cs])
		}
		q := make([]float32, dim)
		for d := range q {
			q[d] = float32(rng.NormFloat64())
		}
		scalar := f.NewDistancer(q)
		kernel := NewBatchDistancer(f)
		kernel.BindQuery(q)
		out := make([]float32, n)
		kernel.DistanceBatch(codes, n, out)
		for i := 0; i < n; i++ {
			if want := scalar(codes[i*cs : (i+1)*cs]); out[i] != want {
				t.Fatalf("dim=%d code %d: %v != %v", dim, i, out[i], want)
			}
		}
	}
}

// stubQuantizer has no native batch kernel (explicit delegation rather than
// embedding, so Flat's NewBatchDistancer is not promoted); it exercises the
// scalar fallback adapter.
type stubQuantizer struct{ f *Flat }

func (s stubQuantizer) Name() string                       { return "Stub" }
func (s stubQuantizer) Dim() int                           { return s.f.Dim() }
func (s stubQuantizer) CodeSize() int                      { return s.f.CodeSize() }
func (s stubQuantizer) Train(m *vec.Matrix) error          { return s.f.Train(m) }
func (s stubQuantizer) Encode(v []float32, code []byte)    { s.f.Encode(v, code) }
func (s stubQuantizer) Decode(code []byte, out []float32)  { s.f.Decode(code, out) }
func (s stubQuantizer) NewDistancer(q []float32) Distancer { return s.f.NewDistancer(q) }

func TestScalarFallbackAdapter(t *testing.T) {
	f := NewFlat(8)
	stub := stubQuantizer{f}
	kernel := NewBatchDistancer(stub)
	if _, ok := kernel.(*scalarBatch); !ok {
		t.Fatalf("expected scalar fallback adapter, got %T", kernel)
	}
	rng := rand.New(rand.NewSource(3))
	v := make([]float32, 8)
	q := make([]float32, 8)
	for d := range v {
		v[d] = float32(rng.NormFloat64())
		q[d] = float32(rng.NormFloat64())
	}
	code := make([]byte, f.CodeSize())
	f.Encode(v, code)
	kernel.BindQuery(q)
	var out [1]float32
	kernel.DistanceBatch(code, 1, out[:])
	if want := f.NewDistancer(q)(code); out[0] != want {
		t.Fatalf("adapter %v != scalar %v", out[0], want)
	}
}

// Native kernels must allocate nothing per query for SQ/Flat (the serving
// operating points); PQ/OPQ keep their table but may not allocate either.
func TestBatchBindQueryZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, qz := range trainedQuantizers(t, 16, rng) {
		kernel := NewBatchDistancer(qz)
		q := make([]float32, 16)
		for d := range q {
			q[d] = float32(rng.NormFloat64())
		}
		kernel.BindQuery(q) // warm
		allocs := testing.AllocsPerRun(50, func() { kernel.BindQuery(q) })
		if allocs != 0 {
			t.Fatalf("%s: BindQuery allocated %v times per run", qz.Name(), allocs)
		}
	}
}
