// Package kvcache implements the document KV-tensor cache that RAGCache
// (Jin et al., the paper's [17]) builds RAG serving on: the transformer
// prefill states of retrieved documents are cached so that re-retrieved
// documents skip re-prefill. The paper's evaluation assumes an ideal 100%
// hit rate; this package provides the real artifact — a capacity-bounded LRU
// over per-document KV tensors with byte-accurate sizing — so the assumption
// itself can be measured (see the ablation-cachehit experiment: hit rates
// under realistic document popularity and cache sizes, and what they do to
// RAGCache's modeled benefit).
package kvcache

import (
	"container/list"
	"fmt"
)

// Cache is an LRU over document KV states. Not safe for concurrent use;
// serving layers wrap it with their own synchronization.
type Cache struct {
	capacityBytes int64
	usedBytes     int64
	entries       map[int64]*list.Element
	order         *list.List // front = most recently used

	hits, misses, evictions int64
}

type entry struct {
	id    int64
	bytes int64
}

// New creates a cache bounded to capacityBytes of KV state.
func New(capacityBytes int64) (*Cache, error) {
	if capacityBytes <= 0 {
		return nil, fmt.Errorf("kvcache: capacity must be positive, got %d", capacityBytes)
	}
	return &Cache{
		capacityBytes: capacityBytes,
		entries:       make(map[int64]*list.Element),
		order:         list.New(),
	}, nil
}

// KVBytes sizes one document's KV state: tokens in the chunk times the
// model's per-token KV footprint (2 * layers * hidden * bytes/elem; see
// llm.ModelSpec.KVBytesPerToken).
func KVBytes(chunkTokens int, perTokenBytes float64) int64 {
	return int64(float64(chunkTokens) * perTokenBytes)
}

// Lookup records an access to document id needing sizeBytes of KV state.
// It returns true on a hit; on a miss the document is admitted, evicting
// least-recently-used entries as needed. Documents larger than the whole
// cache are never admitted (counted as misses).
func (c *Cache) Lookup(id int64, sizeBytes int64) bool {
	if el, ok := c.entries[id]; ok {
		c.hits++
		c.order.MoveToFront(el)
		return true
	}
	c.misses++
	if sizeBytes > c.capacityBytes || sizeBytes <= 0 {
		return false
	}
	for c.usedBytes+sizeBytes > c.capacityBytes {
		c.evictOldest()
	}
	el := c.order.PushFront(&entry{id: id, bytes: sizeBytes})
	c.entries[id] = el
	c.usedBytes += sizeBytes
	return false
}

// Contains reports presence without perturbing recency or stats.
func (c *Cache) Contains(id int64) bool {
	_, ok := c.entries[id]
	return ok
}

// Invalidate drops a document's cached state (e.g. after the underlying
// chunk was updated or removed from the datastore).
func (c *Cache) Invalidate(id int64) bool {
	el, ok := c.entries[id]
	if !ok {
		return false
	}
	c.remove(el)
	return true
}

func (c *Cache) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	c.remove(el)
	c.evictions++
}

func (c *Cache) remove(el *list.Element) {
	e := el.Value.(*entry)
	delete(c.entries, e.id)
	c.order.Remove(el)
	c.usedBytes -= e.bytes
}

// Stats reports cumulative cache behaviour.
type Stats struct {
	Hits, Misses, Evictions  int64
	UsedBytes, CapacityBytes int64
	Entries                  int
}

// HitRate is hits / (hits + misses), or 0 before any access.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		UsedBytes: c.usedBytes, CapacityBytes: c.capacityBytes,
		Entries: len(c.entries),
	}
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	c.entries = make(map[int64]*list.Element)
	c.order.Init()
	c.usedBytes, c.hits, c.misses, c.evictions = 0, 0, 0, 0
}
