package hnsw

// minHeap and maxHeap are small specialized binary heaps over scored
// candidates. Hand-rolled rather than container/heap to avoid interface
// boxing on the search hot path.

type minHeap []scored

func (h *minHeap) Len() int { return len(*h) }

func (h *minHeap) pushMin(s scored) {
	*h = append(*h, s)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].d <= (*h)[i].d {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *minHeap) popMin() scored {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	h.siftDown(0)
	return top
}

func (h *minHeap) siftDown(i int) {
	n := len(*h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h)[l].d < (*h)[smallest].d {
			smallest = l
		}
		if r < n && (*h)[r].d < (*h)[smallest].d {
			smallest = r
		}
		if smallest == i {
			return
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
}

type maxHeap []scored

func (h *maxHeap) Len() int { return len(*h) }

func (h *maxHeap) peekMax() scored { return (*h)[0] }

func (h *maxHeap) pushMax(s scored) {
	*h = append(*h, s)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].d >= (*h)[i].d {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *maxHeap) popMax() scored {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	h.siftDown(0)
	return top
}

func (h *maxHeap) siftDown(i int) {
	n := len(*h)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && (*h)[l].d > (*h)[largest].d {
			largest = l
		}
		if r < n && (*h)[r].d > (*h)[largest].d {
			largest = r
		}
		if largest == i {
			return
		}
		(*h)[i], (*h)[largest] = (*h)[largest], (*h)[i]
		i = largest
	}
}
