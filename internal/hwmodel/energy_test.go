package hwmodel

import (
	"testing"
	"time"
)

func TestEnergyModelValidatesSpec(t *testing.T) {
	if _, err := NewEnergyModel(CPUSpec{}); err == nil {
		t.Fatal("zero spec must fail validation")
	}
	m, err := NewEnergyModel(XeonGold6448Y)
	if err != nil {
		t.Fatal(err)
	}
	if m.Spec().Name != XeonGold6448Y.Name {
		t.Errorf("Spec() = %q", m.Spec().Name)
	}
}

func TestEnergyModelIdleWindow(t *testing.T) {
	m, err := NewEnergyModel(XeonGold6448Y)
	if err != nil {
		t.Fatal(err)
	}
	spec := m.Spec()
	ne := m.Advance(0, 1_000_000, 0, 2*time.Second)
	if ne.GHz != spec.MinGHz {
		t.Errorf("idle GHz = %v, want MinGHz %v", ne.GHz, spec.MinGHz)
	}
	if ne.Watts != spec.IdleWatts {
		t.Errorf("idle Watts = %v, want IdleWatts %v", ne.Watts, spec.IdleWatts)
	}
	want := spec.IdleWatts * 2
	if diff := ne.Joules - want; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("idle Joules = %v, want %v (idle power over the window)", ne.Joules, want)
	}
	// An unknown node reads back as idle-at-minimum without mutating state.
	if got := m.Node(99); got.GHz != spec.MinGHz || got.Joules != 0 {
		t.Errorf("unseen node = %+v", got)
	}
}

func TestEnergyModelLoadedWindow(t *testing.T) {
	m, err := NewEnergyModel(XeonGold6448Y)
	if err != nil {
		t.Fatal(err)
	}
	spec := m.Spec()
	const shardTokens = 50_000_000
	ne := m.Advance(1, shardTokens, 32, time.Second)
	if ne.GHz < spec.MinGHz || ne.GHz > spec.MaxGHz {
		t.Errorf("modeled GHz %v outside [%v, %v]", ne.GHz, spec.MinGHz, spec.MaxGHz)
	}
	if ne.Joules <= 0 || ne.Watts <= 0 {
		t.Errorf("loaded window must charge energy: %+v", ne)
	}
	if ne.Queries != 32 {
		t.Errorf("Queries = %d, want 32", ne.Queries)
	}
	// Heavier load within the same window pushes the modeled frequency up
	// (until the max clamp) and never cheapens the window.
	heavy := m.Advance(2, shardTokens, 320, time.Second)
	if heavy.GHz < ne.GHz {
		t.Errorf("10x load lowered modeled frequency: %v < %v", heavy.GHz, ne.GHz)
	}
}

func TestEnergyModelJoulesMonotonic(t *testing.T) {
	m, err := NewEnergyModel(XeonSilver4316)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	loads := []int64{0, 5, 0, 100, 1, 0}
	for i, q := range loads {
		ne := m.Advance(0, 10_000_000, q, 500*time.Millisecond)
		if ne.Joules <= prev {
			t.Fatalf("window %d (queries=%d): joules %v not above %v — cumulative energy must be monotonic",
				i, q, ne.Joules, prev)
		}
		prev = ne.Joules
	}
	// A zero or negative window is a no-op, not a rollback.
	if ne := m.Advance(0, 10_000_000, 50, 0); ne.Joules != prev {
		t.Errorf("zero window changed joules: %v != %v", ne.Joules, prev)
	}
	if got := m.Node(0); got.Joules != prev {
		t.Errorf("Node() = %v joules, want %v", got.Joules, prev)
	}
}
