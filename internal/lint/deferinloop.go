package lint

import (
	"go/ast"
)

// DeferInLoop flags defer statements inside loop bodies. A defer runs at
// function exit, not iteration exit, so a loop deferring per-iteration
// cleanup (file handles, unlocks, span Ends) accumulates every iteration's
// resource until the function returns — in a shard rebuild iterating over
// segment files that is an fd-exhaustion outage, and in a scan loop it is
// an unbounded defer stack on the hot path. Hoist the body into a helper
// function (the defer then runs per call) or release explicitly.
var DeferInLoop = &Analyzer{
	Name:      "deferinloop",
	Doc:       "defer inside a loop body runs at function exit, accumulating one pending call per iteration",
	Run:       runDeferInLoop,
	TestFiles: true,
}

func runDeferInLoop(p *Pass) {
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				deferInLoopWalk(p, fd.Body, 0)
			}
		}
	}
}

// deferInLoopWalk descends tracking loop depth. A function literal resets
// the depth: its defers run when the literal returns, so a `for { func(){
// defer f.Close(); ... }() }` pattern is exactly the recommended fix.
func deferInLoopWalk(p *Pass, n ast.Node, depth int) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			deferInLoopWalk(p, s.Body, 0)
			return false
		case *ast.ForStmt:
			if s.Init != nil {
				deferInLoopWalk(p, s.Init, depth)
			}
			if s.Cond != nil {
				deferInLoopWalk(p, s.Cond, depth)
			}
			if s.Post != nil {
				deferInLoopWalk(p, s.Post, depth)
			}
			deferInLoopWalk(p, s.Body, depth+1)
			return false
		case *ast.RangeStmt:
			if s.X != nil {
				deferInLoopWalk(p, s.X, depth)
			}
			deferInLoopWalk(p, s.Body, depth+1)
			return false
		case *ast.DeferStmt:
			if depth > 0 {
				p.Reportf(s.Pos(), "defer inside a loop body runs at function exit, not iteration exit; each iteration stacks another pending call — hoist the loop body into a function, or suppress with //lint:ignore deferinloop <reason>")
			}
		}
		return true
	})
}
