package hermes

import "repro/internal/telemetry"

// storeMetrics holds the resolved metric handles for the in-process search
// path. The zero value (all-nil handles) makes every instrumentation site a
// no-op, so Search needs no telemetry branch.
type storeMetrics struct {
	searches      *telemetry.Counter
	searchSeconds *telemetry.Histogram
	sampleScanned *telemetry.Counter
	deepScanned   *telemetry.Counter
}

// SetTelemetry publishes the store's search-path metrics (hermes_store_*)
// into reg. Handles are resolved once here, so the per-query overhead is a
// few atomic adds. A nil reg disables instrumentation.
func (st *Store) SetTelemetry(reg *telemetry.Registry) {
	st.met = storeMetrics{
		searches: reg.Counter("hermes_store_searches_total",
			"Hierarchical searches served by the in-process store."),
		searchSeconds: reg.Histogram("hermes_store_search_seconds",
			"End-to-end hierarchical search latency.", telemetry.DefLatencyBuckets),
		sampleScanned: reg.Counter("hermes_store_sample_scanned_total",
			"Vectors scanned by sample phases."),
		deepScanned: reg.Counter("hermes_store_deep_scanned_total",
			"Vectors scanned by deep phases."),
	}
}
