package telemetry

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestExportDeterministicAndStructured(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hermes_test_requests_total", "Requests.", "op", "search").Add(3)
	reg.Counter("hermes_test_requests_total", "Requests.", "op", "info").Add(1)
	reg.Gauge("hermes_test_depth_ratio", "Depth.").Set(2.5)
	h := reg.Histogram("hermes_test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100) // overflow

	a, b := reg.Export(), reg.Export()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two exports of the same state differ:\n%v\n%v", a, b)
	}
	if len(a) != 3 {
		t.Fatalf("exported %d families, want 3", len(a))
	}
	// Families sorted by name.
	for i := 1; i < len(a); i++ {
		if a[i-1].Name >= a[i].Name {
			t.Errorf("families out of order: %s before %s", a[i-1].Name, a[i].Name)
		}
	}
	var hist *FamilySnapshot
	for i := range a {
		if a[i].Kind == KindHistogram {
			hist = &a[i]
		}
	}
	if hist == nil {
		t.Fatal("no histogram family exported")
	}
	ss := hist.Series[0]
	if ss.Count != 3 || len(ss.BucketCounts) != 4 {
		t.Fatalf("histogram series = %+v, want count 3 and 4 buckets", ss)
	}
	if got := ss.BucketCounts[0] + ss.BucketCounts[1] + ss.BucketCounts[3]; got != 3 {
		t.Errorf("bucket placement wrong: %v", ss.BucketCounts)
	}
}

func TestExportNilRegistry(t *testing.T) {
	var r *Registry
	if got := r.Export(); got != nil {
		t.Fatalf("nil registry exported %v", got)
	}
}

func TestMergeFamiliesCountersGaugesHistograms(t *testing.T) {
	mk := func(reqs int64, depth float64, obs ...float64) []FamilySnapshot {
		reg := NewRegistry()
		reg.Counter("hermes_x_requests_total", "r", "op", "search").Add(reqs)
		reg.Gauge("hermes_x_inflight_ratio", "g").Set(depth)
		h := reg.Histogram("hermes_x_latency_seconds", "l", []float64{1, 2, 4})
		for _, v := range obs {
			h.Observe(v)
		}
		return reg.Export()
	}
	merged := MergeFamilies(mk(3, 1, 0.5, 3), mk(4, 2, 1.5, 10))
	flat := FlattenFamilies(merged)
	if got := flat[`hermes_x_requests_total{op="search"}`]; got != 7 {
		t.Errorf("merged counter = %v, want 7", got)
	}
	if got := flat["hermes_x_inflight_ratio"]; got != 3 {
		t.Errorf("merged gauge = %v, want 3", got)
	}
	if got := flat["hermes_x_latency_seconds:count"]; got != 4 {
		t.Errorf("merged histogram count = %v, want 4", got)
	}
	if got := flat["hermes_x_latency_seconds:sum"]; got != 15 {
		t.Errorf("merged histogram sum = %v, want 15", got)
	}
}

// TestMergeFamiliesBucketMismatchDegrades pins the cross-version contract:
// an input whose bucket layout differs still contributes count and sum, but
// its bucket counts are dropped rather than misfiled.
func TestMergeFamiliesBucketMismatchDegrades(t *testing.T) {
	mk := func(buckets []float64, obs float64) []FamilySnapshot {
		reg := NewRegistry()
		reg.Histogram("hermes_x_latency_seconds", "l", buckets).Observe(obs)
		return reg.Export()
	}
	merged := MergeFamilies(mk([]float64{1, 2}, 0.5), mk([]float64{1, 2, 4}, 3))
	if len(merged) != 1 || len(merged[0].Series) != 1 {
		t.Fatalf("merged = %+v", merged)
	}
	ss := merged[0].Series[0]
	if ss.Count != 2 || ss.Sum != 3.5 {
		t.Errorf("count/sum = %v/%v, want 2/3.5", ss.Count, ss.Sum)
	}
	var bucketed int64
	for _, c := range ss.BucketCounts {
		bucketed += c
	}
	if bucketed != 1 {
		t.Errorf("bucketed observations = %d, want 1 (mismatched input dropped)", bucketed)
	}
}

// TestMergedQuantileErrorBound is the property test behind the documented
// merge bound: for random per-node observation sets, the quantile estimated
// from the merged bucket counts must lie within the bucket that contains the
// true quantile of the pooled raw samples (clamping overflow to the largest
// finite bound), i.e. merging histograms costs no accuracy beyond the
// bucketing itself.
func TestMergedQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bounds := DefLatencyBuckets
	for trial := 0; trial < 50; trial++ {
		nodes := 2 + rng.Intn(4)
		var exports [][]FamilySnapshot
		var pooled []float64
		for n := 0; n < nodes; n++ {
			reg := NewRegistry()
			h := reg.Histogram("hermes_x_latency_seconds", "l", bounds)
			for i, k := 0, 1+rng.Intn(200); i < k; i++ {
				// Log-uniform over the bucket range plus occasional overflow.
				v := math.Exp(rng.Float64()*math.Log(4e5)) * 0.00005
				h.Observe(v)
				pooled = append(pooled, v)
			}
			exports = append(exports, reg.Export())
		}
		sort.Float64s(pooled)
		merged := MergeFamilies(exports...)
		ss := merged[0].Series[0]
		for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 1} {
			est := BucketQuantile(bounds, ss.BucketCounts, q)
			rank := int(math.Ceil(q * float64(len(pooled))))
			if rank < 1 {
				rank = 1
			}
			truth := pooled[rank-1]
			// The bucket holding the true pooled quantile.
			bi := sort.SearchFloat64s(bounds, truth)
			lo, hi := 0.0, math.Inf(1)
			if bi > 0 {
				lo = bounds[bi-1]
			}
			if bi < len(bounds) {
				hi = bounds[bi]
			} else {
				// Overflow: the estimator clamps to the largest finite bound.
				lo, hi = bounds[len(bounds)-1], bounds[len(bounds)-1]
			}
			if est < lo || est > hi {
				t.Fatalf("trial %d q=%v: estimate %v outside bucket [%v,%v] of true quantile %v",
					trial, q, est, lo, hi, truth)
			}
		}
	}
}

func TestBucketQuantileMalformed(t *testing.T) {
	if got := BucketQuantile(nil, nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := BucketQuantile([]float64{1, 2}, []int64{1, 2}, 0.5); got != 0 {
		t.Errorf("short counts = %v", got)
	}
}

// TestWriteFamiliesPrometheusMatchesRegistry pins that a single-registry
// export renders the same exposition text as the registry itself (modulo
// exemplars, which exports drop).
func TestWriteFamiliesPrometheusMatchesRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hermes_x_requests_total", "Requests.", "op", "a").Add(2)
	reg.Gauge("hermes_x_load_ratio", "Load.").Set(0.25)
	h := reg.Histogram("hermes_x_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)

	var direct, viaExport strings.Builder
	if err := reg.WritePrometheus(&direct); err != nil {
		t.Fatal(err)
	}
	if err := WriteFamiliesPrometheus(&viaExport, reg.Export()); err != nil {
		t.Fatal(err)
	}
	if direct.String() != viaExport.String() {
		t.Errorf("exposition differs:\n--- registry ---\n%s--- export ---\n%s",
			direct.String(), viaExport.String())
	}
}

func TestFlattenFamiliesMatchesSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hermes_x_requests_total", "r", "op", "a").Add(5)
	h := reg.Histogram("hermes_x_latency_seconds", "l", DefLatencyBuckets)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 0.001)
	}
	snap := reg.Snapshot()
	flat := FlattenFamilies(reg.Export())
	if !reflect.DeepEqual(snap, flat) {
		t.Errorf("FlattenFamilies diverges from Snapshot:\nsnap: %v\nflat: %v", snap, flat)
	}
}
