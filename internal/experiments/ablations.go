package experiments

import (
	"fmt"

	"repro/internal/hermes"
	"repro/internal/ivf"
	"repro/internal/kmeans"
	"repro/internal/metrics"
	"repro/internal/quant"
	"repro/internal/rerank"
)

func init() {
	register("ablation-prune", AblationPrune)
	register("ablation-rerank", AblationRerank)
	register("ablation-seeds", AblationSeeds)
	register("ablation-residual", AblationResidual)
}

// AblationPrune studies SPANN-style query-time pruning on top of Hermes'
// fixed deep-cluster budget (DESIGN.md design decision; the paper's related
// work positions SPANN's centroid pruning as complementary). It sweeps the
// pruning threshold and reports accuracy vs deep searches saved.
func AblationPrune(sc Scale) ([]*Table, error) {
	f, err := buildFixture(sc, 5)
	if err != nil {
		return nil, err
	}
	st, err := hermes.Build(f.corpus.Vectors, hermes.BuildOptions{NumShards: sc.Shards})
	if err != nil {
		return nil, err
	}
	tab := &Table{
		ID:     "ablation-prune",
		Title:  "Adaptive deep-cluster pruning: accuracy vs deep searches (extension)",
		Header: []string{"prune_eps", "ndcg", "mean_deep_searches", "deep_search_savings"},
		Notes: []string{
			"measured; eps=0 disables pruning (fixed 3-cluster budget)",
			"easy queries stop early when one shard's sampled doc clearly dominates",
		},
	}
	baseDeep := 0.0
	for _, eps := range []float64{0, 0.05, 0.1, 0.25, 0.5, 1.0} {
		p := hermes.DefaultParams()
		p.PruneEps = eps
		var ndcg float64
		deepCount := 0
		for i := 0; i < f.queries.Vectors.Len(); i++ {
			res, stats := st.Search(f.queries.Vectors.Row(i), p)
			ndcg += metrics.NDCGAtK(neighborIDs(res), f.truth[i], f.k)
			deepCount += len(stats.DeepShards)
		}
		n := float64(f.queries.Vectors.Len())
		meanDeep := float64(deepCount) / n
		if eps == 0 {
			baseDeep = meanDeep
		}
		savings := 0.0
		if baseDeep > 0 {
			savings = 1 - meanDeep/baseDeep
		}
		tab.AddRow(eps, ndcg/n, meanDeep, savings)
	}
	return []*Table{tab}, nil
}

// AblationRerank measures how much full-precision re-ranking of retrieved
// candidates recovers the error introduced by aggressive quantization —
// the paper reranks its five retrieved chunks by inner-product distance
// before prepending the best one.
func AblationRerank(sc Scale) ([]*Table, error) {
	dim := 48 // divisible by 3 for the PQ point
	local := sc
	local.Dim = dim
	f, err := buildFixture(local, 5)
	if err != nil {
		return nil, err
	}
	rr := rerank.NewFromMatrix(rerank.L2, f.corpus.Vectors)

	tab := &Table{
		ID:     "ablation-rerank",
		Title:  "Full-precision reranking vs quantizer (design-choice ablation)",
		Header: []string{"quantizer", "ndcg_raw", "ndcg_reranked", "top1_raw", "top1_reranked"},
		Notes: []string{
			"measured; rerank re-scores the k=5 candidates against fp32 vectors (paper Section 5)",
			"top1 = fraction of queries whose best candidate matches exhaustive ground truth",
		},
	}
	pq, err := quant.NewPQ(dim, dim/3, 8, sc.Seed)
	if err != nil {
		return nil, err
	}
	for _, q := range []quant.Quantizer{quant.NewFlat(dim), quant.NewSQ(dim, 8), quant.NewSQ(dim, 4), pq} {
		ix, err := ivf.New(ivf.Config{Dim: dim, Quantizer: q, Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		if err := ix.Train(f.corpus.Vectors); err != nil {
			return nil, err
		}
		if err := ix.AddBatch(0, f.corpus.Vectors); err != nil {
			return nil, err
		}
		nProbe := ix.NList() / 4
		if nProbe < 1 {
			nProbe = 1
		}
		var ndcgRaw, ndcgRR, top1Raw, top1RR float64
		for i := 0; i < f.queries.Vectors.Len(); i++ {
			qv := f.queries.Vectors.Row(i)
			res := ix.Search(qv, f.k, nProbe)
			ndcgRaw += metrics.NDCGAtK(neighborIDs(res), f.truth[i], f.k)
			if len(res) > 0 && len(f.truth[i]) > 0 && res[0].ID == f.truth[i][0] {
				top1Raw++
			}
			ranked := rr.Rerank(qv, res)
			ndcgRR += metrics.NDCGAtK(neighborIDs(ranked), f.truth[i], f.k)
			if len(ranked) > 0 && len(f.truth[i]) > 0 && ranked[0].ID == f.truth[i][0] {
				top1RR++
			}
		}
		n := float64(f.queries.Vectors.Len())
		tab.AddRow(q.Name(), ndcgRaw/n, ndcgRR/n, top1Raw/n, top1RR/n)
	}
	return []*Table{tab}, nil
}

// AblationSeeds quantifies the multi-seed imbalance minimization of Section
// 4.1: the shard-size imbalance of each individual k-means seed vs the seed
// chosen by the sweep.
func AblationSeeds(sc Scale) ([]*Table, error) {
	f, err := buildFixture(sc, 5)
	if err != nil {
		return nil, err
	}
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	tab := &Table{
		ID:     "ablation-seeds",
		Title:  "Multi-seed k-means imbalance minimization (paper Section 4.1)",
		Header: []string{"seed", "imbalance_max_over_min", "inertia", "chosen"},
		Notes: []string{
			"measured; the builder trains on a document subset per seed and keeps the most balanced",
		},
	}
	best, bestSeed, err := kmeans.BestSeed(f.corpus.Vectors, kmeans.Config{
		K: sc.Shards, PlusPlus: true, SampleSize: sc.Chunks / 10,
	}, seeds)
	if err != nil {
		return nil, err
	}
	for _, seed := range seeds {
		r, err := kmeans.Train(f.corpus.Vectors, kmeans.Config{
			K: sc.Shards, PlusPlus: true, SampleSize: sc.Chunks / 10, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		tab.AddRow(seed, r.Imbalance(), r.Inertia, fmt.Sprint(seed == bestSeed))
	}
	tab.Notes = append(tab.Notes, fmt.Sprintf("chosen seed %d with imbalance %.2f", bestSeed, best.Imbalance()))
	return []*Table{tab}, nil
}

// AblationResidual compares plain vs residual encoding (the FAISS IVF-PQ
// convention) across quantizers: encoding each vector's offset from its
// coarse centroid spends the bit budget on a tighter distribution, lifting
// recall for aggressive codes at identical memory cost.
func AblationResidual(sc Scale) ([]*Table, error) {
	dim := 48
	local := sc
	local.Dim = dim
	f, err := buildFixture(local, 10)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		ID:     "ablation-residual",
		Title:  "Residual encoding vs plain across quantizers (design-choice ablation)",
		Header: []string{"quantizer", "recall_plain", "recall_residual", "bytes_per_vec"},
		Notes: []string{
			"measured; identical index memory — residual changes only what the code represents",
		},
	}
	type mkQuant func() (quant.Quantizer, error)
	schemes := []struct {
		name string
		mk   mkQuant
	}{
		{"SQ8", func() (quant.Quantizer, error) { return quant.NewSQ(dim, 8), nil }},
		{"SQ4", func() (quant.Quantizer, error) { return quant.NewSQ(dim, 4), nil }},
		{"PQ (3 dims/byte)", func() (quant.Quantizer, error) { return quant.NewPQ(dim, dim/3, 8, sc.Seed) }},
	}
	for _, s := range schemes {
		recalls := make(map[bool]float64)
		var codeSize int
		for _, byResidual := range []bool{false, true} {
			q, err := s.mk()
			if err != nil {
				return nil, err
			}
			codeSize = q.CodeSize()
			ix, err := ivf.New(ivf.Config{Dim: dim, NList: 64, Quantizer: q, Seed: sc.Seed, ByResidual: byResidual})
			if err != nil {
				return nil, err
			}
			if err := ix.Train(f.corpus.Vectors); err != nil {
				return nil, err
			}
			if err := ix.AddBatch(0, f.corpus.Vectors); err != nil {
				return nil, err
			}
			got := make([][]int64, f.queries.Vectors.Len())
			for i := 0; i < f.queries.Vectors.Len(); i++ {
				got[i] = neighborIDs(ix.Search(f.queries.Vectors.Row(i), f.k, 10))
			}
			recalls[byResidual] = metrics.MeanRecall(got, f.truth, f.k)
		}
		tab.AddRow(s.name, recalls[false], recalls[true], codeSize)
	}
	return []*Table{tab}, nil
}
