// Package quant implements the vector quantization schemes compared in
// Table 1 of the paper: Flat (no compression), scalar quantization at 8 and
// 4 bits (SQ8/SQ4), product quantization (PQ), and OPQ (rotation + PQ).
//
// A Quantizer turns float32 vectors into fixed-size byte codes and supports
// asymmetric distance computation (ADC): distances are evaluated between an
// uncompressed query and compressed database codes, the configuration used by
// IVF indexes. The paper selects IVF+SQ8 as its operating point (0.942 recall
// at 4x compression); this package reproduces that trade-off space.
package quant

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/vec"
)

// Distancer evaluates the (approximate squared L2) distance between the
// query bound at construction time and a database code.
type Distancer func(code []byte) float32

// Quantizer is the common interface of all compression schemes.
type Quantizer interface {
	// Name identifies the scheme (e.g. "SQ8", "PQ16x8").
	Name() string
	// Dim is the input vector dimensionality.
	Dim() int
	// CodeSize is the number of bytes per encoded vector.
	CodeSize() int
	// Train fits the scheme's parameters to representative data. Flat
	// requires no training but accepts the call.
	Train(data *vec.Matrix) error
	// Encode writes the code for v into code (len == CodeSize).
	Encode(v []float32, code []byte)
	// Decode reconstructs an approximation of the original vector.
	Decode(code []byte, out []float32)
	// NewDistancer binds a query for repeated ADC evaluations.
	NewDistancer(q []float32) Distancer
}

// ---------------------------------------------------------------------------
// Flat: uncompressed float32 storage.

// Flat stores vectors as raw little-endian float32, the "no quantization"
// baseline (3072 bytes at dim=768 in Table 1).
type Flat struct {
	dim int
}

// NewFlat returns a Flat quantizer for dim-dimensional vectors.
func NewFlat(dim int) *Flat {
	mustPositiveDim(dim)
	return &Flat{dim: dim}
}

func (f *Flat) Name() string  { return "Flat" }
func (f *Flat) Dim() int      { return f.dim }
func (f *Flat) CodeSize() int { return f.dim * 4 }

// Train is a no-op: Flat has no learned parameters.
func (f *Flat) Train(*vec.Matrix) error { return nil }

func (f *Flat) Encode(v []float32, code []byte) {
	checkLens(len(v), f.dim, len(code), f.CodeSize())
	for i, x := range v {
		binary.LittleEndian.PutUint32(code[i*4:], math.Float32bits(x))
	}
}

func (f *Flat) Decode(code []byte, out []float32) {
	checkLens(len(out), f.dim, len(code), f.CodeSize())
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(code[i*4:]))
	}
}

func (f *Flat) NewDistancer(q []float32) Distancer {
	buf := make([]float32, f.dim)
	return func(code []byte) float32 {
		f.Decode(code, buf)
		return vec.L2Squared(q, buf)
	}
}

// ---------------------------------------------------------------------------
// Scalar quantization.

// SQ is uniform per-dimension scalar quantization to 2^bits levels. SQ8 uses
// one byte per dimension; SQ4 packs two dimensions per byte.
type SQ struct {
	dim     int
	bits    int // 8 or 4
	min     []float32
	scale   []float32 // (max-min)/(levels-1); 0 for constant dimensions
	trained bool
}

// NewSQ returns a scalar quantizer with the given bit width (4 or 8).
func NewSQ(dim, bits int) *SQ {
	mustPositiveDim(dim)
	if bits != 4 && bits != 8 {
		panic(fmt.Sprintf("quant: SQ supports 4 or 8 bits, got %d", bits))
	}
	return &SQ{dim: dim, bits: bits}
}

func (s *SQ) Name() string { return fmt.Sprintf("SQ%d", s.bits) }
func (s *SQ) Dim() int     { return s.dim }

func (s *SQ) CodeSize() int {
	if s.bits == 8 {
		return s.dim
	}
	return (s.dim + 1) / 2
}

func (s *SQ) levels() int { return 1 << s.bits }

// Train learns per-dimension [min,max] ranges from the data.
func (s *SQ) Train(data *vec.Matrix) error {
	if data == nil || data.Len() == 0 {
		return fmt.Errorf("quant: SQ training requires data")
	}
	if data.Dim != s.dim {
		return fmt.Errorf("quant: SQ dim %d != data dim %d", s.dim, data.Dim)
	}
	s.min = make([]float32, s.dim)
	maxv := make([]float32, s.dim)
	copy(s.min, data.Row(0))
	copy(maxv, data.Row(0))
	for i := 1; i < data.Len(); i++ {
		row := data.Row(i)
		for d, x := range row {
			if x < s.min[d] {
				s.min[d] = x
			}
			if x > maxv[d] {
				maxv[d] = x
			}
		}
	}
	s.scale = make([]float32, s.dim)
	for d := range s.scale {
		s.scale[d] = (maxv[d] - s.min[d]) / float32(s.levels()-1)
	}
	s.trained = true
	return nil
}

func (s *SQ) quantizeDim(d int, x float32) int {
	if s.scale[d] == 0 {
		return 0
	}
	q := int((x-s.min[d])/s.scale[d] + 0.5)
	if q < 0 {
		q = 0
	}
	if q >= s.levels() {
		q = s.levels() - 1
	}
	return q
}

func (s *SQ) reconstructDim(d, q int) float32 {
	return s.min[d] + float32(q)*s.scale[d]
}

func (s *SQ) Encode(v []float32, code []byte) {
	s.mustTrained()
	checkLens(len(v), s.dim, len(code), s.CodeSize())
	if s.bits == 8 {
		for d, x := range v {
			code[d] = byte(s.quantizeDim(d, x))
		}
		return
	}
	for i := range code {
		code[i] = 0
	}
	for d, x := range v {
		q := s.quantizeDim(d, x)
		if d%2 == 0 {
			code[d/2] |= byte(q)
		} else {
			code[d/2] |= byte(q) << 4
		}
	}
}

func (s *SQ) Decode(code []byte, out []float32) {
	s.mustTrained()
	checkLens(len(out), s.dim, len(code), s.CodeSize())
	if s.bits == 8 {
		for d := range out {
			out[d] = s.reconstructDim(d, int(code[d]))
		}
		return
	}
	for d := range out {
		var q int
		if d%2 == 0 {
			q = int(code[d/2] & 0x0f)
		} else {
			q = int(code[d/2] >> 4)
		}
		out[d] = s.reconstructDim(d, q)
	}
}

func (s *SQ) NewDistancer(q []float32) Distancer {
	s.mustTrained()
	if s.bits == 8 {
		// Precompute per-(dim,level) squared differences so the scan is
		// a table walk: 256 entries per dimension.
		table := make([]float32, s.dim*256)
		for d := 0; d < s.dim; d++ {
			base := d * 256
			for l := 0; l < 256; l++ {
				diff := q[d] - s.reconstructDim(d, l)
				table[base+l] = diff * diff
			}
		}
		return func(code []byte) float32 {
			var sum float32
			for d, c := range code {
				sum += table[d*256+int(c)]
			}
			return sum
		}
	}
	table := make([]float32, s.dim*16)
	for d := 0; d < s.dim; d++ {
		base := d * 16
		for l := 0; l < 16; l++ {
			diff := q[d] - s.reconstructDim(d, l)
			table[base+l] = diff * diff
		}
	}
	return func(code []byte) float32 {
		var sum float32
		for d := 0; d < s.dim; d++ {
			var lvl int
			if d%2 == 0 {
				lvl = int(code[d/2] & 0x0f)
			} else {
				lvl = int(code[d/2] >> 4)
			}
			sum += table[d*16+lvl]
		}
		return sum
	}
}

func (s *SQ) mustTrained() {
	if !s.trained {
		panic("quant: SQ used before Train")
	}
}

func mustPositiveDim(dim int) {
	if dim <= 0 {
		panic(fmt.Sprintf("quant: dim must be positive, got %d", dim))
	}
}

func checkLens(gotVec, wantVec, gotCode, wantCode int) {
	if gotVec != wantVec {
		panic(fmt.Sprintf("quant: vector length %d != dim %d", gotVec, wantVec))
	}
	if gotCode != wantCode {
		panic(fmt.Sprintf("quant: code length %d != code size %d", gotCode, wantCode))
	}
}
