// Command hermes-build constructs retrieval indexes from a (synthetic)
// corpus and writes them to an index directory, mirroring the paper
// artifact's offline index-construction step.
//
// Usage:
//
//	hermes-build -out ./idx -type hermes -chunks 20000 -dim 64 -shards 10
//	hermes-build -out ./idx -type monolithic -chunks 20000 -dim 64
//	hermes-build -out ./idx -type split -chunks 20000 -dim 64 -shards 10
//
// The directory receives meta.json (index type, shape, and the corpus spec
// so queries and chunk text can be regenerated deterministically) plus one
// shard-NNN.ivf file per shard (a single shard-000.ivf for monolithic).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/corpus"
	"repro/internal/hermes"
	"repro/internal/ivf"
	"repro/internal/striding"
	"repro/pkg/indexfile"
)

// options holds everything main parses from flags; run is kept separate so
// the reproducibility regression test can invoke the full build pipeline
// in-process.
type options struct {
	Out      string
	Type     string
	Chunks   int
	Dim      int
	Topics   int
	Shards   int
	Seed     int64
	Quant    int
	Embed    string
	EmbedDim int
	Log      io.Writer
}

func main() {
	var o options
	flag.StringVar(&o.Out, "out", "hermes-index", "output directory")
	flag.StringVar(&o.Type, "type", "hermes", "index type: hermes, split, or monolithic")
	flag.IntVar(&o.Chunks, "chunks", 20000, "corpus size in chunks (1 chunk = 64 tokens)")
	flag.IntVar(&o.Dim, "dim", 64, "embedding dimensionality")
	flag.IntVar(&o.Topics, "topics", 10, "latent topics in the synthetic corpus")
	flag.IntVar(&o.Shards, "shards", 10, "shard count for hermes/split indexes")
	flag.Int64Var(&o.Seed, "seed", 42, "generation seed")
	flag.IntVar(&o.Quant, "quant", 8, "quantization bits: 0 (flat), 4, or 8")
	flag.StringVar(&o.Embed, "embed", "topic", "embedding source: topic (latent vectors) or text (hash-embedded chunk text; enables free-text search)")
	flag.IntVar(&o.EmbedDim, "embed-dim", 48, "embedding dim for -embed text")
	flag.Parse()
	o.Log = os.Stderr

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "hermes-build:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.Log == nil {
		o.Log = io.Discard
	}
	spec := corpus.Spec{NumChunks: o.Chunks, Dim: o.Dim, NumTopics: o.Topics, Seed: o.Seed}
	fmt.Fprintf(o.Log, "generating corpus: %d chunks, dim %d, %d topics...\n", o.Chunks, o.Dim, o.Topics)
	c, err := corpus.Generate(spec)
	if err != nil {
		return err
	}

	meta := indexfile.Meta{Type: o.Type, Dim: o.Dim, Embedding: o.Embed, Corpus: spec}
	var indexes []*ivf.Index
	if o.Embed == "text" {
		if o.Type != "hermes" {
			return fmt.Errorf("-embed text requires -type hermes")
		}
		fmt.Fprintf(o.Log, "hash-embedding %d chunk texts at dim %d...\n", o.Chunks, o.EmbedDim)
		ts, err := striding.BuildTextStore(c, o.EmbedDim, o.Shards)
		if err != nil {
			return err
		}
		meta.Dim = o.EmbedDim
		meta.EmbedDim = o.EmbedDim
		for _, sh := range ts.Store.Shards {
			indexes = append(indexes, sh.Index)
		}
		meta.Shards = len(indexes)
		return writeOut(o, meta, indexes)
	} else if o.Embed != "topic" {
		return fmt.Errorf("unknown -embed %q", o.Embed)
	}
	switch o.Type {
	case "hermes":
		fmt.Fprintf(o.Log, "clustering into %d shards (multi-seed imbalance minimization)...\n", o.Shards)
		st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: o.Shards, QuantBits: o.Quant})
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Log, "chosen seed %d, shard imbalance %.2f\n", st.SeedUsed, st.Imbalance)
		for _, sh := range st.Shards {
			indexes = append(indexes, sh.Index)
		}
		meta.Shards = len(indexes)
	case "split":
		st, err := hermes.BuildNaiveSplit(c.Vectors, o.Shards, o.Quant)
		if err != nil {
			return err
		}
		for _, sh := range st.Shards {
			indexes = append(indexes, sh.Index)
		}
		meta.Shards = len(indexes)
	case "monolithic":
		ix, err := hermes.BuildMonolithic(c.Vectors, o.Quant, 0, o.Seed)
		if err != nil {
			return err
		}
		indexes = append(indexes, ix)
		meta.Shards = 1
	default:
		return fmt.Errorf("unknown index type %q", o.Type)
	}

	return writeOut(o, meta, indexes)
}

func writeOut(o options, meta indexfile.Meta, indexes []*ivf.Index) error {
	if err := os.MkdirAll(o.Out, 0o755); err != nil {
		return err
	}
	for i, ix := range indexes {
		path := filepath.Join(o.Out, indexfile.ShardFile(i))
		if err := indexfile.WriteIndex(path, ix); err != nil {
			return err
		}
		fmt.Fprintf(o.Log, "wrote %s (%d vectors, %s)\n", path, ix.Len(), ix.QuantizerName())
	}
	metaBytes, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(o.Out, "meta.json"), metaBytes, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Log, "wrote %s\n", filepath.Join(o.Out, "meta.json"))
	return nil
}
