// Command hermes-node serves one shard of an index directory over TCP,
// implementing the per-node half of the distributed Hermes architecture.
// Run one process per shard (typically on separate machines), then point
// hermes-coordinator at the node addresses.
//
// When a request carries a trace ID, the node times its own phases (decode,
// probe select, list scan, top-k merge, encode) and ships them back in the
// response as offsets from request arrival, so the coordinator can stitch a
// cross-node waterfall without any clock synchronization.
//
// Usage:
//
//	hermes-node -index ./idx -shard 0 -addr 127.0.0.1:7001
//	hermes-node -index ./idx -shard 1 -addr 127.0.0.1:7002
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/distsearch"
	"repro/internal/evlog"
	"repro/internal/telemetry"
	"repro/pkg/indexfile"
)

func main() {
	var (
		dir   = flag.String("index", "hermes-index", "index directory from hermes-build")
		shard = flag.Int("shard", 0, "shard number to serve")
		addr  = flag.String("addr", "127.0.0.1:0", "listen address")
		admin = flag.String("admin", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :8080)")
	)
	flag.Parse()

	meta, err := indexfile.ReadMeta(*dir)
	if err != nil {
		fatal(err)
	}
	if *shard < 0 || *shard >= meta.Shards {
		fatal(fmt.Errorf("shard %d out of range [0,%d)", *shard, meta.Shards))
	}
	ix, err := indexfile.ReadIndex(filepath.Join(*dir, indexfile.ShardFile(*shard)))
	if err != nil {
		fatal(err)
	}
	logger := log.New(os.Stderr, fmt.Sprintf("node[%d] ", *shard), log.LstdFlags)
	node, err := distsearch.NewNode(*shard, ix, logger)
	if err != nil {
		fatal(err)
	}
	ev := evlog.New(evlog.Config{Capacity: 256})
	node.SetEvents(ev)
	if err := node.Listen(*addr); err != nil {
		fatal(err)
	}
	logger.Printf("serving shard %d (%d vectors, %s) on %s", *shard, ix.Len(), ix.QuantizerName(), node.Addr())
	if *admin != "" {
		mux := telemetry.NewAdminMux(telemetry.Default)
		mux.HandleFunc("/debug/events", ev.ServeEvents)
		srv, err := telemetry.ServeAdminMux(*admin, mux)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		logger.Printf("admin endpoints on http://%s/metrics (events at /debug/events)", srv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Printf("shutting down")
	if err := node.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hermes-node:", err)
	os.Exit(1)
}
