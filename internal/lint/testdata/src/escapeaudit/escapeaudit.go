// Package escapeaudit is the fixture for the escapeaudit analyzer's diff
// classes. The test fabricates the compiler diagnostics (EscapeDiags) in
// process — anchored to marker lines in this file — so the committed
// alloc.lock is hand-written against those fabricated diagnostics and the
// fixture stays deterministic across toolchains. Each function exercises
// one diff class; Ghost below is recorded in the lock but does not exist.
package escapeaudit // want "no such //hermes:hotpath function"

// Clean's budget matches the fabricated diagnostics exactly: no finding.
//
//hermes:hotpath
func Clean(p *int) *int {
	return p
}

// Boxed has an empty budget in the lock, so the fabricated moved-to-heap
// diagnostic on the marker line is an unrecorded escape regression reported
// at the compiler's exact position.
//
//hermes:hotpath
func Boxed() *int {
	x := 42 // want "gained a heap allocation"
	return &x
}

// Leaky has an empty budget; the fabricated leaking-param diagnostic lands
// on the declaration line below.
//
//hermes:hotpath
func Leaky(q []float32) []float32 { // want "leaking param forces the caller"
	return q
}

// Gained has an empty budget; the fabricated inlining diagnostic is an
// unrecorded improvement — still a finding, so the committed lock stays
// byte-identical to a regeneration.
//
//hermes:hotpath
func Gained(x int) int {
	return tiny(x) // want "newly inlined call to escapeaudit.tiny"
}

// LostInline's lock records an inline of heavy that the fabricated
// diagnostics no longer contain: call overhead is back on the hot path.
//
//hermes:hotpath
func LostInline(x int) int { // want "no longer inlined"
	return heavy(x)
}

// Stale's lock records an escape the fabricated diagnostics no longer emit:
// the budget can be tightened.
//
//hermes:hotpath
func Stale(xs []int) int { // want "no longer emits it"
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// Unrecorded is a hotpath function missing from the lock entirely.
//
//hermes:hotpath
func Unrecorded(x int) int { // want "is not recorded in alloc.lock"
	return x + 1
}

func tiny(x int) int { return x * 2 }

func heavy(x int) int { return x*x + x }
