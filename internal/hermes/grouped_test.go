package hermes

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// TestSearchGroupedMatchesSequential pins the grouped batch path to per-query
// Search: same neighbors, same scores, same stats, across default and pruned
// parameters.
func TestSearchGroupedMatchesSequential(t *testing.T) {
	c := testCorpus(t, 1500, 6)
	st := buildStore(t, c.Vectors, 6)
	qs := c.Queries(20, 43)
	params := map[string]Params{
		"default": DefaultParams(),
		"pruned":  {K: 5, SampleNProbe: 8, DeepNProbe: 64, DeepClusters: 3, PruneEps: 0.25},
		"deep1":   {K: 3, SampleNProbe: 4, DeepNProbe: 32, DeepClusters: 1},
	}
	for name, p := range params {
		t.Run(name, func(t *testing.T) {
			rows := make([][]float32, qs.Vectors.Len())
			for i := range rows {
				rows[i] = qs.Vectors.Row(i)
			}
			got, gstats := st.SearchGrouped(rows, p)
			for i, q := range rows {
				want, wantStats := st.Search(q, p)
				if !reflect.DeepEqual(got[i].Neighbors, want) {
					t.Fatalf("query %d: grouped %v != sequential %v", i, got[i].Neighbors, want)
				}
				if !reflect.DeepEqual(got[i].Stats, wantStats) {
					t.Fatalf("query %d: stats %+v != %+v", i, got[i].Stats, wantStats)
				}
			}
			// Every query samples every shard, so the sample phase must share
			// scans whenever two queries probe a common cell; at minimum the
			// accounting identities hold.
			if gstats.Sample.Queries != len(rows)*st.NumShards() {
				t.Fatalf("sample grouped %d queries, want %d", gstats.Sample.Queries, len(rows)*st.NumShards())
			}
			if gstats.SharedCellScans() < 0 {
				t.Fatalf("negative shared scans %d", gstats.SharedCellScans())
			}
		})
	}
}

// TestSearchGroupedSharesScans asserts the point of the exercise on a
// topic-skewed batch: co-probing queries must actually share cell streams,
// i.e. distinct streamed vectors < logical scanned vectors.
func TestSearchGroupedSharesScans(t *testing.T) {
	c := testCorpus(t, 1500, 4) // few topics => heavy probe overlap
	st := buildStore(t, c.Vectors, 4)
	qs := c.Queries(24, 47)
	rows := make([][]float32, qs.Vectors.Len())
	for i := range rows {
		rows[i] = qs.Vectors.Row(i)
	}
	got, gstats := st.SearchGrouped(rows, DefaultParams())
	logical := 0
	for _, r := range got {
		logical += r.Stats.SampleScanned + r.Stats.DeepScanned
	}
	streamed := gstats.Sample.VectorsScanned + gstats.Deep.VectorsScanned
	if streamed >= logical {
		t.Fatalf("streamed %d >= logical %d: grouping shared nothing", streamed, logical)
	}
	if gstats.SharedCellScans() == 0 {
		t.Fatal("no shared cell scans on a topic-skewed batch")
	}
}

// TestSearchBatchGroupedMatrix checks the matrix wrapper and the grouped
// telemetry counters.
func TestSearchBatchGroupedMatrix(t *testing.T) {
	c := testCorpus(t, 800, 5)
	st := buildStore(t, c.Vectors, 5)
	reg := telemetry.NewRegistry()
	st.SetTelemetry(reg)
	qs := c.Queries(8, 53)
	batch := st.SearchBatchGrouped(qs.Vectors, DefaultParams())
	if len(batch) != 8 {
		t.Fatalf("batch len %d", len(batch))
	}
	for i := 0; i < qs.Vectors.Len(); i++ {
		want, _ := st.Search(qs.Vectors.Row(i), DefaultParams())
		if !reflect.DeepEqual(batch[i].Neighbors, want) {
			t.Fatalf("query %d differs", i)
		}
	}
	snap := reg.Snapshot()
	if v := snap["hermes_store_grouped_queries_total"]; v != 8 {
		t.Fatalf("grouped_queries_total = %v, want 8", v)
	}
	if v := snap["hermes_store_group_shared_scans_total"]; v <= 0 {
		t.Fatalf("group_shared_scans_total = %v, want > 0", v)
	}
}

// TestSearchGroupedProperty randomizes batch shape, parameters, and query
// mix: grouped results must always equal sequential, including with PruneEps
// active and batches of size 1.
func TestSearchGroupedProperty(t *testing.T) {
	c := testCorpus(t, 1200, 8)
	st := buildStore(t, c.Vectors, 8)
	rng := rand.New(rand.NewSource(59))
	for iter := 0; iter < 12; iter++ {
		n := rng.Intn(24) + 1
		rows := make([][]float32, n)
		seedQs := c.Queries(n, int64(100+iter))
		for i := range rows {
			rows[i] = seedQs.Vectors.Row(i)
		}
		p := Params{
			K:            rng.Intn(8) + 1,
			SampleNProbe: rng.Intn(8) + 1,
			DeepNProbe:   rng.Intn(64) + 1,
			DeepClusters: rng.Intn(8) + 1,
		}
		if rng.Intn(2) == 0 {
			p.PruneEps = rng.Float64() * 0.5
		}
		got, _ := st.SearchGrouped(rows, p)
		for i, q := range rows {
			want, wantStats := st.Search(q, p)
			if !reflect.DeepEqual(got[i].Neighbors, want) {
				t.Fatalf("iter %d query %d (p=%+v): grouped != sequential", iter, i, p)
			}
			if !reflect.DeepEqual(got[i].Stats, wantStats) {
				t.Fatalf("iter %d query %d (p=%+v): stats %+v != %+v", iter, i, p, got[i].Stats, wantStats)
			}
		}
	}
}

// TestSearchGroupedEmpty covers the degenerate shapes.
func TestSearchGroupedEmpty(t *testing.T) {
	c := testCorpus(t, 300, 3)
	st := buildStore(t, c.Vectors, 3)
	out, gstats := st.SearchGrouped(nil, DefaultParams())
	if len(out) != 0 || gstats.SharedCellScans() != 0 {
		t.Fatalf("empty batch: out=%d stats=%+v", len(out), gstats)
	}
	one, _ := st.SearchGrouped([][]float32{c.Vectors.Row(0)}, DefaultParams())
	want, _ := st.Search(c.Vectors.Row(0), DefaultParams())
	if !reflect.DeepEqual(one[0].Neighbors, want) {
		t.Fatal("batch of one differs from Search")
	}
}

// TestSearchGroupedConcurrent runs grouped batches from several goroutines —
// the pooled scratch and per-shard group searchers must not share mutable
// state across concurrent batches. Run under -race in tier-1.
func TestSearchGroupedConcurrent(t *testing.T) {
	c := testCorpus(t, 900, 5)
	st := buildStore(t, c.Vectors, 5)
	qs := c.Queries(12, 61)
	rows := make([][]float32, qs.Vectors.Len())
	for i := range rows {
		rows[i] = qs.Vectors.Row(i)
	}
	want, _ := st.SearchGrouped(rows, DefaultParams())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				got, _ := st.SearchGrouped(rows, DefaultParams())
				for i := range rows {
					if !reflect.DeepEqual(got[i].Neighbors, want[i].Neighbors) {
						t.Errorf("concurrent batch diverged at query %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestPredictCellsStable pins the predictor's shape: keys are (shard, cell)
// pairs from the top centroid-routed shards, deterministic for a given
// query, and queries from the same topic overlap more than queries from
// different topics.
func TestPredictCellsStable(t *testing.T) {
	c := testCorpus(t, 1200, 6)
	st := buildStore(t, c.Vectors, 6)
	p := DefaultParams()
	q := c.Queries(1, 67).Vectors.Row(0)
	a := st.PredictCells(q, p)
	b := st.PredictCells(q, p)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("prediction not deterministic")
	}
	if len(a) == 0 {
		t.Fatal("no predicted cells")
	}
	for _, key := range a {
		shard := int(key >> 32)
		if shard < 0 || shard >= st.NumShards() {
			t.Fatalf("key %x names shard %d out of range", key, shard)
		}
	}
	overlap := func(x, y []uint64) int {
		set := map[uint64]bool{}
		for _, k := range x {
			set[k] = true
		}
		n := 0
		for _, k := range y {
			if set[k] {
				n++
			}
		}
		return n
	}
	// Same-topic queries should predict overlapping keys far more often than
	// not; average over several pairs to keep the assertion robust.
	sameQs := c.Queries(40, 71)
	same, diff, pairs := 0, 0, 0
	for i := 0; i+1 < sameQs.Vectors.Len(); i += 2 {
		qa, qb := sameQs.Vectors.Row(i), sameQs.Vectors.Row(i+1)
		if sameQs.Topics[i] == sameQs.Topics[i+1] {
			same += overlap(st.PredictCells(qa, p), st.PredictCells(qb, p))
		} else {
			diff += overlap(st.PredictCells(qa, p), st.PredictCells(qb, p))
		}
		pairs++
	}
	if same == 0 {
		t.Fatal("same-topic queries predicted zero overlapping keys")
	}
}
