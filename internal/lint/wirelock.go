package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// WireLock pins the gob wire schema of a package's protocol structs to a
// committed wire.lock file, turning wire-compat regressions into build
// errors instead of rolling-upgrade incidents.
//
// Gob identifies fields by name and encodes them in declaration order, so a
// coordinator and a node compiled from different commits stay compatible iff
// every struct on the wire evolves append-only: new exported fields may be
// added at the end, but renaming, removing, reordering, or retyping an
// existing field silently corrupts cross-version exchanges (PR 2 and PR 4
// both shipped after-the-fact regression tests for exactly this hazard).
//
// Root structs are annotated with a //hermes:wire directive on their type
// declaration; every named struct reachable through their exported fields
// (e.g. vec.Neighbor inside Response.Neighbors) is locked transitively. The
// analyzer re-derives the schema from go/types on every run and diffs it
// against <package dir>/wire.lock; `hermes-lint -update-wirelock` (the
// framework's generated-artifact mode) regenerates the file after an
// intentional append.
var WireLock = &Analyzer{
	Name:      "wirelock",
	Doc:       "gob schema of //hermes:wire structs must match the committed wire.lock; evolution is append-only",
	Run:       runWireLock,
	TestFiles: true,
}

// WireLockFile is the per-package artifact filename.
const WireLockFile = "wire.lock"

// wireDirective marks a root wire struct.
const wireDirective = "hermes:wire"

// wireField is one exported field in gob declaration order.
type wireField struct {
	Name string
	Type string
	Pos  token.Pos // declaration site; NoPos when parsed from a lock file
}

// wireStruct is one locked struct schema.
type wireStruct struct {
	Name   string // fully qualified: pkgpath.TypeName
	Fields []wireField
	Pos    token.Pos
}

func runWireLock(p *Pass) {
	schema := extractWireSchema(p.Files, p.Info, p.Pkg)
	lockPath := filepath.Join(p.Dir, WireLockFile)
	data, err := os.ReadFile(lockPath)
	if os.IsNotExist(err) {
		if len(schema) > 0 {
			p.Reportf(schema[0].Pos, "%d //hermes:wire struct(s) but no %s; run hermes-lint -update-wirelock to record the wire schema", len(schema), WireLockFile)
		}
		return
	}
	if err != nil {
		p.Reportf(firstPos(p.Files), "reading %s: %v", WireLockFile, err)
		return
	}
	if len(schema) == 0 {
		p.Reportf(firstPos(p.Files), "%s exists but the package declares no //hermes:wire structs; delete the stale lock or restore the annotations", WireLockFile)
		return
	}
	locked, err := parseWireLock(data)
	if err != nil {
		p.Reportf(firstPos(p.Files), "parsing %s: %v", WireLockFile, err)
		return
	}
	diffWireSchema(p, locked, schema)
}

// firstPos anchors package-level findings at the first file's package clause.
func firstPos(files []*ast.File) token.Pos {
	if len(files) == 0 {
		return token.NoPos
	}
	return files[0].Pos()
}

// hasDirective reports whether any comment group carries //<directive>
// (optionally followed by explanatory text after a space).
func hasDirective(directive string, groups ...*ast.CommentGroup) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimPrefix(c.Text, "//")
			if text == directive || strings.HasPrefix(text, directive+" ") {
				return true
			}
		}
	}
	return false
}

// extractWireSchema collects the package's annotated root structs plus every
// module-internal named struct transitively reachable through their exported
// fields, sorted by qualified name. Field types render through wireTypeString
// so that retyping a named non-struct type (e.g. widening Op from uint8)
// still changes the schema text.
func extractWireSchema(files []*ast.File, info *types.Info, pkg *types.Package) []wireStruct {
	if info == nil || pkg == nil {
		return nil
	}
	// moduleHead is the first import-path segment of the analyzed package;
	// named structs sharing it are locked transitively, stdlib types are
	// referenced by name only (their layout is the Go project's problem).
	moduleHead, _, _ := strings.Cut(pkg.Path(), "/")

	var queue []*types.Named
	seen := make(map[*types.Named]bool)
	posOf := make(map[*types.Named]token.Pos)
	enqueue := func(n *types.Named) {
		if n == nil || seen[n] {
			return
		}
		if _, ok := n.Underlying().(*types.Struct); !ok {
			return
		}
		obj := n.Obj()
		if obj.Pkg() == nil {
			return
		}
		head, _, _ := strings.Cut(obj.Pkg().Path(), "/")
		if head != moduleHead {
			return
		}
		seen[n] = true
		queue = append(queue, n)
	}

	for _, f := range files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !hasDirective(wireDirective, gd.Doc, ts.Doc, ts.Comment) {
					continue
				}
				obj, ok := info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := types.Unalias(obj.Type()).(*types.Named)
				if !ok {
					continue
				}
				posOf[named] = ts.Pos()
				enqueue(named)
			}
		}
	}

	var out []wireStruct
	for len(queue) > 0 {
		named := queue[0]
		queue = queue[1:]
		st := named.Underlying().(*types.Struct)
		ws := wireStruct{
			Name: qualifiedTypeName(named),
			Pos:  posOf[named],
		}
		if ws.Pos == token.NoPos {
			ws.Pos = named.Obj().Pos()
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue // gob ignores unexported fields
			}
			ws.Fields = append(ws.Fields, wireField{
				Name: f.Name(),
				Type: wireTypeString(f.Type(), enqueue),
				Pos:  f.Pos(),
			})
		}
		out = append(out, ws)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func qualifiedTypeName(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// wireTypeString renders a field type for the lock file. Named struct types
// appear by qualified name (their own fields are locked separately, via
// enqueue); named non-struct types carry their underlying type in
// parentheses, because gob encodes the underlying representation — `type Op
// uint8` changing to uint16 is a wire change even though the Go type name is
// untouched.
func wireTypeString(t types.Type, enqueue func(*types.Named)) string {
	switch tt := types.Unalias(t).(type) {
	case *types.Named:
		if _, ok := tt.Underlying().(*types.Struct); ok {
			enqueue(tt)
			return qualifiedTypeName(tt)
		}
		return qualifiedTypeName(tt) + "(" + wireTypeString(tt.Underlying(), enqueue) + ")"
	case *types.Basic:
		return tt.Name()
	case *types.Slice:
		return "[]" + wireTypeString(tt.Elem(), enqueue)
	case *types.Array:
		return fmt.Sprintf("[%d]%s", tt.Len(), wireTypeString(tt.Elem(), enqueue))
	case *types.Map:
		return "map[" + wireTypeString(tt.Key(), enqueue) + "]" + wireTypeString(tt.Elem(), enqueue)
	case *types.Pointer:
		return "*" + wireTypeString(tt.Elem(), enqueue)
	default:
		return types.TypeString(tt, func(p *types.Package) string { return p.Path() })
	}
}

// GenerateWireLock renders the package's wire schema as the lock-file
// artifact, or nil when the package has no //hermes:wire structs.
func GenerateWireLock(pkg *Package) []byte {
	schema := extractWireSchema(pkg.Files, pkg.Info, pkg.Types)
	if len(schema) == 0 {
		return nil
	}
	var b strings.Builder
	b.WriteString("# Code generated by hermes-lint -update-wirelock; DO NOT EDIT BY HAND.\n")
	b.WriteString("# Gob wire schema for package " + pkg.Path + ".\n")
	b.WriteString("# Evolution is append-only: new fields go at the end of a struct; never\n")
	b.WriteString("# rename, remove, reorder, or retype a recorded field.\n")
	for _, ws := range schema {
		b.WriteString("\nstruct " + ws.Name + "\n")
		for _, f := range ws.Fields {
			b.WriteString("\t" + f.Name + " " + f.Type + "\n")
		}
	}
	return []byte(b.String())
}

// parseWireLock reads a lock file back into schema form. Unknown or
// malformed lines are errors: the file is generated, so any hand-edit drift
// should surface loudly.
func parseWireLock(data []byte) ([]wireStruct, error) {
	var out []wireStruct
	for i, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "struct "):
			name := strings.TrimSpace(strings.TrimPrefix(line, "struct "))
			if name == "" {
				return nil, fmt.Errorf("line %d: struct with no name", i+1)
			}
			out = append(out, wireStruct{Name: name})
		case strings.HasPrefix(line, "\t"):
			if len(out) == 0 {
				return nil, fmt.Errorf("line %d: field line before any struct", i+1)
			}
			name, typ, ok := strings.Cut(strings.TrimPrefix(line, "\t"), " ")
			if !ok || name == "" || typ == "" {
				return nil, fmt.Errorf("line %d: want \"<field> <type>\"", i+1)
			}
			ws := &out[len(out)-1]
			ws.Fields = append(ws.Fields, wireField{Name: name, Type: typ})
		default:
			return nil, fmt.Errorf("line %d: unrecognized line %q", i+1, line)
		}
	}
	return out, nil
}

// diffWireSchema reports every way current diverges from locked. The rules
// mirror gob's actual compatibility contract: per struct, the locked field
// list must be a prefix of the current one, name-and-type exact; appended
// fields only need the lock regenerated; a vanished struct is an error.
func diffWireSchema(p *Pass, locked, current []wireStruct) {
	curByName := make(map[string]*wireStruct, len(current))
	for i := range current {
		curByName[current[i].Name] = &current[i]
	}
	lockedByName := make(map[string]bool, len(locked))
	for _, lk := range locked {
		lockedByName[lk.Name] = true
	}

	for _, lk := range locked {
		cur := curByName[lk.Name]
		if cur == nil {
			p.Reportf(firstPos(p.Files), "wire struct %s is recorded in %s but no longer part of the wire schema; removing a wire struct breaks peers still sending it", lk.Name, WireLockFile)
			continue
		}
		diffWireStruct(p, lk, cur)
	}
	for _, cur := range current {
		if !lockedByName[cur.Name] {
			p.Reportf(cur.Pos, "wire struct %s is not recorded in %s; run hermes-lint -update-wirelock", cur.Name, WireLockFile)
		}
	}
}

func diffWireStruct(p *Pass, lk wireStruct, cur *wireStruct) {
	curIndex := make(map[string]int, len(cur.Fields))
	for i, f := range cur.Fields {
		curIndex[f.Name] = i
	}
	for i, lf := range lk.Fields {
		if i >= len(cur.Fields) {
			p.Reportf(cur.Pos, "wire struct %s: field %s (locked position %d) was removed; gob peers decoding old streams will misread every later field", lk.Name, lf.Name, i+1)
			continue
		}
		cf := cur.Fields[i]
		if cf.Name != lf.Name {
			if j, ok := curIndex[lf.Name]; ok {
				p.Reportf(cur.Fields[j].Pos, "wire struct %s: field %s moved from locked position %d to %d; gob field order is part of the wire format", lk.Name, lf.Name, i+1, j+1)
			} else {
				p.Reportf(cf.Pos, "wire struct %s: locked field %s (position %d) was renamed or removed (position now holds %s); gob matches fields by name, so old peers silently drop it", lk.Name, lf.Name, i+1, cf.Name)
			}
			continue
		}
		if cf.Type != lf.Type {
			p.Reportf(cf.Pos, "wire struct %s: field %s changed type from %s to %s; gob will refuse or corrupt cross-version decodes", lk.Name, lf.Name, lf.Type, cf.Type)
		}
	}
	if len(cur.Fields) > len(lk.Fields) {
		extra := make([]string, 0, len(cur.Fields)-len(lk.Fields))
		for _, f := range cur.Fields[len(lk.Fields):] {
			extra = append(extra, f.Name)
		}
		p.Reportf(cur.Fields[len(lk.Fields)].Pos, "wire struct %s: %d appended field(s) not yet recorded in %s (%s); run hermes-lint -update-wirelock", lk.Name, len(extra), WireLockFile, strings.Join(extra, ", "))
	}
}
