// Command hermes-eval evaluates the retrieval accuracy of a built index
// directory against exhaustive brute-force ground truth, mirroring the
// paper artifact's accuracy-evaluation scripts: NDCG and recall for the
// Hermes hierarchical search across deep-cluster counts, plus centroid
// routing and (for comparison directories) the monolithic search.
//
// Usage:
//
//	hermes-eval -index ./idx -queries 100 -k 5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
	"repro/internal/flatindex"
	"repro/internal/hermes"
	"repro/internal/ivf"
	"repro/internal/metrics"
	"repro/internal/vec"
	"repro/pkg/indexfile"
)

func main() {
	var (
		dir     = flag.String("index", "hermes-index", "index directory from hermes-build")
		queries = flag.Int("queries", 100, "evaluation query count")
		qseed   = flag.Int64("qseed", 11, "query generation seed")
		k       = flag.Int("k", 5, "documents retrieved per query")
		deepN   = flag.Int("deep-nprobe", 128, "deep-phase nProbe")
		sampleN = flag.Int("sample-nprobe", 8, "sample-phase nProbe")
	)
	flag.Parse()

	meta, indexes, err := indexfile.ReadAll(*dir)
	if err != nil {
		fatal(err)
	}
	c, err := corpus.Generate(meta.Corpus)
	if err != nil {
		fatal(err)
	}
	qs := c.Queries(*queries, *qseed)
	fmt.Fprintf(os.Stderr, "computing exhaustive ground truth over %d vectors x %d queries...\n",
		c.Vectors.Len(), *queries)
	exact := flatindex.New(meta.Dim)
	exact.AddBatch(0, c.Vectors)
	truth := exact.GroundTruth(qs.Vectors, *k)

	if meta.Type == "monolithic" {
		evalMonolithic(indexes, qs, truth, *k, *deepN)
		return
	}
	st, err := hermes.FromIndexes(indexes)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("index: %s (%s, %d shards, imbalance %.2f)\n\n", *dir, meta.Type, meta.Shards, st.Imbalance)
	fmt.Printf("%-9s  %-33s  %-22s\n", "", "hermes (doc sampling)", "centroid routing")
	fmt.Printf("%-9s  %-10s %-10s %-10s  %-10s %-10s\n", "deep", "ndcg", "recall", "mrr", "ndcg", "recall")
	for deep := 1; deep <= meta.Shards; deep++ {
		p := hermes.Params{K: *k, SampleNProbe: *sampleN, DeepNProbe: *deepN, DeepClusters: deep}
		var hN, hR, hM, cN, cR float64
		for i := 0; i < qs.Vectors.Len(); i++ {
			q := qs.Vectors.Row(i)
			hres, _ := st.Search(q, p)
			hN += metrics.NDCGAtK(ids(hres), truth[i], *k)
			hR += metrics.RecallAtK(ids(hres), truth[i], *k)
			hM += metrics.MRRAtK(ids(hres), truth[i], *k)
			cres, _ := st.SearchCentroid(q, p)
			cN += metrics.NDCGAtK(ids(cres), truth[i], *k)
			cR += metrics.RecallAtK(ids(cres), truth[i], *k)
		}
		n := float64(qs.Vectors.Len())
		fmt.Printf("%-9d  %-10.4f %-10.4f %-10.4f  %-10.4f %-10.4f\n", deep, hN/n, hR/n, hM/n, cN/n, cR/n)
	}
}

func evalMonolithic(indexes []*ivf.Index, qs *corpus.QuerySet, truth [][]int64, k, nProbe int) {
	ix := indexes[0]
	var ndcg, recall float64
	for i := 0; i < qs.Vectors.Len(); i++ {
		res := ix.Search(qs.Vectors.Row(i), k, nProbe)
		ndcg += metrics.NDCGAtK(ids(res), truth[i], k)
		recall += metrics.RecallAtK(ids(res), truth[i], k)
	}
	n := float64(qs.Vectors.Len())
	fmt.Printf("monolithic index: nProbe=%d ndcg=%.4f recall=%.4f\n", nProbe, ndcg/n, recall/n)
}

func ids(ns []vec.Neighbor) []int64 {
	out := make([]int64, len(ns))
	for i, n := range ns {
		out[i] = n.ID
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hermes-eval:", err)
	os.Exit(1)
}
