package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
	"time"
)

// formatFloat renders a metric value the way Prometheus clients do: shortest
// round-trippable representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesLine writes one `name{labels} value` exposition line.
func seriesLine(w io.Writer, name, labels, value string) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s %s\n", name, value)
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
	return err
}

// Counter is a monotonically increasing integer metric (requests, bytes,
// errors). All methods are safe for concurrent use and no-ops on a nil
// receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored; counters are monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) write(w io.Writer, name, labels string) error {
	return seriesLine(w, name, labels, strconv.FormatInt(c.Value(), 10))
}

func (c *Counter) snapshot(base string, out map[string]float64) {
	out[base] = float64(c.Value())
}

// Gauge is an instantaneous float value (queue depth, in-flight requests,
// cache occupancy). Safe for concurrent use; no-op on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add applies a delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) write(w io.Writer, name, labels string) error {
	return seriesLine(w, name, labels, formatFloat(g.Value()))
}

func (g *Gauge) snapshot(base string, out map[string]float64) {
	out[base] = g.Value()
}

// Timer times a region against a histogram: stop := h.Timer(); defer stop().
// The clock read goes through the package `now` seam.
func (h *Histogram) Timer() func() {
	if h == nil {
		return func() {}
	}
	start := now()
	return func() { h.Observe(now().Sub(start).Seconds()) }
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}
