package distsearch

import (
	"bytes"
	"encoding/gob"
	"net"
	"reflect"
	"strconv"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/hermes"
	"repro/internal/ivf"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// v4Request is the Request schema as of PR 7 — everything up to TraceID,
// without Grouped — i.e. what a node running the previous release decodes.
type v4Request struct {
	Op      Op
	Query   []float32
	K       int
	NProbe  int
	Queries [][]float32
	ID      int64
	TraceID uint64
}

// TestRequestWireCompatV4V5 proves the Grouped append is gob-compatible in
// both directions: a v5 request decodes on a v4 peer (Grouped dropped), and
// a v4 request decodes on a v5 peer (Grouped false).
func TestRequestWireCompatV4V5(t *testing.T) {
	v5 := Request{
		Op:      OpDeepBatch,
		K:       4,
		NProbe:  8,
		Queries: [][]float32{{1, 2}, {3, 4}},
		Grouped: true,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v5); err != nil {
		t.Fatal(err)
	}
	var oldSide v4Request
	if err := gob.NewDecoder(&buf).Decode(&oldSide); err != nil {
		t.Fatalf("v4 peer failed to decode a v5 request: %v", err)
	}
	if oldSide.Op != OpDeepBatch || oldSide.K != 4 || len(oldSide.Queries) != 2 {
		t.Errorf("v4 decode mangled fields: %+v", oldSide)
	}

	buf.Reset()
	old := v4Request{Op: OpSampleBatch, NProbe: 2, Queries: [][]float32{{5, 6}}}
	if err := gob.NewEncoder(&buf).Encode(&old); err != nil {
		t.Fatal(err)
	}
	var newSide Request
	if err := gob.NewDecoder(&buf).Decode(&newSide); err != nil {
		t.Fatalf("v5 peer failed to decode a v4 request: %v", err)
	}
	if newSide.Op != OpSampleBatch || newSide.Grouped {
		t.Errorf("v5 decode of v4 request: %+v", newSide)
	}
}

// groupedCluster builds a store, serves every shard from a real node, and
// returns a coordinator plus the per-node registries.
func groupedCluster(t *testing.T, shards int, opts DialOptions) (*corpus.Corpus, *Coordinator, []*telemetry.Registry) {
	t.Helper()
	c, err := corpus.Generate(corpus.Spec{NumChunks: 900, Dim: 16, NumTopics: shards, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	regs := make([]*telemetry.Registry, shards)
	for i, shard := range st.Shards {
		node, err := NewNode(i, shard.Index, nil)
		if err != nil {
			t.Fatal(err)
		}
		regs[i] = telemetry.NewRegistry()
		node.SetTelemetry(regs[i])
		if err := node.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		addrs = append(addrs, node.Addr())
	}
	if opts.Timeout == 0 {
		opts.Timeout = time.Second
	}
	if opts.Telemetry == nil {
		opts.Telemetry = telemetry.NewRegistry()
	}
	co, err := DialOpts(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	return c, co, regs
}

// TestSearchBatchGroupedWire proves grouped distributed batches return the
// same result sets as ungrouped ones, and that the nodes actually took the
// grouped path (groupscan counters move only when the flag is on).
func TestSearchBatchGroupedWire(t *testing.T) {
	const shards = 3
	c, co, regs := groupedCluster(t, shards, DialOptions{})
	qs := c.Queries(16, 23)
	queries := make([][]float32, qs.Vectors.Len())
	for i := range queries {
		queries[i] = qs.Vectors.Row(i)
	}
	p := hermes.DefaultParams()

	plain, err := co.SearchBatch(queries, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, reg := range regs {
		key := `hermes_node_groupscan_queries_total{shard="` + strconv.Itoa(i) + `"}`
		if v := reg.Snapshot()[key]; v > 0 {
			t.Fatalf("ungrouped batch moved groupscan counters on shard %d: %v", i, v)
		}
	}

	co.SetGrouped(true)
	grouped, err := co.SearchBatch(queries, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(grouped.Results, plain.Results) {
		t.Fatal("grouped wire batch differs from ungrouped")
	}
	if !reflect.DeepEqual(grouped.DeepLoads, plain.DeepLoads) {
		t.Fatalf("deep routing changed: %v vs %v", grouped.DeepLoads, plain.DeepLoads)
	}
	groupedQueries := 0.0
	for i, reg := range regs {
		key := `hermes_node_groupscan_queries_total{shard="` + strconv.Itoa(i) + `"}`
		groupedQueries += reg.Snapshot()[key]
	}
	// Every node samples the whole batch through the grouped path.
	if groupedQueries < float64(len(queries)*shards) {
		t.Fatalf("groupscan_queries_total = %v, want >= %d", groupedQueries, len(queries)*shards)
	}
}

// serveV4Node runs an "old release" node for shard shardID backed by a real
// index: it decodes the v4 request schema (no Grouped field — gob drops the
// new coordinator's flag on the floor) and serves batch ops per-query, the
// pre-grouping behavior.
func serveV4Node(t *testing.T, ln net.Listener, shardID int, ix *ivf.Index) {
	t.Helper()
	//lint:ignore goroutinectx accept loop exits when the test's deferred ln.Close unblocks Accept
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			//lint:ignore goroutinectx per-conn handler exits when the coordinator closes the conn at test end
			go func(conn net.Conn) {
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				enc := gob.NewEncoder(conn)
				for {
					var req v4Request
					if err := dec.Decode(&req); err != nil {
						return
					}
					resp := Response{ShardID: shardID}
					switch req.Op {
					case OpInfo:
						resp.Size = ix.Len()
						resp.Dim = ix.Dim()
						resp.Centroid = make([]float32, ix.Dim())
					case OpSampleBatch:
						resp.Batch = make([][]vec.Neighbor, len(req.Queries))
						for i, q := range req.Queries {
							resp.Batch[i] = ix.Search(q, 1, req.NProbe)
						}
					case OpDeepBatch:
						resp.Batch = make([][]vec.Neighbor, len(req.Queries))
						for i, q := range req.Queries {
							resp.Batch[i] = ix.Search(q, req.K, req.NProbe)
						}
					default:
						resp.Err = "unsupported op"
					}
					if err := enc.Encode(&resp); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
}

// TestGroupedOldNodeDegrades runs a grouped coordinator over a mixed
// cluster — one current node and one previous-release node that has never
// heard of Request.Grouped — and requires the batch to come back identical
// to the all-per-query answer. The old node silently drops the flag and
// serves per-query; no error, no result drift.
func TestGroupedOldNodeDegrades(t *testing.T) {
	const shards = 2
	c, err := corpus.Generate(corpus.Spec{NumChunks: 700, Dim: 16, NumTopics: shards, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(0, st.Shards[0].Index, nil)
	if err != nil {
		t.Fatal(err)
	}
	node.SetTelemetry(telemetry.NewRegistry())
	if err := node.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	serveV4Node(t, ln, 1, st.Shards[1].Index)

	addrs := []string{node.Addr(), ln.Addr().String()}
	qs := c.Queries(10, 29)
	queries := make([][]float32, qs.Vectors.Len())
	for i := range queries {
		queries[i] = qs.Vectors.Row(i)
	}
	p := hermes.DefaultParams()

	plain, err := func() (*BatchResult, error) {
		co, err := DialOpts(addrs, DialOptions{Timeout: time.Second, Telemetry: telemetry.NewRegistry()})
		if err != nil {
			return nil, err
		}
		defer co.Close()
		return co.SearchBatch(queries, p)
	}()
	if err != nil {
		t.Fatal(err)
	}

	co, err := DialOpts(addrs, DialOptions{Timeout: time.Second, Telemetry: telemetry.NewRegistry(), Grouped: true})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	grouped, err := co.SearchBatch(queries, p)
	if err != nil {
		t.Fatalf("grouped batch over a mixed-version cluster: %v", err)
	}
	if !reflect.DeepEqual(grouped.Results, plain.Results) {
		t.Fatal("grouped batch over an old node drifted from the per-query answer")
	}
}
