package striding

import (
	"testing"

	"repro/internal/telemetry"
)

// TestGenerationTraceSpansPerPhase: a single-stride generation records
// exactly one span per pipeline phase (encode, retrieve, rerank, generate).
func TestGenerationTraceSpansPerPhase(t *testing.T) {
	ts, _ := textStore(t, 600, 3)
	tr := telemetry.NewTrace()
	sess, err := NewSession(Config{Text: ts, Stride: 8, Seed: 3, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Generate("topic 0 question", 8) // one round: stride == outTokens
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strides) != 1 {
		t.Fatalf("strides = %d, want 1", len(res.Strides))
	}

	counts := make(map[string]int)
	for _, s := range tr.Spans() {
		counts[s.Name]++
		if s.Duration < 0 {
			t.Errorf("span %s has negative duration %v", s.Name, s.Duration)
		}
	}
	for _, phase := range []string{"encode", "retrieve", "rerank", "generate"} {
		if counts[phase] != 1 {
			t.Errorf("phase %s recorded %d spans, want exactly 1 (all: %v)", phase, counts[phase], counts)
		}
	}
	if len(counts) != 4 {
		t.Errorf("unexpected extra spans: %v", counts)
	}
}

// TestGenerationTraceMultiStride: spans accumulate one set per round, and a
// nil trace stays a no-op.
func TestGenerationTraceMultiStride(t *testing.T) {
	ts, _ := textStore(t, 600, 3)
	tr := telemetry.NewTrace()
	sess, err := NewSession(Config{Text: ts, Stride: 4, Seed: 3, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Generate("topic 1 question", 12) // three rounds
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Strides) != 3 {
		t.Fatalf("strides = %d, want 3", len(res.Strides))
	}
	counts := make(map[string]int)
	for _, s := range tr.Spans() {
		counts[s.Name]++
	}
	for _, phase := range []string{"encode", "retrieve", "rerank", "generate"} {
		if counts[phase] != 3 {
			t.Errorf("phase %s recorded %d spans, want 3", phase, counts[phase])
		}
	}

	// Untraced session: same path, no trace, no panic.
	sess2, err := NewSession(Config{Text: ts, Stride: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.Generate("topic 1 question", 4); err != nil {
		t.Fatal(err)
	}
}
