package lint

import (
	"fmt"
	"sort"
	"strings"
)

// LockOrder reports cycles in the module-wide lock-acquisition-order graph
// the fact engine extracts (Facts.LockEdges): nodes are mutex class
// identities (Node.mu, not one instance of it — see mutexID), and an edge
// A -> B is witnessed wherever B is acquired — directly or through a callee
// whose acquires set contains it — while A is held. Two goroutines walking
// a cycle from different entry points can each hold the lock the other
// needs: the classic deadlock -race never sees because it needs the
// interleaving, and exactly the failure mode that multiplies as the serving
// path gains queues and shards.
//
// Each strongly connected component is reported once, at the earliest
// witness position, with every witness edge spelled out so the report shows
// both (or all) conflicting acquisition paths. Instance conflation is the
// accepted imprecision: same-class self-edges are dropped rather than
// guessed at, so ordered acquisition across instances of one type (by shard
// index, say) is neither checked nor flagged.
//
// A deliberate inversion — e.g. a teardown path that provably runs alone —
// takes //lint:ignore lockorder <reason> on the reported line.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "cyclic mutex acquisition order across the module can deadlock; acquire locks in one global order",
	Run:       runLockOrder,
	TestFiles: true,
}

func runLockOrder(p *Pass) {
	edges := p.Facts.LockEdges()
	if len(edges) == 0 || p.Fset == nil {
		return
	}
	// Report a cycle only from the pass whose files contain its canonical
	// witness, so a module-wide fact yields exactly one finding per run and
	// the //lint:ignore suppression sits next to real code.
	inPass := make(map[string]bool, len(p.Files))
	for _, f := range p.Files {
		inPass[p.Fset.Position(f.Pos()).Filename] = true
	}
	for _, scc := range lockSCCs(edges) {
		canonical := scc[0] // witness edges are position-sorted: earliest first
		if !inPass[p.Fset.Position(canonical.Pos).Filename] {
			continue
		}
		var wits []string
		for _, e := range scc {
			pos := p.Fset.Position(e.Pos)
			w := fmt.Sprintf("%s -> %s at %s:%d in %s", shortMutexID(e.From), shortMutexID(e.To), shortFile(pos.Filename), pos.Line, shortMutexID(e.Func))
			if e.Via != "" {
				w += " (via call to " + e.Via + ")"
			}
			wits = append(wits, w)
		}
		p.Reportf(canonical.Pos, "lock-order cycle: %s; goroutines taking these locks in opposite orders can deadlock — pick one global order, or suppress with //lint:ignore lockorder <reason>", strings.Join(wits, "; "))
	}
}

// lockSCCs returns the strongly connected components of the lock-order
// graph that contain a cycle (size > 1; self-edges never enter the graph),
// each as its internal witness edges sorted by position, components in
// deterministic order.
func lockSCCs(edges []LockEdge) [][]LockEdge {
	adj := make(map[string][]string)
	nodeSet := make(map[string]bool)
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
		nodeSet[e.From] = true
		nodeSet[e.To] = true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		sort.Strings(adj[n])
	}

	// Tarjan, recursive: lock graphs are tiny (one node per mutex class).
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var comps [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				comps = append(comps, comp)
			}
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}

	var out [][]LockEdge
	for _, comp := range comps {
		in := make(map[string]bool, len(comp))
		for _, n := range comp {
			in[n] = true
		}
		var internal []LockEdge
		for _, e := range edges {
			if in[e.From] && in[e.To] {
				internal = append(internal, e)
			}
		}
		sort.Slice(internal, func(i, j int) bool { return internal[i].Pos < internal[j].Pos })
		out = append(out, internal)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0].Pos < out[j][0].Pos })
	return out
}

func shortFile(filename string) string {
	if i := strings.LastIndexByte(filename, '/'); i >= 0 {
		return filename[i+1:]
	}
	return filename
}
