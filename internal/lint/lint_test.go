package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture parses and type-checks one fixture package under
// testdata/src. Fixtures must type-check cleanly: analyzer behavior on
// broken code is best-effort and not what these tests pin down.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(%s): got %d packages, want 1", name, len(pkgs))
	}
	for _, terr := range pkgs[0].TypeErrors {
		t.Errorf("fixture %s type error: %v", name, terr)
	}
	return pkgs[0]
}

type wantFinding struct {
	line   int
	check  string
	substr string
}

func checkFindings(t *testing.T, got []Finding, want []wantFinding) {
	t.Helper()
	for _, f := range got {
		t.Logf("finding: %s", f)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d", len(got), len(want))
	}
	for i, w := range want {
		f := got[i]
		if f.Pos.Line != w.line {
			t.Errorf("finding %d at line %d, want line %d (%s)", i, f.Pos.Line, w.line, f.Msg)
		}
		if f.Check != w.check {
			t.Errorf("finding %d check %q, want %q", i, f.Check, w.check)
		}
		if !strings.Contains(f.Msg, w.substr) {
			t.Errorf("finding %d message %q does not contain %q", i, f.Msg, w.substr)
		}
	}
}

// runFixture runs a single analyzer over its fixture package.
func runFixture(t *testing.T, a *Analyzer) []Finding {
	t.Helper()
	return RunPackage(loadFixture(t, a.Name), []*Analyzer{a})
}

func TestGlobalRand(t *testing.T) {
	checkFindings(t, runFixture(t, GlobalRand), []wantFinding{
		{8, "globalrand", "rand.Float32"},
		{12, "globalrand", "rand.Intn"},
		{13, "globalrand", "rand.Shuffle"},
		{14, "globalrand", "rand.Perm"},
	})
}

func TestWallClock(t *testing.T) {
	checkFindings(t, runFixture(t, WallClock), []wantFinding{
		{8, "wallclock", "time.Now"},
		{12, "wallclock", "time.Since"},
		{16, "wallclock", "time.Until"},
	})
}

func TestGoroutineCtx(t *testing.T) {
	checkFindings(t, runFixture(t, GoroutineCtx), []wantFinding{
		{10, "goroutinectx", "no visible completion mechanism"},
		{21, "goroutinectx", "captures loop variable i"},
	})
}

func TestLockCopy(t *testing.T) {
	checkFindings(t, runFixture(t, LockCopy), []wantFinding{
		{21, "lockcopy", `parameter "g"`},
		{25, "lockcopy", `parameter "w"`},
		{29, "lockcopy", "result"},
		{33, "lockcopy", `receiver "g"`},
		{37, "lockcopy", "func literal"},
	})
}

func TestErrDrop(t *testing.T) {
	checkFindings(t, runFixture(t, ErrDrop), []wantFinding{
		{17, "errdrop", "os.File.Close"},
		{18, "errdrop", "os.File.Sync"},
		{19, "errdrop", "closer.Close"},
		{20, "errdrop", "os.File.Write"},
		{24, "errdrop", "gob.Encoder.Encode"},
	})
}

// TestIgnoreDirectives pins the directive contract: a directive needs a
// reason to count, applies only to its named checks, and may name several.
func TestIgnoreDirectives(t *testing.T) {
	pkg := loadFixture(t, "directives")
	checkFindings(t, RunPackage(pkg, All()), []wantFinding{
		{7, "lintdirective", "malformed"},
		{8, "globalrand", "rand.Int"},
		{13, "globalrand", "rand.Float32"},
	})
}

func TestSelect(t *testing.T) {
	tests := []struct {
		only, skip string
		want       []string
		wantErr    bool
	}{
		{"", "", []string{
			"globalrand", "wallclock", "goroutinectx", "lockcopy", "errdrop",
			"wirelock", "lockheldio", "poolescape", "deferinloop", "hotpathclock",
			"hotpathalloc", "lockorder", "goroutineleak", "metricname",
			"escapeaudit", "ctxflow", "poolretain", "chanbound",
		}, false},
		{"globalrand,errdrop", "", []string{"globalrand", "errdrop"}, false},
		{"", "goroutinectx,wirelock,lockheldio,poolescape,deferinloop,hotpathclock," +
			"hotpathalloc,lockorder,goroutineleak,metricname," +
			"escapeaudit,ctxflow,poolretain,chanbound",
			[]string{"globalrand", "wallclock", "lockcopy", "errdrop"}, false},
		{"globalrand", "globalrand", nil, false},
		{"nosuchcheck", "", nil, true},
		{"", "nosuchcheck", nil, true},
	}
	for _, tc := range tests {
		got, err := Select(tc.only, tc.skip)
		if tc.wantErr {
			if err == nil {
				t.Errorf("Select(%q, %q): expected error", tc.only, tc.skip)
			}
			continue
		}
		if err != nil {
			t.Errorf("Select(%q, %q): %v", tc.only, tc.skip, err)
			continue
		}
		var names []string
		for _, a := range got {
			names = append(names, a.Name)
		}
		if strings.Join(names, ",") != strings.Join(tc.want, ",") {
			t.Errorf("Select(%q, %q) = %v, want %v", tc.only, tc.skip, names, tc.want)
		}
	}
}

// TestLoaderModuleImports loads a real module package (with module-internal
// and stdlib imports) to prove the source-importer path works offline.
func TestLoaderModuleImports(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if l.ModulePath != "repro" {
		t.Fatalf("ModulePath = %q, want repro", l.ModulePath)
	}
	pkgs, err := l.Load(filepath.Join(l.ModuleRoot, "internal", "kmeans"))
	if err != nil {
		t.Fatalf("Load kmeans: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Types == nil {
		t.Fatalf("kmeans did not load: %+v", pkgs)
	}
	if len(pkgs[0].TypeErrors) > 0 {
		t.Fatalf("kmeans type errors: %v", pkgs[0].TypeErrors)
	}
	if got := pkgs[0].Path; got != "repro/internal/kmeans" {
		t.Errorf("Path = %q, want repro/internal/kmeans", got)
	}
}
