#!/usr/bin/env sh
# The hermes-lint CI gate (called from scripts/verify.sh).
#
# Two contracts, both enforced with a non-zero exit:
#
# 1. Finding gate. lint-report.json is a COMMITTED artifact: the accepted
#    lint state of the tree. The first run fails only on findings absent
#    from it (-diff), so a new analyzer can land with known, annotated
#    findings and tighten over time instead of blocking on a big-bang
#    cleanup. The second run applies the same diff gate over in-package
#    _test.go files (TestFiles-capable checks only).
#
# 2. Artifact identity gate. Every committed lint artifact — the accepted
#    report, the fact-lattice dump (lint-facts.json), the wire.lock schema
#    budgets, and the alloc.lock escape budgets — must be byte-identical to
#    a fresh regeneration. Each is regenerated IN PLACE below and compared
#    against the committed bytes; on drift the script exits 1 naming the
#    stale files, which are left refreshed on disk — review the diff and
#    commit them as part of the change.
#
# alloc.lock is toolchain-specific (see its `# go <version>` header): when
# the running toolchain differs from the recorded one, its regeneration is
# skipped with a warning instead of churning every budget — the same policy
# as the driver's escapeaudit version gate. wire.lock regeneration is pure
# AST and always runs.
set -eux

cd "$(dirname "$0")/.."

stale=""

go run ./cmd/hermes-lint -json -diff lint-report.json ./... > lint-report.json.tmp
cmp -s lint-report.json.tmp lint-report.json || stale="$stale lint-report.json"
mv lint-report.json.tmp lint-report.json
go run ./cmd/hermes-lint -diff lint-report.json -include-tests ./...
go run ./cmd/hermes-lint -facts -json ./... > lint-facts.json.tmp
cmp -s lint-facts.json.tmp lint-facts.json || stale="$stale lint-facts.json"
mv lint-facts.json.tmp lint-facts.json

# Lock budgets: snapshot the committed bytes, regenerate in place, compare.
# Fixture locks under testdata are hand-written against fabricated
# diagnostics (fake toolchain header on purpose) — never regenerated here.
locks=$(find internal -path '*/testdata/*' -prune -o \( -name wire.lock -o -name alloc.lock \) -print | sort)
snapdir=$(mktemp -d)
trap 'rm -rf "$snapdir"' EXIT
for f in $locks; do
    mkdir -p "$snapdir/$(dirname "$f")"
    cp "$f" "$snapdir/$f"
done
go run ./cmd/hermes-lint -update-wirelock ./...
goversion=$(go env GOVERSION)
allocs=$(find internal -path '*/testdata/*' -prune -o -name alloc.lock -print)
recorded=$(sed -n 's/^# go //p' $allocs | sort -u)
if [ "$recorded" = "$goversion" ]; then
    go run ./cmd/hermes-lint -update-alloclock ./...
else
    echo "lint-diff.sh: skipping alloc.lock identity gate: recorded toolchain ($recorded) != $goversion; run -update-alloclock on a matching toolchain" >&2
fi
for f in $locks; do
    cmp -s "$f" "$snapdir/$f" || stale="$stale $f"
done

if [ -n "$stale" ]; then
    echo "lint-diff.sh: stale committed artifact(s):$stale" >&2
    echo "lint-diff.sh: each was regenerated in place; review the diff and commit" >&2
    exit 1
fi
