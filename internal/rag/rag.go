// Package rag models the end-to-end retrieval-augmented generation pipeline
// of Figure 3 — encode → retrieve → augment → prefill → decode with
// retrieval striding — and the serving strategies the paper evaluates:
//
//   - Baseline: every stride performs retrieval, then re-prefills the
//     changed context, then decodes stride tokens, all sequentially.
//   - RAGCache: key-value prefill states for retrieved documents are cached
//     (the paper assumes an ideal 100% hit rate), removing re-prefill from
//     strides after the first.
//   - PipeRAG: retrieval for the next stride overlaps with the current
//     stride's inference, hiding min(retrieval, inference) per stride at the
//     cost of one-stride-stale documents.
//   - Combinations (PipeRAG+RAGCache), each over any retrieval organization
//     (monolithic, naive split, Hermes).
//
// The pipeline is an analytic composition of the encoder, retrieval-tier
// (multinode) and LLM (llm) models; its outputs — TTFT, end-to-end latency,
// and a per-stage energy ledger — are the series behind Figures 5, 6, 8, 14,
// 16, 17, and 19.
package rag

import (
	"fmt"
	"time"

	"repro/internal/encoder"
	"repro/internal/llm"
	"repro/internal/metrics"
	"repro/internal/multinode"
)

// Retriever abstracts a retrieval tier: the modeled cost of one batched
// retrieval round.
type Retriever interface {
	// Name identifies the organization ("monolithic", "hermes", ...).
	Name() string
	// RetrieveBatch returns the latency and energy of one retrieval round
	// for the pipeline's batch.
	RetrieveBatch() (time.Duration, float64)
}

// MonolithicRetriever is the single-node baseline tier.
type MonolithicRetriever struct {
	CPU    multinode.Cluster // single-shard cluster
	Tokens int64
	Batch  int
}

// NewMonolithicRetriever models one node holding the full datastore.
func NewMonolithicRetriever(cluster *multinode.Cluster, batch int) (*MonolithicRetriever, error) {
	if cluster.Nodes() != 1 {
		return nil, fmt.Errorf("rag: monolithic retriever needs a 1-node cluster, got %d", cluster.Nodes())
	}
	return &MonolithicRetriever{CPU: *cluster, Tokens: cluster.TotalTokens(), Batch: batch}, nil
}

func (r *MonolithicRetriever) Name() string { return "monolithic" }

func (r *MonolithicRetriever) RetrieveBatch() (time.Duration, float64) {
	cost := multinode.Monolithic(r.CPU.CPU, r.Tokens, r.Batch)
	return cost.Latency, cost.EnergyJ
}

// SplitAllRetriever is the naive distributed tier.
type SplitAllRetriever struct {
	Cluster *multinode.Cluster
	Batch   int
}

func (r *SplitAllRetriever) Name() string { return "split-all" }

func (r *SplitAllRetriever) RetrieveBatch() (time.Duration, float64) {
	cost := r.Cluster.SplitAll(r.Batch)
	return cost.Latency, cost.EnergyJ
}

// HermesRetriever is the hierarchical-search tier.
type HermesRetriever struct {
	Cluster *multinode.Cluster
	Config  multinode.HermesConfig
}

func (r *HermesRetriever) Name() string { return "hermes" }

func (r *HermesRetriever) RetrieveBatch() (time.Duration, float64) {
	cost, err := r.Cluster.Hermes(r.Config)
	if err != nil {
		// Configuration errors are programming errors at pipeline level.
		panic(fmt.Sprintf("rag: hermes retriever misconfigured: %v", err))
	}
	return cost.Latency, cost.EnergyJ
}

// PipelineConfig describes one serving scenario.
type PipelineConfig struct {
	Batch        int
	InputTokens  int
	OutputTokens int
	// Stride is the retrieval stride length in tokens (paper default 16).
	Stride int
	// Engine is the LLM deployment.
	Engine *llm.Engine
	// Encoder is the query-encoder cost model.
	Encoder encoder.LatencyModel
	// Retriever is the retrieval tier.
	Retriever Retriever
	// Pipelined enables PipeRAG-style retrieval/inference overlap.
	Pipelined bool
	// PrefixCache enables RAGCache-style KV reuse. The paper assumes an
	// ideal 100% hit rate; CacheHitRate below can weaken that.
	PrefixCache bool
	// CacheHitRate is the fraction of re-prefill work the KV cache
	// absorbs when PrefixCache is on: 0 (or unset) means the paper's
	// ideal 1.0; measured values come from a real internal/kvcache run
	// (see the ablation-cachehit experiment). Ignored when PrefixCache is
	// false.
	CacheHitRate float64
}

func (c PipelineConfig) validate() error {
	if c.Batch <= 0 || c.InputTokens <= 0 || c.OutputTokens <= 0 {
		return fmt.Errorf("rag: batch/input/output must be positive")
	}
	if c.Stride <= 0 {
		return fmt.Errorf("rag: stride must be positive")
	}
	if c.Engine == nil || c.Retriever == nil {
		return fmt.Errorf("rag: engine and retriever are required")
	}
	if c.CacheHitRate < 0 || c.CacheHitRate > 1 {
		return fmt.Errorf("rag: CacheHitRate %v outside [0,1]", c.CacheHitRate)
	}
	return nil
}

// effectiveHitRate resolves the configured hit rate: PrefixCache with an
// unset rate means the paper's ideal 100%.
func (c PipelineConfig) effectiveHitRate() float64 {
	if !c.PrefixCache {
		return 0
	}
	if c.CacheHitRate == 0 {
		return 1
	}
	return c.CacheHitRate
}

// Strides returns the number of retrieval rounds for the configuration.
func (c PipelineConfig) Strides() int {
	return (c.OutputTokens + c.Stride - 1) / c.Stride
}

// Report is the modeled outcome of serving one batch end to end.
type Report struct {
	// TTFT is time-to-first-token: encode + first retrieval + prefill.
	TTFT time.Duration
	// E2E is the full batch completion latency.
	E2E time.Duration
	// Strides is the number of retrieval rounds performed.
	Strides int
	// Energy is the per-stage ledger (encode/retrieve/prefill/decode).
	Energy metrics.Energy
}

// TotalJoules is the summed energy.
func (r *Report) TotalJoules() float64 { return r.Energy.Total() }

// Run evaluates the pipeline configuration.
func Run(cfg PipelineConfig) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rep := &Report{Strides: cfg.Strides()}

	encodeLat := cfg.Encoder.BatchLatency(cfg.Batch)
	rep.Energy.AddJoules("encode", cfg.Encoder.BatchEnergy(cfg.Batch))

	retrieveLat, retrieveJ := cfg.Retriever.RetrieveBatch()
	prefillLat := cfg.Engine.PrefillLatency(cfg.Batch, cfg.InputTokens)
	prefillJ := cfg.Engine.PrefillEnergy(cfg.Batch, cfg.InputTokens)

	// TTFT: no strategy hides the first retrieval (PipeRAG and RAGCache
	// both depend on state from prior strides — Takeaway 2).
	rep.TTFT = encodeLat + retrieveLat + prefillLat

	// First stride: encode + retrieve + prefill + decode(stride tokens).
	decodeLat := func(strideIdx int) time.Duration {
		ctx := cfg.InputTokens + strideIdx*cfg.Stride
		return cfg.Engine.DecodeLatency(cfg.Batch, ctx, cfg.Stride)
	}
	decodeJ := func(strideIdx int) float64 {
		ctx := cfg.InputTokens + strideIdx*cfg.Stride
		return cfg.Engine.DecodeEnergy(cfg.Batch, ctx, cfg.Stride)
	}

	e2e := rep.TTFT + decodeLat(0)
	rep.Energy.AddJoules("retrieve", retrieveJ)
	rep.Energy.AddJoules("prefill", prefillJ)
	rep.Energy.AddJoules("decode", decodeJ(0))

	// Subsequent strides: inference re-prefills the changed context unless
	// RAGCache serves it from the KV cache; PipeRAG overlaps the stride's
	// retrieval with its inference, so the stride costs the longer of the
	// two instead of their sum.
	hitRate := cfg.effectiveHitRate()
	for s := 1; s < rep.Strides; s++ {
		inferLat := decodeLat(s)
		if miss := 1 - hitRate; miss > 0 {
			inferLat += time.Duration(float64(prefillLat) * miss)
			rep.Energy.AddJoules("prefill", prefillJ*miss)
		}
		rep.Energy.AddJoules("decode", decodeJ(s))
		rep.Energy.AddJoules("retrieve", retrieveJ)
		switch {
		case cfg.Pipelined && retrieveLat > inferLat:
			e2e += retrieveLat
		case cfg.Pipelined:
			e2e += inferLat
		default:
			e2e += retrieveLat + inferLat
		}
	}
	rep.E2E = e2e
	return rep, nil
}

// StrategyName renders the optimization combination for reports.
func StrategyName(pipelined, prefixCache bool) string {
	switch {
	case pipelined && prefixCache:
		return "PipeRAG+RAGCache"
	case pipelined:
		return "PipeRAG"
	case prefixCache:
		return "RAGCache"
	default:
		return "Baseline"
	}
}
