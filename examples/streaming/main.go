// Streaming datastore: RAG's premise is a corpus that changes faster than
// models retrain (the paper's introduction). This example serves an
// open-loop Poisson query load against a disaggregated store while documents
// are concurrently ingested and removed, then compacts the tombstoned space
// — exercising the mutable-datastore path end to end and reporting sojourn
// latency percentiles under load.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"sync"

	hermes "repro"

	"repro/internal/loadgen"
	"repro/internal/vec"
)

func main() {
	corpus, err := hermes.GenerateCorpus(hermes.CorpusSpec{
		NumChunks: 4000, Dim: 24, NumTopics: 8, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	store, err := hermes.Build(corpus.Vectors, hermes.BuildOptions{NumShards: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store: %d docs over %d shards\n", store.Len(), store.NumShards())

	queries := corpus.Queries(400, 17)
	params := hermes.DefaultParams()

	// Mutations interleave with the query load: store-level search and
	// mutation are guarded by one lock here (the distributed deployment
	// isolates this per shard node).
	var mu sync.Mutex

	// Writer: ingest 300 new docs near topic centers and remove 300 old
	// ones while the load runs.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; i < 300; i++ {
			v := vec.Copy(corpus.Centers.Row(i % 8))
			v[0] += float32(i) * 1e-4
			mu.Lock()
			if _, err := store.Add(int64(1_000_000+i), v); err != nil {
				log.Fatal(err)
			}
			if _, ok := store.Remove(int64(i)); !ok {
				log.Fatalf("remove %d failed", i)
			}
			mu.Unlock()
		}
	}()

	rep, err := loadgen.Run(loadgen.Config{
		TargetQPS:   800,
		Queries:     400,
		Concurrency: 2,
		Seed:        19,
	}, func(i int) error {
		q := queries.Vectors.Row(i % queries.Vectors.Len())
		mu.Lock()
		res, _ := store.Search(q, params)
		mu.Unlock()
		if len(res) == 0 {
			return fmt.Errorf("query %d returned nothing", i)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	<-writerDone

	fmt.Printf("\nload: offered %d queries at 800 QPS, completed %d, failed %d\n",
		rep.Offered, rep.Completed, rep.Failed)
	fmt.Printf("achieved throughput: %.0f QPS over %v\n", rep.AchievedQPS, rep.Wall)
	fmt.Printf("sojourn latency: p50 %v  p95 %v  p99 %v  max %v\n",
		rep.Sojourn.P50, rep.Sojourn.P95, rep.Sojourn.P99, rep.Sojourn.Max)
	fmt.Printf("service latency: p50 %v  p95 %v\n", rep.Service.P50, rep.Service.P95)

	fmt.Printf("\nafter churn: %d live docs, shard sizes %v\n", store.Len(), store.Sizes())
	store.Compact()
	fmt.Println("compacted tombstoned space")

	// The freshly ingested documents are immediately retrievable.
	probe := vec.Copy(corpus.Centers.Row(3))
	probe[0] += 0.0001 * 3
	res, _ := store.Search(probe, params)
	fmt.Printf("probe near topic 3 center returns: %v (IDs >= 1000000 are streamed-in docs)\n",
		ids(res))
}

func ids(ns []hermes.Neighbor) []int64 {
	out := make([]int64, len(ns))
	for i, n := range ns {
		out[i] = n.ID
	}
	return out
}
