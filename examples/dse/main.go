// Design-space exploration: sweep the Table 2 knobs — sample nProbe, deep
// nProbe, and clusters deep-searched — on a real disaggregated store and
// print the accuracy/work frontier, the analysis behind the paper's
// Figures 11 and 12 that selects (sample=8, deep=128, clusters=3).
//
//	go run ./examples/dse
package main

import (
	"fmt"
	"log"
	"time"

	hermes "repro"
)

func main() {
	corpus, err := hermes.GenerateCorpus(hermes.CorpusSpec{
		NumChunks: 6000, Dim: 32, NumTopics: 10, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	store, err := hermes.Build(corpus.Vectors, hermes.BuildOptions{NumShards: 10})
	if err != nil {
		log.Fatal(err)
	}
	queries := corpus.Queries(60, 6)
	exact := hermes.NewFlatIndex(corpus.Spec.Dim)
	exact.AddBatch(0, corpus.Vectors)
	truth := exact.GroundTruth(queries.Vectors, 5)

	evaluate := func(p hermes.Params) (ndcg float64, scanned int, lat time.Duration) {
		start := time.Now()
		for i := 0; i < queries.Vectors.Len(); i++ {
			res, stats := store.Search(queries.Vectors.Row(i), p)
			ndcg += hermes.NDCGAtK(ids(res), truth[i], 5)
			scanned += stats.SampleScanned + stats.DeepScanned
		}
		n := queries.Vectors.Len()
		return ndcg / float64(n), scanned / n, time.Since(start) / time.Duration(n)
	}

	fmt.Println("sweep 1: clusters deep-searched (sample nProbe 8, deep nProbe 128)")
	fmt.Println("clusters  NDCG@5   vectors/query  latency/query")
	for deep := 1; deep <= 10; deep++ {
		p := hermes.DefaultParams()
		p.DeepClusters = deep
		ndcg, scanned, lat := evaluate(p)
		fmt.Printf("%-9d %.4f   %-13d %v\n", deep, ndcg, scanned, lat)
	}

	fmt.Println("\nsweep 2: sample nProbe (3 deep clusters, deep nProbe 128)")
	fmt.Println("sample_nprobe  NDCG@5   vectors/query")
	for _, sp := range []int{1, 2, 4, 8, 16} {
		p := hermes.DefaultParams()
		p.SampleNProbe = sp
		ndcg, scanned, _ := evaluate(p)
		fmt.Printf("%-14d %.4f   %d\n", sp, ndcg, scanned)
	}

	fmt.Println("\nsweep 3: deep nProbe (3 deep clusters, sample nProbe 8)")
	fmt.Println("deep_nprobe  NDCG@5   vectors/query")
	for _, dp := range []int{8, 16, 32, 64, 128} {
		p := hermes.DefaultParams()
		p.DeepNProbe = dp
		ndcg, scanned, _ := evaluate(p)
		fmt.Printf("%-12d %.4f   %d\n", dp, ndcg, scanned)
	}
	fmt.Println("\nthe paper's operating point — sample 8 / deep 128 / 3 clusters —")
	fmt.Println("sits at the knee of all three sweeps")
}

func ids(ns []hermes.Neighbor) []int64 {
	out := make([]int64, len(ns))
	for i, n := range ns {
		out[i] = n.ID
	}
	return out
}
