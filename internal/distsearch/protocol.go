// Package distsearch is the working distributed implementation of Hermes'
// serving architecture (Figure 9): one shard node per disaggregated index
// cluster and a coordinator that scatters the sample phase to every node,
// ranks nodes by their sampled document, and gathers a deep search from the
// top-ranked subset.
//
// The wire protocol is gob over TCP with one request/response pair per
// round-trip. Whereas internal/multinode models a large cluster
// analytically, this package actually runs the protocol — the tests and
// examples/distributed spin up real nodes on localhost.
package distsearch

import (
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// Op selects the request type.
type Op uint8

const (
	// OpInfo asks a node for its shard metadata.
	OpInfo Op = iota + 1
	// OpSample performs the low-nProbe single-document sample search.
	OpSample
	// OpDeep performs the high-nProbe top-k deep search.
	OpDeep
	// OpShutdown asks the node to stop serving after replying.
	OpShutdown
	// OpSampleBatch runs the sample search for many queries in one round
	// trip; OpDeepBatch likewise for the deep search. Batch variants are
	// what the coordinator uses for throughput-oriented serving — one
	// request per node per phase instead of one per query.
	OpSampleBatch
	OpDeepBatch
	// OpAdd ingests a vector into the node's shard; OpRemove tombstones
	// one. Together they make the distributed datastore mutable without
	// an offline rebuild (the RAG freshness premise).
	OpAdd
	OpRemove
	// OpStats returns the node's served-request counters (live load
	// observability, the per-node view of Fig. 13's access imbalance).
	// OpCompact reclaims tombstoned space after removals.
	OpStats
	OpCompact
	// OpMetricsSnap returns the node's structured metric export
	// (Response.Families) for cluster-level federation: the coordinator
	// merges every node's families into the /metrics/cluster view. Op
	// values are append-only like the wire structs — a v(N-1) node answers
	// this op with an "unknown op" error, which the coordinator treats as
	// "federation absent", not a failure.
	OpMetricsSnap
)

// Request is the single wire request envelope.
//
// The struct (and everything reachable through it) is locked in wire.lock:
// gob names fields and encodes them in declaration order, so evolution is
// append-only — new fields go at the end, and hermes-lint -update-wirelock
// re-records the schema. Renaming, removing, reordering, or retyping an
// existing field fails the wirelock gate.
//
//hermes:wire
type Request struct {
	Op     Op
	Query  []float32
	K      int
	NProbe int
	// Queries carries the batch for OpSampleBatch/OpDeepBatch.
	Queries [][]float32
	// ID identifies the document for OpAdd/OpRemove (OpAdd's vector
	// travels in Query).
	ID int64
	// TraceID carries the coordinator-minted request-scoped trace ID; 0
	// means untraced. Appended after the v1 fields: gob drops it when an
	// old node decodes the request and zeroes it when an old coordinator
	// talks to a new node, so the extension is wire-compatible both ways.
	TraceID uint64
	// Grouped asks the node to execute OpSampleBatch/OpDeepBatch through
	// the multi-query grouped cell scan (ivf.SearchGroup): queries probing
	// the same IVF cell share one code stream. Results are the same set as
	// per-query execution, so the flag is purely an execution hint.
	// Gob-compatible v5 addition, appended after TraceID like every
	// evolution before it: an old node drops the field and serves the
	// batch per-query — a silent, correct degrade — and an old coordinator
	// leaves it false on a new node.
	Grouped bool
}

// Response is the single wire response envelope. Err is non-empty when the
// node rejected or failed the request. Like Request, its gob schema is
// locked in wire.lock (append-only evolution; see the Request doc).
//
//hermes:wire
type Response struct {
	Err string
	// Info fields.
	ShardID int
	Size    int
	Dim     int
	// Search results (best first). For OpSample, at most one entry.
	Neighbors []vec.Neighbor
	// Batch holds per-query results for the batch ops, index-aligned with
	// Request.Queries.
	Batch [][]vec.Neighbor
	// Centroid is the node's mean coarse centroid (OpInfo), used by the
	// coordinator to route ingested documents to the most similar shard.
	Centroid []float32
	// OK reports OpRemove success (the id was present and is now gone).
	OK bool
	// Stats fields (OpStats).
	SampleServed, DeepServed, MutationsServed int64
	Tombstones                                int
	// ServerNanos is the node-side handling time of this request in
	// nanoseconds (deserialization and wire excluded); the coordinator
	// uses it to split round-trip time into compute vs wire. Like
	// TraceID, it is a gob-compatible v2 addition.
	ServerNanos int64
	// Telemetry is the node's full metric snapshot, keyed as
	// telemetry.Registry.Snapshot renders it (OpStats only).
	Telemetry map[string]float64
	// Scanned is the number of vectors the node's index scanned serving
	// this request (summed across a batch). Gob-compatible v3 addition,
	// like Spans below.
	Scanned int64
	// Spans carries the node's per-phase timing for a traced request
	// (Request.TraceID != 0): decode, probe_select, list_scan, topk_merge,
	// encode. Offsets are relative to the node-side request start, never
	// wall times, so coordinator/node clock skew is irrelevant — the
	// coordinator anchors them at its own send time when stitching them
	// into the query trace. Empty for untraced requests; a v2-era peer
	// simply drops the field (decoding an old response leaves it nil).
	Spans []WireSpan
	// Families is the node's structured, mergeable metric export
	// (OpMetricsSnap only): full bucket layouts and counts rather than the
	// flattened strings of Telemetry above, so the coordinator can merge
	// histograms bucket-wise across nodes. Gob-compatible v4 addition — a
	// v3-era peer drops or zeroes it like TraceID/Spans before it.
	Families []telemetry.FamilySnapshot
	// Costs is the per-query resource-attribution ledger for this request
	// (ISSUE 9): index-aligned with Request.Queries for the batch ops, a
	// single entry for OpSample/OpDeep. Each entry accounts the cells this
	// query probed, the codes streamed for it split exclusive vs
	// shared-amortized, and — for traced requests — its share of the node's
	// measured scan time. WireBytes is left zero by nodes (only the
	// coordinator can see the wire) and filled in coordinator-side.
	// Gob-compatible v6 addition: a v5-era peer drops or zeroes it.
	Costs []telemetry.QueryCost
	// GroupedExec reports that the node actually executed the batch through
	// the grouped scan. A v5-era node serving a Grouped request leaves the
	// field false (it degraded to per-query execution without attribution),
	// which is how the coordinator detects — and now counts — the silent
	// degrade. Gob-compatible v6 addition.
	GroupedExec bool
}

// WireSpan is one node-side phase shipped inside a Response.
type WireSpan struct {
	Name string
	// Node is the shard ID that recorded the span.
	Node int
	// OffsetNanos is the span start relative to the node-side request
	// start (first request byte observed / decode start).
	OffsetNanos int64
	// DurNanos is the span duration.
	DurNanos int64
}
