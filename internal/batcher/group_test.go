package batcher

import (
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/vec"
)

// keyOf predicts one key per query from its first element, so tests control
// grouping cohorts exactly.
func keyOf(q []float32) []uint64 { return []uint64{uint64(q[0])} }

func TestNormalizeKeysAndOverlap(t *testing.T) {
	keys := normalizeKeys([]uint64{9, 3, 9, 1, 3})
	want := []uint64{1, 3, 9}
	if len(keys) != len(want) {
		t.Fatalf("normalized %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("normalized %v, want %v", keys, want)
		}
	}
	if got := keyOverlap([]uint64{1, 3, 9}, []uint64{2, 3, 4, 9}); got != 2 {
		t.Fatalf("overlap = %d, want 2", got)
	}
	if got := keyOverlap(nil, []uint64{1}); got != 0 {
		t.Fatalf("overlap with nil = %d, want 0", got)
	}
}

// TestGroupedSelection drives takeLocked directly with a fabricated clock:
// the seed is always taken, overlapping queries join in descending-overlap
// order, young non-overlapping queries are held, and expired ones are taken.
func TestGroupedSelection(t *testing.T) {
	base := time.Unix(1000, 0)
	clock := base
	now = func() time.Time { return clock }
	defer func() { now = time.Now }()

	reg := telemetry.NewRegistry()
	b, err := New(Config{
		MaxBatch: 8, MaxWait: 100 * time.Millisecond, GroupSlack: 40 * time.Millisecond,
		Process: echoProcess, Predict: keyOf, Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(key uint64, age time.Duration, more ...uint64) *request {
		return &request{
			cells:   normalizeKeys(append([]uint64{key}, more...)),
			arrived: clock.Add(-age),
			done:    make(chan response, 1),
		}
	}
	seed := mk(1, 50*time.Millisecond, 2, 3)
	strong := mk(2, 10*time.Millisecond, 3)     // overlap 2
	weak := mk(3, 5*time.Millisecond)           // overlap 1
	youngStranger := mk(9, 10*time.Millisecond) // no overlap, inside slack
	oldStranger := mk(8, 45*time.Millisecond)   // no overlap, slack expired
	b.pending = []*request{seed, youngStranger, weak, strong, oldStranger}

	batch := b.takeLocked(false)
	got := make([]*request, len(batch))
	copy(got, batch)
	wantOrder := []*request{seed, strong, weak, oldStranger}
	if len(got) != len(wantOrder) {
		t.Fatalf("took %d requests, want %d", len(got), len(wantOrder))
	}
	for i := range wantOrder {
		if got[i] != wantOrder[i] {
			t.Fatalf("position %d wrong request (overlap ordering broken)", i)
		}
	}
	if len(b.pending) != 1 || b.pending[0] != youngStranger {
		t.Fatalf("held-back remainder wrong: %d pending", len(b.pending))
	}
	// Satellite: the queue-depth gauge must reflect the actual remainder,
	// not be reset to zero by the partial take.
	if got := reg.Snapshot()["hermes_batcher_queue_depth"]; got != 1 {
		t.Fatalf("queue depth after partial take = %v, want 1", got)
	}
	if b.Stats().Holdbacks != 1 {
		t.Fatalf("holdbacks = %d, want 1", b.Stats().Holdbacks)
	}
	snap := reg.Snapshot()
	if snap["hermes_batcher_group_holdbacks_total"] != 1 {
		t.Fatalf("holdbacks counter = %v", snap["hermes_batcher_group_holdbacks_total"])
	}
	if snap["hermes_batcher_group_size:count"] != 1 || snap["hermes_batcher_group_overlap:count"] != 3 {
		t.Fatalf("grouping histograms not observed: %v", snap)
	}
	// The re-armed timer belongs to the held query; settle it so Close's
	// drain does not wait on a live 100ms timer.
	b.pending = nil
	if b.timer.Stop() {
		b.timerFlushes.Done()
	}
	b.timer = nil
	b.Close()
}

// TestGroupSlackClampedToMaxWait pins the latency contract: a slack larger
// than MaxWait is clamped, never extending a query's wait beyond MaxWait.
func TestGroupSlackClampedToMaxWait(t *testing.T) {
	b, err := New(Config{
		MaxBatch: 4, MaxWait: 10 * time.Millisecond, GroupSlack: time.Hour,
		Process: echoProcess, Predict: keyOf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.cfg.GroupSlack != b.cfg.MaxWait {
		t.Fatalf("GroupSlack = %v, want clamp to %v", b.cfg.GroupSlack, b.cfg.MaxWait)
	}
	if b2, _ := New(Config{MaxBatch: 4, MaxWait: time.Millisecond, GroupSlack: -1,
		Process: echoProcess}); b2.cfg.GroupSlack != 0 {
		t.Fatal("negative GroupSlack not zeroed")
	} else {
		b2.Close()
	}
}

// TestHoldbackFlushesWithinMaxWait is the end-to-end slack behavior: a
// non-overlapping query sits out the cohort's size-triggered flush but still
// completes within its own MaxWait via the re-armed timer.
func TestHoldbackFlushesWithinMaxWait(t *testing.T) {
	var batches [][]float32
	var mu sync.Mutex
	b, err := New(Config{
		MaxBatch: 3, MaxWait: 60 * time.Millisecond, GroupSlack: 30 * time.Millisecond,
		Predict: keyOf,
		Process: func(qs [][]float32) ([][]vec.Neighbor, error) {
			mu.Lock()
			first := make([]float32, 0, len(qs))
			for _, q := range qs {
				first = append(first, q[0])
			}
			batches = append(batches, first)
			mu.Unlock()
			return echoProcess(qs)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var wg sync.WaitGroup
	results := make([]int64, 3)
	search := func(i int, v float32) {
		defer wg.Done()
		res, err := b.Search([]float32{v})
		if err != nil {
			t.Errorf("query %v: %v", v, err)
			return
		}
		results[i] = res[0].ID
	}
	// Two cohort-1 queries and one stranger; the third arrival triggers the
	// size take, which must hold the stranger back.
	wg.Add(3)
	go search(0, 1)
	time.Sleep(2 * time.Millisecond)
	go search(1, 9) // stranger: key 9, no overlap, young at take time
	time.Sleep(2 * time.Millisecond)
	start := time.Now()
	go search(2, 1)
	wg.Wait()
	elapsed := time.Since(start)

	for i, want := range []int64{1, 9, 1} {
		if results[i] != want {
			t.Fatalf("query %d routed wrong result %d", i, results[i])
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 2 {
		t.Fatalf("flushed %d batches, want 2 (cohort then held stranger): %v", len(batches), batches)
	}
	if len(batches[0]) != 2 || batches[0][0] != 1 || batches[0][1] != 1 {
		t.Fatalf("first flush %v, want the two key-1 queries", batches[0])
	}
	if len(batches[1]) != 1 || batches[1][0] != 9 {
		t.Fatalf("second flush %v, want the held stranger", batches[1])
	}
	if b.Stats().Holdbacks != 1 {
		t.Fatalf("holdbacks = %d, want 1", b.Stats().Holdbacks)
	}
	// The stranger must not have waited past its own MaxWait (plus margin).
	if elapsed > 200*time.Millisecond {
		t.Fatalf("held query took %v, far beyond MaxWait", elapsed)
	}
}

// TestGroupedEqualsFIFOResults is the batcher-level property test: the same
// random query stream through a FIFO batcher and a grouped batcher must
// return the identical per-query result set, whatever batch shapes the
// scheduler forms — grouping may only change batch composition, never
// routing. Random arrival jitter explores many shapes.
func TestGroupedEqualsFIFOResults(t *testing.T) {
	process := func(qs [][]float32) ([][]vec.Neighbor, error) {
		out := make([][]vec.Neighbor, len(qs))
		for i, q := range qs {
			// A per-query deterministic "result": ID from the query value,
			// score from its square. Any misrouting shows up as a mismatch.
			out[i] = []vec.Neighbor{{ID: int64(q[0]), Score: q[0] * q[0]}}
		}
		return out, nil
	}
	configs := map[string]Config{
		"fifo": {MaxBatch: 8, MaxWait: 2 * time.Millisecond, Process: process},
		"grouped": {MaxBatch: 8, MaxWait: 2 * time.Millisecond, Process: process,
			Predict:    func(q []float32) []uint64 { return []uint64{uint64(q[0]) % 5} },
			GroupSlack: time.Millisecond},
	}
	for seed := int64(0); seed < 3; seed++ {
		got := map[string][]vec.Neighbor{}
		var gotMu sync.Mutex
		for name, cfg := range configs {
			b, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			var wg sync.WaitGroup
			results := make([][]vec.Neighbor, 60)
			for i := 0; i < 60; i++ {
				v := float32(rng.Intn(40))
				wg.Add(1)
				go func(name string, i int, v float32) {
					defer wg.Done()
					res, err := b.Search([]float32{v})
					if err != nil {
						t.Errorf("%s query %d: %v", name, i, err)
						return
					}
					results[i] = res
				}(name, i, v)
				if rng.Intn(4) == 0 {
					time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
				}
			}
			wg.Wait()
			b.Close()
			flat := make([]vec.Neighbor, 0, 60)
			for _, r := range results {
				flat = append(flat, r...)
			}
			gotMu.Lock()
			got[name] = flat
			gotMu.Unlock()
		}
		if len(got["fifo"]) != len(got["grouped"]) {
			t.Fatalf("seed %d: result counts differ: %d vs %d", seed, len(got["fifo"]), len(got["grouped"]))
		}
		for i := range got["fifo"] {
			if got["fifo"][i] != got["grouped"][i] {
				t.Fatalf("seed %d query %d: fifo %+v != grouped %+v",
					seed, i, got["fifo"][i], got["grouped"][i])
			}
		}
	}
}

// TestGroupedSubmittersAndClose is the -race stress for the grouping
// scheduler: many submitters with overlapping/disjoint predictions race the
// slack-window re-armed timers against Close. Contract: every Search returns
// a result or the closed rejection, every accepted query is processed
// exactly once, and Close never strands a held-back query.
func TestGroupedSubmittersAndClose(t *testing.T) {
	var processed int64
	b, err := New(Config{
		MaxBatch:   8,
		MaxWait:    500 * time.Microsecond,
		GroupSlack: 250 * time.Microsecond,
		Predict:    func(q []float32) []uint64 { return []uint64{uint64(q[0]) % 3} },
		Process: func(queries [][]float32) ([][]vec.Neighbor, error) {
			atomic.AddInt64(&processed, int64(len(queries)))
			return echoProcess(queries)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	const perWorker = 40
	var served, rejected int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				v := float32(w*perWorker + i)
				res, err := b.Search([]float32{v})
				switch {
				case err == nil && len(res) == 1 && res[0].ID == int64(v):
					atomic.AddInt64(&served, 1)
				case err != nil && strings.Contains(err.Error(), "closed"):
					atomic.AddInt64(&rejected, 1)
				default:
					t.Errorf("worker %d query %d: res=%v err=%v", w, i, res, err)
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(time.Millisecond)
	b.Close()
	b.Close()
	wg.Wait()

	if served+rejected != workers*perWorker {
		t.Fatalf("accounted for %d of %d queries", served+rejected, workers*perWorker)
	}
	if got := atomic.LoadInt64(&processed); got != served {
		t.Fatalf("process saw %d queries, %d were served", got, served)
	}
	t.Logf("served %d, rejected %d, holdbacks %d", served, rejected, b.Stats().Holdbacks)
}
