package distsearch

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/evlog"
	"repro/internal/hermes"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// BatchResult is the outcome of one batched distributed search.
type BatchResult struct {
	// Results holds per-query neighbors, index-aligned with the input.
	Results [][]vec.Neighbor
	// DeepLoads[s] counts how many of the batch's queries deep-searched
	// node s — the trace input of the multi-node energy model.
	DeepLoads []int
	// SampleLatency and DeepLatency are the wall times of the two
	// scatter/gather rounds.
	SampleLatency, DeepLatency time.Duration
	// Costs is the per-query cost ledger, index-aligned with the input:
	// node-reported cells and exclusive/amortized codes plus each query's
	// even share of the wire bytes of the batched round-trips that carried
	// it. Entries stay at their wire-byte floor when every node predates the
	// v6 ledger.
	Costs []telemetry.QueryCost
	// Total is the batch-level cost rollup: codes and cells summed from the
	// node ledger entries (each node's entries conserve its distinct-scan
	// counter exactly), scan time from the node-shipped list_scan spans
	// (traced batches only), wire bytes from the coordinator's own
	// round-trip byte deltas. With v6 nodes the per-query Costs sum exactly
	// to Total component-wise — the attribution conserves the measurement.
	Total telemetry.QueryCost
	// BatchID is the batch's identity: the batch trace's ID when traced,
	// else a freshly minted ID when a flight recorder is attached (member
	// records carry it so /debug/queries?batch= can reassemble the batch),
	// else 0.
	BatchID uint64
	// Degraded counts grouped wire requests that a node served WITHOUT
	// grouped execution — a pre-v6 node that dropped the Grouped flag and
	// ran the batch per-query. 0 when grouping is off or all nodes are
	// current.
	Degraded int
}

// SearchBatch runs the hierarchical search for a whole batch using one
// round trip per node per phase: the sample batch is scattered to all nodes
// at once, shards are ranked per query, and each node then receives a single
// deep request carrying exactly the sub-batch of queries routed to it.
func (co *Coordinator) SearchBatch(queries [][]float32, p hermes.Params) (*BatchResult, error) {
	return co.searchBatch(queries, p, nil)
}

// SearchBatchTraced is SearchBatch with batch-level tracing: the trace's ID
// rides every wire request (grouped node execution stays grouped — nodes ship
// one span per shared phase plus per-query attribution, no per-query
// fallback), the coordinator records its own scatter/rank/gather spans, and
// node spans from every shard are stitched in anchored at their send times.
// When a flight recorder is attached, the batch lands as one summary record
// under the batch ID (the grouped waterfall) plus one member record per
// query carrying its ledger entry and BatchID — the /debug/queries?batch=
// view. A nil trace is exactly SearchBatch.
func (co *Coordinator) SearchBatchTraced(queries [][]float32, p hermes.Params, tr *telemetry.Trace) (*BatchResult, error) {
	return co.searchBatch(queries, p, tr)
}

func (co *Coordinator) searchBatch(queries [][]float32, p hermes.Params, tr *telemetry.Trace) (*BatchResult, error) {
	if len(queries) == 0 {
		return &BatchResult{DeepLoads: make([]int, len(co.nodes))}, nil
	}
	for i, q := range queries {
		if len(q) != co.dim {
			return nil, fmt.Errorf("distsearch: batch query %d dim %d != %d", i, len(q), co.dim)
		}
	}
	if p.K <= 0 {
		p = hermes.DefaultParams()
	}
	co.m.queries.Add(int64(len(queries)))
	co.m.batchSize.Observe(float64(len(queries)))
	batchID := tr.ID()
	if batchID == 0 && co.rec != nil {
		batchID = telemetry.NewTraceID()
	}
	start := time.Now()

	costs := make([]telemetry.QueryCost, len(queries))
	var total telemetry.QueryCost
	degraded := 0
	var costMu sync.Mutex

	// foldNodeResponse merges one node response's attribution into the
	// per-query ledger and the batch totals: node-reported per-query entries
	// (index-aligned with idx), an even split of the round-trip's wire bytes
	// across the queries the request carried, and the independently sourced
	// totals (distinct codes scanned, list_scan span time, wire bytes).
	foldNodeResponse := func(resp *Response, wire int64, idx []int, op string) {
		costMu.Lock()
		defer costMu.Unlock()
		for slot, c := range resp.Costs {
			if slot >= len(idx) {
				break
			}
			costs[idx[slot]].Add(c)
		}
		for slot, share := range telemetry.AttributeTotal(wire, make([]int64, len(idx))) {
			costs[idx[slot]].WireBytes += share
		}
		total.WireBytes += wire
		for _, c := range resp.Costs {
			total.Cells += c.Cells
			total.SharedCells += c.SharedCells
			total.CodesExclusive += c.CodesExclusive
			total.CodesAmortized += c.CodesAmortized
		}
		for _, ws := range resp.Spans {
			if ws.Name == "list_scan" {
				total.ScanNanos += ws.DurNanos
			}
		}
		if co.grouped && !resp.GroupedExec {
			degraded++
			co.m.groupDegrades.Inc()
			co.ev.Warn("group.degrade",
				evlog.Int("shard", int64(resp.ShardID)), evlog.Str("op", op),
				evlog.Int("queries", int64(len(idx))))
		}
	}

	// allIdx is the identity index map for the sample phase, where every
	// request carries the full batch.
	allIdx := make([]int, len(queries))
	for i := range allIdx {
		allIdx[i] = i
	}

	// Phase 1 — one sample-batch request per node.
	endScatter := tr.StartSpan("sample_scatter")
	sampleScores := make([][]float32, len(co.nodes)) // [node][query]
	sampleOK := make([][]bool, len(co.nodes))
	errs := make([]error, len(co.nodes))
	var wg sync.WaitGroup
	for ni, n := range co.nodes {
		wg.Add(1)
		go func(ni int, n *nodeClient) {
			defer wg.Done()
			sendAt := time.Now()
			resp, wire, err := n.roundTripBytes(&Request{
				Op: OpSampleBatch, Queries: queries, NProbe: p.SampleNProbe,
				Grouped: co.grouped, TraceID: tr.ID(),
			})
			if err != nil {
				errs[ni] = err
				return
			}
			stitchSpans(tr, sendAt, resp.Spans)
			foldNodeResponse(resp, wire, allIdx, "sample_batch")
			scores := make([]float32, len(queries))
			oks := make([]bool, len(queries))
			for qi, res := range resp.Batch {
				if len(res) > 0 {
					scores[qi] = res[0].Score
					oks[qi] = true
				}
			}
			sampleScores[ni] = scores
			sampleOK[ni] = oks
		}(ni, n)
	}
	wg.Wait()
	endScatter()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sampleLat := time.Since(start)
	co.m.phaseSample.ObserveDuration(sampleLat)

	// Rank shards per query and build per-node deep sub-batches.
	endRank := tr.StartSpan("rank")
	type ranked struct {
		node int
		d    float32
	}
	deepQueries := make([][][]float32, len(co.nodes)) // [node] -> sub-batch
	deepQueryIdx := make([][]int, len(co.nodes))      // [node] -> original query indices
	deepLoads := make([]int, len(co.nodes))
	for qi := range queries {
		order := make([]ranked, 0, len(co.nodes))
		for ni := range co.nodes {
			if sampleOK[ni][qi] {
				order = append(order, ranked{ni, sampleScores[ni][qi]})
			}
		}
		sort.Slice(order, func(a, b int) bool { return order[a].d < order[b].d })
		deep := p.DeepClusters
		if deep > len(order) {
			deep = len(order)
		}
		for _, r := range order[:deep] {
			if p.PruneEps > 0 && float64(r.d) > (1+p.PruneEps)*float64(order[0].d) {
				break
			}
			deepQueries[r.node] = append(deepQueries[r.node], queries[qi])
			deepQueryIdx[r.node] = append(deepQueryIdx[r.node], qi)
			deepLoads[r.node]++
		}
	}
	endRank()

	// Phase 2 — one deep-batch request per loaded node.
	endGather := tr.StartSpan("deep_gather")
	deepStart := time.Now()
	merged := make([]*vec.TopK, len(queries))
	for qi := range merged {
		merged[qi] = vec.NewTopK(p.K)
	}
	var mu sync.Mutex
	for ni, n := range co.nodes {
		if len(deepQueries[ni]) == 0 {
			continue
		}
		wg.Add(1)
		go func(ni int, n *nodeClient) {
			defer wg.Done()
			sendAt := time.Now()
			resp, wire, err := n.roundTripBytes(&Request{
				Op: OpDeepBatch, Queries: deepQueries[ni], K: p.K, NProbe: p.DeepNProbe,
				Grouped: co.grouped, TraceID: tr.ID(),
			})
			if err != nil {
				errs[ni] = err
				return
			}
			stitchSpans(tr, sendAt, resp.Spans)
			foldNodeResponse(resp, wire, deepQueryIdx[ni], "deep_batch")
			mu.Lock()
			defer mu.Unlock()
			for slot, res := range resp.Batch {
				qi := deepQueryIdx[ni][slot]
				for _, nb := range res {
					merged[qi].Push(nb.ID, nb.Score)
				}
			}
		}(ni, n)
	}
	wg.Wait()
	endGather()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	deepLat := time.Since(deepStart)
	co.m.phaseDeep.ObserveDuration(deepLat)

	out := &BatchResult{
		Results:       make([][]vec.Neighbor, len(queries)),
		DeepLoads:     deepLoads,
		SampleLatency: sampleLat,
		DeepLatency:   deepLat,
		Costs:         costs,
		Total:         total,
		BatchID:       batchID,
		Degraded:      degraded,
	}
	for qi := range queries {
		out.Results[qi] = merged[qi].Results()
	}
	for _, c := range costs {
		co.m.observeCost(c)
	}
	co.recordBatch(out, queries, deepQueryIdx, tr, start)
	return out, nil
}

// recordBatch lands a completed batch in the flight recorder: one member
// record per query (fresh trace ID, the shared BatchID, its ledger entry and
// deep shards) plus one batch summary record under the batch ID itself,
// carrying the stitched grouped waterfall and the batch totals — what
// /debug/queries?batch=<id> renders. No-op without a recorder.
func (co *Coordinator) recordBatch(out *BatchResult, queries [][]float32, deepQueryIdx [][]int, tr *telemetry.Trace, start time.Time) {
	if co.rec == nil {
		return
	}
	wall := time.Since(start)
	deepNodes := make([][]int, len(queries))
	for ni, idx := range deepQueryIdx {
		for _, qi := range idx {
			deepNodes[qi] = append(deepNodes[qi], co.nodes[ni].shardID)
		}
	}
	for qi := range queries {
		qr := telemetry.QueryRecord{
			TraceID:   telemetry.NewTraceID(),
			BatchID:   out.BatchID,
			Start:     start,
			Total:     wall,
			Busy:      wall,
			DeepNodes: deepNodes[qi],
			Scanned:   out.Costs[qi].Codes(),
			Cost:      out.Costs[qi],
		}
		co.rec.Record(qr)
	}
	batch := telemetry.QueryRecord{
		TraceID: out.BatchID,
		BatchID: out.BatchID,
		Start:   start,
		Total:   wall,
		Busy:    wall,
		Scanned: out.Total.Codes(),
		Cost:    out.Total,
	}
	if tr != nil {
		batch.Spans = tr.Spans()
		_, batch.Busy = telemetry.SpanTotals(batch.Spans)
	}
	co.rec.Record(batch)
}
