package telemetry

import (
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestAttributeTotalExactSum is the ledger's conservation primitive: parts
// always sum to the total exactly, for proportional and even splits alike.
func TestAttributeTotalExactSum(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(12) + 1
		weights := make([]int64, n)
		for i := range weights {
			if rng.Intn(4) > 0 {
				weights[i] = rng.Int63n(100000)
			}
		}
		total := rng.Int63n(1 << 40)
		parts := AttributeTotal(total, weights)
		if len(parts) != n {
			t.Fatalf("got %d parts, want %d", len(parts), n)
		}
		var sum int64
		for i, p := range parts {
			if p < 0 {
				t.Fatalf("iter %d: negative part %d at %d (weights %v)", iter, p, i, weights)
			}
			if weights[i] == 0 && anyNonZero(weights) && p != 0 {
				t.Fatalf("iter %d: zero-weight part got %d (weights %v)", iter, i, weights)
			}
			sum += p
		}
		if sum != total {
			t.Fatalf("iter %d: parts sum %d != total %d (weights %v)", iter, sum, total, weights)
		}
	}
}

func anyNonZero(ws []int64) bool {
	for _, w := range ws {
		if w != 0 {
			return true
		}
	}
	return false
}

// TestAttributeTotalShapes pins the edge shapes: nil weights, single part,
// all-zero weights (even split), zero total.
func TestAttributeTotalShapes(t *testing.T) {
	if got := AttributeTotal(100, nil); got != nil {
		t.Fatalf("nil weights returned %v", got)
	}
	if got := AttributeTotal(77, []int64{5}); got[0] != 77 {
		t.Fatalf("single part = %d, want 77", got[0])
	}
	even := AttributeTotal(10, []int64{0, 0, 0})
	var sum int64
	for _, p := range even {
		if p < 3 || p > 4 {
			t.Fatalf("even split produced %v", even)
		}
		sum += p
	}
	if sum != 10 {
		t.Fatalf("even split sums to %d", sum)
	}
	for _, p := range AttributeTotal(0, []int64{3, 4}) {
		if p != 0 {
			t.Fatalf("zero total produced nonzero part")
		}
	}
}

// TestQueryCostAccessors covers the derived views the tables and histograms
// consume.
func TestQueryCostAccessors(t *testing.T) {
	var z QueryCost
	if !z.IsZero() || z.Codes() != 0 || z.SharedFrac() != 0 {
		t.Fatalf("zero value not zero: %+v", z)
	}
	c := QueryCost{Cells: 4, SharedCells: 2, CodesExclusive: 30, CodesAmortized: 10, ScanNanos: 500, WireBytes: 128}
	if c.Codes() != 40 {
		t.Fatalf("Codes = %d", c.Codes())
	}
	if got := c.SharedFrac(); got != 0.25 {
		t.Fatalf("SharedFrac = %v", got)
	}
	c.Add(QueryCost{Cells: 1, CodesAmortized: 10, WireBytes: 2})
	if c.Cells != 5 || c.CodesAmortized != 20 || c.WireBytes != 130 {
		t.Fatalf("Add produced %+v", c)
	}
	if s := c.String(); !strings.Contains(s, "codes=50") || !strings.Contains(s, "wire=130B") {
		t.Fatalf("String = %q", s)
	}
}

// batchFixture lands one batch (summary + 3 members) plus an unrelated solo
// record in a recorder.
func batchFixture(rec *Recorder) (batchID uint64, memberCosts []QueryCost) {
	batchID = uint64(0xabc0)
	memberCosts = []QueryCost{
		{Cells: 4, CodesExclusive: 100, CodesAmortized: 20, ScanNanos: 1000, WireBytes: 64},
		{Cells: 4, SharedCells: 2, CodesExclusive: 10, CodesAmortized: 90, ScanNanos: 900, WireBytes: 64},
		{Cells: 2, CodesExclusive: 50, ScanNanos: 100, WireBytes: 65},
	}
	var total QueryCost
	for i, c := range memberCosts {
		total.Add(c)
		rec.Record(QueryRecord{
			TraceID: uint64(0x1000 + i),
			BatchID: batchID,
			Start:   recAt(i),
			Total:   time.Millisecond,
			Cost:    c,
		})
	}
	rec.Record(QueryRecord{
		TraceID: batchID,
		BatchID: batchID,
		Start:   recAt(0),
		Total:   5 * time.Millisecond,
		Cost:    total,
		Spans: []Span{
			{Name: "sample_scatter", Node: NodeLocal, Start: recAt(0), Duration: time.Millisecond},
			{Name: "list_scan", Node: 2, Start: recAt(0), Duration: time.Millisecond},
		},
	})
	rec.Record(QueryRecord{TraceID: 0x9999, Start: recAt(9), Total: time.Millisecond})
	return batchID, memberCosts
}

// TestRecorderBatch pins batch reassembly: the summary record is identified
// by TraceID==BatchID, members come back oldest-first, solo records stay out.
func TestRecorderBatch(t *testing.T) {
	rec := NewRecorder(64, 0)
	batchID, memberCosts := batchFixture(rec)
	batch, members, ok := rec.Batch(batchID)
	if !ok {
		t.Fatal("Batch did not find the summary record")
	}
	if !batch.IsBatch() || batch.TraceID != batchID {
		t.Fatalf("summary = %+v", batch)
	}
	if len(members) != len(memberCosts) {
		t.Fatalf("got %d members, want %d", len(members), len(memberCosts))
	}
	var total QueryCost
	for i, m := range members {
		if m.BatchID != batchID || m.IsBatch() {
			t.Fatalf("member %d = %+v", i, m)
		}
		if i > 0 && m.Start.Before(members[i-1].Start) {
			t.Fatalf("members not oldest-first at %d", i)
		}
		total.Add(m.Cost)
	}
	// The attribution conserves the measurement: members sum to the summary.
	if total != batch.Cost {
		t.Fatalf("member costs sum %+v != batch total %+v", total, batch.Cost)
	}
	if _, _, ok := rec.Batch(0x9999); ok {
		t.Fatal("solo record reassembled as a batch")
	}
	if _, _, ok := rec.Batch(0); ok {
		t.Fatal("zero batch ID reassembled")
	}
}

// TestServeQueriesBatchView drives the /debug/queries?batch= handler: text
// renders the waterfall header and attribution table, JSON carries the
// summary and members.
func TestServeQueriesBatchView(t *testing.T) {
	rec := NewRecorder(64, 0)
	batchID, memberCosts := batchFixture(rec)

	w := httptest.NewRecorder()
	rec.ServeQueries(w, httptest.NewRequest("GET", "/debug/queries?batch=000000000000abc0", nil))
	body := w.Body.String()
	for _, want := range []string{"batch 000000000000abc0", "per-query attribution", "codes_amort", "total"} {
		if !strings.Contains(body, want) {
			t.Fatalf("batch view missing %q:\n%s", want, body)
		}
	}

	w = httptest.NewRecorder()
	rec.ServeQueries(w, httptest.NewRequest("GET", "/debug/queries?batch=000000000000abc0&format=json", nil))
	var got struct {
		Batch   QueryRecord   `json:"batch"`
		Members []QueryRecord `json:"members"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatalf("json batch view: %v\n%s", err, w.Body.String())
	}
	if got.Batch.TraceID != batchID || len(got.Members) != len(memberCosts) {
		t.Fatalf("json batch = %+v with %d members", got.Batch, len(got.Members))
	}

	w = httptest.NewRecorder()
	rec.ServeQueries(w, httptest.NewRequest("GET", "/debug/queries?batch=dead", nil))
	if w.Code != 404 {
		t.Fatalf("missing batch returned %d", w.Code)
	}
}

// TestWriteBatchAttributionTotals pins the table's totals row to the exact
// column sums.
func TestWriteBatchAttributionTotals(t *testing.T) {
	members := []QueryRecord{
		{TraceID: 1, Cost: QueryCost{Cells: 3, CodesExclusive: 7, WireBytes: 10}},
		{TraceID: 2, Cost: QueryCost{Cells: 2, CodesAmortized: 5, WireBytes: 11}},
	}
	var sb strings.Builder
	WriteBatchAttribution(&sb, members)
	out := sb.String()
	if lines := strings.Count(out, "\n"); lines != len(members)+2 {
		t.Fatalf("table has %d lines, want header+%d+total:\n%s", lines, len(members), out)
	}
	if !strings.Contains(out, "total") || !strings.Contains(out, "12") || !strings.Contains(out, "21B") {
		t.Fatalf("totals row wrong:\n%s", out)
	}
}
