#!/usr/bin/env sh
# Performance record for the serving path. Two suites run, each publishing
# a machine-readable result at the repo root:
#
#   - hermes-kernelbench: the distance kernels (scalar vs blocked at dims
#     64/128/768, plus end-to-end searcher latency and allocation counts)
#     -> BENCH_PR3.json
#   - hermes-obsbench: the observability-plane overhead (evlog emit paths,
#     SLO engine tick, store scan with an armed slow-scan detector)
#     -> BENCH_PR7.json. This one is also an acceptance gate: it exits
#     non-zero if any disabled path allocates.
#   - hermes-groupbench: context-aware query grouping (grouped vs FIFO
#     batcher policies under open-loop load, shared-scan hit rate, grouped
#     scan allocations) -> BENCH_PR8.json. Acceptance gate: it exits
#     non-zero if the grouped scan path allocates in steady state.
#   - hermes-costbench: grouped tracing and cost-ledger overhead (untraced
#     grouped scan with the ledger live, traced scan through the phase
#     timers) -> BENCH_PR9.json. Acceptance gate: it exits non-zero if the
#     untraced grouped path allocates or the traced overhead ratio exceeds
#     the recorded bound.
#
# Usage: scripts/bench.sh [extra hermes-kernelbench flags]
set -eux

cd "$(dirname "$0")/.."

go run ./cmd/hermes-kernelbench -out BENCH_PR3.json "$@"
go run ./cmd/hermes-obsbench -out BENCH_PR7.json
go run ./cmd/hermes-groupbench -out BENCH_PR8.json
go run ./cmd/hermes-costbench -out BENCH_PR9.json
