package hermes

import (
	"time"

	"repro/internal/evlog"
	"repro/internal/telemetry"
)

// now is the injectable clock seam for the flight-recorder timestamps and
// the gated scan timing in searchShard; with telemetry and recording
// disabled the hot path never reads it.
var now = time.Now

// storeMetrics holds the resolved metric handles for the in-process search
// path. The zero value (all-nil handles) makes every instrumentation site a
// no-op, so Search needs no telemetry branch.
type storeMetrics struct {
	searches      *telemetry.Counter
	searchSeconds *telemetry.Histogram
	sampleScanned *telemetry.Counter
	deepScanned   *telemetry.Counter
	// scanSeconds times individual shard scans, one handle per shard so the
	// hot path indexes a slice instead of formatting labels. Series are
	// labeled by the shard's quantizer kind, answering "where does scan time
	// go per compression scheme" straight off /metrics.
	scanSeconds []*telemetry.Histogram
	// groupedQueries / groupSharedScans account the grouped batch path:
	// queries served through SearchGrouped and the per-cell code streams the
	// grouping avoided versus per-query execution.
	groupedQueries   *telemetry.Counter
	groupSharedScans *telemetry.Counter
}

// scanHist returns the histogram timing scans of shard s, or nil when
// telemetry is disabled (zero value) or s is out of range. Callers gate
// their clock reads on the returned handle and record through
// ObserveDuration: unlike Histogram.Timer, whose stop func is a fresh
// closure capturing the start time, this keeps the scan path
// allocation-free (hotpathalloc flagged the Timer call in searchShard).
func (m *storeMetrics) scanHist(s int) *telemetry.Histogram {
	if s < len(m.scanSeconds) {
		return m.scanSeconds[s]
	}
	return nil
}

// SetEvents points the store's event log at ev and arms the slow-scan
// detector: a shard scan slower than slowScan emits one "store.slow_scan"
// warning carrying the shard and duration. Detection rides the same timing
// gate as SetTelemetry's scan histograms, and the emit itself is gated on
// the threshold crossing, so the common path stays clock-free and
// allocation-free; a nil ev or non-positive slowScan disables it entirely.
func (st *Store) SetEvents(ev *evlog.Log, slowScan time.Duration) {
	st.ev = ev
	st.slowScan = slowScan
}

// SetRecorder points the store's flight-recorder hook at rec: every Search/
// SearchTraced appends one QueryRecord (trace ID, total, phase spans when
// traced, shards deep-searched, vectors scanned). Recording copies the
// record by value into a preallocated ring slot, so the pooled zero-
// allocation scan path is preserved for untraced queries up to that single
// DeepNodes copy. A nil rec disables recording.
func (st *Store) SetRecorder(rec *telemetry.Recorder) { st.rec = rec }

// SetTelemetry publishes the store's search-path metrics (hermes_store_*)
// into reg. Handles are resolved once here, so the per-query overhead is a
// few atomic adds. A nil reg disables instrumentation.
func (st *Store) SetTelemetry(reg *telemetry.Registry) {
	scan := make([]*telemetry.Histogram, len(st.Shards))
	for s, sh := range st.Shards {
		scan[s] = reg.Histogram("hermes_store_scan_seconds",
			"Per-shard scan latency by quantizer kind.", telemetry.DefLatencyBuckets,
			"quantizer", sh.Index.QuantizerName())
	}
	st.met = storeMetrics{
		searches: reg.Counter("hermes_store_searches_total",
			"Hierarchical searches served by the in-process store."),
		searchSeconds: reg.Histogram("hermes_store_search_seconds",
			"End-to-end hierarchical search latency.", telemetry.DefLatencyBuckets),
		sampleScanned: reg.Counter("hermes_store_sample_scanned_total",
			"Vectors scanned by sample phases."),
		deepScanned: reg.Counter("hermes_store_deep_scanned_total",
			"Vectors scanned by deep phases."),
		scanSeconds: scan,
		groupedQueries: reg.Counter("hermes_store_grouped_queries_total",
			"Queries served through the grouped batch path."),
		groupSharedScans: reg.Counter("hermes_store_group_shared_scans_total",
			"Per-cell code streams saved by grouped execution."),
	}
}
