// Package trace generates and analyzes query traces. The paper derives its
// cluster-access statistics (Figure 13) and its multi-node aggregation
// inputs (Figure 15) from a trace of which shards each query's deep search
// touches, using Natural Questions queries; here traces are produced by
// running the actual hierarchical search over the synthetic query stream.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/corpus"
	"repro/internal/hermes"
)

// Entry records one query's shard usage.
type Entry struct {
	// QueryID indexes into the originating query set.
	QueryID int
	// DeepShards lists the shards deep-searched for this query, ranked.
	DeepShards []int
}

// Trace is an ordered set of per-query shard access records.
type Trace struct {
	NumShards int
	Entries   []Entry
}

// Collect runs the Hermes hierarchical search for every query and records
// the deep-search shard choices.
func Collect(st *hermes.Store, qs *corpus.QuerySet, p hermes.Params) *Trace {
	tr := &Trace{NumShards: st.NumShards()}
	for i := 0; i < qs.Vectors.Len(); i++ {
		_, stats := st.Search(qs.Vectors.Row(i), p)
		shards := append([]int(nil), stats.DeepShards...)
		tr.Entries = append(tr.Entries, Entry{QueryID: i, DeepShards: shards})
	}
	return tr
}

// AccessCounts returns how many deep searches each shard received — the
// Figure 13 access-frequency histogram.
func (tr *Trace) AccessCounts() []int {
	counts := make([]int, tr.NumShards)
	for _, e := range tr.Entries {
		for _, s := range e.DeepShards {
			if s >= 0 && s < tr.NumShards {
				counts[s]++
			}
		}
	}
	return counts
}

// AccessImbalance returns max/min over shard access counts; +Inf is avoided
// by treating zero-access shards as the minimum of 1 access would —
// returning the ratio against the smallest non-zero count and flagging
// unvisited shards in the second return.
func (tr *Trace) AccessImbalance() (ratio float64, unvisited int) {
	counts := tr.AccessCounts()
	minC, maxC := -1, 0
	for _, c := range counts {
		if c == 0 {
			unvisited++
			continue
		}
		if minC < 0 || c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if minC <= 0 {
		return 0, unvisited
	}
	return float64(maxC) / float64(minC), unvisited
}

// PerQueryLoad maps the trace onto per-shard batch sizes: for each batch of
// queries, how many of the batch's deep searches landed on each shard. The
// multi-node model uses this to size each node's work per batch window.
type PerQueryLoad struct {
	// ShardBatch[s] is the number of queries in the batch whose deep
	// search touched shard s.
	ShardBatch []int
}

// BatchLoads splits the trace into consecutive batches of the given size and
// computes each batch's per-shard load. A trailing partial batch is
// included.
func (tr *Trace) BatchLoads(batchSize int) []PerQueryLoad {
	if batchSize <= 0 {
		panic(fmt.Sprintf("trace: batchSize must be positive, got %d", batchSize))
	}
	var out []PerQueryLoad
	for start := 0; start < len(tr.Entries); start += batchSize {
		end := start + batchSize
		if end > len(tr.Entries) {
			end = len(tr.Entries)
		}
		load := PerQueryLoad{ShardBatch: make([]int, tr.NumShards)}
		for _, e := range tr.Entries[start:end] {
			for _, s := range e.DeepShards {
				load.ShardBatch[s]++
			}
		}
		out = append(out, load)
	}
	return out
}

// TopShards returns shard indices ordered by descending access count.
func (tr *Trace) TopShards() []int {
	counts := tr.AccessCounts()
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
	return order
}
