package distsearch

import (
	"testing"
	"time"

	"repro/internal/batcher"
	"repro/internal/hermes"
	"repro/internal/loadgen"
	"repro/internal/vec"
)

// TestServingStackIntegration stacks the full serving path: an open-loop
// Poisson load (loadgen) feeds single queries into a batching front-end
// (batcher) that flushes batches through the distributed coordinator's
// batched wire protocol to real TCP shard nodes.
func TestServingStackIntegration(t *testing.T) {
	_, _, co, c := cluster(t, 1500, 6)
	p := hermes.DefaultParams()

	b, err := batcher.New(batcher.Config{
		MaxBatch: 16,
		MaxWait:  2 * time.Millisecond,
		Process: func(queries [][]float32) ([][]vec.Neighbor, error) {
			res, err := co.SearchBatch(queries, p)
			if err != nil {
				return nil, err
			}
			return res.Results, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	qs := c.Queries(200, 71)
	rep, err := loadgen.Run(loadgen.Config{
		TargetQPS:   2000,
		Queries:     200,
		Concurrency: 32,
		Seed:        73,
	}, func(i int) error {
		res, err := b.Search(qs.Vectors.Row(i % qs.Vectors.Len()))
		if err != nil {
			return err
		}
		if len(res) == 0 {
			t.Errorf("query %d returned nothing", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 200 || rep.Failed != 0 {
		t.Fatalf("completed %d failed %d", rep.Completed, rep.Failed)
	}
	st := b.Stats()
	if st.QueriesServed != 200 {
		t.Fatalf("batcher served %d", st.QueriesServed)
	}
	// Batching must actually aggregate under this arrival rate.
	if st.MeanBatch < 2 {
		t.Fatalf("mean batch %.1f; front-end failed to batch", st.MeanBatch)
	}
	t.Logf("served 200 queries in %d flushes (mean batch %.1f), sojourn p95 %v",
		st.Flushes, st.MeanBatch, rep.Sojourn.P95)
}
