package kmeans

import (
	"math/rand"
	"testing"
)

// TestInjectedRandMatchesSeedPath pins the Config.Rand contract: injecting
// rand.New(rand.NewSource(s)) is bit-identical to setting Seed: s, so
// callers can thread one generator through a larger build without changing
// results.
func TestInjectedRandMatchesSeedPath(t *testing.T) {
	data, _ := blobs(240, 4, 6, 3)
	bySeed, err := Train(data, Config{K: 4, Seed: 9, PlusPlus: true})
	if err != nil {
		t.Fatal(err)
	}
	byRand, err := Train(data, Config{K: 4, Seed: 777 /* ignored */, Rand: rand.New(rand.NewSource(9)), PlusPlus: true})
	if err != nil {
		t.Fatal(err)
	}
	if bySeed.Inertia != byRand.Inertia || bySeed.Iters != byRand.Iters {
		t.Fatalf("inertia/iters diverge: seed=(%v,%d) rand=(%v,%d)",
			bySeed.Inertia, bySeed.Iters, byRand.Inertia, byRand.Iters)
	}
	for c := 0; c < 4; c++ {
		a, b := bySeed.Centroids.Row(c), byRand.Centroids.Row(c)
		for d := range a {
			if a[d] != b[d] {
				t.Fatalf("centroid %d dim %d: %v != %v", c, d, a[d], b[d])
			}
		}
	}
	for i := range bySeed.Assign {
		if bySeed.Assign[i] != byRand.Assign[i] {
			t.Fatalf("assignment %d diverges", i)
		}
	}
}

// TestBestSeedIgnoresInjectedRand: the seed sweep must re-derive the RNG
// per seed, otherwise every candidate would share one stream and the
// imbalance minimization would be meaningless.
func TestBestSeedIgnoresInjectedRand(t *testing.T) {
	data, _ := blobs(240, 4, 6, 3)
	seeds := []int64{1, 2, 3}
	plain, plainSeed, err := BestSeed(data, Config{K: 4, PlusPlus: true}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	injected, injectedSeed, err := BestSeed(data, Config{K: 4, PlusPlus: true, Rand: rand.New(rand.NewSource(999))}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if plainSeed != injectedSeed || plain.Inertia != injected.Inertia {
		t.Fatalf("BestSeed changed under injected Rand: (%d,%v) vs (%d,%v)",
			plainSeed, plain.Inertia, injectedSeed, injected.Inertia)
	}
}
