package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// JSONFinding is one finding in the machine-readable report. File paths are
// module-root-relative and slash-separated so the report is stable across
// checkouts and operating systems.
type JSONFinding struct {
	Check string `json:"check"`
	File  string `json:"file"`
	Line  int    `json:"line"`
	Col   int    `json:"col"`
	Msg   string `json:"msg"`
}

// Report is the -json output of a driver run: what ran, over what, and what
// it found, in deterministic order.
type Report struct {
	Module    string        `json:"module"`
	Analyzers []string      `json:"analyzers"`
	Packages  []string      `json:"packages"`
	Findings  []JSONFinding `json:"findings"`
}

// NewReport assembles the machine-readable report. moduleRoot anchors the
// relative file paths; findings must already be in SortFindings order.
func NewReport(modulePath, moduleRoot string, pkgs []*Package, analyzers []*Analyzer, findings []Finding) *Report {
	r := &Report{
		Module:    modulePath,
		Analyzers: []string{},
		Packages:  []string{},
		Findings:  []JSONFinding{},
	}
	for _, a := range analyzers {
		r.Analyzers = append(r.Analyzers, a.Name)
	}
	for _, pkg := range pkgs {
		r.Packages = append(r.Packages, pkg.Path)
	}
	for _, f := range findings {
		r.Findings = append(r.Findings, JSONFinding{
			Check: f.Check,
			File:  moduleRel(moduleRoot, f.Pos.Filename),
			Line:  f.Pos.Line,
			Col:   f.Pos.Column,
			Msg:   f.Msg,
		})
	}
	return r
}

// MarshalIndent renders the report as stable, human-diffable JSON with a
// trailing newline (golden files and CI artifacts want byte-exactness).
func (r *Report) MarshalIndent() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// moduleRel maps an absolute filename under root to its slash-separated
// relative form; files outside the module keep their absolute path.
func moduleRel(root, filename string) string {
	if root == "" {
		return filename
	}
	if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filename
}

// Baseline is a committed set of accepted findings. A baselined finding is
// matched by (check, file, message) — not line/column, so unrelated edits
// shifting code around do not invalidate it — with multiset semantics: a
// baseline entry absorbs at most one occurrence per count.
//
// The baseline exists for adopting a new analyzer over a codebase with
// pre-existing findings without turning the gate off; the goal state is an
// empty baseline, which is why unused entries are reported (Stale).
type Baseline struct {
	Findings []JSONFinding `json:"findings"`
}

// LoadBaseline reads a baseline file written by WriteBaseline (or a full
// -json report; only check/file/msg are consulted).
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline writes the findings as a baseline file.
func WriteBaseline(path, moduleRoot string, findings []Finding) error {
	b := Baseline{Findings: []JSONFinding{}}
	for _, f := range findings {
		b.Findings = append(b.Findings, JSONFinding{
			Check: f.Check,
			File:  moduleRel(moduleRoot, f.Pos.Filename),
			Line:  f.Pos.Line,
			Col:   f.Pos.Column,
			Msg:   f.Msg,
		})
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits findings into the ones not covered by the baseline (kept)
// and the count it absorbed. Stale reports baseline entries that matched
// nothing — fixed findings whose entries should be deleted.
func (b *Baseline) Filter(findings []Finding, moduleRoot string) (kept []Finding, absorbed int, stale []JSONFinding) {
	budget := make(map[[3]string]int)
	for _, e := range b.Findings {
		budget[[3]string{e.Check, e.File, e.Msg}]++
	}
	for _, f := range findings {
		key := [3]string{f.Check, moduleRel(moduleRoot, f.Pos.Filename), f.Msg}
		if budget[key] > 0 {
			budget[key]--
			absorbed++
			continue
		}
		kept = append(kept, f)
	}
	for _, e := range b.Findings {
		key := [3]string{e.Check, e.File, e.Msg}
		if budget[key] > 0 {
			budget[key]--
			stale = append(stale, e)
		}
	}
	return kept, absorbed, stale
}
