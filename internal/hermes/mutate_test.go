package hermes

import (
	"testing"

	"repro/internal/vec"
)

func TestStoreAddRoutesToSimilarShard(t *testing.T) {
	c := testCorpus(t, 1000, 5)
	st := buildStore(t, c.Vectors, 5)

	// A new document near topic 0's center must land in the shard that
	// holds topic 0's documents and immediately be retrievable.
	proto := vec.Copy(c.Centers.Row(0))
	newID := int64(1_000_000)
	shard, err := st.Add(newID, proto)
	if err != nil {
		t.Fatal(err)
	}
	res, stats := st.Search(proto, DefaultParams())
	if len(res) == 0 || res[0].ID != newID {
		t.Fatalf("new document not retrieved: %+v", res)
	}
	found := false
	for _, s := range stats.DeepShards {
		if s == shard {
			found = true
		}
	}
	if !found {
		t.Fatalf("deep search skipped the ingest shard %d (deep=%v)", shard, stats.DeepShards)
	}
}

func TestStoreAddValidation(t *testing.T) {
	c := testCorpus(t, 500, 3)
	st := buildStore(t, c.Vectors, 3)
	if _, err := st.Add(1, []float32{1, 2}); err == nil {
		t.Fatal("dim mismatch should error")
	}
	empty := &Store{}
	if _, err := empty.Add(1, []float32{1}); err == nil {
		t.Fatal("empty store should error")
	}
}

func TestStoreRemove(t *testing.T) {
	c := testCorpus(t, 800, 4)
	st := buildStore(t, c.Vectors, 4)
	before := st.Len()

	wantShard := st.Assign[13]
	shard, ok := st.Remove(13)
	if !ok || shard != wantShard {
		t.Fatalf("Remove(13) = %d,%v, want shard %d", shard, ok, wantShard)
	}
	if st.Len() != before-1 {
		t.Fatalf("Len after remove = %d", st.Len())
	}
	// Removed document no longer retrievable via its own vector.
	res, _ := st.Search(c.Vectors.Row(13), DefaultParams())
	for _, n := range res {
		if n.ID == 13 {
			t.Fatal("removed document still retrieved")
		}
	}
	// Unknown ID.
	if _, ok := st.Remove(99999); ok {
		t.Fatal("removing unknown id should fail")
	}
}

func TestStoreCompact(t *testing.T) {
	c := testCorpus(t, 600, 3)
	st := buildStore(t, c.Vectors, 3)
	memBefore := st.MemoryBytes()
	for id := int64(0); id < 200; id++ {
		if _, ok := st.Remove(id); !ok {
			t.Fatalf("remove %d failed", id)
		}
	}
	st.Compact()
	if st.MemoryBytes() >= memBefore {
		t.Fatal("Compact did not reclaim memory")
	}
	if st.Len() != 400 {
		t.Fatalf("Len after compact = %d", st.Len())
	}
	// Survivors remain retrievable.
	res, _ := st.Search(c.Vectors.Row(500), DefaultParams())
	if len(res) == 0 {
		t.Fatal("post-compact search returned nothing")
	}
}

func TestStoreSizesTrackMutation(t *testing.T) {
	c := testCorpus(t, 400, 2)
	st := buildStore(t, c.Vectors, 2)
	shard, err := st.Add(7777, vec.Copy(c.Vectors.Row(0)))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, s := range st.Sizes() {
		sum += s
	}
	if sum != 401 {
		t.Fatalf("sizes sum %d after add", sum)
	}
	if _, ok := st.Remove(7777); !ok {
		t.Fatal("remove of ingested doc failed")
	}
	if st.Shards[shard].Size != st.Shards[shard].Index.Len() {
		t.Fatal("Shard.Size out of sync with index")
	}
}
