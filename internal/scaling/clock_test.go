package scaling

import (
	"testing"
	"time"
)

// TestClockSeamInjectable stubs the package clock seam (the only sanctioned
// wall-clock access; see the wallclock lint check) with a fake that ticks
// 1ms per read, making the measured sweep fully deterministic: every
// (start, elapsed) pair spans exactly one tick.
func TestClockSeamInjectable(t *testing.T) {
	saved := now
	defer func() { now = saved }()
	var ticks int64
	base := time.Unix(0, 0)
	now = func() time.Time {
		ticks++
		return base.Add(time.Duration(ticks) * time.Millisecond)
	}

	const queries = 4
	m, err := Calibrate(SweepConfig{
		Dim:     8,
		Sizes:   []int{256, 512},
		Queries: queries,
		Repeats: 2,
		Seed:    1,
	}, gaussianGen)
	if err != nil {
		t.Fatal(err)
	}
	want := time.Millisecond / queries
	for i, p := range m.Points {
		if !p.Measured {
			continue
		}
		if p.LatencyPerQuery != want {
			t.Fatalf("point %d latency %v under fake clock, want %v", i, p.LatencyPerQuery, want)
		}
	}
}
