package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The want harness: fixture packages under testdata/src annotate expected
// findings in place with trailing comments of the form
//
//	// want "substring" "another substring"
//
// Every finding must be claimed by a want on its exact file:line (substring
// match against the message), and every want must be claimed by a finding.
// This keeps expectations next to the code they describe instead of in a
// line-number table that rots on every fixture edit.

var wantCommentRe = regexp.MustCompile(`//\s*want\s((?:\s*"(?:[^"\\]|\\.)*")+)\s*$`)
var wantStringRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseWants scans the fixture's .go files for want comments, returning
// expectations keyed by "filebase:line".
func parseWants(t *testing.T, dir string) map[string][]string {
	t.Helper()
	wants := make(map[string][]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir %s: %v", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading fixture %s: %v", e.Name(), err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantCommentRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", e.Name(), i+1)
			for _, sm := range wantStringRe.FindAllStringSubmatch(m[1], -1) {
				wants[key] = append(wants[key], sm[1])
			}
		}
	}
	return wants
}

// runWantFixture loads testdata/src/<name>, runs the analyzers, and checks
// findings against the fixture's want comments. Facts are computed over the
// fixture itself so cross-function fact propagation is exercised in-package.
func runWantFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	pkg := loadFixture(t, name)
	runWantFixturePkg(t, pkg, analyzers, RunOptions{Facts: ComputeFacts([]*Package{pkg})})
}

// runWantFixturePkg is runWantFixture for callers that need to build the
// RunOptions themselves (escapeaudit fixtures fabricate EscapeDiags).
func runWantFixturePkg(t *testing.T, pkg *Package, analyzers []*Analyzer, opts RunOptions) {
	t.Helper()
	findings := RunPackageOpts(pkg, analyzers, opts)
	wants := parseWants(t, pkg.Dir)

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
		claimed := false
		for i, w := range wants[key] {
			if strings.Contains(f.Msg, w) {
				wants[key] = append(wants[key][:i], wants[key][i+1:]...)
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected finding at %s: %s (%s)", key, f.Msg, f.Check)
		}
	}
	var leftover []string
	for key, ws := range wants {
		for _, w := range ws {
			leftover = append(leftover, fmt.Sprintf("%s: want %q not matched", key, w))
		}
	}
	sort.Strings(leftover)
	for _, l := range leftover {
		t.Error(l)
	}
}

func TestLockHeldIO(t *testing.T)       { runWantFixture(t, "lockheldio", []*Analyzer{LockHeldIO}) }
func TestHotPathAlloc(t *testing.T)     { runWantFixture(t, "hotpathalloc", []*Analyzer{HotPathAlloc}) }
func TestGoroutineLeak(t *testing.T)    { runWantFixture(t, "goroutineleak", []*Analyzer{GoroutineLeak}) }
func TestLockOrderFixture(t *testing.T) { runWantFixture(t, "lockorder", []*Analyzer{LockOrder}) }
func TestMetricName(t *testing.T)       { runWantFixture(t, "metricname", []*Analyzer{MetricName}) }

// TestLockOrderWitnesses pins the shape the fixture's want substrings
// cannot: one finding per cycle, and the A/B finding spells out BOTH
// conflicting acquisition paths so the report alone localizes the deadlock.
func TestLockOrderWitnesses(t *testing.T) {
	pkg := loadFixture(t, "lockorder")
	opts := RunOptions{Facts: ComputeFacts([]*Package{pkg})}
	findings := RunPackageOpts(pkg, []*Analyzer{LockOrder}, opts)
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (A/B and C/D cycles; E/F suppressed): %v", len(findings), findings)
	}
	ab := findings[0].Msg
	for _, w := range []string{
		"lockorder.A.mu -> lockorder.B.mu", "in lockorder.ab",
		"lockorder.B.mu -> lockorder.A.mu", "in lockorder.ba",
	} {
		if !strings.Contains(ab, w) {
			t.Errorf("A/B cycle finding missing witness %q: %s", w, ab)
		}
	}
	cd := findings[1].Msg
	for _, w := range []string{
		"lockorder.C.mu -> lockorder.D.mu", "via call to lockorder.bumpD",
		"lockorder.D.mu -> lockorder.C.mu", "in lockorder.dThenC",
	} {
		if !strings.Contains(cd, w) {
			t.Errorf("C/D cycle finding missing witness %q: %s", w, cd)
		}
	}
}

func TestPoolEscape(t *testing.T)   { runWantFixture(t, "poolescape", []*Analyzer{PoolEscape}) }
func TestPoolRetain(t *testing.T)   { runWantFixture(t, "poolretain", []*Analyzer{PoolRetain}) }
func TestCtxFlow(t *testing.T)      { runWantFixture(t, "ctxflow", []*Analyzer{CtxFlow}) }
func TestChanBound(t *testing.T)    { runWantFixture(t, "chanbound", []*Analyzer{ChanBound}) }
func TestDeferInLoop(t *testing.T)  { runWantFixture(t, "deferinloop", []*Analyzer{DeferInLoop}) }
func TestHotPathClock(t *testing.T) { runWantFixture(t, "hotpathclock", []*Analyzer{HotPathClock}) }

// TestWireLockBroken exercises every diff class against a lock file that
// records the pre-refactor schema: moved fields (both directions), a removed
// field, a type change, an unrecorded append, a vanished struct, and a new
// unrecorded struct.
func TestWireLockBroken(t *testing.T) { runWantFixture(t, "wirelockbroken", []*Analyzer{WireLock}) }

// TestWireLockClean pins the happy path: a package whose committed wire.lock
// matches its //hermes:wire schema yields zero findings, and the committed
// artifact is byte-identical to what -update-wirelock would regenerate.
func TestWireLockClean(t *testing.T) {
	pkg := loadFixture(t, "wirelock")
	findings := RunPackage(pkg, []*Analyzer{WireLock})
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
	committed, err := os.ReadFile(filepath.Join(pkg.Dir, WireLockFile))
	if err != nil {
		t.Fatalf("reading committed lock: %v", err)
	}
	if got := GenerateWireLock(pkg); string(got) != string(committed) {
		t.Errorf("GenerateWireLock drifted from committed %s:\n--- generated ---\n%s--- committed ---\n%s", WireLockFile, got, committed)
	}
}
