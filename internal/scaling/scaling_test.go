package scaling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vec"
)

func gaussianGen(n, dim int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		for d := 0; d < dim; d++ {
			m.Row(i)[d] = float32(rng.NormFloat64())
		}
	}
	return m
}

func TestFitExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	f := Fit(x, y)
	if math.Abs(f.Slope-2) > 1e-9 || math.Abs(f.Intercept-1) > 1e-9 {
		t.Fatalf("fit = %+v, want slope 2 intercept 1", f)
	}
	if f.R2 < 0.999999 {
		t.Fatalf("R2 = %v for exact line", f.R2)
	}
}

func TestFitConstant(t *testing.T) {
	f := Fit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if math.Abs(f.Slope) > 1e-9 || math.Abs(f.Intercept-5) > 1e-9 {
		t.Fatalf("constant fit = %+v", f)
	}
}

func TestFitDegenerate(t *testing.T) {
	// All x equal: slope falls back to 0, intercept to the mean.
	f := Fit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if f.Slope != 0 || math.Abs(f.Intercept-2) > 1e-9 {
		t.Fatalf("degenerate fit = %+v", f)
	}
}

func TestFitPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fit([]float64{1}, []float64{1, 2})
}

// Property: residuals of the fitted line are no larger than those of any
// perturbed line (least-squares optimality, spot-checked).
func TestFitIsLeastSquares(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 3
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i) + rng.Float64()
			y[i] = 3*x[i] + 2 + rng.NormFloat64()
		}
		fit := Fit(x, y)
		ss := func(slope, intercept float64) float64 {
			var s float64
			for i := range x {
				r := y[i] - (slope*x[i] + intercept)
				s += r * r
			}
			return s
		}
		best := ss(fit.Slope, fit.Intercept)
		for _, d := range []float64{-0.1, 0.1} {
			if ss(fit.Slope+d, fit.Intercept) < best-1e-9 {
				return false
			}
			if ss(fit.Slope, fit.Intercept+d) < best-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateVerifiesLinearScaling(t *testing.T) {
	// The Fig. 7 claim: IVF memory and latency scale ~linearly in
	// datastore size for the real implementation.
	m, err := Calibrate(SweepConfig{
		Dim:     16,
		Sizes:   []int{1000, 2000, 4000, 8000},
		Queries: 32,
		Repeats: 5,
		Seed:    1,
	}, gaussianGen)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Points) != 4 {
		t.Fatalf("got %d points", len(m.Points))
	}
	for _, p := range m.Points {
		if !p.Measured {
			t.Fatal("sweep points must be marked measured")
		}
		if p.LatencyPerQuery <= 0 || p.MemoryBytes <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	if !m.IsLinear(0.85) {
		t.Fatalf("scaling not linear: latency R2=%v memory R2=%v", m.LatencyFit.R2, m.MemoryFit.R2)
	}
	if m.BytesPerToken() <= 0 {
		t.Fatalf("BytesPerToken = %v", m.BytesPerToken())
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate(SweepConfig{Dim: 4, Sizes: []int{100}}, gaussianGen); err == nil {
		t.Fatal("single-size sweep should error")
	}
}

func TestExtrapolateMonotone(t *testing.T) {
	m, err := Calibrate(SweepConfig{Dim: 8, Sizes: []int{500, 1000, 2000}, Seed: 2}, gaussianGen)
	if err != nil {
		t.Fatal(err)
	}
	small := m.Extrapolate(1_000_000)
	big := m.Extrapolate(10_000_000)
	if small.Measured || big.Measured {
		t.Fatal("extrapolations must not be marked measured")
	}
	if big.LatencyPerQuery <= small.LatencyPerQuery {
		t.Fatalf("extrapolated latency not increasing: %v vs %v", big.LatencyPerQuery, small.LatencyPerQuery)
	}
	if big.MemoryBytes <= small.MemoryBytes {
		t.Fatal("extrapolated memory not increasing")
	}
	// 10x tokens ≈ 10x memory (linear, intercept small).
	ratio := float64(big.MemoryBytes) / float64(small.MemoryBytes)
	if ratio < 5 || ratio > 15 {
		t.Fatalf("memory extrapolation ratio %v, want ~10", ratio)
	}
}

func TestExtrapolateClampsNegative(t *testing.T) {
	m := &Model{
		LatencyFit: LinearFit{Slope: 1e-12, Intercept: -1},
		MemoryFit:  LinearFit{Slope: 1, Intercept: -1e9},
	}
	p := m.Extrapolate(10)
	if p.LatencyPerQuery != time.Duration(0) || p.MemoryBytes != 0 {
		t.Fatalf("negative predictions must clamp to 0: %+v", p)
	}
}
