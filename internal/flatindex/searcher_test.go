package flatindex

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/vec"
)

func randIndex(t testing.TB, n, dim int, seed int64) (*Index, *vec.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := vec.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		for d := 0; d < dim; d++ {
			data.Row(i)[d] = float32(rng.NormFloat64())
		}
	}
	ix := New(dim)
	ix.AddBatch(0, data)
	return ix, data
}

// TestSearcherMatchesScalarScan pins the blocked searcher path to the naive
// row-by-row scan bit-for-bit: vec.L2SquaredBatch uses the same association
// as vec.L2Squared, so scores must be identical, not just close. Sizes
// straddle the scanBlock boundary deliberately.
func TestSearcherMatchesScalarScan(t *testing.T) {
	for _, n := range []int{5, scanBlock - 1, scanBlock, scanBlock + 3, 3*scanBlock + 17} {
		ix, data := randIndex(t, n, 12, int64(n))
		s := ix.NewSearcher()
		for qi := 0; qi < 4; qi++ {
			q := data.Row(qi * (n / 4))
			tk := vec.NewTopK(9)
			for i := 0; i < n; i++ {
				tk.Push(ix.ids[i], vec.L2Squared(q, data.Row(i)))
			}
			want := tk.Results()
			got := s.Search(nil, q, 9)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d query %d: blocked %v != scalar %v", n, qi, got, want)
			}
			pooled := ix.Search(q, 9)
			if !reflect.DeepEqual(pooled, want) {
				t.Fatalf("n=%d query %d: pooled %v != scalar %v", n, qi, pooled, want)
			}
		}
	}
}

// TestSearcherZeroAlloc: a warmed Searcher with a recycled result slice does
// zero heap allocations per exact query.
func TestSearcherZeroAlloc(t *testing.T) {
	ix, data := randIndex(t, 700, 16, 3)
	s := ix.NewSearcher()
	dst := make([]vec.Neighbor, 0, 16)
	dst = s.Search(dst[:0], data.Row(0), 10)
	allocs := testing.AllocsPerRun(50, func() {
		dst = s.Search(dst[:0], data.Row(1), 10)
	})
	if allocs != 0 {
		t.Fatalf("%v allocations per query", allocs)
	}
}

// BenchmarkFlatSearcher10k mirrors BenchmarkFlatSearch10k but holds a warmed
// Searcher, isolating the blocked zero-alloc path.
func BenchmarkFlatSearcher10k(b *testing.B) {
	ix, data := randIndex(b, 10000, 64, 1)
	s := ix.NewSearcher()
	q := data.Row(0)
	dst := make([]vec.Neighbor, 0, 16)
	dst = s.Search(dst[:0], q, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = s.Search(dst[:0], q, 10)
	}
}
