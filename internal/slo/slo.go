// Package slo turns the serving path's raw telemetry into service-level
// objectives and error-budget burn rates — the admission-control signal the
// front door (ROADMAP item 1) and load-driven placement (item 4) consume.
//
// An Objective declares what "good" means (latency under a threshold at a
// target fraction, or plain availability); the Engine samples cumulative
// good/total counts from existing metrics (histogram bucket counts, error
// counters) into multi-window sliding counters and computes burn rates:
//
//	burn = (bad fraction in window) / (1 - target)
//
// Burn 1.0 means the error budget is being consumed exactly at the rate
// that exhausts it by the end of the SLO period; the conventional
// multi-window reading (Google SRE workbook ch. 5) pairs a fast window
// (default 5m) that reacts quickly with a slow window (default 1h) that
// filters blips. The engine reports Burning when the fast-window burn
// reaches 1.0 — budget is draining faster than sustainable — and budget
// remaining over the slow window.
//
// The engine is pull-based and clock-seamed: nothing ticks unless Tick (or
// a Collect-triggered scrape) runs, and tests freeze time to step windows
// deterministically.
package slo

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// now is the injectable clock seam; tests freeze it.
var now = time.Now

// Kind discriminates objective flavors.
type Kind int

const (
	// KindLatency counts an event good when it completed within Threshold.
	KindLatency Kind = iota
	// KindAvailability counts an event good when it did not error.
	KindAvailability
)

func (k Kind) String() string {
	switch k {
	case KindLatency:
		return "latency"
	case KindAvailability:
		return "availability"
	default:
		return "unknown"
	}
}

// Objective is one declarative service-level objective.
type Objective struct {
	// Name labels the objective in metrics and reports.
	Name string
	Kind Kind
	// Target is the good fraction promised, in (0,1) — e.g. 0.99.
	Target float64
	// Threshold is the latency bound for KindLatency, unused otherwise.
	// Thresholds should sit on a histogram bucket bound; in-between values
	// are effectively rounded up to the next bound.
	Threshold time.Duration
}

// Validate rejects malformed objectives before they reach the engine.
func (o Objective) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("slo: objective needs a name")
	}
	if o.Target <= 0 || o.Target >= 1 {
		return fmt.Errorf("slo: objective %s: target %v outside (0,1)", o.Name, o.Target)
	}
	if o.Kind == KindLatency && o.Threshold <= 0 {
		return fmt.Errorf("slo: objective %s: latency objective needs a positive threshold", o.Name)
	}
	return nil
}

// ParseObjectives parses the CLI/config objective list format: a
// comma-separated sequence of
//
//	<name>=latency:<duration>@<target>
//	<name>=availability@<target>
//
// e.g. `search=latency:250ms@0.95,errors=availability@0.999`. An empty
// string parses to nil.
func ParseObjectives(s string) ([]Objective, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Objective
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		name, spec, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("slo: objective %q: want <name>=<spec>", part)
		}
		spec, targetStr, ok := strings.Cut(spec, "@")
		if !ok {
			return nil, fmt.Errorf("slo: objective %q: missing @<target>", part)
		}
		target, err := strconv.ParseFloat(targetStr, 64)
		if err != nil {
			return nil, fmt.Errorf("slo: objective %q: bad target: %v", part, err)
		}
		o := Objective{Name: strings.TrimSpace(name), Target: target}
		switch {
		case spec == "availability":
			o.Kind = KindAvailability
		case strings.HasPrefix(spec, "latency:"):
			d, err := time.ParseDuration(strings.TrimPrefix(spec, "latency:"))
			if err != nil {
				return nil, fmt.Errorf("slo: objective %q: bad threshold: %v", part, err)
			}
			o.Kind, o.Threshold = KindLatency, d
		default:
			return nil, fmt.Errorf("slo: objective %q: spec must be latency:<dur> or availability", part)
		}
		if err := o.Validate(); err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}
