package lint

import (
	"go/ast"
)

// GoroutineLeak flags `go f(...)` statements in the request-path packages
// whose spawned function has no reachable termination signal: no channel
// send/receive/select/close, no WaitGroup.Wait/Done, no Cond rendezvous,
// no ctx.Done()/ctx.Err() check — judged transitively with the fact
// engine's blocks lattice. A goroutine with no exit rendezvous runs until
// process death: under the paper's steady query load each leaked spawn is
// permanent memory plus a runnable the scheduler keeps servicing, the
// slow-burn failure mode that only shows up as p99 drift hours in. On the
// serving path every goroutine must be joined (WaitGroup), cancelled
// (context), or fed through a channel whose close ends it.
//
// Scope is deliberately tight. Only the request-path packages are checked
// (requestPathPkgs): a CLI spawning a helper for main's lifetime is fine.
// Only *named* calls are checked: `go func() {...}()` literals are
// goroutinectx's territory (it wants a visible completion mechanism at the
// spawn site), and `go handler()` through a function value resolves to no
// *types.Func — the engine under-approximates, so unresolvable spawns are
// not flagged. The blocks fact itself over-approximates (any channel op in
// the callee counts, related to termination or not); the check therefore
// only fires when a goroutine provably has no rendezvous at all.
//
// A spawn that is genuinely fire-and-forget for the process lifetime takes
// //lint:ignore goroutineleak <reason> at the go statement.
var GoroutineLeak = &Analyzer{
	Name:      "goroutineleak",
	Doc:       "go statements in request-path packages need a reachable termination signal (channel, WaitGroup, or ctx.Done)",
	Run:       runGoroutineLeak,
	TestFiles: true,
}

// requestPathPkgs are the package *names* (not paths, so fixtures can
// impersonate them) on the serving path, where goroutine lifetimes must be
// bounded by a rendezvous.
var requestPathPkgs = map[string]bool{
	"distsearch": true,
	"batcher":    true,
	"hermes":     true,
	"telemetry":  true,
}

func runGoroutineLeak(p *Pass) {
	if p.Pkg == nil || !requestPathPkgs[p.Pkg.Name()] {
		return
	}
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if _, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit); isLit {
				return true // goroutinectx owns literals
			}
			callee := calleeFunc(p.Info, g.Call)
			if callee == nil || p.Facts.Blocks(callee) {
				return true
			}
			p.Reportf(g.Pos(), "go %s: the spawned function has no reachable termination signal (no channel op, select, WaitGroup/Cond rendezvous, or ctx.Done check anywhere in its call graph) — on the request path a goroutine nobody can join or cancel leaks until process death; add a rendezvous, or suppress with //lint:ignore goroutineleak <reason>", calleeDisplay(callee))
			return true
		})
	}
}
