package vec

import "fmt"

// L2SquaredBatch computes the squared Euclidean distance between q and each
// of the first n rows of data (row-major, stride len(q)), writing distances
// to out[:n]. It is the flat-storage scan kernel: one call evaluates a whole
// block of contiguous vectors, keeping the inner loop free of per-vector
// closure calls and bounds checks.
//
// Accumulation uses the same four-lane unrolling as L2Squared, so the two
// produce bit-identical results for the same inputs.
func L2SquaredBatch(q, data []float32, n int, out []float32) {
	dim := len(q)
	if dim == 0 {
		panic("vec: L2SquaredBatch requires a non-empty query")
	}
	if len(data) < n*dim {
		panic(fmt.Sprintf("vec: L2SquaredBatch data length %d < %d rows x dim %d", len(data), n, dim))
	}
	if len(out) < n {
		panic(fmt.Sprintf("vec: L2SquaredBatch out length %d < n %d", len(out), n))
	}
	for i := 0; i < n; i++ {
		row := data[i*dim : i*dim+dim : i*dim+dim]
		var s0, s1, s2, s3 float32
		d := 0
		for ; d+4 <= dim; d += 4 {
			d0 := q[d] - row[d]
			d1 := q[d+1] - row[d+1]
			d2 := q[d+2] - row[d+2]
			d3 := q[d+3] - row[d+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		for ; d < dim; d++ {
			dd := q[d] - row[d]
			s0 += dd * dd
		}
		out[i] = s0 + s1 + s2 + s3
	}
}
