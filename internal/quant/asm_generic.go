//go:build !amd64

package quant

// No assembly kernels on this architecture; the batch scans fall back to the
// pure-Go multi-lane loops.
const (
	sq8UseAsm = false
	pqUseAsm  = false
)

// sq8DotAsm is never called when sq8UseAsm is false.
func sq8DotAsm(code []byte, qm, scale []float32) float32 {
	panic("quant: sq8DotAsm called without assembly support")
}

// pqScanAsm is never called when pqUseAsm is false.
func pqScanAsm(codes []byte, tables [][256]float32, n int, out []float32) {
	panic("quant: pqScanAsm called without assembly support")
}
