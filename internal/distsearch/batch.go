package distsearch

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/hermes"
	"repro/internal/vec"
)

// BatchResult is the outcome of one batched distributed search.
type BatchResult struct {
	// Results holds per-query neighbors, index-aligned with the input.
	Results [][]vec.Neighbor
	// DeepLoads[s] counts how many of the batch's queries deep-searched
	// node s — the trace input of the multi-node energy model.
	DeepLoads []int
	// SampleLatency and DeepLatency are the wall times of the two
	// scatter/gather rounds.
	SampleLatency, DeepLatency time.Duration
}

// SearchBatch runs the hierarchical search for a whole batch using one
// round trip per node per phase: the sample batch is scattered to all nodes
// at once, shards are ranked per query, and each node then receives a single
// deep request carrying exactly the sub-batch of queries routed to it.
func (co *Coordinator) SearchBatch(queries [][]float32, p hermes.Params) (*BatchResult, error) {
	if len(queries) == 0 {
		return &BatchResult{DeepLoads: make([]int, len(co.nodes))}, nil
	}
	for i, q := range queries {
		if len(q) != co.dim {
			return nil, fmt.Errorf("distsearch: batch query %d dim %d != %d", i, len(q), co.dim)
		}
	}
	if p.K <= 0 {
		p = hermes.DefaultParams()
	}
	co.m.queries.Add(int64(len(queries)))
	co.m.batchSize.Observe(float64(len(queries)))

	// Phase 1 — one sample-batch request per node.
	start := time.Now()
	sampleScores := make([][]float32, len(co.nodes)) // [node][query]
	sampleOK := make([][]bool, len(co.nodes))
	errs := make([]error, len(co.nodes))
	var wg sync.WaitGroup
	for ni, n := range co.nodes {
		wg.Add(1)
		go func(ni int, n *nodeClient) {
			defer wg.Done()
			resp, err := n.roundTrip(&Request{Op: OpSampleBatch, Queries: queries, NProbe: p.SampleNProbe, Grouped: co.grouped})
			if err != nil {
				errs[ni] = err
				return
			}
			scores := make([]float32, len(queries))
			oks := make([]bool, len(queries))
			for qi, res := range resp.Batch {
				if len(res) > 0 {
					scores[qi] = res[0].Score
					oks[qi] = true
				}
			}
			sampleScores[ni] = scores
			sampleOK[ni] = oks
		}(ni, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	sampleLat := time.Since(start)
	co.m.phaseSample.ObserveDuration(sampleLat)

	// Rank shards per query and build per-node deep sub-batches.
	type ranked struct {
		node int
		d    float32
	}
	deepQueries := make([][][]float32, len(co.nodes)) // [node] -> sub-batch
	deepQueryIdx := make([][]int, len(co.nodes))      // [node] -> original query indices
	deepLoads := make([]int, len(co.nodes))
	for qi := range queries {
		order := make([]ranked, 0, len(co.nodes))
		for ni := range co.nodes {
			if sampleOK[ni][qi] {
				order = append(order, ranked{ni, sampleScores[ni][qi]})
			}
		}
		sort.Slice(order, func(a, b int) bool { return order[a].d < order[b].d })
		deep := p.DeepClusters
		if deep > len(order) {
			deep = len(order)
		}
		for _, r := range order[:deep] {
			if p.PruneEps > 0 && float64(r.d) > (1+p.PruneEps)*float64(order[0].d) {
				break
			}
			deepQueries[r.node] = append(deepQueries[r.node], queries[qi])
			deepQueryIdx[r.node] = append(deepQueryIdx[r.node], qi)
			deepLoads[r.node]++
		}
	}

	// Phase 2 — one deep-batch request per loaded node.
	deepStart := time.Now()
	merged := make([]*vec.TopK, len(queries))
	for qi := range merged {
		merged[qi] = vec.NewTopK(p.K)
	}
	var mu sync.Mutex
	for ni, n := range co.nodes {
		if len(deepQueries[ni]) == 0 {
			continue
		}
		wg.Add(1)
		go func(ni int, n *nodeClient) {
			defer wg.Done()
			resp, err := n.roundTrip(&Request{
				Op: OpDeepBatch, Queries: deepQueries[ni], K: p.K, NProbe: p.DeepNProbe, Grouped: co.grouped,
			})
			if err != nil {
				errs[ni] = err
				return
			}
			mu.Lock()
			defer mu.Unlock()
			for slot, res := range resp.Batch {
				qi := deepQueryIdx[ni][slot]
				for _, nb := range res {
					merged[qi].Push(nb.ID, nb.Score)
				}
			}
		}(ni, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	deepLat := time.Since(deepStart)
	co.m.phaseDeep.ObserveDuration(deepLat)

	out := &BatchResult{
		Results:       make([][]vec.Neighbor, len(queries)),
		DeepLoads:     deepLoads,
		SampleLatency: sampleLat,
		DeepLatency:   deepLat,
	}
	for qi := range queries {
		out.Results[qi] = merged[qi].Results()
	}
	return out, nil
}
