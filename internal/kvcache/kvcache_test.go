package kvcache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t testing.TB, capacity int64) *Cache {
	t.Helper()
	c, err := New(capacity)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("zero capacity should error")
	}
	if _, err := New(-1); err == nil {
		t.Fatal("negative capacity should error")
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := mustNew(t, 1000)
	if c.Lookup(1, 100) {
		t.Fatal("first access should miss")
	}
	if !c.Lookup(1, 100) {
		t.Fatal("second access should hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.UsedBytes != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", st.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustNew(t, 300)
	c.Lookup(1, 100)
	c.Lookup(2, 100)
	c.Lookup(3, 100)
	// Touch 1 so 2 becomes the LRU victim.
	if !c.Lookup(1, 100) {
		t.Fatal("1 should hit")
	}
	c.Lookup(4, 100) // evicts 2
	if c.Contains(2) {
		t.Fatal("2 should have been evicted")
	}
	if !c.Contains(1) || !c.Contains(3) || !c.Contains(4) {
		t.Fatal("wrong eviction victim")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
}

func TestOversizeNeverAdmitted(t *testing.T) {
	c := mustNew(t, 100)
	if c.Lookup(1, 200) {
		t.Fatal("oversize lookup should miss")
	}
	if c.Contains(1) || c.Stats().UsedBytes != 0 {
		t.Fatal("oversize document must not be admitted")
	}
	// Non-positive sizes are rejected too.
	c.Lookup(2, 0)
	if c.Contains(2) {
		t.Fatal("zero-size document must not be admitted")
	}
}

func TestInvalidate(t *testing.T) {
	c := mustNew(t, 100)
	c.Lookup(1, 50)
	if !c.Invalidate(1) {
		t.Fatal("invalidate of cached doc should succeed")
	}
	if c.Contains(1) || c.Stats().UsedBytes != 0 {
		t.Fatal("invalidated doc still resident")
	}
	if c.Invalidate(1) {
		t.Fatal("double invalidate should fail")
	}
}

func TestReset(t *testing.T) {
	c := mustNew(t, 100)
	c.Lookup(1, 50)
	c.Lookup(1, 50)
	c.Reset()
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Entries != 0 || st.UsedBytes != 0 {
		t.Fatalf("reset stats = %+v", st)
	}
}

func TestKVBytes(t *testing.T) {
	// 64-token chunk with 602,112 B/token (Gemma2-9B class) ~ 38.5 MB.
	if got := KVBytes(64, 602112); got != 64*602112 {
		t.Fatalf("KVBytes = %d", got)
	}
}

// Property: used bytes never exceed capacity, and entry count matches the
// live map, across random access streams.
func TestCapacityInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, _ := New(1000)
		for i := 0; i < 300; i++ {
			id := int64(rng.Intn(40))
			size := int64(rng.Intn(400) + 1)
			c.Lookup(id, size)
			st := c.Stats()
			if st.UsedBytes > st.CapacityBytes || st.UsedBytes < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Zipf-skewed document popularity (the RAG regime RAGCache exploits) must
// yield a far higher hit rate than uniform access at equal cache size.
func TestSkewBeatsUniform(t *testing.T) {
	run := func(zipf bool) float64 {
		rng := rand.New(rand.NewSource(7))
		var z *rand.Zipf
		if zipf {
			z = rand.NewZipf(rng, 1.3, 1, 9999)
		}
		c, _ := New(100 * 100) // room for ~100 docs of size 100
		for i := 0; i < 20000; i++ {
			var id int64
			if zipf {
				id = int64(z.Uint64())
			} else {
				id = int64(rng.Intn(10000))
			}
			c.Lookup(id, 100)
		}
		return c.Stats().HitRate()
	}
	skewed, uniform := run(true), run(false)
	if skewed < 3*uniform {
		t.Fatalf("Zipf hit rate %v should dwarf uniform %v", skewed, uniform)
	}
	if skewed < 0.5 {
		t.Fatalf("Zipf hit rate %v implausibly low", skewed)
	}
}
