package kvcache

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestStatsCollect(t *testing.T) {
	c, err := New(100)
	if err != nil {
		t.Fatal(err)
	}
	c.Lookup(1, 60) // miss, admit
	c.Lookup(1, 60) // hit
	c.Lookup(2, 60) // miss, evicts 1

	reg := telemetry.NewRegistry()
	reg.RegisterCollector(func(r *telemetry.Registry) { c.Stats().Collect(r) })

	snap := reg.Snapshot()
	want := map[string]float64{
		"hermes_kvcache_hits_total":      1,
		"hermes_kvcache_misses_total":    2,
		"hermes_kvcache_evictions_total": 1,
		"hermes_kvcache_used_bytes":      60,
		"hermes_kvcache_capacity_bytes":  100,
		"hermes_kvcache_entries":         1,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("%s = %v, want %v", k, snap[k], v)
		}
	}
	if got := snap["hermes_kvcache_hit_ratio"]; got < 0.33 || got > 0.34 {
		t.Errorf("hit_ratio = %v, want 1/3", got)
	}

	// The collector re-snapshots at every scrape.
	c.Lookup(2, 60) // hit
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "hermes_kvcache_hits_total 2") {
		t.Errorf("scrape did not pick up new hit:\n%s", b.String())
	}

	// Nil registry must not panic.
	c.Stats().Collect(nil)
}
