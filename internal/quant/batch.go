package quant

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/vec"
)

// BatchDistancer is a reusable, query-bound batch ADC kernel: where the
// scalar Distancer pays an indirect closure call per code, DistanceBatch
// evaluates a whole block of contiguous codes per call, so inverted-list
// scans run at table-walk / memory bandwidth. Kernels own their scratch
// (lookup tables, rotation buffers) and rebuild it on BindQuery, so one
// kernel instance serves an unbounded stream of queries with zero
// steady-state allocations.
//
// Contract: BindQuery must be called before Distance or DistanceBatch. The
// bound query slice must stay unmodified until the next BindQuery (kernels
// that precompute tables copy what they need; Flat reads q during the scan).
// Batch and scalar paths agree within floating-point reassociation tolerance:
// the batch kernels use multi-lane accumulators, so sums may differ from the
// scalar Distancer in the last bits (documented bound: 1e-4 relative, see
// DESIGN.md §8); Flat is bit-identical by construction.
type BatchDistancer interface {
	// BindQuery prepares the kernel for a new query, reusing internal
	// buffers. It panics if len(q) != the quantizer's Dim.
	BindQuery(q []float32)
	// Distance evaluates one code against the bound query.
	Distance(code []byte) float32
	// DistanceBatch evaluates n contiguous codes (n * CodeSize bytes at the
	// front of codes), writing distances to out[:n].
	DistanceBatch(codes []byte, n int, out []float32)
}

// BatchCapable marks quantizers that provide a native batch kernel.
type BatchCapable interface {
	// NewBatchDistancer returns an unbound reusable kernel.
	NewBatchDistancer() BatchDistancer
}

// NewBatchDistancer returns a reusable batch kernel for qz. Quantizers
// without native batch support get a generic adapter over the scalar
// Distancer (correct, but it allocates a fresh closure per BindQuery).
func NewBatchDistancer(qz Quantizer) BatchDistancer {
	if bc, ok := qz.(BatchCapable); ok {
		return bc.NewBatchDistancer()
	}
	return &scalarBatch{qz: qz}
}

// scalarBatch adapts the scalar Distancer to the batch interface.
type scalarBatch struct {
	qz   Quantizer
	dist Distancer
}

func (s *scalarBatch) BindQuery(q []float32) { s.dist = s.qz.NewDistancer(q) }

func (s *scalarBatch) Distance(code []byte) float32 { return s.dist(code) }

func (s *scalarBatch) DistanceBatch(codes []byte, n int, out []float32) {
	cs := s.qz.CodeSize()
	for i := 0; i < n; i++ {
		out[i] = s.dist(codes[i*cs : (i+1)*cs])
	}
}

func checkBatchArgs(codes []byte, n, cs int, out []float32) {
	if len(codes) < n*cs {
		panic(fmt.Sprintf("quant: DistanceBatch codes length %d < %d codes x %d bytes", len(codes), n, cs))
	}
	if len(out) < n {
		panic(fmt.Sprintf("quant: DistanceBatch out length %d < n %d", len(out), n))
	}
}

func checkQueryDim(got, want int) {
	if got != want {
		panic(fmt.Sprintf("quant: BindQuery dim %d != %d", got, want))
	}
}

// le32 reads one little-endian float32 from the front of b.
func le32(b []byte) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b))
}

// ---------------------------------------------------------------------------
// Flat: blocked L2 directly over the little-endian float32 codes, skipping
// the per-vector Decode into a scratch buffer. Accumulation mirrors
// vec.L2Squared's four lanes, so results are bit-identical to the scalar
// path (which decodes and calls vec.L2Squared).

type flatBatch struct {
	dim int
	q   []float32
}

// NewBatchDistancer returns Flat's blocked-L2 kernel.
func (f *Flat) NewBatchDistancer() BatchDistancer {
	return &flatBatch{dim: f.dim}
}

func (b *flatBatch) BindQuery(q []float32) {
	checkQueryDim(len(q), b.dim)
	b.q = q
}

func (b *flatBatch) Distance(code []byte) float32 {
	var out [1]float32
	b.DistanceBatch(code, 1, out[:])
	return out[0]
}

func (b *flatBatch) DistanceBatch(codes []byte, n int, out []float32) {
	q := b.q
	cs := b.dim * 4
	checkBatchArgs(codes, n, cs, out)
	for i := 0; i < n; i++ {
		code := codes[i*cs : i*cs+cs : i*cs+cs]
		var s0, s1, s2, s3 float32
		d := 0
		for ; d+4 <= len(q); d += 4 {
			d0 := q[d] - le32(code[d*4:])
			d1 := q[d+1] - le32(code[d*4+4:])
			d2 := q[d+2] - le32(code[d*4+8:])
			d3 := q[d+3] - le32(code[d*4+12:])
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		for ; d < len(q); d++ {
			dd := q[d] - le32(code[d*4:])
			s0 += dd * dd
		}
		out[i] = s0 + s1 + s2 + s3
	}
}

// ---------------------------------------------------------------------------
// SQ: two kernels, chosen by code width.
//
// SQ8 uses branch-free direct dequantization: BindQuery precomputes
// qm[d] = q[d] - min[d]; the scan evaluates (qm[d] - code*scale[d])^2, on
// amd64 via an SSE2 assembly loop (8 dims per iteration) and elsewhere via
// four-lane Go. The per-(dimension, level) squared-difference table the
// scalar path uses was measured and rejected for the 8-bit batch kernel: at
// dim=128 it is a 128 KiB working set walked with 1 KiB strides (one cache
// line per dimension per code), which runs out of L1 and ends up slower than
// the scalar closure — see DESIGN.md §8.
//
// SQ4 keeps the table: at 16 levels it is one cache line per dimension
// (dim x 64 B = 8 KiB at dim=128), L1-resident across the whole scan. Rows
// are fixed-size [16]float32 arrays indexed by a masked nibble, which the
// compiler proves in-bounds, so the inner loop is pure gathers.

type sqBatch struct {
	sq  *SQ
	qm  []float32      // q - min, rebuilt per query (8-bit path)
	lut [][16]float32  // per-dim squared-diff rows (4-bit path only)
}

// NewBatchDistancer returns the SQ batch kernel for this code width.
func (s *SQ) NewBatchDistancer() BatchDistancer {
	s.mustTrained()
	b := &sqBatch{sq: s, qm: make([]float32, s.dim)}
	if s.bits == 4 {
		b.lut = make([][16]float32, s.dim)
	}
	return b
}

func (b *sqBatch) BindQuery(q []float32) {
	s := b.sq
	checkQueryDim(len(q), s.dim)
	for d := range b.qm {
		b.qm[d] = q[d] - s.min[d]
	}
	if s.bits == 4 {
		for d := range b.lut {
			qm, sc := b.qm[d], s.scale[d]
			row := &b.lut[d]
			for l := 0; l < 16; l++ {
				diff := qm - float32(l)*sc
				row[l] = diff * diff
			}
		}
	}
}

func (b *sqBatch) Distance(code []byte) float32 {
	var out [1]float32
	b.DistanceBatch(code, 1, out[:])
	return out[0]
}

func (b *sqBatch) DistanceBatch(codes []byte, n int, out []float32) {
	cs := b.sq.CodeSize()
	checkBatchArgs(codes, n, cs, out)
	if b.sq.bits == 8 {
		b.batch8(codes, n, cs, out)
	} else {
		b.batch4(codes, n, cs, out)
	}
}

func (b *sqBatch) batch8(codes []byte, n, cs int, out []float32) {
	qm, scale := b.qm, b.sq.scale
	dim := b.sq.dim
	if sq8UseAsm && dim%4 == 0 {
		for i := 0; i < n; i++ {
			out[i] = sq8DotAsm(codes[i*cs:i*cs+cs], qm, scale)
		}
		return
	}
	for i := 0; i < n; i++ {
		code := codes[i*cs : i*cs+cs : i*cs+cs]
		var s0, s1, s2, s3 float32
		d := 0
		for ; d+4 <= dim; d += 4 {
			d0 := qm[d] - float32(code[d])*scale[d]
			d1 := qm[d+1] - float32(code[d+1])*scale[d+1]
			d2 := qm[d+2] - float32(code[d+2])*scale[d+2]
			d3 := qm[d+3] - float32(code[d+3])*scale[d+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		for ; d < dim; d++ {
			dd := qm[d] - float32(code[d])*scale[d]
			s0 += dd * dd
		}
		out[i] = s0 + s1 + s2 + s3
	}
}

func (b *sqBatch) batch4(codes []byte, n, cs int, out []float32) {
	lut := b.lut
	for i := 0; i < n; i++ {
		code := codes[i*cs : i*cs+cs : i*cs+cs]
		var s0, s1, s2, s3 float32
		d, p := 0, 0
		for ; d+4 <= len(lut); d, p = d+4, p+2 {
			c0 := code[p]
			c1 := code[p+1]
			s0 += lut[d][c0&0x0f]
			s1 += lut[d+1][c0>>4]
			s2 += lut[d+2][c1&0x0f]
			s3 += lut[d+3][c1>>4]
		}
		for ; d < len(lut); d++ {
			var lvl byte
			if d%2 == 0 {
				lvl = code[d/2] & 0x0f
			} else {
				lvl = code[d/2] >> 4
			}
			s0 += lut[d][lvl]
		}
		out[i] = (s0 + s1) + (s2 + s3)
	}
}

// ---------------------------------------------------------------------------
// PQ: the per-query M x ksub ADC lookup table is precomputed on BindQuery as
// one [256]float32 row per subquantizer. Indexing a fixed-size [256] array
// with a byte needs no bounds check, so the scan inner loop compiles to pure
// table gathers; two codes are interleaved per iteration to keep enough
// independent float-add chains in flight to hide gather latency.

type pqBatch struct {
	pq     *PQ
	ksub   int             // actual codebook size (<= 256 when clamped)
	tables [][256]float32  // one gather row per subquantizer
}

// NewBatchDistancer returns the PQ ADC table-gather kernel.
func (p *PQ) NewBatchDistancer() BatchDistancer {
	p.mustTrained()
	return &pqBatch{pq: p, ksub: p.codebooks[0].Len(), tables: make([][256]float32, p.m)}
}

func (b *pqBatch) BindQuery(q []float32) {
	p := b.pq
	checkQueryDim(len(q), p.dim)
	for m := 0; m < p.m; m++ {
		sub := q[m*p.dsub : (m+1)*p.dsub]
		cb := p.codebooks[m]
		row := &b.tables[m]
		for c := 0; c < b.ksub; c++ {
			row[c] = vec.L2Squared(sub, cb.Row(c))
		}
	}
}

func (b *pqBatch) Distance(code []byte) float32 {
	var out [1]float32
	b.DistanceBatch(code, 1, out[:])
	return out[0]
}

func (b *pqBatch) DistanceBatch(codes []byte, n int, out []float32) {
	m := b.pq.m
	checkBatchArgs(codes, n, m, out)
	if pqUseAsm && m%4 == 0 {
		pqScanAsm(codes, b.tables, n, out)
		return
	}
	tabs := b.tables
	i := 0
	for ; i+2 <= n; i += 2 {
		// Re-slice both codes to len(tabs) so the compiler can prove every
		// index below in bounds from the single loop condition.
		codeA := codes[i*m:][:len(tabs):len(tabs)]
		codeB := codes[(i+1)*m:][:len(tabs):len(tabs)]
		var a0, a1, a2, a3, b0, b1, b2, b3 float32
		j := 0
		for ; j+4 <= len(tabs); j += 4 {
			// Constant-length subslice: one bounds check covers all four
			// rows, and the byte indexes into [256]float32 need none.
			t := tabs[j : j+4 : j+4]
			a0 += t[0][codeA[j]]
			b0 += t[0][codeB[j]]
			a1 += t[1][codeA[j+1]]
			b1 += t[1][codeB[j+1]]
			a2 += t[2][codeA[j+2]]
			b2 += t[2][codeB[j+2]]
			a3 += t[3][codeA[j+3]]
			b3 += t[3][codeB[j+3]]
		}
		for ; j < len(tabs); j++ {
			a0 += tabs[j][codeA[j]]
			b0 += tabs[j][codeB[j]]
		}
		out[i] = (a0 + a1) + (a2 + a3)
		out[i+1] = (b0 + b1) + (b2 + b3)
	}
	if i < n {
		code := codes[i*m:][:len(tabs):len(tabs)]
		var s0, s1, s2, s3 float32
		j := 0
		for ; j+4 <= len(tabs); j += 4 {
			s0 += tabs[j][code[j]]
			s1 += tabs[j+1][code[j+1]]
			s2 += tabs[j+2][code[j+2]]
			s3 += tabs[j+3][code[j+3]]
		}
		for ; j < len(tabs); j++ {
			s0 += tabs[j][code[j]]
		}
		out[i] = (s0 + s1) + (s2 + s3)
	}
}

// ---------------------------------------------------------------------------
// OPQ: rotation is an isometry, so the kernel rotates the query once into a
// reusable buffer and delegates every scan to the PQ kernel.

type opqBatch struct {
	opq *OPQ
	pq  *pqBatch
	rq  []float32 // rotated query
}

// NewBatchDistancer returns the OPQ kernel (rotate once, then PQ gathers).
func (o *OPQ) NewBatchDistancer() BatchDistancer {
	return &opqBatch{
		opq: o,
		pq:  o.pq.NewBatchDistancer().(*pqBatch),
		rq:  make([]float32, o.pq.dim),
	}
}

func (b *opqBatch) BindQuery(q []float32) {
	checkQueryDim(len(q), b.opq.pq.dim)
	b.opq.rotate(q, b.rq)
	b.pq.BindQuery(b.rq)
}

func (b *opqBatch) Distance(code []byte) float32 { return b.pq.Distance(code) }

func (b *opqBatch) DistanceBatch(codes []byte, n int, out []float32) {
	b.pq.DistanceBatch(codes, n, out)
}
