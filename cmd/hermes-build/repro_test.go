package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestBuildByteIdenticalAcrossRuns is the reproducibility regression test:
// two full build invocations with the same seed must produce byte-identical
// index artifacts (every shard-NNN.ivf and meta.json). Any nondeterminism —
// map-order iteration, package-level RNG, wall-clock leakage — in the
// corpus/kmeans/hermes/ivf/indexfile pipeline breaks this.
func TestBuildByteIdenticalAcrossRuns(t *testing.T) {
	for _, typ := range []string{"hermes", "split", "monolithic"} {
		t.Run(typ, func(t *testing.T) {
			dirs := [2]string{t.TempDir(), t.TempDir()}
			for _, dir := range dirs {
				o := options{
					Out:    dir,
					Type:   typ,
					Chunks: 2000,
					Dim:    16,
					Topics: 5,
					Shards: 4,
					Seed:   42,
					Quant:  8,
					Embed:  "topic",
				}
				if err := run(o); err != nil {
					t.Fatalf("run(%s): %v", typ, err)
				}
			}
			compareDirs(t, dirs[0], dirs[1])
		})
	}
}

func compareDirs(t *testing.T, a, b string) {
	t.Helper()
	aFiles := listFiles(t, a)
	bFiles := listFiles(t, b)
	if len(aFiles) != len(bFiles) {
		t.Fatalf("file counts differ: %v vs %v", aFiles, bFiles)
	}
	if len(aFiles) < 2 {
		t.Fatalf("expected meta.json plus at least one shard, got %v", aFiles)
	}
	for i, name := range aFiles {
		if bFiles[i] != name {
			t.Fatalf("file lists differ: %v vs %v", aFiles, bFiles)
		}
		ab, err := os.ReadFile(filepath.Join(a, name))
		if err != nil {
			t.Fatal(err)
		}
		bb, err := os.ReadFile(filepath.Join(b, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab, bb) {
			t.Errorf("%s differs between identical runs (%d vs %d bytes)", name, len(ab), len(bb))
		}
	}
}

func listFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names
}
