// Package facts is the fixture for the cross-package fact engine: WriteState
// touches I/O directly, Chain and Probe.Flush only reach it transitively,
// and Pure must never pick up the fact.
package facts

import "os"

// WriteState performs I/O directly (os is a seed I/O package).
func WriteState(f *os.File, b []byte) error {
	_, err := f.Write(b)
	return err
}

// Chain reaches I/O one call deep.
func Chain(f *os.File) error {
	return WriteState(f, nil)
}

// Probe carries a method that reaches I/O two calls deep.
type Probe struct{}

// Flush reaches I/O through Chain.
func (Probe) Flush(f *os.File) error {
	return Chain(f)
}

// Pure is arithmetic only; no fact.
func Pure(a, b int) int {
	return a + b
}

// viaValue calls through a function value: statically unresolvable, so the
// engine under-approximates and viaValue stays fact-free by design.
func viaValue(fn func() error) error {
	return fn()
}

var _ = viaValue

// Emit performs no visible I/O — it only stores into a buffer — but its doc
// comment declares it an I/O edge, the seed for event-log-style sinks whose
// writes happen on a later scrape.
//
//hermes:io
func Emit(buf *[]byte, b byte) {
	*buf = append(*buf, b)
}

// Record reaches the declared I/O edge transitively: the directive must
// propagate like any other io fact.
func Record(buf *[]byte) {
	Emit(buf, 0)
}
