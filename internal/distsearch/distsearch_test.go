package distsearch

import (
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/flatindex"
	"repro/internal/hermes"
	"repro/internal/metrics"
)

// cluster builds a disaggregated store, launches local nodes, and dials a
// coordinator.
func cluster(t testing.TB, chunks, shards int) (*hermes.Store, *LocalCluster, *Coordinator, *corpus.Corpus) {
	t.Helper()
	c, err := corpus.Generate(corpus.Spec{NumChunks: chunks, Dim: 16, NumTopics: shards, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	lc, err := LaunchLocal(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	co, err := Dial(lc.Addrs(), time.Second)
	if err != nil {
		lc.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		co.Close()
		lc.Close()
	})
	return st, lc, co, c
}

func TestCoordinatorInfo(t *testing.T) {
	st, _, co, _ := cluster(t, 800, 4)
	if co.Nodes() != 4 {
		t.Fatalf("nodes = %d", co.Nodes())
	}
	if co.Dim() != 16 {
		t.Fatalf("dim = %d", co.Dim())
	}
	if co.TotalSize() != 800 {
		t.Fatalf("total size = %d", co.TotalSize())
	}
	_ = st
}

func TestDistributedMatchesInProcess(t *testing.T) {
	st, _, co, c := cluster(t, 1200, 6)
	qs := c.Queries(20, 9)
	p := hermes.DefaultParams()
	for i := 0; i < qs.Vectors.Len(); i++ {
		q := qs.Vectors.Row(i)
		local, _ := st.Search(q, p)
		remote, err := co.Search(q, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(local) != len(remote.Neighbors) {
			t.Fatalf("query %d: local %d results, remote %d", i, len(local), len(remote.Neighbors))
		}
		for j := range local {
			if local[j].ID != remote.Neighbors[j].ID {
				t.Fatalf("query %d pos %d: local %d != remote %d", i, j, local[j].ID, remote.Neighbors[j].ID)
			}
		}
		if len(remote.DeepNodes) != p.DeepClusters {
			t.Fatalf("deep nodes = %d", len(remote.DeepNodes))
		}
	}
}

func TestDistributedAccuracy(t *testing.T) {
	_, _, co, c := cluster(t, 1500, 6)
	qs := c.Queries(25, 13)
	ref := flatindex.New(16)
	ref.AddBatch(0, c.Vectors)
	truth := ref.GroundTruth(qs.Vectors, 5)
	var sum float64
	for i := 0; i < qs.Vectors.Len(); i++ {
		res, err := co.Search(qs.Vectors.Row(i), hermes.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]int64, len(res.Neighbors))
		for j, n := range res.Neighbors {
			ids[j] = n.ID
		}
		sum += metrics.NDCGAtK(ids, truth[i], 5)
	}
	if ndcg := sum / 25; ndcg < 0.93 {
		t.Fatalf("distributed NDCG = %v", ndcg)
	}
}

func TestSearchAllSupersetAccuracy(t *testing.T) {
	_, _, co, c := cluster(t, 1000, 5)
	q := c.Queries(1, 17).Vectors.Row(0)
	all, err := co.SearchAll(q, hermes.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(all.DeepNodes) != 5 {
		t.Fatalf("SearchAll should touch all 5 nodes, got %d", len(all.DeepNodes))
	}
	hier, err := co.Search(q, hermes.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// SearchAll's best distance can only be <= hierarchical's best.
	if len(all.Neighbors) > 0 && len(hier.Neighbors) > 0 &&
		all.Neighbors[0].Score > hier.Neighbors[0].Score {
		t.Fatalf("SearchAll best %v worse than hierarchical %v", all.Neighbors[0].Score, hier.Neighbors[0].Score)
	}
}

func TestQueryDimValidation(t *testing.T) {
	_, _, co, _ := cluster(t, 400, 2)
	if _, err := co.Search([]float32{1, 2}, hermes.DefaultParams()); err == nil {
		t.Fatal("wrong-dim query should error")
	}
	if _, err := co.SearchAll([]float32{1}, hermes.DefaultParams()); err == nil {
		t.Fatal("wrong-dim SearchAll should error")
	}
}

func TestConcurrentQueries(t *testing.T) {
	_, _, co, c := cluster(t, 1000, 4)
	qs := c.Queries(32, 21)
	var wg sync.WaitGroup
	errs := make([]error, qs.Vectors.Len())
	for i := 0; i < qs.Vectors.Len(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = co.Search(qs.Vectors.Row(i), hermes.DefaultParams())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent query %d: %v", i, err)
		}
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial(nil, time.Second); err == nil {
		t.Fatal("empty addrs should error")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}, 200*time.Millisecond); err == nil {
		t.Fatal("unreachable node should error")
	}
}

func TestShutdown(t *testing.T) {
	c, err := corpus.Generate(corpus.Spec{NumChunks: 300, Dim: 8, NumTopics: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	lc, err := LaunchLocal(st, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	co, err := Dial(lc.Addrs(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := co.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Nodes are gone: a fresh dial must fail.
	if _, err := Dial(lc.Addrs(), 300*time.Millisecond); err == nil {
		t.Fatal("dial after shutdown should fail")
	}
}

func TestNodeRejectsUntrainedIndex(t *testing.T) {
	if _, err := NewNode(0, nil, nil); err == nil {
		t.Fatal("nil index should error")
	}
}

func TestNodeDoubleCloseSafe(t *testing.T) {
	c, _ := corpus.Generate(corpus.Spec{NumChunks: 100, Dim: 4, NumTopics: 2, Seed: 8})
	st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(0, st.Shards[0].Index, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestResultLatenciesPopulated(t *testing.T) {
	_, _, co, c := cluster(t, 600, 3)
	res, err := co.Search(c.Queries(1, 31).Vectors.Row(0), hermes.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.SampleLatency <= 0 || res.DeepLatency <= 0 {
		t.Fatalf("latencies not populated: %+v", res)
	}
}

func TestLenientSurvivesNodeFailure(t *testing.T) {
	st, lc, co, c := cluster(t, 1200, 6)
	_ = st
	qs := c.Queries(10, 61)
	p := hermes.DefaultParams()

	// Baseline: all nodes alive.
	if _, err := co.Search(qs.Vectors.Row(0), p); err != nil {
		t.Fatal(err)
	}

	// Kill one node. Strict mode must fail; lenient mode must serve from
	// the survivors.
	lc.nodes[0].Close()
	var failed bool
	for i := 0; i < qs.Vectors.Len(); i++ {
		if _, err := co.Search(qs.Vectors.Row(i), p); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("strict mode should fail once a node is dead")
	}

	co.SetLenient(true)
	served := 0
	for i := 0; i < qs.Vectors.Len(); i++ {
		res, err := co.Search(qs.Vectors.Row(i), p)
		if err != nil {
			t.Fatalf("lenient query %d failed: %v", i, err)
		}
		if len(res.Neighbors) > 0 {
			served++
		}
	}
	if served != qs.Vectors.Len() {
		t.Fatalf("lenient mode served %d/%d queries", served, qs.Vectors.Len())
	}
}

func TestLenientAllNodesDead(t *testing.T) {
	_, lc, co, c := cluster(t, 400, 2)
	co.SetLenient(true)
	for _, n := range lc.nodes {
		n.Close()
	}
	if _, err := co.Search(c.Queries(1, 63).Vectors.Row(0), hermes.DefaultParams()); err == nil {
		t.Fatal("all-dead cluster should still error")
	}
}

func TestDistributedMutation(t *testing.T) {
	_, _, co, c := cluster(t, 1000, 5)
	// Ingest a document near topic 0's center; it must become retrievable
	// through the distributed search.
	v := make([]float32, 16)
	copy(v, c.Centers.Row(0))
	shard, err := co.Add(999999, v)
	if err != nil {
		t.Fatal(err)
	}
	if shard < 0 || shard >= 5 {
		t.Fatalf("routed to shard %d", shard)
	}
	res, err := co.Search(v, hermes.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) == 0 || res.Neighbors[0].ID != 999999 {
		t.Fatalf("ingested doc not the best hit: %+v", res.Neighbors)
	}
	// Remove it again.
	gotShard, ok, err := co.Remove(999999)
	if err != nil || !ok || gotShard != shard {
		t.Fatalf("remove = %d,%v,%v (want shard %d)", gotShard, ok, err, shard)
	}
	res, err = co.Search(v, hermes.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Neighbors {
		if n.ID == 999999 {
			t.Fatal("removed doc still retrievable")
		}
	}
	// Removing an unknown id reports false without error.
	if _, ok, err := co.Remove(123456789); err != nil || ok {
		t.Fatalf("unknown remove = %v,%v", ok, err)
	}
}

func TestDistributedMutationValidation(t *testing.T) {
	_, _, co, _ := cluster(t, 400, 2)
	if _, err := co.Add(1, []float32{1, 2}); err == nil {
		t.Fatal("wrong-dim add should error")
	}
}

// Concurrent ingest and search over the wire must be race-free (the node
// serializes mutations against searches with an RWMutex).
func TestConcurrentMutationAndSearch(t *testing.T) {
	_, _, co, c := cluster(t, 800, 4)
	qs := c.Queries(40, 81)
	var wg sync.WaitGroup
	errs := make(chan error, 80)
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := co.Search(qs.Vectors.Row(i), hermes.DefaultParams()); err != nil {
				errs <- err
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := make([]float32, 16)
			copy(v, c.Centers.Row(i%4))
			if _, err := co.Add(int64(50000+i), v); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestNodeStatsAndCompact(t *testing.T) {
	_, _, co, c := cluster(t, 800, 4)
	qs := c.Queries(10, 91)
	p := hermes.DefaultParams()
	for i := 0; i < qs.Vectors.Len(); i++ {
		if _, err := co.Search(qs.Vectors.Row(i), p); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := co.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 4 {
		t.Fatalf("stats for %d nodes", len(stats))
	}
	var sample, deep int64
	for _, s := range stats {
		sample += s.SampleServed
		deep += s.DeepServed
	}
	// Each query samples every node and deep-searches DeepClusters of them.
	if sample != int64(qs.Vectors.Len()*4) {
		t.Fatalf("sample served %d, want %d", sample, qs.Vectors.Len()*4)
	}
	if deep != int64(qs.Vectors.Len()*p.DeepClusters) {
		t.Fatalf("deep served %d, want %d", deep, qs.Vectors.Len()*p.DeepClusters)
	}

	// Mutate, check tombstones appear, compact, check they clear.
	if _, ok, err := co.Remove(0); err != nil || !ok {
		t.Fatalf("remove: %v %v", ok, err)
	}
	stats, err = co.Stats()
	if err != nil {
		t.Fatal(err)
	}
	tomb := 0
	for _, s := range stats {
		tomb += s.Tombstones
	}
	if tomb != 1 {
		t.Fatalf("tombstones = %d, want 1", tomb)
	}
	if err := co.Compact(); err != nil {
		t.Fatal(err)
	}
	stats, err = co.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stats {
		if s.Tombstones != 0 {
			t.Fatal("tombstones survived Compact")
		}
	}
}
