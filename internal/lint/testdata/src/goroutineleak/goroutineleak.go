// Package batcher (fixture dir testdata/src/goroutineleak) impersonates a
// request-path package: goroutineleak keys on package *name* so fixtures
// can opt in. One named spawn has no termination signal anywhere in its
// call graph and is flagged; every other spawn either blocks (directly,
// transitively, or via a stdlib rendezvous seed), is a function literal
// (goroutinectx's territory), or resolves to no static callee (the
// engine's documented under-approximation).
package batcher

import (
	"context"
	"sync"
)

var sink int

// spin never blocks: no channel op, no WaitGroup, no ctx — a leak when
// spawned on the request path.
func spin() {
	for i := 0; ; i++ {
		sink = i
	}
}

// spinForever is identical but its spawn carries a justification.
func spinForever() {
	for {
		sink++
	}
}

// drain blocks on its channel: range ends when the channel closes.
func drain(ch chan int) {
	for v := range ch {
		sink = v
	}
}

// signalDone's rendezvous is the sync.WaitGroup.Done seed.
func signalDone(wg *sync.WaitGroup) {
	defer wg.Done()
	sink++
}

// untilCancelled blocks on ctx.Done — the context-cancellation rendezvous.
func untilCancelled(ctx context.Context) {
	<-ctx.Done()
}

// pump has no channel op of its own; the blocks fact reaches it through
// drain, exercising transitive propagation.
func pump(ch chan int) {
	drain(ch)
}

func spawnAll(ctx context.Context, ch chan int, wg *sync.WaitGroup) {
	go spin() // want "no reachable termination signal"
	go drain(ch)
	go signalDone(wg)
	go untilCancelled(ctx)
	go pump(ch)
	go func() { // literals are goroutinectx's domain, not this check's
		for {
			sink++
		}
	}()
	f := spin
	go f() // function value: no static callee, deliberately not judged
	//lint:ignore goroutineleak fixture: process-lifetime pump, dies with the test binary
	go spinForever()
}
