package ivf

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/quant"
	"repro/internal/vec"
)

// searchConfigs returns index configurations covering every batch kernel and
// both encoding modes at dim (must be divisible by 4 for PQ/OPQ).
func searchConfigs(t testing.TB, dim int) map[string]Config {
	t.Helper()
	pq, err := quant.NewPQ(dim, dim/4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	opq, err := quant.NewOPQ(dim, dim/4, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	pqRes, err := quant.NewPQ(dim, dim/4, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Config{
		"Flat":        {Dim: dim, NList: 12, Seed: 2},
		"SQ8":         {Dim: dim, NList: 12, Seed: 2, Quantizer: quant.NewSQ(dim, 8)},
		"SQ4":         {Dim: dim, NList: 12, Seed: 2, Quantizer: quant.NewSQ(dim, 4)},
		"PQ":          {Dim: dim, NList: 12, Seed: 2, Quantizer: pq},
		"OPQ":         {Dim: dim, NList: 12, Seed: 2, Quantizer: opq},
		"PQ-residual": {Dim: dim, NList: 12, Seed: 2, Quantizer: pqRes, ByResidual: true},
	}
}

// TestSearcherEquivalentToSearch pins the pooled scan path and an explicit
// Searcher to identical output (IDs and scores) for every kernel.
func TestSearcherEquivalentToSearch(t *testing.T) {
	data := gaussianData(600, 16, 31)
	queries := gaussianData(8, 16, 32)
	for name, cfg := range searchConfigs(t, 16) {
		t.Run(name, func(t *testing.T) {
			ix := buildIndex(t, data, cfg)
			s := ix.NewSearcher()
			for qi := 0; qi < queries.Len(); qi++ {
				q := queries.Row(qi)
				want, wantStats := ix.SearchWithStats(q, 7, 4)
				got, gotStats := s.Search(nil, q, 7, 4)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("query %d: searcher %v != pooled %v", qi, got, want)
				}
				if gotStats != wantStats {
					t.Fatalf("query %d: stats %+v != %+v", qi, gotStats, wantStats)
				}
			}
		})
	}
}

// TestSearchBatchEquivalence is the batch/sequential equivalence property:
// the worker-pool path must produce byte-identical results to sequential
// SearchWithStats for every kernel. Run under -race in tier-1, it also
// certifies that the pooled searchers do not share mutable state.
func TestSearchBatchEquivalence(t *testing.T) {
	data := gaussianData(500, 16, 41)
	queries := gaussianData(24, 16, 42)
	for name, cfg := range searchConfigs(t, 16) {
		t.Run(name, func(t *testing.T) {
			ix := buildIndex(t, data, cfg)
			// Tombstones exercise the dead-position cursor under concurrency.
			for id := int64(0); id < 40; id += 4 {
				ix.Remove(id)
			}
			batch := ix.SearchBatch(queries, 6, 5)
			for qi := 0; qi < queries.Len(); qi++ {
				wantN, wantS := ix.SearchWithStats(queries.Row(qi), 6, 5)
				if !reflect.DeepEqual(batch[qi].Neighbors, wantN) {
					t.Fatalf("query %d: batch %v != sequential %v", qi, batch[qi].Neighbors, wantN)
				}
				if batch[qi].Stats != wantS {
					t.Fatalf("query %d: stats %+v != %+v", qi, batch[qi].Stats, wantS)
				}
			}
		})
	}
}

// TestSearcherNProbeClamp hits the Searcher directly with out-of-range
// nProbe values — the regression test for the old nearestCells slice panic
// when nProbe exceeded NList.
func TestSearcherNProbeClamp(t *testing.T) {
	data := gaussianData(100, 4, 7)
	ix := buildIndex(t, data, Config{Dim: 4, NList: 5, Seed: 1})
	s := ix.NewSearcher()
	res, stats := s.Search(nil, data.Row(0), 3, 99)
	if stats.CellsProbed != 5 {
		t.Fatalf("nProbe=99 probed %d cells, want 5", stats.CellsProbed)
	}
	if len(res) != 3 {
		t.Fatalf("nProbe=99 returned %d results, want 3", len(res))
	}
	if _, stats = s.Search(nil, data.Row(0), 3, -4); stats.CellsProbed != 1 {
		t.Fatalf("nProbe=-4 probed %d cells, want 1", stats.CellsProbed)
	}
}

// TestSearcherZeroAlloc is the steady-state allocation contract: a warmed
// Searcher with a recycled result slice performs zero heap allocations per
// query, for every kernel and in residual mode.
func TestSearcherZeroAlloc(t *testing.T) {
	data := gaussianData(600, 16, 51)
	queries := gaussianData(4, 16, 52)
	for name, cfg := range searchConfigs(t, 16) {
		t.Run(name, func(t *testing.T) {
			ix := buildIndex(t, data, cfg)
			s := ix.NewSearcher()
			dst := make([]vec.Neighbor, 0, 16)
			for qi := 0; qi < queries.Len(); qi++ { // warm all scratch
				dst, _ = s.Search(dst[:0], queries.Row(qi), 8, 6)
			}
			allocs := testing.AllocsPerRun(50, func() {
				dst, _ = s.Search(dst[:0], queries.Row(1), 8, 6)
			})
			if allocs != 0 {
				t.Fatalf("%s: %v allocations per query", name, allocs)
			}
		})
	}
}

// TestSearcherTombstoneCursor checks the sorted-position skip logic against
// removals scattered across block boundaries, before and after Compact.
func TestSearcherTombstoneCursor(t *testing.T) {
	data := gaussianData(900, 8, 61)
	ix := buildIndex(t, data, Config{Dim: 8, NList: 3, Seed: 9})
	removed := map[int64]bool{}
	for id := int64(0); id < 900; id += 7 {
		if ix.Remove(id) {
			removed[id] = true
		}
	}
	check := func(stage string) {
		t.Helper()
		for qi := 0; qi < 5; qi++ {
			res, stats := ix.SearchWithStats(data.Row(qi*13), 900, ix.NList())
			if stats.VectorsScanned != ix.Len() {
				t.Fatalf("%s: scanned %d, want %d live", stage, stats.VectorsScanned, ix.Len())
			}
			for _, nb := range res {
				if removed[nb.ID] {
					t.Fatalf("%s: removed id %d surfaced", stage, nb.ID)
				}
			}
		}
	}
	check("tombstoned")
	ix.Compact()
	if ix.Tombstones() != 0 {
		t.Fatalf("tombstones remain after Compact")
	}
	check("compacted")
}

// BenchmarkSearcherScan is the end-to-end serving-path benchmark: one warmed
// Searcher, steady-state queries against a 20k-vector index.
func BenchmarkSearcherScan(b *testing.B) {
	const dim = 64
	data := gaussianData(20000, dim, 1)
	pq, err := quant.NewPQ(dim, dim/8, 8, 3)
	if err != nil {
		b.Fatal(err)
	}
	quantizers := map[string]quant.Quantizer{
		"Flat": nil,
		"SQ8":  quant.NewSQ(dim, 8),
		"SQ4":  quant.NewSQ(dim, 4),
		"PQ":   pq,
	}
	for name, qz := range quantizers {
		b.Run(fmt.Sprintf("%s/probe8", name), func(b *testing.B) {
			ix, err := New(Config{Dim: dim, NList: 100, Seed: 1, Quantizer: qz})
			if err != nil {
				b.Fatal(err)
			}
			if err := ix.Train(data); err != nil {
				b.Fatal(err)
			}
			if err := ix.AddBatch(0, data); err != nil {
				b.Fatal(err)
			}
			s := ix.NewSearcher()
			dst := make([]vec.Neighbor, 0, 16)
			q := data.Row(0)
			dst, _ = s.Search(dst[:0], q, 10, 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst, _ = s.Search(dst[:0], q, 10, 8)
			}
		})
	}
}
