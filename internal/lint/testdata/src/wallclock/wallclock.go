// Package hwmodel (fixture): the analyzer scopes on the package *name*, so
// this file impersonates an analytical-model package.
package hwmodel

import "time"

func bad() time.Time {
	return time.Now() // line 8: flagged
}

func badSince(t time.Time) time.Duration {
	return time.Since(t) // line 12: flagged
}

func badUntil(t time.Time) time.Duration {
	return time.Until(t) // line 16: flagged
}

// now is the injectable clock seam: referencing time.Now as a value is
// allowed; only calls are wall-clock reads.
var now = time.Now

func good(t time.Time) time.Duration {
	return now().Sub(t)
}

func goodDuration() time.Duration {
	return 5 * time.Millisecond
}

func suppressed() time.Time {
	//lint:ignore wallclock measured-mode validation needs real wall time
	return time.Now()
}
