// Package hotpathclock is the fixture for the hotpathclock analyzer. The
// `now` seam mirrors the clock seam the serving packages use for test
// injection: calls through it are clock reads even though the callee is a
// plain function value.
package hotpathclock

import (
	"fmt"
	"time"
)

var now = time.Now

type probe struct{ t0 time.Time }

//hermes:hotpath
func scan(ph *probe, xs []float32) float32 {
	t0 := now() // want "ungated clock read now()"
	if ph != nil {
		ph.t0 = now() // gated: fine
	}
	var sum float32
	for _, x := range xs {
		sum += x
	}
	if sum < 0 {
		panic(fmt.Sprintf("bad sum %f", sum)) // gated: fine
	}
	_ = time.Since(t0) // want "ungated clock read time.Since()"
	// fmt.Sprintf here would be hotpathalloc's finding, not hotpathclock's:
	// the clock check is clocks-only since the alloc lattice took over.
	return sum
}

//hermes:hotpath
func scanGated(mode int) string {
	switch mode {
	case 1:
		return fmt.Sprintf("m%d", mode) // case body is gated: fine
	}
	go func() { _ = time.Now() }() // closures run on their own schedule: fine
	return ""
}

//hermes:hotpath
func scanSuppressed(n int) time.Duration {
	//lint:ignore hotpathclock fixture: this function is timed by design
	start := time.Now()
	for i := 0; i < n; i++ {
	}
	if n > 0 {
		return time.Since(start) // gated: fine
	}
	return 0
}

// cold is unannotated: free to read the clock and format strings.
func cold() string {
	return fmt.Sprintf("%v", time.Now())
}
