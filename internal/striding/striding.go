// Package striding implements the online retrieval-strided inference loop of
// the paper's Figure 3 as an executable system (not a latency model): the
// query text is hash-embedded and searched, the top reranked chunk is
// prepended as context, s tokens are generated, the query is extended with
// the new output, and retrieval repeats — "every s tokens, the query is
// updated with generated output, repeating until completion."
//
// Generation itself is a deliberately small stand-in for the LLM: a seeded
// sampler emitting tokens drawn from the retrieved context (a retrieval-
// grounded unigram model). It is NOT a language model — the paper's quality
// claims are handled by the perplexity proxy in internal/llm — but it closes
// the loop so that striding, context refresh, and document turnover are real
// observable behaviours with tests, and it grounds every generated token in
// retrieved text the way RAG intends.
package striding

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/corpus"
	"repro/internal/encoder"
	"repro/internal/hermes"
	"repro/internal/rerank"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// TextStore is a disaggregated store whose embeddings come from the text of
// the chunks themselves (hash embeddings), so free-text queries retrieve
// meaningfully. It bundles everything the serving path needs.
type TextStore struct {
	Store    *hermes.Store
	Chunks   *corpus.ChunkStore
	Encoder  *encoder.HashEncoder
	Reranker *rerank.Reranker
}

// BuildTextStore hash-embeds every chunk's text and disaggregates the
// result — the full offline path of Figure 2 (chunk → encode → cluster →
// per-cluster index) over real text.
func BuildTextStore(c *corpus.Corpus, dim, shards int) (*TextStore, error) {
	chunks := corpus.NewChunkStore(c)
	enc := encoder.NewHashEncoder(dim)
	embedded := vec.NewMatrix(chunks.Len(), dim)
	for id := 0; id < chunks.Len(); id++ {
		txt, err := chunks.Get(int64(id))
		if err != nil {
			return nil, err
		}
		copy(embedded.Row(id), enc.Encode(txt))
	}
	store, err := hermes.Build(embedded, hermes.BuildOptions{NumShards: shards})
	if err != nil {
		return nil, err
	}
	return &TextStore{
		Store:    store,
		Chunks:   chunks,
		Encoder:  enc,
		Reranker: rerank.NewFromMatrix(rerank.InnerProduct, embedded),
	}, nil
}

// Config assembles a striding session.
type Config struct {
	// Text is the serving bundle (store, chunk text, encoder, reranker).
	Text *TextStore
	// Params are the hierarchical-search knobs.
	Params hermes.Params
	// Stride is the number of tokens generated per retrieval round.
	Stride int
	// Seed drives generation sampling.
	Seed int64
	// Trace, when non-nil, records one span per pipeline phase (encode,
	// retrieve, rerank, generate) per stride round — the generation-side
	// half of the per-query breakdown; retrieval-internal phases are traced
	// by the coordinator.
	Trace *telemetry.Trace
}

// StrideRecord documents one retrieval round.
type StrideRecord struct {
	// Retrieved lists the chunk IDs returned this round (post-rerank
	// order if a reranker is configured).
	Retrieved []int64
	// ContextChunk is the chunk prepended to the prompt.
	ContextChunk int64
	// Generated holds the tokens emitted this round.
	Generated []string
	// Stats is the retrieval work of the round.
	Stats hermes.SearchStats
}

// Result is a completed generation.
type Result struct {
	// Output is the full generated text.
	Output string
	// Strides records each retrieval round.
	Strides []StrideRecord
}

// Session runs retrieval-strided generation.
type Session struct {
	cfg Config
	rng *rand.Rand
}

// NewSession validates the configuration.
func NewSession(cfg Config) (*Session, error) {
	if cfg.Text == nil || cfg.Text.Store == nil || cfg.Text.Chunks == nil || cfg.Text.Encoder == nil {
		return nil, fmt.Errorf("striding: a complete TextStore is required")
	}
	if cfg.Stride <= 0 {
		return nil, fmt.Errorf("striding: Stride must be positive")
	}
	if cfg.Params.K <= 0 {
		cfg.Params = hermes.DefaultParams()
	}
	return &Session{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Generate produces outTokens tokens for the query, re-retrieving context
// every Stride tokens with the query embedding refreshed from the generated
// output.
func (s *Session) Generate(query string, outTokens int) (*Result, error) {
	if outTokens <= 0 {
		return nil, fmt.Errorf("striding: outTokens must be positive")
	}
	ts := s.cfg.Text
	res := &Result{}
	var generated []string
	promptText := query

	for len(generated) < outTokens {
		// Encode the current prompt (query + output so far) and retrieve.
		endEncode := s.cfg.Trace.StartSpan("encode")
		qv := ts.Encoder.Encode(promptText)
		endEncode()
		endRetrieve := s.cfg.Trace.StartSpan("retrieve")
		neighbors, stats := ts.Store.Search(qv, s.cfg.Params)
		endRetrieve()
		if len(neighbors) == 0 {
			return nil, fmt.Errorf("striding: retrieval returned nothing at stride %d", len(res.Strides))
		}
		if ts.Reranker != nil {
			endRerank := s.cfg.Trace.StartSpan("rerank")
			neighbors = ts.Reranker.Rerank(qv, neighbors)
			endRerank()
			if len(neighbors) == 0 {
				return nil, fmt.Errorf("striding: reranker dropped every candidate")
			}
		}
		rec := StrideRecord{Stats: stats, ContextChunk: neighbors[0].ID}
		for _, n := range neighbors {
			rec.Retrieved = append(rec.Retrieved, n.ID)
		}
		context, err := ts.Chunks.Get(neighbors[0].ID)
		if err != nil {
			return nil, fmt.Errorf("striding: fetch chunk %d: %w", neighbors[0].ID, err)
		}

		// Generate up to Stride tokens grounded in the retrieved context.
		want := s.cfg.Stride
		if remaining := outTokens - len(generated); remaining < want {
			want = remaining
		}
		endGenerate := s.cfg.Trace.StartSpan("generate")
		tokens := s.sampleTokens(context, want)
		endGenerate()
		rec.Generated = tokens
		generated = append(generated, tokens...)
		promptText = query + " " + strings.Join(generated, " ")
		res.Strides = append(res.Strides, rec)
	}
	res.Output = strings.Join(generated, " ")
	return res, nil
}

// sampleTokens draws tokens from the retrieved context's vocabulary,
// skipping the "[chunk N topic T]" header (everything through the first
// field that closes the bracket).
func (s *Session) sampleTokens(context string, n int) []string {
	fields := strings.Fields(context)
	if strings.HasPrefix(context, "[") {
		for i, f := range fields {
			if strings.HasSuffix(f, "]") {
				fields = fields[i+1:]
				break
			}
		}
	}
	words := fields
	if len(words) == 0 {
		words = []string{"..."}
	}
	out := make([]string, n)
	for i := range out {
		out[i] = words[s.rng.Intn(len(words))]
	}
	return out
}
