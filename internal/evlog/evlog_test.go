package evlog

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// freezeClock pins the package clock and returns a stepper.
func freezeClock(t *testing.T) func(d time.Duration) {
	t.Helper()
	cur := time.Date(2026, 1, 2, 15, 4, 5, 0, time.UTC)
	old := now
	now = func() time.Time { return cur }
	t.Cleanup(func() { now = old })
	return func(d time.Duration) { cur = cur.Add(d) }
}

func TestRingRetainsNewest(t *testing.T) {
	freezeClock(t)
	l := New(Config{Capacity: 4})
	for i := int64(1); i <= 6; i++ {
		l.Info("tick", Int("i", i))
	}
	events := l.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	for i, e := range events {
		wantSeq := uint64(6 - i)
		if e.Seq != wantSeq {
			t.Errorf("event %d seq = %d, want %d (newest first)", i, e.Seq, wantSeq)
		}
		if e.N != 1 || e.Fields[0].Num != int64(wantSeq) {
			t.Errorf("event %d fields = %+v", i, e.Fields[:e.N])
		}
	}
	if s := l.Stats(); s.Emitted != 6 || s.Dropped != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestMinLevel(t *testing.T) {
	freezeClock(t)
	l := New(Config{MinLevel: LevelWarn})
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	events := l.Events()
	if len(events) != 2 || events[0].Name != "e" || events[1].Name != "w" {
		t.Fatalf("events = %+v", events)
	}
}

func TestRateLimitPerName(t *testing.T) {
	step := freezeClock(t)
	l := New(Config{RatePerSec: 1, Burst: 2})
	for i := 0; i < 5; i++ {
		l.Warn("noisy")
	}
	l.Warn("quiet") // independent bucket: not starved by "noisy"
	if got := len(l.Events()); got != 3 {
		t.Fatalf("retained %d events, want 3 (burst 2 of noisy + 1 quiet)", got)
	}
	if s := l.Stats(); s.Dropped != 3 {
		t.Errorf("dropped = %d, want 3", s.Dropped)
	}
	if d := l.DroppedByName(); d["noisy"] != 3 || d["quiet"] != 0 {
		t.Errorf("droppedBy = %v", d)
	}
	step(2 * time.Second) // refill 2 tokens
	l.Warn("noisy")
	l.Warn("noisy")
	l.Warn("noisy")
	if s := l.Stats(); s.Emitted != 5 || s.Dropped != 4 {
		t.Errorf("after refill stats = %+v, want 5 emitted / 4 dropped", s)
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Emit(LevelError, "x", Int("a", 1))
	l.Info("y")
	if l.Events() != nil || l.Stats() != (Stats{}) || l.DroppedByName() != nil {
		t.Error("nil log leaked state")
	}
}

// TestEmitAllocs pins the hot-path contract: emitting with constructor-built
// fields allocates nothing — on a nil (disabled) log, which is what gated
// //hermes:hotpath call sites rely on, and on an enabled log, whose ring
// slots are preallocated.
func TestEmitAllocs(t *testing.T) {
	var nilLog *Log
	if got := testing.AllocsPerRun(100, func() {
		nilLog.Warn("deadline.hit", Int("shard", 3), Dur("after", time.Second), Str("addr", "x"))
	}); got != 0 {
		t.Errorf("disabled emit allocates %v/op, want 0", got)
	}
	freezeClock(t)
	l := New(Config{Capacity: 64, RatePerSec: 1e9, Burst: 1})
	l.Warn("deadline.hit") // warm the rate bucket and dropped map path
	if got := testing.AllocsPerRun(100, func() {
		l.Warn("deadline.hit", Int("shard", 3), Dur("after", time.Second), Str("addr", "x"))
	}); got != 0 {
		t.Errorf("enabled emit allocates %v/op, want 0", got)
	}
}

func TestEventString(t *testing.T) {
	freezeClock(t)
	l := New(Config{})
	l.Warn("conn.poisoned", Int("shard", 2), Err(errors.New("read timeout")), Dur("after", 1500*time.Millisecond), Float("ratio", 0.5))
	got := l.Events()[0].String()
	want := `2026-01-02T15:04:05.000Z WARN  conn.poisoned shard=2 err="read timeout" after=1.5s ratio=0.5`
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if f := Err(nil); f.Str != "" || f.Key != "err" {
		t.Errorf("Err(nil) = %+v", f)
	}
}

func TestFieldTruncation(t *testing.T) {
	freezeClock(t)
	l := New(Config{})
	fields := make([]Field, MaxFields+3)
	for i := range fields {
		fields[i] = Int("k", int64(i))
	}
	l.Info("wide", fields...)
	if e := l.Events()[0]; e.N != MaxFields {
		t.Errorf("N = %d, want %d", e.N, MaxFields)
	}
}

func TestServeEvents(t *testing.T) {
	freezeClock(t)
	l := New(Config{})
	l.Warn("node.redial", Int("shard", 1), Str("addr", "127.0.0.1:7001"))

	rec := httptest.NewRecorder()
	l.ServeEvents(rec, httptest.NewRequest("GET", "/debug/events", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "node.redial") || !strings.Contains(body, `addr="127.0.0.1:7001"`) {
		t.Errorf("text body missing event: %s", body)
	}

	rec = httptest.NewRecorder()
	l.ServeEvents(rec, httptest.NewRequest("GET", "/debug/events?format=json", nil))
	var out struct {
		Emitted uint64 `json:"emitted"`
		Events  []struct {
			Name   string         `json:"name"`
			Level  string         `json:"level"`
			Fields map[string]any `json:"fields"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("json: %v\n%s", err, rec.Body.String())
	}
	if out.Emitted != 1 || len(out.Events) != 1 || out.Events[0].Name != "node.redial" ||
		out.Events[0].Level != "WARN" || out.Events[0].Fields["shard"] != float64(1) {
		t.Errorf("json = %+v", out)
	}

	rec = httptest.NewRecorder()
	(*Log)(nil).ServeEvents(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if !strings.Contains(rec.Body.String(), "disabled") {
		t.Errorf("nil handler body = %q", rec.Body.String())
	}
}

// TestConcurrentEmit exercises the ring under -race.
func TestConcurrentEmit(t *testing.T) {
	l := New(Config{Capacity: 32, RatePerSec: 1000, Burst: 10})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Info("spin", Int("g", int64(g)), Int("i", int64(i)))
				if i%50 == 0 {
					l.Events()
					l.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	s := l.Stats()
	if s.Emitted+s.Dropped != 1600 {
		t.Errorf("emitted %d + dropped %d != 1600", s.Emitted, s.Dropped)
	}
}
