package distsearch

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/hermes"
	"repro/internal/hwmodel"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// recordedCluster is telemetryCluster plus a flight recorder wired through
// DialOptions and the DVFS energy model enabled, i.e. the full observability
// stack a production deployment would run.
func recordedCluster(t testing.TB, chunks, shards int) (*Coordinator, *corpus.Corpus, *telemetry.Registry, *telemetry.Recorder) {
	t.Helper()
	c, err := corpus.Generate(corpus.Spec{NumChunks: chunks, Dim: 16, NumTopics: shards, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st, err := hermes.Build(c.Vectors, hermes.BuildOptions{NumShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(64, 0)
	var nodes []*Node
	var addrs []string
	for i, shard := range st.Shards {
		node, err := NewNode(i, shard.Index, nil)
		if err != nil {
			t.Fatal(err)
		}
		node.SetTelemetry(reg)
		if err := node.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
		addrs = append(addrs, node.Addr())
	}
	co, err := DialOpts(addrs, DialOptions{Timeout: time.Second, Telemetry: reg, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if err := co.EnableEnergyModel(hwmodel.XeonGold6448Y, 256); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := co.Close(); err != nil {
			t.Errorf("close coordinator: %v", err)
		}
		for _, n := range nodes {
			if err := n.Close(); err != nil {
				t.Errorf("close node: %v", err)
			}
		}
	})
	return co, c, reg, rec
}

// scrape fetches one admin endpoint off the test server and returns the body.
func scrape(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// sumSeries sums every sample of the named metric in a Prometheus text page.
func sumSeries(t *testing.T, page, name string) (float64, int) {
	t.Helper()
	var sum float64
	var n int
	for _, line := range strings.Split(page, "\n") {
		if !strings.HasPrefix(line, name) || strings.HasPrefix(line, "# ") {
			continue
		}
		rest := line[len(name):]
		if len(rest) > 0 && rest[0] != '{' && rest[0] != ' ' {
			continue // longer metric name sharing the prefix
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		sum += v
		n++
	}
	return sum, n
}

// TestClusterTracingEndToEnd runs the full observability path over a real TCP
// cluster: a traced query must yield node-side spans from every probed shard
// in the coordinator's waterfall, /debug/queries?trace=<id> must return the
// flight-recorder record over real HTTP, and the scraped /metrics page must
// carry per-shard deep-search load, the imbalance gauge, and modeled per-node
// energy series whose joules increase monotonically across scrapes.
func TestClusterTracingEndToEnd(t *testing.T) {
	const shards = 4
	co, c, reg, rec := recordedCluster(t, 1200, shards)
	srv := httptest.NewServer(telemetry.NewAdminMuxOpts(reg, rec))
	defer srv.Close()

	qs := c.Queries(1, 11)
	p := hermes.DefaultParams()
	tr := telemetry.NewTrace()
	res, err := co.SearchTraced(qs.Vectors.Row(0), p, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) == 0 || len(res.DeepNodes) == 0 {
		t.Fatalf("traced query returned nothing: %+v", res)
	}

	// Every probed shard (all of them: the sample phase scatters to every
	// node) contributed node-side spans to the waterfall.
	spansByNode := make(map[int]int)
	for _, s := range tr.Spans() {
		if s.Node != telemetry.NodeLocal {
			spansByNode[s.Node]++
		}
	}
	for shard := 0; shard < shards; shard++ {
		if spansByNode[shard] == 0 {
			t.Errorf("shard %d shipped no spans into the waterfall (by node: %v)", shard, spansByNode)
		}
	}
	waterfall := tr.Waterfall()
	for _, phase := range []string{"sample_scatter", "list_scan", "encode"} {
		if !strings.Contains(waterfall, phase) {
			t.Errorf("waterfall missing %s:\n%s", phase, waterfall)
		}
	}

	// The flight recorder serves the record over real HTTP, by trace ID.
	code, body := scrape(t, fmt.Sprintf("%s/debug/queries?trace=%016x", srv.URL, tr.ID()))
	if code != http.StatusOK {
		t.Fatalf("/debug/queries?trace=: status %d, body %q", code, body)
	}
	for _, want := range []string{fmt.Sprintf("%016x", tr.ID()), "list_scan", "deep="} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/queries?trace= body missing %q:\n%s", want, body)
		}
	}
	code, listing := scrape(t, srv.URL+"/debug/queries")
	if code != http.StatusOK || !strings.Contains(listing, fmt.Sprintf("%016x", tr.ID())) {
		t.Errorf("/debug/queries listing (status %d) missing the trace:\n%s", code, listing)
	}

	// First scrape: load, imbalance, and energy series are all present.
	_, page := scrape(t, srv.URL+"/metrics")
	if _, n := sumSeries(t, page, "hermes_coordinator_shard_deep_total"); n == 0 {
		t.Error("/metrics missing hermes_coordinator_shard_deep_total")
	}
	if _, n := sumSeries(t, page, "hermes_coordinator_load_imbalance_ratio"); n == 0 {
		t.Error("/metrics missing hermes_coordinator_load_imbalance_ratio")
	}
	joules1, n := sumSeries(t, page, "hermes_energy_model_joules")
	if n != shards {
		t.Fatalf("want %d hermes_energy_model_joules series, got %d", shards, n)
	}
	if _, n := sumSeries(t, page, "hermes_energy_model_ghz"); n != shards {
		t.Errorf("want %d hermes_energy_model_ghz series, got %d", shards, n)
	}

	// More load plus a nonzero window, then scrape again: cumulative joules
	// are monotonic (idle windows still accrue idle power).
	for i := 0; i < 4; i++ {
		if _, err := co.Search(qs.Vectors.Row(0), p); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(5 * time.Millisecond)
	_, page = scrape(t, srv.URL+"/metrics")
	joules2, _ := sumSeries(t, page, "hermes_energy_model_joules")
	if !(joules2 > joules1) {
		t.Errorf("modeled joules must increase across scrapes: %v then %v", joules1, joules2)
	}
}

// v2NodeResponse is the span-less pre-v3 response shape an uninstrumented
// node would send.
type v2NodeResponse struct {
	Err                                       string
	ShardID, Size, Dim                        int
	Neighbors                                 []vec.Neighbor
	Batch                                     [][]vec.Neighbor
	Centroid                                  []float32
	OK                                        bool
	SampleServed, DeepServed, MutationsServed int64
	Tombstones                                int
	ServerNanos                               int64
	Telemetry                                 map[string]float64
}

// serveV2Node runs a minimal span-less shard node speaking the pre-v3
// protocol: it answers OpInfo/OpSample/OpDeep with v2NodeResponse and never
// ships spans, exactly like a node running the previous release.
func serveV2Node(t *testing.T, ln net.Listener, shardID, dim int) {
	t.Helper()
	//lint:ignore goroutinectx accept loop exits when the test's deferred ln.Close unblocks Accept; the test process outlives every connection
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			//lint:ignore goroutinectx per-conn handler exits when the coordinator closes the conn at test end
			go func(conn net.Conn) {
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				enc := gob.NewEncoder(conn)
				for {
					var req Request
					if err := dec.Decode(&req); err != nil {
						return
					}
					resp := v2NodeResponse{ShardID: shardID, Size: 10, Dim: dim}
					switch req.Op {
					case OpInfo:
						resp.Centroid = make([]float32, dim)
					case OpSample:
						resp.Neighbors = []vec.Neighbor{{ID: int64(shardID), Score: float32(shardID)}}
					case OpDeep:
						resp.Neighbors = []vec.Neighbor{
							{ID: int64(shardID * 10), Score: float32(shardID)},
							{ID: int64(shardID*10 + 1), Score: float32(shardID) + 0.5},
						}
					default:
						resp.Err = "unsupported op"
					}
					if err := enc.Encode(&resp); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
}

// TestMixedVersionClusterEmptyWaterfall proves version-skew safety: a new
// coordinator serving traced queries off uninstrumented v2 nodes gets
// results and an empty (coordinator-phases-only) waterfall, not an error.
func TestMixedVersionClusterEmptyWaterfall(t *testing.T) {
	const dim = 16
	var addrs []string
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		//lint:ignore deferinloop bounded two-iteration setup loop; both listeners must live until the test ends
		defer ln.Close()
		serveV2Node(t, ln, i, dim)
		addrs = append(addrs, ln.Addr().String())
	}

	co, err := DialOpts(addrs, DialOptions{Timeout: time.Second, Telemetry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	q := make([]float32, dim)
	p := hermes.DefaultParams()
	p.DeepClusters = 1
	tr := telemetry.NewTrace()
	res, err := co.SearchTraced(q, p, tr)
	if err != nil {
		t.Fatalf("traced query against v2 nodes must not error: %v", err)
	}
	if len(res.Neighbors) == 0 {
		t.Fatal("traced query against v2 nodes returned nothing")
	}
	for _, s := range tr.Spans() {
		if s.Node != telemetry.NodeLocal {
			t.Errorf("v2 nodes cannot ship spans, yet got %q from node %d", s.Name, s.Node)
		}
	}
	counts := make(map[string]int)
	for _, s := range tr.Spans() {
		counts[s.Name]++
	}
	for _, phase := range []string{"sample_scatter", "rank", "deep_gather"} {
		if counts[phase] != 1 {
			t.Errorf("coordinator phase %s recorded %d spans, want 1", phase, counts[phase])
		}
	}
	if len(counts) != 3 {
		t.Errorf("waterfall must hold only coordinator phases: %v", counts)
	}
}
