package batcher

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vec"
)

// TestConcurrentSubmittersAndClose races many submitters against a
// concurrent Close. The contract under test: every Search returns either a
// real result or the "batcher: closed" rejection — never a hang, never a
// lost request — and queries accepted before Close are all processed.
func TestConcurrentSubmittersAndClose(t *testing.T) {
	var processed int64
	b, err := New(Config{
		MaxBatch: 8,
		MaxWait:  500 * time.Microsecond,
		Process: func(queries [][]float32) ([][]vec.Neighbor, error) {
			atomic.AddInt64(&processed, int64(len(queries)))
			return echoProcess(queries)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	const perWorker = 40
	var served, rejected int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWorker; i++ {
				res, err := b.Search([]float32{float32(w*perWorker + i)})
				switch {
				case err == nil && len(res) == 1:
					atomic.AddInt64(&served, 1)
				case err != nil && strings.Contains(err.Error(), "closed"):
					atomic.AddInt64(&rejected, 1)
				default:
					t.Errorf("worker %d query %d: res=%v err=%v", w, i, res, err)
				}
			}
		}(w)
	}
	close(start)
	// Close mid-stream, racing the submitters.
	time.Sleep(time.Millisecond)
	b.Close()
	b.Close() // double-close must be safe
	wg.Wait()

	if served+rejected != workers*perWorker {
		t.Fatalf("accounted for %d of %d queries", served+rejected, workers*perWorker)
	}
	if got := atomic.LoadInt64(&processed); got != served {
		t.Fatalf("process saw %d queries, %d were served", got, served)
	}
	t.Logf("served %d, rejected %d after close", served, rejected)
}
