package ivf

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/quant"
	"repro/internal/vec"
)

// wireIndex is the gob-encoded form of an Index. Only SQ8 and Flat
// quantizers round-trip (the configurations the paper deploys); PQ/OPQ
// indexes are research artifacts rebuilt from data.
type wireIndex struct {
	Dim       int
	NList     int
	Seed      int64
	Quant     string // "Flat", "SQ8", "SQ4"
	QuantBlob []byte
	Centroids []float32
	ListIDs   [][]int64
	ListCodes [][]byte
	Count     int
}

// Save serializes the index in gob format.
func (ix *Index) Save(w io.Writer) error {
	if !ix.trained {
		return fmt.Errorf("ivf: cannot serialize untrained index")
	}
	wi := wireIndex{
		Dim:       ix.cfg.Dim,
		NList:     ix.cfg.NList,
		Seed:      ix.cfg.Seed,
		Quant:     ix.cfg.Quantizer.Name(),
		Centroids: append([]float32(nil), ix.centroids.Data()...),
		Count:     ix.count,
	}
	switch q := ix.cfg.Quantizer.(type) {
	case *quant.Flat:
		// no parameters
	case *quant.SQ:
		blob, err := q.MarshalParams()
		if err != nil {
			return fmt.Errorf("ivf: serialize quantizer: %w", err)
		}
		wi.QuantBlob = blob
	default:
		return fmt.Errorf("ivf: quantizer %s is not serializable", ix.cfg.Quantizer.Name())
	}
	wi.ListIDs = make([][]int64, len(ix.lists))
	wi.ListCodes = make([][]byte, len(ix.lists))
	for i := range ix.lists {
		wi.ListIDs[i] = ix.lists[i].ids
		wi.ListCodes[i] = ix.lists[i].codes
	}
	return gob.NewEncoder(w).Encode(&wi)
}

// ReadFrom deserializes an index written by Save.
func ReadFrom(r io.Reader) (*Index, error) {
	var wi wireIndex
	if err := gob.NewDecoder(r).Decode(&wi); err != nil {
		return nil, fmt.Errorf("ivf: decode: %w", err)
	}
	var qz quant.Quantizer
	switch wi.Quant {
	case "Flat":
		qz = quant.NewFlat(wi.Dim)
	case "SQ8", "SQ4":
		sq, err := quant.SQFromParams(wi.Dim, wi.QuantBlob)
		if err != nil {
			return nil, fmt.Errorf("ivf: restore quantizer: %w", err)
		}
		qz = sq
	default:
		return nil, fmt.Errorf("ivf: unknown serialized quantizer %q", wi.Quant)
	}
	ix, err := New(Config{Dim: wi.Dim, NList: wi.NList, Quantizer: qz, Seed: wi.Seed})
	if err != nil {
		return nil, err
	}
	ix.centroids = vec.NewMatrix(wi.NList, wi.Dim)
	copy(ix.centroids.Data(), wi.Centroids)
	ix.lists = make([]invList, wi.NList)
	for i := range ix.lists {
		ix.lists[i].ids = wi.ListIDs[i]
		ix.lists[i].codes = wi.ListCodes[i]
	}
	ix.count = wi.Count
	ix.trained = true
	return ix, nil
}
