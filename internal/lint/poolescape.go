package lint

import (
	"go/ast"
	"go/types"
)

// PoolEscape flags sync.Pool Get values that escape the function that
// borrowed them: returned to the caller, stored into a struct field, or
// assigned to a package-level variable. A pooled object is only safe while
// its lifetime is bracketed by Get/Put inside one frame; once a reference
// escapes, a later Put hands the object to another goroutine while the
// escaped reference still reads it — the classic recycled-scratch-buffer
// race that corrupts top-k heaps under load and never reproduces in a
// single-query test.
//
// Typed pool facades (a get() accessor that wraps pool.Get and is always
// paired with put()) are a deliberate pattern; annotate the accessor's
// return with //lint:ignore poolescape <reason>.
var PoolEscape = &Analyzer{
	Name:      "poolescape",
	Doc:       "sync.Pool Get value escaping via return, struct field, or global outlives its Get/Put bracket",
	Run:       runPoolEscape,
	TestFiles: true,
}

func runPoolEscape(p *Pass) {
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				poolEscapeFunc(p, fd)
			}
		}
	}
}

func poolEscapeFunc(p *Pass, fd *ast.FuncDecl) {
	// Pass 1: variables bound (possibly through a type assertion) to a
	// pool.Get result anywhere in the function, including closures — the
	// object identity carries across FuncLit boundaries.
	pooled := make(map[*types.Var]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if !isPoolGet(p, rhs) {
					continue
				}
				// v := pool.Get() and v, ok := pool.Get().(*T) both bind
				// the pooled object to the first matching LHS.
				if i < len(s.Lhs) {
					if v := assignedVar(p, s.Lhs[i]); v != nil {
						pooled[v] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, val := range s.Values {
				if isPoolGet(p, val) && i < len(s.Names) {
					if v, ok := p.Info.Defs[s.Names[i]].(*types.Var); ok {
						pooled[v] = true
					}
				}
			}
		}
		return true
	})

	// Pass 2: escapes. Both the tracked variables and direct pool.Get
	// results count.
	escapes := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if isPoolGet(p, e) {
			return true
		}
		if id, ok := e.(*ast.Ident); ok {
			if v, ok := p.Info.Uses[id].(*types.Var); ok {
				return pooled[v]
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if escapes(res) {
					p.Reportf(res.Pos(), "sync.Pool Get value returned from %s; the pooled object outlives its Get/Put bracket and a later Put recycles it under the caller — copy the data out, or suppress a deliberate typed-pool accessor with //lint:ignore poolescape <reason>", fd.Name.Name)
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				if i >= len(s.Lhs) || !escapes(rhs) {
					continue
				}
				switch lhs := ast.Unparen(s.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					if sel, ok := p.Info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
						p.Reportf(s.Pos(), "sync.Pool Get value stored into struct field %s; the field outlives the Get/Put bracket and reads a recycled object — copy the data out, or suppress with //lint:ignore poolescape <reason>", types.ExprString(lhs))
					}
				case *ast.Ident:
					if v, ok := p.Info.Uses[lhs].(*types.Var); ok && isPackageLevel(v, p.Pkg) {
						p.Reportf(s.Pos(), "sync.Pool Get value stored into package-level variable %s; the global outlives the Get/Put bracket and reads a recycled object — copy the data out, or suppress with //lint:ignore poolescape <reason>", lhs.Name)
					}
				}
			}
		}
		return true
	})
}

// assignedVar resolves the variable an assignment LHS binds, whether the
// ident is defined here (:=) or reused (=).
func assignedVar(p *Pass, lhs ast.Expr) *types.Var {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := p.Info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := p.Info.Uses[id].(*types.Var)
	return v
}

// isPoolGet reports whether e is a (possibly type-asserted) call to
// (*sync.Pool).Get.
func isPoolGet(p *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var, pkg *types.Package) bool {
	return pkg != nil && v.Parent() == pkg.Scope()
}
