// Package ivf implements an Inverted File (IVF) approximate nearest-neighbor
// index, the index family the paper builds Hermes on: a k-means coarse
// quantizer partitions the vector space into nlist cells, vectors are stored
// (optionally compressed by a quantizer from internal/quant) in per-cell
// inverted lists, and a query scans only the nProbe cells whose centroids are
// closest to it.
//
// The nProbe runtime parameter is central to Hermes' hierarchical search: the
// sample phase uses a small nProbe (default 8) and the deep phase a large one
// (default 128).
package ivf

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/kmeans"
	"repro/internal/quant"
	"repro/internal/vec"
)

// Config describes an IVF index before training.
type Config struct {
	Dim int
	// NList is the number of coarse cells. The paper uses nlist = 4*sqrt(n);
	// if NList <= 0 Train derives it with DefaultNList.
	NList int
	// Quantizer compresses stored vectors; nil means Flat (no compression).
	Quantizer quant.Quantizer
	// Seed drives coarse k-means initialization.
	Seed int64
	// TrainSample, if > 0, caps the number of vectors used to train the
	// coarse quantizer.
	TrainSample int
	// KMeansIters bounds coarse training iterations (default 20).
	KMeansIters int
	// ByResidual encodes each vector's residual from its coarse centroid
	// instead of the raw vector (the FAISS IVF-PQ convention). Residuals
	// concentrate near the origin, so a given quantization budget loses
	// less information — most useful with PQ and SQ4 codes. Searches then
	// evaluate distances per probed cell with the query's own residual.
	ByResidual bool
}

// DefaultNList returns the paper's nlist heuristic 4*sqrt(n), clamped to at
// least 1 and at most n.
func DefaultNList(n int) int {
	if n <= 0 {
		return 1
	}
	nlist := 1
	for nlist*nlist < 16*n { // nlist = ceil(4*sqrt(n))
		nlist++
	}
	if nlist > n {
		nlist = n
	}
	return nlist
}

// SearchStats reports the work done by one query, the quantity latency and
// energy models are driven by.
type SearchStats struct {
	CellsProbed    int
	VectorsScanned int
}

// Index is a trained IVF index. Add and Search may be used concurrently with
// other Searches, but Add must not race with Search.
type Index struct {
	cfg       Config
	centroids *vec.Matrix
	lists     []invList
	count     int
	trained   bool
	// deadPos holds tombstoned slot positions per inverted list, sorted
	// ascending, so scans skip them with a cursor instead of a per-vector
	// map lookup (see mutate.go). nil until the first Remove.
	deadPos   [][]uint32
	deadCount int
	// pool recycles Searcher scratch across Search calls.
	pool sync.Pool
	// groupPool recycles GroupSearcher scratch across SearchGroup calls.
	groupPool sync.Pool
}

type invList struct {
	ids   []int64
	codes []byte // count * codeSize, contiguous
}

// New returns an untrained index.
func New(cfg Config) (*Index, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("ivf: Dim must be positive, got %d", cfg.Dim)
	}
	if cfg.Quantizer == nil {
		cfg.Quantizer = quant.NewFlat(cfg.Dim)
	}
	if cfg.Quantizer.Dim() != cfg.Dim {
		return nil, fmt.Errorf("ivf: quantizer dim %d != index dim %d", cfg.Quantizer.Dim(), cfg.Dim)
	}
	if cfg.KMeansIters <= 0 {
		cfg.KMeansIters = 20
	}
	return &Index{cfg: cfg}, nil
}

// Train fits the coarse quantizer (and the vector quantizer) on data.
func (ix *Index) Train(data *vec.Matrix) error {
	if data == nil || data.Len() == 0 {
		return fmt.Errorf("ivf: Train requires data")
	}
	if data.Dim != ix.cfg.Dim {
		return fmt.Errorf("ivf: data dim %d != index dim %d", data.Dim, ix.cfg.Dim)
	}
	nlist := ix.cfg.NList
	if nlist <= 0 {
		nlist = DefaultNList(data.Len())
	}
	if nlist > data.Len() {
		nlist = data.Len()
	}
	res, err := kmeans.Train(data, kmeans.Config{
		K:          nlist,
		Seed:       ix.cfg.Seed,
		PlusPlus:   true,
		MaxIters:   ix.cfg.KMeansIters,
		SampleSize: ix.cfg.TrainSample,
	})
	if err != nil {
		return fmt.Errorf("ivf: coarse training: %w", err)
	}
	trainSet := data
	if ix.cfg.ByResidual {
		// Train the quantizer on residuals, the distribution it will
		// actually encode.
		trainSet = vec.NewMatrix(data.Len(), data.Dim)
		for i := 0; i < data.Len(); i++ {
			cell, _ := res.Centroids.ArgMinL2(data.Row(i))
			row := trainSet.Row(i)
			copy(row, data.Row(i))
			centroid := res.Centroids.Row(cell)
			for d := range row {
				row[d] -= centroid[d]
			}
		}
	}
	if err := ix.cfg.Quantizer.Train(trainSet); err != nil {
		return fmt.Errorf("ivf: quantizer training: %w", err)
	}
	ix.centroids = res.Centroids
	ix.lists = make([]invList, nlist)
	ix.cfg.NList = nlist
	ix.trained = true
	return nil
}

// Trained reports whether Train has completed.
func (ix *Index) Trained() bool { return ix.trained }

// NList returns the number of coarse cells (0 before training).
func (ix *Index) NList() int { return ix.cfg.NList }

// Dim returns the vector dimensionality.
func (ix *Index) Dim() int { return ix.cfg.Dim }

// Len returns the number of stored vectors.
func (ix *Index) Len() int { return ix.count }

// QuantizerName reports the compression scheme in use.
func (ix *Index) QuantizerName() string { return ix.cfg.Quantizer.Name() }

// Add stores a vector under id.
func (ix *Index) Add(id int64, v []float32) error {
	if !ix.trained {
		return fmt.Errorf("ivf: Add before Train")
	}
	if len(v) != ix.cfg.Dim {
		return fmt.Errorf("ivf: Add dim %d != %d", len(v), ix.cfg.Dim)
	}
	cell, _ := ix.centroids.ArgMinL2(v)
	cs := ix.cfg.Quantizer.CodeSize()
	l := &ix.lists[cell]
	l.ids = append(l.ids, id)
	start := len(l.codes)
	l.codes = append(l.codes, make([]byte, cs)...)
	toEncode := v
	if ix.cfg.ByResidual {
		res := make([]float32, len(v))
		centroid := ix.centroids.Row(cell)
		for d := range v {
			res[d] = v[d] - centroid[d]
		}
		toEncode = res
	}
	ix.cfg.Quantizer.Encode(toEncode, l.codes[start:start+cs])
	ix.count++
	return nil
}

// AddBatch stores all rows of m with IDs startID, startID+1, ...
func (ix *Index) AddBatch(startID int64, m *vec.Matrix) error {
	for i := 0; i < m.Len(); i++ {
		if err := ix.Add(startID+int64(i), m.Row(i)); err != nil {
			return err
		}
	}
	return nil
}

// Search returns the approximate k nearest neighbors of q, probing the
// nProbe closest cells. Results are best (smallest distance) first.
func (ix *Index) Search(q []float32, k, nProbe int) []vec.Neighbor {
	res, _ := ix.SearchWithStats(q, k, nProbe)
	return res
}

// SearchWithStats is Search plus work accounting. It draws a Searcher from
// the index's internal pool, so steady-state queries allocate only the
// returned result slice; callers that also want to amortize that should hold
// their own Searcher and use its append API.
func (ix *Index) SearchWithStats(q []float32, k, nProbe int) ([]vec.Neighbor, SearchStats) {
	if !ix.trained || k <= 0 || ix.count == 0 {
		return nil, SearchStats{}
	}
	s := ix.getSearcher()
	res, stats := s.Search(nil, q, k, nProbe)
	ix.pool.Put(s)
	return res, stats
}

// SearchPhased is SearchWithStats plus a per-phase wall-time breakdown
// (probe-cell selection / list scan / top-k merge) for traced queries.
func (ix *Index) SearchPhased(q []float32, k, nProbe int) ([]vec.Neighbor, SearchStats, PhaseNanos) {
	if !ix.trained || k <= 0 || ix.count == 0 {
		return nil, SearchStats{}, PhaseNanos{}
	}
	s := ix.getSearcher()
	res, stats, ph := s.SearchPhased(nil, q, k, nProbe)
	ix.pool.Put(s)
	return res, stats, ph
}

// BatchResult couples a query's neighbors with its work stats.
type BatchResult struct {
	Neighbors []vec.Neighbor
	Stats     SearchStats
}

// SearchBatch searches all queries with a pool of GOMAXPROCS workers pulling
// from a shared queue — the greedy one-thread-per-query work-stealing
// schedule the paper attributes to FAISS batch handling.
func (ix *Index) SearchBatch(queries *vec.Matrix, k, nProbe int) []BatchResult {
	n := queries.Len()
	out := make([]BatchResult, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i].Neighbors, out[i].Stats = ix.SearchWithStats(queries.Row(i), k, nProbe)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i].Neighbors, out[i].Stats = ix.SearchWithStats(queries.Row(i), k, nProbe)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// ListSizes returns the per-cell vector counts, used to study cell imbalance.
func (ix *Index) ListSizes() []int {
	sizes := make([]int, len(ix.lists))
	for i := range ix.lists {
		sizes[i] = len(ix.lists[i].ids)
	}
	return sizes
}

// MemoryBytes reports the index footprint: centroids, codes, and IDs. This
// feeds the Fig. 4 and Fig. 7 memory comparisons.
func (ix *Index) MemoryBytes() int64 {
	var total int64
	if ix.centroids != nil {
		total += ix.centroids.Bytes()
	}
	for i := range ix.lists {
		total += int64(len(ix.lists[i].codes))
		total += int64(len(ix.lists[i].ids)) * 8
	}
	return total
}

// Centroid returns a read-only view of cell c's centroid.
func (ix *Index) Centroid(c int) []float32 { return ix.centroids.Row(c) }
