package hermes

import (
	"reflect"
	"testing"
)

// TestSearchScratchReuseIsDeterministic pins the pooled-scratch search paths
// to identical output across repeated calls (the scratch must carry no state
// between queries) and across strategies sharing the same pool.
func TestSearchScratchReuseIsDeterministic(t *testing.T) {
	c := testCorpus(t, 900, 4)
	st := buildStore(t, c.Vectors, 4)
	qs := c.Queries(6, 11)
	p := DefaultParams()
	type runOut struct {
		ids  [][]int64
		deep [][]int
	}
	run := func() runOut {
		var o runOut
		for i := 0; i < qs.Vectors.Len(); i++ {
			q := qs.Vectors.Row(i)
			res, stats := st.Search(q, p)
			o.ids = append(o.ids, idsOf(res))
			o.deep = append(o.deep, stats.DeepShards)
			// Interleave the other strategies so their scratch use would
			// corrupt Search's state if anything leaked.
			st.SearchCentroid(q, p)
			st.SearchAll(q, p)
			st.SearchFirstN(q, p, 2)
		}
		return o
	}
	first := run()
	for trial := 0; trial < 3; trial++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("trial %d diverged from first run", trial)
		}
	}
}

// TestSearchScratchSteadyStateAllocs bounds per-query heap allocations on the
// full hierarchical path: with warmed pool scratch only the caller-visible
// outputs (result slice, DeepShards) may allocate.
func TestSearchScratchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool puts, inflating alloc counts")
	}
	c := testCorpus(t, 900, 4)
	st := buildStore(t, c.Vectors, 4)
	q := c.Queries(1, 13).Vectors.Row(0)
	p := DefaultParams()
	for i := 0; i < 4; i++ { // warm the pool scratch
		st.Search(q, p)
	}
	allocs := testing.AllocsPerRun(50, func() {
		st.Search(q, p)
	})
	// Expected survivors: the results slice and the DeepShards slice (each
	// possibly with one growth step). Anything above that means scratch
	// leaked back into the hot path.
	if allocs > 4 {
		t.Fatalf("%v allocations per hierarchical search, want <= 4", allocs)
	}
}
