package distsearch

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/hwmodel"
	"repro/internal/telemetry"
)

// EnableEnergyModel attaches the paper's DVFS energy account (Section 4.2,
// Fig. 21) to the coordinator as live /metrics series: a scrape-time
// collector feeds each node's observed deep-search load since the previous
// scrape through hwmodel.FrequencyForLatency — the lowest frequency that
// clears that load within the scrape window — and charges
// hwmodel.EnergyInWindow at it, exporting per node:
//
//	hermes_energy_model_ghz{node}    modeled DVFS operating frequency
//	hermes_energy_model_watts{node}  modeled average package power over the window
//	hermes_energy_model_joules{node} modeled cumulative energy (monotonic)
//
// tokensPerVector converts each shard's vector count into the token count
// the calibrated model is parameterized by (a corpus chunk is a fixed token
// span). The mapping assumes deep searches dominate node compute (sample
// searches are ~nProbe/16th of the work) and that load between scrapes is
// uniform within the window. Call once, before serving; the collector runs
// on every /metrics render or Snapshot.
func (co *Coordinator) EnableEnergyModel(spec hwmodel.CPUSpec, tokensPerVector int64) error {
	if tokensPerVector <= 0 {
		return fmt.Errorf("distsearch: EnableEnergyModel: tokensPerVector must be positive, got %d", tokensPerVector)
	}
	model, err := hwmodel.NewEnergyModel(spec)
	if err != nil {
		return err
	}
	ec := &energyCollector{
		co:           co,
		model:        model,
		tokensPerVec: tokensPerVector,
		lastLoad:     make([]int64, len(co.nodes)),
		lastAt:       now(),
		ghz:          make([]*telemetry.Gauge, len(co.nodes)),
		watts:        make([]*telemetry.Gauge, len(co.nodes)),
		joules:       make([]*telemetry.Gauge, len(co.nodes)),
	}
	reg := co.m.reg
	for i, n := range co.nodes {
		node := strconv.Itoa(n.shardID)
		//lint:ignore metricname ghz is the series' actual physical unit; seconds/bytes do not apply
		ec.ghz[i] = reg.Gauge("hermes_energy_model_ghz",
			"modeled DVFS frequency per node given its observed deep-search load ("+spec.Name+")", "node", node)
		//lint:ignore metricname watts is the series' actual physical unit; seconds/bytes do not apply
		ec.watts[i] = reg.Gauge("hermes_energy_model_watts",
			"modeled average package power per node over the last scrape window ("+spec.Name+")", "node", node)
		//lint:ignore metricname joules is the series' actual physical unit; seconds/bytes do not apply
		ec.joules[i] = reg.Gauge("hermes_energy_model_joules",
			"modeled cumulative package energy per node since the model was enabled ("+spec.Name+")", "node", node)
	}
	reg.RegisterCollector(ec.collect)
	return nil
}

// energyCollector advances the DVFS model by one window per scrape.
type energyCollector struct {
	co           *Coordinator
	model        *hwmodel.EnergyModel
	tokensPerVec int64

	mu       sync.Mutex
	lastLoad []int64
	lastAt   time.Time

	ghz, watts, joules []*telemetry.Gauge
}

func (ec *energyCollector) collect(*telemetry.Registry) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	t := now()
	window := t.Sub(ec.lastAt)
	if window <= 0 {
		return
	}
	ec.lastAt = t
	for i, n := range ec.co.nodes {
		load := n.deepLoad.Load()
		delta := load - ec.lastLoad[i]
		ec.lastLoad[i] = load
		ne := ec.model.Advance(n.shardID, int64(n.size)*ec.tokensPerVec, delta, window)
		ec.ghz[i].Set(ne.GHz)
		ec.watts[i].Set(ne.Watts)
		ec.joules[i].Set(ne.Joules)
	}
}
