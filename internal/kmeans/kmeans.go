// Package kmeans implements Lloyd's algorithm with k-means++ seeding, the
// clustering primitive behind both IVF coarse quantizers and Hermes'
// datastore disaggregation step.
//
// Two features come directly from the paper's Section 4.1: training on a
// small random subset of the corpus (1-2% tracks the full clustering well)
// and sweeping several RNG seeds to pick the run with the lowest cluster-size
// imbalance, measured as the ratio of the largest to smallest cluster.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/vec"
)

// Config controls a k-means run.
type Config struct {
	K          int   // number of clusters; must be >= 1
	MaxIters   int   // Lloyd iterations; default 25
	Seed       int64 // RNG seed for init and subset sampling; default 0
	PlusPlus   bool  // k-means++ init (otherwise uniform random points)
	SampleSize int   // if >0 and < n, train on that many sampled points
	Tolerance  float64
	// Rand, when non-nil, supplies the generator directly and Seed is
	// ignored. The default is rand.New(rand.NewSource(Seed)), so two runs
	// with equal configs are bit-identical. BestSeed ignores Rand: its
	// whole point is sweeping Seed.
	Rand *rand.Rand `json:"-"`
}

// rng returns the injected generator or a deterministic one from Seed.
func (c Config) rng() *rand.Rand {
	if c.Rand != nil {
		return c.Rand
	}
	return rand.New(rand.NewSource(c.Seed))
}

func (c Config) withDefaults() Config {
	if c.MaxIters <= 0 {
		c.MaxIters = 25
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-4
	}
	return c
}

// Result holds a trained clustering.
type Result struct {
	Centroids *vec.Matrix // K x dim
	// Assign maps each training row to its centroid; only filled for the
	// rows that were actually used for training (the subset when
	// SampleSize is set).
	Assign []int
	// Sizes is the per-cluster count over the training rows.
	Sizes []int
	// Inertia is the final sum of squared distances to assigned centroids.
	Inertia float64
	// Iters is the number of Lloyd iterations performed.
	Iters int
}

// Imbalance returns max(size)/min(size) over non-empty accounting of all
// clusters; if any cluster is empty it returns +Inf. This is the imbalance
// proxy the paper uses when choosing a seed.
func (r *Result) Imbalance() float64 {
	return ImbalanceRatio(r.Sizes)
}

// ImbalanceRatio computes max/min over the sizes; empty input or any zero
// size yields +Inf.
func ImbalanceRatio(sizes []int) float64 {
	if len(sizes) == 0 {
		return math.Inf(1)
	}
	minS, maxS := sizes[0], sizes[0]
	for _, s := range sizes[1:] {
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	if minS == 0 {
		return math.Inf(1)
	}
	return float64(maxS) / float64(minS)
}

// Train runs k-means on the rows of data.
func Train(data *vec.Matrix, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := data.Len()
	if cfg.K < 1 {
		return nil, fmt.Errorf("kmeans: K must be >= 1, got %d", cfg.K)
	}
	if n < cfg.K {
		return nil, fmt.Errorf("kmeans: %d points < K=%d", n, cfg.K)
	}
	rng := cfg.rng()

	train := data
	if cfg.SampleSize > 0 && cfg.SampleSize < n {
		if cfg.SampleSize < cfg.K {
			return nil, fmt.Errorf("kmeans: SampleSize %d < K=%d", cfg.SampleSize, cfg.K)
		}
		train = sampleRows(data, cfg.SampleSize, rng)
	}
	nt := train.Len()

	centroids := initCentroids(train, cfg.K, cfg.PlusPlus, rng)
	assign := make([]int, nt)
	sizes := make([]int, cfg.K)
	prevInertia := math.Inf(1)
	var inertia float64
	iters := 0

	for iter := 0; iter < cfg.MaxIters; iter++ {
		iters = iter + 1
		// Assignment step.
		inertia = 0
		for i := range sizes {
			sizes[i] = 0
		}
		for i := 0; i < nt; i++ {
			c, d := centroids.ArgMinL2(train.Row(i))
			assign[i] = c
			sizes[c]++
			inertia += float64(d)
		}
		// Update step.
		sums := vec.NewMatrix(cfg.K, train.Dim)
		for i := 0; i < nt; i++ {
			vec.Add(sums.Row(assign[i]), train.Row(i))
		}
		for c := 0; c < cfg.K; c++ {
			if sizes[c] == 0 {
				// Empty-cluster repair: reseed from the point
				// farthest from its centroid.
				reseedEmpty(centroids, c, train, assign, rng)
				continue
			}
			row := sums.Row(c)
			vec.Scale(row, 1/float32(sizes[c]))
			copy(centroids.Row(c), row)
		}
		if prevInertia-inertia < cfg.Tolerance*math.Max(1, prevInertia) {
			break
		}
		prevInertia = inertia
	}

	// Final assignment against the final centroids so Assign/Sizes/Inertia
	// are mutually consistent.
	inertia = 0
	for i := range sizes {
		sizes[i] = 0
	}
	for i := 0; i < nt; i++ {
		c, d := centroids.ArgMinL2(train.Row(i))
		assign[i] = c
		sizes[c]++
		inertia += float64(d)
	}

	return &Result{
		Centroids: centroids,
		Assign:    assign,
		Sizes:     sizes,
		Inertia:   inertia,
		Iters:     iters,
	}, nil
}

// AssignAll maps every row of data to its nearest centroid. Used after
// subset training to partition the full corpus.
func AssignAll(data *vec.Matrix, centroids *vec.Matrix) []int {
	out := make([]int, data.Len())
	for i := 0; i < data.Len(); i++ {
		out[i], _ = centroids.ArgMinL2(data.Row(i))
	}
	return out
}

// BestSeed runs k-means with each of the given seeds and returns the result
// (and winning seed) with the lowest cluster-size imbalance, breaking ties by
// inertia. This reproduces the paper's multi-seed imbalance minimization.
func BestSeed(data *vec.Matrix, cfg Config, seeds []int64) (*Result, int64, error) {
	if len(seeds) == 0 {
		return nil, 0, fmt.Errorf("kmeans: BestSeed requires at least one seed")
	}
	var best *Result
	var bestSeed int64
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		c.Rand = nil // the sweep must re-derive the RNG from each seed
		r, err := Train(data, c)
		if err != nil {
			return nil, 0, err
		}
		if best == nil || less(r, best) {
			best, bestSeed = r, seed
		}
	}
	return best, bestSeed, nil
}

func less(a, b *Result) bool {
	ia, ib := a.Imbalance(), b.Imbalance()
	if ia != ib {
		return ia < ib
	}
	return a.Inertia < b.Inertia
}

func sampleRows(data *vec.Matrix, k int, rng *rand.Rand) *vec.Matrix {
	idx := rng.Perm(data.Len())[:k]
	out := vec.NewMatrix(k, data.Dim)
	for i, j := range idx {
		copy(out.Row(i), data.Row(j))
	}
	return out
}

func initCentroids(data *vec.Matrix, k int, plusPlus bool, rng *rand.Rand) *vec.Matrix {
	n := data.Len()
	centroids := vec.NewMatrix(k, data.Dim)
	if !plusPlus {
		for i, j := range rng.Perm(n)[:k] {
			copy(centroids.Row(i), data.Row(j))
		}
		return centroids
	}
	// k-means++: first centroid uniform, then points weighted by squared
	// distance to the nearest chosen centroid.
	copy(centroids.Row(0), data.Row(rng.Intn(n)))
	dists := make([]float64, n)
	for i := 0; i < n; i++ {
		dists[i] = float64(vec.L2Squared(data.Row(i), centroids.Row(0)))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range dists {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			var cum float64
			pick = n - 1
			for i, d := range dists {
				cum += d
				if cum >= target {
					pick = i
					break
				}
			}
		}
		copy(centroids.Row(c), data.Row(pick))
		for i := 0; i < n; i++ {
			if d := float64(vec.L2Squared(data.Row(i), centroids.Row(c))); d < dists[i] {
				dists[i] = d
			}
		}
	}
	return centroids
}

func reseedEmpty(centroids *vec.Matrix, c int, data *vec.Matrix, assign []int, rng *rand.Rand) {
	// Pick the training point farthest from its current centroid.
	worst, worstDist := rng.Intn(data.Len()), float32(-1)
	for i := 0; i < data.Len(); i++ {
		d := vec.L2Squared(data.Row(i), centroids.Row(assign[i]))
		if d > worstDist {
			worst, worstDist = i, d
		}
	}
	copy(centroids.Row(c), data.Row(worst))
}
