#!/usr/bin/env sh
# Tier-1 verification for this repo. Everything here must pass before a
# change lands: build, go vet, the project's own static analyzers
# (cmd/hermes-lint), the full test suite, the race detector over the
# concurrency-heavy packages (TCP serving path, the batching front-end, the
# telemetry registry scraped concurrently with metric writes, the pooled
# IVF searcher scratch, the in-process store recording into the flight
# recorder under concurrent readers, the SLO engine ticking under Collect,
# and the event ring written under concurrent scrapes), and a
# single-iteration bench smoke so
# the kernel benchmarks can never rot unnoticed.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
# The lint gate diffs against the committed lint-report.json (failing only
# on new findings), refreshes that artifact in place, re-runs the gate over
# test files, and archives the facts dump — see scripts/lint-diff.sh.
./scripts/lint-diff.sh
go test ./...
go test -race ./internal/distsearch/ ./internal/batcher/ ./internal/telemetry/ ./internal/ivf/ ./internal/hermes/ ./internal/slo/ ./internal/evlog/
go test -bench=. -benchtime=1x -run '^$' ./internal/vec/ ./internal/quant/ ./internal/ivf/
