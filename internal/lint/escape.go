package lint

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file is the compiler-diagnostics half of the escapeaudit pass: a
// cached, module-root runner that invokes `go build -gcflags=-m=2` over the
// packages that declare //hermes:hotpath functions, parses the compiler's
// escape-analysis and inlining diagnostics, and exposes them per file so
// the escapeaudit analyzer (alloclock.go) can attribute each diagnostic to
// its enclosing function and diff the result against the committed
// alloc.lock budget.
//
// Unlike every other check in this package, the input here is not the AST —
// it is what the gc compiler actually decided: which values escape to the
// heap, which parameters leak, and which calls were inlined. That is the
// ground truth PR 3's "0 allocs/op" benchmarks measure indirectly; the
// runner makes it a first-class, diffable input. The go tool replays
// cached compile diagnostics, so repeated runs (the three hermes-lint
// invocations in scripts/lint-diff.sh) cost one real compile.
//
// Diagnostics depend on the compiler version (inlining budgets and the
// escape analysis itself move between releases), which is why alloc.lock
// records the toolchain (see AllocLockGoVersion) and the driver skips the
// pass with a warning when the running toolchain differs.

// EscapeKind classifies one compiler diagnostic the audit tracks.
type EscapeKind string

const (
	// KindEscape is a value moving to the heap ("x escapes to heap",
	// "moved to heap: x") — a straight-line allocation the hot path pays.
	KindEscape EscapeKind = "escape"
	// KindLeak is a parameter flowing somewhere that outlives the call
	// ("leaking param: q") — the kernel-argument hazard: a leaked param
	// forces the CALLER's value to heap-allocate.
	KindLeak EscapeKind = "leak"
	// KindInline is a call the compiler inlined ("inlining call to f").
	// Losing one on a distance kernel re-introduces call overhead on every
	// scanned block.
	KindInline EscapeKind = "inline"
)

// EscapeDiag is one parsed compiler diagnostic.
type EscapeDiag struct {
	File string // absolute path
	Line int
	Col  int
	Kind EscapeKind
	// Text is the normalized message: for inline diagnostics just the
	// callee ("vec.(*TopK).Reset"); -m=2 flow headers are dropped in
	// parsing, so each diagnostic appears once per site.
	Text string
}

// EscapeDiags is the parsed result of one compiler run.
type EscapeDiags struct {
	// GoVersion is the toolchain that produced the diagnostics, as
	// `go env GOVERSION` reports it (e.g. "go1.24.0").
	GoVersion string
	byFile    map[string][]EscapeDiag
}

// File returns the diagnostics attributed to the given absolute filename,
// in (line, col, kind, text) order.
func (d *EscapeDiags) File(filename string) []EscapeDiag {
	if d == nil {
		return nil
	}
	return d.byFile[filename]
}

// EscapeRunner invokes the go compiler for escape/inlining diagnostics,
// caching parsed results per package-directory set so the analyzer passes
// and the -update-alloclock artifact generator share one build.
type EscapeRunner struct {
	// ModuleRoot is the directory `go build` runs in; package directories
	// are addressed relative to it.
	ModuleRoot string
	goVersion  string
	cache      map[string]*EscapeDiags
}

// NewEscapeRunner returns a runner rooted at the module directory.
func NewEscapeRunner(moduleRoot string) *EscapeRunner {
	return &EscapeRunner{ModuleRoot: moduleRoot, cache: make(map[string]*EscapeDiags)}
}

// GoVersion reports the active toolchain (`go env GOVERSION`), cached.
func (r *EscapeRunner) GoVersion() (string, error) {
	if r.goVersion != "" {
		return r.goVersion, nil
	}
	out, err := exec.Command("go", "env", "GOVERSION").Output()
	if err != nil {
		return "", fmt.Errorf("lint: go env GOVERSION: %w", err)
	}
	r.goVersion = strings.TrimSpace(string(out))
	if r.goVersion == "" {
		return "", fmt.Errorf("lint: go env GOVERSION reported nothing")
	}
	return r.goVersion, nil
}

// Run builds the given package directories (absolute paths under the module
// root) with -gcflags=-m=2 and returns the parsed diagnostics. The gcflags
// apply only to the named packages, so dependency compiles stay quiet. All
// target packages must be non-main (no object file is written for them);
// every //hermes:hotpath package is.
func (r *EscapeRunner) Run(dirs []string) (*EscapeDiags, error) {
	if len(dirs) == 0 {
		return &EscapeDiags{byFile: map[string][]EscapeDiag{}}, nil
	}
	rels := make([]string, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(r.ModuleRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: escape target %s is outside module root %s", dir, r.ModuleRoot)
		}
		rels = append(rels, "./"+filepath.ToSlash(rel))
	}
	sort.Strings(rels)
	key := strings.Join(rels, "\x00")
	if d, ok := r.cache[key]; ok {
		return d, nil
	}
	version, err := r.GoVersion()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m=2"}, rels...)...)
	cmd.Dir = r.ModuleRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("lint: go build -gcflags=-m=2 %s: %w\n%s", strings.Join(rels, " "), err, out)
	}
	d := &EscapeDiags{GoVersion: version, byFile: parseEscapeOutput(r.ModuleRoot, string(out))}
	r.cache[key] = d
	return d, nil
}

// diagLineRe matches one positioned diagnostic line. Indented flow
// explanations (-m=2 prints the escape derivation beneath each verdict)
// and "# package" headers do not match and are skipped.
var diagLineRe = regexp.MustCompile(`^([^\s:][^:]*\.go):(\d+):(\d+): (.*)$`)

// parseEscapeOutput extracts the tracked diagnostic classes from compiler
// output. Paths are resolved against moduleRoot; diagnostics pointing
// outside it (stdlib instantiation chatter) are dropped.
func parseEscapeOutput(moduleRoot, out string) map[string][]EscapeDiag {
	byFile := make(map[string][]EscapeDiag)
	for _, line := range strings.Split(out, "\n") {
		m := diagLineRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		kind, text := classifyDiag(m[4])
		if kind == "" {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(moduleRoot, filepath.FromSlash(file))
		}
		if rel, err := filepath.Rel(moduleRoot, file); err != nil || strings.HasPrefix(rel, "..") {
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		byFile[file] = append(byFile[file], EscapeDiag{
			File: file, Line: lineNo, Col: col, Kind: kind, Text: text,
		})
	}
	for _, diags := range byFile {
		sort.Slice(diags, func(i, j int) bool {
			a, b := diags[i], diags[j]
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			if a.Col != b.Col {
				return a.Col < b.Col
			}
			if a.Kind != b.Kind {
				return a.Kind < b.Kind
			}
			return a.Text < b.Text
		})
	}
	return byFile
}

// classifyDiag maps a raw compiler message to a tracked kind and its
// normalized text, or ("", "") for messages the audit ignores ("does not
// escape", "can inline", "cannot inline", ...). A trailing colon marks the
// header of a -m=2 flow explanation ("x escapes to heap:" + indented flow
// lines); the compiler always follows the headers with exactly one plain
// summary line, so headers are skipped to keep the lock a per-site multiset
// rather than a per-flow one.
func classifyDiag(msg string) (EscapeKind, string) {
	msg = strings.TrimSpace(msg)
	if strings.HasSuffix(msg, ":") {
		return "", ""
	}
	switch {
	case strings.HasSuffix(msg, "escapes to heap"),
		strings.HasPrefix(msg, "moved to heap"):
		return KindEscape, msg
	case strings.HasPrefix(msg, "leaking param"):
		return KindLeak, msg
	case strings.HasPrefix(msg, "inlining call to "):
		return KindInline, strings.TrimPrefix(msg, "inlining call to ")
	}
	return "", ""
}
