package vec

// Neighbor is a scored retrieval candidate. Depending on context Score is a
// distance (smaller is better) or a similarity (larger is better); the
// selection helpers below are explicit about direction.
type Neighbor struct {
	ID    int64
	Score float32
}

// TopK maintains the k best candidates seen so far. It is a bounded
// max-heap on distance: the root is the current worst retained candidate, so
// a new candidate replaces the root when it beats it. Use one instance per
// query; the zero value is not usable — call NewTopK.
type TopK struct {
	k    int
	heap []Neighbor // max-heap by Score (distance)
}

// NewTopK returns a selector retaining the k smallest-scored neighbors.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("vec: NewTopK requires k > 0")
	}
	return &TopK{k: k, heap: make([]Neighbor, 0, k)}
}

// Reset re-arms the selector for a new query retaining the k smallest-scored
// neighbors, reusing the underlying buffer. It lets a per-searcher scratch
// TopK serve successive queries without allocating.
func (t *TopK) Reset(k int) {
	if k <= 0 {
		panic("vec: TopK.Reset requires k > 0")
	}
	t.k = k
	if cap(t.heap) < k {
		t.heap = make([]Neighbor, 0, k)
	} else {
		t.heap = t.heap[:0]
	}
}

// Push offers a candidate; it is retained if fewer than k candidates are held
// or its score beats the current worst.
func (t *TopK) Push(id int64, score float32) {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, Neighbor{ID: id, Score: score})
		t.siftUp(len(t.heap) - 1)
		return
	}
	if score >= t.heap[0].Score {
		return
	}
	t.heap[0] = Neighbor{ID: id, Score: score}
	t.siftDown(0)
}

// WorstScore returns the score of the worst retained candidate, or +Inf-like
// behaviour via (ok=false) when fewer than k candidates are held. Callers use
// it to prune scans early.
func (t *TopK) WorstScore() (float32, bool) {
	if len(t.heap) < t.k {
		return 0, false
	}
	return t.heap[0].Score, true
}

// Len returns the number of retained candidates.
func (t *TopK) Len() int { return len(t.heap) }

// Results destructively extracts the retained neighbors ordered best
// (smallest score) first.
func (t *TopK) Results() []Neighbor {
	out := make([]Neighbor, 0, len(t.heap))
	return t.AppendResults(out)
}

// AppendResults destructively extracts the retained neighbors, best first,
// appending them to dst and returning the extended slice. With a dst of
// sufficient capacity the extraction performs no allocation, which is how the
// zero-allocation search paths return results from pooled scratch.
func (t *TopK) AppendResults(dst []Neighbor) []Neighbor {
	base := len(dst)
	dst = append(dst, t.heap...)
	out := dst[base:]
	for i := len(t.heap) - 1; i >= 0; i-- {
		out[i] = t.heap[0]
		last := len(t.heap) - 1
		t.heap[0] = t.heap[last]
		t.heap = t.heap[:last]
		t.siftDown(0)
	}
	return dst
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.heap[parent].Score >= t.heap[i].Score {
			return
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && t.heap[l].Score > t.heap[largest].Score {
			largest = l
		}
		if r < n && t.heap[r].Score > t.heap[largest].Score {
			largest = r
		}
		if largest == i {
			return
		}
		t.heap[i], t.heap[largest] = t.heap[largest], t.heap[i]
		i = largest
	}
}
