// Package lint is a zero-dependency static-analysis framework for the Hermes
// reproduction, built on stdlib go/parser, go/ast, and go/types.
//
// The paper's headline numbers (hierarchical-search latency, shard load
// imbalance, the energy model) are only meaningful if the reproduction is
// deterministic, data-race-free, and wire-stable across rolling upgrades.
// The framework loads the whole module from source (Loader), runs the
// cross-package fact engine over the resolved call graph (ComputeFacts — a
// monotone-fixpoint framework with four registered lattices: io, alloc,
// acquires, blocks; see factengine.go and Lattices), and runs the analyzer
// suite over every package with deterministic file:line:col finding order,
// optional machine-readable JSON output (Report), a findings baseline
// (Baseline), and generated per-package artifacts (Artifacts — the gob
// wire-schema lock). The analyzers encode the project rules:
//
//   - globalrand:   no package-global math/rand in library code (index
//     builds must be bit-reproducible from a config seed)
//   - wallclock:    no wall-clock reads inside analytical-model packages
//     (simulated time comes from the model, never from time.Now)
//   - goroutinectx: every `go func` literal needs a visible completion
//     mechanism, and loop variables are passed as parameters
//   - lockcopy:     no passing/returning structs that carry sync primitives
//     by value
//   - errdrop:      no silently discarded errors from Close/Flush/Encode
//     style calls
//   - wirelock:     the gob schema of //hermes:wire structs must match the
//     committed wire.lock; evolution is append-only
//   - lockheldio:   no mutex held across network/file I/O, channel
//     operations, or time.Sleep (uses the cross-package I/O facts)
//   - poolescape:   sync.Pool Get values must not escape via return,
//     struct field, or package-level variable
//   - deferinloop:  no resource-holding defer inside a loop body
//   - hotpathclock: //hermes:hotpath functions must keep clock reads
//     gated behind a conditional
//   - hotpathalloc: //hermes:hotpath functions must keep heap allocation
//     — direct sites and transitively allocating calls — gated behind a
//     conditional (uses the alloc facts)
//   - lockorder:    the module-wide lock-acquisition-order graph must stay
//     acyclic (uses the acquires facts and held-set walking)
//   - goroutineleak: go statements in request-path packages need a
//     reachable termination signal (uses the blocks facts)
//   - metricname:   telemetry registry metric names must follow
//     hermes_<subsystem>_<name>_{total,seconds,bytes,ratio}
//   - escapeaudit:  compiler escape/inline diagnostics of //hermes:hotpath
//     functions must match the committed alloc.lock (runs the go compiler
//     via the escape runner; skipped on toolchain mismatch)
//   - ctxflow:      exported request-path functions that reach network I/O
//     must accept a cancellable context or deadline (uses the netio and
//     cancel facts)
//   - poolretain:   values derived from a sync.Pool Get must not be used
//     after the matching Put returns the buffer
//   - chanbound:    request-path queues must stay bounded — no
//     unbounded-growth appends under a held mutex, no effectively
//     unbounded channel capacities
//
// Findings can be suppressed case-by-case with a directive comment on the
// same line or the line above:
//
//	//lint:ignore CHECKID reason why this occurrence is fine
//
// The check ID may be a comma-separated list. A directive without a reason
// is itself reported (check ID "lintdirective"): suppressions must be
// auditable.
//
// To add a new analyzer: create a file in this package declaring a
// *Analyzer with a Run func over *Pass, register it in All, and add a
// fixture package under testdata/src/<name>/ with a table-driven test.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one reported problem.
type Finding struct {
	Check string
	Pos   token.Position
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Msg, f.Check)
}

// Analyzer is a single named check.
type Analyzer struct {
	// Name is the check ID used in output, -only/-skip selection, and
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the package in pass and reports findings.
	Run func(*Pass)
	// TestFiles marks the analyzer as meaningful over _test.go files when
	// the driver runs with -include-tests. The concurrency and resource
	// checks apply (a pool misuse in a race test hides a real hazard);
	// style rules that tests legitimately break (dropped Close errors,
	// ad-hoc randomness) leave it false and keep skipping test files.
	TestFiles bool
}

// All returns every registered analyzer in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		GlobalRand, WallClock, GoroutineCtx, LockCopy, ErrDrop,
		WireLock, LockHeldIO, PoolEscape, DeferInLoop, HotPathClock,
		HotPathAlloc, LockOrder, GoroutineLeak, MetricName,
		EscapeAudit, CtxFlow, PoolRetain, ChanBound,
	}
}

// Select filters All() by the -only / -skip comma-separated check lists.
// Empty strings mean "no constraint". Unknown names are an error so typos
// do not silently disable a check.
func Select(only, skip string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	parse := func(list string) (map[string]bool, error) {
		set := make(map[string]bool)
		if strings.TrimSpace(list) == "" {
			return set, nil
		}
		for _, name := range strings.Split(list, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("lint: unknown check %q (have %s)", name, strings.Join(checkNames(), ", "))
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse(only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse(skip)
	if err != nil {
		return nil, err
	}
	var out []*Analyzer
	for _, a := range All() {
		if len(onlySet) > 0 && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

func checkNames() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// Pass carries one package's parsed and type-checked state to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Dir is the package's directory on disk (for per-package artifacts
	// such as wire.lock).
	Dir string
	// Facts is the cross-package fact set (nil when running a single
	// package standalone; Facts methods are nil-tolerant).
	Facts *Facts
	// Escape carries the compiler escape/inlining diagnostics for the run
	// (see EscapeRunner); nil when the driver did not invoke the compiler,
	// which makes escapeaudit a no-op.
	Escape *EscapeDiags
	// IncludeTests reports whether the loader parsed _test.go files into
	// this package; see (*Pass).SkipFile.
	IncludeTests bool

	ignores  ignoreIndex
	findings *[]Finding
}

// SkipFile reports whether the analyzer should skip f: test files are
// analyzed only when the run includes them AND the analyzer opts in via
// TestFiles.
func (p *Pass) SkipFile(f *ast.File) bool {
	if !isTestFile(p.Fset, f) {
		return false
	}
	return !p.IncludeTests || !p.Analyzer.TestFiles
}

// Reportf records a finding at pos unless an ignore directive suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignores.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Check: p.Analyzer.Name,
		Pos:   position,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant p.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// RunOptions configures an analysis run beyond the analyzer list.
type RunOptions struct {
	// Facts is the cross-package fact set (see ComputeFacts); nil degrades
	// fact-consuming analyzers to their stdlib-only seed knowledge.
	Facts *Facts
	// Escape is the compiler diagnostic set for escapeaudit; nil disables
	// the audit (no compiler run, or toolchain/lock version mismatch).
	Escape *EscapeDiags
	// IncludeTests marks the packages as having been loaded with test
	// files, unlocking TestFiles-capable analyzers on them.
	IncludeTests bool
}

// RunPackage runs the analyzers over one loaded package and returns the
// findings sorted by position. Malformed //lint:ignore directives are
// reported under the always-on check ID "lintdirective".
func RunPackage(pkg *Package, analyzers []*Analyzer) []Finding {
	return RunPackageOpts(pkg, analyzers, RunOptions{})
}

// RunPackageOpts is RunPackage with explicit run options.
func RunPackageOpts(pkg *Package, analyzers []*Analyzer, opts RunOptions) []Finding {
	var findings []Finding
	ign := buildIgnoreIndex(pkg.Fset, pkg.Files, &findings)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:     a,
			Fset:         pkg.Fset,
			Files:        pkg.Files,
			Pkg:          pkg.Types,
			Info:         pkg.Info,
			Dir:          pkg.Dir,
			Facts:        opts.Facts,
			Escape:       opts.Escape,
			IncludeTests: opts.IncludeTests,
			ignores:      ign,
			findings:     &findings,
		}
		a.Run(pass)
	}
	SortFindings(findings)
	return findings
}

// RunPackages runs the analyzers over every package and returns one globally
// sorted finding list — the deterministic file:line:col order the driver
// prints and the JSON report serializes.
func RunPackages(pkgs []*Package, analyzers []*Analyzer, opts RunOptions) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		findings = append(findings, RunPackageOpts(pkg, analyzers, opts)...)
	}
	SortFindings(findings)
	return findings
}

// SortFindings orders findings by filename, line, column, then check ID.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Check < findings[j].Check
	})
}

// ignoreIndex maps file -> line -> suppressed check IDs. A directive on
// line L suppresses findings on L (trailing comment) and L+1 (comment on
// its own line above the flagged statement).
type ignoreIndex map[string]map[int]map[string]bool

const ignorePrefix = "lint:ignore"

func buildIgnoreIndex(fset *token.FileSet, files []*ast.File, findings *[]Finding) ignoreIndex {
	idx := make(ignoreIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					*findings = append(*findings, Finding{
						Check: "lintdirective",
						Pos:   pos,
						Msg:   "malformed //lint:ignore directive: need a check ID and a reason",
					})
					continue
				}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					idx[pos.Filename] = byLine
				}
				checks := byLine[pos.Line]
				if checks == nil {
					checks = make(map[string]bool)
					byLine[pos.Line] = checks
				}
				for _, name := range strings.Split(fields[0], ",") {
					checks[strings.TrimSpace(name)] = true
				}
			}
		}
	}
	return idx
}

func (idx ignoreIndex) suppressed(check string, pos token.Position) bool {
	byLine := idx[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if byLine[line][check] {
			return true
		}
	}
	return false
}

// pkgNameOf resolves an expression to the *types.PkgName it denotes, if it
// is a plain package qualifier (e.g. the `rand` in rand.Intn).
func pkgNameOf(info *types.Info, e ast.Expr) (*types.PkgName, bool) {
	id, ok := e.(*ast.Ident)
	if !ok || info == nil {
		return nil, false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return pn, ok
}

// isTestFile reports whether the file's position is in a _test.go file.
// The loader already excludes test files; analyzers keep the guard so they
// stay correct if fed files from elsewhere.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}
